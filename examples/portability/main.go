// Portability: walk one application (Ocean) through the paper's optimization
// classes — original, padding/alignment, data-structure reorganization,
// algorithmic change — on all three platforms, reproducing the paper's
// central question: do SVM optimizations port to hardware-coherent machines?
//
//	go run ./examples/portability
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const app = "ocean"
	r := repro.NewRunner(16, 1)

	vs, err := repro.Versions(app)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: speedup by optimization class and platform (P=16)\n\n", app)
	fmt.Printf("%-8s %-6s", "version", "class")
	for _, pl := range repro.Platforms() {
		fmt.Printf(" %8s", pl)
	}
	fmt.Println()
	for _, v := range vs {
		fmt.Printf("%-8s %-6s", v.Name, v.Class)
		for _, pl := range repro.Platforms() {
			s, err := r.Speedup(app, v.Name, pl)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8.2f", s)
		}
		fmt.Println()
	}

	fmt.Println(`
Reading the table (paper §4.1.2, §5):
  - on SVM the original 2-d square-partitioned grids run below a
    uniprocessor; padding barely helps; the 4-d contiguous partitions (DS)
    recover some ground; the row-wise partitioning (Alg) wins decisively
    despite its worse inherent communication-to-computation ratio, because
    page-grained interactions dominate inherent algorithm properties;
  - on the hardware-coherent platforms the same restructurings are
    performance-portable (they do not hurt) but matter far less.`)
}
