// Newapp: use the simulation kernel directly to study YOUR OWN kernel's
// behaviour on the three platforms — the library is not limited to the seven
// paper applications. Here: a parallel histogram, written two ways (shared
// bins updated under a lock vs. per-processor private bins reduced at the
// end), the classic page-granularity lesson in thirty lines.
//
// The body below runs under the event-loop scheduler: each processor is a
// resumable continuation, ReadRange/WriteRange issue whole access batches
// the kernel drains in place, and Lock/Barrier are ordinary calls that park
// the continuation in virtual time. Write the body as straight-line code;
// the scheduler interleaves processors deterministically underneath it.
//
//	go run ./examples/newapp
package main

import (
	"fmt"
	"log"

	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
)

const (
	nKeys = 1 << 16
	nBins = 256
	np    = 8
)

func histogram(plat string, private bool) uint64 {
	as := mem.NewAddressSpace(platform.PageSize, np)
	keys := as.AllocPages(nKeys * 4)
	as.DistributeBlocked(keys, nKeys*4)
	shared := as.AllocPages(nBins * 8)

	priv := make([]uint64, np)
	for q := 0; q < np; q++ {
		priv[q] = as.AllocPages(nBins * 8)
		as.SetHome(priv[q], nBins*8, q)
	}

	pl, err := platform.Make(plat, as, np)
	if err != nil {
		log.Fatal(err)
	}
	k := sim.New(pl, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager})
	run, err := k.RunErr("histogram", func(p *sim.Proc) {
		id := p.ID()
		per := nKeys / np
		base := keys + uint64(id*per*4)
		p.ReadRange(base, per*4) // stream own keys
		if private {
			// Bin into private counters, then merge under one lock.
			p.WriteRange(priv[id], nBins*8)
			p.Compute(uint64(3 * per))
			p.Barrier()
			p.Lock(1)
			p.ReadRange(shared, nBins*8)
			p.WriteRange(shared, nBins*8)
			p.Unlock(1)
			p.Compute(nBins * 2)
		} else {
			// Update the shared bins directly: one lock per batch of
			// keys, scattered writes into pages everyone dirties.
			const batch = 64
			for i := 0; i < per; i += batch {
				p.Lock(1)
				for j := 0; j < batch; j++ {
					p.Write(shared + uint64(((id*7+i+j)*37)%nBins)*8)
				}
				p.Unlock(1)
				p.Compute(batch * 3)
			}
		}
		p.Barrier()
	})
	if err != nil {
		// A panic or deadlock in the body comes back as a contained error
		// (with the last protocol events when a trace ring is installed)
		// instead of crashing the host.
		log.Fatal(err)
	}
	// The kernel owns the returned Run and reuses it on its next Run call;
	// copy out what you need before re-running the same kernel (this
	// example uses a fresh kernel per configuration, so reading EndTime
	// directly is safe).
	return run.EndTime
}

func main() {
	fmt.Printf("%-6s %16s %16s %8s\n", "plat", "shared-bins", "private-bins", "ratio")
	for _, plat := range []string{"svm", "smp", "dsm"} {
		s := histogram(plat, false)
		pv := histogram(plat, true)
		fmt.Printf("%-6s %16d %16d %7.1fx\n", plat, s, pv, float64(s)/float64(pv))
	}
	fmt.Println("\nThe shared-bin version synchronizes per batch and false-shares the bin")
	fmt.Println("pages; on SVM that costs orders of magnitude, on hardware coherence it")
	fmt.Println("is merely bad — the paper's asymmetry, on your own code.")
}
