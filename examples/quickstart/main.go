// Quickstart: run one application version on one platform, print the
// paper-style per-processor execution time breakdown, and compute the
// speedup against the uniprocessor original.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// LU with the restructured, page-aligned 4-d layout on the shared
	// virtual memory platform, 16 processors.
	run, err := repro.Execute(repro.Spec{
		App:      "lu",
		Version:  "4da",
		Platform: "svm",
		NumProcs: 16,
		Scale:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(run.BreakdownTable())

	// Speedup, paper convention: uniprocessor time of the ORIGINAL
	// version over 16-processor time of this version.
	base, err := repro.Execute(repro.Spec{
		App: "lu", Version: "orig", Platform: "svm", NumProcs: 1, Scale: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspeedup vs uniprocessor lu/orig: %.2f\n",
		float64(base.EndTime)/float64(run.EndTime))

	fmt.Println("\navailable applications and versions:")
	for _, app := range repro.Apps() {
		vs, _ := repro.Versions(app)
		fmt.Printf("  %-10s", app)
		for _, v := range vs {
			fmt.Printf(" %s(%s)", v.Name, v.Class)
		}
		fmt.Println()
	}
}
