// Diagnose: use the simulator as a performance-debugging tool the way the
// paper does (§4.2.3, §6) — find Raytrace's SVM bottleneck from the
// execution-time breakdown, confirm the critical-section-dilation hypothesis
// with the "free page faults inside critical sections" diagnostic, then
// verify the fix.
//
//	go run ./examples/diagnose
package main

import (
	"fmt"
	"log"

	"repro"
)

func run(spec repro.Spec) *repro.Run {
	r, err := repro.Execute(spec)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	spec := repro.Spec{App: "raytrace", Version: "orig", Platform: "svm", NumProcs: 16, Scale: 1}

	fmt.Println("Step 1 — the symptom: SPLASH-2 Raytrace on SVM.")
	orig := run(spec)
	fmt.Print(orig.BreakdownTable())

	fmt.Println("\nStep 2 — the hypothesis: lock wait dominates, and the paper suggests")
	fmt.Println("critical sections are dilated by page faults. Re-run with faults inside")
	fmt.Println("critical sections made free (the paper's simulator diagnostic):")
	specFree := spec
	specFree.FreeCSFaults = true
	free := run(specFree)
	fmt.Printf("  normal: %12d cycles\n", orig.EndTime)
	fmt.Printf("  freeCS: %12d cycles  (%.1fx faster — dilation confirmed)\n",
		free.EndTime, float64(orig.EndTime)/float64(free.EndTime))

	fmt.Println("\nStep 3 — the culprit is a statistics lock taken once per ray.")
	fmt.Println("Eliminate it (version nolock):")
	specFix := spec
	specFix.Version = "nolock"
	fixed := run(specFix)
	fmt.Printf("  orig:   %12d cycles\n", orig.EndTime)
	fmt.Printf("  nolock: %12d cycles  (%.1fx faster)\n",
		fixed.EndTime, float64(orig.EndTime)/float64(fixed.EndTime))

	base := run(repro.Spec{App: "raytrace", Version: "orig", Platform: "svm", NumProcs: 1, Scale: 1})
	fmt.Printf("\nspeedups vs uniprocessor: orig %.2f -> nolock %.2f (paper: 0.5 -> 11.05)\n",
		float64(base.EndTime)/float64(orig.EndTime),
		float64(base.EndTime)/float64(fixed.EndTime))
}
