package main

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestParseProcs(t *testing.T) {
	good := []struct {
		in   string
		want []int
	}{
		{"1,2,4,8,16", []int{1, 2, 4, 8, 16}},
		{"16", []int{16}},
		{" 8 ,\t4 ", []int{8, 4}}, // whitespace tolerated, order preserved
	}
	for _, c := range good {
		got, err := parseProcs(c.in)
		if err != nil || !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseProcs(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	bad := []string{"", "0", "-1", "two", "1,,2", "1,2,1", "4,0x8", "1e3"}
	for _, in := range bad {
		if got, err := parseProcs(in); err == nil {
			t.Errorf("parseProcs(%q) = %v; want error", in, got)
		}
	}
}

// FuzzParseProcs pins the -procs contract: never panic, and any accepted
// list contains only positive, duplicate-free counts that round-trip through
// the same syntax.
func FuzzParseProcs(f *testing.F) {
	for _, s := range []string{"1,2,4,8,16", "16", "", "1,1", " 8 , 4 ", "0", "-3,2", "999999999999999999999"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		counts, err := parseProcs(s)
		if err != nil {
			return
		}
		if len(counts) == 0 {
			t.Fatalf("parseProcs(%q) accepted an empty list", s)
		}
		seen := map[int]bool{}
		parts := make([]string, len(counts))
		for i, n := range counts {
			if n < 1 {
				t.Fatalf("parseProcs(%q) accepted non-positive count %d", s, n)
			}
			if seen[n] {
				t.Fatalf("parseProcs(%q) accepted duplicate count %d", s, n)
			}
			seen[n] = true
			parts[i] = fmt.Sprint(n)
		}
		again, err := parseProcs(strings.Join(parts, ","))
		if err != nil || !reflect.DeepEqual(again, counts) {
			t.Fatalf("parseProcs round-trip of %v: got %v, %v", counts, again, err)
		}
	})
}
