// Command sweep runs one application version across processor counts on one
// or all platforms — the paper's §7 future-work question ("when we use real
// systems, we plan to investigate the issues with larger numbers of
// processors"), answerable here by simulation.
//
//	sweep -app ocean -version rows -platform svm -procs 1,2,4,8,16,32
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	_ "repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/platform"
)

func main() {
	app := flag.String("app", "ocean", "application name")
	version := flag.String("version", "rows", "application version")
	plat := flag.String("platform", "", "platform; empty = all three")
	procs := flag.String("procs", "1,2,4,8,16", "comma-separated processor counts")
	scale := flag.Float64("scale", 1, "problem size scale factor")
	flag.Parse()

	var counts []int
	for _, f := range strings.Split(*procs, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "sweep: bad processor count %q\n", f)
			os.Exit(2)
		}
		counts = append(counts, n)
	}
	plats := platform.Names
	if *plat != "" {
		plats = []string{*plat}
	}

	// Uniprocessor baselines of the original version, per platform.
	base := map[string]uint64{}
	for _, pl := range plats {
		run, err := harness.Execute(harness.Spec{
			App: *app, Version: "orig", Platform: pl, NumProcs: 1, Scale: *scale,
		})
		if err != nil {
			// Barnes names its original differently.
			run, err = harness.Execute(harness.Spec{
				App: *app, Version: "splash", Platform: pl, NumProcs: 1, Scale: *scale,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
		}
		base[pl] = run.EndTime
	}

	fmt.Printf("%s/%s speedup vs uniprocessor original (scale %.2g)\n", *app, *version, *scale)
	fmt.Printf("%6s", "P")
	for _, pl := range plats {
		fmt.Printf(" %8s", pl)
	}
	fmt.Println()
	for _, np := range counts {
		fmt.Printf("%6d", np)
		for _, pl := range plats {
			run, err := harness.Execute(harness.Spec{
				App: *app, Version: *version, Platform: pl, NumProcs: np, Scale: *scale,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			fmt.Printf(" %8.2f", float64(base[pl])/float64(run.EndTime))
		}
		fmt.Println()
	}
}
