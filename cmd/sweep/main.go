// Command sweep runs one application version across processor counts on one
// or all platforms — the paper's §7 future-work question ("when we use real
// systems, we plan to investigate the issues with larger numbers of
// processors"), answerable here by simulation.
//
// Sweep is a thin rendering over internal/campaign: the cell matrix
// (processor counts × platforms, plus each platform's uniprocessor baseline
// of the original version) comes from campaign.SweepCells, and execution is
// the same journalless local runner a one-app campaign uses. For anything
// bigger — many apps, predicates, resumability, a serve fleet — use
// cmd/campaign.
//
// A failing cell prints as "error" while the rest of the sweep completes;
// failures are listed on stderr and the exit code is 1.
//
//	sweep -app ocean -version rows -platform svm -procs 1,2,4,8,16,32
//	sweep -app ocean -version rows -store DIR   # incremental: cached cells are not re-simulated
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	_ "repro/internal/apps"
	"repro/internal/campaign"
	"repro/internal/harness"
	"repro/internal/platform"
)

// parseProcs keeps the historical name alive in this package for the fuzz
// target; the grammar itself lives in internal/campaign, shared with
// cmd/campaign's spec axis.
func parseProcs(s string) ([]int, error) {
	return campaign.ParseProcs(s)
}

func main() {
	app := flag.String("app", "ocean", "application name")
	version := flag.String("version", "rows", "application version")
	plat := flag.String("platform", "", "platform; empty = all three")
	procs := flag.String("procs", "1,2,4,8,16", "comma-separated processor counts")
	scale := flag.Float64("scale", 1, "problem size scale factor")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial)")
	storeDir := flag.String("store", "", "persistent result store directory; already-computed cells are loaded instead of simulated")
	flag.Parse()

	counts, err := parseProcs(*procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	plats := platform.Names
	if *plat != "" {
		plats = []string{*plat}
	}

	memo, err := campaign.OpenMemo(*storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	cells := campaign.SweepCells(*app, *version, plats, counts, *scale)
	runner := &campaign.Runner{
		Name:  "sweep",
		Cells: cells,
		Exec:  &campaign.Local{Memo: memo, Workers: *workers},
	}
	rep, _ := runner.Run(context.Background()) // no journal and a background ctx: never interrupted

	// Render the table serially from the settled entries, so it is
	// byte-identical to a serial run regardless of -workers.
	orig := campaign.OrigVersion(*app)
	end := func(v string, np int, pl string) (uint64, bool) {
		spec := harness.Spec{App: *app, Version: v, Platform: pl, NumProcs: np, Scale: *scale}
		e, ok := rep.Entries[spec.MemoKey()]
		if !ok || e.Status != "done" || e.End == 0 {
			return 0, false
		}
		return e.End, true
	}
	fmt.Printf("%s/%s speedup vs uniprocessor original (scale %.2g)\n", *app, *version, *scale)
	fmt.Printf("%6s", "P")
	for _, pl := range plats {
		fmt.Printf(" %8s", pl)
	}
	fmt.Println()
	for _, np := range counts {
		fmt.Printf("%6d", np)
		for _, pl := range plats {
			base, okB := end(orig, 1, pl)
			run, okR := end(*version, np, pl)
			if !okB || !okR {
				fmt.Printf(" %8s", "error")
				continue
			}
			fmt.Printf(" %8.2f", float64(base)/float64(run))
		}
		fmt.Println()
	}

	fmt.Fprintf(os.Stderr, "sweep: cache: %s\n", memo.Stats())

	if fails := rep.Failed(); len(fails) > 0 {
		inMatrix := map[int]bool{}
		for _, np := range counts {
			inMatrix[np] = true
		}
		var lines []string
		for _, c := range rep.Cells {
			e, ok := rep.Entries[c.Key]
			if !ok || e.Status != "failed" {
				continue
			}
			what := fmt.Sprintf("P=%d on %s", c.Spec.NumProcs, c.Spec.Platform)
			if c.Spec.Version != *version || !inMatrix[c.Spec.NumProcs] {
				what = "baseline on " + c.Spec.Platform
			}
			msg := e.Msg
			if msg == "" {
				msg = e.Kind
			}
			lines = append(lines, fmt.Sprintf("  %s: %s", what, msg))
		}
		sort.Strings(lines)
		fmt.Fprintf(os.Stderr, "sweep: %d cell(s) failed:\n", len(fails))
		for _, l := range lines {
			fmt.Fprintln(os.Stderr, l)
		}
		os.Exit(1)
	}
}
