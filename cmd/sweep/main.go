// Command sweep runs one application version across processor counts on one
// or all platforms — the paper's §7 future-work question ("when we use real
// systems, we plan to investigate the issues with larger numbers of
// processors"), answerable here by simulation.
//
// The (processor count × platform) matrix, including the per-platform
// uniprocessor baselines, is executed by a bounded worker pool and printed
// serially, so the table is byte-identical to a serial run regardless of
// -workers. A failing cell prints as "error" while the rest of the sweep
// completes; failures are listed on stderr and the exit code is 1.
//
//	sweep -app ocean -version rows -platform svm -procs 1,2,4,8,16,32
//	sweep -app ocean -version rows -store DIR   # incremental: cached cells are not re-simulated
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	_ "repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/store"
)

// cell is one experiment of the sweep matrix; np == 0 marks the platform's
// uniprocessor baseline of the original version.
type cell struct {
	np   int
	plat string
}

// parseProcs parses a -procs flag value: comma-separated positive integers
// with no duplicates. A dup would either waste a run or (worse) silently
// render the same column twice.
func parseProcs(s string) ([]int, error) {
	var counts []int
	seen := map[int]bool{}
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad processor count %q (want a positive integer)", strings.TrimSpace(f))
		}
		if seen[n] {
			return nil, fmt.Errorf("duplicate processor count %d in -procs %q", n, s)
		}
		seen[n] = true
		counts = append(counts, n)
	}
	return counts, nil
}

func main() {
	app := flag.String("app", "ocean", "application name")
	version := flag.String("version", "rows", "application version")
	plat := flag.String("platform", "", "platform; empty = all three")
	procs := flag.String("procs", "1,2,4,8,16", "comma-separated processor counts")
	scale := flag.Float64("scale", 1, "problem size scale factor")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial)")
	storeDir := flag.String("store", "", "persistent result store directory; already-computed cells are loaded instead of simulated")
	flag.Parse()

	counts, err := parseProcs(*procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	plats := platform.Names
	if *plat != "" {
		plats = []string{*plat}
	}

	var cells []cell
	for _, pl := range plats {
		cells = append(cells, cell{0, pl})
		for _, np := range counts {
			cells = append(cells, cell{np, pl})
		}
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
	}
	// All executions flow through one spec-keyed memo, so duplicate cells
	// coalesce and, with -store, completed cells survive across sweeps.
	memo := harness.NewMemo(st)

	var mu sync.Mutex
	runs := map[cell]*stats.Run{}
	errs := map[cell]error{}

	exec := func(c cell) (*stats.Run, error) {
		if c.np == 0 {
			// Baseline: uniprocessor original version. Barnes names
			// its original differently.
			run, err := memo.Run(harness.Spec{
				App: *app, Version: "orig", Platform: c.plat, NumProcs: 1, Scale: *scale,
			})
			if err != nil {
				run, err = memo.Run(harness.Spec{
					App: *app, Version: "splash", Platform: c.plat, NumProcs: 1, Scale: *scale,
				})
			}
			return run, err
		}
		return memo.Run(harness.Spec{
			App: *app, Version: *version, Platform: c.plat, NumProcs: c.np, Scale: *scale,
		})
	}

	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	work := make(chan cell)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				run, err := exec(c)
				mu.Lock()
				if err != nil {
					errs[c] = err
				} else {
					runs[c] = run
				}
				mu.Unlock()
			}
		}()
	}
	for _, c := range cells {
		work <- c
	}
	close(work)
	wg.Wait()

	fmt.Printf("%s/%s speedup vs uniprocessor original (scale %.2g)\n", *app, *version, *scale)
	fmt.Printf("%6s", "P")
	for _, pl := range plats {
		fmt.Printf(" %8s", pl)
	}
	fmt.Println()
	for _, np := range counts {
		fmt.Printf("%6d", np)
		for _, pl := range plats {
			base, run := runs[cell{0, pl}], runs[cell{np, pl}]
			if base == nil || run == nil {
				fmt.Printf(" %8s", "error")
				continue
			}
			fmt.Printf(" %8.2f", float64(base.EndTime)/float64(run.EndTime))
		}
		fmt.Println()
	}

	fmt.Fprintf(os.Stderr, "sweep: cache: %s\n", memo.Stats())

	if len(errs) > 0 {
		var lines []string
		for c, err := range errs {
			what := fmt.Sprintf("P=%d on %s", c.np, c.plat)
			if c.np == 0 {
				what = "baseline on " + c.plat
			}
			msg := err.Error()
			if i := strings.IndexByte(msg, '\n'); i >= 0 {
				msg = msg[:i] + " ..."
			}
			lines = append(lines, fmt.Sprintf("  %s: %s", what, msg))
		}
		sort.Strings(lines)
		fmt.Fprintf(os.Stderr, "sweep: %d cell(s) failed:\n", len(errs))
		for _, l := range lines {
			fmt.Fprintln(os.Stderr, l)
		}
		os.Exit(1)
	}
}
