// Command serve runs the simulation-serving layer: an HTTP service over the
// experiment cache, with a persistent result store, cross-request
// singleflight, bounded admission, per-request timeouts, and graceful drain
// on SIGTERM/SIGINT.
//
//	serve -addr :8080 -store /var/cache/svmsim
//
// Endpoints: /run (the exact `svmsim -json` bytes for a spec), /figures,
// /healthz, /metrics. See internal/server for the full contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	_ "repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "", "persistent result store directory (empty = in-memory cache only)")
	storeMax := flag.Int("store-max", 8192, "GC the store down to this many entries (0 = unbounded)")
	storeMaxAge := flag.Duration("store-max-age", 0, "GC store entries not used within this duration (0 = no age bound)")
	inflight := flag.Int("inflight", runtime.GOMAXPROCS(0), "max concurrently executing requests")
	queue := flag.Int("queue", 64, "max requests waiting for a slot before shedding with 429")
	timeout := flag.Duration("timeout", 120*time.Second, "per-request deadline")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget after SIGTERM/SIGINT")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix("serve: ")

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		gc := func() {
			if evicted, err := st.GC(store.GCPolicy{MaxEntries: *storeMax, MaxAge: *storeMaxAge}); err != nil {
				log.Printf("store GC: %v", err)
			} else if evicted > 0 {
				log.Printf("store GC: evicted %d entries", evicted)
			}
		}
		gc()
		go func() {
			for range time.Tick(5 * time.Minute) {
				gc()
			}
		}()
		log.Printf("store %s (fingerprint %s)", st.Dir(), store.Fingerprint())
	}

	memo := harness.NewMemo(st)
	srv := &http.Server{
		Addr: *addr,
		Handler: server.New(server.Config{
			Memo:        memo,
			MaxInflight: *inflight,
			MaxQueue:    *queue,
			Timeout:     *timeout,
		}),
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("listening on %s (inflight %d, queue %d, timeout %s)", *addr, *inflight, *queue, *timeout)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("draining (up to %s)...", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	fmt.Fprintf(os.Stderr, "serve: cache: %s\n", memo.Stats())
}
