// Command serve runs the simulation-serving layer: an HTTP service over the
// experiment cache, with a persistent result store, cross-request
// singleflight, bounded admission, per-request timeouts, and graceful drain
// on SIGTERM/SIGINT.
//
//	serve -addr :8080 -store /var/cache/svmsim
//
// With -peers, N serve processes form a consistent-hash sharded fleet:
// each /run cell has exactly one owner node, non-owners forward to it (so
// a unique cold cell is simulated exactly once cluster-wide), and a dead
// owner degrades to local compute-and-cache. A local 3-node fleet:
//
//	PEERS=127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083
//	serve -addr 127.0.0.1:8081 -peers $PEERS -store /tmp/s1 &
//	serve -addr 127.0.0.1:8082 -peers $PEERS -store /tmp/s2 &
//	serve -addr 127.0.0.1:8083 -peers $PEERS -store /tmp/s3 &
//
// Endpoints: /run (GET: the exact `svmsim -json` bytes for a spec; POST: a
// JSON array of cells answered as streamed NDJSON), /figures, /healthz
// (503 once drain begins, so peers and load balancers stop routing here),
// /metrics. See internal/server for the full contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	_ "repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "", "persistent result store directory (empty = in-memory cache only)")
	storeMax := flag.Int("store-max", 8192, "GC the store down to this many entries (0 = unbounded)")
	storeMaxAge := flag.Duration("store-max-age", 0, "GC store entries not used within this duration (0 = no age bound)")
	inflight := flag.Int("inflight", runtime.GOMAXPROCS(0), "max concurrently executing requests")
	queue := flag.Int("queue", 64, "max requests waiting for a slot before shedding with 429")
	timeout := flag.Duration("timeout", 120*time.Second, "per-request deadline")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget after SIGTERM/SIGINT")
	peers := flag.String("peers", "", "comma-separated fleet membership (advertised addresses incl. this node); empty = single-node")
	self := flag.String("self", "", "this node's advertised address (default: -addr, with 127.0.0.1 filled in for a bare :port)")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per member on the consistent-hash ring")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "peer /healthz probe period")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix("serve: ")

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		gc := func() {
			if evicted, err := st.GC(store.GCPolicy{MaxEntries: *storeMax, MaxAge: *storeMaxAge}); err != nil {
				log.Printf("store GC: %v", err)
			} else if evicted > 0 {
				log.Printf("store GC: evicted %d entries", evicted)
			}
		}
		gc()
		go func() {
			for range time.Tick(5 * time.Minute) {
				gc()
			}
		}()
		log.Printf("store %s (fingerprint %s)", st.Dir(), store.Fingerprint())
	}

	var cl *cluster.Cluster
	if *peers != "" {
		advertised := *self
		if advertised == "" {
			advertised = *addr
			if strings.HasPrefix(advertised, ":") {
				advertised = "127.0.0.1" + advertised
			}
		}
		var members []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				members = append(members, p)
			}
		}
		var err error
		cl, err = cluster.New(cluster.Config{
			Self:          advertised,
			Peers:         members,
			VNodes:        *vnodes,
			ProbeInterval: *probeInterval,
		})
		if err != nil {
			log.Fatal(err)
		}
		cl.Start()
		defer cl.Stop()
		log.Printf("cluster member %s of %v (%d vnodes, probe every %s)", advertised, cl.Members(), *vnodes, *probeInterval)
	}

	memo := harness.NewMemo(st)
	handler := server.New(server.Config{
		Memo:        memo,
		MaxInflight: *inflight,
		MaxQueue:    *queue,
		Timeout:     *timeout,
		Cluster:     cl,
	})
	srv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("listening on %s (inflight %d, queue %d, timeout %s)", *addr, *inflight, *queue, *timeout)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	// Flip /healthz to 503 FIRST: cluster peers and load balancers stop
	// steering traffic here while in-flight requests finish below.
	handler.Drain()
	log.Printf("draining (up to %s)...", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	fmt.Fprintf(os.Stderr, "serve: cache: %s\n", memo.Stats())
}
