// Command svmsim runs one application version on one platform model and
// prints the per-processor execution time breakdown, counters, and speedup
// versus the uniprocessor original — the tool used to reproduce any single
// data point from the paper.
//
// Usage:
//
//	svmsim -app lu -version 4da -platform svm -p 16 -scale 1.0 [-speedup] [-freecs]
//	svmsim -app lu -version 4d -platform svm -trace out.json   # Perfetto timeline
//	svmsim -app radix -json                                    # machine-readable result
package main

import (
	"flag"
	"fmt"
	"os"

	_ "repro/internal/apps"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	app := flag.String("app", "lu", "application name")
	version := flag.String("version", "orig", "application version")
	plat := flag.String("platform", "svm", "platform: svm, smp, dsm")
	np := flag.Int("p", 16, "number of simulated processors")
	scale := flag.Float64("scale", 1.0, "problem size scale factor")
	speedup := flag.Bool("speedup", false, "also compute speedup vs uniprocessor original")
	freecs := flag.Bool("freecs", false, "paper diagnostic: page faults inside critical sections are free")
	hot := flag.Bool("hot", false, "print the SVM hot-page / hot-lock profile (paper §6's performance tool)")
	list := flag.Bool("list", false, "list applications and versions")
	traceOut := flag.String("trace", "", "write a Chrome/Perfetto trace of protocol events to this file")
	traceBuf := flag.Int("trace-buffer", 0, "keep the last N protocol events for post-mortem dumps on simulation errors")
	sample := flag.Uint64("sample", 0, "sample the breakdown every N cycles into the trace (default 100000 with -trace)")
	jsonOut := flag.Bool("json", false, "print the result as machine-readable JSON instead of tables")
	check := flag.Bool("check", false, "enable runtime invariant checking (scheduler, protocol state, accounting)")
	storeDir := flag.String("store", "", "persistent result store directory; a cached cell is loaded instead of simulated (ignored with -trace/-sample/-hot)")
	flag.Parse()

	if *list {
		for _, name := range core.Apps() {
			a, _ := core.Lookup(name)
			fmt.Printf("%s:\n", name)
			for _, v := range a.Versions() {
				fmt.Printf("  %-10s %-5s %s\n", v.Name, v.Class, v.Desc)
			}
		}
		return
	}

	spec := harness.Spec{
		App: *app, Version: *version, Platform: *plat,
		NumProcs: *np, Scale: *scale, FreeCSFaults: *freecs,
		TraceRing: *traceBuf, Check: *check,
	}
	var chrome *trace.Chrome
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "svmsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		chrome = trace.NewChrome(f)
		spec.TraceSink = chrome
		spec.SampleInterval = *sample
		if spec.SampleInterval == 0 {
			spec.SampleInterval = 100000
		}
	} else if *sample > 0 {
		spec.SampleInterval = *sample
	}

	// Execution path: -hot needs the profiling hook (never cached), and
	// trace-carrying specs bypass the cache inside Memo.Run; everything
	// else goes through the memo so -store can answer without simulating.
	memo, merr := campaign.OpenMemo(*storeDir)
	if merr != nil {
		fmt.Fprintln(os.Stderr, "svmsim:", merr)
		os.Exit(1)
	}

	var run *stats.Run
	var report string
	var err error
	if *hot {
		run, report, err = harness.ExecuteProfiled(spec)
	} else {
		run, err = memo.Run(spec)
	}
	if chrome != nil {
		if cerr := chrome.Close(); cerr != nil && err == nil {
			fmt.Fprintln(os.Stderr, "svmsim: writing trace:", cerr)
		}
	}
	if err != nil {
		if *jsonOut {
			// Failed cells still produce parseable output: a structured
			// error object on stdout, alongside the stderr message.
			if out, jerr := harness.RunErrorJSON(spec, err); jerr == nil {
				fmt.Printf("%s\n", out)
			}
		}
		fmt.Fprintln(os.Stderr, "svmsim:", err)
		os.Exit(1)
	}

	var spFactor float64
	if *speedup {
		a, _ := core.Lookup(*app)
		base, err := memo.Run(harness.Spec{
			App: *app, Version: a.Versions()[0].Name, Platform: *plat,
			NumProcs: 1, Scale: *scale,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "svmsim:", err)
			os.Exit(1)
		}
		spFactor = float64(base.EndTime) / float64(run.EndTime)
	}

	if *jsonOut {
		out, err := harness.RunJSON(spec, run, spFactor)
		if err != nil {
			fmt.Fprintln(os.Stderr, "svmsim:", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", out)
		return
	}

	fmt.Print(run.BreakdownTable())
	if report != "" {
		fmt.Print(report)
	}
	c := run.AggregateCounters()
	fmt.Printf("counters: reads=%d writes=%d faults=%d fetches=%d twins=%d diffs=%d inval=%d locks=%d remote=%d bus=%d tasks=%d stolen=%d\n",
		c.Reads, c.Writes, c.PageFaults, c.PageFetches, c.TwinsMade, c.DiffsCreated,
		c.Invalidations, c.LockAcquires, c.RemoteMisses, c.BusTransactions, c.TasksRun, c.TasksStolen)
	if *traceOut != "" {
		fmt.Printf("trace written to %s (load in https://ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}

	if *speedup {
		fmt.Printf("speedup vs uniprocessor %s/orig: %.2f\n", *app, spFactor)
	}
}
