package main

import (
	"testing"
	"time"
)

func TestParseCells(t *testing.T) {
	cells, err := parseCells("lu/orig@svm:8, ocean/rows@dsm:16")
	if err != nil {
		t.Fatal(err)
	}
	want := []cell{{"lu", "orig", "svm", 8}, {"ocean", "rows", "dsm", 16}}
	if len(cells) != len(want) {
		t.Fatalf("parsed %d cells, want %d", len(cells), len(want))
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Errorf("cell %d = %+v, want %+v", i, cells[i], want[i])
		}
	}
	for _, bad := range []string{
		"", "lu@svm:8", "lu/orig@svm", "lu/orig@svm:0", "lu/orig@svm:x",
		// Empty components used to parse and only fail later as server
		// 422s mid-run; they must be rejected up front (exit 2 in main).
		"/@:4", "/orig@svm:4", "lu/@svm:4", "lu/orig@:4",
	} {
		if _, err := parseCells(bad); err == nil {
			t.Errorf("parseCells(%q) accepted", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	lats := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(lats, 50); p != 5 {
		t.Errorf("p50 = %d, want 5", p)
	}
	if p := percentile(lats, 100); p != 10 {
		t.Errorf("p100 = %d, want 10", p)
	}
	if p := percentile(nil, 99); p != 0 {
		t.Errorf("empty p99 = %d, want 0", p)
	}
}
