package main

import (
	"testing"
	"time"
)

func TestParseCells(t *testing.T) {
	cells, err := parseCells("lu/orig@svm:8, ocean/rows@dsm:16")
	if err != nil {
		t.Fatal(err)
	}
	want := []cell{{"lu", "orig", "svm", 8}, {"ocean", "rows", "dsm", 16}}
	if len(cells) != len(want) {
		t.Fatalf("parsed %d cells, want %d", len(cells), len(want))
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Errorf("cell %d = %+v, want %+v", i, cells[i], want[i])
		}
	}
	for _, bad := range []string{
		"", "lu@svm:8", "lu/orig@svm", "lu/orig@svm:0", "lu/orig@svm:x",
		// Empty components used to parse and only fail later as server
		// 422s mid-run; they must be rejected up front (exit 2 in main).
		"/@:4", "/orig@svm:4", "lu/@svm:4", "lu/orig@:4",
	} {
		if _, err := parseCells(bad); err == nil {
			t.Errorf("parseCells(%q) accepted", bad)
		}
	}
}

// TestPickerZipfDeterministic: the Zipf cell chooser is seeded — same
// seed, same worker, same request sequence — so a committed
// BENCH_serve.json run is reproducible, and skew favors the first cell.
func TestPickerZipfDeterministic(t *testing.T) {
	const n = 2000
	a := newPicker(1.2, 42, 3, 8)
	b := newPicker(1.2, 42, 3, 8)
	counts := make([]int, 8)
	for i := 0; i < n; i++ {
		av, bv := a(i), b(i)
		if av != bv {
			t.Fatalf("pick %d: %d vs %d from identical seeds", i, av, bv)
		}
		if av < 0 || av >= 8 {
			t.Fatalf("pick %d out of range: %d", i, av)
		}
		counts[av]++
	}
	if counts[0] <= n/4 {
		t.Errorf("zipf head cell got %d/%d picks; want a heavy head", counts[0], n)
	}
	if c := newPicker(1.2, 43, 3, 8); func() bool {
		for i := 0; i < 64; i++ {
			if a(i) != c(i) {
				return true
			}
		}
		return false
	}() == false {
		t.Error("different seeds produced identical pick streams")
	}

	// s == 0: even rotation, offset by worker.
	r := newPicker(0, 1, 2, 5)
	for i := 0; i < 10; i++ {
		if got, want := r(i), (i+2)%5; got != want {
			t.Fatalf("rotation pick(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestParseMetricLine(t *testing.T) {
	if v, ok := parseMetricLine("svmserve_simulations_total 42", "svmserve_simulations_total"); !ok || v != 42 {
		t.Errorf("parse = %v %v, want 42 true", v, ok)
	}
	for _, line := range []string{
		"svmserve_simulations_totals 42",         // different name
		"# HELP svmserve_simulations_total sims", // comment
		`svmserve_requests_total{path="/run"} 3`, // labeled
		"svmserve_simulations_total notanumber",  // bad value
	} {
		if _, ok := parseMetricLine(line, "svmserve_simulations_total"); ok {
			t.Errorf("parseMetricLine accepted %q", line)
		}
	}
}

func TestParseAddrs(t *testing.T) {
	got := parseAddrs(" http://a:1 , http://b:2/ ,", "http://fallback:9")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Errorf("parseAddrs cluster = %v", got)
	}
	got = parseAddrs("", "http://fallback:9/")
	if len(got) != 1 || got[0] != "http://fallback:9" {
		t.Errorf("parseAddrs fallback = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	lats := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(lats, 50); p != 5 {
		t.Errorf("p50 = %d, want 5", p)
	}
	if p := percentile(lats, 100); p != 10 {
		t.Errorf("p100 = %d, want 10", p)
	}
	if p := percentile(nil, 99); p != 0 {
		t.Errorf("empty p99 = %d, want 0", p)
	}
}
