// Command loadgen hammers a serve instance — or a whole serve fleet — with
// a mix of /run cells and reports throughput and latency percentiles, so
// the cache, request coalescing, and cluster routing are benchmarked rather
// than assumed. Run it twice against the same store-backed fleet to measure
// cold vs warm service:
//
//	loadgen -addrs http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 \
//	        -cells "lu/orig@svm:8,ocean/rows@svm:8,radix/orig@svm:8" \
//	        -scale 0.25 -c 16 -n 20000 -zipf 1.2 -seed 1 -json
//
// Requests round-robin across the fleet's nodes. With -zipf, cell
// popularity is skewed by a seeded Zipf generator (the first cell of the
// mix is the most popular) — the realistic shape for a cache-backed
// service, and the adversarial one for a sharded fleet, since the hot
// cell's owner takes the brunt through forwarding. Without it, workers
// rotate through the mix evenly.
//
// After the run, loadgen scrapes every node's /metrics and reports the
// fleet-wide simulation count and simulations-per-unique-cell — the
// cluster's cache-perfection invariant (exactly 1 on a cold store, 0 warm).
// -json emits the whole report machine-readable on stdout; BENCH_serve.json
// at the repo root is a committed pair of such reports (cold + warm).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// cell is one /run target of the mix.
type cell struct {
	app, version, platform string
	procs                  int
}

// parseCells parses "app/version@platform:procs,..." into the cell mix.
func parseCells(s string) ([]cell, error) {
	var cells []cell
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		av, rest, ok := strings.Cut(f, "@")
		if !ok {
			return nil, fmt.Errorf("bad cell %q (want app/version@platform:procs)", f)
		}
		app, version, ok := strings.Cut(av, "/")
		if !ok {
			return nil, fmt.Errorf("bad cell %q: missing /version", f)
		}
		platform, procsStr, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("bad cell %q: missing :procs", f)
		}
		// An empty component would parse here and only surface later as a
		// confusing server 422 mid-run; reject it up front instead.
		switch {
		case app == "":
			return nil, fmt.Errorf("bad cell %q: empty app", f)
		case version == "":
			return nil, fmt.Errorf("bad cell %q: empty version", f)
		case platform == "":
			return nil, fmt.Errorf("bad cell %q: empty platform", f)
		}
		procs, err := strconv.Atoi(procsStr)
		if err != nil || procs < 1 {
			return nil, fmt.Errorf("bad cell %q: bad processor count %q", f, procsStr)
		}
		cells = append(cells, cell{app, version, platform, procs})
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("empty cell mix")
	}
	return cells, nil
}

// parseAddrs splits -addrs, falling back to the single -addr.
func parseAddrs(addrs, addr string) []string {
	var out []string
	for _, a := range strings.Split(addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, strings.TrimSuffix(a, "/"))
		}
	}
	if len(out) == 0 {
		out = []string{strings.TrimSuffix(addr, "/")}
	}
	return out
}

// newPicker returns the cell-index chooser for one worker: a seeded Zipf
// generator when s > 0 (rank 0 = the first cell = most popular), or
// even rotation from a per-worker offset when s == 0. Each worker gets
// its own deterministic stream — same seed, same workload, run to run.
func newPicker(zipfS float64, seed int64, worker, ncells int) func(i int) int {
	if zipfS > 0 {
		z := rand.NewZipf(rand.New(rand.NewSource(seed+int64(worker)*7919)), zipfS, 1, uint64(ncells-1))
		return func(int) int { return int(z.Uint64()) }
	}
	return func(i int) int { return (i + worker) % ncells }
}

// percentile returns the p-th percentile (0..100) of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(sorted)-1))
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// scrapeMetric fetches base/metrics and returns the value of the first
// sample named metric (exact name, no labels).
func scrapeMetric(client *http.Client, base, metric string) (float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s/metrics: HTTP %d", base, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if v, ok := parseMetricLine(sc.Text(), metric); ok {
			return v, nil
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("metric %q not found at %s/metrics", metric, base)
}

// parseMetricLine matches one Prometheus text line against an exact,
// label-less metric name.
func parseMetricLine(line, metric string) (float64, bool) {
	rest, ok := strings.CutPrefix(line, metric+" ")
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// sumMetric totals a metric across the fleet; ok reports every node
// answered.
func sumMetric(client *http.Client, addrs []string, metric string) (total float64, ok bool) {
	ok = true
	for _, a := range addrs {
		v, err := scrapeMetric(client, a, metric)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: scrape: %v\n", err)
			ok = false
			continue
		}
		total += v
	}
	return total, ok
}

// latencyMs is a percentile summary in milliseconds.
type latencyMs struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

func summarize(lats []time.Duration) latencyMs {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	out := latencyMs{
		P50: ms(percentile(lats, 50)),
		P90: ms(percentile(lats, 90)),
		P99: ms(percentile(lats, 99)),
	}
	if len(lats) > 0 {
		out.Max = ms(lats[len(lats)-1])
	}
	return out
}

// nodeReport is one fleet member's slice of the load.
type nodeReport struct {
	Addr     string    `json:"addr"`
	Requests int       `json:"requests"`
	Latency  latencyMs `json:"latency_ms"`
}

// report is the machine-readable result (-json; committed as
// BENCH_serve.json phases).
type report struct {
	Addrs             []string       `json:"addrs"`
	Requests          int            `json:"requests"`
	Workers           int            `json:"workers"`
	UniqueCells       int            `json:"unique_cells"`
	ZipfS             float64        `json:"zipf_s,omitempty"`
	Seed              int64          `json:"seed"`
	ElapsedSeconds    float64        `json:"elapsed_seconds"`
	ReqPerSec         float64        `json:"req_per_sec"`
	Latency           latencyMs      `json:"latency_ms"`
	Status            map[string]int `json:"status"`
	TransportErrors   int            `json:"transport_errors"`
	PerNode           []nodeReport   `json:"per_node"`
	FleetSimulations  float64        `json:"fleet_simulations"`
	SimsPerUniqueCell float64        `json:"sims_per_unique_cell"`
	ClusterForwards   float64        `json:"cluster_forwards"`
	ClusterFallbacks  float64        `json:"cluster_fallbacks"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "serve base URL (single node)")
	addrsFlag := flag.String("addrs", "", "comma-separated serve base URLs (cluster mode; overrides -addr)")
	cellsFlag := flag.String("cells", "lu/orig@svm:8,ocean/rows@svm:8,radix/orig@svm:8", "comma-separated cell mix: app/version@platform:procs")
	scale := flag.Float64("scale", 1, "problem size scale for every cell")
	conc := flag.Int("c", 8, "concurrent client workers")
	n := flag.Int("n", 1000, "total requests to issue")
	zipfS := flag.Float64("zipf", 0, "Zipf skew for cell popularity (> 1; 0 = even rotation). First cell = most popular")
	seed := flag.Int64("seed", 1, "seed for the Zipf cell-popularity generator")
	jsonOut := flag.Bool("json", false, "emit the machine-readable report on stdout instead of text")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	cells, err := parseCells(*cellsFlag)
	if err != nil {
		fail(err)
	}
	if *zipfS != 0 && *zipfS <= 1 {
		fail(fmt.Errorf("-zipf must be > 1 (rand.Zipf's s parameter), got %g", *zipfS))
	}
	addrs := parseAddrs(*addrsFlag, *addr)

	paths := make([]string, len(cells))
	for i, c := range cells {
		q := url.Values{}
		q.Set("app", c.app)
		q.Set("version", c.version)
		q.Set("platform", c.platform)
		q.Set("p", strconv.Itoa(c.procs))
		q.Set("scale", strconv.FormatFloat(*scale, 'g', -1, 64))
		paths[i] = "/run?" + q.Encode()
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *conc}}

	simsBefore, simsBeforeOK := sumMetric(client, addrs, "svmserve_simulations_total")
	fwdBefore, _ := sumMetric(client, addrs, "svmserve_cluster_forward_total")
	fbBefore, _ := sumMetric(client, addrs, "svmserve_cluster_fallback_total")

	type sample struct {
		d    time.Duration
		code int
		node int
		cell int
		err  bool
	}
	samples := make([]sample, *n)
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= *n {
			return -1
		}
		i := int(next)
		next++
		return i
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pick := newPicker(*zipfS, *seed, w, len(cells))
			for {
				i := take()
				if i < 0 {
					return
				}
				ci := pick(i)
				node := i % len(addrs)
				t0 := time.Now()
				resp, err := client.Get(addrs[node] + paths[ci])
				d := time.Since(t0)
				if err != nil {
					samples[i] = sample{d, 0, node, ci, true}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				samples[i] = sample{d, resp.StatusCode, node, ci, false}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	codes := map[int]int{}
	var errs int
	lats := make([]time.Duration, 0, *n)
	nodeLats := make([][]time.Duration, len(addrs))
	uniqueCells := map[int]bool{}
	for _, s := range samples {
		uniqueCells[s.cell] = true
		if s.err {
			errs++
			continue
		}
		codes[s.code]++
		if s.code == 200 {
			lats = append(lats, s.d)
			nodeLats[s.node] = append(nodeLats[s.node], s.d)
		}
	}

	rep := report{
		Addrs:            addrs,
		Requests:         *n,
		Workers:          *conc,
		UniqueCells:      len(uniqueCells),
		ZipfS:            *zipfS,
		Seed:             *seed,
		ElapsedSeconds:   elapsed.Seconds(),
		ReqPerSec:        float64(*n) / elapsed.Seconds(),
		Status:           map[string]int{},
		TransportErrors:  errs,
		FleetSimulations: -1,
	}
	for c, cnt := range codes {
		rep.Status[strconv.Itoa(c)] = cnt
	}
	for ni, a := range addrs {
		nl := nodeLats[ni]
		rep.PerNode = append(rep.PerNode, nodeReport{Addr: a, Requests: len(nl), Latency: summarize(nl)})
	}
	rep.Latency = summarize(lats) // sorts lats; do this after per-node slicing

	simsAfter, simsAfterOK := sumMetric(client, addrs, "svmserve_simulations_total")
	if simsBeforeOK && simsAfterOK {
		rep.FleetSimulations = simsAfter - simsBefore
		if rep.UniqueCells > 0 {
			rep.SimsPerUniqueCell = rep.FleetSimulations / float64(rep.UniqueCells)
		}
	}
	if fwdAfter, ok := sumMetric(client, addrs, "svmserve_cluster_forward_total"); ok {
		rep.ClusterForwards = fwdAfter - fwdBefore
	}
	if fbAfter, ok := sumMetric(client, addrs, "svmserve_cluster_fallback_total"); ok {
		rep.ClusterFallbacks = fbAfter - fbBefore
	}

	if *jsonOut {
		enc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(append(enc, '\n'))
	} else {
		fmt.Printf("loadgen: %d requests, %d workers, %d cells, %d node(s), %.2fs\n",
			*n, *conc, len(cells), len(addrs), elapsed.Seconds())
		fmt.Printf("  throughput: %.1f req/s\n", rep.ReqPerSec)
		var codeKeys []int
		for c := range codes {
			codeKeys = append(codeKeys, c)
		}
		sort.Ints(codeKeys)
		for _, c := range codeKeys {
			fmt.Printf("  status %d: %d\n", c, codes[c])
		}
		if errs > 0 {
			fmt.Printf("  transport errors: %d\n", errs)
		}
		if len(lats) > 0 {
			fmt.Printf("  latency p50=%.3gms p90=%.3gms p99=%.3gms max=%.3gms\n",
				rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, rep.Latency.Max)
		}
		for _, nr := range rep.PerNode {
			fmt.Printf("  node %s: %d ok, p50=%.3gms p99=%.3gms\n", nr.Addr, nr.Requests, nr.Latency.P50, nr.Latency.P99)
		}
		if rep.FleetSimulations >= 0 {
			fmt.Printf("  fleet simulations: %g for %d unique cell(s) = %.3g sims/cell (forwards %g, fallbacks %g)\n",
				rep.FleetSimulations, rep.UniqueCells, rep.SimsPerUniqueCell, rep.ClusterForwards, rep.ClusterFallbacks)
		}
	}
	if codes[200] == 0 {
		os.Exit(1)
	}
}
