// Command loadgen hammers a serve instance with a mix of /run cells and
// reports throughput and latency percentiles, so the cache and request
// coalescing are benchmarked rather than assumed. Run it twice against the
// same store-backed server to measure cold vs warm service:
//
//	loadgen -addr http://127.0.0.1:8080 \
//	        -cells "lu/orig@svm:8,ocean/rows@svm:8,radix/orig@svm:8" \
//	        -scale 0.25 -c 8 -n 2000
//
// Each worker rotates through the cell mix from a different offset, so all
// cells see traffic under any concurrency.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// cell is one /run target of the mix.
type cell struct {
	app, version, platform string
	procs                  int
}

// parseCells parses "app/version@platform:procs,..." into the cell mix.
func parseCells(s string) ([]cell, error) {
	var cells []cell
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		av, rest, ok := strings.Cut(f, "@")
		if !ok {
			return nil, fmt.Errorf("bad cell %q (want app/version@platform:procs)", f)
		}
		app, version, ok := strings.Cut(av, "/")
		if !ok {
			return nil, fmt.Errorf("bad cell %q: missing /version", f)
		}
		platform, procsStr, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("bad cell %q: missing :procs", f)
		}
		// An empty component would parse here and only surface later as a
		// confusing server 422 mid-run; reject it up front instead.
		switch {
		case app == "":
			return nil, fmt.Errorf("bad cell %q: empty app", f)
		case version == "":
			return nil, fmt.Errorf("bad cell %q: empty version", f)
		case platform == "":
			return nil, fmt.Errorf("bad cell %q: empty platform", f)
		}
		procs, err := strconv.Atoi(procsStr)
		if err != nil || procs < 1 {
			return nil, fmt.Errorf("bad cell %q: bad processor count %q", f, procsStr)
		}
		cells = append(cells, cell{app, version, platform, procs})
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("empty cell mix")
	}
	return cells, nil
}

// percentile returns the p-th percentile (0..100) of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "serve base URL")
	cellsFlag := flag.String("cells", "lu/orig@svm:8,ocean/rows@svm:8,radix/orig@svm:8", "comma-separated cell mix: app/version@platform:procs")
	scale := flag.Float64("scale", 1, "problem size scale for every cell")
	conc := flag.Int("c", 8, "concurrent client workers")
	n := flag.Int("n", 1000, "total requests to issue")
	flag.Parse()

	cells, err := parseCells(*cellsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}
	urls := make([]string, len(cells))
	for i, c := range cells {
		q := url.Values{}
		q.Set("app", c.app)
		q.Set("version", c.version)
		q.Set("platform", c.platform)
		q.Set("p", strconv.Itoa(c.procs))
		q.Set("scale", strconv.FormatFloat(*scale, 'g', -1, 64))
		urls[i] = *addr + "/run?" + q.Encode()
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *conc}}
	type sample struct {
		d    time.Duration
		code int
		err  bool
	}
	samples := make([]sample, *n)
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= *n {
			return -1
		}
		i := int(next)
		next++
		return i
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				// Rotate through the mix from a per-worker offset.
				u := urls[(i+w)%len(urls)]
				t0 := time.Now()
				resp, err := client.Get(u)
				d := time.Since(t0)
				if err != nil {
					samples[i] = sample{d, 0, true}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				samples[i] = sample{d, resp.StatusCode, false}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	codes := map[int]int{}
	var errs int
	lats := make([]time.Duration, 0, *n)
	for _, s := range samples {
		if s.err {
			errs++
			continue
		}
		codes[s.code]++
		if s.code == 200 {
			lats = append(lats, s.d)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	fmt.Printf("loadgen: %d requests, %d workers, %d cells, %.2fs\n", *n, *conc, len(cells), elapsed.Seconds())
	fmt.Printf("  throughput: %.1f req/s\n", float64(*n)/elapsed.Seconds())
	var codeKeys []int
	for c := range codes {
		codeKeys = append(codeKeys, c)
	}
	sort.Ints(codeKeys)
	for _, c := range codeKeys {
		fmt.Printf("  status %d: %d\n", c, codes[c])
	}
	if errs > 0 {
		fmt.Printf("  transport errors: %d\n", errs)
	}
	if len(lats) > 0 {
		fmt.Printf("  latency p50=%s p90=%s p99=%s max=%s\n",
			percentile(lats, 50), percentile(lats, 90), percentile(lats, 99), lats[len(lats)-1])
	}
	if codes[200] == 0 {
		os.Exit(1)
	}
}
