// Command figures regenerates the paper's tables and figures: Figure 2 (the
// original versions across platforms), Figures 3-15 (per-processor execution
// time breakdowns on SVM), Figure 16 (optimization classes across all three
// platforms) and Figure 17 (Volrend stealing on SVM vs. DSM).
//
// Usage:
//
//	figures -all                # every figure, paper order
//	figures -fig fig16          # one figure
//	figures -headline           # the §4 per-application SVM progression
//	figures -p 16 -scale 1      # processors and a scale multiplier on top
//	                            # of each app's base problem size
package main

import (
	"flag"
	"fmt"
	"os"

	_ "repro/internal/apps"
	"repro/internal/harness"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (fig2..fig17); empty with -all for everything")
	all := flag.Bool("all", false, "regenerate every figure")
	headline := flag.Bool("headline", false, "print the per-application SVM speedup progression (paper §4)")
	np := flag.Int("p", 16, "number of simulated processors")
	scale := flag.Float64("scale", 1, "problem-size multiplier on top of per-app base scales")
	flag.Parse()

	r := harness.NewRunner(*np, *scale)

	emit := func(f harness.Figure) {
		fmt.Printf("== %s: %s ==\n", f.ID, f.Title)
		out, err := f.Run(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	switch {
	case *headline:
		out, err := harness.HeadlineSpeedups(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	case *all:
		for _, f := range harness.Figures() {
			emit(f)
		}
	case *fig != "":
		f, err := harness.FindFigure(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		emit(f)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
