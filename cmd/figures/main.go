// Command figures regenerates the paper's tables and figures: Figure 2 (the
// original versions across platforms), Figures 3-15 (per-processor execution
// time breakdowns on SVM), Figure 16 (optimization classes across all three
// platforms) and Figure 17 (Volrend stealing on SVM vs. DSM).
//
// The experiment matrix is pre-executed by a bounded worker pool (one
// deterministic single-goroutine simulation per worker at a time) and then
// rendered serially from the memo cache, so the output is byte-identical to
// a fully serial run regardless of -workers. A cell whose simulation fails
// (panic, deadlock, verification) renders as an error row; the rest of the
// figure still completes, failures are listed on stderr, and the exit code
// is 1.
//
// Usage:
//
//	figures -all                # every figure, paper order
//	figures -fig fig16          # one figure
//	figures -headline           # the §4 per-application SVM progression
//	figures -p 16 -scale 1      # processors and a scale multiplier on top
//	                            # of each app's base problem size
//	figures -all -workers 8     # at most 8 concurrent simulations
//	figures -all -store DIR     # persist results; a rerun simulates nothing
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	_ "repro/internal/apps"
	"repro/internal/campaign"
	"repro/internal/harness"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (fig2..fig17); empty with -all for everything")
	all := flag.Bool("all", false, "regenerate every figure")
	headline := flag.Bool("headline", false, "print the per-application SVM speedup progression (paper §4)")
	np := flag.Int("p", 16, "number of simulated processors")
	scale := flag.Float64("scale", 1, "problem-size multiplier on top of per-app base scales")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent simulations pre-executing the experiment matrix (1 = serial)")
	check := flag.Bool("check", false, "enable runtime invariant checking on every cell")
	storeDir := flag.String("store", "", "persistent result store directory; already-computed cells are loaded instead of simulated")
	flag.Parse()

	memo, err := campaign.OpenMemo(*storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	r := harness.NewRunnerWith(*np, *scale, memo)
	r.Check = *check

	var figs []harness.Figure
	var cells []harness.Cell
	switch {
	case *headline:
		cells = harness.HeadlineCells()
	case *all:
		figs = harness.Figures()
	case *fig != "":
		f, err := harness.FindFigure(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		figs = []harness.Figure{f}
	default:
		flag.Usage()
		os.Exit(2)
	}
	for _, f := range figs {
		cells = append(cells, f.Cells()...)
	}

	// Warm the memo cache in parallel; rendering below is serial cache
	// reads, so its bytes do not depend on -workers.
	r.RunParallel(*workers, cells)

	if *headline {
		out, err := harness.HeadlineSpeedups(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	for _, f := range figs {
		fmt.Printf("== %s: %s ==\n", f.ID, f.Title)
		out, err := f.Run(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	// Cache accounting goes to stderr so stdout stays byte-identical
	// regardless of -workers and -store.
	fmt.Fprintf(os.Stderr, "figures: cache: %s\n", r.CacheStats())

	if fails := r.FailedCells(); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d experiment(s) failed:\n", len(fails))
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
}
