package main

import (
	"strings"
	"testing"
)

func report(micro map[string]Micro) Report {
	return Report{Micro: micro}
}

// TestCompareOneSided pins the gate's one-sided contract: arbitrarily large
// improvements in ns/op or allocs/op must pass. The event-loop kernel rewrite
// made kernel_stream_32k ~3x faster and dropped 26 allocs/op; a two-sided
// band would have failed CI on the improvement itself.
func TestCompareOneSided(t *testing.T) {
	ref := report(map[string]Micro{"kernel_stream_32k": {NsPerOp: 844800, AllocsPerOp: 26}})
	cur := report(map[string]Micro{"kernel_stream_32k": {NsPerOp: 2000, AllocsPerOp: 0}})
	lines, failed := compare(ref, cur, 0.10)
	if failed {
		t.Fatalf("gate failed on a 400x improvement:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareNsRegressionBeyondToleranceFails(t *testing.T) {
	ref := report(map[string]Micro{"svm_fastaccess": {NsPerOp: 10, AllocsPerOp: 0}})
	cur := report(map[string]Micro{"svm_fastaccess": {NsPerOp: 12, AllocsPerOp: 0}})
	if _, failed := compare(ref, cur, 0.10); !failed {
		t.Fatal("gate passed a +20% ns/op regression at 10% tolerance")
	}
	if _, failed := compare(ref, cur, 0.50); failed {
		t.Fatal("gate failed a +20% ns/op change at 50% tolerance")
	}
}

func TestCompareAllocIncreaseFailsExactly(t *testing.T) {
	ref := report(map[string]Micro{"kernel_stream_32k": {NsPerOp: 1000, AllocsPerOp: 0}})
	cur := report(map[string]Micro{"kernel_stream_32k": {NsPerOp: 900, AllocsPerOp: 1}})
	if _, failed := compare(ref, cur, 0.50); !failed {
		t.Fatal("gate passed a 0 -> 1 allocs/op increase (allocs are compared exactly)")
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	ref := report(map[string]Micro{"emit_nilsink": {NsPerOp: 1, AllocsPerOp: 0}})
	cur := report(map[string]Micro{})
	lines, failed := compare(ref, cur, 0.50)
	if !failed {
		t.Fatal("gate passed with a reference benchmark missing from the current run")
	}
	if !strings.Contains(strings.Join(lines, "\n"), "missing from current run") {
		t.Fatalf("missing benchmark not reported:\n%s", strings.Join(lines, "\n"))
	}
}

// TestCompareNewBenchmarkReportedNotGated: a benchmark added in the current
// run (e.g. kernel_stream_lines_32k in the rewrite PR) is surfaced in the
// output but cannot fail the gate until the reference is re-baselined.
func TestCompareNewBenchmarkReportedNotGated(t *testing.T) {
	ref := report(map[string]Micro{"emit_nilsink": {NsPerOp: 1, AllocsPerOp: 0}})
	cur := report(map[string]Micro{
		"emit_nilsink":            {NsPerOp: 1, AllocsPerOp: 0},
		"kernel_stream_lines_32k": {NsPerOp: 470000, AllocsPerOp: 0},
	})
	lines, failed := compare(ref, cur, 0.50)
	if failed {
		t.Fatalf("gate failed on a benchmark that has no reference:\n%s", strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "kernel_stream_lines_32k") || !strings.Contains(joined, "not in reference") {
		t.Fatalf("new benchmark not reported:\n%s", joined)
	}
}

// TestCompareServeOneSided pins the fleet gate's contract: only a warm
// throughput drop beyond tolerance fails. Faster runs and p99 swings in
// either direction never do — latency is host-noisy and only reported.
func TestCompareServeOneSided(t *testing.T) {
	var ref ServeBench
	ref.Warm.ReqPerSec = 8519.1
	ref.Warm.Latency.P99 = 12.0

	fast := ServeRun{ReqPerSec: 20000}
	fast.Latency.P99 = 99.0 // much worse p99 must not gate
	if lines, failed := compareServe(ref, fast, 0.5); failed {
		t.Fatalf("serve gate failed on a 2.3x throughput improvement:\n%s", strings.Join(lines, "\n"))
	}

	slow := ServeRun{ReqPerSec: 4000}
	if _, failed := compareServe(ref, slow, 0.5); !failed {
		t.Fatal("serve gate passed a -53% throughput drop at 50% tolerance")
	}
	borderline := ServeRun{ReqPerSec: 4300}
	if _, failed := compareServe(ref, borderline, 0.5); failed {
		t.Fatal("serve gate failed a -49.5% drop at 50% tolerance (gate must be > tol, not >=)")
	}
}

func TestCompareServeReportsP99(t *testing.T) {
	var ref ServeBench
	ref.Warm.ReqPerSec = 100
	ref.Warm.Latency.P99 = 7.5
	cur := ServeRun{ReqPerSec: 100}
	cur.Latency.P99 = 9.25
	lines, _ := compareServe(ref, cur, 0.1)
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "7.50") || !strings.Contains(joined, "9.25") || !strings.Contains(joined, "not gated") {
		t.Fatalf("p99 not reported:\n%s", joined)
	}
}

// TestCompareDeterministicOrder: gate output is sorted by name so CI diffs
// between runs are stable.
func TestCompareDeterministicOrder(t *testing.T) {
	ref := report(map[string]Micro{
		"b_second": {NsPerOp: 1, AllocsPerOp: 0},
		"a_first":  {NsPerOp: 1, AllocsPerOp: 0},
	})
	lines, _ := compare(ref, ref, 0.10)
	if len(lines) != 2 || !strings.Contains(lines[0], "a_first") || !strings.Contains(lines[1], "b_second") {
		t.Fatalf("lines not sorted by benchmark name:\n%s", strings.Join(lines, "\n"))
	}
}
