// Command bench is the kernel performance pipeline: it measures the
// simulator's host-side speed — the hot paths a figure run lives in — and
// emits a machine-readable report (BENCH_kernel.json at the repo root is the
// committed reference for this container class).
//
// Three layers, cheapest first:
//
//   - micro: testing.Benchmark over the kernel's hot paths (cache tag-array
//     access, fused hit-access, the SVM fast path, a full kernel access
//     stream, tracing-off Emit), reporting ns/op and allocs/op.
//   - figures: wall-clock seconds for the full `figures -all` matrix,
//     simulated in-process against a fresh memo (every cell cold).
//   - serving: cold-cache requests/second through the HTTP serving layer,
//     each request a distinct never-computed cell.
//
// With -compare FILE the run becomes a regression gate: ns/op worse than the
// reference by more than -tolerance, or ANY allocs/op increase, fails with
// exit 1. The gate is one-sided — a run that is faster or allocates less
// than the reference never fails, however large the improvement, so kernel
// speedups land without touching the gate and the JSON is re-baselined in
// the same change. Allocation counts are host-independent and compared exactly;
// ns/op across different machines needs a generous tolerance (CI uses 0.5;
// the 0.10 default is meant for same-machine before/after comparisons).
//
//	bench -quick -out BENCH_kernel.json     # micro only, seconds
//	bench -out BENCH_kernel.json            # full pipeline, minutes
//	bench -quick -compare BENCH_kernel.json -tolerance 0.5
//
// A second, standalone gate covers the sharded serve fleet: with
// -compare-serve BENCH_serve.json -serve-report warm.json the command diffs
// a fresh warm-cluster `loadgen -json` report against the committed fleet
// baseline (one-sided on req/s, p99 reported but not gated) and exits
// without running the kernel pipeline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	_ "repro/internal/apps"
	"repro/internal/cache"
	"repro/internal/harness"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/svm"
	"repro/internal/trace"
)

// Micro is one microbenchmark result. AllocsPerOp is exact and
// host-independent; NsPerOp is host-dependent.
type Micro struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	N           int     `json:"n"`
}

// Report is the pipeline's output shape; BENCH_kernel.json holds one.
type Report struct {
	GOOS     string `json:"goos"`
	GOARCH   string `json:"goarch"`
	MaxProcs int    `json:"gomaxprocs"`

	Micro map[string]Micro `json:"micro"`

	// FiguresAllSeconds is the cold wall-clock of the full figure matrix
	// (zero when -quick skipped it). BaselineFiguresAllSeconds is the same
	// number measured at the pre-optimization commit on the same host
	// class, recorded for provenance.
	FiguresAllSeconds         float64 `json:"figures_all_seconds,omitempty"`
	BaselineFiguresAllSeconds float64 `json:"baseline_figures_all_seconds,omitempty"`

	// ColdReqPerSec is the serving layer's throughput on all-cold cells;
	// ColdRequests is how many distinct cells the measurement issued.
	ColdReqPerSec float64 `json:"cold_req_per_sec,omitempty"`
	ColdRequests  int     `json:"cold_requests,omitempty"`
}

// baselineFiguresAllSeconds was measured at the commit before the hot-path
// optimization PR with the same matrix on the same container class.
const baselineFiguresAllSeconds = 70.7

func microBench(fn func(b *testing.B)) Micro {
	r := testing.Benchmark(fn)
	return Micro{NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N), AllocsPerOp: r.AllocsPerOp(), N: r.N}
}

// runMicro measures the kernel's hot paths. Each loop body mirrors the shape
// of the corresponding alloc-guard test so the two pins (time here, allocs
// there) watch the same code.
func runMicro() map[string]Micro {
	m := map[string]Micro{}

	m["cache_access_stream"] = microBench(func(b *testing.B) {
		h := cache.New(svm.CacheConfig)
		var addr uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Access(addr, i&1 == 0, cache.Exclusive)
			addr += 32
		}
	})

	m["cache_hitaccess_hit"] = microBench(func(b *testing.B) {
		h := cache.New(svm.CacheConfig)
		h.Access(64, true, cache.Modified)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.HitAccess(64, i&1 == 0)
		}
	})

	m["svm_fastaccess"] = microBench(func(b *testing.B) {
		as := mem.NewAddressSpace(platform.PageSize, 1)
		a := as.AllocPages(1 << 16)
		as.SetHome(a, 1<<16, 0)
		pl := svm.New(as, svm.DefaultParams(), 1)
		k := sim.New(pl, sim.Config{NumProcs: 1})
		pl.Attach(k)
		pl.Prevalidate(a, 1<<16, 0)
		var off uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pl.FastAccess(0, 0, a+off%(1<<16), false)
			off += 32
		}
	})

	// One op = one full 32768-access kernel run (1 MB at 32 B lines),
	// scheduler and stats included — the closest micro proxy for figure
	// wall-clock. The stream is issued as page-sized ReadRange batches, the
	// way the applications stream memory, so this measures the event loop's
	// resumable-batch path end to end.
	m["kernel_stream_32k"] = microBench(func(b *testing.B) {
		as := mem.NewAddressSpace(platform.PageSize, 1)
		a := as.AllocPages(1 << 20)
		as.SetHome(a, 1<<20, 0)
		pl := svm.New(as, svm.DefaultParams(), 1)
		k := sim.New(pl, sim.Config{NumProcs: 1})
		body := func(p *sim.Proc) {
			for off := uint64(0); off < 1<<20; off += platform.PageSize {
				p.ReadRange(a+off, platform.PageSize)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.Run("stream", body)
		}
	})

	// Same 32768-line stream issued as individual Read calls: the per-line
	// entry into the kernel, which irregular access patterns still use.
	m["kernel_stream_lines_32k"] = microBench(func(b *testing.B) {
		as := mem.NewAddressSpace(platform.PageSize, 1)
		a := as.AllocPages(1 << 20)
		as.SetHome(a, 1<<20, 0)
		pl := svm.New(as, svm.DefaultParams(), 1)
		k := sim.New(pl, sim.Config{NumProcs: 1})
		body := func(p *sim.Proc) {
			for off := uint64(0); off < 1<<20; off += 32 {
				p.Read(a + off)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.Run("stream", body)
		}
	})

	m["emit_nilsink"] = microBench(func(b *testing.B) {
		as := mem.NewAddressSpace(platform.PageSize, 1)
		pl := svm.New(as, svm.DefaultParams(), 1)
		k := sim.New(pl, sim.Config{NumProcs: 1})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.Emit(trace.PageFault, 0, uint64(i), 0, 0)
		}
	})

	return m
}

// runFiguresAll simulates the complete figure matrix against a fresh memo
// (every cell cold) and renders every figure, discarding the text — the same
// work `figures -all` does, minus stdout.
func runFiguresAll() (float64, error) {
	r := harness.NewRunner(16, 1)
	var cells []harness.Cell
	figs := harness.Figures()
	for _, f := range figs {
		cells = append(cells, f.Cells()...)
	}
	start := time.Now()
	r.RunParallel(runtime.GOMAXPROCS(0), cells)
	for _, f := range figs {
		if _, err := f.Run(r); err != nil {
			return 0, fmt.Errorf("figure %s: %w", f.ID, err)
		}
	}
	secs := time.Since(start).Seconds()
	if fails := r.FailedCells(); len(fails) > 0 {
		return 0, fmt.Errorf("%d cell(s) failed: %v", len(fails), fails)
	}
	return secs, nil
}

// runColdServing measures the HTTP serving layer on all-cold cells: distinct
// (app, version, procs) requests against a fresh memo, issued by concurrent
// clients, so every request pays a real simulation. Scale 1 keeps the
// simulations large enough that the kernel, not HTTP plumbing, dominates.
func runColdServing() (reqPerSec float64, n int, err error) {
	srv := httptest.NewServer(server.New(server.Config{Memo: harness.NewMemo(nil)}))
	defer srv.Close()

	type req struct {
		app, version string
		procs        int
	}
	var reqs []req
	for _, av := range []req{{app: "lu", version: "orig"}, {app: "lu", version: "4d"}, {app: "ocean", version: "rows"}} {
		for _, p := range []int{1, 2, 4, 8} {
			reqs = append(reqs, req{av.app, av.version, p})
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(reqs))
	work := make(chan req)
	start := time.Now()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rq := range work {
				url := fmt.Sprintf("%s/run?app=%s&version=%s&platform=svm&p=%d&scale=1",
					srv.URL, rq.app, rq.version, rq.procs)
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}()
	}
	for _, rq := range reqs {
		work <- rq
	}
	close(work)
	wg.Wait()
	wall := time.Since(start).Seconds()
	close(errs)
	for e := range errs {
		return 0, 0, e
	}
	return float64(len(reqs)) / wall, len(reqs), nil
}

// ServeRun is the slice of a `loadgen -json` report the serve gate reads;
// ServeBench is the shape of BENCH_serve.json (a cold pass that measures
// fleet-wide exactly-once simulation, then a warm pass that measures
// steady-state throughput).
type ServeRun struct {
	ReqPerSec        float64 `json:"req_per_sec"`
	SimsPerUniqCell  float64 `json:"sims_per_unique_cell"`
	ClusterFallbacks float64 `json:"cluster_fallbacks"`
	Latency          struct {
		P50 float64 `json:"p50_ms"`
		P99 float64 `json:"p99_ms"`
	} `json:"latency_ms"`
}

type ServeBench struct {
	Cold ServeRun `json:"cold"`
	Warm ServeRun `json:"warm"`
}

// compareServe gates a fresh warm-cluster loadgen report against the
// committed BENCH_serve.json. One-sided like the kernel gate: only a warm
// throughput drop beyond tol fails; faster runs and p99 movement never do
// (latency is reported for the log, not gated — it is too host-noisy).
func compareServe(ref ServeBench, cur ServeRun, tol float64) (lines []string, failed bool) {
	delta := (cur.ReqPerSec - ref.Warm.ReqPerSec) / ref.Warm.ReqPerSec
	status := "ok  "
	if delta < -tol {
		status = "FAIL"
		failed = true
	}
	lines = append(lines,
		fmt.Sprintf("%s serve_warm_throughput   %12.1f -> %12.1f req/s  (%+6.1f%%)", status, ref.Warm.ReqPerSec, cur.ReqPerSec, 100*delta),
		fmt.Sprintf("info serve_warm_p99        %12.2f -> %12.2f ms     (reported, not gated)", ref.Warm.Latency.P99, cur.Latency.P99))
	return lines, failed
}

// compare gates a new report against a committed reference. The gate is
// strictly one-sided: getting faster (lower ns/op) or leaner (fewer
// allocs/op) can never fail, however large the improvement — only an
// allocs/op increase (exact, host-independent) or an ns/op regression beyond
// tol does. Benchmarks present in the reference must still exist; benchmarks
// new in the current run are reported but ungated until re-baselined.
func compare(ref, cur Report, tol float64) (lines []string, failed bool) {
	names := make([]string, 0, len(ref.Micro))
	for name := range ref.Micro {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		old := ref.Micro[name]
		nu, ok := cur.Micro[name]
		if !ok {
			lines = append(lines, fmt.Sprintf("FAIL %-24s missing from current run", name))
			failed = true
			continue
		}
		delta := (nu.NsPerOp - old.NsPerOp) / old.NsPerOp
		status := "ok  "
		switch {
		case nu.AllocsPerOp > old.AllocsPerOp:
			status = "FAIL"
			failed = true
		case delta > tol:
			status = "FAIL"
			failed = true
		}
		lines = append(lines, fmt.Sprintf("%s %-24s %12.1f -> %12.1f ns/op (%+6.1f%%)  %d -> %d allocs/op",
			status, name, old.NsPerOp, nu.NsPerOp, 100*delta, old.AllocsPerOp, nu.AllocsPerOp))
	}
	extra := make([]string, 0)
	for name := range cur.Micro {
		if _, ok := ref.Micro[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		nu := cur.Micro[name]
		lines = append(lines, fmt.Sprintf("new  %-24s %12s -> %12.1f ns/op           %s -> %d allocs/op (not in reference; re-baseline to gate)",
			name, "-", nu.NsPerOp, "-", nu.AllocsPerOp))
	}
	return lines, failed
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	compareFile := flag.String("compare", "", "reference BENCH_kernel.json to gate against")
	tol := flag.Float64("tolerance", 0.10, "allowed fractional ns/op regression in -compare mode")
	quick := flag.Bool("quick", false, "micro benchmarks only; skip the figure matrix and serving measurements")
	compareServeFile := flag.String("compare-serve", "", "reference BENCH_serve.json to gate a -serve-report against")
	serveReport := flag.String("serve-report", "", "fresh warm-cluster `loadgen -json` report for the -compare-serve gate")
	flag.Parse()

	// Serve-gate mode is standalone: diff a fresh loadgen report against the
	// committed fleet baseline and exit, without rerunning the kernel pipeline.
	if *compareServeFile != "" || *serveReport != "" {
		if *compareServeFile == "" || *serveReport == "" {
			fmt.Fprintln(os.Stderr, "bench: -compare-serve and -serve-report must be given together")
			os.Exit(2)
		}
		var ref ServeBench
		var cur ServeRun
		for _, f := range []struct {
			path string
			into any
		}{{*compareServeFile, &ref}, {*serveReport, &cur}} {
			raw, err := os.ReadFile(f.path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			if err := json.Unmarshal(raw, f.into); err != nil {
				fmt.Fprintf(os.Stderr, "bench: parsing %s: %v\n", f.path, err)
				os.Exit(1)
			}
		}
		if ref.Warm.ReqPerSec <= 0 {
			fmt.Fprintf(os.Stderr, "bench: %s has no warm.req_per_sec baseline\n", *compareServeFile)
			os.Exit(1)
		}
		lines, failed := compareServe(ref, cur, *tol)
		for _, l := range lines {
			fmt.Fprintln(os.Stderr, l)
		}
		if failed {
			fmt.Fprintf(os.Stderr, "bench: serve regression vs %s (tolerance %.0f%%)\n", *compareServeFile, 100**tol)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: no serve regression vs %s (tolerance %.0f%%)\n", *compareServeFile, 100**tol)
		return
	}

	rep := Report{
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		MaxProcs: runtime.GOMAXPROCS(0),
		Micro:    runMicro(),
	}
	if !*quick {
		secs, err := runFiguresAll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: figures:", err)
			os.Exit(1)
		}
		rep.FiguresAllSeconds = secs
		rep.BaselineFiguresAllSeconds = baselineFiguresAllSeconds
		rps, n, err := runColdServing()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: serving:", err)
			os.Exit(1)
		}
		rep.ColdReqPerSec = rps
		rep.ColdRequests = n
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	if *compareFile != "" {
		raw, err := os.ReadFile(*compareFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		var ref Report
		if err := json.Unmarshal(raw, &ref); err != nil {
			fmt.Fprintf(os.Stderr, "bench: parsing %s: %v\n", *compareFile, err)
			os.Exit(1)
		}
		lines, failed := compare(ref, rep, *tol)
		for _, l := range lines {
			fmt.Fprintln(os.Stderr, l)
		}
		if failed {
			fmt.Fprintf(os.Stderr, "bench: regression vs %s (tolerance %.0f%%)\n", *compareFile, 100**tol)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: no regression vs %s (tolerance %.0f%%)\n", *compareFile, 100**tol)
	}
}
