// Command campaign runs a declarative experiment campaign: a spec file
// naming apps × versions × platforms × processor counts × scales expands
// into a deterministic cell manifest, which is executed locally (bounded
// worker pool over the memo/store tiers) or across a serve fleet
// (-addrs: cells sharded by ring ownership, shipped as batched NDJSON
// POST /run, retried with backoff on transient failures).
//
// Progress is journaled: every completed cell is fsynced to the journal
// with its result fingerprint, so a killed campaign re-invoked with
// -resume recomputes nothing, and a completed campaign re-run performs
// zero simulations while emitting a byte-identical manifest.
//
//	campaign -spec campaigns/scaling128.json -store /tmp/cstore -workers 8
//	campaign -spec campaigns/scaling128.json -store /tmp/cstore -resume   # pick up where it died
//	campaign -spec S.json -addrs http://n1:8080,http://n2:8080 -json      # fleet-distributed
//	campaign -spec S.json -table                                          # render the scaling tables
//
// Exit status: 0 success, 1 failed cells, 2 usage/spec errors,
// 3 interrupted (signal or -max-cells) with the journal intact.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	_ "repro/internal/apps"
	"repro/internal/campaign"
)

// progressEvent is one -json line on stdout: cumulative campaign state
// after a cell settles, plus throughput and ETA estimates.
type progressEvent struct {
	Type       string                  `json:"type"` // "progress" or "summary"
	Campaign   string                  `json:"campaign"`
	Done       int                     `json:"done"`
	Failed     int                     `json:"failed"`
	Resumed    int                     `json:"resumed"`
	Total      int                     `json:"total"`
	Retries    int                     `json:"retries"`       // attempts beyond each cell's first
	Retried    int                     `json:"retried_cells"` // cells that needed >1 attempt
	CellsPerS  float64                 `json:"cells_per_sec"`
	EtaSeconds float64                 `json:"eta_seconds"`
	Platforms  map[string]*platProgess `json:"platforms"`
	Cache      string                  `json:"cache,omitempty"` // summary only
	Elapsed    float64                 `json:"elapsed_seconds,omitempty"`
}

type platProgess struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

func fatal(code int, a ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"campaign:"}, a...)...)
	os.Exit(code)
}

func main() {
	specPath := flag.String("spec", "", "campaign spec file (JSON; required)")
	addrs := flag.String("addrs", "", "comma-separated serve fleet base URLs; empty = execute locally")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent simulations (local) or batch requests (fleet)")
	storeDir := flag.String("store", "", "persistent result store directory (local execution); completed cells load instead of simulating")
	journalPath := flag.String("journal", "", "campaign journal file (default: spec path with .journal extension)")
	resume := flag.Bool("resume", false, "resume an existing journal instead of refusing to overwrite it")
	jsonOut := flag.Bool("json", false, "emit machine-readable progress events on stdout")
	manifestPath := flag.String("manifest", "", "write the deterministic manifest summary to this file (also printed to stdout unless -json or -table)")
	table := flag.Bool("table", false, "print the scaling tables (speedup vs uniprocessor original) after the run")
	maxCells := flag.Int("max-cells", 0, "stop after journaling N cells (kill/resume testing); exit 3")
	batch := flag.Int("batch", 64, "cells per fleet batch request")
	retries := flag.Int("retries", 4, "max attempts per cell on transient fleet failures")
	backoff := flag.Duration("backoff", 250*time.Millisecond, "base retry backoff (doubled per attempt, capped at 5s)")
	flag.Parse()

	if *specPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		fatal(2, err)
	}
	spec, err := campaign.DecodeSpec(data)
	if err != nil {
		fatal(2, err)
	}
	cells, err := spec.Expand()
	if err != nil {
		fatal(2, err)
	}
	digest := campaign.Digest(cells)

	jpath := *journalPath
	if jpath == "" {
		jpath = strings.TrimSuffix(*specPath, ".json") + ".journal"
	}
	journal, err := campaign.OpenJournal(jpath, spec.Name, digest, len(cells), *resume)
	if err != nil {
		fatal(2, err)
	}
	defer journal.Close()

	var exec campaign.Executor
	var cacheStats func() string
	if *addrs != "" {
		var list []string
		for _, a := range strings.Split(*addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				list = append(list, a)
			}
		}
		if len(list) == 0 {
			fatal(2, "empty -addrs")
		}
		exec = &campaign.Fleet{
			Addrs:       list,
			Campaign:    spec.Name,
			BatchSize:   *batch,
			Workers:     *workers,
			MaxAttempts: *retries,
			Backoff:     *backoff,
		}
	} else {
		memo, err := campaign.OpenMemo(*storeDir)
		if err != nil {
			fatal(1, err)
		}
		exec = &campaign.Local{Memo: memo, Workers: *workers}
		cacheStats = func() string { return memo.Stats().String() }
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Progress state, updated per settled cell from executor goroutines.
	start := time.Now()
	var mu sync.Mutex
	done, failed, retries2, retried := 0, 0, 0, 0
	platTotal := map[string]*platProgess{}
	for _, c := range cells {
		pp := platTotal[c.Spec.Platform]
		if pp == nil {
			pp = &platProgess{}
			platTotal[c.Spec.Platform] = pp
		}
		pp.Total++
	}
	enc := json.NewEncoder(os.Stdout)
	lastLine := time.Time{}
	progress := func(resumed int, final bool) {
		completed := done + failed
		elapsed := time.Since(start).Seconds()
		rate := 0.0
		if elapsed > 0 {
			rate = float64(completed-resumed) / elapsed
		}
		eta := 0.0
		if rate > 0 {
			eta = float64(len(cells)-completed) / rate
		}
		ev := progressEvent{
			Type: "progress", Campaign: spec.Name,
			Done: done, Failed: failed, Resumed: resumed, Total: len(cells),
			Retries: retries2, Retried: retried,
			CellsPerS: rate, EtaSeconds: eta, Platforms: platTotal,
		}
		if final {
			ev.Type = "summary"
			ev.Elapsed = elapsed
			if cacheStats != nil {
				ev.Cache = cacheStats()
			}
		}
		if *jsonOut {
			enc.Encode(ev)
		} else if final || time.Since(lastLine) >= time.Second {
			lastLine = time.Now()
			fmt.Fprintf(os.Stderr, "campaign: %d/%d done (%d resumed, %d failed, %d retries), %.1f cells/s, eta %s\n",
				completed, len(cells), resumed, failed, retries2, rate, time.Duration(eta*float64(time.Second)).Round(time.Second))
		}
	}

	runner := &campaign.Runner{
		Name:      spec.Name,
		Cells:     cells,
		Journal:   journal,
		Exec:      exec,
		StopAfter: *maxCells,
	}
	resumedN := 0
	runner.OnEntry = func(c campaign.Cell, e campaign.Entry) {
		mu.Lock()
		defer mu.Unlock()
		if e.Status == "done" {
			done++
			if pp := platTotal[c.Spec.Platform]; pp != nil {
				pp.Done++
			}
		} else {
			failed++
		}
		if e.Attempts > 1 {
			retried++
			retries2 += e.Attempts - 1
		}
		progress(resumedN, false)
	}

	rep, runErr := runner.Run(ctx)
	// Seed the counters with what the journal already held, then fold in
	// everything the run settled (OnEntry counted those live; recount
	// from the report for the final numbers so resumed cells show too).
	mu.Lock()
	done, failed, resumedN = 0, 0, rep.Resumed
	for pl := range platTotal {
		platTotal[pl].Done = 0
	}
	for _, c := range rep.Cells {
		e, ok := rep.Entries[c.Key]
		if !ok {
			continue
		}
		if e.Status == "done" {
			done++
			if pp := platTotal[c.Spec.Platform]; pp != nil {
				pp.Done++
			}
		} else {
			failed++
		}
	}
	progress(rep.Resumed, true)
	mu.Unlock()

	manifest := rep.Manifest()
	if *manifestPath != "" {
		if err := os.WriteFile(*manifestPath, []byte(manifest), 0o666); err != nil {
			fatal(1, err)
		}
	}
	if !*jsonOut && !*table && *manifestPath == "" {
		fmt.Print(manifest)
	}
	if *table {
		fmt.Println(spec.Table(rep.Entries))
	}
	if cacheStats != nil {
		fmt.Fprintf(os.Stderr, "campaign: cache: %s\n", cacheStats())
	}

	if rep.Interrupted || runErr != nil {
		fmt.Fprintf(os.Stderr, "campaign: interrupted with %d cell(s) pending; re-run with -resume to continue\n",
			len(rep.Cells)-len(rep.Entries))
		os.Exit(3)
	}
	if fails := rep.Failed(); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "campaign: %d cell(s) failed:\n", len(fails))
		for _, e := range fails {
			fmt.Fprintf(os.Stderr, "  %s: %s: %s\n", e.Key, e.Kind, e.Msg)
		}
		os.Exit(1)
	}
}
