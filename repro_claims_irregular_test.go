// Claims for the three irregular extension workloads (kvstore, bfs,
// pipeline), banded the same way as the paper claims in
// repro_claims_test.go: qualitative orderings with generous tolerance, so
// cost-model drift does not trip them but a shape inversion does. The
// headline is the paper's own, replayed on modern irregular kernels:
// originals tuned for hardware coherence collapse on SVM, padding alone
// never rescues them, and data-structure plus algorithmic restructuring
// restores — and on two of the three apps exceeds — hardware-coherent
// performance on every platform.
package repro

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/svm"
)

// irregularClaimApps maps each irregular app to its version ladder in
// taxonomy order: orig, P/A, DS, Alg.
var irregularClaimApps = map[string][4]string{
	"kvstore":  {"orig", "pad", "open", "shard"},
	"bfs":      {"orig", "pad", "part", "dir"},
	"pipeline": {"orig", "pad", "split", "batch"},
}

// TestClaimsIrregularOriginalsTrailHardware: the Figure 2 story holds for
// the irregular kernels too — every original runs far behind both
// hardware-coherent platforms on SVM (observed 0.09-0.17x vs 0.91-4.7x).
func TestClaimsIrregularOriginalsTrailHardware(t *testing.T) {
	for app, vs := range irregularClaimApps {
		svmSp := sp(t, app, vs[0], "svm")
		for _, hw := range []string{"smp", "dsm"} {
			if hwSp := sp(t, app, vs[0], hw); !farBehind(svmSp, hwSp) {
				t.Errorf("%s/%s: svm speedup %.2f is not far behind %s %.2f (want < 0.6x)",
					app, vs[0], svmSp, hw, hwSp)
			}
		}
	}
}

// TestClaimsIrregularPaddingNeverRescues: the §4 first rung again —
// padding to the coherence/page granularity leaves every irregular app far
// behind the SMP and gains at most a factor of two on SVM.
func TestClaimsIrregularPaddingNeverRescues(t *testing.T) {
	for app, vs := range irregularClaimApps {
		padSVM := sp(t, app, vs[1], "svm")
		if padSMP := sp(t, app, vs[1], "smp"); !farBehind(padSVM, padSMP) {
			t.Errorf("%s/%s: P/A alone reaches %.2f on svm vs %.2f on smp — claim says it never rescues",
				app, vs[1], padSVM, padSMP)
		}
		if orig := sp(t, app, vs[0], "svm"); padSVM > 2*orig {
			t.Errorf("%s/%s: P/A alone tripled svm speedup (%.2f from %.2f)", app, vs[1], padSVM, orig)
		}
	}
}

// TestClaimsIrregularBestBeatsOriginalEverywhere is the tentpole ordering:
// on every platform preset, the best restructured version beats the
// original by an app-specific factor — except bfs on the svmsmp hierarchy,
// where the gain demonstrably does NOT carry (the level-synchronous
// barriers pay the two-level latency at 16 processors), which this test
// pins as deliberately as the wins so the exception cannot silently
// appear or vanish.
func TestClaimsIrregularBestBeatsOriginalEverywhere(t *testing.T) {
	minGain := map[string]float64{
		"kvstore":  1.5, // shard vs orig: observed 2.0x (dsm) to 60x (svm)
		"pipeline": 3,   // batch vs orig: observed 17x (smp) to ~1900x (svm)
		"bfs":      1.2, // dir vs orig: observed 1.4x-1.9x outside svmsmp
	}
	for app, vs := range irregularClaimApps {
		best, want := vs[3], minGain[app]
		for _, pl := range platform.AllPresets {
			orig := sp(t, app, vs[0], pl)
			bestSp := sp(t, app, best, pl)
			beats := bestSp >= want*orig
			if app == "bfs" && pl == "svmsmp" {
				if beats {
					t.Errorf("bfs/dir on svmsmp reaches %.2f vs orig %.2f: the hierarchy exception has vanished — update the claim", bestSp, orig)
				}
				continue
			}
			if !beats {
				t.Errorf("%s/%s on %s: %.2f does not beat orig %.2f by %.2gx",
					app, best, pl, bestSp, orig, want)
			}
		}
	}
}

// TestClaimsIrregularAlgBeatsDS: on the hardware-coherent platforms the
// algorithmic rung clearly out-runs the data-structure rung — restructuring
// keeps paying past layout fixes even where coherence is fine-grained.
func TestClaimsIrregularAlgBeatsDS(t *testing.T) {
	minGain := map[string]float64{
		"kvstore":  1.3,  // shard vs open: observed 1.8x (dsm), 3.0x (smp)
		"bfs":      1.15, // dir vs part: observed 1.3x (smp), 1.4x (dsm)
		"pipeline": 2,    // batch vs split: observed 4.0x (dsm), 6.1x (smp)
	}
	for app, vs := range irregularClaimApps {
		ds, alg, want := vs[2], vs[3], minGain[app]
		for _, pl := range []string{"smp", "dsm"} {
			dsSp := sp(t, app, ds, pl)
			algSp := sp(t, app, alg, pl)
			if algSp < want*dsSp {
				t.Errorf("%s on %s: Alg version %s %.2f does not beat DS version %s %.2f by %.2gx",
					app, pl, alg, algSp, ds, dsSp, want)
			}
		}
	}
}

// TestClaimsIrregularPortabilityAchieved: the paper's end state — after
// restructuring, kvstore and pipeline run faster on SVM than their
// originals ever ran on the SMP (observed 5x and >100x margins), while
// bfs remains below uniprocessor speed on SVM in every version, the
// radix-shaped counterexample.
func TestClaimsIrregularPortabilityAchieved(t *testing.T) {
	for _, app := range []string{"kvstore", "pipeline"} {
		vs := irregularClaimApps[app]
		bestSVM := sp(t, app, vs[3], "svm")
		origSMP := sp(t, app, vs[0], "smp")
		if bestSVM < 1.5*origSMP {
			t.Errorf("%s/%s on svm: %.2f does not exceed orig on smp %.2f by 1.5x — portability claim broken",
				app, vs[3], bestSVM, origSMP)
		}
	}
	for _, v := range irregularClaimApps["bfs"] {
		if s := sp(t, "bfs", v, "svm"); s >= 0.9 {
			t.Errorf("bfs/%s on svm: speedup %.2f; the claim is that bfs stays below uniprocessor on SVM", v, s)
		}
	}
}

// TestClaimsIrregularSuiteDetectsPerturbation: falsifiability for the
// irregular claims, via the starkest cell. Pipeline's original collapses
// on SVM because every queue operation pays the software lock-manager
// round trip; with those protocol costs zeroed the same binary no longer
// trails the SMP, so the farBehind predicate is demonstrably sensitive to
// the cost model on these workloads too.
func TestClaimsIrregularSuiteDetectsPerturbation(t *testing.T) {
	free := svm.DefaultParams()
	free.FaultOverhead = 0
	free.WriteTrap = 0
	free.TwinCost = 0
	free.DiffCreate = 0
	free.DiffApply = 0
	free.NoticeCost = 0
	free.InvalCost = 0
	free.MsgSend = 0
	free.MsgRecv = 0
	free.NetLatency = 0
	free.PageXfer = 0
	free.DiffXfer = 0
	free.HomeService = 0
	free.LockMgrService = 0
	free.BarrierPerProc = 0
	free.BarrierBcast = 0

	t1 := perturbedSVMRun(t, "pipeline", "orig", 1, free).EndTime
	tp := perturbedSVMRun(t, "pipeline", "orig", 16, free).EndTime
	perturbed := float64(t1) / float64(tp)

	honest := sp(t, "pipeline", "orig", "svm")
	smp := sp(t, "pipeline", "orig", "smp")
	if !farBehind(honest, smp) {
		t.Fatalf("precondition: honest pipeline/orig svm %.2f should trail smp %.2f", honest, smp)
	}
	if farBehind(perturbed, smp) {
		t.Errorf("free-protocol svm speedup %.2f still 'trails' smp %.2f: the irregular claims are not sensitive to the cost model", perturbed, smp)
	}
}
