package repro

import "testing"

func TestFacadeListsEverything(t *testing.T) {
	apps := Apps()
	if len(apps) != 10 {
		t.Fatalf("%d apps registered, want 10 (7 paper + 3 extensions): %v", len(apps), apps)
	}
	if paper := PaperApps(); len(paper) != 7 {
		t.Fatalf("%d paper apps, want 7: %v", len(paper), paper)
	}
	for _, app := range apps {
		vs, err := Versions(app)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) < 3 {
			t.Errorf("%s has only %d versions", app, len(vs))
		}
		if vs[0].Class.String() != "Orig" {
			t.Errorf("%s first version class = %s, want Orig", app, vs[0].Class)
		}
	}
	if len(Platforms()) != 3 {
		t.Errorf("platforms = %v, want 3", Platforms())
	}
	if len(Figures()) != 16 {
		t.Errorf("%d figures, want 16 (fig2..fig17)", len(Figures()))
	}
}

func TestFacadeExecute(t *testing.T) {
	run, err := Execute(Spec{App: "ocean", Version: "rows", Platform: "dsm", NumProcs: 4, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if run.EndTime == 0 {
		t.Error("zero end time")
	}
}
