package dsm

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Regression: a write UPGRADE (write to a line the writer already holds
// Shared) must leave the writer's own cache in Modified. The bug: the
// protocol recorded the writer as exclusive owner in the directory but
// cache.Access keeps a hit's existing state, so the line stayed Shared —
// inconsistent with the directory, and every later write by the owner paid
// a fresh upgrade transaction for a line it already owned.
func TestWriteUpgradeLeavesOwnerModified(t *testing.T) {
	as := mem.NewAddressSpace(4096, 2)
	pl := New(as, DefaultParams(), 2)
	k := sim.New(pl, sim.Config{NumProcs: 2, Check: true})
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	_, err := k.RunErr("upgrade", func(p *sim.Proc) {
		if p.ID() == 0 {
			p.Read(a)
		}
		p.Barrier()
		if p.ID() == 1 {
			p.Read(a) // both caches now hold the line Shared
		}
		p.Barrier()
		if p.ID() == 1 {
			p.Write(a) // upgrade: invalidate proc 0, take ownership
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, st := pl.Eng.Caches[1].Probe(a); st != cache.Modified {
		t.Errorf("writer's cache holds upgraded line in state %s, want M", st)
	}
	if lvl, _ := pl.Eng.Caches[0].Probe(a); lvl != cache.Miss {
		t.Error("old sharer still holds the line after the upgrade invalidation")
	}
}
