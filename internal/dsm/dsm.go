// Package dsm models the paper's hardware cache-coherent CC-NUMA platform
// (§2.1.3): one 300 MHz processor per node, 16 KB direct-mapped L1, 1 MB
// 4-way L2 with 64 B lines, caches kept coherent by a distributed full-map
// directory protocol (DASH-like), 400 MB/s node-to-network bandwidth.
// Memory is physically distributed; placement comes from the address space's
// page homes ("data distribution is performed in all cases where it is
// reasonably allowed", paper §5.2).
//
// The machine model itself lives in internal/protocol: this package is the
// configuration shim that composes {MESI × Directory} with the paper's node
// cache geometry and cycle costs, so existing harness specs, figure cells and
// memo keys keep resolving through the same API.
package dsm

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/protocol"
)

// CacheConfig is the paper's DSM node cache hierarchy.
var CacheConfig = cache.Config{
	L1Size: 16 << 10, L1Assoc: 1,
	L2Size: 1 << 20, L2Assoc: 4,
	Line: 64,
}

// Params are cycle costs at 300 MHz (3.3 ns).
type Params = protocol.DirParams

// DefaultParams returns the paper-calibrated DSM cost model.
func DefaultParams() Params { return protocol.DefaultDirParams() }

// Platform is the directory-based CC-NUMA machine: protocol.HW composed as
// {MESI × Directory} over the address space's page homes.
type Platform = protocol.HW

// New creates a DSM platform over the given address space for np nodes.
func New(as *mem.AddressSpace, p Params, np int) *Platform {
	return protocol.NewDirMachine("dsm", protocol.MESI, CacheConfig, as, p, np)
}
