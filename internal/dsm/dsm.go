// Package dsm models the paper's hardware cache-coherent CC-NUMA platform
// (§2.1.3): one 300 MHz processor per node, 16 KB direct-mapped L1, 1 MB
// 4-way L2 with 64 B lines, caches kept coherent by a distributed full-map
// directory protocol (DASH-like), 400 MB/s node-to-network bandwidth.
// Memory is physically distributed; placement comes from the address space's
// page homes ("data distribution is performed in all cases where it is
// reasonably allowed", paper §5.2).
package dsm

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CacheConfig is the paper's DSM node cache hierarchy.
var CacheConfig = cache.Config{
	L1Size: 16 << 10, L1Assoc: 1,
	L2Size: 1 << 20, L2Assoc: 4,
	Line: 64,
}

// Params are cycle costs at 300 MHz (3.3 ns).
type Params struct {
	L2HitCost   uint64 // L1 miss, L2 hit
	LocalMem    uint64 // L2 miss satisfied by local (home) memory
	RemoteClean uint64 // 2-hop miss: remote home, memory-clean line
	RemoteDirty uint64 // 3-hop miss: line dirty in a third node's cache
	UpgradeBase uint64 // write to a Shared line, local directory
	UpgradeHop  uint64 // extra when the directory is remote
	InvalPer    uint64 // per remote sharer invalidated
	DirOccupy   uint64 // home directory controller occupancy per transaction

	LockAcquire uint64 // uncontended hardware lock acquisition (remote line)
	LockRelease uint64
	BarrierHW   uint64 // hardware barrier fan-in/fan-out beyond max arrival
	BarrierLeaf uint64 // per-processor arrival cost
}

// DefaultParams returns the paper-calibrated DSM cost model.
func DefaultParams() Params {
	return Params{
		L2HitCost:   8,
		LocalMem:    60,
		RemoteClean: 150,
		RemoteDirty: 250,
		UpgradeBase: 80,
		UpgradeHop:  60,
		InvalPer:    20,
		DirOccupy:   30,

		LockAcquire: 200,
		LockRelease: 60,
		BarrierHW:   600,
		BarrierLeaf: 150,
	}
}

type dirEntry struct {
	sharers uint64 // bitmask of caching nodes
	owner   int8   // exclusive owner, -1 if none
}

// Platform is the directory-based CC-NUMA machine model.
type Platform struct {
	P      Params
	as     *mem.AddressSpace
	k      *sim.Kernel
	np     int
	caches []*cache.Hierarchy
	dir    map[uint64]*dirEntry
	dirOcc []sim.Resource // per home node
	line   uint64
}

// New creates a DSM platform over the given address space for np nodes.
func New(as *mem.AddressSpace, p Params, np int) *Platform {
	return &Platform{P: p, as: as, np: np, line: uint64(CacheConfig.Line)}
}

// Name implements sim.Platform.
func (d *Platform) Name() string { return "dsm" }

// LineSize reports the coherence line size for range accesses.
func (d *Platform) LineSize() int { return CacheConfig.Line }

// Attach implements sim.Platform.
func (d *Platform) Attach(k *sim.Kernel) {
	d.k = k
	d.caches = make([]*cache.Hierarchy, d.np)
	d.dir = make(map[uint64]*dirEntry, 1<<16)
	d.dirOcc = make([]sim.Resource, d.np)
	for i := 0; i < d.np; i++ {
		h := cache.New(CacheConfig)
		nd := i
		h.OnL2Evict = func(la uint64, st cache.State) {
			if e, ok := d.dir[la]; ok {
				e.sharers &^= 1 << uint(nd)
				if e.owner == int8(nd) {
					e.owner = -1 // writeback to home memory
				}
			}
		}
		d.caches[i] = h
	}
}

func (d *Platform) entry(la uint64) *dirEntry {
	e, ok := d.dir[la]
	if !ok {
		e = &dirEntry{owner: -1}
		d.dir[la] = e
	}
	return e
}

// FastAccess implements sim.Platform: cache hits with sufficient MESI rights
// are purely local. HitAccess fuses the probe and the access into one
// tag-array walk, refusing (mutating nothing) on a miss or a write without
// Modified/Exclusive rights; a write to an Exclusive line silently upgrades
// to Modified in the cache — the directory already records p as exclusive
// owner.
func (d *Platform) FastAccess(p int, now uint64, addr uint64, write bool) (uint64, bool) {
	lvl, _, ok := d.caches[p].HitAccess(addr, write)
	if !ok {
		return 0, false // miss, or upgrade needed
	}
	if lvl == cache.L1Hit {
		return 0, true
	}
	return d.P.L2HitCost, true
}

// SlowAccess implements sim.Platform: directory transaction for misses and
// upgrades.
func (d *Platform) SlowAccess(p int, now uint64, addr uint64, write bool) sim.AccessCost {
	h := d.caches[p]
	la := h.LineOf(addr)
	home := d.as.Home(addr)
	e := d.entry(la)
	c := d.k.Counters(p)
	var cost sim.AccessCost

	// Home directory occupancy models contention at home nodes.
	start := d.dirOcc[home].Acquire(now, d.P.DirOccupy)
	contention := start - now
	d.k.Emit(trace.DirOccupy, home, start, la, d.P.DirOccupy)
	var kind trace.Kind // 2-/3-hop classification for the trace stream

	switch {
	case write:
		var base uint64
		remoteOwner := e.owner >= 0 && int(e.owner) != p
		remoteSharers := e.sharers&^(1<<uint(p)) != 0
		switch {
		case remoteOwner:
			// 3-hop: fetch dirty line from owner, invalidate it.
			base = d.P.RemoteDirty
			if home == p {
				base = d.P.RemoteDirty - 50
			}
			d.caches[e.owner].SetState(addr, cache.Invalid)
			c.ThreeHopMisses++
			c.RemoteMisses++
			kind = trace.Miss3Hop
		case e.sharers&^(1<<uint(p)) != 0 || e.sharers&(1<<uint(p)) != 0 && d.hasLine(p, addr):
			// Upgrade (or fetch+invalidate) with sharers.
			base = d.P.UpgradeBase
			if home != p {
				base += d.P.UpgradeHop
				c.RemoteMisses++
				kind = trace.Miss2Hop
			} else {
				c.LocalMisses++
			}
			n := 0
			for q := 0; q < d.np; q++ {
				if q != p && e.sharers&(1<<uint(q)) != 0 {
					d.caches[q].SetState(addr, cache.Invalid)
					n++
				}
			}
			base += uint64(n) * d.P.InvalPer
		default:
			// Plain write miss from memory.
			if home == p {
				base = d.P.LocalMem
				c.LocalMisses++
			} else {
				base = d.P.RemoteClean
				c.RemoteMisses++
				kind = trace.Miss2Hop
			}
		}
		e.sharers = 1 << uint(p)
		e.owner = int8(p)
		h.Access(addr, true, cache.Modified)
		// Access applies fillState only on a miss; on a write UPGRADE the
		// line hits in state Shared and would stay Shared, so the owner
		// would keep paying upgrade transactions for a line it owns.
		h.SetState(addr, cache.Modified)
		if home == p && !remoteOwner && !remoteSharers {
			cost.CacheStall += base + contention
		} else {
			cost.DataWait += base + contention
		}

	default: // read miss
		var base uint64
		if e.owner >= 0 && int(e.owner) != p {
			// 3-hop: owner supplies the line and downgrades.
			base = d.P.RemoteDirty
			d.caches[e.owner].SetState(addr, cache.Shared)
			e.sharers |= 1 << uint(e.owner)
			e.owner = -1
			c.ThreeHopMisses++
			c.RemoteMisses++
			kind = trace.Miss3Hop
			cost.DataWait += base + contention
		} else if home == p {
			base = d.P.LocalMem
			c.LocalMisses++
			cost.CacheStall += base + contention
		} else {
			base = d.P.RemoteClean
			c.RemoteMisses++
			kind = trace.Miss2Hop
			cost.DataWait += base + contention
		}
		e.sharers |= 1 << uint(p)
		fill := cache.Shared
		if e.sharers == 1<<uint(p) && e.owner < 0 {
			fill = cache.Exclusive
			e.owner = int8(p)
		}
		h.Access(addr, false, fill)
	}
	if kind != trace.KindNone {
		d.k.Emit(kind, p, now, la, cost.DataWait)
	}
	return cost
}

// hasLine reports whether p's cache currently holds the line of addr.
func (d *Platform) hasLine(p int, addr uint64) bool {
	lvl, _ := d.caches[p].Probe(addr)
	return lvl != cache.Miss
}

// LockRequest implements sim.Platform.
func (d *Platform) LockRequest(p int, now uint64, lock int) uint64 { return 0 }

// LockGrant implements sim.Platform: an uncontended hardware lock costs about
// a remote miss; no protocol consistency work happens at acquire (coherence
// is at access time, paper §5.2).
func (d *Platform) LockGrant(p int, now uint64, lock int, prev int) uint64 {
	return d.P.LockAcquire
}

// LockRelease implements sim.Platform.
func (d *Platform) LockRelease(p int, now uint64, lock int) (uint64, uint64, uint64) {
	return d.P.LockRelease, 0, 0
}

// BarrierArrive implements sim.Platform.
func (d *Platform) BarrierArrive(p int, now uint64) (uint64, uint64) {
	return d.P.BarrierLeaf, 0
}

// BarrierRelease implements sim.Platform.
func (d *Platform) BarrierRelease(arrivals []uint64, manager int) uint64 {
	var m uint64
	for _, a := range arrivals {
		if a > m {
			m = a
		}
	}
	return m + d.P.BarrierHW
}

// BarrierDepart implements sim.Platform.
func (d *Platform) BarrierDepart(p int, releaseTime uint64) uint64 { return d.P.BarrierLeaf / 3 }

var _ sim.Platform = (*Platform)(nil)
