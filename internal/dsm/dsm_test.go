package dsm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

func setup(np int) (*mem.AddressSpace, *sim.Kernel) {
	as := mem.NewAddressSpace(4096, np)
	p := New(as, DefaultParams(), np)
	k := sim.New(p, sim.Config{NumProcs: np})
	return as, k
}

func TestLocalVsRemoteMissClassification(t *testing.T) {
	as, k := setup(2)
	a := as.AllocPages(8192)
	as.SetHome(a, 4096, 0)
	as.SetHome(a+4096, 4096, 1)
	run := k.Run("miss", func(p *sim.Proc) {
		if p.ID() == 0 {
			p.Read(a)        // local home
			p.Read(a + 4096) // remote home
		}
		p.Barrier()
	})
	c := run.Procs[0].Counters
	if c.LocalMisses != 1 || c.RemoteMisses != 1 {
		t.Errorf("local=%d remote=%d, want 1/1", c.LocalMisses, c.RemoteMisses)
	}
	if run.Procs[0].Cycles[stats.DataWait] == 0 {
		t.Error("remote miss charged no data wait")
	}
	if run.Procs[0].Cycles[stats.CacheStall] == 0 {
		t.Error("local miss charged no cache stall")
	}
}

func TestThreeHopDirtyMiss(t *testing.T) {
	as, k := setup(3)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("3hop", func(p *sim.Proc) {
		if p.ID() == 1 {
			p.Write(a) // line dirty at 1
		}
		p.Barrier()
		if p.ID() == 2 {
			p.Read(a) // home 0, owner 1: 3-hop
		}
		p.Barrier()
	})
	if got := run.Procs[2].Counters.ThreeHopMisses; got != 1 {
		t.Errorf("three-hop misses = %d, want 1", got)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	as, k := setup(4)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("inval", func(p *sim.Proc) {
		p.Read(a) // everyone shares the line
		p.Barrier()
		if p.ID() == 0 {
			p.Write(a) // upgrade, invalidating 3 sharers
		}
		p.Barrier()
		p.Read(a) // all but 0 miss again (3-hop from new owner)
		p.Barrier()
	})
	for i := 1; i < 4; i++ {
		// Each non-writer missed twice on the line: cold + after inval.
		misses := run.Procs[i].Counters.LocalMisses + run.Procs[i].Counters.RemoteMisses
		if misses < 2 {
			t.Errorf("proc %d misses = %d, want >= 2 (invalidation)", i, misses)
		}
	}
	_ = run
}

func TestSilentEtoMUpgradeIsLocal(t *testing.T) {
	as, k := setup(2)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("e2m", func(p *sim.Proc) {
		if p.ID() == 0 {
			p.Read(a)  // fills Exclusive (sole sharer, local home)
			p.Write(a) // silent E->M: no new miss
		}
		p.Barrier()
	})
	c := run.Procs[0].Counters
	if got := c.LocalMisses + c.RemoteMisses; got != 1 {
		t.Errorf("misses = %d, want 1 (E->M must be silent)", got)
	}
}

func TestLocksAreCheapOnDSM(t *testing.T) {
	// The paper's key asymmetry: an SVM lock costs thousands of cycles;
	// a DSM lock costs a few hundred.
	_, k := setup(2)
	run := k.Run("locks", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			p.Lock(1)
			p.Compute(10)
			p.Unlock(1)
			p.Compute(100) // decouple the processors
		}
		p.Barrier()
	})
	perLock := run.TotalCycles(stats.LockWait) / 20
	if perLock > 2000 {
		t.Errorf("DSM lock cost %d cycles each, want cheap (<2000)", perLock)
	}
}

func TestDirectoryEvictionConsistency(t *testing.T) {
	// Evicting a Modified line removes ownership; a later reader must
	// not be charged a 3-hop miss.
	as, k := setup(2)
	big := 4 << 20 // larger than L2 to force evictions
	a := as.AllocPages(big)
	as.SetHome(a, big, 0)
	run := k.Run("evict", func(p *sim.Proc) {
		if p.ID() == 0 {
			for off := 0; off < big; off += 64 {
				p.Write(a + uint64(off))
			}
		}
		p.Barrier()
		if p.ID() == 1 {
			p.Read(a) // long evicted from proc 0's 1 MB L2
		}
		p.Barrier()
	})
	if got := run.Procs[1].Counters.ThreeHopMisses; got != 0 {
		t.Errorf("read of evicted line counted %d 3-hop misses, want 0", got)
	}
}
