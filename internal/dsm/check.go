package dsm

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/sim"
)

// CheckInvariants implements sim.InvariantChecked for the directory protocol.
// The directory must be the single source of truth for every line:
//
//   - an exclusive owner is the ONLY sharer and holds the line Modified or
//     Exclusive in its L2;
//   - without an owner, every recorded sharer holds the line Shared;
//   - a sharer bit is set if and only if that node's cache holds the line
//     (OnL2Evict keeps the reverse direction; invalidations the forward);
//   - each hierarchy preserves multilevel inclusion;
//   - no home's directory controller is charged more occupancy than wall
//     time.
func (d *Platform) CheckInvariants() error {
	las := make([]uint64, 0, len(d.dir))
	for la := range d.dir {
		las = append(las, la)
	}
	// Sorted so a violating run reports the same line every time.
	sort.Slice(las, func(i, j int) bool { return las[i] < las[j] })
	for _, la := range las {
		e := d.dir[la]
		if d.np < 64 && e.sharers>>uint(d.np) != 0 {
			return fmt.Errorf("dsm: line %#x has sharer bits %#x beyond %d nodes", la, e.sharers, d.np)
		}
		if e.owner >= 0 {
			if int(e.owner) >= d.np {
				return fmt.Errorf("dsm: line %#x owned by out-of-range node %d", la, e.owner)
			}
			if e.sharers != 1<<uint(e.owner) {
				return fmt.Errorf("dsm: line %#x has owner %d but sharers %#x (owner must be sole sharer)", la, e.owner, e.sharers)
			}
		}
		for q := 0; q < d.np; q++ {
			bit := e.sharers&(1<<uint(q)) != 0
			holds := d.hasLine(q, la*d.line)
			if bit && !holds {
				return fmt.Errorf("dsm: line %#x lists node %d as sharer but its cache lost the line", la, q)
			}
			if !holds {
				continue
			}
			_, st := d.caches[q].Probe(la * d.line)
			if int(e.owner) == q {
				if st != cache.Modified && st != cache.Exclusive {
					return fmt.Errorf("dsm: line %#x owner %d holds it in state %s, want M or E", la, q, st)
				}
			} else if bit && st != cache.Shared {
				return fmt.Errorf("dsm: line %#x non-owner sharer %d holds it in state %s, want S", la, q, st)
			}
		}
	}
	for q := 0; q < d.np; q++ {
		if err := d.caches[q].CheckInclusion(); err != nil {
			return fmt.Errorf("dsm: node %d: %w", q, err)
		}
		var lerr error
		d.caches[q].LinesL2(func(la uint64, st cache.State) {
			if lerr != nil {
				return
			}
			e, ok := d.dir[la]
			if !ok || e.sharers&(1<<uint(q)) == 0 {
				lerr = fmt.Errorf("dsm: node %d caches line %#x (state %s) unknown to the directory", q, la, st)
			}
		})
		if lerr != nil {
			return lerr
		}
		if err := d.dirOcc[q].CheckOccupancy(fmt.Sprintf("dsm: home %d directory", q)); err != nil {
			return err
		}
	}
	return nil
}

var _ sim.InvariantChecked = (*Platform)(nil)
