// Package sim implements the execution-driven simulation kernel shared by
// the three platform models. Each simulated processor is plain state with a
// virtual cycle clock, scheduled by an explicit event loop: the kernel pops
// the runnable processor with the smallest virtual time from a priority
// heap and resumes its continuation (or drains its pending access batch in
// place); exactly one processor executes at a time.
// Applications charge compute cycles explicitly and issue simulated memory
// references and synchronization operations; the bound Platform translates
// those into stall, wait and protocol-handler cycles following its machine
// model (SVM/HLRC, CC-NUMA directory, or snooping bus).
package sim

// AccessCost is the cycle cost of a memory access that required protocol
// activity, split into the paper's accounting categories.
type AccessCost struct {
	// CacheStall is local memory-hierarchy stall (charged to CPU-Cache
	// Stall Time).
	CacheStall uint64
	// DataWait is time waiting for remote data (charged to Data Wait
	// Time), e.g. a page fetch or a remote 2-/3-hop miss.
	DataWait uint64
	// Handler is protocol processing performed by this processor itself
	// as part of the access (charged to Handler Compute Time), e.g.
	// creating a twin on the first write to a page.
	Handler uint64
}

// Total returns the sum of the components.
func (c AccessCost) Total() uint64 { return c.CacheStall + c.DataWait + c.Handler }

// Platform is the machine model plugged into the kernel. All methods are
// invoked with the global single-active-goroutine discipline, so
// implementations need no internal locking. Times are virtual cycles.
type Platform interface {
	// Name identifies the platform ("svm", "dsm", "smp").
	Name() string

	// Attach binds the platform to a kernel before a run, resetting any
	// per-run state (caches, page tables, occupancy clocks).
	Attach(k *Kernel)

	// FastAccess attempts a purely processor-local access (cache hit, or
	// a local-memory miss with no coherence interaction). It returns the
	// local stall cycles and ok=true, or ok=false when the access needs
	// SlowAccess protocol processing.
	FastAccess(p int, now uint64, addr uint64, write bool) (stall uint64, ok bool)

	// SlowAccess performs an access requiring global protocol activity
	// (page fault, coherence miss, upgrade). It may charge handler debt
	// to other processors via the kernel.
	SlowAccess(p int, now uint64, addr uint64, write bool) AccessCost

	// LockRequest returns the cost of issuing a lock request (charged to
	// Lock Wait Time).
	LockRequest(p int, now uint64, lock int) uint64

	// LockGrant performs consistency actions at lock acquisition (e.g.
	// HLRC write-notice invalidations) and returns their cost.
	// prevHolder is the last processor to hold the lock, or -1.
	LockGrant(p int, now uint64, lock int, prevHolder int) uint64

	// LockRelease performs release-side actions (e.g. HLRC diff flush).
	// sync is charged to Lock Wait Time, handler to Handler Compute Time;
	// the lock becomes grantable to a waiter freeDelay cycles after the
	// release completes.
	LockRelease(p int, now uint64, lock int) (sync, handler, freeDelay uint64)

	// BarrierArrive performs arrival-side work (e.g. flushing diffs to
	// homes). sync is charged to Barrier Wait Time, handler to Handler
	// Compute Time.
	BarrierArrive(p int, now uint64) (sync, handler uint64)

	// BarrierRelease computes the global release time given each
	// processor's completed arrival time, charging any centralized
	// manager work (the manager processor is chosen by the kernel).
	BarrierRelease(arrivals []uint64, manager int) uint64

	// BarrierDepart performs post-barrier consistency actions for p
	// (e.g. invalidating pages named in received write notices) and
	// returns their cost (charged to Barrier Wait Time).
	BarrierDepart(p int, releaseTime uint64) uint64
}

// RangeAccessor is an optional Platform extension: a platform that can
// process a run of consecutive line accesses entirely on the fast path in
// one call. FastRange must behave exactly like calling FastAccess line by
// line from addr (line-aligned) while it keeps returning ok=true — same
// per-line state transitions, stall sum, and counter updates — and stop at
// the first line that would need SlowAccess, without touching that line's
// state. It returns the number of lines processed and their total stall.
//
// The kernel may use it because the fast prefix of an access batch has no
// yield points: scheduling, and therefore determinism, is unaffected.
// Platforms whose fast-path cost depends on the passed clock must not
// implement it unless they account for the clock advancing by each line's
// stall.
type RangeAccessor interface {
	FastRange(p int, now uint64, addr, end uint64, write bool) (n int, stall uint64)
}

// NopPlatform is a zero-cost platform used by kernel unit tests: every
// access is a free local hit and synchronization carries no protocol cost.
type NopPlatform struct{ k *Kernel }

// Name implements Platform.
func (n *NopPlatform) Name() string { return "nop" }

// Attach implements Platform.
func (n *NopPlatform) Attach(k *Kernel) { n.k = k }

// FastAccess implements Platform.
func (n *NopPlatform) FastAccess(p int, now uint64, addr uint64, write bool) (uint64, bool) {
	return 0, true
}

// SlowAccess implements Platform.
func (n *NopPlatform) SlowAccess(p int, now uint64, addr uint64, write bool) AccessCost {
	return AccessCost{}
}

// LockRequest implements Platform.
func (n *NopPlatform) LockRequest(p int, now uint64, lock int) uint64 { return 0 }

// LockGrant implements Platform.
func (n *NopPlatform) LockGrant(p int, now uint64, lock int, prev int) uint64 { return 0 }

// LockRelease implements Platform.
func (n *NopPlatform) LockRelease(p int, now uint64, lock int) (uint64, uint64, uint64) {
	return 0, 0, 0
}

// BarrierArrive implements Platform.
func (n *NopPlatform) BarrierArrive(p int, now uint64) (uint64, uint64) { return 0, 0 }

// BarrierRelease implements Platform.
func (n *NopPlatform) BarrierRelease(arrivals []uint64, manager int) uint64 {
	var m uint64
	for _, a := range arrivals {
		if a > m {
			m = a
		}
	}
	return m
}

// BarrierDepart implements Platform.
func (n *NopPlatform) BarrierDepart(p int, releaseTime uint64) uint64 { return 0 }

var _ Platform = (*NopPlatform)(nil)
