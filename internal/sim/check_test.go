package sim

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/stats"
)

// Property: however a Resource is driven — dense bursts, sparse arrivals,
// zero-length reservations, clock jumps — reservations never overlap, so
// total occupancy can never exceed the busy-until clock.
func TestResourceOccupancyNeverExceedsWallTime(t *testing.T) {
	// Deterministic LCG (no global RNG: runs must be reproducible).
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 16
	}
	var r Resource
	var now uint64
	for i := 0; i < 10000; i++ {
		switch next() % 4 {
		case 0:
			now += next() % 5000 // jump past the busy window
		case 1: // dense burst at the same instant
		default:
			now += next() % 50
		}
		dur := next() % 200
		start := r.Acquire(now, dur)
		if start < now {
			t.Fatalf("iteration %d: start %d before request time %d", i, start, now)
		}
		if r.Occupancy() > r.BusyUntil() {
			t.Fatalf("iteration %d: occupancy %d exceeds busy-until %d", i, r.Occupancy(), r.BusyUntil())
		}
		if err := r.CheckOccupancy("resource"); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	if r.Occupancy() == 0 {
		t.Fatal("property test charged no occupancy at all")
	}
}

func TestCheckOccupancyDetectsOvercharge(t *testing.T) {
	var r Resource
	r.Acquire(0, 100)
	r.occ += 1 // simulate a double-charge bug
	if err := r.CheckOccupancy("bus"); err == nil {
		t.Fatal("overcharged resource passed CheckOccupancy")
	}
}

// corruptPlatform is a NopPlatform whose invariants report a violation; the
// kernel's checker must surface it as a structured InvariantError.
type corruptPlatform struct{ NopPlatform }

func (c *corruptPlatform) CheckInvariants() error {
	return fmt.Errorf("synthetic corruption")
}

func TestCheckerReportsCorruptPlatform(t *testing.T) {
	k := New(&corruptPlatform{}, Config{NumProcs: 2, Check: true})
	_, err := k.RunErr("corrupt", func(p *Proc) {
		p.Compute(10)
		p.Barrier()
	})
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want InvariantError", err)
	}
	if ie.Where != "platform" {
		t.Errorf("violation site = %q, want platform", ie.Where)
	}
}

// debtPlatform charges handler debt to processor 0 on every slow access, the
// way a home node is charged for serving pages. The accounting identity —
// every processor's breakdown sums exactly to its final clock — only holds
// if each charged cycle lands in both the clock and the Handler category.
type debtPlatform struct{ NopPlatform }

func (d *debtPlatform) FastAccess(p int, now uint64, addr uint64, write bool) (uint64, bool) {
	return 0, false // force every access through SlowAccess
}

func (d *debtPlatform) SlowAccess(p int, now uint64, addr uint64, write bool) AccessCost {
	if p != 0 {
		d.k.ChargeHandler(0, 37)
	}
	return AccessCost{CacheStall: 5, Handler: 3}
}

func (d *debtPlatform) Attach(k *Kernel) { d.k = k }

func TestHandlerDebtConservesCycles(t *testing.T) {
	np := 4
	pl := &debtPlatform{}
	k := New(pl, Config{NumProcs: np, Check: true})
	run, err := k.RunErr("debt", func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Read(uint64(4096 + i*64))
			p.Compute(11)
		}
		p.Barrier()
	})
	// The Check sweep enforces the identity at end of run; err != nil would
	// mean charged debt leaked out of (or was double-counted into) a clock.
	if err != nil {
		t.Fatal(err)
	}
	if got := run.Procs[0].Cycles[stats.Handler]; got < 37*uint64(np-1)*50 {
		t.Errorf("debtor's handler time = %d, want at least the %d charged cycles",
			got, 37*uint64(np-1)*50)
	}
}
