package sim

import (
	"iter"
	"runtime/debug"
)

// Continuations.
//
// Multi-processor runs execute each body on a resumable continuation built
// from iter.Pull, which the runtime backs with a direct coroutine switch —
// about 3x cheaper than the park/resume channel rendezvous the kernel used
// to pay per handoff, with no goroutine wakeup latency and no scheduler
// interaction. Exactly one continuation runs at a time and only when the
// event loop resumes it, so the global single-active discipline (and with
// it the platforms' lock-free design) is unchanged.
//
// The wrapper recovers two kinds of panic at the continuation boundary:
//
//   - abortSim, raised inside switchOut when the kernel stops a continuation
//     while unwinding a failed run — swallowed silently;
//   - everything else (application bugs, platform guards such as interval
//     overflow), captured into p.panicked/p.stack and surfaced by the event
//     loop as a *ProcPanicError, exactly as the goroutine-per-processor
//     kernel did.

// start builds p's continuation around body. The body does not run until
// the event loop first resumes p; if the run is unwound before that, the
// continuation is stopped without the body ever starting.
func (p *Proc) start(body func(*Proc)) {
	p.next, p.stop = iter.Pull(func(yield func(struct{}) bool) {
		p.yield = yield
		defer func() {
			if r := recover(); r != nil {
				if _, abort := r.(abortSim); !abort {
					p.panicked = r
					p.stack = string(debug.Stack())
				}
			}
		}()
		body(p)
	})
}

// resumeCoro switches into p's continuation until it yields again (p.op
// says how) or the body returns (opDone).
func (p *Proc) resumeCoro() opKind {
	if _, ok := p.next(); !ok {
		return opDone
	}
	return p.op
}
