package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// TestPropertyDeterministicRandomPrograms drives the kernel with randomized
// SPMD programs (mixed compute, locks, barriers) and checks two invariants:
// the same program always produces identical statistics, and every clock is
// consistent with the sum of its breakdown categories.
func TestPropertyDeterministicRandomPrograms(t *testing.T) {
	f := func(seed uint32, np8 uint8) bool {
		np := int(np8)%7 + 2
		// Barriers must be reached by everyone: the random op choice
		// depends only on the iteration, not the processor; per-op
		// amounts vary per processor.
		prog := func(p *Proc) {
			s := uint64(seed) + 1
			for i := 0; i < 30; i++ {
				s ^= s << 13
				s ^= s >> 7
				s ^= s << 17
				switch s % 4 {
				case 0:
					p.Compute((s + uint64(p.ID())*31) % 500)
				case 1:
					p.Lock(int(s % 3))
					p.Compute(s % 100)
					p.Unlock(int(s % 3))
				case 2:
					p.Compute((s * uint64(p.ID()+1)) % 50)
				case 3:
					p.Barrier()
				}
			}
			p.Barrier()
		}
		r1 := New(&NopPlatform{}, Config{NumProcs: np}).Run("p", prog)
		r2 := New(&NopPlatform{}, Config{NumProcs: np}).Run("p", prog)
		if r1.EndTime != r2.EndTime {
			return false
		}
		for i := range r1.Procs {
			if r1.Procs[i] != r2.Procs[i] {
				return false
			}
			// Per-processor clock consistency: total categories
			// equal the final clock (everyone ends at the last
			// barrier's departure, recorded in EndTime modulo
			// depart deltas; with the nop platform they coincide).
			if r1.Procs[i].Total() > r1.EndTime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyQuantumInvariance drives the same randomized SPMD programs at
// the quantum's edge values — 1 (yield at every opportunity past the
// horizon) and effectively infinite (yield only at synchronization points) —
// and requires statistics identical to the default slice. Every
// globally-visible event (lock, barrier, slow access) is pinned to the
// virtual-time floor by a syncPoint, and every fast-path charge is purely
// processor-local, so the quantum must be a pure scheduling knob. A failure
// here means a syncPoint was lost and event order now depends on slice
// length.
func TestPropertyQuantumInvariance(t *testing.T) {
	f := func(seed uint32, np8 uint8) bool {
		np := int(np8)%7 + 2
		prog := func(p *Proc) {
			s := uint64(seed) + 1
			for i := 0; i < 25; i++ {
				s ^= s << 13
				s ^= s >> 7
				s ^= s << 17
				switch s % 5 {
				case 0:
					p.Compute((s + uint64(p.ID())*31) % 500)
				case 1:
					p.Lock(int(s % 3))
					p.Compute(s % 100)
					p.Unlock(int(s % 3))
				case 2:
					p.ReadRange(uint64(p.ID())*4096, int(s%300)+32)
				case 3:
					p.Barrier()
				case 4:
					p.Write(s % 8192)
				}
			}
			p.Barrier()
		}
		runAt := func(q uint64) *stats.Run {
			return New(&stripePlatform{slowEvery: 3, slowCost: 90}, Config{NumProcs: np, Quantum: q}).Run("q", prog)
		}
		def := runAt(0) // kernel default
		for _, q := range []uint64{1, 7, 1 << 40} {
			r := runAt(q)
			if r.EndTime != def.EndTime {
				return false
			}
			for i := range r.Procs {
				if r.Procs[i] != def.Procs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLockWaitConservation: with a nop platform, total lock wait
// equals total serialization delay, so it can never exceed (np-1) times the
// longest critical-section sum.
func TestPropertyLockWaitConservation(t *testing.T) {
	f := func(np8, cs8 uint8) bool {
		np := int(np8)%7 + 2
		cs := uint64(cs8)%400 + 1
		k := New(&NopPlatform{}, Config{NumProcs: np})
		run := k.Run("lk", func(p *Proc) {
			p.Lock(1)
			p.Compute(cs)
			p.Unlock(1)
		})
		var wait uint64
		for i := range run.Procs {
			wait += run.Procs[i].Cycles[stats.LockWait]
		}
		// Serial chain: proc i waits i*cs; sum = cs*np*(np-1)/2.
		want := cs * uint64(np) * uint64(np-1) / 2
		return wait == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBarrierClockAgreement: after any barrier on the nop platform,
// all processors hold identical clocks.
func TestPropertyBarrierClockAgreement(t *testing.T) {
	f := func(seed uint32, np8 uint8) bool {
		np := int(np8)%7 + 2
		clocks := make([]uint64, np)
		k := New(&NopPlatform{}, Config{NumProcs: np})
		k.Run("b", func(p *Proc) {
			p.Compute(uint64(seed%1000) * uint64(p.ID()+1))
			p.Barrier()
			clocks[p.ID()] = p.Now()
		})
		for _, c := range clocks {
			if c != clocks[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
