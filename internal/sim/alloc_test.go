package sim

import (
	"testing"

	"repro/internal/trace"
)

// nullPlatform is the minimal Platform for kernel-only tests.
type nullPlatform struct{}

func (nullPlatform) Name() string                                          { return "null" }
func (nullPlatform) Attach(*Kernel)                                        {}
func (nullPlatform) FastAccess(int, uint64, uint64, bool) (uint64, bool)   { return 0, true }
func (nullPlatform) SlowAccess(int, uint64, uint64, bool) AccessCost       { return AccessCost{} }
func (nullPlatform) LockRequest(int, uint64, int) uint64                   { return 0 }
func (nullPlatform) LockGrant(int, uint64, int, int) uint64                { return 0 }
func (nullPlatform) LockRelease(int, uint64, int) (uint64, uint64, uint64) { return 0, 0, 0 }
func (nullPlatform) BarrierArrive(int, uint64) (uint64, uint64)            { return 0, 0 }
func (nullPlatform) BarrierRelease([]uint64, int) uint64                   { return 0 }
func (nullPlatform) BarrierDepart(int, uint64) uint64                      { return 0 }

// TestAllocFreeEmitNilSink pins the tracing-off Emit path at zero
// allocations: every protocol event site calls Emit unconditionally, so with
// no sink installed the call must cost one nil check and nothing else.
func TestAllocFreeEmitNilSink(t *testing.T) {
	k := New(nullPlatform{}, Config{NumProcs: 1})
	if k.tr != nil {
		t.Fatal("expected no trace sink outside a run")
	}
	if n := testing.AllocsPerRun(2000, func() {
		k.Emit(trace.PageFault, 0, 1, 2, 3)
		k.Emit(trace.BusTxn, 0, 4, 5, 6)
	}); n != 0 {
		t.Fatalf("nil-sink Emit allocates %v per run; want 0", n)
	}
}
