package sim

import (
	"testing"

	"repro/internal/trace"
)

// nullPlatform is the minimal Platform for kernel-only tests.
type nullPlatform struct{}

func (nullPlatform) Name() string                                          { return "null" }
func (nullPlatform) Attach(*Kernel)                                        {}
func (nullPlatform) FastAccess(int, uint64, uint64, bool) (uint64, bool)   { return 0, true }
func (nullPlatform) SlowAccess(int, uint64, uint64, bool) AccessCost       { return AccessCost{} }
func (nullPlatform) LockRequest(int, uint64, int) uint64                   { return 0 }
func (nullPlatform) LockGrant(int, uint64, int, int) uint64                { return 0 }
func (nullPlatform) LockRelease(int, uint64, int) (uint64, uint64, uint64) { return 0, 0, 0 }
func (nullPlatform) BarrierArrive(int, uint64) (uint64, uint64)            { return 0, 0 }
func (nullPlatform) BarrierRelease([]uint64, int) uint64                   { return 0 }
func (nullPlatform) BarrierDepart(int, uint64) uint64                      { return 0 }

// TestAllocFreeSingleProcRun pins the inline scheduler path at zero
// allocations per run: with NumProcs=1 the body runs directly on the kernel
// goroutine (no continuation is created), the Run object and per-proc state
// are reused in place, and streaming reads — per-line and batched — must not
// allocate. This is the kernel-side half of the kernel_stream benchmark's
// 0 allocs/op pin in BENCH_kernel.json.
func TestAllocFreeSingleProcRun(t *testing.T) {
	k := New(nullPlatform{}, Config{NumProcs: 1})
	lines := func(p *Proc) {
		for off := uint64(0); off < 1<<12; off += 32 {
			p.Read(off)
		}
	}
	batch := func(p *Proc) { p.ReadRange(0, 1<<12); p.Compute(100) }
	k.Run("warm", lines) // first run sizes the reusable state
	if n := testing.AllocsPerRun(20, func() { k.Run("lines", lines) }); n != 0 {
		t.Errorf("per-line stream run allocates %v per run; want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { k.Run("batch", batch) }); n != 0 {
		t.Errorf("batched stream run allocates %v per run; want 0", n)
	}
}

// TestEventLoopRunAllocsBounded: the multi-processor event loop must pay
// only the fixed per-processor continuation setup (iter.Pull) per run —
// nothing proportional to the work simulated.
func TestEventLoopRunAllocsBounded(t *testing.T) {
	k := New(nullPlatform{}, Config{NumProcs: 4})
	body := func(p *Proc) {
		for off := uint64(0); off < 1<<12; off += 32 {
			p.Read(off)
		}
		p.Barrier()
		p.ReadRange(0, 1<<12)
		p.Barrier()
	}
	k.Run("warm", body)
	short := testing.AllocsPerRun(10, func() { k.Run("s", body) })
	long := testing.AllocsPerRun(10, func() {
		k.Run("l", func(p *Proc) {
			for i := 0; i < 8; i++ {
				body(p)
			}
		})
	})
	if short == 0 {
		t.Skip("continuation setup reported 0 allocs; nothing to bound")
	}
	// Allow a few strays (coroutine stack growth); 8x the simulated work
	// must not approach 2x the allocations.
	if long >= 2*short {
		t.Errorf("event-loop allocs scale with simulated work: %v for 1x vs %v for 8x; want fixed setup cost only", short, long)
	}
}

// TestAllocFreeEmitNilSink pins the tracing-off Emit path at zero
// allocations: every protocol event site calls Emit unconditionally, so with
// no sink installed the call must cost one nil check and nothing else.
func TestAllocFreeEmitNilSink(t *testing.T) {
	k := New(nullPlatform{}, Config{NumProcs: 1})
	if k.tr != nil {
		t.Fatal("expected no trace sink outside a run")
	}
	if n := testing.AllocsPerRun(2000, func() {
		k.Emit(trace.PageFault, 0, 1, 2, 3)
		k.Emit(trace.BusTxn, 0, 4, 5, 6)
	}); n != 0 {
		t.Fatalf("nil-sink Emit allocates %v per run; want 0", n)
	}
}
