package sim

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// InvariantChecked is implemented by platforms that can audit their own
// protocol state. When Config.Check is set, the kernel calls CheckInvariants
// at exponentially spaced scheduling points (so corruption introduced early
// is caught early, while steady-state sweep cost stays logarithmic in run
// length) and once more after the last processor finishes. The platform must
// return an error describing the first violated invariant, or nil.
type InvariantChecked interface {
	CheckInvariants() error
}

// InvariantError reports a violated runtime invariant detected with
// Config.Check enabled: a non-monotone scheduler pick, a platform protocol
// state inconsistency, or a broken accounting identity. Like the other
// contained simulation failures it carries the recent protocol events when a
// trace ring is installed.
type InvariantError struct {
	// Where locates the check that fired: "scheduler", "platform", or
	// "accounting".
	Where string
	// Detail describes the violated invariant.
	Detail string
	// Recent holds the last protocol events before the violation, when the
	// kernel had a trace ring installed (SetTraceRing).
	Recent []trace.Event
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("sim: invariant violated (%s): %s", e.Where, strings.TrimSuffix(e.Detail, "\n")) +
		formatRecent(e.Recent)
}

// invariantErr builds a contained InvariantError carrying the trace ring.
func (k *Kernel) invariantErr(where, format string, args ...any) *InvariantError {
	return &InvariantError{Where: where, Detail: fmt.Sprintf(format, args...), Recent: k.recentEvents()}
}

// checkTick runs the per-pick invariants: the picked processor's clock is the
// minimum over ready processors, i.e. the floor of global virtual time, and
// that floor must never move backwards. Platform sweeps run at picks 1024,
// 2048, 4096, ... so the cost is O(log picks) sweeps per run.
func (k *Kernel) checkTick(p *Proc) error {
	if p.clock < k.lastPickClock {
		return k.invariantErr("scheduler",
			"virtual-time floor moved backwards: picked proc %d at clock %d after floor %d",
			p.id, p.clock, k.lastPickClock)
	}
	k.lastPickClock = p.clock
	k.picks++
	if k.picks >= k.nextCheck {
		k.nextCheck *= 2
		return k.checkPlatform()
	}
	return nil
}

// checkPlatform sweeps the platform's protocol invariants, if it has any.
func (k *Kernel) checkPlatform() error {
	ic, ok := k.plat.(InvariantChecked)
	if !ok {
		return nil
	}
	if err := ic.CheckInvariants(); err != nil {
		return k.invariantErr("platform", "%v", err)
	}
	return nil
}

// checkFinal runs the end-of-run invariants: one last platform sweep, then
// the accounting identity — every processor's breakdown categories must sum
// exactly to its final virtual clock, and EndTime must be the maximum clock.
func (k *Kernel) checkFinal() error {
	if err := k.checkPlatform(); err != nil {
		return err
	}
	clocks := make([]uint64, len(k.procs))
	for i := range k.procs {
		clocks[i] = k.procs[i].clock
	}
	if err := k.run.CheckAccounting(clocks); err != nil {
		return k.invariantErr("accounting", "%v", err)
	}
	return nil
}
