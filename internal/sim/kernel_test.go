package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestComputeAccounting(t *testing.T) {
	k := New(&NopPlatform{}, Config{NumProcs: 4})
	run := k.Run("compute", func(p *Proc) {
		p.Compute(uint64(100 * (p.ID() + 1)))
	})
	for i := 0; i < 4; i++ {
		want := uint64(100 * (i + 1))
		if got := run.Procs[i].Cycles[stats.Compute]; got != want {
			t.Errorf("proc %d compute = %d, want %d", i, got, want)
		}
	}
	if run.EndTime != 400 {
		t.Errorf("end time = %d, want 400", run.EndTime)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	k := New(&NopPlatform{}, Config{NumProcs: 8})
	after := make([]uint64, 8)
	run := k.Run("barrier", func(p *Proc) {
		p.Compute(uint64(10 * (p.ID() + 1)))
		p.Barrier()
		after[p.ID()] = p.Now()
	})
	// With a nop platform everyone departs at the max arrival time (80).
	for i, a := range after {
		if a != 80 {
			t.Errorf("proc %d clock after barrier = %d, want 80", i, a)
		}
	}
	// Barrier wait = 80 - own arrival.
	for i := 0; i < 8; i++ {
		want := uint64(80 - 10*(i+1))
		if got := run.Procs[i].Cycles[stats.BarrierWait]; got != want {
			t.Errorf("proc %d barrier wait = %d, want %d", i, got, want)
		}
	}
}

func TestMultipleBarriers(t *testing.T) {
	k := New(&NopPlatform{}, Config{NumProcs: 4})
	k.Run("barriers", func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Compute(uint64(p.ID() + 1))
			p.Barrier()
		}
	})
}

func TestLockMutualExclusionInVirtualTime(t *testing.T) {
	k := New(&NopPlatform{}, Config{NumProcs: 8})
	var intervals [][2]uint64
	k.Run("lock", func(p *Proc) {
		p.Compute(uint64(5 * p.ID()))
		p.Lock(1)
		start := p.Now()
		p.Compute(100)
		intervals = append(intervals, [2]uint64{start, p.Now()})
		p.Unlock(1)
	})
	if len(intervals) != 8 {
		t.Fatalf("got %d critical sections, want 8", len(intervals))
	}
	for i := range intervals {
		for j := i + 1; j < len(intervals); j++ {
			a, b := intervals[i], intervals[j]
			if a[0] < b[1] && b[0] < a[1] {
				t.Errorf("critical sections overlap in virtual time: %v and %v", a, b)
			}
		}
	}
}

func TestLockCriticalSectionSerializes(t *testing.T) {
	// 4 procs each hold the lock for 100 cycles; the last to finish must
	// have clock >= 400.
	k := New(&NopPlatform{}, Config{NumProcs: 4})
	var maxEnd uint64
	run := k.Run("serialize", func(p *Proc) {
		p.Lock(7)
		p.Compute(100)
		if p.Now() > maxEnd {
			maxEnd = p.Now()
		}
		p.Unlock(7)
	})
	if maxEnd < 400 {
		t.Errorf("last critical section ends at %d, want >= 400", maxEnd)
	}
	var totalWait uint64
	for i := range run.Procs {
		totalWait += run.Procs[i].Cycles[stats.LockWait]
	}
	// Waiters queue behind 100-cycle sections: 100+200+300 = 600.
	if totalWait != 600 {
		t.Errorf("total lock wait = %d, want 600", totalWait)
	}
}

func TestDeterminism(t *testing.T) {
	body := func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.Compute(uint64(1 + (p.ID()*7+i)%13))
			p.Lock(i % 3)
			p.Compute(10)
			p.Unlock(i % 3)
			if i%5 == 0 {
				p.Barrier()
			}
		}
		p.Barrier()
	}
	k1 := New(&NopPlatform{}, Config{NumProcs: 8})
	r1 := k1.Run("det", body)
	k2 := New(&NopPlatform{}, Config{NumProcs: 8})
	r2 := k2.Run("det", body)
	if r1.EndTime != r2.EndTime {
		t.Fatalf("end times differ: %d vs %d", r1.EndTime, r2.EndTime)
	}
	for i := range r1.Procs {
		if r1.Procs[i] != r2.Procs[i] {
			t.Errorf("proc %d stats differ between identical runs", i)
		}
	}
}

func TestHandlerDebt(t *testing.T) {
	k := New(&NopPlatform{}, Config{NumProcs: 2})
	run := k.Run("debt", func(p *Proc) {
		if p.ID() == 0 {
			p.Compute(10)
			p.Kernel().ChargeHandler(1, 500)
		}
		p.Compute(5)
		p.Barrier()
	})
	if got := run.Procs[1].Cycles[stats.Handler]; got != 500 {
		t.Errorf("proc 1 handler time = %d, want 500", got)
	}
}

func TestKernelReuseAcrossRuns(t *testing.T) {
	k := New(&NopPlatform{}, Config{NumProcs: 4})
	r1 := k.Run("a", func(p *Proc) { p.Compute(10); p.Barrier() })
	// The kernel owns the returned Run and reuses it on the next Run call
	// (that is what keeps repeated runs allocation-free), so results must
	// be copied out before re-running.
	end1 := r1.EndTime
	r2 := k.Run("b", func(p *Proc) { p.Compute(10); p.Barrier() })
	if r1 != r2 {
		t.Errorf("reused kernel returned a fresh Run; expected the same reused object")
	}
	if end1 != r2.EndTime {
		t.Errorf("reused kernel gives different results: %d vs %d", end1, r2.EndTime)
	}
}

func TestBarrierManagerDefault(t *testing.T) {
	k := New(&NopPlatform{}, Config{NumProcs: 16, BarrierManager: AutoBarrierManager})
	if k.Config().BarrierManager != 10 {
		t.Errorf("barrier manager = %d, want 10 (paper's LU analysis)", k.Config().BarrierManager)
	}
	k = New(&NopPlatform{}, Config{NumProcs: 4, BarrierManager: AutoBarrierManager})
	if k.Config().BarrierManager != 0 {
		t.Errorf("small-run barrier manager = %d, want 0", k.Config().BarrierManager)
	}
}

func TestBarrierManagerExplicitZero(t *testing.T) {
	// An explicit processor 0 must be honored even on large runs; it used
	// to be indistinguishable from "unset" and silently overridden to
	// NumProcs-6.
	k := New(&NopPlatform{}, Config{NumProcs: 16})
	if k.Config().BarrierManager != 0 {
		t.Errorf("explicit manager 0 = %d, want 0", k.Config().BarrierManager)
	}
	k = New(&NopPlatform{}, Config{NumProcs: 16, BarrierManager: 3})
	if k.Config().BarrierManager != 3 {
		t.Errorf("explicit manager 3 = %d, want 3", k.Config().BarrierManager)
	}
}

// TestBarrierManagerOutOfRangeIsConfigError pins the fix for the second
// silent-misconfiguration bug in this family: an explicit BarrierManager at
// or beyond NumProcs used to be clamped to NumProcs-1, quietly running the
// manager-placement analysis on the wrong processor. It must now surface
// from RunErr as a structured *ConfigError naming the field.
func TestBarrierManagerOutOfRangeIsConfigError(t *testing.T) {
	for _, bad := range []int{4, 5, 100} {
		k := New(&NopPlatform{}, Config{NumProcs: 4, BarrierManager: bad})
		ran := false
		run, err := k.RunErr("bad-config", func(p *Proc) { ran = true })
		if run != nil || err == nil {
			t.Fatalf("BarrierManager=%d: RunErr = (%v, %v), want (nil, *ConfigError)", bad, run, err)
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("BarrierManager=%d: error %T %q is not a *ConfigError", bad, err, err)
		}
		if ce.Field != "BarrierManager" {
			t.Errorf("BarrierManager=%d: ConfigError.Field = %q, want BarrierManager", bad, ce.Field)
		}
		for _, frag := range []string{"invalid config", "BarrierManager", "NumProcs=4"} {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("BarrierManager=%d: error %q missing %q", bad, err, frag)
			}
		}
		if ran {
			t.Errorf("BarrierManager=%d: body ran despite invalid config", bad)
		}
	}
	// The boundary value NumProcs-1 is a real processor and must still work.
	k := New(&NopPlatform{}, Config{NumProcs: 4, BarrierManager: 3})
	if _, err := k.RunErr("edge", func(p *Proc) { p.Barrier() }); err != nil {
		t.Fatalf("BarrierManager=NumProcs-1: %v", err)
	}
}

// TestRunPanicsOnConfigError: the panicking Run wrapper must forward the
// structured config error, not swallow it.
func TestRunPanicsOnConfigError(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run with invalid config did not panic")
		}
		if _, ok := r.(*ConfigError); !ok {
			t.Fatalf("Run panicked with %T %v, want *ConfigError", r, r)
		}
	}()
	k := New(&NopPlatform{}, Config{NumProcs: 2, BarrierManager: 7})
	k.Run("bad-config", func(p *Proc) {})
}

func TestUnlockNotHeldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unlock of unheld lock")
		}
	}()
	k := New(&NopPlatform{}, Config{NumProcs: 1})
	k.Run("bad", func(p *Proc) { p.Unlock(3) })
}
