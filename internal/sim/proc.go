package sim

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/trace"
)

type opKind int

const (
	opYield opKind = iota // cooperative yield; still ready
	opPark                // blocked on a lock or barrier
	opDone                // body returned
	opBatch               // yielded mid-batch; the kernel drains the rest in place
)

// batchState is a resumable range access: the lines of [addr, end) not yet
// touched, plus whether the line at addr has already taken its fast-path
// miss decision and is waiting for protocol processing at a syncPoint.
type batchState struct {
	addr        uint64
	end         uint64
	write       bool
	pendingSlow bool
}

// Proc is the handle a simulated process uses to charge compute time, issue
// memory references and synchronize. All methods must be called from the
// process's own body function. A Proc is plain state owned by the kernel's
// event loop — in multi-processor runs the body executes on a resumable
// continuation, in single-processor runs directly on the kernel goroutine.
type Proc struct {
	id    int
	k     *Kernel
	clock uint64
	state procState
	op    opKind

	sliceStart uint64      // clock at last pick, for quantum bounding
	stp        *stats.Proc // this processor's accounting record for the run

	// Continuation (multi-processor runs only). yield suspends the body and
	// returns control to the event loop; next resumes it; stop unwinds it.
	yield func(struct{}) bool
	next  func() (struct{}, bool)
	stop  func()

	panicked any
	stack    string // stack captured where panicked was recovered

	batch batchState // pending resumable range access, valid while op == opBatch
}

// ID returns the processor number (0-based).
func (p *Proc) ID() int { return p.id }

// NP returns the number of processors in the run.
func (p *Proc) NP() int { return p.k.cfg.NumProcs }

// Now returns the processor's virtual clock in cycles.
func (p *Proc) Now() uint64 { return p.clock }

// Kernel returns the owning kernel (for platform-aware applications).
func (p *Proc) Kernel() *Kernel { return p.k }

// switchOut suspends the body and returns control to the event loop with
// whatever p.op the caller has set. A false return means the kernel is
// unwinding a failed run: raise the abortSim sentinel, recovered silently
// by the continuation wrapper in start.
func (p *Proc) switchOut() {
	if !p.yield(struct{}{}) {
		panic(abortSim{})
	}
}

// yieldNow hands control back to the scheduler, remaining ready.
func (p *Proc) yieldNow() {
	p.op = opYield
	p.switchOut()
}

// park blocks until another process makes this one ready again. In a
// single-processor run there is nobody to do that, so parking is reported
// immediately as the deadlock it is.
func (p *Proc) park() {
	p.state = stParked
	k := p.k
	if k.inline {
		panic(inlineAbort{err: &DeadlockError{Dump: k.stateDump(), Recent: k.recentEvents()}})
	}
	p.op = opPark
	p.switchOut()
}

// checkpoint yields if this processor has run past the next-ready
// processor's clock and has used up its quantum slice, keeping global event
// processing in near virtual-time order.
func (p *Proc) checkpoint() {
	if p.clock > p.k.horizon && p.clock-p.sliceStart >= p.k.cfg.Quantum {
		p.yieldNow()
	}
}

// syncPoint yields if this processor is ahead of the next-ready processor;
// called before globally-visible protocol and synchronization events so they
// process in near virtual-time order regardless of quantum.
func (p *Proc) syncPoint() {
	for p.clock > p.k.horizon {
		p.yieldNow()
	}
}

// Compute charges n cycles of application instruction execution.
func (p *Proc) Compute(n uint64) {
	p.clock += n
	p.stp.Cycles[stats.Compute] += n
	p.checkpoint()
}

// access performs one line-sized reference.
func (p *Proc) access(addr uint64, write bool) {
	c := p.stp
	if write {
		c.Counters.Writes++
	} else {
		c.Counters.Reads++
	}
	if stall, ok := p.k.plat.FastAccess(p.id, p.clock, addr, write); ok {
		p.clock += stall
		c.Cycles[stats.CacheStall] += stall
		return
	}
	p.syncPoint()
	cost := p.k.plat.SlowAccess(p.id, p.clock, addr, write)
	if p.k.cfg.FreeCSFaults && p.k.locksHeld[p.id] > 0 {
		// Paper diagnostic: faults inside critical sections are free.
		cost = AccessCost{}
	}
	p.clock += cost.Total()
	c.Cycles[stats.CacheStall] += cost.CacheStall
	c.Cycles[stats.DataWait] += cost.DataWait
	c.Cycles[stats.Handler] += cost.Handler
	p.checkpoint()
}

// Read issues a read of the (word-sized) datum at addr.
func (p *Proc) Read(addr uint64) { p.access(addr, false) }

// Write issues a write of the (word-sized) datum at addr.
func (p *Proc) Write(addr uint64) { p.access(addr, true) }

// rangeAccess touches every cache line overlapping [addr, addr+n), as a
// resumable batch: the batch advances in place until it needs to wait for
// virtual time, then yields to the event loop, which keeps draining it
// kernel-side across scheduling rounds and only switches back into the body
// once the batch is finished.
func (p *Proc) rangeAccess(addr uint64, n int, write bool) {
	if n <= 0 {
		return
	}
	k := p.k
	b := &p.batch
	b.addr = addr &^ (k.lineSize - 1)
	b.end = addr + uint64(n)
	b.write = write
	b.pendingSlow = false
	for !k.stepBatch(p) {
		// stepBatch set op = opBatch; on resume the kernel has usually
		// drained the rest already and the re-check returns immediately.
		p.switchOut()
	}
}

// Stall charges additional CPU-cache stall cycles directly. Applications use
// it to extrapolate inner-loop reuse misses they have measured with a probe
// walk, without simulating every repeated access.
func (p *Proc) Stall(n uint64) {
	p.clock += n
	p.stp.Cycles[stats.CacheStall] += n
	p.checkpoint()
}

// CacheStallCycles returns the accumulated CPU-cache stall time, letting
// applications measure the cost of a probe walk (see Stall).
func (p *Proc) CacheStallCycles() uint64 { return p.stp.Cycles[stats.CacheStall] }

// ReadRange reads every cache line overlapping [addr, addr+n).
func (p *Proc) ReadRange(addr uint64, n int) { p.rangeAccess(addr, n, false) }

// WriteRange writes every cache line overlapping [addr, addr+n).
func (p *Proc) WriteRange(addr uint64, n int) { p.rangeAccess(addr, n, true) }

// Lock acquires the given lock, waiting in virtual time if it is held.
func (p *Proc) Lock(id int) {
	p.syncPoint()
	start := p.clock
	k := p.k
	l := k.lockFor(id)
	reqCost := k.plat.LockRequest(p.id, p.clock, id)
	c := p.stp
	c.Counters.LockAcquires++
	k.Emit(trace.LockRequest, p.id, start, uint64(id), reqCost)
	if l.held {
		l.queue = append(l.queue, &lockWaiter{p: p, reqStart: start, reqReady: start + reqCost})
		p.park()
		// grantLock set our clock and charged LockWait before waking us.
	} else {
		xfer := l.prevHolder >= 0 && l.prevHolder != p.id
		granted := start + reqCost
		if l.freeAt > granted {
			granted = l.freeAt
		}
		granted += k.plat.LockGrant(p.id, granted, id, l.prevHolder)
		l.held = true
		l.holder = p.id
		p.clock = granted
		c.Cycles[stats.LockWait] += granted - start
		k.Emit(trace.LockGrant, p.id, start, uint64(id), granted-start)
		if xfer {
			k.Emit(trace.LockTransfer, p.id, granted, uint64(id), 0)
		}
	}
	k.locksHeld[p.id]++
	p.checkpoint()
}

// Unlock releases the given lock and hands it to the next waiter, if any.
func (p *Proc) Unlock(id int) {
	p.syncPoint()
	k := p.k
	l := k.lockFor(id)
	if !l.held || l.holder != p.id {
		panic("sim: Unlock of a lock not held by this processor")
	}
	sync, handler, freeDelay := k.plat.LockRelease(p.id, p.clock, id)
	c := p.stp
	p.clock += sync + handler
	c.Cycles[stats.LockWait] += sync
	c.Cycles[stats.Handler] += handler
	l.held = false
	l.prevHolder = p.id
	l.holder = -1
	l.freeAt = p.clock + freeDelay
	k.locksHeld[p.id]--
	if len(l.queue) > 0 {
		w := l.queue[0]
		copy(l.queue, l.queue[1:])
		l.queue = l.queue[:len(l.queue)-1]
		k.grantLock(l, id, w)
	}
	p.checkpoint()
}

// grantLock hands lock id to waiter w: computes the grant time, performs the
// platform's acquire-side consistency actions, charges the waiter's Lock
// Wait, and makes it ready.
func (k *Kernel) grantLock(l *lockState, id int, w *lockWaiter) {
	xfer := l.prevHolder >= 0 && l.prevHolder != w.p.id
	granted := w.reqReady
	if l.freeAt > granted {
		granted = l.freeAt
	}
	granted += k.plat.LockGrant(w.p.id, granted, id, l.prevHolder)
	l.held = true
	l.holder = w.p.id
	w.p.clock = granted
	k.run.Procs[w.p.id].Cycles[stats.LockWait] += granted - w.reqStart
	k.Emit(trace.LockGrant, w.p.id, w.reqStart, uint64(id), granted-w.reqStart)
	if xfer {
		k.Emit(trace.LockTransfer, w.p.id, granted, uint64(id), 0)
	}
	k.noteReady(w.p)
}

// Barrier joins the global barrier across all processors. The last arrival
// computes the release time; everyone's Barrier Wait Time covers arrival
// overhead, the wait for stragglers, and departure consistency actions.
func (p *Proc) Barrier() {
	p.syncPoint()
	k := p.k
	start := p.clock
	syncCost, handler := k.plat.BarrierArrive(p.id, p.clock)
	c := p.stp
	c.Counters.Barriers++
	c.Cycles[stats.Handler] += handler
	c.Cycles[stats.BarrierWait] += syncCost
	arrived := start + syncCost + handler
	b := &k.bar
	b.arrivals[p.id] = arrived
	b.starts[p.id] = start
	b.count++
	if b.count < k.cfg.NumProcs {
		b.waiting = append(b.waiting, p)
		p.clock = arrived
		p.park()
		p.checkpoint()
		return
	}
	// Last arrival: release everyone. Waiting from completed arrival to
	// departure is charged to Barrier Wait (arrival overhead was charged
	// above; flush work went to Handler).
	release := k.plat.BarrierRelease(b.arrivals, k.cfg.BarrierManager)
	for _, q := range b.waiting {
		depart := release + k.plat.BarrierDepart(q.id, release)
		if depart < b.arrivals[q.id] {
			// A platform returning a release earlier than an arrival
			// would silently underflow the wait charge below.
			panic(fmt.Sprintf("sim: barrier departure %d before proc %d's arrival %d", depart, q.id, b.arrivals[q.id]))
		}
		k.run.Procs[q.id].Cycles[stats.BarrierWait] += depart - b.arrivals[q.id]
		q.clock = depart
		k.Emit(trace.Barrier, q.id, b.starts[q.id], b.epoch, depart-b.starts[q.id])
		k.noteReady(q)
	}
	depart := release + k.plat.BarrierDepart(p.id, release)
	if depart < arrived {
		panic(fmt.Sprintf("sim: barrier departure %d before proc %d's arrival %d", depart, p.id, arrived))
	}
	c.Cycles[stats.BarrierWait] += depart - arrived
	p.clock = depart
	k.Emit(trace.Barrier, p.id, start, b.epoch, depart-start)
	b.count = 0
	b.waiting = b.waiting[:0]
	b.epoch++
	for i := range b.arrivals {
		b.arrivals[i] = 0
		b.starts[i] = 0
	}
	p.checkpoint()
}

// RecordPhase adds cycles to a named phase in the run's phase table.
func (p *Proc) RecordPhase(name string, cycles uint64) {
	p.k.run.RecordPhase(name, cycles)
}

// CountTask records task-queue behaviour for the run (paper's task-stealing
// analyses).
func (p *Proc) CountTask(stolen bool) {
	c := p.stp
	c.Counters.TasksRun++
	if stolen {
		c.Counters.TasksStolen++
	}
}
