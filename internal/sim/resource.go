package sim

import "fmt"

// Resource models a serially-occupied resource (a bus, a NIC, a node's
// protocol handler, a directory controller) with a busy-until clock.
// Requests processed in near virtual-time order queue behind one another,
// which is how the kernel reproduces the paper's contention effects
// ("the cost per page fault is significantly higher than the unloaded
// cost").
type Resource struct {
	busyUntil uint64
	occ       uint64 // total busy cycles ever charged
}

// Acquire reserves the resource for dur cycles starting no earlier than now;
// it returns the actual start time (>= now when the resource is busy).
func (r *Resource) Acquire(now, dur uint64) (start uint64) {
	start = now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	r.busyUntil = start + dur
	r.occ += dur
	return start
}

// BusyUntil returns the time the resource becomes free.
func (r *Resource) BusyUntil() uint64 { return r.busyUntil }

// Occupancy returns the total busy cycles charged to the resource. Since
// reservations never overlap, occupancy can never exceed BusyUntil — the
// invariant platform checkers and the sim property tests assert.
func (r *Resource) Occupancy() uint64 { return r.occ }

// CheckOccupancy verifies the occupancy-bounded-by-wall-time invariant.
func (r *Resource) CheckOccupancy(name string) error {
	if r.occ > r.busyUntil {
		return fmt.Errorf("%s: occupancy %d exceeds busy-until time %d", name, r.occ, r.busyUntil)
	}
	return nil
}

// Reset clears the occupancy clock (between runs).
func (r *Resource) Reset() { r.busyUntil = 0; r.occ = 0 }

// Prevalidator is implemented by platforms that support warm-starting page
// copies at given nodes, modelling data already present after (untimed)
// initialization — e.g. Raytrace's processor 0 holding the scene pages it
// read in from the scene file (paper §4.2.3).
type Prevalidator interface {
	Prevalidate(addr uint64, n int, node int)
}

// WarmPages marks [addr, addr+n) as already present at node on platforms
// that support it; a no-op elsewhere.
func WarmPages(k *Kernel, addr uint64, n int, node int) {
	if pv, ok := k.plat.(Prevalidator); ok {
		pv.Prevalidate(addr, n, node)
	}
}

// Platform returns the platform bound to this kernel.
func (k *Kernel) Platform() Platform { return k.plat }
