package sim

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strings"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Config controls a simulated run.
type Config struct {
	// NumProcs is the number of simulated processors.
	NumProcs int
	// Quantum bounds how far a processor's clock may run ahead of the
	// next-ready processor before it must yield at a checkpoint. Smaller
	// quanta give tighter event ordering at higher handoff cost.
	// Defaults to 2000 cycles.
	Quantum uint64
	// BarrierManager is the processor charged with centralized barrier
	// protocol work (the paper's LU analysis hinges on processor 10 being
	// the manager of the most important barrier). AutoBarrierManager (any
	// negative value) selects the paper's placement — NumProcs-6 when
	// NumProcs >= 8 (so 10 for 16 processors), else 0. An explicit value,
	// including 0, pins the manager to that processor; an explicit value
	// >= NumProcs is a configuration error reported by RunErr.
	BarrierManager int
	// FreeCSFaults, when true, makes data-access costs inside critical
	// sections free — the paper's diagnostic for critical-section
	// dilation ("we pretended in the simulator that the page faults
	// within the critical sections are free").
	FreeCSFaults bool
	// Check enables runtime invariant checking: the scheduler verifies
	// virtual-time monotonicity at every pick, the platform's protocol
	// invariants are swept at exponentially spaced intervals and at the
	// end of the run (see InvariantChecked), and the final statistics must
	// satisfy the accounting identity that each processor's breakdown
	// categories sum to its final clock. A violation is returned from
	// RunErr as a contained *InvariantError.
	Check bool
}

// AutoBarrierManager selects the paper's default barrier-manager placement.
// It is distinct from 0 so that processor 0 is explicitly selectable (an
// earlier version of Config treated 0 as "unset" and silently overrode it).
const AutoBarrierManager = -1

func (c Config) withDefaults() Config {
	if c.NumProcs <= 0 {
		c.NumProcs = 1
	}
	if c.Quantum == 0 {
		c.Quantum = 2000
	}
	if c.BarrierManager < 0 {
		if c.NumProcs >= 8 {
			c.BarrierManager = c.NumProcs - 6
		} else {
			c.BarrierManager = 0
		}
	}
	return c
}

// validate rejects configurations withDefaults cannot repair. An explicit
// BarrierManager at or beyond NumProcs used to be silently clamped to the
// last processor — the same class of silent misconfiguration as the old
// 0-sentinel bug, and one that quietly moved the paper's manager-placement
// analysis onto the wrong processor. It is now a structured error.
func (c Config) validate() error {
	if c.BarrierManager >= c.NumProcs {
		return &ConfigError{
			Field: "BarrierManager",
			Detail: fmt.Sprintf("manager processor %d does not exist with NumProcs=%d (use AutoBarrierManager for the paper's placement)",
				c.BarrierManager, c.NumProcs),
		}
	}
	return nil
}

type procState int

const (
	stReady procState = iota
	stRunning
	stParked
	stDone
)

// noHorizon is the yield horizon when no other processor is ready: the
// running processor may advance unboundedly without yielding.
const noHorizon = ^uint64(0)

type lockState struct {
	held       bool
	holder     int
	prevHolder int
	freeAt     uint64 // earliest grantable time once released
	queue      []*lockWaiter
}

type lockWaiter struct {
	p        *Proc
	reqStart uint64 // clock when Lock() was called
	reqReady uint64 // reqStart + request cost
}

type barrierState struct {
	arrivals []uint64 // completed arrival time per proc; 0 = not arrived
	starts   []uint64 // clock at Barrier() entry per proc, for trace episodes
	waiting  []*Proc
	count    int
	epoch    uint64
}

// Kernel is the deterministic event-loop scheduler binding application
// processes to a Platform. Simulated processors are plain state, not
// goroutines: the kernel pops the ready processor with the smallest virtual
// clock from a priority heap and resumes its continuation (or drains its
// pending access batch in place) until it yields, parks, or finishes.
type Kernel struct {
	cfg  Config
	plat Platform
	run  *stats.Run

	procs   []Proc
	ready   []*Proc // min-heap on (clock, id): the ready processors
	horizon uint64  // clock of the next-min ready proc while one runs
	inline  bool    // NumProcs==1: body runs directly on the kernel goroutine

	// lineSize caches the platform's range-access granularity so rangeAccess
	// does not repeat an interface assertion per call.
	lineSize uint64
	// ranger caches the platform's optional bulk fast path (see RangeAccessor).
	ranger RangeAccessor

	pendingHandler []uint64 // handler debt charged by remote protocol work
	locksHeld      []int    // nesting depth of locks held per proc
	locks          map[int]*lockState
	bar            barrierState

	running bool

	// Invariant checking state (Config.Check).
	lastPickClock uint64 // virtual-time floor at the previous pick
	picks         uint64
	nextCheck     uint64 // pick count of the next platform sweep

	// Tracing. tr is the active sink for the current run (nil when tracing
	// is off — the fast path every event site branches on); it is rebuilt
	// each run as the Tee of the persistent user sink, the post-mortem
	// ring, and any sinks the platform installed during Attach.
	tr          trace.Sink
	userSink    trace.Sink
	ring        *trace.Ring
	runSinks    []trace.Sink
	sampler     trace.Sampler
	sampleEvery uint64
	nextSample  uint64
	lastSample  uint64
}

// New creates a kernel for the given platform and configuration.
func New(plat Platform, cfg Config) *Kernel {
	cfg = cfg.withDefaults()
	k := &Kernel{
		cfg:            cfg,
		plat:           plat,
		pendingHandler: make([]uint64, cfg.NumProcs),
		locksHeld:      make([]int, cfg.NumProcs),
		locks:          map[int]*lockState{},
	}
	k.lineSize = 32
	if la, ok := plat.(interface{ LineSize() int }); ok {
		k.lineSize = uint64(la.LineSize())
	}
	k.ranger, _ = plat.(RangeAccessor)
	k.bar.arrivals = make([]uint64, cfg.NumProcs)
	k.bar.starts = make([]uint64, cfg.NumProcs)
	return k
}

// SetTraceSink installs a protocol event sink that persists across runs
// (nil turns user tracing off). The sink receives every event of subsequent
// runs; if it also implements trace.Sampler and a sample interval is set, it
// receives interval breakdown samples too.
func (k *Kernel) SetTraceSink(s trace.Sink) { k.userSink = s }

// SetTraceRing installs a post-mortem ring keeping the last n protocol
// events; the ring's contents are attached to ProcPanicError/DeadlockError
// so contained failures are self-diagnosing. n <= 0 removes the ring. The
// returned ring can also be inspected after a successful run.
func (k *Kernel) SetTraceRing(n int) *trace.Ring {
	if n <= 0 {
		k.ring = nil
		return nil
	}
	k.ring = trace.NewRing(n)
	return k.ring
}

// SetSampleInterval enables interval time-series sampling: every `cycles` of
// virtual time, sinks implementing trace.Sampler receive a snapshot of the
// per-processor breakdown categories. 0 disables sampling.
func (k *Kernel) SetSampleInterval(cycles uint64) { k.sampleEvery = cycles }

// AddRunSink installs an event sink for the current run only. It is meant
// to be called from a Platform's Attach (e.g. the SVM profiler's counting
// sink); run sinks are discarded when the next run starts.
func (k *Kernel) AddRunSink(s trace.Sink) {
	if s != nil {
		k.runSinks = append(k.runSinks, s)
	}
}

// Tracing reports whether any event sink is active for the current run.
func (k *Kernel) Tracing() bool { return k.tr != nil }

// Emit records one protocol event. With no sink installed this is a single
// branch and allocates nothing, so platforms call it unconditionally from
// event sites.
func (k *Kernel) Emit(kind trace.Kind, proc int, now, arg, cost uint64) {
	if k.tr == nil {
		return
	}
	k.tr.Emit(trace.Event{Time: now, Cost: cost, Arg: arg, Proc: int32(proc), Kind: kind})
}

// sample delivers one breakdown snapshot and advances the sample clock past
// now.
func (k *Kernel) sample(now uint64) {
	k.sampler.Sample(now, k.run.Procs)
	k.lastSample = now
	for k.nextSample <= now {
		k.nextSample += k.sampleEvery
	}
}

// recentEvents snapshots the post-mortem ring for error rendering.
func (k *Kernel) recentEvents() []trace.Event {
	if k.ring == nil {
		return nil
	}
	return k.ring.Snapshot()
}

// NumProcs returns the number of simulated processors.
func (k *Kernel) NumProcs() int { return k.cfg.NumProcs }

// Config returns the run configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Counters returns processor p's event counters for platform updates.
func (k *Kernel) Counters(p int) *stats.Counters { return &k.run.Procs[p].Counters }

// LocksHeld returns how many locks processor p currently holds.
func (k *Kernel) LocksHeld(p int) int { return k.locksHeld[p] }

// ChargeHandler charges protocol handler work performed on behalf of others
// to processor node (e.g. a home node applying a diff or serving a page).
// The debt is folded into node's clock and Handler time the next time it
// runs, modelling interrupt-style message handling.
func (k *Kernel) ChargeHandler(node int, cycles uint64) {
	if node < 0 || node >= k.cfg.NumProcs {
		return
	}
	k.pendingHandler[node] += cycles
}

// Run executes body once per simulated processor and returns the collected
// statistics. name labels the resulting stats.Run. It is a thin wrapper
// around RunErr that panics on simulation failure, preserving the historical
// crash-on-misbehavior contract for tests and examples.
func (k *Kernel) Run(name string, body func(p *Proc)) *stats.Run {
	run, err := k.RunErr(name, body)
	if err != nil {
		panic(err)
	}
	return run
}

// RunErr executes body once per simulated processor and returns the
// collected statistics. A panic in any processor body is recovered and
// returned as a *ProcPanicError; a synchronization deadlock (no runnable
// processor before every body returned) is returned as a *DeadlockError
// carrying the kernel state dump; an invalid configuration is returned as a
// *ConfigError before anything runs. In both failure cases every remaining
// processor continuation is unwound before RunErr returns, so a failed
// simulation leaks nothing and the kernel can be reused.
//
// The returned *stats.Run is owned by the kernel and reused by its next
// run: callers that need results from two runs of the same kernel must copy
// what they retain before calling RunErr again. (The harness creates one
// kernel per execution, so memoized figure results are unaffected.)
func (k *Kernel) RunErr(name string, body func(p *Proc)) (*stats.Run, error) {
	if k.running {
		return nil, fmt.Errorf("sim: kernel already running")
	}
	if err := k.cfg.validate(); err != nil {
		return nil, err
	}
	k.running = true
	defer func() { k.running = false }()

	np := k.cfg.NumProcs
	// Reuse the previous run's result object and the kernel's scheduling
	// state in place: a kernel that is run repeatedly (the micro-benchmarks,
	// parameter sweeps over one platform instance) allocates nothing per run.
	if k.run != nil && cap(k.run.Procs) >= np {
		k.run.Reset(name, np)
	} else {
		k.run = stats.NewRun(name, np)
	}
	k.runSinks = k.runSinks[:0]
	if k.ring != nil {
		k.ring.Reset()
	}
	k.plat.Attach(k) // may install per-run sinks via AddRunSink
	if k.userSink == nil && k.ring == nil && len(k.runSinks) == 0 {
		k.tr = nil
	} else {
		k.tr = trace.Tee(append([]trace.Sink{k.userSink, ringSink(k.ring)}, k.runSinks...)...)
	}
	k.sampler = nil
	if k.sampleEvery > 0 && k.tr != nil {
		if sp, ok := k.tr.(trace.Sampler); ok {
			k.sampler = sp
			k.nextSample = k.sampleEvery
			k.lastSample = 0
		}
	}
	for i := range k.pendingHandler {
		k.pendingHandler[i] = 0
		k.locksHeld[i] = 0
	}
	clear(k.locks)
	k.bar.count = 0
	k.bar.epoch = 0
	k.bar.waiting = k.bar.waiting[:0]
	for i := range k.bar.arrivals {
		k.bar.arrivals[i] = 0
		k.bar.starts[i] = 0
	}
	k.lastPickClock = 0
	k.picks = 0
	k.nextCheck = 1024

	if cap(k.procs) >= np {
		k.procs = k.procs[:np]
	} else {
		k.procs = make([]Proc, np)
	}
	for i := range k.procs {
		k.procs[i] = Proc{id: i, k: k, stp: &k.run.Procs[i]}
	}
	k.inline = np == 1

	var runErr error
	if k.inline {
		runErr = k.runInline(body)
	} else {
		runErr = k.eventLoop(body)
	}
	if runErr != nil {
		return nil, runErr
	}

	var end uint64
	for i := range k.procs {
		p := &k.procs[i]
		k.applyDebt(p)
		if p.clock > end {
			end = p.clock
		}
	}
	k.run.EndTime = end
	if k.cfg.Check {
		if err := k.checkFinal(); err != nil {
			return nil, err
		}
	}
	if k.sampler != nil && end > k.lastSample {
		// Final sample so time series cover the whole run (skipped when a
		// regular sample already landed exactly at the end time).
		k.sampler.Sample(end, k.run.Procs)
	}
	return k.run, nil
}

// runInline executes a single-processor run directly on the kernel
// goroutine: with no other processor to interleave with, the horizon is
// unbounded, no yield point ever fires, and the body runs to completion in
// one slice with zero continuation switches and zero allocations. A park is
// necessarily a deadlock and surfaces as the inlineAbort sentinel; any other
// panic is the body's own.
func (k *Kernel) runInline(body func(p *Proc)) (err error) {
	p := &k.procs[0]
	defer func() {
		if r := recover(); r != nil {
			if ab, ok := r.(inlineAbort); ok {
				err = ab.err
				return
			}
			err = &ProcPanicError{Proc: 0, Value: r, Stack: string(debug.Stack()), Recent: k.recentEvents()}
		}
	}()
	// The run's single scheduling pick.
	if k.sampler != nil && p.clock >= k.nextSample {
		k.sample(p.clock)
	}
	if k.cfg.Check {
		if cerr := k.checkTick(p); cerr != nil {
			return cerr
		}
	}
	k.applyDebt(p)
	p.state = stRunning
	p.sliceStart = p.clock
	k.horizon = noHorizon
	body(p)
	p.state = stDone
	return nil
}

// eventLoop is the multi-processor scheduler: pop the ready processor with
// the smallest (clock, id) from the heap, resume it — either by draining its
// pending access batch in place on the kernel goroutine, or by switching
// into its continuation — and file it back according to how it yielded.
func (k *Kernel) eventLoop(body func(p *Proc)) error {
	for i := range k.procs {
		k.procs[i].start(body)
	}
	k.ready = k.ready[:0]
	for i := range k.procs {
		k.heapPush(&k.procs[i])
	}
	live := len(k.procs)
	for live > 0 {
		p := k.pickReady()
		if p == nil {
			err := &DeadlockError{Dump: k.stateDump(), Recent: k.recentEvents()}
			k.unwind()
			return err
		}
		// p's clock is the minimum over ready processors, i.e. the floor of
		// global virtual time: sample the breakdown when it crosses the
		// next interval boundary.
		if k.sampler != nil && p.clock >= k.nextSample {
			k.sample(p.clock)
		}
		if k.cfg.Check {
			if err := k.checkTick(p); err != nil {
				k.unwind()
				return err
			}
		}
		k.applyDebt(p)
		p.state = stRunning
		p.sliceStart = p.clock
		var op opKind
		if p.op == opBatch {
			op = k.runBatch(p)
		} else {
			op = p.resumeCoro()
		}
		switch op {
		case opYield, opBatch:
			p.state = stReady
			k.heapPush(p)
		case opPark:
			// state already stParked, set by the blocking path.
		case opDone:
			p.state = stDone
			live--
			if p.panicked != nil {
				err := &ProcPanicError{Proc: p.id, Value: p.panicked, Stack: p.stack, Recent: k.recentEvents()}
				k.unwind()
				return err
			}
		}
	}
	return nil
}

// runBatch advances p's pending access batch on the kernel goroutine. When
// the batch completes it switches into p's continuation so the body resumes
// in the same scheduling round, exactly as the old per-goroutine kernel
// continued a body after its range finished. A platform panic while draining
// (the batch runs platform code kernel-side) is attributed to p.
func (k *Kernel) runBatch(p *Proc) (op opKind) {
	defer func() {
		if r := recover(); r != nil {
			p.panicked = r
			p.stack = string(debug.Stack())
			op = opDone
		}
	}()
	if k.stepBatch(p) {
		return p.resumeCoro()
	}
	return opBatch
}

// stepBatch advances p's access batch until it completes (true) or p must
// yield (false, with p.op set to opBatch). It replays exactly the cost and
// yield structure of the scalar access path: fast accesses never yield, a
// protocol access waits at a syncPoint until p is at the virtual-time floor,
// and a checkpoint after each protocol access bounds the slice by Quantum.
func (k *Kernel) stepBatch(p *Proc) bool {
	b := &p.batch
	c := p.stp
	line := k.lineSize
	quantum := k.cfg.Quantum
	plat := k.plat
	for b.addr < b.end {
		if !b.pendingSlow {
			if k.ranger != nil {
				// Bulk fast path: the fast prefix of a batch has no yield
				// points, so the platform may process it in one call.
				n, stall := k.ranger.FastRange(p.id, p.clock, b.addr, b.end, b.write)
				if n > 0 {
					if b.write {
						c.Counters.Writes += uint64(n)
					} else {
						c.Counters.Reads += uint64(n)
					}
					p.clock += stall
					c.Cycles[stats.CacheStall] += stall
					b.addr += uint64(n) * line
					if b.addr >= b.end {
						break
					}
				}
				// The line at b.addr needs protocol processing.
				if b.write {
					c.Counters.Writes++
				} else {
					c.Counters.Reads++
				}
				b.pendingSlow = true
			} else {
				if b.write {
					c.Counters.Writes++
				} else {
					c.Counters.Reads++
				}
				if stall, ok := plat.FastAccess(p.id, p.clock, b.addr, b.write); ok {
					p.clock += stall
					c.Cycles[stats.CacheStall] += stall
					b.addr += line
					continue
				}
				b.pendingSlow = true
			}
		}
		// syncPoint: protocol events process in virtual-time order.
		if p.clock > k.horizon {
			p.op = opBatch
			return false
		}
		cost := plat.SlowAccess(p.id, p.clock, b.addr, b.write)
		if k.cfg.FreeCSFaults && k.locksHeld[p.id] > 0 {
			// Paper diagnostic: faults inside critical sections are free.
			cost = AccessCost{}
		}
		p.clock += cost.Total()
		c.Cycles[stats.CacheStall] += cost.CacheStall
		c.Cycles[stats.DataWait] += cost.DataWait
		c.Cycles[stats.Handler] += cost.Handler
		b.pendingSlow = false
		b.addr += line
		// checkpoint: quantum-bounded yield after protocol work.
		if p.clock > k.horizon && p.clock-p.sliceStart >= quantum {
			p.op = opBatch
			return false
		}
	}
	return true
}

// ringSink widens the concrete ring to a Sink, keeping the nil case a nil
// interface so Tee drops it (a nil *Ring in a Sink slot would not be nil).
func ringSink(r *trace.Ring) trace.Sink {
	if r == nil {
		return nil
	}
	return r
}

// unwind stops every processor continuation after a failed run. Stopping a
// continuation makes its pending (or next) yield return false, which raises
// the abortSim sentinel inside the body; the continuation wrapper recovers
// it silently, so no coroutine outlives the run. Continuations that never
// started simply never run their body.
func (k *Kernel) unwind() {
	for i := range k.procs {
		p := &k.procs[i]
		if p.stop != nil {
			p.stop()
		}
		p.state = stDone
	}
}

// procLess orders the ready heap by (clock, id): the processor at the floor
// of global virtual time runs next, ties broken by processor number.
func procLess(a, b *Proc) bool {
	return a.clock < b.clock || (a.clock == b.clock && a.id < b.id)
}

// heapPush files p into the ready heap.
func (k *Kernel) heapPush(p *Proc) {
	k.ready = append(k.ready, p)
	i := len(k.ready) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !procLess(k.ready[i], k.ready[parent]) {
			break
		}
		k.ready[i], k.ready[parent] = k.ready[parent], k.ready[i]
		i = parent
	}
}

// pickReady pops the ready processor with the smallest (clock, id) and
// records the new heap minimum as the yield horizon — the clock the running
// processor must not outrun past its quantum.
func (k *Kernel) pickReady() *Proc {
	n := len(k.ready)
	if n == 0 {
		k.horizon = noHorizon
		return nil
	}
	best := k.ready[0]
	last := k.ready[n-1]
	k.ready = k.ready[:n-1]
	n--
	if n == 0 {
		k.horizon = noHorizon
		return best
	}
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && procLess(k.ready[r], k.ready[c]) {
			c = r
		}
		if !procLess(k.ready[c], last) {
			break
		}
		k.ready[i] = k.ready[c]
		i = c
	}
	k.ready[i] = last
	k.horizon = k.ready[0].clock
	return best
}

// noteReady marks a parked processor runnable and lowers the current yield
// horizon so the running processor yields to it at its next checkpoint.
// Without this, a processor that wakes others (last barrier arriver, lock
// releaser) could keep running unboundedly in host order while the woken
// processors' virtual clocks fall behind.
func (k *Kernel) noteReady(p *Proc) {
	p.state = stReady
	k.heapPush(p)
	if p.clock < k.horizon {
		k.horizon = p.clock
	}
}

func (k *Kernel) applyDebt(p *Proc) {
	if d := k.pendingHandler[p.id]; d > 0 {
		p.clock += d
		k.run.Procs[p.id].Cycles[stats.Handler] += d
		k.pendingHandler[p.id] = 0
	}
}

func (k *Kernel) stateDump() string {
	var b strings.Builder
	for i := range k.procs {
		p := &k.procs[i]
		fmt.Fprintf(&b, "proc %d: state=%d clock=%d\n", p.id, p.state, p.clock)
	}
	fmt.Fprintf(&b, "barrier: %d arrived\n", k.bar.count)
	// Sorted lock order: map iteration would make the dump (and so the
	// DeadlockError text) differ between otherwise identical runs.
	ids := make([]int, 0, len(k.locks))
	for id := range k.locks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		l := k.locks[id]
		if l.held || len(l.queue) > 0 {
			fmt.Fprintf(&b, "lock %d: held=%v holder=%d waiters=%d\n", id, l.held, l.holder, len(l.queue))
		}
	}
	return b.String()
}

// lockFor returns (creating if needed) the state for lock id.
func (k *Kernel) lockFor(id int) *lockState {
	l, ok := k.locks[id]
	if !ok {
		l = &lockState{holder: -1, prevHolder: -1}
		k.locks[id] = l
	}
	return l
}
