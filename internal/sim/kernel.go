package sim

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strings"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Config controls a simulated run.
type Config struct {
	// NumProcs is the number of simulated processors.
	NumProcs int
	// Quantum bounds how far a processor's clock may run ahead of the
	// next-ready processor before it must yield at a checkpoint. Smaller
	// quanta give tighter event ordering at higher handoff cost.
	// Defaults to 2000 cycles.
	Quantum uint64
	// BarrierManager is the processor charged with centralized barrier
	// protocol work (the paper's LU analysis hinges on processor 10 being
	// the manager of the most important barrier). AutoBarrierManager (any
	// negative value) selects the paper's placement — NumProcs-6 when
	// NumProcs >= 8 (so 10 for 16 processors), else 0. An explicit value,
	// including 0, pins the manager to that processor.
	BarrierManager int
	// FreeCSFaults, when true, makes data-access costs inside critical
	// sections free — the paper's diagnostic for critical-section
	// dilation ("we pretended in the simulator that the page faults
	// within the critical sections are free").
	FreeCSFaults bool
	// Check enables runtime invariant checking: the scheduler verifies
	// virtual-time monotonicity at every pick, the platform's protocol
	// invariants are swept at exponentially spaced intervals and at the
	// end of the run (see InvariantChecked), and the final statistics must
	// satisfy the accounting identity that each processor's breakdown
	// categories sum to its final clock. A violation is returned from
	// RunErr as a contained *InvariantError.
	Check bool
}

// AutoBarrierManager selects the paper's default barrier-manager placement.
// It is distinct from 0 so that processor 0 is explicitly selectable (an
// earlier version of Config treated 0 as "unset" and silently overrode it).
const AutoBarrierManager = -1

func (c Config) withDefaults() Config {
	if c.NumProcs <= 0 {
		c.NumProcs = 1
	}
	if c.Quantum == 0 {
		c.Quantum = 2000
	}
	if c.BarrierManager < 0 {
		if c.NumProcs >= 8 {
			c.BarrierManager = c.NumProcs - 6
		} else {
			c.BarrierManager = 0
		}
	}
	if c.BarrierManager >= c.NumProcs {
		c.BarrierManager = c.NumProcs - 1
	}
	return c
}

type procState int

const (
	stReady procState = iota
	stRunning
	stParked
	stDone
)

type lockState struct {
	held       bool
	holder     int
	prevHolder int
	freeAt     uint64 // earliest grantable time once released
	queue      []*lockWaiter
}

type lockWaiter struct {
	p        *Proc
	reqStart uint64 // clock when Lock() was called
	reqReady uint64 // reqStart + request cost
}

type barrierState struct {
	arrivals []uint64 // completed arrival time per proc; 0 = not arrived
	starts   []uint64 // clock at Barrier() entry per proc, for trace episodes
	waiting  []*Proc
	count    int
	epoch    uint64
}

// Kernel is the deterministic cooperative scheduler binding application
// processes to a Platform.
type Kernel struct {
	cfg  Config
	plat Platform
	run  *stats.Run

	procs   []*Proc
	yield   chan *Proc
	horizon uint64 // clock of the next-min ready proc while one runs

	// lineSize caches the platform's range-access granularity so rangeAccess
	// does not repeat an interface assertion per call.
	lineSize uint64

	pendingHandler []uint64 // handler debt charged by remote protocol work
	locksHeld      []int    // nesting depth of locks held per proc
	locks          map[int]*lockState
	bar            barrierState

	running  bool
	aborting bool // set while unwinding parked goroutines after a failure

	// Invariant checking state (Config.Check).
	lastPickClock uint64 // virtual-time floor at the previous pick
	picks         uint64
	nextCheck     uint64 // pick count of the next platform sweep

	// Tracing. tr is the active sink for the current run (nil when tracing
	// is off — the fast path every event site branches on); it is rebuilt
	// each run as the Tee of the persistent user sink, the post-mortem
	// ring, and any sinks the platform installed during Attach.
	tr          trace.Sink
	userSink    trace.Sink
	ring        *trace.Ring
	runSinks    []trace.Sink
	sampler     trace.Sampler
	sampleEvery uint64
	nextSample  uint64
	lastSample  uint64
}

// New creates a kernel for the given platform and configuration.
func New(plat Platform, cfg Config) *Kernel {
	cfg = cfg.withDefaults()
	k := &Kernel{
		cfg:            cfg,
		plat:           plat,
		yield:          make(chan *Proc),
		pendingHandler: make([]uint64, cfg.NumProcs),
		locksHeld:      make([]int, cfg.NumProcs),
		locks:          map[int]*lockState{},
	}
	k.lineSize = 32
	if la, ok := plat.(interface{ LineSize() int }); ok {
		k.lineSize = uint64(la.LineSize())
	}
	k.bar.arrivals = make([]uint64, cfg.NumProcs)
	k.bar.starts = make([]uint64, cfg.NumProcs)
	return k
}

// SetTraceSink installs a protocol event sink that persists across runs
// (nil turns user tracing off). The sink receives every event of subsequent
// runs; if it also implements trace.Sampler and a sample interval is set, it
// receives interval breakdown samples too.
func (k *Kernel) SetTraceSink(s trace.Sink) { k.userSink = s }

// SetTraceRing installs a post-mortem ring keeping the last n protocol
// events; the ring's contents are attached to ProcPanicError/DeadlockError
// so contained failures are self-diagnosing. n <= 0 removes the ring. The
// returned ring can also be inspected after a successful run.
func (k *Kernel) SetTraceRing(n int) *trace.Ring {
	if n <= 0 {
		k.ring = nil
		return nil
	}
	k.ring = trace.NewRing(n)
	return k.ring
}

// SetSampleInterval enables interval time-series sampling: every `cycles` of
// virtual time, sinks implementing trace.Sampler receive a snapshot of the
// per-processor breakdown categories. 0 disables sampling.
func (k *Kernel) SetSampleInterval(cycles uint64) { k.sampleEvery = cycles }

// AddRunSink installs an event sink for the current run only. It is meant
// to be called from a Platform's Attach (e.g. the SVM profiler's counting
// sink); run sinks are discarded when the next run starts.
func (k *Kernel) AddRunSink(s trace.Sink) {
	if s != nil {
		k.runSinks = append(k.runSinks, s)
	}
}

// Tracing reports whether any event sink is active for the current run.
func (k *Kernel) Tracing() bool { return k.tr != nil }

// Emit records one protocol event. With no sink installed this is a single
// branch and allocates nothing, so platforms call it unconditionally from
// event sites.
func (k *Kernel) Emit(kind trace.Kind, proc int, now, arg, cost uint64) {
	if k.tr == nil {
		return
	}
	k.tr.Emit(trace.Event{Time: now, Cost: cost, Arg: arg, Proc: int32(proc), Kind: kind})
}

// sample delivers one breakdown snapshot and advances the sample clock past
// now.
func (k *Kernel) sample(now uint64) {
	k.sampler.Sample(now, k.run.Procs)
	k.lastSample = now
	for k.nextSample <= now {
		k.nextSample += k.sampleEvery
	}
}

// recentEvents snapshots the post-mortem ring for error rendering.
func (k *Kernel) recentEvents() []trace.Event {
	if k.ring == nil {
		return nil
	}
	return k.ring.Snapshot()
}

// NumProcs returns the number of simulated processors.
func (k *Kernel) NumProcs() int { return k.cfg.NumProcs }

// Config returns the run configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Counters returns processor p's event counters for platform updates.
func (k *Kernel) Counters(p int) *stats.Counters { return &k.run.Procs[p].Counters }

// LocksHeld returns how many locks processor p currently holds.
func (k *Kernel) LocksHeld(p int) int { return k.locksHeld[p] }

// ChargeHandler charges protocol handler work performed on behalf of others
// to processor node (e.g. a home node applying a diff or serving a page).
// The debt is folded into node's clock and Handler time the next time it
// runs, modelling interrupt-style message handling.
func (k *Kernel) ChargeHandler(node int, cycles uint64) {
	if node < 0 || node >= k.cfg.NumProcs {
		return
	}
	k.pendingHandler[node] += cycles
}

// Run executes body once per simulated processor and returns the collected
// statistics. name labels the resulting stats.Run. It is a thin wrapper
// around RunErr that panics on simulation failure, preserving the historical
// crash-on-misbehavior contract for tests and examples.
func (k *Kernel) Run(name string, body func(p *Proc)) *stats.Run {
	run, err := k.RunErr(name, body)
	if err != nil {
		panic(err)
	}
	return run
}

// RunErr executes body once per simulated processor and returns the
// collected statistics. A panic in any processor body is recovered and
// returned as a *ProcPanicError; a synchronization deadlock (no runnable
// processor before every body returned) is returned as a *DeadlockError
// carrying the kernel state dump. In both cases every remaining processor
// goroutine is unwound before RunErr returns, so a failed simulation leaks
// nothing and the kernel can be reused.
func (k *Kernel) RunErr(name string, body func(p *Proc)) (*stats.Run, error) {
	if k.running {
		return nil, fmt.Errorf("sim: kernel already running")
	}
	k.running = true
	k.aborting = false
	defer func() { k.running = false }()

	k.run = stats.NewRun(name, k.cfg.NumProcs)
	k.runSinks = k.runSinks[:0]
	if k.ring != nil {
		k.ring.Reset()
	}
	k.plat.Attach(k) // may install per-run sinks via AddRunSink
	k.tr = trace.Tee(append([]trace.Sink{k.userSink, ringSink(k.ring)}, k.runSinks...)...)
	k.sampler = nil
	if k.sampleEvery > 0 && k.tr != nil {
		if sp, ok := k.tr.(trace.Sampler); ok {
			k.sampler = sp
			k.nextSample = k.sampleEvery
			k.lastSample = 0
		}
	}
	for i := range k.pendingHandler {
		k.pendingHandler[i] = 0
		k.locksHeld[i] = 0
	}
	k.locks = map[int]*lockState{}
	k.bar = barrierState{
		arrivals: make([]uint64, k.cfg.NumProcs),
		starts:   make([]uint64, k.cfg.NumProcs),
	}
	k.lastPickClock = 0
	k.picks = 0
	k.nextCheck = 1024

	k.procs = make([]*Proc, k.cfg.NumProcs)
	for i := 0; i < k.cfg.NumProcs; i++ {
		p := &Proc{id: i, k: k, resume: make(chan struct{})}
		k.procs[i] = p
		go func(p *Proc) {
			defer func() {
				if r := recover(); r != nil {
					if _, abort := r.(abortSim); !abort {
						p.panicked = r
						p.stack = string(debug.Stack())
					}
				}
				p.op = opDone
				k.yield <- p
			}()
			<-p.resume
			if k.aborting {
				return
			}
			body(p)
		}(p)
	}

	live := k.cfg.NumProcs
	for live > 0 {
		p := k.pickReady()
		if p == nil {
			err := &DeadlockError{Dump: k.stateDump(), Recent: k.recentEvents()}
			k.unwind()
			return nil, err
		}
		// p's clock is the minimum over ready processors, i.e. the floor of
		// global virtual time: sample the breakdown when it crosses the
		// next interval boundary.
		if k.sampler != nil && p.clock >= k.nextSample {
			k.sample(p.clock)
		}
		if k.cfg.Check {
			if err := k.checkTick(p); err != nil {
				k.unwind()
				return nil, err
			}
		}
		k.applyDebt(p)
		p.state = stRunning
		p.sliceStart = p.clock
		p.resume <- struct{}{}
		q := <-k.yield
		switch q.op {
		case opYield:
			q.state = stReady
		case opPark:
			// state already stParked, set by the blocking path.
		case opDone:
			q.state = stDone
			live--
			if q.panicked != nil {
				err := &ProcPanicError{Proc: q.id, Value: q.panicked, Stack: q.stack, Recent: k.recentEvents()}
				k.unwind()
				return nil, err
			}
		}
	}

	var end uint64
	for _, p := range k.procs {
		k.applyDebt(p)
		if p.clock > end {
			end = p.clock
		}
	}
	k.run.EndTime = end
	if k.cfg.Check {
		if err := k.checkFinal(); err != nil {
			return nil, err
		}
	}
	if k.sampler != nil && end > k.lastSample {
		// Final sample so time series cover the whole run (skipped when a
		// regular sample already landed exactly at the end time).
		k.sampler.Sample(end, k.run.Procs)
	}
	return k.run, nil
}

// ringSink widens the concrete ring to a Sink, keeping the nil case a nil
// interface so Tee drops it (a nil *Ring in a Sink slot would not be nil).
func ringSink(r *trace.Ring) trace.Sink {
	if r == nil {
		return nil
	}
	return r
}

// unwind releases every not-yet-done processor goroutine after a failed run.
// Each one is blocked receiving on its resume channel — parked on a lock or
// barrier, ready after a yield, or never started. Resuming it with the
// aborting flag set makes it panic with the abortSim sentinel (recovered
// silently by its goroutine wrapper) or skip its body, then report opDone,
// so no goroutine outlives the run.
func (k *Kernel) unwind() {
	k.aborting = true
	for _, p := range k.procs {
		if p.state == stDone {
			continue
		}
		p.resume <- struct{}{}
		<-k.yield
		p.state = stDone
	}
}

// pickReady returns the ready processor with the smallest clock (ties by id)
// and records the runner-up clock as the yield horizon.
func (k *Kernel) pickReady() *Proc {
	var best *Proc
	second := ^uint64(0)
	for _, p := range k.procs {
		if p.state != stReady {
			continue
		}
		if best == nil || p.clock < best.clock {
			if best != nil && best.clock < second {
				second = best.clock
			}
			best = p
		} else if p.clock < second {
			second = p.clock
		}
	}
	k.horizon = second
	return best
}

// noteReady marks p runnable and lowers the current yield horizon so the
// running processor yields to p at its next checkpoint. Without this, a
// processor that wakes others (last barrier arriver, lock releaser) could
// keep running unboundedly in host order while the woken processors'
// virtual clocks fall behind.
func (k *Kernel) noteReady(p *Proc) {
	p.state = stReady
	if p.clock < k.horizon {
		k.horizon = p.clock
	}
}

func (k *Kernel) applyDebt(p *Proc) {
	if d := k.pendingHandler[p.id]; d > 0 {
		p.clock += d
		k.run.Procs[p.id].Cycles[stats.Handler] += d
		k.pendingHandler[p.id] = 0
	}
}

func (k *Kernel) stateDump() string {
	var b strings.Builder
	for _, p := range k.procs {
		fmt.Fprintf(&b, "proc %d: state=%d clock=%d\n", p.id, p.state, p.clock)
	}
	fmt.Fprintf(&b, "barrier: %d arrived\n", k.bar.count)
	// Sorted lock order: map iteration would make the dump (and so the
	// DeadlockError text) differ between otherwise identical runs.
	ids := make([]int, 0, len(k.locks))
	for id := range k.locks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		l := k.locks[id]
		if l.held || len(l.queue) > 0 {
			fmt.Fprintf(&b, "lock %d: held=%v holder=%d waiters=%d\n", id, l.held, l.holder, len(l.queue))
		}
	}
	return b.String()
}

// lockFor returns (creating if needed) the state for lock id.
func (k *Kernel) lockFor(id int) *lockState {
	l, ok := k.locks[id]
	if !ok {
		l = &lockState{holder: -1, prevHolder: -1}
		k.locks[id] = l
	}
	return l
}
