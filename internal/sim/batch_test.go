package sim

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// slowLinePlatform makes every access take the slow path with a fixed
// DataWait cost, so ReadRange batches hit syncPoint yields and are drained
// kernel-side across scheduling rounds. When panicAt is non-zero, the
// SlowAccess for that exact address panics — modelling protocol corruption
// detected mid-batch, on the kernel goroutine rather than inside the
// processor's continuation.
type slowLinePlatform struct {
	NopPlatform
	slowCost uint64
	panicAt  uint64
}

func (s *slowLinePlatform) FastAccess(p int, now uint64, addr uint64, write bool) (uint64, bool) {
	return 0, false
}

func (s *slowLinePlatform) SlowAccess(p int, now uint64, addr uint64, write bool) AccessCost {
	if s.panicAt != 0 && addr == s.panicAt {
		panic(fmt.Sprintf("protocol corruption at %#x", addr))
	}
	return AccessCost{DataWait: s.slowCost}
}

// TestPanicInsideKernelDrainedBatch: a panic raised while the kernel drains
// a processor's access batch (the processor's continuation is suspended
// inside ReadRange at that moment) must be attributed to that processor,
// returned as the same structured *ProcPanicError as a panic in the body,
// and must unwind every suspended continuation.
func TestPanicInsideKernelDrainedBatch(t *testing.T) {
	before := runtime.NumGoroutine()
	pl := &slowLinePlatform{slowCost: 100, panicAt: 8 * 32}
	k := New(pl, Config{NumProcs: 2})
	run, err := k.RunErr("batch-boom", func(p *Proc) {
		if p.ID() == 0 {
			// 16 slow lines: the batch yields at the first syncPoint and
			// is then drained kernel-side, panicking at line 8.
			p.ReadRange(0, 16*32)
		} else {
			p.Compute(1000)
		}
		p.Barrier()
	})
	if run != nil {
		t.Error("failed run returned non-nil stats")
	}
	var pe *ProcPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ProcPanicError", err)
	}
	if pe.Proc != 0 {
		t.Errorf("panic attributed to proc %d, want 0 (the batch's owner)", pe.Proc)
	}
	if !strings.Contains(err.Error(), "protocol corruption at 0x100") {
		t.Errorf("error message lost the panic value: %q", err)
	}
	if pe.Stack == "" {
		t.Error("no stack captured for a kernel-side batch panic")
	}
	if n := settleGoroutines(t, before); n > before {
		t.Errorf("goroutines grew from %d to %d: suspended batch leaked", before, n)
	}
}

// TestPanicElsewhereUnwindsSuspendedBatch: when another processor panics
// while one is suspended mid-ReadRange, the unwind must run the suspended
// continuation to completion (through the batch loop) without leaking it,
// and the kernel must stay reusable with no residual batch state.
func TestPanicElsewhereUnwindsSuspendedBatch(t *testing.T) {
	before := runtime.NumGoroutine()
	pl := &slowLinePlatform{slowCost: 100}
	k := New(pl, Config{NumProcs: 3})
	body := func(p *Proc) {
		switch p.ID() {
		case 0:
			p.ReadRange(0, 1024*32) // long batch, yields mid-flight
		case 1:
			p.Compute(10)
			panic("die")
		}
		p.Barrier()
	}
	_, err := k.RunErr("boom-next-door", body)
	var pe *ProcPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ProcPanicError", err)
	}
	if pe.Proc != 1 {
		t.Errorf("panic attributed to proc %d, want 1", pe.Proc)
	}
	if n := settleGoroutines(t, before); n > before {
		t.Errorf("goroutines grew from %d to %d after unwind", before, n)
	}

	// No live state may survive: the same kernel must run cleanly and
	// deterministically afterwards.
	clean := func(p *Proc) { p.ReadRange(0, 8*32); p.Barrier() }
	r1, err := k.RunErr("after-1", clean)
	if err != nil {
		t.Fatalf("kernel not reusable after mid-batch unwind: %v", err)
	}
	end1 := r1.EndTime
	r2, err := k.RunErr("after-2", clean)
	if err != nil {
		t.Fatalf("second clean run: %v", err)
	}
	if end1 != r2.EndTime {
		t.Errorf("post-unwind runs differ: %d vs %d cycles", end1, r2.EndTime)
	}
}

// TestDeadlockAfterBatchDump: a deadlock in a run that used mid-yielding
// batches must produce the same structured *DeadlockError and state dump as
// before the event-loop rewrite, and leak nothing.
func TestDeadlockAfterBatchDump(t *testing.T) {
	before := runtime.NumGoroutine()
	pl := &slowLinePlatform{slowCost: 100}
	k := New(pl, Config{NumProcs: 2})
	_, err := k.RunErr("batch-dead", func(p *Proc) {
		if p.ID() == 0 {
			p.Lock(5)
			p.Barrier() // waits for proc 1, which waits on the lock
			p.Unlock(5)
		} else {
			p.ReadRange(0, 64*32)
			p.Lock(5)
			p.Unlock(5)
			p.Barrier()
		}
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if !strings.Contains(de.Dump, "lock 5") {
		t.Errorf("state dump missing the contended lock:\n%s", de.Dump)
	}
	if !strings.Contains(de.Dump, "barrier: 1 arrived") {
		t.Errorf("state dump missing barrier state:\n%s", de.Dump)
	}
	if n := settleGoroutines(t, before); n > before {
		t.Errorf("goroutines grew from %d to %d after deadlock", before, n)
	}
}

// TestBatchResultsMatchPerLineAccesses: a ReadRange batch must charge
// exactly what the same lines issued as individual Reads charge, whatever
// mix of fast and slow lines it covers — the batch is a scheduling
// optimization, not a cost model change.
func TestBatchResultsMatchPerLineAccesses(t *testing.T) {
	mixed := &stripePlatform{slowEvery: 4, slowCost: 70}
	runIt := func(batch bool) cmpResult {
		k := New(mixed, Config{NumProcs: 2})
		r := k.Run("cmp", func(p *Proc) {
			if batch {
				p.ReadRange(0, 128*32)
			} else {
				for off := uint64(0); off < 128*32; off += 32 {
					p.Read(off)
				}
			}
			p.Barrier()
		})
		return cmpResult{end: r.EndTime, p0: r.Procs[0].Total(), reads: r.Procs[0].Counters.Reads}
	}
	a, b := runIt(true), runIt(false)
	if a != b {
		t.Errorf("batch run %+v differs from per-line run %+v", a, b)
	}
}

type cmpResult struct {
	end, p0, reads uint64
}

// stripePlatform: every slowEvery-th line is slow, the rest are free hits.
type stripePlatform struct {
	NopPlatform
	slowEvery uint64
	slowCost  uint64
}

func (s *stripePlatform) FastAccess(p int, now uint64, addr uint64, write bool) (uint64, bool) {
	if (addr/32)%s.slowEvery == 0 {
		return 0, false
	}
	return 0, true
}

func (s *stripePlatform) SlowAccess(p int, now uint64, addr uint64, write bool) AccessCost {
	return AccessCost{DataWait: s.slowCost}
}
