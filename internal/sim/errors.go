package sim

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// ProcPanicError reports that a simulated processor's body panicked. The
// kernel recovers the panic, unwinds every other processor goroutine, and
// returns this error from RunErr instead of crashing the host process — one
// misbehaving application version must not take down a whole figure run.
type ProcPanicError struct {
	// Proc is the simulated processor whose body panicked.
	Proc int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the recovery point.
	Stack string
	// Recent holds the last protocol events before the failure, when the
	// kernel had a trace ring installed (SetTraceRing); rendered in Error
	// so a contained failure is self-diagnosing.
	Recent []trace.Event
}

func (e *ProcPanicError) Error() string {
	return fmt.Sprintf("sim: processor %d panicked: %v", e.Proc, e.Value) + formatRecent(e.Recent)
}

// DeadlockError reports that no processor was runnable before every body
// returned: all live processors are parked on locks or the barrier with
// nobody left to wake them.
type DeadlockError struct {
	// Dump is the kernel state at the point of deadlock: per-processor
	// state and clock, barrier arrival count, and held/contended locks.
	Dump string
	// Recent holds the last protocol events before the deadlock, when the
	// kernel had a trace ring installed (SetTraceRing).
	Recent []trace.Event
}

func (e *DeadlockError) Error() string {
	return "sim: deadlock — no runnable processor\n" + strings.TrimSuffix(e.Dump, "\n") + formatRecent(e.Recent)
}

// formatRecent renders a post-mortem trace dump section, empty when no ring
// was installed.
func formatRecent(evs []trace.Event) string {
	if len(evs) == 0 {
		return ""
	}
	return fmt.Sprintf("\nlast %d protocol events:\n%s", len(evs),
		strings.TrimSuffix(trace.FormatEvents(evs), "\n"))
}

// ConfigError reports a Config that RunErr refuses to run, such as an
// explicit BarrierManager naming a processor that does not exist. Earlier
// kernels silently clamped such values into range, which quietly moved the
// paper's barrier-manager placement analysis onto a different processor.
type ConfigError struct {
	// Field is the Config field that is invalid.
	Field string
	// Detail describes why the value is rejected.
	Detail string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("sim: invalid config: %s: %s", e.Field, e.Detail)
}

// abortSim is the sentinel panic used to unwind processor continuations
// when a run aborts; the continuation wrapper recovers it silently.
type abortSim struct{}

// inlineAbort carries a structured simulation error (today only a
// *DeadlockError from parking the only processor) out of a single-processor
// body running inline on the kernel goroutine.
type inlineAbort struct{ err error }
