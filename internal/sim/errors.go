package sim

import "fmt"

// ProcPanicError reports that a simulated processor's body panicked. The
// kernel recovers the panic, unwinds every other processor goroutine, and
// returns this error from RunErr instead of crashing the host process — one
// misbehaving application version must not take down a whole figure run.
type ProcPanicError struct {
	// Proc is the simulated processor whose body panicked.
	Proc int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the recovery point.
	Stack string
}

func (e *ProcPanicError) Error() string {
	return fmt.Sprintf("sim: processor %d panicked: %v", e.Proc, e.Value)
}

// DeadlockError reports that no processor was runnable before every body
// returned: all live processors are parked on locks or the barrier with
// nobody left to wake them.
type DeadlockError struct {
	// Dump is the kernel state at the point of deadlock: per-processor
	// state and clock, barrier arrival count, and held/contended locks.
	Dump string
}

func (e *DeadlockError) Error() string {
	return "sim: deadlock — no runnable processor\n" + e.Dump
}

// abortSim is the sentinel panic used to unwind parked processor goroutines
// when a run aborts; the goroutine wrapper recovers it silently.
type abortSim struct{}
