package sim

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// settleGoroutines waits for the goroutine count to drop back to at most
// want, giving exiting goroutines time to be reaped.
func settleGoroutines(t *testing.T, want int) int {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want || time.Now().After(deadline) {
			return n
		}
		time.Sleep(time.Millisecond)
	}
}

func TestProcPanicReturnsError(t *testing.T) {
	k := New(&NopPlatform{}, Config{NumProcs: 8})
	run, err := k.RunErr("boom", func(p *Proc) {
		p.Compute(uint64(10 * (p.ID() + 1)))
		p.Barrier()
		if p.ID() == 3 {
			panic("deliberate failure")
		}
		p.Barrier() // everyone else parks here, waiting for proc 3
	})
	if run != nil {
		t.Error("failed run returned non-nil stats")
	}
	var pe *ProcPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ProcPanicError", err)
	}
	if pe.Proc != 3 {
		t.Errorf("panicking proc = %d, want 3", pe.Proc)
	}
	if !strings.Contains(err.Error(), "processor 3") || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("error message missing proc id or panic value: %q", err.Error())
	}
	if pe.Stack == "" {
		t.Error("no stack captured")
	}
}

func TestProcPanicLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		k := New(&NopPlatform{}, Config{NumProcs: 8})
		_, err := k.RunErr("boom", func(p *Proc) {
			p.Lock(1)
			p.Compute(10)
			p.Unlock(1)
			if p.ID() == 0 {
				panic("die")
			}
			p.Barrier()
		})
		if err == nil {
			t.Fatal("expected error")
		}
	}
	if n := settleGoroutines(t, before); n > before {
		t.Errorf("goroutines grew from %d to %d: parked procs leaked", before, n)
	}
}

func TestDeadlockReturnsErrorWithDump(t *testing.T) {
	before := runtime.NumGoroutine()
	k := New(&NopPlatform{}, Config{NumProcs: 4})
	_, err := k.RunErr("dead", func(p *Proc) {
		if p.ID() == 0 {
			p.Lock(9)
			p.Barrier() // waits for the others, who wait on the lock
			p.Unlock(9)
		} else {
			p.Lock(9)
			p.Unlock(9)
			p.Barrier()
		}
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if !strings.Contains(de.Dump, "lock 9") || !strings.Contains(de.Dump, "waiters=3") {
		t.Errorf("state dump missing the contended lock:\n%s", de.Dump)
	}
	if !strings.Contains(de.Dump, "barrier: 1 arrived") {
		t.Errorf("state dump missing barrier state:\n%s", de.Dump)
	}
	if n := settleGoroutines(t, before); n > before {
		t.Errorf("goroutines grew from %d to %d after deadlock", before, n)
	}
}

func TestRunPanicsOnFailure(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected Run to re-panic on processor failure")
		}
		if _, ok := r.(*ProcPanicError); !ok {
			t.Errorf("recovered %T, want *ProcPanicError", r)
		}
	}()
	k := New(&NopPlatform{}, Config{NumProcs: 2})
	k.Run("boom", func(p *Proc) { panic("die") })
}

func TestKernelReusableAfterFailure(t *testing.T) {
	k := New(&NopPlatform{}, Config{NumProcs: 4})
	if _, err := k.RunErr("boom", func(p *Proc) {
		if p.ID() == 2 {
			panic("die")
		}
		p.Barrier()
	}); err == nil {
		t.Fatal("expected error from panicking run")
	}
	run, err := k.RunErr("ok", func(p *Proc) {
		p.Compute(100)
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("kernel not reusable after failed run: %v", err)
	}
	if run.EndTime != 100 {
		t.Errorf("end time = %d, want 100", run.EndTime)
	}
}
