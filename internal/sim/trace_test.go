package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestEmitOffIsFree(t *testing.T) {
	k := New(&NopPlatform{}, Config{NumProcs: 2})
	allocs := testing.AllocsPerRun(1000, func() {
		k.Emit(trace.PageFetch, 1, 100, 42, 7)
	})
	if allocs != 0 {
		t.Errorf("Emit with no sink allocates %.1f per call, want 0", allocs)
	}
}

func TestKernelEmitsLockAndBarrierEvents(t *testing.T) {
	k := New(&NopPlatform{}, Config{NumProcs: 4})
	c := trace.NewCounting(4)
	k.SetTraceSink(c)
	_, err := k.RunErr("locks", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Lock(7)
			p.Compute(50)
			p.Unlock(7)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Count(trace.LockRequest); got != 12 {
		t.Errorf("LockRequest events = %d, want 12", got)
	}
	if got := c.Count(trace.LockGrant); got != 12 {
		t.Errorf("LockGrant events = %d, want 12", got)
	}
	// 4 procs x 3 acquires with interleaving: at least the 3 inter-proc
	// handoffs must be transfers, and same-proc re-acquires must not be.
	xfers := c.Count(trace.LockTransfer)
	if xfers == 0 || xfers > 11 {
		t.Errorf("LockTransfer events = %d, want within (0, 11]", xfers)
	}
	if got := c.Count(trace.Barrier); got != 4 {
		t.Errorf("Barrier events = %d, want 4 (one per proc)", got)
	}
	locks := c.LockTotals()
	if len(locks) != 1 || locks[0].Lock != 7 || locks[0].Acquires != 12 {
		t.Errorf("LockTotals = %+v", locks)
	}
}

// attachSinkPlatform installs a fresh counting sink each Attach, the way the
// SVM profiler does.
type attachSinkPlatform struct {
	NopPlatform
	sinks []*trace.Counting
}

func (a *attachSinkPlatform) Attach(k *Kernel) {
	a.NopPlatform.Attach(k)
	c := trace.NewCounting(k.NumProcs())
	a.sinks = append(a.sinks, c)
	k.AddRunSink(c)
}

func TestRunSinksClearedBetweenRuns(t *testing.T) {
	pl := &attachSinkPlatform{}
	k := New(pl, Config{NumProcs: 2})
	body := func(p *Proc) { p.Lock(1); p.Unlock(1); p.Barrier() }
	if _, err := k.RunErr("a", body); err != nil {
		t.Fatal(err)
	}
	if got := pl.sinks[0].Count(trace.LockGrant); got != 2 {
		t.Fatalf("first run grants = %d, want 2", got)
	}
	// Run sinks are per-run: the second run feeds only its own sink.
	if _, err := k.RunErr("b", body); err != nil {
		t.Fatal(err)
	}
	if got := pl.sinks[0].Count(trace.LockGrant); got != 2 {
		t.Errorf("first run's sink leaked into next run: grants now %d", got)
	}
	if got := pl.sinks[1].Count(trace.LockGrant); got != 2 {
		t.Errorf("second run grants = %d, want 2", got)
	}
}

func TestDeadlockErrorCarriesRecentEvents(t *testing.T) {
	k := New(&NopPlatform{}, Config{NumProcs: 2})
	k.SetTraceRing(16)
	_, err := k.RunErr("dead", func(p *Proc) {
		if p.ID() == 0 {
			p.Lock(1)
			p.Barrier() // holds lock 1 forever
		} else {
			p.Lock(1) // waits forever
		}
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if len(de.Recent) == 0 {
		t.Fatal("DeadlockError.Recent is empty with a trace ring installed")
	}
	msg := err.Error()
	if !strings.Contains(msg, "protocol events") || !strings.Contains(msg, "LockRequest") {
		t.Errorf("rendered error missing the trace dump:\n%s", msg)
	}
}

func TestProcPanicErrorCarriesRecentEvents(t *testing.T) {
	k := New(&NopPlatform{}, Config{NumProcs: 2})
	k.SetTraceRing(8)
	_, err := k.RunErr("boom", func(p *Proc) {
		p.Lock(3)
		p.Unlock(3)
		if p.ID() == 1 {
			panic("die")
		}
		p.Barrier()
	})
	var pe *ProcPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ProcPanicError", err)
	}
	if len(pe.Recent) == 0 {
		t.Fatal("ProcPanicError.Recent is empty with a trace ring installed")
	}
	if !strings.Contains(err.Error(), "protocol events") {
		t.Errorf("rendered error missing the trace dump:\n%s", err.Error())
	}
}

func TestNoRingMeansNoRecentEvents(t *testing.T) {
	k := New(&NopPlatform{}, Config{NumProcs: 2})
	_, err := k.RunErr("dead", func(p *Proc) {
		if p.ID() == 0 {
			p.Lock(1)
			p.Barrier()
		} else {
			p.Lock(1)
		}
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if len(de.Recent) != 0 {
		t.Errorf("Recent = %d events without a ring, want 0", len(de.Recent))
	}
	if strings.Contains(err.Error(), "protocol events") {
		t.Error("error renders a trace dump section without a ring")
	}
}

func TestSampleIntervalFeedsTimeline(t *testing.T) {
	k := New(&NopPlatform{}, Config{NumProcs: 2})
	tl := &trace.Timeline{}
	k.SetTraceSink(tl)
	k.SetSampleInterval(1000)
	run, err := k.RunErr("sampled", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Compute(500)
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Samples) < 2 {
		t.Fatalf("got %d samples over a %d-cycle run at interval 1000", len(tl.Samples), run.EndTime)
	}
	for i := 1; i < len(tl.Samples); i++ {
		if tl.Samples[i].Time <= tl.Samples[i-1].Time {
			t.Errorf("sample times not increasing: %d then %d", tl.Samples[i-1].Time, tl.Samples[i].Time)
		}
	}
	// The final sample is taken at run end with the complete breakdown.
	last := tl.Samples[len(tl.Samples)-1]
	var total uint64
	for _, per := range last.Cycles {
		for _, c := range per {
			total += c
		}
	}
	if total == 0 {
		t.Error("final sample has an all-zero breakdown")
	}
}

func BenchmarkEmitNilSink(b *testing.B) {
	k := New(&NopPlatform{}, Config{NumProcs: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Emit(trace.PageFetch, 0, uint64(i), 1, 2)
	}
}

// BenchmarkKernelTracingOff guards the no-regression-when-off requirement at
// the whole-kernel level: the body synchronizes heavily so every Emit site in
// the lock/barrier path runs with no sink installed.
func BenchmarkKernelTracingOff(b *testing.B) {
	k := New(&NopPlatform{}, Config{NumProcs: 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Run("bench", func(p *Proc) {
			for j := 0; j < 100; j++ {
				p.Lock(1)
				p.Compute(10)
				p.Unlock(1)
			}
			p.Barrier()
		})
	}
}
