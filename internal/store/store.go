// Package store is the persistent second tier of the experiment cache: a
// disk-backed, content-addressed result store keyed by the harness memo key
// plus a schema version and a build fingerprint, so `figures -all -store DIR`
// and the serving layer skip every already-computed cell across process
// restarts.
//
// Durability model: every entry is written to a temp file in the store
// directory and atomically renamed into place, and every entry carries a
// SHA-256 checksum over its payload. A reader that finds a truncated,
// torn, or otherwise corrupt entry treats it as a cache miss — never an
// error — so a kill -9 mid-write can cost a recomputation but can never
// poison a result. The simulator is deterministic, so failed cells (panics,
// deadlocks, invariant and verification failures) are persisted alongside
// successes; see Result.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// schemaVersion stamps every logical key. Bump it whenever the persisted
// Result layout or the meaning of any stats field changes: old entries then
// hash to different filenames and simply stop being found, instead of being
// decoded into the wrong shape.
const schemaVersion = 1

// header is the first line of every entry file: a magic token, then the
// hex SHA-256 of the payload that follows the newline.
const magic = "svmstore1"

// tempPrefix marks in-flight writes; Get never looks at them and GC reaps
// stale ones (a crash between create and rename leaves one behind).
const tempPrefix = ".tmp-"

// Result is one persisted cell: either a completed run, or a deterministic
// failure recorded by its JSON error kind ("panic", "deadlock", "invariant",
// "verify", "error") and message. Exactly one of Run / ErrKind is set.
type Result struct {
	Run     *stats.Run `json:"run,omitempty"`
	ErrKind string     `json:"err_kind,omitempty"`
	ErrMsg  string     `json:"err_msg,omitempty"`
}

// entry is the on-disk payload: the full logical key is embedded so a read
// can verify it got the entry it asked for (paranoia against file renames
// and truncated-hash collisions), and so GC/inspection tools can list what
// a store holds without reversing hashes.
type entry struct {
	Key    string `json:"key"`
	Result Result `json:"result"`
}

// Stats are the store's cumulative counters since Open. Corrupt counts
// entries that failed checksum/decode verification and were healed —
// treated as misses and removed so the next Put rewrites them. GCRuns
// and GCEvicted count GC sweeps and the entries they removed.
type Stats struct {
	Hits, Misses, Corrupt, Puts uint64
	GCRuns, GCEvicted           uint64
}

// Store is a content-addressed result store rooted at one directory. It is
// safe for concurrent use by any number of goroutines and processes: reads
// only ever see fully-renamed entries, and concurrent writers of the same
// key are idempotent (the results are deterministic, so last-rename-wins is
// harmless).
type Store struct {
	dir string
	// fingerprint isolates results computed by different builds: a key is
	// only found again by a binary with the same fingerprint, so results
	// cached by an older binary are invalidated (by never being looked up)
	// instead of silently served stale. See Fingerprint.
	fingerprint string
	// schema mirrors schemaVersion; a field so tests can simulate a bump.
	schema int

	hits, misses, corrupt, puts atomic.Uint64
	gcRuns, gcEvicted           atomic.Uint64
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, fingerprint: Fingerprint(), schema: schemaVersion}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// logicalKey binds a harness memo key to this build and schema; it is the
// string that is hashed into the entry filename and embedded in the payload.
func (s *Store) logicalKey(key string) string {
	return fmt.Sprintf("s%d|%s|%s", s.schema, s.fingerprint, key)
}

// path returns the entry file for a logical key: the hex SHA-256 of the
// logical key, flat in the store directory.
func (s *Store) path(logical string) string {
	sum := sha256.Sum256([]byte(logical))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".json")
}

// Get looks up a key. ok is false on any miss, including corrupt or
// truncated entries (which are deleted so the next Put rewrites them);
// Get never returns an error to the caller.
func (s *Store) Get(key string) (Result, bool) {
	logical := s.logicalKey(key)
	p := s.path(logical)
	raw, err := os.ReadFile(p)
	if err != nil {
		s.misses.Add(1)
		return Result{}, false
	}
	e, ok := decode(raw, logical)
	if !ok {
		// Corrupt, torn, or foreign: drop it so it is rewritten rather
		// than re-verified (and re-failed) on every lookup.
		os.Remove(p)
		s.corrupt.Add(1)
		s.misses.Add(1)
		return Result{}, false
	}
	s.hits.Add(1)
	// Touch for LRU-ish GC ordering; best-effort.
	now := time.Now()
	_ = os.Chtimes(p, now, now)
	return e.Result, true
}

// decode verifies the header checksum and key binding of a raw entry file.
func decode(raw []byte, logical string) (entry, bool) {
	nl := strings.IndexByte(string(raw), '\n')
	if nl < 0 {
		return entry{}, false
	}
	var gotMagic, gotSum string
	if n, err := fmt.Sscanf(string(raw[:nl]), "%s %s", &gotMagic, &gotSum); n != 2 || err != nil {
		return entry{}, false
	}
	if gotMagic != magic {
		return entry{}, false
	}
	payload := raw[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != gotSum {
		return entry{}, false
	}
	var e entry
	if err := json.Unmarshal(payload, &e); err != nil {
		return entry{}, false
	}
	if e.Key != logical {
		return entry{}, false
	}
	return e, true
}

// Put persists a result under key, atomically: the entry is fully written
// and fsynced to a temp file, then renamed into place, so a concurrent or
// crashed process can never observe a partial entry under the final name.
func (s *Store) Put(key string, res Result) error {
	logical := s.logicalKey(key)
	payload, err := json.Marshal(entry{Key: logical, Result: res})
	if err != nil {
		return fmt.Errorf("store: encoding %q: %w", key, err)
	}
	sum := sha256.Sum256(payload)
	f, err := os.CreateTemp(s.dir, tempPrefix)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	_, werr := fmt.Fprintf(f, "%s %s\n", magic, hex.EncodeToString(sum[:]))
	if werr == nil {
		_, werr = f.Write(payload)
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, s.path(logical))
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing %q: %w", key, werr)
	}
	s.puts.Add(1)
	return nil
}

// Stats returns the cumulative counters since Open.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Corrupt:   s.corrupt.Load(),
		Puts:      s.puts.Load(),
		GCRuns:    s.gcRuns.Load(),
		GCEvicted: s.gcEvicted.Load(),
	}
}

// GCPolicy bounds a store. Zero fields mean "no bound on this axis".
type GCPolicy struct {
	// MaxEntries keeps at most this many entries, evicting the least
	// recently used (Get touches entries) first.
	MaxEntries int
	// MaxAge evicts entries not written or hit within this duration.
	MaxAge time.Duration
}

// GC sweeps the store: stale temp files from crashed writers are removed,
// then entries are evicted per the policy, oldest first. It returns the
// number of entries evicted (not counting temp files).
func (s *Store) GC(p GCPolicy) (evicted int, err error) {
	s.gcRuns.Add(1)
	defer func() { s.gcEvicted.Add(uint64(evicted)) }()
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	type aged struct {
		name string
		mod  time.Time
	}
	var files []aged
	now := time.Now()
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		info, ierr := de.Info()
		if ierr != nil {
			continue // deleted underneath us
		}
		if strings.HasPrefix(de.Name(), tempPrefix) {
			// A writer holds its temp file only for the duration of one
			// Put; anything older than an hour is a crash leftover.
			if now.Sub(info.ModTime()) > time.Hour {
				os.Remove(filepath.Join(s.dir, de.Name()))
			}
			continue
		}
		if !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		files = append(files, aged{de.Name(), info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	evict := func(name string) {
		if os.Remove(filepath.Join(s.dir, name)) == nil {
			evicted++
		}
	}
	n := len(files)
	for _, f := range files {
		over := p.MaxEntries > 0 && n-evicted > p.MaxEntries
		old := p.MaxAge > 0 && now.Sub(f.mod) > p.MaxAge
		if over || old {
			evict(f.name)
		}
	}
	return evicted, nil
}

// Len returns the number of (fully-written) entries currently in the store.
func (s *Store) Len() (int, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	n := 0
	for _, de := range ents {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".json") && !strings.HasPrefix(de.Name(), tempPrefix) {
			n++
		}
	}
	return n, nil
}
