package store

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"os"
	"runtime/debug"
	"sync"
)

var (
	fpOnce sync.Once
	fp     string
)

// Fingerprint identifies the build of the running binary, for isolating
// persisted results computed by different code. Preference order:
//
//  1. "vcs:<revision>" when the binary was built from a clean VCS checkout
//     — every binary built from the same commit shares the cache;
//  2. "bin:<sha256 of the executable>" otherwise (dirty trees, `go test`
//     binaries) — any rebuild gets a fresh namespace, which is exactly the
//     conservative behavior wanted while the source is changing;
//  3. "mod:<version>" for module-versioned builds without an executable
//     path (rare: stripped environments);
//  4. "unversioned" as a last resort.
//
// Computed once per process: hashing the executable costs one file read.
func Fingerprint() string {
	fpOnce.Do(func() { fp = computeFingerprint() })
	return fp
}

func computeFingerprint() string {
	bi, biOK := debug.ReadBuildInfo()
	if biOK {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if rev != "" && modified == "false" {
			return "vcs:" + rev
		}
	}
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return "bin:" + hex.EncodeToString(h.Sum(nil))[:32]
			}
		}
	}
	if biOK && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return "mod:" + bi.Main.Version
	}
	return "unversioned"
}
