package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"testing"
)

// encodeEntry builds a raw entry file exactly as Put writes it.
func encodeEntry(t testing.TB, key string, res Result) []byte {
	t.Helper()
	payload, err := json.Marshal(entry{Key: key, Result: res})
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(payload)
	return []byte(fmt.Sprintf("%s %s\n%s", magic, hex.EncodeToString(sum[:]), payload))
}

// FuzzEntryDecode drives the store's corruption tolerance: decode must never
// panic and must never accept an entry whose checksum or key binding does not
// hold — a torn or tampered file is a miss, not a poisoned result.
func FuzzEntryDecode(f *testing.F) {
	valid := encodeEntry(f, "s1|fp|cell", Result{ErrKind: "deadlock", ErrMsg: "stuck"})
	f.Add(valid, "s1|fp|cell")
	f.Add(valid, "s1|fp|other")               // foreign key: must be rejected
	f.Add(valid[:len(valid)/2], "s1|fp|cell") // torn write
	f.Add([]byte{}, "")
	f.Add([]byte("svmstore1 deadbeef\n{}"), "k") // wrong checksum
	f.Add([]byte("bogus cafe\n{}"), "k")         // wrong magic
	f.Add([]byte("svmstore1\n{}"), "k")          // header missing the sum
	f.Add([]byte("svmstore1 "+hex.EncodeToString(make([]byte, 32))+"\n"), "k")

	f.Fuzz(func(t *testing.T, raw []byte, logical string) {
		e, ok := decode(raw, logical)
		if !ok {
			return
		}
		// An accepted entry must be bound to the requested logical key...
		if e.Key != logical {
			t.Fatalf("decode accepted an entry for key %q when asked for %q", e.Key, logical)
		}
		// ...and must be byte-reconstructible: re-encoding what we decoded
		// yields an entry decode accepts again (checksum really covered the
		// payload we parsed).
		if _, ok2 := decode(encodeEntry(t, e.Key, e.Result), logical); !ok2 {
			t.Fatalf("round-trip of an accepted entry was rejected")
		}
	})
}

// FuzzEntryDecodeFlip flips one byte of a well-formed entry at a fuzzed
// position: decode must either reject the file or (for flips inside JSON
// whitespace-insensitive spots there are none — the checksum covers every
// payload byte) return the original, never a silently different result.
func FuzzEntryDecodeFlip(f *testing.F) {
	f.Add(uint16(0), byte(1))
	f.Add(uint16(10), byte(0xff))
	f.Add(uint16(80), byte(0x20))
	f.Fuzz(func(t *testing.T, pos uint16, delta byte) {
		if delta == 0 {
			return // not a flip
		}
		raw := encodeEntry(t, "s1|fp|cell", Result{ErrKind: "panic", ErrMsg: "boom"})
		i := int(pos) % len(raw)
		raw[i] ^= delta
		if e, ok := decode(raw, "s1|fp|cell"); ok {
			orig := encodeEntry(t, "s1|fp|cell", Result{ErrKind: "panic", ErrMsg: "boom"})
			if string(encodeEntry(t, e.Key, e.Result)) != string(orig) {
				t.Fatalf("flipped byte %d by %#x yet decode accepted a DIFFERENT entry", i, delta)
			}
		}
	})
}
