package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

func testRun(name string, end uint64) *stats.Run {
	r := stats.NewRun(name, 2)
	r.EndTime = end
	r.Procs[0].Cycles[stats.Compute] = end
	r.Procs[1].Cycles[stats.BarrierWait] = end / 2
	r.Procs[0].Counters.Reads = 42
	r.RecordPhase("solve", end/3)
	return r
}

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir())
	want := testRun("lu/orig on svm", 12345)
	if err := s.Put("k1", Result{Run: want}); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if got.Run.EndTime != want.EndTime || got.Run.NumProcs != want.NumProcs {
		t.Errorf("round trip mangled run: got end=%d P=%d", got.Run.EndTime, got.Run.NumProcs)
	}
	if got.Run.Procs[0].Counters.Reads != 42 || got.Run.PhaseTimes["solve"] != want.PhaseTimes["solve"] {
		t.Error("round trip dropped counters or phases")
	}
	if st := s.Stats(); st.Hits != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v, want 1 hit 1 put", st)
	}
}

func TestErrorResultRoundTrip(t *testing.T) {
	s := open(t, t.TempDir())
	if err := s.Put("bad", Result{ErrKind: "panic", ErrMsg: "boom at proc 3"}); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("bad")
	if !ok || got.ErrKind != "panic" || got.ErrMsg != "boom at proc 3" || got.Run != nil {
		t.Errorf("error entry = %+v ok=%v", got, ok)
	}
}

func TestMissOnAbsent(t *testing.T) {
	s := open(t, t.TempDir())
	if _, ok := s.Get("never"); ok {
		t.Error("hit on absent key")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
}

// entryFile locates the single entry file of a one-entry store.
func entryFile(t *testing.T, s *Store) string {
	t.Helper()
	ents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), ".json") {
			return filepath.Join(s.Dir(), de.Name())
		}
	}
	t.Fatal("no entry file found")
	return ""
}

// Corrupt and truncated entries must read as misses — never errors — and be
// removed so the next Put heals the store. This is the kill -9 contract:
// rename is atomic, so the torn states a reader can see are only ever a
// missing file or (on a weaker filesystem) a truncated/garbage one, and both
// decode paths reject via checksum.
func TestCorruptEntryIsMissAndHeals(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(p string) error
	}{
		{"truncated", func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, raw[:len(raw)/2], 0o666)
		}},
		{"garbage", func(p string) error {
			return os.WriteFile(p, []byte("not a store entry at all"), 0o666)
		}},
		{"empty", func(p string) error {
			return os.WriteFile(p, nil, 0o666)
		}},
		{"bitflip", func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			raw[len(raw)-3] ^= 0x40
			return os.WriteFile(p, raw, 0o666)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := open(t, t.TempDir())
			if err := s.Put("cell", Result{Run: testRun("x", 99)}); err != nil {
				t.Fatal(err)
			}
			p := entryFile(t, s)
			if err := tc.corrupt(p); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get("cell"); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
			}
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Error("corrupt entry not removed")
			}
			// Heal: rewrite and read back.
			if err := s.Put("cell", Result{Run: testRun("x", 99)}); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("cell"); !ok || got.Run.EndTime != 99 {
				t.Error("store did not heal after rewrite")
			}
		})
	}
}

// A new schema or a new build must never see old entries.
func TestSchemaAndFingerprintInvalidate(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Put("cell", Result{Run: testRun("x", 7)}); err != nil {
		t.Fatal(err)
	}

	bumped := open(t, dir)
	bumped.schema = s.schema + 1
	if _, ok := bumped.Get("cell"); ok {
		t.Error("entry survived a schema bump")
	}

	rebuilt := open(t, dir)
	rebuilt.fingerprint = "vcs:someoldcommit"
	if _, ok := rebuilt.Get("cell"); ok {
		t.Error("entry from another build fingerprint served")
	}

	// The original keeps hitting.
	if _, ok := s.Get("cell"); !ok {
		t.Error("original store lost its own entry")
	}
}

// A renamed entry file (wrong name for its embedded key) must not be served.
func TestKeyBindingVerified(t *testing.T) {
	s := open(t, t.TempDir())
	if err := s.Put("a", Result{Run: testRun("x", 1)}); err != nil {
		t.Fatal(err)
	}
	p := entryFile(t, s)
	// Masquerade entry "a" as entry "b".
	if err := os.Rename(p, s.path(s.logicalKey("b"))); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("b"); ok {
		t.Error("foreign entry served under the wrong key")
	}
}

func TestGCEvictsOldestAndReapsTemps(t *testing.T) {
	s := open(t, t.TempDir())
	keys := []string{"k0", "k1", "k2", "k3", "k4"}
	for i, k := range keys {
		if err := s.Put(k, Result{Run: testRun(k, uint64(i+1))}); err != nil {
			t.Fatal(err)
		}
		// Age entries distinctly: k0 oldest.
		old := time.Now().Add(-time.Duration(len(keys)-i) * time.Hour)
		if err := os.Chtimes(s.path(s.logicalKey(k)), old, old); err != nil {
			t.Fatal(err)
		}
	}
	// A crash leftover: stale temp file.
	stale := filepath.Join(s.Dir(), tempPrefix+"dead")
	if err := os.WriteFile(stale, []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}
	oldT := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stale, oldT, oldT); err != nil {
		t.Fatal(err)
	}

	evicted, err := s.GC(GCPolicy{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 3 {
		t.Errorf("evicted %d entries, want 3", evicted)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file not reaped")
	}
	if n, _ := s.Len(); n != 2 {
		t.Errorf("Len = %d after GC, want 2", n)
	}
	// The newest survive, the oldest are gone.
	if _, ok := s.Get("k4"); !ok {
		t.Error("newest entry evicted")
	}
	if _, ok := s.Get("k0"); ok {
		t.Error("oldest entry survived MaxEntries=2")
	}
	// The sweep and its evictions are surfaced (the serving layer exports
	// them at /metrics as svmstore_gc_runs_total / svmstore_gc_evicted_total).
	st := s.Stats()
	if st.GCRuns != 1 || st.GCEvicted != 3 {
		t.Errorf("GC stats = %d runs / %d evicted, want 1 / 3", st.GCRuns, st.GCEvicted)
	}
}

func TestGCMaxAge(t *testing.T) {
	s := open(t, t.TempDir())
	for _, k := range []string{"fresh", "stale"} {
		if err := s.Put(k, Result{Run: testRun(k, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(s.path(s.logicalKey("stale")), old, old); err != nil {
		t.Fatal(err)
	}
	evicted, err := s.GC(GCPolicy{MaxAge: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 1 {
		t.Errorf("evicted %d, want 1", evicted)
	}
	if _, ok := s.Get("fresh"); !ok {
		t.Error("fresh entry evicted by MaxAge")
	}
}

func TestFingerprintStableAndNonEmpty(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if a == "" || a != b {
		t.Errorf("Fingerprint() = %q then %q, want stable non-empty", a, b)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := open(t, t.TempDir())
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 20; j++ {
				_ = s.Put("shared", Result{Run: testRun("x", 5)})
				if res, ok := s.Get("shared"); ok && res.Run.EndTime != 5 {
					t.Error("torn read")
					return
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
