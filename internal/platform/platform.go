// Package platform assembles the three machine models of the paper as named
// presets: "svm" (page-grained shared virtual memory, HLRC), "smp" (bus-based
// hardware cache coherence, SGI Challenge-like) and "dsm" (CC-NUMA hardware
// cache coherence with a distributed directory).
package platform

import (
	"fmt"

	"repro/internal/dsm"
	"repro/internal/mem"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/smp"
	"repro/internal/svm"
	"repro/internal/svmsmp"
)

// Names lists the paper's three platforms in paper order; the figures
// iterate over these. Additional presets available through Make: the §7
// future-work hierarchy "svmsmp" (SMP nodes connected by SVM) and the
// protocol-engine compositions "smp-msi" and "dsm-msi" (the hardware
// machines with the coherence state machine swapped to MSI).
var Names = []string{"svm", "smp", "dsm"}

// PageSize is the allocation/placement granularity shared by all presets:
// the SVM page size (4 KB), which the DSM preset also uses as its memory
// placement granularity.
const PageSize = 4096

// AllPresets lists every preset Make can build: the paper's three
// platforms first, then the two-level hierarchy and the MSI protocol-engine
// compositions. The cross-platform differential suite and the irregular
// workload campaign sweep all of them.
var AllPresets = []string{"svm", "smp", "dsm", "svmsmp", "smp-msi", "dsm-msi"}

// Known reports whether name is a preset Make can build. Campaign and
// sweep spec validation use it to reject a typo'd platform before
// enumerating (and journaling) thousands of cells that would all fail.
func Known(name string) bool {
	for _, n := range AllPresets {
		if n == name {
			return true
		}
	}
	return false
}

// Make builds the named platform over the given address space.
func Make(name string, as *mem.AddressSpace, np int) (sim.Platform, error) {
	switch name {
	case "svm":
		return svm.New(as, svm.DefaultParams(), np), nil
	case "dsm":
		return dsm.New(as, dsm.DefaultParams(), np), nil
	case "smp":
		return smp.New(as, smp.DefaultParams(), np), nil
	case "svmsmp":
		// The paper's §7 future-work hierarchy: SMP nodes of four
		// processors connected by SVM.
		return svmsmp.New(as, svmsmp.DefaultParams(), np), nil
	case "smp-msi":
		// The Challenge machine with the MESI axis swapped for plain MSI:
		// a new protocol-engine composition, not a new platform package.
		return protocol.NewBusMachine("smp-msi", protocol.MSI, smp.CacheConfig, smp.DefaultParams(), np), nil
	case "dsm-msi":
		// The CC-NUMA machine over MSI — every read fills Shared, so
		// read-then-write pays an upgrade even with no other sharer.
		return protocol.NewDirMachine("dsm-msi", protocol.MSI, dsm.CacheConfig, as, dsm.DefaultParams(), np), nil
	default:
		return nil, fmt.Errorf("platform: unknown preset %q (want one of %v)", name, Names)
	}
}

// IsHardwareCoherent reports whether the preset models hardware cache
// coherence (fine-grained), as opposed to page-grained software coherence.
func IsHardwareCoherent(name string) bool {
	switch name {
	case "smp", "dsm", "smp-msi", "dsm-msi":
		return true
	}
	return false
}
