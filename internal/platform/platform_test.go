package platform

import (
	"testing"

	"repro/internal/mem"
)

func TestMakeAllPresets(t *testing.T) {
	for _, name := range append(append([]string{}, Names...), "svmsmp", "smp-msi", "dsm-msi") {
		as := mem.NewAddressSpace(PageSize, 8)
		pl, err := Make(name, as, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pl.Name() != name {
			t.Errorf("%s preset reports name %q", name, pl.Name())
		}
	}
}

func TestMakeUnknown(t *testing.T) {
	as := mem.NewAddressSpace(PageSize, 2)
	if _, err := Make("vax", as, 2); err == nil {
		t.Error("expected error for unknown preset")
	}
}

func TestIsHardwareCoherent(t *testing.T) {
	if IsHardwareCoherent("svm") || IsHardwareCoherent("svmsmp") {
		t.Error("page-grained platforms misclassified as hardware-coherent")
	}
	if !IsHardwareCoherent("smp") || !IsHardwareCoherent("dsm") ||
		!IsHardwareCoherent("smp-msi") || !IsHardwareCoherent("dsm-msi") {
		t.Error("hardware platforms misclassified")
	}
}
