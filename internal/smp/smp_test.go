package smp

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

func setup(np int) (*mem.AddressSpace, *sim.Kernel) {
	as := mem.NewAddressSpace(4096, np)
	p := New(as, DefaultParams(), np)
	k := sim.New(p, sim.Config{NumProcs: np})
	return as, k
}

func TestMissThenHit(t *testing.T) {
	as, k := setup(1)
	a := as.AllocPages(4096)
	run := k.Run("hit", func(p *sim.Proc) {
		p.Read(a)
		p.Read(a)
	})
	c := run.Procs[0].Counters
	if c.BusTransactions != 1 {
		t.Errorf("bus transactions = %d, want 1", c.BusTransactions)
	}
}

func TestCacheToCacheTransfer(t *testing.T) {
	as, k := setup(2)
	a := as.AllocPages(4096)
	run := k.Run("c2c", func(p *sim.Proc) {
		if p.ID() == 0 {
			p.Write(a)
		}
		p.Barrier()
		if p.ID() == 1 {
			p.Read(a) // supplied cache-to-cache by owner 0
		}
		p.Barrier()
	})
	if run.Procs[1].Cycles[stats.DataWait] == 0 {
		t.Error("cache-to-cache transfer charged no data wait")
	}
	if got := run.Procs[1].Counters.RemoteMisses; got != 1 {
		t.Errorf("c2c misses = %d, want 1", got)
	}
}

func TestUpgradeInvalidatesSharers(t *testing.T) {
	as, k := setup(4)
	a := as.AllocPages(4096)
	run := k.Run("upg", func(p *sim.Proc) {
		p.Read(a)
		p.Barrier()
		if p.ID() == 2 {
			p.Write(a)
		}
		p.Barrier()
		p.Read(a)
		p.Barrier()
	})
	for i := 0; i < 4; i++ {
		if i == 2 {
			continue
		}
		if got := run.Procs[i].Counters.BusTransactions; got < 2 {
			t.Errorf("proc %d bus txns = %d, want >= 2 (re-read after invalidation)", i, got)
		}
	}
}

func TestBusContentionSerializes(t *testing.T) {
	// All processors streaming misses saturate the bus: per-processor
	// average transaction time rises well above the unloaded cost.
	np := 8
	as, k := setup(np)
	per := 256 << 10
	a := as.AllocPages(per * np)
	run := k.Run("stream", func(p *sim.Proc) {
		base := a + uint64(p.ID()*per)
		for off := 0; off < per; off += 128 {
			p.Read(base + uint64(off))
		}
		p.Barrier()
	})
	c := run.AggregateCounters()
	totalStall := run.TotalCycles(stats.CacheStall) + run.TotalCycles(stats.DataWait)
	perTxn := totalStall / c.BusTransactions
	unloaded := DefaultParams().BusArb + DefaultParams().BusXfer + DefaultParams().MemLat
	if perTxn <= unloaded {
		t.Errorf("no bus contention: %d cycles/txn <= unloaded %d", perTxn, unloaded)
	}
}

func TestLocksAreCheapOnSMP(t *testing.T) {
	_, k := setup(2)
	run := k.Run("locks", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			p.Lock(1)
			p.Compute(10)
			p.Unlock(1)
			p.Compute(100)
		}
		p.Barrier()
	})
	perLock := run.TotalCycles(stats.LockWait) / 20
	if perLock > 1000 {
		t.Errorf("SMP lock cost %d cycles each, want cheap (<1000)", perLock)
	}
}
