// Package smp models the paper's bus-based symmetric multiprocessor (§2.1.2,
// an SGI Challenge): sixteen 150 MHz processors with 16 KB L1s and unified
// 1 MB L2s, 128 B second-level lines, centralized memory behind a 1.2 GB/s
// bus, kept coherent by MESI snooping. The single bus is the contended
// resource; its occupancy per transaction is what makes bandwidth-heavy codes
// (Radix) suffer here, as the paper observes.
package smp

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CacheConfig is the Challenge's per-processor hierarchy.
var CacheConfig = cache.Config{
	L1Size: 16 << 10, L1Assoc: 1,
	L2Size: 1 << 20, L2Assoc: 1,
	Line: 128,
}

// Params are cycle costs at 150 MHz (6.7 ns).
type Params struct {
	L2HitCost uint64
	BusArb    uint64 // bus arbitration
	BusXfer   uint64 // bus occupancy per 128 B line (1.2 GB/s)
	MemLat    uint64 // main memory access latency
	C2CLat    uint64 // cache-to-cache supply latency
	InvalPer  uint64 // per-sharer invalidation on upgrades

	LockAcquire uint64
	LockRelease uint64
	BarrierHW   uint64
	BarrierLeaf uint64
}

// DefaultParams returns the Challenge-calibrated cost model.
func DefaultParams() Params {
	return Params{
		L2HitCost: 8,
		BusArb:    8,
		BusXfer:   16, // 128 B at 1.2 GB/s is ~107 ns
		MemLat:    55,
		C2CLat:    35,
		InvalPer:  8,

		LockAcquire: 90,
		LockRelease: 40,
		BarrierHW:   400,
		BarrierLeaf: 90,
	}
}

type lineEntry struct {
	sharers uint64
	owner   int8
}

// Platform is the snooping-bus machine model.
type Platform struct {
	P      Params
	as     *mem.AddressSpace
	k      *sim.Kernel
	np     int
	caches []*cache.Hierarchy
	lines  map[uint64]*lineEntry
	bus    sim.Resource
}

// New creates an SMP platform for np processors. The address space is used
// only for line naming; memory is centralized so homes are ignored.
func New(as *mem.AddressSpace, p Params, np int) *Platform {
	return &Platform{P: p, as: as, np: np}
}

// Name implements sim.Platform.
func (s *Platform) Name() string { return "smp" }

// LineSize reports the coherence line size for range accesses.
func (s *Platform) LineSize() int { return CacheConfig.Line }

// Attach implements sim.Platform.
func (s *Platform) Attach(k *sim.Kernel) {
	s.k = k
	s.caches = make([]*cache.Hierarchy, s.np)
	s.lines = make(map[uint64]*lineEntry, 1<<16)
	s.bus.Reset()
	for i := 0; i < s.np; i++ {
		h := cache.New(CacheConfig)
		nd := i
		h.OnL2Evict = func(la uint64, st cache.State) {
			if e, ok := s.lines[la]; ok {
				e.sharers &^= 1 << uint(nd)
				if e.owner == int8(nd) {
					e.owner = -1
				}
			}
		}
		s.caches[i] = h
	}
}

func (s *Platform) entry(la uint64) *lineEntry {
	e, ok := s.lines[la]
	if !ok {
		e = &lineEntry{owner: -1}
		s.lines[la] = e
	}
	return e
}

// FastAccess implements sim.Platform. HitAccess fuses the probe and the
// access into one tag-array walk; it refuses (mutating nothing) on a miss or
// a write without Modified/Exclusive rights, exactly as the unfused
// Probe-then-Access pair did.
func (s *Platform) FastAccess(p int, now uint64, addr uint64, write bool) (uint64, bool) {
	lvl, _, ok := s.caches[p].HitAccess(addr, write)
	if !ok {
		return 0, false
	}
	if lvl == cache.L1Hit {
		return 0, true
	}
	return s.P.L2HitCost, true
}

// SlowAccess implements sim.Platform: a bus transaction. Fills from memory
// are charged to CacheStall (centralized memory, "local cache miss");
// cache-to-cache transfers and upgrades are communication, charged to
// DataWait. Bus queueing delay is charged with the transaction.
func (s *Platform) SlowAccess(p int, now uint64, addr uint64, write bool) sim.AccessCost {
	h := s.caches[p]
	la := h.LineOf(addr)
	e := s.entry(la)
	c := s.k.Counters(p)
	c.BusTransactions++
	var cost sim.AccessCost

	occ := s.P.BusArb + s.P.BusXfer
	start := s.bus.Acquire(now, occ)
	wait := start - now + occ
	s.k.Emit(trace.BusOccupy, 0, start, la, occ)

	if write {
		remoteOwner := e.owner >= 0 && int(e.owner) != p
		remoteSharers := e.sharers&^(1<<uint(p)) != 0
		var lat uint64
		comm := false
		switch {
		case remoteOwner:
			lat = s.P.C2CLat
			s.caches[e.owner].SetState(addr, cache.Invalid)
			comm = true
		case remoteSharers:
			lat = s.P.InvalPer
			n := 0
			for q := 0; q < s.np; q++ {
				if q != p && e.sharers&(1<<uint(q)) != 0 {
					s.caches[q].SetState(addr, cache.Invalid)
					n++
				}
			}
			lat = uint64(n) * s.P.InvalPer
			if !s.hasLine(p, addr) {
				lat += s.P.MemLat
			}
			comm = true
		default:
			lat = s.P.MemLat
		}
		e.sharers = 1 << uint(p)
		e.owner = int8(p)
		h.Access(addr, true, cache.Modified)
		// Access applies fillState only on a miss; on a write UPGRADE the
		// line hits in state Shared and would stay Shared, so the owner
		// would keep paying upgrade transactions for a line it owns.
		h.SetState(addr, cache.Modified)
		if comm {
			cost.DataWait += wait + lat
			c.RemoteMisses++
		} else {
			cost.CacheStall += wait + lat
			c.LocalMisses++
		}
	} else {
		if e.owner >= 0 && int(e.owner) != p {
			// Owner supplies the line (cache-to-cache) and downgrades.
			s.caches[e.owner].SetState(addr, cache.Shared)
			e.sharers |= 1 << uint(e.owner)
			e.owner = -1
			cost.DataWait += wait + s.P.C2CLat
			c.RemoteMisses++
		} else {
			cost.CacheStall += wait + s.P.MemLat
			c.LocalMisses++
		}
		e.sharers |= 1 << uint(p)
		fill := cache.Shared
		if e.sharers == 1<<uint(p) && e.owner < 0 {
			fill = cache.Exclusive
			e.owner = int8(p)
		}
		h.Access(addr, false, fill)
	}
	s.k.Emit(trace.BusTxn, p, now, la, cost.Total())
	return cost
}

func (s *Platform) hasLine(p int, addr uint64) bool {
	lvl, _ := s.caches[p].Probe(addr)
	return lvl != cache.Miss
}

// LockRequest implements sim.Platform.
func (s *Platform) LockRequest(p int, now uint64, lock int) uint64 { return 0 }

// LockGrant implements sim.Platform: an LL/SC or test&set acquisition — one
// bus transaction, "locks are cheap and are simply locks" (paper §4.2.3).
func (s *Platform) LockGrant(p int, now uint64, lock int, prev int) uint64 {
	start := s.bus.Acquire(now, s.P.BusArb)
	s.k.Emit(trace.BusOccupy, 0, start, uint64(lock), s.P.BusArb)
	return (start - now) + s.P.LockAcquire
}

// LockRelease implements sim.Platform.
func (s *Platform) LockRelease(p int, now uint64, lock int) (uint64, uint64, uint64) {
	return s.P.LockRelease, 0, 0
}

// BarrierArrive implements sim.Platform.
func (s *Platform) BarrierArrive(p int, now uint64) (uint64, uint64) {
	return s.P.BarrierLeaf, 0
}

// BarrierRelease implements sim.Platform.
func (s *Platform) BarrierRelease(arrivals []uint64, manager int) uint64 {
	var m uint64
	for _, a := range arrivals {
		if a > m {
			m = a
		}
	}
	return m + s.P.BarrierHW
}

// BarrierDepart implements sim.Platform.
func (s *Platform) BarrierDepart(p int, releaseTime uint64) uint64 { return s.P.BarrierLeaf / 3 }

var _ sim.Platform = (*Platform)(nil)
