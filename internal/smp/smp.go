// Package smp models the paper's bus-based symmetric multiprocessor (§2.1.2,
// an SGI Challenge): sixteen 150 MHz processors with 16 KB L1s and unified
// 1 MB L2s, 128 B second-level lines, centralized memory behind a 1.2 GB/s
// bus, kept coherent by MESI snooping. The single bus is the contended
// resource; its occupancy per transaction is what makes bandwidth-heavy codes
// (Radix) suffer here, as the paper observes.
//
// The machine model itself lives in internal/protocol: this package is the
// configuration shim that composes {MESI × SnoopBus} with the Challenge's
// cache geometry and cycle costs, so existing harness specs, figure cells and
// memo keys keep resolving through the same API.
package smp

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/protocol"
)

// CacheConfig is the Challenge's per-processor hierarchy.
var CacheConfig = cache.Config{
	L1Size: 16 << 10, L1Assoc: 1,
	L2Size: 1 << 20, L2Assoc: 1,
	Line: 128,
}

// Params are cycle costs at 150 MHz (6.7 ns).
type Params = protocol.BusParams

// DefaultParams returns the Challenge-calibrated cost model.
func DefaultParams() Params { return protocol.DefaultBusParams() }

// Platform is the snooping-bus machine: protocol.HW composed as
// {MESI × SnoopBus} with machine-wide bus accounting (per-sharer upgrade
// invalidations, per-transaction miss classification).
type Platform = protocol.HW

// New creates an SMP platform for np processors. The address space is used
// only for line naming; memory is centralized so homes are ignored.
func New(as *mem.AddressSpace, p Params, np int) *Platform {
	return protocol.NewBusMachine("smp", protocol.MESI, CacheConfig, p, np)
}
