package smp

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/sim"
)

// CheckInvariants implements sim.InvariantChecked for the snooping-bus MESI
// protocol. The line table plays the role the snoop results play in
// hardware, so it must agree exactly with the caches:
//
//   - an exclusive owner is the ONLY sharer and holds the line Modified or
//     Exclusive in its L2;
//   - without an owner, every recorded sharer holds the line Shared;
//   - a sharer bit is set if and only if that processor's cache holds the
//     line;
//   - each hierarchy preserves multilevel inclusion;
//   - bus occupancy never exceeds its busy-until clock.
func (s *Platform) CheckInvariants() error {
	lineSz := uint64(CacheConfig.Line)
	las := make([]uint64, 0, len(s.lines))
	for la := range s.lines {
		las = append(las, la)
	}
	// Sorted so a violating run reports the same line every time.
	sort.Slice(las, func(i, j int) bool { return las[i] < las[j] })
	for _, la := range las {
		e := s.lines[la]
		if s.np < 64 && e.sharers>>uint(s.np) != 0 {
			return fmt.Errorf("smp: line %#x has sharer bits %#x beyond %d processors", la, e.sharers, s.np)
		}
		if e.owner >= 0 {
			if int(e.owner) >= s.np {
				return fmt.Errorf("smp: line %#x owned by out-of-range processor %d", la, e.owner)
			}
			if e.sharers != 1<<uint(e.owner) {
				return fmt.Errorf("smp: line %#x has owner %d but sharers %#x (owner must be sole sharer)", la, e.owner, e.sharers)
			}
		}
		for q := 0; q < s.np; q++ {
			bit := e.sharers&(1<<uint(q)) != 0
			holds := s.hasLine(q, la*lineSz)
			if bit && !holds {
				return fmt.Errorf("smp: line %#x lists processor %d as sharer but its cache lost the line", la, q)
			}
			if !holds {
				continue
			}
			_, st := s.caches[q].Probe(la * lineSz)
			if int(e.owner) == q {
				if st != cache.Modified && st != cache.Exclusive {
					return fmt.Errorf("smp: line %#x owner %d holds it in state %s, want M or E", la, q, st)
				}
			} else if bit && st != cache.Shared {
				return fmt.Errorf("smp: line %#x non-owner sharer %d holds it in state %s, want S", la, q, st)
			}
		}
	}
	for q := 0; q < s.np; q++ {
		if err := s.caches[q].CheckInclusion(); err != nil {
			return fmt.Errorf("smp: processor %d: %w", q, err)
		}
		var lerr error
		s.caches[q].LinesL2(func(la uint64, st cache.State) {
			if lerr != nil {
				return
			}
			e, ok := s.lines[la]
			if !ok || e.sharers&(1<<uint(q)) == 0 {
				lerr = fmt.Errorf("smp: processor %d caches line %#x (state %s) unknown to the line table", q, la, st)
			}
		})
		if lerr != nil {
			return lerr
		}
	}
	return s.bus.CheckOccupancy("smp: bus")
}

var _ sim.InvariantChecked = (*Platform)(nil)
