package svm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestAllocFreeFastAccess pins the SVM fast path — page-validity check, page
// shift, cache access — at zero allocations per reference. This is the single
// hottest function of a figure run; one stray allocation here costs gigabytes
// of garbage over a full matrix.
func TestAllocFreeFastAccess(t *testing.T) {
	as := mem.NewAddressSpace(4096, 1)
	a := as.AllocPages(1 << 16)
	as.SetHome(a, 1<<16, 0)
	pl := New(as, DefaultParams(), 1)
	k := sim.New(pl, sim.Config{NumProcs: 1})
	pl.Attach(k)
	pl.Prevalidate(a, 1<<16, 0)
	var off uint64
	if n := testing.AllocsPerRun(2000, func() {
		// A striding read stream: L1 hits, L2 hits, and cache misses on a
		// valid page all stay on the fast path.
		pl.FastAccess(0, 0, a+off%(1<<16), false)
		off += 32
	}); n != 0 {
		t.Fatalf("svm FastAccess allocates %v per run; want 0", n)
	}
}
