package svm

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func setupChecked(np int) (*mem.AddressSpace, *Platform, *sim.Kernel) {
	as := mem.NewAddressSpace(4096, np)
	p := New(as, DefaultParams(), np)
	k := sim.New(p, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager, Check: true})
	return as, p, k
}

// Regression: invalidating a dirty page at lock acquire must flush the
// pending diff home first (diff-on-invalidate — a multiple-writer protocol
// must not lose the node's own writes), then remove the page from the dirty
// list. The original bug: invalidateUpTo cleared the valid and dirty bits
// but left the dirty-list entry, so the page's next write appended a
// duplicate entry and the following flush diffed the page twice against a
// fresh twin (and against stale page contents).
func TestAcquireInvalidationFlushesDiff(t *testing.T) {
	as, _, k := setupChecked(2)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run, err := k.RunErr("diff-on-invalidate", func(p *sim.Proc) {
		if p.ID() == 0 {
			// Close an interval that wrote page a, so the next acquirer
			// of lock 1 receives a write notice for it.
			p.Lock(1)
			p.Write(a)
			p.Unlock(1)
		} else {
			p.Compute(500000) // order after proc 0's release
			p.Read(a)
			p.Write(a) // fetch + twin, page now dirty
			p.Lock(1)  // notice for a: diffs home, then invalidates
			p.Write(a) // re-fetch + fresh twin
			p.Unlock(1)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	c := run.Procs[1].Counters
	if c.TwinsMade != 2 || c.DiffsCreated != 2 {
		t.Errorf("twins=%d diffs=%d, want 2/2 (every twin diffed exactly once: at the acquire and at the final flush)",
			c.TwinsMade, c.DiffsCreated)
	}
	if got := run.Procs[0].Counters.DiffsApplied; got != 2 {
		t.Errorf("home applied %d diffs, want 2 (the acquire-time diff must reach the home)", got)
	}
}

// Regression: the per-node interval counter is 32 bits and advances at every
// release and barrier arrival, so a long enough run genuinely reaches the
// limit. Wrapping to 0 would corrupt every vector-clock comparison; the
// protocol must fail loudly instead, contained by the kernel as a structured
// processor panic.
func TestIntervalOverflowFailsLoudly(t *testing.T) {
	as := mem.NewAddressSpace(4096, 2)
	pl := New(as, DefaultParams(), 2)
	k := sim.New(pl, sim.Config{NumProcs: 2, BarrierManager: sim.AutoBarrierManager})
	_, err := k.RunErr("wrap", func(p *sim.Proc) {
		if p.ID() == 0 {
			// Attach has reset the nodes by the time bodies run; force the
			// counter to the edge, then flush via a release.
			pl.eng.Doms[0].Interval = math.MaxUint32
			pl.eng.Doms[0].VC[0] = math.MaxUint32
			p.Lock(1)
			p.Unlock(1)
		}
		p.Barrier()
	})
	var pe *sim.ProcPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want contained ProcPanicError", err)
	}
	ioe, ok := pe.Value.(*IntervalOverflowError)
	if !ok {
		t.Fatalf("panic value = %#v, want *IntervalOverflowError", pe.Value)
	}
	if ioe.Node != 0 {
		t.Errorf("overflow reported for node %d, want 0", ioe.Node)
	}
}
