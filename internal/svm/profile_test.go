package svm

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestProfilerHotPagesAndLocks(t *testing.T) {
	as := mem.NewAddressSpace(4096, 4)
	hot := as.AllocPages(4096)
	cold := as.AllocPages(4096)
	as.SetHome(hot, 4096, 0)
	as.SetHome(cold, 4096, 0)
	plat := New(as, DefaultParams(), 4)
	plat.EnableProfiling()
	k := sim.New(plat, sim.Config{NumProcs: 4})
	k.Run("prof", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			p.Lock(7)
			if p.ID() != 0 {
				p.Write(hot) // everyone dirties the hot page
			}
			p.Unlock(7)
			p.Barrier()
		}
		if p.ID() == 1 {
			p.Read(cold)
		}
		p.Barrier()
	})

	pages := plat.HotPages(2)
	if len(pages) == 0 {
		t.Fatal("no hot pages recorded")
	}
	if pages[0].Page != as.PageOf(hot) {
		t.Errorf("hottest page = %d, want %d", pages[0].Page, as.PageOf(hot))
	}
	if pages[0].Writers != 3 {
		t.Errorf("hot page writers = %d, want 3", pages[0].Writers)
	}
	if pages[0].Fetches == 0 || pages[0].Diffs == 0 {
		t.Errorf("hot page fetches=%d diffs=%d, want > 0", pages[0].Fetches, pages[0].Diffs)
	}

	locks := plat.HotLocks(5)
	found := false
	for _, l := range locks {
		if l.Lock == 7 {
			found = true
			if l.Acquires < 12 {
				t.Errorf("lock 7 acquires = %d, want >= 12", l.Acquires)
			}
			if l.Transfers == 0 {
				t.Error("lock 7 recorded no inter-node transfers")
			}
		}
	}
	if !found {
		t.Fatal("lock 7 missing from profile")
	}

	rep := plat.ProfileReport(3)
	if !strings.Contains(rep, "hot pages") || !strings.Contains(rep, "hot locks") {
		t.Errorf("malformed report:\n%s", rep)
	}
}

func TestProfilerDisabledByDefault(t *testing.T) {
	as := mem.NewAddressSpace(4096, 2)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	plat := New(as, DefaultParams(), 2)
	k := sim.New(plat, sim.Config{NumProcs: 2})
	k.Run("noprof", func(p *sim.Proc) {
		if p.ID() == 1 {
			p.Read(a)
		}
		p.Barrier()
	})
	if got := plat.HotPages(5); got != nil {
		t.Errorf("profiling disabled but got %d pages", len(got))
	}
}

func TestProfilerResetsBetweenRuns(t *testing.T) {
	as := mem.NewAddressSpace(4096, 2)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	plat := New(as, DefaultParams(), 2)
	plat.EnableProfiling()
	k := sim.New(plat, sim.Config{NumProcs: 2})
	body := func(p *sim.Proc) {
		if p.ID() == 1 {
			p.Read(a)
		}
		p.Barrier()
	}
	k.Run("a", body)
	first := plat.HotPages(1)[0].Fetches
	k.Run("b", body)
	if got := plat.HotPages(1)[0].Fetches; got != first {
		t.Errorf("profile not reset: %d fetches after second run, want %d", got, first)
	}
}

// TestCountingMatchesAggregateCounters pins the acceptance criterion that the
// counting sink reproduces the run's counter totals exactly: the profile and
// the -hot report are derived from the same protocol event stream the
// platform already accounts in stats.Counters.
func TestCountingMatchesAggregateCounters(t *testing.T) {
	as := mem.NewAddressSpace(4096, 4)
	data := as.AllocPages(16 * 4096)
	as.DistributeBlocked(data, 16*4096)
	plat := New(as, DefaultParams(), 4)
	plat.EnableProfiling()
	k := sim.New(plat, sim.Config{NumProcs: 4})
	run := k.Run("match", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			p.Lock(1)
			p.WriteRange(data+uint64(i*4096), 256)
			p.Unlock(1)
			p.Barrier()
		}
	})

	c := plat.Counting()
	if c == nil {
		t.Fatal("no counting sink with profiling enabled")
	}
	agg := run.AggregateCounters()
	if got := c.Count(trace.PageFetch); got != agg.PageFetches {
		t.Errorf("PageFetch events = %d, counters say %d", got, agg.PageFetches)
	}
	if got := c.Count(trace.TwinCreate); got != agg.TwinsMade {
		t.Errorf("TwinCreate events = %d, counters say %d", got, agg.TwinsMade)
	}
	if got := c.Count(trace.DiffCreate); got != agg.DiffsCreated {
		t.Errorf("DiffCreate events = %d, counters say %d", got, agg.DiffsCreated)
	}
	if got := c.Count(trace.DiffApply); got != agg.DiffsApplied {
		t.Errorf("DiffApply events = %d, counters say %d", got, agg.DiffsApplied)
	}
	if got := c.Count(trace.Invalidate); got != agg.Invalidations {
		t.Errorf("Invalidate events = %d, counters say %d", got, agg.Invalidations)
	}
	if got := c.Count(trace.PageFault); got != agg.PageFaults {
		t.Errorf("PageFault events = %d, counters say %d", got, agg.PageFaults)
	}
	if got := c.Count(trace.LockGrant); got != agg.LockAcquires {
		t.Errorf("LockGrant events = %d, counters say %d", got, agg.LockAcquires)
	}

	// Per-page fetch totals must also sum to the counter.
	var sum uint64
	for _, pp := range plat.HotPages(0) {
		sum += pp.Fetches
	}
	if sum != agg.PageFetches {
		t.Errorf("per-page fetches sum to %d, counters say %d", sum, agg.PageFetches)
	}
}

// TestProfileReportDeterministic pins -hot output ordering: two identical
// runs must render byte-identical reports (sort keys break all ties).
func TestProfileReportDeterministic(t *testing.T) {
	render := func() string {
		as := mem.NewAddressSpace(4096, 4)
		data := as.AllocPages(32 * 4096)
		as.DistributeBlocked(data, 32*4096)
		plat := New(as, DefaultParams(), 4)
		plat.EnableProfiling()
		k := sim.New(plat, sim.Config{NumProcs: 4})
		k.Run("det", func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				p.Lock(i % 3)
				p.WriteRange(data+uint64(((p.ID()+i)%32)*4096), 512)
				p.Unlock(i % 3)
				p.Barrier()
			}
		})
		return plat.ProfileReport(10)
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("profile report not deterministic:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}
