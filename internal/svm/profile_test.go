package svm

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func TestProfilerHotPagesAndLocks(t *testing.T) {
	as := mem.NewAddressSpace(4096, 4)
	hot := as.AllocPages(4096)
	cold := as.AllocPages(4096)
	as.SetHome(hot, 4096, 0)
	as.SetHome(cold, 4096, 0)
	plat := New(as, DefaultParams(), 4)
	plat.EnableProfiling()
	k := sim.New(plat, sim.Config{NumProcs: 4})
	k.Run("prof", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			p.Lock(7)
			if p.ID() != 0 {
				p.Write(hot) // everyone dirties the hot page
			}
			p.Unlock(7)
			p.Barrier()
		}
		if p.ID() == 1 {
			p.Read(cold)
		}
		p.Barrier()
	})

	pages := plat.HotPages(2)
	if len(pages) == 0 {
		t.Fatal("no hot pages recorded")
	}
	if pages[0].Page != as.PageOf(hot) {
		t.Errorf("hottest page = %d, want %d", pages[0].Page, as.PageOf(hot))
	}
	if pages[0].Writers != 3 {
		t.Errorf("hot page writers = %d, want 3", pages[0].Writers)
	}
	if pages[0].Fetches == 0 || pages[0].Diffs == 0 {
		t.Errorf("hot page fetches=%d diffs=%d, want > 0", pages[0].Fetches, pages[0].Diffs)
	}

	locks := plat.HotLocks(5)
	found := false
	for _, l := range locks {
		if l.Lock == 7 {
			found = true
			if l.Acquires < 12 {
				t.Errorf("lock 7 acquires = %d, want >= 12", l.Acquires)
			}
			if l.Transfers == 0 {
				t.Error("lock 7 recorded no inter-node transfers")
			}
		}
	}
	if !found {
		t.Fatal("lock 7 missing from profile")
	}

	rep := plat.ProfileReport(3)
	if !strings.Contains(rep, "hot pages") || !strings.Contains(rep, "hot locks") {
		t.Errorf("malformed report:\n%s", rep)
	}
}

func TestProfilerDisabledByDefault(t *testing.T) {
	as := mem.NewAddressSpace(4096, 2)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	plat := New(as, DefaultParams(), 2)
	k := sim.New(plat, sim.Config{NumProcs: 2})
	k.Run("noprof", func(p *sim.Proc) {
		if p.ID() == 1 {
			p.Read(a)
		}
		p.Barrier()
	})
	if got := plat.HotPages(5); got != nil {
		t.Errorf("profiling disabled but got %d pages", len(got))
	}
}

func TestProfilerResetsBetweenRuns(t *testing.T) {
	as := mem.NewAddressSpace(4096, 2)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	plat := New(as, DefaultParams(), 2)
	plat.EnableProfiling()
	k := sim.New(plat, sim.Config{NumProcs: 2})
	body := func(p *sim.Proc) {
		if p.ID() == 1 {
			p.Read(a)
		}
		p.Barrier()
	}
	k.Run("a", body)
	first := plat.HotPages(1)[0].Fetches
	k.Run("b", body)
	if got := plat.HotPages(1)[0].Fetches; got != first {
		t.Errorf("profile not reset: %d fetches after second run, want %d", got, first)
	}
}
