// Package svm models the paper's shared virtual memory platform: an
// all-software home-based lazy release consistency (HLRC) protocol over a
// Myrinet-like commodity interconnect (paper §2.1.1). Nodes are 200 MHz
// 1-CPI processors with an 8 KB direct-mapped write-through L1 and a 512 KB
// 2-way L2 (32 B lines); pages are 4 KB; the memory bus peaks at 400 MB/s and
// the I/O bus carrying network packets at 100 MB/s.
//
// Protocol mechanics follow HLRC: every page has a home; writers make a twin
// on the first write in an interval, compute diffs against the twin at
// releases, and propagate diffs to the home (only); acquirers receive write
// notices and lazily invalidate their stale copies; a fault after a causally
// related acquire fetches the whole page from the home.
package svm

// Params are the cycle costs of the model, in 200 MHz processor cycles
// (5 ns). They are chosen to match mid-90s all-software SVM over Myrinet:
// ~65 µs unloaded page fetches, ~25 µs unloaded lock acquires, barriers
// costing tens of microseconds plus flush work.
type Params struct {
	PageSize uint64

	// Local hierarchy.
	L2HitCost uint64 // L1 miss satisfied in L2
	MemCost   uint64 // L2 miss satisfied in local memory

	// Software protocol overheads.
	FaultOverhead uint64 // kernel trap + SIGSEGV handler entry on a page fault
	WriteTrap     uint64 // write-protection trap detecting first write to a page
	TwinCost      uint64 // copying a 4 KB twin
	DiffCreate    uint64 // comparing a dirty page against its twin
	DiffApply     uint64 // applying a diff at the home
	NoticeCost    uint64 // logging/sending one write notice
	InvalCost     uint64 // invalidating one page at an acquire (incl. mprotect)

	// Messaging.
	MsgSend    uint64 // software send overhead (host side)
	MsgRecv    uint64 // software receive/dispatch overhead
	NetLatency uint64 // wire+switch latency
	PageXfer   uint64 // I/O-bus occupancy to move one 4 KB page
	DiffXfer   uint64 // I/O-bus occupancy to move one diff

	// Home-side service.
	HomeService uint64 // page lookup + reply preparation at the home

	// Synchronization.
	LockMgrService uint64 // lock manager processing per request
	BarrierPerProc uint64 // manager processing per arrival (notice merge)
	BarrierBcast   uint64 // release broadcast cost
}

// DefaultParams returns the paper-calibrated cost model.
func DefaultParams() Params {
	return Params{
		PageSize: 4096,

		L2HitCost: 10,
		MemCost:   60,

		FaultOverhead: 2000, // ~10 µs trap + handler entry
		WriteTrap:     2000,
		TwinCost:      1000, // 4 KB copy over the 400 MB/s memory bus
		DiffCreate:    1200,
		DiffApply:     800,
		NoticeCost:    50,
		InvalCost:     150,

		MsgSend:    1000, // ~5 µs software messaging each side
		MsgRecv:    1000,
		NetLatency: 200,  // ~1 µs wire
		PageXfer:   8192, // 4 KB over the 100 MB/s I/O bus
		DiffXfer:   1024,

		HomeService: 500,

		LockMgrService: 500,
		BarrierPerProc: 400,
		BarrierBcast:   1200,
	}
}
