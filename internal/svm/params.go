// Package svm models the paper's shared virtual memory platform: an
// all-software home-based lazy release consistency (HLRC) protocol over a
// Myrinet-like commodity interconnect (paper §2.1.1). Nodes are 200 MHz
// 1-CPI processors with an 8 KB direct-mapped write-through L1 and a 512 KB
// 2-way L2 (32 B lines); pages are 4 KB; the memory bus peaks at 400 MB/s and
// the I/O bus carrying network packets at 100 MB/s.
//
// Protocol mechanics follow HLRC: every page has a home; writers make a twin
// on the first write in an interval, compute diffs against the twin at
// releases, and propagate diffs to the home (only); acquirers receive write
// notices and lazily invalidate their stale copies; a fault after a causally
// related acquire fetches the whole page from the home.
//
// The protocol engine itself lives in internal/protocol (PageEngine); this
// package composes it with one coherence domain per node and the paper's
// node cache hierarchy.
package svm

import "repro/internal/protocol"

// Params are the cycle costs of the model, in 200 MHz processor cycles
// (5 ns). They are chosen to match mid-90s all-software SVM over Myrinet:
// ~65 µs unloaded page fetches, ~25 µs unloaded lock acquires, barriers
// costing tens of microseconds plus flush work.
type Params = protocol.HLRCParams

// DefaultParams returns the paper-calibrated cost model.
func DefaultParams() Params { return protocol.DefaultHLRCParams() }
