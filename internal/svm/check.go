package svm

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// IntervalOverflowError reports that a node's uint32 interval counter was
// about to wrap. Intervals advance at every lock release and barrier arrival
// whether or not anything was written, so a long enough run genuinely reaches
// the limit; wrapping would make interval 0 compare older than the 2^32-1
// intervals it follows and corrupt every vector-clock comparison, so the
// protocol panics instead and the kernel contains it as a ProcPanicError.
// The svmsmp platform reuses this error with Node naming the cluster.
type IntervalOverflowError struct {
	Node int
}

func (e *IntervalOverflowError) Error() string {
	return fmt.Sprintf("svm: interval counter of node %d would overflow uint32 (run too long for 32-bit vector clocks)", e.Node)
}

// CheckInvariants implements sim.InvariantChecked for the HLRC protocol.
// The audited invariants:
//
//   - a node's own vector-clock entry tracks its interval counter, and its
//     write log holds exactly one notice list per closed interval;
//   - no vector clock (per node or per lock) claims knowledge of an interval
//     its producer has not reached (vector-clock monotonicity);
//   - the dirty list is duplicate-free and agrees with the dirty bits, and
//     dirty pages are valid (a twin without a readable copy is meaningless);
//   - twin/diff balance: every twin ever made has either been diffed (at a
//     flush or at an acquire-time invalidation) or is still pending in the
//     open interval (non-home dirty pages) — twins are never dropped
//     without their writes reaching the home;
//   - the diffed-but-unnotified list is duplicate-free and disjoint from
//     the dirty list's un-redirtied entries;
//   - NIC occupancy never exceeds its busy-until clock.
func (s *Platform) CheckInvariants() error {
	for p, n := range s.nodes {
		if n.vc[p] != n.interval {
			return fmt.Errorf("svm: node %d's own vector-clock entry is %d but its interval is %d", p, n.vc[p], n.interval)
		}
		if got, want := len(s.writeLog[p]), int(n.interval)+1; got != want {
			return fmt.Errorf("svm: node %d's write log has %d interval entries, want %d", p, got, want)
		}
		for q, nq := range s.nodes {
			if n.vc[q] > nq.interval {
				return fmt.Errorf("svm: node %d knows interval %d of node %d, which has only reached %d", p, n.vc[q], q, nq.interval)
			}
		}
		seen := make(map[pageID]bool, len(n.dirtyLst))
		var pendingTwins uint64
		for _, pg := range n.dirtyLst {
			if seen[pg] {
				return fmt.Errorf("svm: node %d's dirty list holds page %d twice", p, pg)
			}
			seen[pg] = true
			if !n.dirty[pg] {
				return fmt.Errorf("svm: node %d's dirty list holds page %d but its dirty bit is clear", p, pg)
			}
			if !n.valid[pg] {
				return fmt.Errorf("svm: node %d has page %d dirty but not valid", p, pg)
			}
			if s.as.Home(pg*s.P.PageSize) != p {
				pendingTwins++
			}
		}
		for pg, d := range n.dirty {
			if d && !seen[pageID(pg)] {
				return fmt.Errorf("svm: node %d has page %d marked dirty but missing from the dirty list", p, pg)
			}
		}
		seenPend := make(map[pageID]bool, len(n.pending))
		for _, pg := range n.pending {
			if seenPend[pg] {
				return fmt.Errorf("svm: node %d's pending-notice list holds page %d twice", p, pg)
			}
			seenPend[pg] = true
		}
		c := s.k.Counters(p)
		if c.TwinsMade != c.DiffsCreated+pendingTwins {
			return fmt.Errorf("svm: node %d twin/diff balance broken: %d twins made != %d diffs + %d pending",
				p, c.TwinsMade, c.DiffsCreated, pendingTwins)
		}
		if err := n.nic.CheckOccupancy(fmt.Sprintf("svm: node %d NIC", p)); err != nil {
			return err
		}
	}
	// Sorted lock order so a violating run reports deterministically.
	ids := make([]int, 0, len(s.lockVC))
	for id := range s.lockVC {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		for q, iv := range s.lockVC[id] {
			if iv > s.nodes[q].interval {
				return fmt.Errorf("svm: lock %d's vector clock knows interval %d of node %d, which has only reached %d", id, iv, q, s.nodes[q].interval)
			}
		}
	}
	return nil
}

var _ sim.InvariantChecked = (*Platform)(nil)
