package svm

import (
	"repro/internal/protocol"
	"repro/internal/sim"
)

// IntervalOverflowError reports that a node's uint32 interval counter was
// about to wrap; see protocol.IntervalOverflowError. The svmsmp platform
// reuses this error with Node naming the cluster.
type IntervalOverflowError = protocol.IntervalOverflowError

// CheckInvariants implements sim.InvariantChecked: the HLRC protocol
// invariants, audited once by the page engine for every composition (see
// protocol.PageEngine.CheckInvariants for the list).
func (s *Platform) CheckInvariants() error { return s.eng.CheckInvariants() }

var _ sim.InvariantChecked = (*Platform)(nil)
