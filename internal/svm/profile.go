package svm

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// This file implements the performance-debugging facility the paper wishes
// real SVM systems had (§6): "the detailed simulator served as an excellent
// though slow performance debugging tool ... Incorporating the ability to
// deliver such information in real SVM systems would be very useful." The
// per-page and per-lock counts come from a trace.Counting sink the platform
// installs into the kernel for each run (see Attach), so the same protocol
// event stream that feeds -trace also answers WHERE the page-grained traffic
// comes from, not just how much there is.

// PageProfile summarizes the traffic to one page over a run.
type PageProfile struct {
	Page     uint64
	Home     int
	Fetches  uint64 // remote fetches of this page
	Diffs    uint64 // diffs applied to its home copy
	Writers  int    // distinct nodes that dirtied it
	MaxProcF uint64 // largest per-processor fetch count (imbalance hint)
}

// LockProfile summarizes the traffic to one lock over a run.
type LockProfile struct {
	Lock      int
	Acquires  uint64
	Transfers uint64 // acquisitions by a different node than the releaser
}

// EnableProfiling turns on per-page/per-lock accounting for subsequent runs
// (small host-side cost, no effect on simulated timing).
func (s *Platform) EnableProfiling() { s.profOn = true }

// Counting exposes the run's aggregating trace sink, nil unless
// EnableProfiling was called before the run.
func (s *Platform) Counting() *trace.Counting { return s.counting }

// HotPages returns the n most-fetched pages, most-traffic first.
func (s *Platform) HotPages(n int) []PageProfile {
	if s.counting == nil {
		return nil
	}
	totals := s.counting.PageTotals()
	out := make([]PageProfile, 0, len(totals))
	for _, t := range totals {
		out = append(out, PageProfile{
			Page:     t.Page,
			Home:     s.as.Home(t.Page * s.P.PageSize),
			Fetches:  t.Fetches,
			Diffs:    t.Diffs,
			Writers:  t.Writers,
			MaxProcF: t.MaxProc,
		})
	}
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// HotLocks returns the n most-acquired locks, busiest first.
func (s *Platform) HotLocks(n int) []LockProfile {
	if s.counting == nil {
		return nil
	}
	totals := s.counting.LockTotals()
	out := make([]LockProfile, 0, len(totals))
	for _, t := range totals {
		out = append(out, LockProfile{Lock: t.Lock, Acquires: t.Acquires, Transfers: t.Transfers})
	}
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ProfileReport renders the top-n hot pages and locks as text.
func (s *Platform) ProfileReport(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hot pages (top %d):\n", n)
	fmt.Fprintf(&b, "%10s %5s %8s %8s %8s %8s\n", "page", "home", "fetches", "diffs", "writers", "maxproc")
	for _, pp := range s.HotPages(n) {
		fmt.Fprintf(&b, "%10d %5d %8d %8d %8d %8d\n", pp.Page, pp.Home, pp.Fetches, pp.Diffs, pp.Writers, pp.MaxProcF)
	}
	fmt.Fprintf(&b, "hot locks (top %d):\n", n)
	fmt.Fprintf(&b, "%10s %10s %10s\n", "lock", "acquires", "transfers")
	for _, lp := range s.HotLocks(n) {
		fmt.Fprintf(&b, "%10d %10d %10d\n", lp.Lock, lp.Acquires, lp.Transfers)
	}
	return b.String()
}
