package svm

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the performance-debugging facility the paper wishes
// real SVM systems had (§6): "the detailed simulator served as an excellent
// though slow performance debugging tool ... Incorporating the ability to
// deliver such information in real SVM systems would be very useful." The
// platform keeps per-page fault and per-lock transfer counts so a user can
// see WHERE the page-grained traffic comes from, not just how much there is.

// PageProfile summarizes the traffic to one page over a run.
type PageProfile struct {
	Page     uint64
	Home     int
	Fetches  uint64 // remote fetches of this page
	Diffs    uint64 // diffs applied to its home copy
	Writers  int    // distinct nodes that dirtied it
	MaxProcF uint64 // largest per-processor fetch count (imbalance hint)
}

// LockProfile summarizes the traffic to one lock over a run.
type LockProfile struct {
	Lock      int
	Acquires  uint64
	Transfers uint64 // acquisitions by a different node than the releaser
}

// profiler accumulates per-page and per-lock counts during a run.
type profiler struct {
	pageFetch map[pageID][]uint64 // page -> per-proc fetch counts
	pageDiff  map[pageID]uint64
	pageDirty map[pageID]uint64 // bitmask of writer nodes
	lockAcq   map[int]uint64
	lockXfer  map[int]uint64
}

func newProfiler() *profiler {
	return &profiler{
		pageFetch: map[pageID][]uint64{},
		pageDiff:  map[pageID]uint64{},
		pageDirty: map[pageID]uint64{},
		lockAcq:   map[int]uint64{},
		lockXfer:  map[int]uint64{},
	}
}

// EnableProfiling turns on per-page/per-lock accounting for subsequent runs
// (small host-side cost, no effect on simulated timing).
func (s *Platform) EnableProfiling() { s.prof = newProfiler() }

func (s *Platform) profFetch(p int, pg pageID) {
	if s.prof == nil {
		return
	}
	v := s.prof.pageFetch[pg]
	if v == nil {
		v = make([]uint64, s.np)
		s.prof.pageFetch[pg] = v
	}
	v[p]++
}

func (s *Platform) profDirty(p int, pg pageID) {
	if s.prof == nil {
		return
	}
	s.prof.pageDirty[pg] |= 1 << uint(p)
}

func (s *Platform) profDiff(pg pageID) {
	if s.prof == nil {
		return
	}
	s.prof.pageDiff[pg]++
}

func (s *Platform) profLock(lock int, xfer bool) {
	if s.prof == nil {
		return
	}
	s.prof.lockAcq[lock]++
	if xfer {
		s.prof.lockXfer[lock]++
	}
}

// HotPages returns the n most-fetched pages, most-traffic first.
func (s *Platform) HotPages(n int) []PageProfile {
	if s.prof == nil {
		return nil
	}
	out := make([]PageProfile, 0, len(s.prof.pageFetch))
	for pg, per := range s.prof.pageFetch {
		pp := PageProfile{Page: pg, Home: s.as.Home(pg * s.P.PageSize)}
		for _, c := range per {
			pp.Fetches += c
			if c > pp.MaxProcF {
				pp.MaxProcF = c
			}
		}
		pp.Diffs = s.prof.pageDiff[pg]
		for m := s.prof.pageDirty[pg]; m != 0; m &= m - 1 {
			pp.Writers++
		}
		out = append(out, pp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fetches != out[j].Fetches {
			return out[i].Fetches > out[j].Fetches
		}
		return out[i].Page < out[j].Page
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// HotLocks returns the n most-acquired locks, busiest first.
func (s *Platform) HotLocks(n int) []LockProfile {
	if s.prof == nil {
		return nil
	}
	out := make([]LockProfile, 0, len(s.prof.lockAcq))
	for l, a := range s.prof.lockAcq {
		out = append(out, LockProfile{Lock: l, Acquires: a, Transfers: s.prof.lockXfer[l]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Acquires != out[j].Acquires {
			return out[i].Acquires > out[j].Acquires
		}
		return out[i].Lock < out[j].Lock
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ProfileReport renders the top-n hot pages and locks as text.
func (s *Platform) ProfileReport(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hot pages (top %d):\n", n)
	fmt.Fprintf(&b, "%10s %5s %8s %8s %8s %8s\n", "page", "home", "fetches", "diffs", "writers", "maxproc")
	for _, pp := range s.HotPages(n) {
		fmt.Fprintf(&b, "%10d %5d %8d %8d %8d %8d\n", pp.Page, pp.Home, pp.Fetches, pp.Diffs, pp.Writers, pp.MaxProcF)
	}
	fmt.Fprintf(&b, "hot locks (top %d):\n", n)
	fmt.Fprintf(&b, "%10s %10s %10s\n", "lock", "acquires", "transfers")
	for _, lp := range s.HotLocks(n) {
		fmt.Fprintf(&b, "%10d %10d %10d\n", lp.Lock, lp.Acquires, lp.Transfers)
	}
	return b.String()
}
