package svm

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CacheConfig is the paper's SVM node cache hierarchy.
var CacheConfig = cache.Config{
	L1Size: 8 << 10, L1Assoc: 1,
	L2Size: 512 << 10, L2Assoc: 2,
	Line: 32,
}

// Platform is the HLRC shared-virtual-memory machine: a protocol.PageEngine
// with one coherence domain per node, composed with each node's private
// (coherence-irrelevant) cache hierarchy. The HLRC state machine itself lives
// in internal/protocol; this package wires it to flat node-grained homes and
// keeps the existing API for harness specs, figure cells and memo keys.
type Platform struct {
	P  Params
	as *mem.AddressSpace
	k  *sim.Kernel
	np int
	// pageShift is log2(P.PageSize): page-number extraction sits on the
	// access fast path of every simulated reference, and a shift avoids a
	// 64-bit divide by a non-constant there. levelCost maps a cache.Level
	// to its stall cycles, replacing a switch on the same fast path.
	pageShift uint
	levelCost [3]uint64

	eng    *protocol.PageEngine
	caches []*cache.Hierarchy

	// profOn enables the hot-page/hot-lock profile (the paper's wished-for
	// SVM performance tool; see profile.go). When set, Attach installs a
	// per-run trace.Counting sink into the kernel and HotPages/HotLocks
	// render from it.
	profOn   bool
	counting *trace.Counting
}

// New creates an SVM platform over the given address space for np nodes.
// The page size must be a power of two (it always has been: page-grained
// protocols inherit it from the MMU).
func New(as *mem.AddressSpace, p Params, np int) *Platform {
	s := &Platform{
		P: p, as: as, np: np,
		pageShift: PageShift(p.PageSize),
		levelCost: [3]uint64{cache.L1Hit: 0, cache.L2Hit: p.L2HitCost, cache.Miss: p.MemCost},
	}
	s.eng = protocol.NewPageEngine(protocol.PageConfig{
		Params: p, Domains: np, Host: s,
		CountApplies: true,
		Scope:        "svm", Noun: "node",
	})
	return s
}

// PageShift returns log2(n), panicking unless n is a power of two. Page-
// grained platforms use it to turn per-access page-number divisions into
// shifts.
func PageShift(n uint64) uint { return protocol.PageShift(n) }

// HomeDomain implements protocol.PageHost: flat platform, one domain per
// node, homes straight from the address space's page placement.
func (s *Platform) HomeDomain(addr uint64) int { return s.as.Home(addr) }

// HandlerProc implements protocol.PageHost: a node runs its own handlers.
func (s *Platform) HandlerProc(dom int) int { return dom }

// MemberRange implements protocol.PageHost: a domain is exactly one node.
func (s *Platform) MemberRange(dom int) (int, int) { return dom, dom + 1 }

// PageArrived implements protocol.PageHost: the fetched page's contents
// changed under the node's caches.
func (s *Platform) PageArrived(dom int, pg uint64) {
	s.caches[dom].InvalidateRange(pg*s.P.PageSize, int(s.P.PageSize))
}

// DiffApplied implements protocol.PageHost: the home copy changed under the
// home's caches.
func (s *Platform) DiffApplied(home int, pg uint64) {
	s.caches[home].InvalidateRange(pg*s.P.PageSize, int(s.P.PageSize))
}

// Name implements sim.Platform.
func (s *Platform) Name() string { return "svm" }

// LineSize reports the coherence-irrelevant cache line size used for range
// accesses.
func (s *Platform) LineSize() int { return CacheConfig.Line }

// Attach implements sim.Platform, resetting all protocol state. A platform
// reattached to run again (micro-benchmarks, parameter sweeps on one
// instance) resets its nodes in place — vector clocks, page tables and the
// quarter-megabyte cache tag arrays are cleared, not reallocated — so a
// repeated run allocates nothing and starts from the identical cold state a
// fresh platform would.
func (s *Platform) Attach(k *sim.Kernel) {
	s.k = k
	npages := int(s.as.NumPages()) + 1
	if s.eng.Init(k, npages) {
		for _, h := range s.caches {
			h.Reset()
		}
	} else {
		s.caches = make([]*cache.Hierarchy, s.np)
		for i := range s.caches {
			s.caches[i] = cache.New(CacheConfig)
		}
	}
	if s.profOn {
		s.counting = trace.NewCounting(s.np)
		k.AddRunSink(s.counting)
	}
}

// Prevalidate implements sim.Prevalidator: pages of [addr, addr+n) get a
// valid (clean) copy at node, modelling data placed during untimed setup.
func (s *Platform) Prevalidate(addr uint64, nbytes int, nd int) {
	s.eng.Prevalidate(addr, nbytes, nd)
}

// FastAccess implements sim.Platform: hits on valid pages (and writes on
// already-dirty pages) are purely local.
func (s *Platform) FastAccess(p int, now uint64, addr uint64, write bool) (uint64, bool) {
	d := s.eng.Doms[p]
	pg := addr >> s.pageShift
	if pg >= uint64(len(d.Valid)) || !d.Valid[pg] {
		return 0, false
	}
	if write && !d.Dirty[pg] {
		return 0, false // needs a write trap + twin
	}
	lvl, _ := s.caches[p].Access(addr, write, cache.Exclusive)
	return s.levelCost[lvl], true
}

// FastRange implements sim.RangeAccessor: it processes the fast-path prefix
// of a line-aligned batch [addr, end) in one call — per line exactly what
// FastAccess does — and stops at the first line of a page that would fault
// or write-trap, without touching that page's state. The page-table check
// hoists from per line to per page; the cache walk per line is unchanged,
// so simulated cost and cache evolution are bit-identical to the scalar
// path.
func (s *Platform) FastRange(p int, now uint64, addr, end uint64, write bool) (int, uint64) {
	d := s.eng.Doms[p]
	h := s.caches[p]
	line := uint64(CacheConfig.Line)
	count := 0
	var stall uint64
	for addr < end {
		pg := addr >> s.pageShift
		if pg >= uint64(len(d.Valid)) || !d.Valid[pg] {
			break
		}
		if write && !d.Dirty[pg] {
			break
		}
		stop := (pg + 1) << s.pageShift
		if end < stop {
			stop = end
		}
		for addr < stop {
			lvl, _ := h.Access(addr, write, cache.Exclusive)
			switch lvl {
			case cache.L2Hit:
				stall += s.P.L2HitCost
			case cache.Miss:
				stall += s.P.MemCost
			}
			count++
			addr += line
		}
	}
	return count, stall
}

// SlowAccess implements sim.Platform: page faults (fetch from home) and
// first-write traps (twin creation), priced by the page engine; the local
// cache walk follows as on the fast path.
func (s *Platform) SlowAccess(p int, now uint64, addr uint64, write bool) sim.AccessCost {
	d := s.eng.Doms[p]
	pg := addr >> s.pageShift
	s.eng.EnsurePage(p, pg)
	var cost sim.AccessCost
	if !d.Valid[pg] {
		cost.DataWait += s.eng.Fault(p, p, now, addr)
	}
	if write && !d.Dirty[pg] {
		cost.Handler += s.eng.Trap(p, p, now, addr)
	}
	lvl, _ := s.caches[p].Access(addr, write, cache.Exclusive)
	switch lvl {
	case cache.L2Hit:
		cost.CacheStall += s.P.L2HitCost
	case cache.Miss:
		cost.CacheStall += s.P.MemCost
	}
	return cost
}

// LockRequest implements sim.Platform: the acquirer sends a request to the
// lock's manager, which forwards it toward the holder.
func (s *Platform) LockRequest(p int, now uint64, lock int) uint64 {
	mgr := lock % s.np
	s.k.ChargeHandler(mgr, s.P.MsgRecv+s.P.LockMgrService)
	s.k.Counters(p).RemoteLockMsgs++
	return s.P.MsgSend + s.P.NetLatency
}

// LockGrant implements sim.Platform: the grant message carries the
// releaser's vector clock; the acquirer applies the corresponding write
// notices (lazy invalidation).
func (s *Platform) LockGrant(p int, now uint64, lock int, prevHolder int) uint64 {
	cost := s.P.NetLatency + s.P.MsgRecv // grant message
	if prevHolder >= 0 && prevHolder != p {
		cost += s.P.MsgSend + s.P.NetLatency + s.P.MsgRecv // manager->holder hop
	}
	return cost + s.eng.AcquireApply(lock, p, p, now)
}

// LockRelease implements sim.Platform: HLRC propagates diffs to homes at
// release; the release itself is local (lazy protocol).
func (s *Platform) LockRelease(p int, now uint64, lock int) (syncC, handler, freeDelay uint64) {
	handler = s.eng.Flush(p, p, now)
	s.eng.SaveLockVC(lock, p)
	return 100, handler, 0
}

// BarrierArrive implements sim.Platform: arrival flushes diffs to homes and
// sends the arrival message with write notices to the barrier manager.
func (s *Platform) BarrierArrive(p int, now uint64) (syncC, handler uint64) {
	handler = s.eng.Flush(p, p, now)
	return s.P.MsgSend + s.P.NetLatency, handler
}

// BarrierRelease implements sim.Platform: the manager serially processes one
// arrival message per processor (merging write notices), then broadcasts the
// release.
func (s *Platform) BarrierRelease(arrivals []uint64, manager int) uint64 {
	return s.eng.ReleaseWork(arrivals, manager, len(arrivals))
}

// BarrierDepart implements sim.Platform: on departure every node has merged
// every other node's vector clock; stale copies are invalidated.
func (s *Platform) BarrierDepart(p int, releaseTime uint64) uint64 {
	return s.P.MsgRecv + s.eng.DepartApply(p, p, releaseTime)
}

var (
	_ sim.Platform      = (*Platform)(nil)
	_ sim.Prevalidator  = (*Platform)(nil)
	_ sim.RangeAccessor = (*Platform)(nil)
	_ protocol.PageHost = (*Platform)(nil)
)
