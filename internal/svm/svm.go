package svm

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CacheConfig is the paper's SVM node cache hierarchy.
var CacheConfig = cache.Config{
	L1Size: 8 << 10, L1Assoc: 1,
	L2Size: 512 << 10, L2Assoc: 2,
	Line: 32,
}

type pageID = uint64

// node holds one processor's protocol state.
type node struct {
	vc       []uint32 // vector clock: latest interval of each node known here
	interval uint32   // own current interval
	valid    []bool   // per page: is a copy readable here
	dirty    []bool   // per page: twin exists (written in current interval)
	dirtyLst []pageID
	// pending lists pages whose diff was already flushed home by an
	// acquire-time invalidation in the still-open interval; the next flush
	// publishes their write notices without diffing them again.
	pending []pageID
	cache   *cache.Hierarchy
	nic     sim.Resource // NIC + protocol handler occupancy for incoming requests
}

// Platform is the HLRC shared-virtual-memory machine model.
type Platform struct {
	P  Params
	as *mem.AddressSpace
	k  *sim.Kernel
	np int
	// pageShift is log2(P.PageSize): page-number extraction sits on the
	// access fast path of every simulated reference, and a shift avoids a
	// 64-bit divide by a non-constant there. levelCost maps a cache.Level
	// to its stall cycles, replacing a switch on the same fast path.
	pageShift uint
	levelCost [3]uint64
	nodes     []*node
	// npagesAlloc is the page-table size the nodes were built with; Attach
	// reuses them in place while the address space still fits.
	npagesAlloc int

	// writeLog[q][i] lists pages node q flushed in interval i; acquirers
	// walk the intervals their vector clock advances over and invalidate
	// those pages (the write notices of LRC).
	writeLog [][][]pageID

	// lockVC[id] is the releaser's vector clock at the last release of
	// lock id, transferred to the next acquirer.
	lockVC map[int][]uint32

	// profOn enables the hot-page/hot-lock profile (the paper's wished-for
	// SVM performance tool; see profile.go). When set, Attach installs a
	// per-run trace.Counting sink into the kernel and HotPages/HotLocks
	// render from it.
	profOn   bool
	counting *trace.Counting
}

// New creates an SVM platform over the given address space for np nodes.
// The page size must be a power of two (it always has been: page-grained
// protocols inherit it from the MMU).
func New(as *mem.AddressSpace, p Params, np int) *Platform {
	return &Platform{
		P: p, as: as, np: np,
		pageShift: PageShift(p.PageSize),
		levelCost: [3]uint64{cache.L1Hit: 0, cache.L2Hit: p.L2HitCost, cache.Miss: p.MemCost},
	}
}

// PageShift returns log2(n), panicking unless n is a power of two. Page-
// grained platforms use it to turn per-access page-number divisions into
// shifts.
func PageShift(n uint64) uint {
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("svm: page size %d is not a power of two", n))
	}
	for sh := uint(0); ; sh++ {
		if 1<<sh == n {
			return sh
		}
	}
}

// Name implements sim.Platform.
func (s *Platform) Name() string { return "svm" }

// LineSize reports the coherence-irrelevant cache line size used for range
// accesses.
func (s *Platform) LineSize() int { return CacheConfig.Line }

// Attach implements sim.Platform, resetting all protocol state. A platform
// reattached to run again (micro-benchmarks, parameter sweeps on one
// instance) resets its nodes in place — vector clocks, page tables and the
// quarter-megabyte cache tag arrays are cleared, not reallocated — so a
// repeated run allocates nothing and starts from the identical cold state a
// fresh platform would.
func (s *Platform) Attach(k *sim.Kernel) {
	s.k = k
	npages := int(s.as.NumPages()) + 1
	if len(s.nodes) == s.np && npages <= s.npagesAlloc {
		for _, n := range s.nodes {
			clear(n.vc)
			n.interval = 0
			clear(n.valid)
			clear(n.dirty)
			n.dirtyLst = n.dirtyLst[:0]
			n.pending = n.pending[:0]
			n.cache.Reset()
			n.nic = sim.Resource{}
		}
		for i := range s.writeLog {
			s.writeLog[i] = append(s.writeLog[i][:0], nil) // interval 0
		}
		clear(s.lockVC)
	} else {
		s.nodes = make([]*node, s.np)
		for i := 0; i < s.np; i++ {
			n := &node{
				vc:    make([]uint32, s.np),
				valid: make([]bool, npages),
				dirty: make([]bool, npages),
				cache: cache.New(CacheConfig),
			}
			s.nodes[i] = n
		}
		s.writeLog = make([][][]pageID, s.np)
		for i := range s.writeLog {
			s.writeLog[i] = [][]pageID{nil} // interval 0
		}
		s.lockVC = map[int][]uint32{}
		s.npagesAlloc = npages
	}
	if s.profOn {
		s.counting = trace.NewCounting(s.np)
		k.AddRunSink(s.counting)
	}
	// Home copies are valid at their homes from the start (untimed
	// initialization, as in the paper).
	for pg := 0; pg < npages; pg++ {
		h := s.as.Home(uint64(pg) * s.P.PageSize)
		if h < s.np {
			s.nodes[h].valid[pg] = true
		}
	}
}

func (s *Platform) ensurePage(n *node, pg pageID) {
	for uint64(len(n.valid)) <= pg {
		n.valid = append(n.valid, false)
		n.dirty = append(n.dirty, false)
	}
}

// Prevalidate implements sim.Prevalidator: pages of [addr, addr+n) get a
// valid (clean) copy at node, modelling data placed during untimed setup.
func (s *Platform) Prevalidate(addr uint64, nbytes int, nd int) {
	if nd < 0 || nd >= s.np {
		return
	}
	first := addr >> s.pageShift
	last := (addr + uint64(nbytes) - 1) >> s.pageShift
	n := s.nodes[nd]
	for pg := first; pg <= last; pg++ {
		s.ensurePage(n, pg)
		n.valid[pg] = true
	}
}

// FastAccess implements sim.Platform: hits on valid pages (and writes on
// already-dirty pages) are purely local.
func (s *Platform) FastAccess(p int, now uint64, addr uint64, write bool) (uint64, bool) {
	n := s.nodes[p]
	pg := addr >> s.pageShift
	if pg >= uint64(len(n.valid)) || !n.valid[pg] {
		return 0, false
	}
	if write && !n.dirty[pg] {
		return 0, false // needs a write trap + twin
	}
	lvl, _ := n.cache.Access(addr, write, cache.Exclusive)
	return s.levelCost[lvl], true
}

// FastRange implements sim.RangeAccessor: it processes the fast-path prefix
// of a line-aligned batch [addr, end) in one call — per line exactly what
// FastAccess does — and stops at the first line of a page that would fault
// or write-trap, without touching that page's state. The page-table check
// hoists from per line to per page; the cache walk per line is unchanged,
// so simulated cost and cache evolution are bit-identical to the scalar
// path.
func (s *Platform) FastRange(p int, now uint64, addr, end uint64, write bool) (int, uint64) {
	n := s.nodes[p]
	line := uint64(CacheConfig.Line)
	count := 0
	var stall uint64
	for addr < end {
		pg := addr >> s.pageShift
		if pg >= uint64(len(n.valid)) || !n.valid[pg] {
			break
		}
		if write && !n.dirty[pg] {
			break
		}
		stop := (pg + 1) << s.pageShift
		if end < stop {
			stop = end
		}
		for addr < stop {
			lvl, _ := n.cache.Access(addr, write, cache.Exclusive)
			switch lvl {
			case cache.L2Hit:
				stall += s.P.L2HitCost
			case cache.Miss:
				stall += s.P.MemCost
			}
			count++
			addr += line
		}
	}
	return count, stall
}

// SlowAccess implements sim.Platform: page faults (fetch from home) and
// first-write traps (twin creation).
func (s *Platform) SlowAccess(p int, now uint64, addr uint64, write bool) sim.AccessCost {
	n := s.nodes[p]
	pg := addr >> s.pageShift
	s.ensurePage(n, pg)
	c := s.k.Counters(p)
	var cost sim.AccessCost

	if !n.valid[pg] {
		// Remote page fault: fetch the whole page from the home.
		c.PageFaults++
		s.k.Emit(trace.PageFault, p, now, pg, 0)
		home := s.as.Home(addr)
		if home == p {
			// Home lost validity? Homes never invalidate their own
			// pages in this model, so this means a never-touched
			// page past the prevalidated range; treat as local.
			n.valid[pg] = true
		} else {
			c.PageFetches++
			hc := s.k.Counters(home)
			hc.PagesServed++
			reqArrive := now + s.P.FaultOverhead + s.P.MsgSend + s.P.NetLatency
			service := s.P.MsgRecv + s.P.HomeService + s.P.PageXfer
			start := s.nodes[home].nic.Acquire(reqArrive, service)
			s.k.ChargeHandler(home, service)
			// The page crosses the requester's I/O bus too before the
			// faulting processor can be resumed.
			done := start + service + s.P.NetLatency + s.P.PageXfer + s.P.MsgRecv
			cost.DataWait += done - now
			s.k.Emit(trace.PageFetch, p, now, pg, done-now)
			s.k.Emit(trace.NICOccupy, home, start, pg, service)
			n.valid[pg] = true
			n.dirty[pg] = false
			// The page contents changed under the caches.
			n.cache.InvalidateRange(pg*s.P.PageSize, int(s.P.PageSize))
		}
	}

	if write && !n.dirty[pg] && s.np > 1 {
		// First write in this interval: write trap; non-home writers
		// also make a twin for later diffing. A uniprocessor run has
		// no coherence to maintain, so pages are never write-protected
		// (the paper's sequential baseline is plain execution).
		cost.Handler += s.P.WriteTrap
		s.k.Emit(trace.WriteTrap, p, now, pg, s.P.WriteTrap)
		if s.as.Home(addr) != p {
			cost.Handler += s.P.TwinCost
			c.TwinsMade++
			s.k.Emit(trace.TwinCreate, p, now, pg, s.P.TwinCost)
		}
		n.dirty[pg] = true
		n.dirtyLst = append(n.dirtyLst, pg)
	}

	lvl, _ := n.cache.Access(addr, write, cache.Exclusive)
	switch lvl {
	case cache.L2Hit:
		cost.CacheStall += s.P.L2HitCost
	case cache.Miss:
		cost.CacheStall += s.P.MemCost
	}
	return cost
}

// diffHome computes the diff of page pg against its twin, ships it to the
// page's home and has the home apply it (updating the home copy under the
// home's caches). It returns the cycles spent on the diffing node p; the
// home's receive/apply work is charged asynchronously to the home.
func (s *Platform) diffHome(p int, pg pageID, now uint64) (local uint64) {
	home := s.as.Home(pg * s.P.PageSize)
	s.k.Counters(p).DiffsCreated++
	local = s.P.DiffCreate + s.P.MsgSend
	s.k.Emit(trace.DiffCreate, p, now+local, pg, s.P.DiffCreate)
	s.k.Counters(home).DiffsApplied++
	service := s.P.MsgRecv + s.P.DiffXfer + s.P.DiffApply
	start := s.nodes[home].nic.Acquire(now+local+s.P.NetLatency, service)
	s.k.ChargeHandler(home, service)
	s.k.Emit(trace.DiffApply, home, start, pg, service)
	s.k.Emit(trace.NICOccupy, home, start, pg, service)
	s.nodes[home].cache.InvalidateRange(pg*s.P.PageSize, int(s.P.PageSize))
	return local
}

// flush computes diffs for all pages dirtied in the current interval, sends
// them to their homes, logs write notices, and opens a new interval. It
// returns the handler cycles spent by the flushing node.
func (s *Platform) flush(p int, now uint64) (handler uint64) {
	n := s.nodes[p]
	var log []pageID
	// Pages whose diff already went home at an acquire-time invalidation
	// still owe a write notice in this interval; re-dirtied ones are
	// covered by the dirty-list walk below.
	for _, pg := range n.pending {
		if n.dirty[pg] {
			continue
		}
		log = append(log, pg)
		handler += s.P.NoticeCost
		s.k.Emit(trace.WriteNotice, p, now+handler, pg, s.P.NoticeCost)
	}
	n.pending = n.pending[:0]
	for _, pg := range n.dirtyLst {
		n.dirty[pg] = false
		log = append(log, pg)
		handler += s.P.NoticeCost
		s.k.Emit(trace.WriteNotice, p, now+handler, pg, s.P.NoticeCost)
		if s.as.Home(pg*s.P.PageSize) != p {
			// Diff against the twin, ship to home, home applies.
			handler += s.diffHome(p, pg, now+handler)
		}
	}
	n.dirtyLst = n.dirtyLst[:0]
	s.writeLog[p] = append(s.writeLog[p], log)
	if n.interval == math.MaxUint32 {
		// Intervals advance at every release and barrier arrival whether or
		// not anything was written, so a long enough run genuinely gets
		// here. Wrapping would silently reorder the vector clocks (interval
		// 0 would compare older than everything it follows), so fail loudly;
		// the kernel contains the panic as a ProcPanicError.
		panic(&IntervalOverflowError{Node: p})
	}
	n.interval++
	n.vc[p] = n.interval
	return handler
}

// removeDirty drops pg from the node's pending-flush list, preserving the
// order of the remaining entries (flush walks the list in order, so its
// order is part of the run's determinism).
func (n *node) removeDirty(pg pageID) {
	for i, d := range n.dirtyLst {
		if d == pg {
			n.dirtyLst = append(n.dirtyLst[:i], n.dirtyLst[i+1:]...)
			return
		}
	}
}

// addPending records pg as diffed-but-unnotified in the open interval. A page
// can be invalidated while dirty more than once per interval (re-fetch and
// re-write between two acquires), so membership is checked to keep the list
// duplicate-free — one notice per page per interval.
func (n *node) addPending(pg pageID) {
	for _, q := range n.pending {
		if q == pg {
			return
		}
	}
	n.pending = append(n.pending, pg)
}

// invalidateUpTo advances node p's knowledge of q to interval upTo,
// invalidating p's copies of every page q flushed in the newly covered
// intervals (the Invalidate trace events land at virtual time now). Returns
// the number of pages actually invalidated and the cycles node p spent
// flushing diffs of dirty pages home before dropping them.
func (s *Platform) invalidateUpTo(p, q int, upTo uint32, now uint64) (inv int, diffC uint64) {
	if p == q {
		return 0, 0
	}
	n := s.nodes[p]
	for i := n.vc[q] + 1; i <= upTo; i++ {
		if int(i) >= len(s.writeLog[q]) {
			break
		}
		for _, pg := range s.writeLog[q][i] {
			s.ensurePage(n, pg)
			// The home keeps its copy up to date by applying
			// diffs; everyone else invalidates.
			if s.as.Home(pg*s.P.PageSize) == p {
				continue
			}
			if n.valid[pg] {
				if n.dirty[pg] {
					// The page was written here in the still-open
					// interval. A multiple-writer protocol must not lose
					// those writes: compute the diff against the twin and
					// flush it home before dropping the copy
					// (TreadMarks-style diff-on-invalidate; word-grained
					// diffs merge at the home, which is what makes
					// falsely-shared pages safe). The write notice is
					// still published when the interval closes. Leaving
					// the entry in dirtyLst instead would flush a diff
					// for an invalid page — and a re-write after a
					// refetch would append a duplicate entry,
					// double-counting the diff.
					diffC += s.diffHome(p, pg, now+diffC)
					n.removeDirty(pg)
					n.addPending(pg)
				}
				n.valid[pg] = false
				n.dirty[pg] = false
				inv++
				s.k.Emit(trace.Invalidate, p, now, pg, s.P.InvalCost)
			}
		}
	}
	if upTo > n.vc[q] {
		n.vc[q] = upTo
	}
	return inv, diffC
}

// LockRequest implements sim.Platform: the acquirer sends a request to the
// lock's manager, which forwards it toward the holder.
func (s *Platform) LockRequest(p int, now uint64, lock int) uint64 {
	mgr := lock % s.np
	s.k.ChargeHandler(mgr, s.P.MsgRecv+s.P.LockMgrService)
	s.k.Counters(p).RemoteLockMsgs++
	return s.P.MsgSend + s.P.NetLatency
}

// LockGrant implements sim.Platform: the grant message carries the
// releaser's vector clock; the acquirer applies the corresponding write
// notices (lazy invalidation).
func (s *Platform) LockGrant(p int, now uint64, lock int, prevHolder int) uint64 {
	cost := s.P.NetLatency + s.P.MsgRecv // grant message
	if prevHolder >= 0 && prevHolder != p {
		cost += s.P.MsgSend + s.P.NetLatency + s.P.MsgRecv // manager->holder hop
	}
	if rvc, ok := s.lockVC[lock]; ok {
		inv := 0
		var diff uint64
		for q := 0; q < s.np; q++ {
			i, diffC := s.invalidateUpTo(p, q, rvc[q], now+diff)
			inv += i
			diff += diffC
		}
		// Diff work is protocol-handler time, charged asynchronously like
		// the release-side flush — it must not serialize lock handoffs.
		s.k.ChargeHandler(p, diff)
		cost += uint64(inv) * s.P.InvalCost
		s.k.Counters(p).Invalidations += uint64(inv)
	}
	return cost
}

// LockRelease implements sim.Platform: HLRC propagates diffs to homes at
// release; the release itself is local (lazy protocol).
func (s *Platform) LockRelease(p int, now uint64, lock int) (syncC, handler, freeDelay uint64) {
	handler = s.flush(p, now)
	// Reuse the lock's release-VC backing array: LockGrant consumes the
	// values synchronously before the next release of the same lock can
	// overwrite them, and the map already held last-release-wins semantics.
	rvc := s.lockVC[lock]
	if rvc == nil {
		rvc = make([]uint32, s.np)
		s.lockVC[lock] = rvc
	}
	copy(rvc, s.nodes[p].vc)
	return 100, handler, 0
}

// BarrierArrive implements sim.Platform: arrival flushes diffs to homes and
// sends the arrival message with write notices to the barrier manager.
func (s *Platform) BarrierArrive(p int, now uint64) (syncC, handler uint64) {
	handler = s.flush(p, now)
	return s.P.MsgSend + s.P.NetLatency, handler
}

// BarrierRelease implements sim.Platform: the manager serially processes one
// arrival message per processor (merging write notices), then broadcasts the
// release.
func (s *Platform) BarrierRelease(arrivals []uint64, manager int) uint64 {
	var maxArr uint64
	for _, a := range arrivals {
		if a > maxArr {
			maxArr = a
		}
	}
	mgrWork := uint64(len(arrivals)) * (s.P.MsgRecv/4 + s.P.BarrierPerProc)
	if manager >= 0 && manager < s.np {
		s.k.ChargeHandler(manager, mgrWork)
	}
	return maxArr + mgrWork + s.P.BarrierBcast + s.P.NetLatency
}

// BarrierDepart implements sim.Platform: on departure every node has merged
// every other node's vector clock; stale copies are invalidated.
func (s *Platform) BarrierDepart(p int, releaseTime uint64) uint64 {
	inv := 0
	var diff uint64
	for q := 0; q < s.np; q++ {
		if q == p {
			continue
		}
		// Arrival flushed this node's dirty pages, so diffC is zero here in
		// practice; accounted anyway for symmetry with LockGrant.
		i, diffC := s.invalidateUpTo(p, q, s.nodes[q].vc[q], releaseTime+diff)
		inv += i
		diff += diffC
	}
	s.k.ChargeHandler(p, diff)
	s.k.Counters(p).Invalidations += uint64(inv)
	return s.P.MsgRecv + uint64(inv)*s.P.InvalCost
}

var (
	_ sim.Platform      = (*Platform)(nil)
	_ sim.Prevalidator  = (*Platform)(nil)
	_ sim.RangeAccessor = (*Platform)(nil)
)
