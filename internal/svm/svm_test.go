package svm

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

func setup(np int) (*mem.AddressSpace, *Platform, *sim.Kernel) {
	as := mem.NewAddressSpace(4096, np)
	p := New(as, DefaultParams(), np)
	k := sim.New(p, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager})
	return as, p, k
}

func TestLocalAccessIsCheap(t *testing.T) {
	as, _, k := setup(2)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("local", func(p *sim.Proc) {
		if p.ID() == 0 {
			p.Read(a)
			p.Read(a) // cache hit
		}
		p.Barrier()
	})
	c := run.Procs[0].Counters
	if c.PageFaults != 0 {
		t.Errorf("home-node access took %d page faults", c.PageFaults)
	}
	if run.Procs[0].Cycles[stats.DataWait] != 0 {
		t.Error("home-node access charged data wait")
	}
}

func TestRemotePageFaultCostAndCount(t *testing.T) {
	as, _, k := setup(2)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("remote", func(p *sim.Proc) {
		if p.ID() == 1 {
			p.Read(a)
			p.Read(a + 64) // second access: page now valid
		}
		p.Barrier()
	})
	c := run.Procs[1].Counters
	if c.PageFaults != 1 || c.PageFetches != 1 {
		t.Errorf("faults=%d fetches=%d, want 1/1", c.PageFaults, c.PageFetches)
	}
	dw := run.Procs[1].Cycles[stats.DataWait]
	// Unloaded fetch: fault overhead + messaging + page transfer on both
	// I/O buses — roughly 100-150 µs at 200 MHz, i.e. 20k-30k cycles.
	if dw < 18000 || dw > 32000 {
		t.Errorf("page fetch data wait = %d cycles, want ~20k-30k", dw)
	}
	// The home served the page: it gets handler time.
	if run.Procs[0].Counters.PagesServed != 1 {
		t.Error("home did not record serving the page")
	}
	if run.Procs[0].Cycles[stats.Handler] == 0 {
		t.Error("home charged no handler time for serving")
	}
}

func TestFirstWriteMakesTwin(t *testing.T) {
	as, _, k := setup(2)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("twin", func(p *sim.Proc) {
		if p.ID() == 1 {
			p.Read(a)      // fetch page
			p.Write(a)     // first write: trap + twin
			p.Write(a + 8) // already dirty: no more protocol work
		}
		p.Barrier()
	})
	if got := run.Procs[1].Counters.TwinsMade; got != 1 {
		t.Errorf("twins = %d, want 1", got)
	}
}

func TestHomeWriterMakesNoTwin(t *testing.T) {
	as, _, k := setup(2)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("hometwin", func(p *sim.Proc) {
		if p.ID() == 0 {
			p.Write(a)
		}
		p.Barrier()
	})
	if got := run.Procs[0].Counters.TwinsMade; got != 0 {
		t.Errorf("home writer made %d twins, want 0", got)
	}
}

func TestBarrierPropagatesWritesAndInvalidates(t *testing.T) {
	as, _, k := setup(2)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("coherence", func(p *sim.Proc) {
		if p.ID() == 1 {
			p.Read(a) // fetch
		}
		p.Barrier()
		if p.ID() == 0 {
			p.Write(a) // home writes (no diff needed, but notice logged)
		}
		p.Barrier()
		if p.ID() == 1 {
			p.Read(a) // must re-fetch: copy invalidated by notice
		}
		p.Barrier()
	})
	c := run.Procs[1].Counters
	if c.PageFetches != 2 {
		t.Errorf("proc 1 fetched %d times, want 2 (copy invalidated at barrier)", c.PageFetches)
	}
	if c.Invalidations == 0 {
		t.Error("no invalidations recorded at barrier")
	}
}

func TestDiffFlushedToHomeAtRelease(t *testing.T) {
	as, _, k := setup(2)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("diff", func(p *sim.Proc) {
		if p.ID() == 1 {
			p.Lock(1)
			p.Write(a)  // fetch + twin + dirty
			p.Unlock(1) // diff created, sent to home
		}
		p.Barrier()
	})
	if got := run.Procs[1].Counters.DiffsCreated; got != 1 {
		t.Errorf("diffs created = %d, want 1", got)
	}
	if got := run.Procs[0].Counters.DiffsApplied; got != 1 {
		t.Errorf("diffs applied at home = %d, want 1", got)
	}
}

func TestLazyInvalidationOnlyThroughLock(t *testing.T) {
	// LRC: a third processor that does NOT synchronize keeps reading its
	// (stale) copy without faulting.
	as, _, k := setup(3)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("lazy", func(p *sim.Proc) {
		switch p.ID() {
		case 1:
			p.Read(a) // get a copy
			p.Lock(1)
			p.Unlock(1)
			p.Read(a) // writer's notices only visible via lock 1
		case 2:
			p.Read(a) // get a copy
			p.Lock(1)
			p.Write(a)
			p.Unlock(1)
			p.Read(a) // own dirty copy: no fault
		}
		p.Barrier()
	})
	// Proc 2 fetched once; proc 1 fetched once, then re-fetched only if
	// its acquire happened after proc 2's release (ordering-dependent:
	// either 1 or 2 fetches, never more).
	if got := run.Procs[2].Counters.PageFetches; got != 1 {
		t.Errorf("writer fetched %d, want exactly 1", got)
	}
	if got := run.Procs[1].Counters.PageFetches; got > 2 {
		t.Errorf("reader fetched %d, want <= 2", got)
	}
}

func TestLockTransfersWriteNotices(t *testing.T) {
	// Sequenced by lock handoff: proc 0 writes under lock, proc 1 then
	// acquires the same lock and must see its copy invalidated.
	as, _, k := setup(2)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("notices", func(p *sim.Proc) {
		if p.ID() == 1 {
			p.Read(a) // copy at proc 1
		}
		p.Barrier()
		if p.ID() == 0 {
			p.Lock(5)
			p.Write(a)
			p.Unlock(5)
		}
		p.Barrier() // ensures 0's release precedes 1's acquire
		if p.ID() == 1 {
			p.Lock(5)
			p.Read(a) // must fault: invalidated by write notice
			p.Unlock(5)
		}
		p.Barrier()
	})
	if got := run.Procs[1].Counters.PageFetches; got != 2 {
		t.Errorf("reader fetched %d pages, want 2", got)
	}
}

func TestPrevalidateAvoidsFetch(t *testing.T) {
	as, plat, k := setup(2)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("warm", func(p *sim.Proc) {
		if p.ID() == 1 {
			sim.WarmPages(p.Kernel(), a, 4096, 1)
			p.Read(a)
		}
		p.Barrier()
	})
	_ = plat
	if got := run.Procs[1].Counters.PageFetches; got != 0 {
		t.Errorf("prevalidated page fetched %d times, want 0", got)
	}
}

func TestContentionAtHomeSerializesFetches(t *testing.T) {
	// Many processors fault on pages of the same home at once; the
	// average fetch cost must exceed the unloaded cost.
	np := 8
	as, _, k := setup(np)
	n := 4096 * np
	a := as.AllocPages(n)
	as.SetHome(a, n, 0)
	run := k.Run("contention", func(p *sim.Proc) {
		if p.ID() != 0 {
			p.Read(a + uint64(p.ID())*4096)
		}
		p.Barrier()
	})
	var loaded uint64
	for i := 1; i < np; i++ {
		loaded += run.Procs[i].Cycles[stats.DataWait]
	}
	loaded /= uint64(np - 1)

	// Unloaded: one lone fetch.
	as2, _, k2 := setup(np)
	a2 := as2.AllocPages(4096)
	as2.SetHome(a2, 4096, 0)
	run2 := k2.Run("unloaded", func(p *sim.Proc) {
		if p.ID() == 1 {
			p.Read(a2)
		}
		p.Barrier()
	})
	unloaded := run2.Procs[1].Cycles[stats.DataWait]
	if loaded <= unloaded {
		t.Errorf("no contention effect: loaded avg %d <= unloaded %d", loaded, unloaded)
	}
}

func TestFreeCSFaultsDiagnostic(t *testing.T) {
	// The paper's diagnostic: page faults inside critical sections cost
	// nothing, so the dilation disappears.
	mk := func(free bool) uint64 {
		as := mem.NewAddressSpace(4096, 2)
		a := as.AllocPages(4096)
		as.SetHome(a, 4096, 0)
		plat := New(as, DefaultParams(), 2)
		k := sim.New(plat, sim.Config{NumProcs: 2, FreeCSFaults: free})
		run := k.Run("x", func(p *sim.Proc) {
			if p.ID() == 1 {
				p.Lock(1)
				p.Read(a)
				p.Unlock(1)
			}
			p.Barrier()
		})
		return run.Procs[1].Cycles[stats.DataWait]
	}
	if withFault, free := mk(false), mk(true); free != 0 || withFault == 0 {
		t.Errorf("FreeCSFaults: normal=%d free=%d, want >0 and 0", withFault, free)
	}
}

func TestBarrierManagerChargedHandlerTime(t *testing.T) {
	np := 16
	as, _, _ := setup(np)
	plat := New(as, DefaultParams(), np)
	k := sim.New(plat, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager})
	run := k.Run("mgr", func(p *sim.Proc) {
		p.Barrier()
		p.Compute(10)
		p.Barrier()
	})
	mgr := k.Config().BarrierManager
	if mgr != 10 {
		t.Fatalf("manager = %d, want 10", mgr)
	}
	if run.Procs[mgr].Cycles[stats.Handler] == 0 {
		t.Error("barrier manager charged no handler time")
	}
	for i := 0; i < np; i++ {
		if i != mgr && run.Procs[i].Cycles[stats.Handler] > run.Procs[mgr].Cycles[stats.Handler] {
			t.Errorf("proc %d has more handler time than the manager", i)
		}
	}
}
