package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Cluster. The zero value of each optional field
// selects the documented default.
type Config struct {
	// Self is this node's advertised address (required), e.g.
	// "127.0.0.1:8080". It must be the address peers would dial; it is
	// added to Peers if absent.
	Self string
	// Peers is the static membership list: every member's advertised
	// address, normally including Self. Order does not matter — placement
	// is determined by the sorted member set.
	Peers []string
	// VNodes is the virtual-node count per member (default DefaultVNodes).
	VNodes int
	// ProbeInterval is how often each peer's /healthz is probed once Start
	// is called (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip (default 1s).
	ProbeTimeout time.Duration
	// Client issues probes; nil means a dedicated client with
	// ProbeTimeout. Tests inject one to fake peer health.
	Client *http.Client
}

// peer is one remote member's probed state. Peers start up (optimistic):
// a fleet that has not probed yet routes normally, and the first failed
// probe — or a failed forward, which the serving layer survives by local
// fallback — corrects the optimism.
type peer struct {
	addr string
	up   atomic.Bool
}

// Cluster is the membership view one node holds: the ring over all
// members plus the live/down state of every remote peer. All methods are
// safe for concurrent use.
type Cluster struct {
	self          string
	ring          *Ring
	peers         map[string]*peer // remote members only (not self)
	client        *http.Client
	probeInterval time.Duration

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New validates cfg and builds the cluster view. It does not start
// probing; call Start for that (a cluster that never probes treats every
// peer as up, which is exactly right for in-process test fleets).
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Self address is required")
	}
	members := append([]string{cfg.Self}, cfg.Peers...)
	ring := NewRing(members, cfg.VNodes)
	if len(ring.Members()) < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 distinct members, got %v", ring.Members())
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.ProbeTimeout}
	}
	c := &Cluster{
		self:          cfg.Self,
		ring:          ring,
		peers:         map[string]*peer{},
		client:        client,
		probeInterval: cfg.ProbeInterval,
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	for _, m := range ring.Members() {
		if m == cfg.Self {
			continue
		}
		p := &peer{addr: m}
		p.up.Store(true)
		c.peers[m] = p
	}
	return c, nil
}

// Self returns this node's advertised address.
func (c *Cluster) Self() string { return c.self }

// Members returns every member address, sorted.
func (c *Cluster) Members() []string { return c.ring.Members() }

// isUp reports whether a member is routable. Self is always up: a node
// that can run this code can serve its own keys.
func (c *Cluster) isUp(node string) bool {
	if node == c.self {
		return true
	}
	if p, ok := c.peers[node]; ok {
		return p.up.Load()
	}
	return false
}

// Owner returns the live member owning key — Self when this node owns it
// (or when every other member is down, since Self is always up).
func (c *Cluster) Owner(key string) string {
	return c.ring.Owner(key, c.isUp)
}

// Health returns each remote peer's probed state; Self is omitted.
func (c *Cluster) Health() map[string]bool {
	out := make(map[string]bool, len(c.peers))
	for addr, p := range c.peers {
		out[addr] = p.up.Load()
	}
	return out
}

// BaseURL returns the dialable URL prefix for a member address, accepting
// both bare "host:port" members and fully-schemed ones.
func BaseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

// ProbeOnce probes every remote peer's /healthz synchronously and updates
// up/down state: any 200 is up, anything else — including a 503 from a
// draining node — is down. Exported so tests (and Start's loop) drive
// probing deterministically.
func (c *Cluster) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range c.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, BaseURL(p.addr)+"/healthz", nil)
			if err != nil {
				p.up.Store(false)
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				p.up.Store(false)
				return
			}
			resp.Body.Close()
			p.up.Store(resp.StatusCode == http.StatusOK)
		}(p)
	}
	wg.Wait()
}

// Start launches the background prober: an immediate round, then one per
// ProbeInterval until Stop. Calling Start more than once is a no-op.
func (c *Cluster) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.probeInterval)
		defer t.Stop()
		c.ProbeOnce(context.Background())
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.ProbeOnce(context.Background())
			}
		}
	}()
}

// Stop halts the prober started by Start and waits for it to exit. Safe
// to call more than once, and a no-op when Start was never called.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	if !c.started.Load() {
		return
	}
	select {
	case <-c.done:
	case <-time.After(5 * time.Second):
	}
}
