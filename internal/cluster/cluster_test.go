package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted an empty Self")
	}
	if _, err := New(Config{Self: "a:1"}); err == nil {
		t.Error("New accepted a single-member cluster")
	}
	c, err := New(Config{Self: "a:1", Peers: []string{"b:2", "a:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Members(); len(got) != 2 {
		t.Errorf("Members() = %v, want [a:1 b:2]", got)
	}
	if !c.isUp("a:1") || !c.isUp("b:2") {
		t.Error("members not initially up (self always, peers optimistically)")
	}
	if c.isUp("stranger:9") {
		t.Error("non-member reported up")
	}
}

// TestProbeFlipsPeerState: a probe marks a peer down on any non-200 (a
// draining node's 503 included) and back up on recovery, and Owner skips
// down peers — keys reassign to live members only.
func TestProbeFlipsPeerState(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	peerSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s, want /healthz", r.URL.Path)
		}
		if !healthy.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	}))
	defer peerSrv.Close()
	peerAddr := strings.TrimPrefix(peerSrv.URL, "http://")

	c, err := New(Config{Self: "self:1", Peers: []string{peerAddr}})
	if err != nil {
		t.Fatal(err)
	}
	c.ProbeOnce(context.Background())
	if !c.Health()[peerAddr] {
		t.Fatal("healthy peer probed down")
	}

	healthy.Store(false)
	c.ProbeOnce(context.Background())
	if c.Health()[peerAddr] {
		t.Fatal("draining (503) peer still up after probe")
	}
	for _, k := range keys(200) {
		if owner := c.Owner(k); owner != "self:1" {
			t.Fatalf("key %q owned by %q while the only peer is down", k, owner)
		}
	}

	healthy.Store(true)
	c.ProbeOnce(context.Background())
	if !c.Health()[peerAddr] {
		t.Fatal("recovered peer still down after probe")
	}
	foreign := 0
	for _, k := range keys(200) {
		if c.Owner(k) == peerAddr {
			foreign++
		}
	}
	if foreign == 0 {
		t.Error("recovered peer owns no keys")
	}
}

// TestProbeUnreachablePeer: a peer nobody listens on goes down after one
// probe round instead of wedging routing.
func TestProbeUnreachablePeer(t *testing.T) {
	c, err := New(Config{Self: "self:1", Peers: []string{"127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	c.ProbeOnce(context.Background())
	if c.Health()["127.0.0.1:1"] {
		t.Error("unreachable peer still up after probe")
	}
	c.Stop() // Start never called: must not block
}

func TestBaseURL(t *testing.T) {
	for in, want := range map[string]string{
		"127.0.0.1:8080": "http://127.0.0.1:8080",
		"http://h:1":     "http://h:1",
		"https://h:1/":   "https://h:1",
		"example.test:9": "http://example.test:9",
	} {
		if got := BaseURL(in); got != want {
			t.Errorf("BaseURL(%q) = %q, want %q", in, got, want)
		}
	}
}
