// Package cluster turns N serve processes into one cache-perfect fleet: a
// consistent-hash ring assigns every experiment cell (by its harness memo
// key) to exactly one owner node, and a static-membership layer with
// periodic /healthz probing tracks which nodes are routable. The serving
// layer forwards non-owned requests to the owner, so the owner's existing
// memo/coalescing tier becomes *cross-node* singleflight — a unique cold
// cell is simulated exactly once cluster-wide — while an unreachable owner
// degrades to local compute-and-cache, never to a client-visible error.
//
// The structure mirrors the paper's reading of modern shared-memory
// systems (and the CXL-PCC follow-ups in PAPERS.md): hardware-fast
// coherence inside a node — here, the in-process memo — and an explicit
// software protocol between nodes — here, ownership hashing plus one
// forwarded HTTP hop.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per member when Config.VNodes is
// zero: enough points that a 3-node ring splits keys within a few percent
// of evenly, cheap enough that ring construction stays microseconds.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over member names. Placement
// is deterministic: it depends only on the member names and the
// virtual-node count, never on construction order or process state, so
// every node of a fleet computes the identical ring from the same
// membership list.
type Ring struct {
	vnodes int
	points []point // sorted by (hash, node)
	nodes  []string
}

// point is one virtual node: a position on the hash circle owned by node.
type point struct {
	hash uint64
	node string
}

// NewRing builds a ring of vnodes virtual nodes per member (DefaultVNodes
// when vnodes <= 0). Duplicate member names are collapsed.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	var nodes []string
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			nodes = append(nodes, m)
		}
	}
	sort.Strings(nodes)
	r := &Ring{vnodes: vnodes, nodes: nodes}
	r.points = make([]point, 0, len(nodes)*vnodes)
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: pointHash(n, i), node: n})
		}
	}
	// Tie-break equal hashes by node name so placement stays deterministic
	// even on (astronomically unlikely) collisions.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Members returns the ring's member names, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// pointHash places virtual node i of a member on the circle. SHA-256 keeps
// placement independent of Go's hash seed and identical across processes.
func pointHash(node string, i int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", node, i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash places a key on the circle.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the member owning key: the first virtual node clockwise
// from the key's hash whose member passes up (a nil up means every member
// is routable). Skipping a down member this way is what bounds movement
// under failure — only the keys the down member owned move, each to the
// next live member clockwise, while every key owned by a live member keeps
// its owner. Owner returns "" only when the ring is empty or no member is
// up.
func (r *Ring) Owner(key string, up func(node string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for k := 0; k < len(r.points); k++ {
		p := r.points[(start+k)%len(r.points)]
		if up == nil || up(p.node) {
			return p.node
		}
	}
	return ""
}
