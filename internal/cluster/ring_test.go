package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("app%d/orig@svm p=%d scale=1", i%7, i)
	}
	return out
}

// TestRingDeterministicPlacement: the owner of every key depends only on
// the member set — not on member order or on which process computes it —
// so every node of a fleet derives the identical routing table.
func TestRingDeterministicPlacement(t *testing.T) {
	a := NewRing([]string{"n1:1", "n2:2", "n3:3"}, 64)
	b := NewRing([]string{"n3:3", "n1:1", "n2:2", "n2:2"}, 64)
	for _, k := range keys(500) {
		if ao, bo := a.Owner(k, nil), b.Owner(k, nil); ao != bo {
			t.Fatalf("owner(%q) = %q vs %q for reordered members", k, ao, bo)
		}
	}
}

// TestRingDistribution: with virtual nodes, a 3-member ring splits keys
// roughly evenly — no member starves or hoards.
func TestRingDistribution(t *testing.T) {
	members := []string{"n1:1", "n2:2", "n3:3"}
	r := NewRing(members, 0) // DefaultVNodes
	counts := map[string]int{}
	ks := keys(9000)
	for _, k := range ks {
		counts[r.Owner(k, nil)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / float64(len(ks))
		if share < 0.15 || share > 0.55 {
			t.Errorf("member %s owns %.1f%% of keys, want a roughly even split; counts=%v", m, 100*share, counts)
		}
	}
}

// TestRingRebalance pins the failover invariants: when a member goes
// down, (1) no key maps to it, (2) every key owned by a live member keeps
// its owner (zero unnecessary movement), and (3) only the down member's
// keys move — bounded movement ≈ its share of the ring.
func TestRingRebalance(t *testing.T) {
	members := []string{"n1:1", "n2:2", "n3:3"}
	r := NewRing(members, 64)
	ks := keys(9000)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = r.Owner(k, nil)
	}

	down := "n2:2"
	up := func(n string) bool { return n != down }
	moved := 0
	for _, k := range ks {
		after := r.Owner(k, up)
		if after == down {
			t.Fatalf("key %q maps to down member %s", k, down)
		}
		if before[k] != down && after != before[k] {
			t.Fatalf("key %q moved %s -> %s although its owner stayed up", k, before[k], after)
		}
		if before[k] == down {
			moved++
		}
	}
	share := float64(moved) / float64(len(ks))
	if share > 0.55 {
		t.Errorf("down member owned %.1f%% of keys; movement should be bounded by its share", 100*share)
	}
	if moved == 0 {
		t.Error("down member owned no keys; distribution test should have caught this")
	}
}

func TestRingEdgeCases(t *testing.T) {
	if o := NewRing(nil, 8).Owner("k", nil); o != "" {
		t.Errorf("empty ring owner = %q, want \"\"", o)
	}
	one := NewRing([]string{"solo:1"}, 8)
	if o := one.Owner("k", nil); o != "solo:1" {
		t.Errorf("single-member owner = %q", o)
	}
	// Single-member ring with its member down: the walk visits every
	// virtual node, finds none up, and returns "" rather than routing to
	// an unreachable owner.
	if o := one.Owner("k", func(string) bool { return false }); o != "" {
		t.Errorf("single-member all-down owner = %q, want \"\"", o)
	}
	// Same with several members: Owner must terminate after one full lap
	// and report no owner, not spin or fall back to a down member.
	three := NewRing([]string{"n1:1", "n2:2", "n3:3"}, 8)
	for _, k := range keys(50) {
		if o := three.Owner(k, func(string) bool { return false }); o != "" {
			t.Fatalf("all-down owner(%q) = %q, want \"\"", k, o)
		}
	}
}

// TestRingTieBreak pins the collision tie-break: when two virtual nodes
// land on the same hash, the lexicographically smaller member name sorts
// first and owns keys deterministically. SHA-256 collisions can't be
// provoked from member names, so the ring is built by hand with the same
// (hash, node) ordering NewRing's sort would produce.
func TestRingTieBreak(t *testing.T) {
	const h = uint64(1) << 40
	r := &Ring{
		vnodes: 1,
		nodes:  []string{"a:1", "b:2"},
		points: []point{{hash: h, node: "a:1"}, {hash: h, node: "b:2"}},
	}
	for _, k := range keys(50) {
		// Every key either hashes at or below h (search lands on the tied
		// pair) or above it (wraps to index 0) — both reach "a:1" first.
		if o := r.Owner(k, nil); o != "a:1" {
			t.Fatalf("tied-hash owner(%q) = %q, want the name-sorted first member \"a:1\"", k, o)
		}
		// With the tie-break winner down, its twin at the same hash takes
		// over — the down-member skip walks to the very next point.
		if o := r.Owner(k, func(n string) bool { return n != "a:1" }); o != "b:2" {
			t.Fatalf("tied-hash failover owner(%q) = %q, want \"b:2\"", k, o)
		}
	}
}
