// Package stats defines the execution-time accounting used throughout the
// reproduction. The categories mirror the breakdowns in the paper's figures
// (Figure 3 caption): Compute Time, Data Wait Time, Lock Wait Time, Barrier
// Wait Time, Handler Compute Time and CPU-Cache Stall Time, all in simulated
// processor cycles.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Category is one component of a processor's execution time.
type Category int

// Breakdown categories, in the order they are reported.
const (
	// Compute is time spent executing application instructions.
	Compute Category = iota
	// DataWait is time spent waiting for data at remote faults/misses,
	// i.e. time waiting for communication.
	DataWait
	// LockWait is time spent waiting at locks, including the overhead of
	// the synchronization events themselves.
	LockWait
	// BarrierWait is time spent waiting at barriers, including the
	// overhead of the synchronization events themselves.
	BarrierWait
	// Handler is time spent in protocol processing on incoming or
	// outgoing transactions, including computing and applying diffs.
	Handler
	// CacheStall is time stalled waiting for local cache misses.
	CacheStall

	// NumCategories is the number of breakdown categories.
	NumCategories
)

// String returns the short label used in tables.
func (c Category) String() string {
	switch c {
	case Compute:
		return "Compute"
	case DataWait:
		return "DataWait"
	case LockWait:
		return "LockWait"
	case BarrierWait:
		return "Barrier"
	case Handler:
		return "Handler"
	case CacheStall:
		return "CacheStall"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Counters holds event counts a platform may record per processor. Zero
// fields simply mean the platform does not use that mechanism.
type Counters struct {
	Reads  uint64 // data read accesses issued
	Writes uint64 // data write accesses issued

	L1Misses uint64
	L2Misses uint64

	// SVM counters.
	PageFaults   uint64 // read or write faults taken on invalid pages
	PageFetches  uint64 // whole pages fetched from a home node
	TwinsMade    uint64 // copy-on-first-write twins created
	DiffsCreated uint64 // diffs computed at releases/flushes
	DiffsApplied uint64 // diffs applied at this node (as home)
	PagesServed  uint64 // page fetch requests served by this node (as home)
	Invalidations uint64 // pages invalidated at acquires/barriers

	// Directory / bus counters.
	LocalMisses   uint64 // L2 misses satisfied by local memory
	RemoteMisses  uint64 // L2 misses requiring remote/coherence transactions
	ThreeHopMisses uint64
	BusTransactions uint64

	// Synchronization counters.
	LockAcquires   uint64
	RemoteLockMsgs uint64
	Barriers       uint64

	// Task-queue behaviour (recorded by applications).
	TasksRun    uint64
	TasksStolen uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.Reads += o.Reads
	c.Writes += o.Writes
	c.L1Misses += o.L1Misses
	c.L2Misses += o.L2Misses
	c.PageFaults += o.PageFaults
	c.PageFetches += o.PageFetches
	c.TwinsMade += o.TwinsMade
	c.DiffsCreated += o.DiffsCreated
	c.DiffsApplied += o.DiffsApplied
	c.PagesServed += o.PagesServed
	c.Invalidations += o.Invalidations
	c.LocalMisses += o.LocalMisses
	c.RemoteMisses += o.RemoteMisses
	c.ThreeHopMisses += o.ThreeHopMisses
	c.BusTransactions += o.BusTransactions
	c.LockAcquires += o.LockAcquires
	c.RemoteLockMsgs += o.RemoteLockMsgs
	c.Barriers += o.Barriers
	c.TasksRun += o.TasksRun
	c.TasksStolen += o.TasksStolen
}

// Proc is the per-processor accounting record.
type Proc struct {
	Cycles   [NumCategories]uint64
	Counters Counters
}

// Total returns the sum of all breakdown categories, i.e. the processor's
// busy+waiting execution time.
func (p *Proc) Total() uint64 {
	var t uint64
	for _, c := range p.Cycles {
		t += c
	}
	return t
}

// Run is the result of one simulated execution.
type Run struct {
	Name     string // e.g. "lu/orig on svm"
	NumProcs int
	Procs    []Proc
	// EndTime is the simulated completion time: the maximum virtual clock
	// over all processors at the final barrier/exit.
	EndTime uint64
	// PhaseTimes optionally records named phase durations (max over
	// processors), e.g. Barnes tree-build vs force computation.
	PhaseTimes map[string]uint64
}

// NewRun allocates a Run for p processors.
func NewRun(name string, p int) *Run {
	return &Run{Name: name, NumProcs: p, Procs: make([]Proc, p), PhaseTimes: map[string]uint64{}}
}

// Reset reinitializes r in place for a new run of p processors, reusing the
// per-processor records and phase table so a kernel that runs repeatedly
// allocates nothing per run. p must not exceed cap(r.Procs).
func (r *Run) Reset(name string, p int) {
	r.Name = name
	r.NumProcs = p
	r.EndTime = 0
	r.Procs = r.Procs[:p]
	for i := range r.Procs {
		r.Procs[i] = Proc{}
	}
	clear(r.PhaseTimes)
}

// TotalCycles sums a category over all processors.
func (r *Run) TotalCycles(c Category) uint64 {
	var t uint64
	for i := range r.Procs {
		t += r.Procs[i].Cycles[c]
	}
	return t
}

// AggregateCounters sums counters over all processors.
func (r *Run) AggregateCounters() Counters {
	var t Counters
	for i := range r.Procs {
		t.Add(&r.Procs[i].Counters)
	}
	return t
}

// MaxProcTotal returns the largest per-processor total time; with the
// cooperative kernel this matches EndTime up to final-barrier rounding.
func (r *Run) MaxProcTotal() uint64 {
	var m uint64
	for i := range r.Procs {
		if t := r.Procs[i].Total(); t > m {
			m = t
		}
	}
	return m
}

// CheckAccounting verifies the accounting identity against the processors'
// final virtual clocks: every breakdown category sum must equal the clock
// it claims to explain (nothing double-charged, nothing dropped), no clock
// may exceed the recorded end time, and the end time must be attained.
func (r *Run) CheckAccounting(finalClocks []uint64) error {
	if len(finalClocks) != len(r.Procs) {
		return fmt.Errorf("accounting: %d final clocks for %d processors", len(finalClocks), len(r.Procs))
	}
	var maxClock uint64
	for i := range r.Procs {
		if t := r.Procs[i].Total(); t != finalClocks[i] {
			return fmt.Errorf("accounting: proc %d breakdown sums to %d cycles but its clock is %d (drift %+d)",
				i, t, finalClocks[i], int64(t)-int64(finalClocks[i]))
		}
		if finalClocks[i] > r.EndTime {
			return fmt.Errorf("accounting: proc %d clock %d exceeds end time %d", i, finalClocks[i], r.EndTime)
		}
		if finalClocks[i] > maxClock {
			maxClock = finalClocks[i]
		}
	}
	if len(r.Procs) > 0 && maxClock != r.EndTime {
		return fmt.Errorf("accounting: end time %d not attained by any processor (max clock %d)", r.EndTime, maxClock)
	}
	return nil
}

// RecordPhase accumulates a named phase duration (in cycles).
func (r *Run) RecordPhase(name string, cycles uint64) {
	if r.PhaseTimes == nil {
		r.PhaseTimes = map[string]uint64{}
	}
	r.PhaseTimes[name] += cycles
}

// BreakdownTable renders the per-processor execution-time breakdown as a
// fixed-width text table, one row per processor, one column per category —
// the textual equivalent of the paper's stacked-bar breakdown figures.
func (r *Run) BreakdownTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (P=%d, end=%d cycles)\n", r.Name, r.NumProcs, r.EndTime)
	fmt.Fprintf(&b, "%5s", "proc")
	for c := Category(0); c < NumCategories; c++ {
		fmt.Fprintf(&b, " %12s", c)
	}
	fmt.Fprintf(&b, " %12s\n", "Total")
	for i := range r.Procs {
		fmt.Fprintf(&b, "%5d", i)
		for c := Category(0); c < NumCategories; c++ {
			fmt.Fprintf(&b, " %12d", r.Procs[i].Cycles[c])
		}
		fmt.Fprintf(&b, " %12d\n", r.Procs[i].Total())
	}
	fmt.Fprintf(&b, "%5s", "sum")
	for c := Category(0); c < NumCategories; c++ {
		fmt.Fprintf(&b, " %12d", r.TotalCycles(c))
	}
	fmt.Fprintf(&b, " %12d\n", func() uint64 {
		var t uint64
		for i := range r.Procs {
			t += r.Procs[i].Total()
		}
		return t
	}())
	if len(r.PhaseTimes) > 0 {
		names := make([]string, 0, len(r.PhaseTimes))
		for n := range r.PhaseTimes {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "phase %-20s %12d\n", n, r.PhaseTimes[n])
		}
	}
	return b.String()
}

// Share returns the fraction of aggregate execution time spent in category c.
func (r *Run) Share(c Category) float64 {
	var all uint64
	for i := range r.Procs {
		all += r.Procs[i].Total()
	}
	if all == 0 {
		return 0
	}
	return float64(r.TotalCycles(c)) / float64(all)
}
