package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCategoryStrings(t *testing.T) {
	want := []string{"Compute", "DataWait", "LockWait", "Barrier", "Handler", "CacheStall"}
	for c := Category(0); c < NumCategories; c++ {
		if c.String() != want[c] {
			t.Errorf("category %d = %q, want %q", c, c.String(), want[c])
		}
	}
	if s := Category(99).String(); !strings.Contains(s, "99") {
		t.Errorf("out-of-range category string %q", s)
	}
}

func TestProcTotal(t *testing.T) {
	var p Proc
	for c := Category(0); c < NumCategories; c++ {
		p.Cycles[c] = uint64(c) + 1
	}
	if p.Total() != 21 {
		t.Errorf("total = %d, want 21", p.Total())
	}
}

func TestRunAggregation(t *testing.T) {
	r := NewRun("x", 3)
	for i := range r.Procs {
		r.Procs[i].Cycles[Compute] = uint64(100 * (i + 1))
		r.Procs[i].Counters.PageFaults = uint64(i)
	}
	if got := r.TotalCycles(Compute); got != 600 {
		t.Errorf("total compute = %d, want 600", got)
	}
	if got := r.AggregateCounters().PageFaults; got != 3 {
		t.Errorf("aggregate faults = %d, want 3", got)
	}
	if got := r.MaxProcTotal(); got != 300 {
		t.Errorf("max proc total = %d, want 300", got)
	}
}

func TestShareSumsToOne(t *testing.T) {
	f := func(vals [NumCategories]uint16) bool {
		r := NewRun("x", 1)
		any := false
		for c := Category(0); c < NumCategories; c++ {
			r.Procs[0].Cycles[c] = uint64(vals[c])
			if vals[c] > 0 {
				any = true
			}
		}
		var sum float64
		for c := Category(0); c < NumCategories; c++ {
			sum += r.Share(c)
		}
		if !any {
			return sum == 0
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountersAddCoversEveryField(t *testing.T) {
	// Fill one counter struct with distinct values and add it to itself;
	// every field must double (catches fields forgotten in Add).
	a := Counters{
		Reads: 1, Writes: 2, L1Misses: 3, L2Misses: 4, PageFaults: 5,
		PageFetches: 6, TwinsMade: 7, DiffsCreated: 8, DiffsApplied: 9,
		PagesServed: 10, Invalidations: 11, LocalMisses: 12, RemoteMisses: 13,
		ThreeHopMisses: 14, BusTransactions: 15, LockAcquires: 16,
		RemoteLockMsgs: 17, Barriers: 18, TasksRun: 19, TasksStolen: 20,
	}
	b := a
	b.Add(&a)
	if b.Reads != 2 || b.Writes != 4 || b.L1Misses != 6 || b.L2Misses != 8 ||
		b.PageFaults != 10 || b.PageFetches != 12 || b.TwinsMade != 14 ||
		b.DiffsCreated != 16 || b.DiffsApplied != 18 || b.PagesServed != 20 ||
		b.Invalidations != 22 || b.LocalMisses != 24 || b.RemoteMisses != 26 ||
		b.ThreeHopMisses != 28 || b.BusTransactions != 30 || b.LockAcquires != 32 ||
		b.RemoteLockMsgs != 34 || b.Barriers != 36 || b.TasksRun != 38 || b.TasksStolen != 40 {
		t.Errorf("Add missed a field: %+v", b)
	}
}

func TestBreakdownTableFormat(t *testing.T) {
	r := NewRun("demo", 2)
	r.Procs[0].Cycles[Compute] = 42
	r.EndTime = 42
	r.RecordPhase("build", 7)
	out := r.BreakdownTable()
	for _, want := range []string{"demo", "Compute", "42", "phase build", "sum"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRecordPhaseAccumulates(t *testing.T) {
	r := NewRun("x", 2)
	r.RecordPhase("build", 100)
	r.RecordPhase("build", 50)
	r.RecordPhase("force", 10)
	if r.PhaseTimes["build"] != 150 {
		t.Errorf("build = %d, want 150 (accumulated)", r.PhaseTimes["build"])
	}
	if r.PhaseTimes["force"] != 10 {
		t.Errorf("force = %d, want 10", r.PhaseTimes["force"])
	}
}

func TestRecordPhaseNilMap(t *testing.T) {
	// A Run built by hand (not NewRun) has no phase map yet.
	r := &Run{Name: "bare", NumProcs: 1, Procs: make([]Proc, 1)}
	r.RecordPhase("p", 5)
	if r.PhaseTimes["p"] != 5 {
		t.Errorf("RecordPhase on nil map lost the value: %v", r.PhaseTimes)
	}
}

func TestShareKnownValues(t *testing.T) {
	r := NewRun("s", 2)
	r.Procs[0].Cycles[Compute] = 300
	r.Procs[1].Cycles[Compute] = 100
	r.Procs[0].Cycles[DataWait] = 400
	r.Procs[1].Cycles[BarrierWait] = 200
	// Total = 1000: Compute 40%, DataWait 40%, Barrier 20%.
	if got := r.Share(Compute); got != 0.4 {
		t.Errorf("Share(Compute) = %v, want 0.4", got)
	}
	if got := r.Share(DataWait); got != 0.4 {
		t.Errorf("Share(DataWait) = %v, want 0.4", got)
	}
	if got := r.Share(BarrierWait); got != 0.2 {
		t.Errorf("Share(BarrierWait) = %v, want 0.2", got)
	}
	if got := r.Share(LockWait); got != 0 {
		t.Errorf("Share(LockWait) = %v, want 0", got)
	}
}

func TestShareEmptyRunIsZero(t *testing.T) {
	r := NewRun("empty", 2)
	if got := r.Share(Compute); got != 0 {
		t.Errorf("Share on an all-zero run = %v, want 0 (not NaN)", got)
	}
}

func TestBreakdownTableSumsAndPhaseOrder(t *testing.T) {
	r := NewRun("lu/orig on svm", 2)
	r.EndTime = 500
	r.Procs[0].Cycles[Compute] = 120
	r.Procs[1].Cycles[Compute] = 80
	r.Procs[0].Cycles[Handler] = 30
	r.RecordPhase("zebra", 7)
	r.RecordPhase("alpha", 3)
	tbl := r.BreakdownTable()
	// The sum row reports per-category totals across processors.
	sumLine := ""
	for _, line := range strings.Split(tbl, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "sum") {
			sumLine = line
		}
	}
	if sumLine == "" {
		t.Fatalf("no sum row in table:\n%s", tbl)
	}
	if !strings.Contains(sumLine, "200") || !strings.Contains(sumLine, "230") {
		t.Errorf("sum row missing category total 200 or grand total 230: %q", sumLine)
	}
	// Phase rows render sorted by name for deterministic output.
	ia, iz := strings.Index(tbl, "alpha"), strings.Index(tbl, "zebra")
	if ia < 0 || iz < 0 || ia > iz {
		t.Errorf("phases not sorted by name (alpha@%d zebra@%d):\n%s", ia, iz, tbl)
	}
	// Table renders every processor row and one column per category.
	for _, want := range []string{"proc", "Compute", "DataWait", "Total", "end=500"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}
