// Package cache models a two-level per-processor cache hierarchy with real
// tag arrays, used by all three platform models for local stall accounting
// and (on the hardware-coherent platforms) for MESI line states. The paper's
// configurations: SVM nodes have an 8 KB direct-mapped write-through L1 and a
// 512 KB 2-way L2 with 32 B lines; the DSM nodes a 16 KB L1 and a 1 MB 4-way
// L2 with 64 B lines; the SGI Challenge a 16 KB L1 and 1 MB L2 with 128 B
// lines.
package cache

import "fmt"

// MESI line states. Platforms that do not track coherence in the cache (the
// SVM platform, which is coherent at page granularity) use only Invalid and
// Exclusive.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Config describes a two-level hierarchy. Sizes in bytes; all powers of two.
type Config struct {
	L1Size  int
	L1Assoc int
	L2Size  int
	L2Assoc int
	Line    int // line size shared by both levels
}

// Level is the level at which an access was satisfied.
type Level int

const (
	L1Hit Level = iota
	L2Hit
	Miss // must go to memory / coherence protocol
)

type set struct {
	tags  []uint64 // line address (addr / line); 0 means empty (addr 0 unused)
	state []State
	lru   []uint32
}

type level struct {
	sets     []set
	setShift uint
	setMask  uint64
	assoc    int
}

func newLevel(size, assoc, line int) *level {
	nLines := size / line
	nSets := nLines / assoc
	if nSets == 0 || nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache: %d sets is not a power of two", nSets))
	}
	l := &level{sets: make([]set, nSets), assoc: assoc, setMask: uint64(nSets - 1)}
	for i := range l.sets {
		l.sets[i] = set{
			tags:  make([]uint64, assoc),
			state: make([]State, assoc),
			lru:   make([]uint32, assoc),
		}
	}
	return l
}

func (l *level) lookup(lineAddr uint64) (si, wi int, ok bool) {
	si = int(lineAddr & l.setMask)
	s := &l.sets[si]
	for w := 0; w < l.assoc; w++ {
		if s.state[w] != Invalid && s.tags[w] == lineAddr {
			return si, w, true
		}
	}
	return si, -1, false
}

// insert places lineAddr in its set with the given state, evicting LRU if
// needed. Returns the evicted line address and its state; evState is Invalid
// when nothing was evicted.
func (l *level) insert(lineAddr uint64, st State, clock uint32) (evicted uint64, evState State) {
	si := int(lineAddr & l.setMask)
	s := &l.sets[si]
	// Prefer an invalid way.
	victim := 0
	best := ^uint32(0)
	for w := 0; w < l.assoc; w++ {
		if s.state[w] == Invalid {
			victim = w
			best = 0
			break
		}
		if s.lru[w] < best {
			best = s.lru[w]
			victim = w
		}
	}
	if s.state[victim] != Invalid {
		evicted, evState = s.tags[victim], s.state[victim]
	}
	s.tags[victim] = lineAddr
	s.state[victim] = st
	s.lru[victim] = clock
	return evicted, evState
}

// Hierarchy is one processor's L1+L2.
type Hierarchy struct {
	cfg       Config
	l1, l2    *level
	lineShift uint
	clock     uint32

	// OnL2Evict, when set, is called with the line address and state of
	// every line evicted from L2 by capacity/conflict replacement. The
	// hardware-coherent platforms use it to keep directory/bus sharer
	// state consistent with the caches.
	OnL2Evict func(lineAddr uint64, st State)

	// Stats
	Accesses, L1Misses, L2Misses uint64
}

// New builds a hierarchy from cfg.
func New(cfg Config) *Hierarchy {
	if cfg.Line == 0 || cfg.Line&(cfg.Line-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	h := &Hierarchy{cfg: cfg}
	h.l1 = newLevel(cfg.L1Size, cfg.L1Assoc, cfg.Line)
	h.l2 = newLevel(cfg.L2Size, cfg.L2Assoc, cfg.Line)
	for sh := uint(0); ; sh++ {
		if 1<<sh == cfg.Line {
			h.lineShift = sh
			break
		}
	}
	return h
}

// Line returns the configured line size.
func (h *Hierarchy) Line() int { return h.cfg.Line }

// LineOf returns the line address (addr / line size).
func (h *Hierarchy) LineOf(addr uint64) uint64 { return addr >> h.lineShift }

// Probe reports the level at which the line containing addr currently
// resides and its L2 state, without modifying the cache.
func (h *Hierarchy) Probe(addr uint64) (Level, State) {
	la := h.LineOf(addr)
	if _, _, ok := h.l1.lookup(la); ok {
		_, w2, ok2 := h.l2.lookup(la)
		if ok2 {
			si2 := int(la & h.l2.setMask)
			return L1Hit, h.l2.sets[si2].state[w2]
		}
		return L1Hit, Exclusive
	}
	if si, w, ok := h.l2.lookup(la); ok {
		return L2Hit, h.l2.sets[si].state[w]
	}
	return Miss, Invalid
}

// Access performs a load or store of the line containing addr, updating tag
// and LRU state. fillState is the state a missing line would be installed in
// (used on the hardware platforms; pass Exclusive for SVM). It returns the
// level that satisfied the access and the line's resulting L2 state.
//
// Coherence upgrades (write to a Shared line) are NOT handled here: the
// caller must Probe first and drive the protocol; Access then applies the
// final state via SetState or by re-filling.
func (h *Hierarchy) Access(addr uint64, write bool, fillState State) (Level, State) {
	h.clock++
	h.Accesses++
	la := h.LineOf(addr)
	if si, w, ok := h.l1.lookup(la); ok {
		h.l1.sets[si].lru[w] = h.clock
		// L1 is write-through: line state lives in L2.
		if si2, w2, ok2 := h.l2.lookup(la); ok2 {
			s := &h.l2.sets[si2]
			s.lru[w2] = h.clock
			if write && s.state[w2] == Exclusive {
				s.state[w2] = Modified
			}
			return L1Hit, s.state[w2]
		}
		return L1Hit, Exclusive
	}
	h.L1Misses++
	if si, w, ok := h.l2.lookup(la); ok {
		s := &h.l2.sets[si]
		s.lru[w] = h.clock
		st := s.state[w]
		if write && st == Exclusive {
			st = Modified
			s.state[w] = st
		}
		h.l1.insert(la, st, h.clock)
		return L2Hit, st
	}
	h.L2Misses++
	st := fillState
	if write {
		if st == Exclusive || st == Shared {
			st = Modified
		}
	}
	if ev, evSt := h.l2.insert(la, st, h.clock); evSt != Invalid {
		// Inclusion: a line leaving L2 must also leave L1.
		if si, w, ok := h.l1.lookup(ev); ok {
			h.l1.sets[si].state[w] = Invalid
		}
		if h.OnL2Evict != nil {
			h.OnL2Evict(ev, evSt)
		}
	}
	h.l1.insert(la, st, h.clock)
	return Miss, st
}

// SetState forces the L2 (and implicitly L1) state of the line containing
// addr; used by the coherence protocols for upgrades and downgrades. A
// transition to Invalid removes the line from both levels.
func (h *Hierarchy) SetState(addr uint64, st State) {
	la := h.LineOf(addr)
	if si, w, ok := h.l2.lookup(la); ok {
		if st == Invalid {
			h.l2.sets[si].state[w] = Invalid
		} else {
			h.l2.sets[si].state[w] = st
		}
	}
	if si, w, ok := h.l1.lookup(la); ok {
		if st == Invalid {
			h.l1.sets[si].state[w] = Invalid
		}
	}
}

// Contains reports whether the line containing addr is present (any level).
func (h *Hierarchy) Contains(addr uint64) bool {
	lvl, _ := h.Probe(addr)
	return lvl != Miss
}

// InvalidateRange removes all lines overlapping [addr, addr+n) — used when a
// page is invalidated under the SVM protocol, so stale data cannot be read
// from the cache after a page fetch replaces the page.
func (h *Hierarchy) InvalidateRange(addr uint64, n int) {
	line := uint64(h.cfg.Line)
	first := addr &^ (line - 1)
	for a := first; a < addr+uint64(n); a += line {
		h.SetState(a, Invalid)
	}
}

// LinesL2 calls f for every valid line resident in L2, in set/way order
// (deterministic). Platform invariant checkers use it to cross-check cache
// contents against directory or bus sharer state.
func (h *Hierarchy) LinesL2(f func(lineAddr uint64, st State)) {
	for i := range h.l2.sets {
		s := &h.l2.sets[i]
		for w := range s.state {
			if s.state[w] != Invalid {
				f(s.tags[w], s.state[w])
			}
		}
	}
}

// CheckInclusion verifies the multilevel inclusion property: every valid L1
// line must also be present in L2. Access maintains this by back-invalidating
// L1 on L2 eviction; a violation means a protocol path mutated one level
// without the other.
func (h *Hierarchy) CheckInclusion() error {
	for i := range h.l1.sets {
		s := &h.l1.sets[i]
		for w := range s.state {
			if s.state[w] == Invalid {
				continue
			}
			if _, _, ok := h.l2.lookup(s.tags[w]); !ok {
				return fmt.Errorf("cache: L1 line %#x (state %s) not present in L2 (inclusion violated)",
					s.tags[w], s.state[w])
			}
		}
	}
	return nil
}

// Flush empties both levels (used between simulated runs).
func (h *Hierarchy) Flush() {
	for _, l := range []*level{h.l1, h.l2} {
		for i := range l.sets {
			for w := range l.sets[i].state {
				l.sets[i].state[w] = Invalid
			}
		}
	}
}
