// Package cache models a two-level per-processor cache hierarchy with real
// tag arrays, used by all three platform models for local stall accounting
// and (on the hardware-coherent platforms) for MESI line states. The paper's
// configurations: SVM nodes have an 8 KB direct-mapped write-through L1 and a
// 512 KB 2-way L2 with 32 B lines; the DSM nodes a 16 KB L1 and a 1 MB 4-way
// L2 with 64 B lines; the SGI Challenge a 16 KB L1 and 1 MB L2 with 128 B
// lines.
//
// Tag-array layout: each level keeps its ways in ONE contiguous, set-major
// slice of 16-byte way records (tag, LRU stamp, MESI state together). Every
// simulated memory reference of every application flows through lookup, so
// this layout is the simulator's hottest data structure: the earlier
// slices-per-set representation (three separately allocated slices per set)
// cost three dependent pointer loads into scattered 2-4 element arrays per
// probe and dominated the CPU profile of `figures -all`. The flat layout is
// one predictable indexed load per way, and building a hierarchy is two
// allocations instead of tens of thousands. The replacement decisions (way
// scan order, LRU victim choice) are bit-for-bit those of the old layout, so
// simulated timing is unchanged.
package cache

import "fmt"

// MESI line states. Platforms that do not track coherence in the cache (the
// SVM platform, which is coherent at page granularity) use only Invalid and
// Exclusive.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Config describes a two-level hierarchy. Sizes in bytes; all powers of two.
type Config struct {
	L1Size  int
	L1Assoc int
	L2Size  int
	L2Assoc int
	Line    int // line size shared by both levels
}

// Level is the level at which an access was satisfied.
type Level int

const (
	L1Hit Level = iota
	L2Hit
	Miss // must go to memory / coherence protocol
)

// way is one tag-array entry. The three fields of a way live in one 16-byte
// record so a lookup touches a single cache line of the HOST machine for the
// whole set (at the simulated associativities of 1-4).
type way struct {
	tag   uint64 // line address (addr / line); only meaningful when st != Invalid
	lru   uint32
	st    State
	_pad1 uint8
	_pad2 uint16
}

// level is one cache level: nSets*assoc ways, set-major — set si occupies
// ways[si*assoc : (si+1)*assoc].
type level struct {
	ways    []way
	setMask uint64
	assoc   int
}

func newLevel(size, assoc, line int) *level {
	nLines := size / line
	nSets := nLines / assoc
	if nSets == 0 || nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache: %d sets is not a power of two", nSets))
	}
	return &level{
		ways:    make([]way, nSets*assoc),
		assoc:   assoc,
		setMask: uint64(nSets - 1),
	}
}

// lookup returns the base index of lineAddr's set and the way index holding
// it (wi == -1 when absent). Ways are scanned in ascending order, as the
// previous layout did; the scan order is part of run determinism because it
// decides LRU ties.
func (l *level) lookup(lineAddr uint64) (base, wi int, ok bool) {
	base = int(lineAddr&l.setMask) * l.assoc
	ws := l.ways[base : base+l.assoc]
	for w := range ws {
		if ws[w].st != Invalid && ws[w].tag == lineAddr {
			return base, w, true
		}
	}
	return base, -1, false
}

// insert places lineAddr in its set with the given state, evicting LRU if
// needed. Returns the evicted line address and its state; evState is Invalid
// when nothing was evicted. Victim selection (first invalid way, else lowest
// LRU stamp, ties to the lowest way index) matches the previous layout
// exactly.
func (l *level) insert(lineAddr uint64, st State, clock uint32) (evicted uint64, evState State) {
	base := int(lineAddr&l.setMask) * l.assoc
	ws := l.ways[base : base+l.assoc]
	victim := 0
	best := ^uint32(0)
	for w := range ws {
		if ws[w].st == Invalid {
			victim = w
			break
		}
		if ws[w].lru < best {
			best = ws[w].lru
			victim = w
		}
	}
	v := &ws[victim]
	if v.st != Invalid {
		evicted, evState = v.tag, v.st
	}
	v.tag = lineAddr
	v.st = st
	v.lru = clock
	return evicted, evState
}

// Hierarchy is one processor's L1+L2.
type Hierarchy struct {
	cfg       Config
	l1, l2    *level
	lineShift uint
	clock     uint32
	// fast12 selects the unrolled Access path for the direct-mapped-L1,
	// 2-way-L2 shape (the SVM node hierarchy, the hottest in figure runs).
	// w1arr/w2arr/m1/m2 mirror the levels' fields so that path loads them
	// without chasing the level pointers; the backing arrays are allocated
	// once in New and never reallocated, so the aliases stay valid.
	fast12       bool
	w1arr, w2arr []way
	m1, m2       uint64

	// OnL2Evict, when set, is called with the line address and state of
	// every line evicted from L2 by capacity/conflict replacement. The
	// hardware-coherent platforms use it to keep directory/bus sharer
	// state consistent with the caches.
	OnL2Evict func(lineAddr uint64, st State)

	// Stats
	Accesses, L1Misses, L2Misses uint64
}

// New builds a hierarchy from cfg.
func New(cfg Config) *Hierarchy {
	if cfg.Line == 0 || cfg.Line&(cfg.Line-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	h := &Hierarchy{cfg: cfg}
	h.l1 = newLevel(cfg.L1Size, cfg.L1Assoc, cfg.Line)
	h.l2 = newLevel(cfg.L2Size, cfg.L2Assoc, cfg.Line)
	h.fast12 = cfg.L1Assoc == 1 && cfg.L2Assoc == 2
	h.w1arr, h.m1 = h.l1.ways, h.l1.setMask
	h.w2arr, h.m2 = h.l2.ways, h.l2.setMask
	for sh := uint(0); ; sh++ {
		if 1<<sh == cfg.Line {
			h.lineShift = sh
			break
		}
	}
	return h
}

// Line returns the configured line size.
func (h *Hierarchy) Line() int { return h.cfg.Line }

// LineOf returns the line address (addr / line size).
func (h *Hierarchy) LineOf(addr uint64) uint64 { return addr >> h.lineShift }

// Probe reports the level at which the line containing addr currently
// resides and its L2 state, without modifying the cache.
func (h *Hierarchy) Probe(addr uint64) (Level, State) {
	la := addr >> h.lineShift
	if _, _, ok := h.l1.lookup(la); ok {
		if b2, w2, ok2 := h.l2.lookup(la); ok2 {
			return L1Hit, h.l2.ways[b2+w2].st
		}
		return L1Hit, Exclusive
	}
	if b2, w2, ok := h.l2.lookup(la); ok {
		return L2Hit, h.l2.ways[b2+w2].st
	}
	return Miss, Invalid
}

// scan walks lineAddr's set once, returning the set's way slice, the way
// holding lineAddr (hit == -1 when absent) and, for the miss case, the
// insertion victim chosen exactly as insert does: first invalid way, else
// lowest LRU stamp, ties to the lowest way index. The scan stops at a hit,
// like lookup, so LRU observation order is unchanged; victim is only
// meaningful when hit == -1 (the full set was scanned).
func (l *level) scan(lineAddr uint64) (ws []way, hit, victim int) {
	base := int(lineAddr&l.setMask) * l.assoc
	ws = l.ways[base : base+l.assoc]
	victim = -1
	haveInvalid := false
	best := ^uint32(0)
	for w := range ws {
		if ws[w].st == Invalid {
			if !haveInvalid {
				// First invalid way wins outright, as insert's break does.
				haveInvalid = true
				victim = w
			}
			continue
		}
		if ws[w].tag == lineAddr {
			return ws, w, -1
		}
		if !haveInvalid && ws[w].lru < best {
			best = ws[w].lru
			victim = w
		}
	}
	if victim < 0 {
		victim = 0 // all valid at the maximum stamp: insert's default
	}
	return ws, -1, victim
}

// Access performs a load or store of the line containing addr, updating tag
// and LRU state. fillState is the state a missing line would be installed in
// (used on the hardware platforms; pass Exclusive for SVM). It returns the
// level that satisfied the access and the line's resulting L2 state.
//
// Every simulated memory reference of every application funnels through
// here, so the miss path is fused: each level's hit probe and victim choice
// share one tag-array walk instead of lookup-then-insert walking the set
// twice. The decisions (scan order, first-invalid-else-LRU victim, tie to
// the lowest way) are bit-for-bit those of the unfused path, so simulated
// timing is unchanged.
//
// Coherence upgrades (write to a Shared line) are NOT handled here: the
// caller must Probe first and drive the protocol; Access then applies the
// final state via SetState or by re-filling.
func (h *Hierarchy) Access(addr uint64, write bool, fillState State) (Level, State) {
	if h.fast12 {
		return h.access12(addr, write, fillState)
	}
	return h.accessGeneric(addr, write, fillState)
}

// access12 is Access unrolled for a direct-mapped L1 over a 2-way L2 — the
// SVM node hierarchy, which every simulated SVM reference walks. Probe,
// victim choice and back-invalidation are the literal expansions of the
// generic path at assoc 1 and 2, so the two produce identical state.
func (h *Hierarchy) access12(addr uint64, write bool, fillState State) (Level, State) {
	h.clock++
	h.Accesses++
	la := addr >> h.lineShift
	w1 := &h.w1arr[la&h.m1]
	s2 := h.w2arr[int(la&h.m2)*2:]
	wa := &s2[0]
	wb := &s2[1]
	if w1.st != Invalid && w1.tag == la {
		// L1 hit; L1 is write-through, so line state lives in L2.
		w1.lru = h.clock
		if wa.st != Invalid && wa.tag == la {
			wa.lru = h.clock
			if write && wa.st == Exclusive {
				wa.st = Modified
			}
			return L1Hit, wa.st
		}
		if wb.st != Invalid && wb.tag == la {
			wb.lru = h.clock
			if write && wb.st == Exclusive {
				wb.st = Modified
			}
			return L1Hit, wb.st
		}
		return L1Hit, Exclusive
	}
	h.L1Misses++
	hit := (*way)(nil)
	if wa.st != Invalid && wa.tag == la {
		hit = wa
	} else if wb.st != Invalid && wb.tag == la {
		hit = wb
	}
	if hit != nil {
		hit.lru = h.clock
		if write && hit.st == Exclusive {
			hit.st = Modified
		}
		st := hit.st
		*w1 = way{tag: la, lru: h.clock, st: st}
		return L2Hit, st
	}
	h.L2Misses++
	st := fillState
	if write {
		if st == Exclusive || st == Shared {
			st = Modified
		}
	}
	// Victim: first invalid way, else lower LRU stamp, ties to way 0.
	v := wa
	if wa.st != Invalid && (wb.st == Invalid || wb.lru < wa.lru) {
		v = wb
	}
	ev, evSt := v.tag, v.st
	*v = way{tag: la, lru: h.clock, st: st}
	if evSt != Invalid {
		// Inclusion: a line leaving L2 must also leave L1.
		we := &h.w1arr[ev&h.m1]
		if we.st != Invalid && we.tag == ev {
			we.st = Invalid
		}
		if h.OnL2Evict != nil {
			h.OnL2Evict(ev, evSt)
		}
	}
	// Direct-mapped L1: la's slot is the victim no matter what the eviction
	// callback touched.
	*w1 = way{tag: la, lru: h.clock, st: st}
	return Miss, st
}

func (h *Hierarchy) accessGeneric(addr uint64, write bool, fillState State) (Level, State) {
	h.clock++
	h.Accesses++
	la := addr >> h.lineShift
	w1s, hit1, vic1 := h.l1.scan(la)
	if hit1 >= 0 {
		w1s[hit1].lru = h.clock
		// L1 is write-through: line state lives in L2.
		if b2, w2, ok2 := h.l2.lookup(la); ok2 {
			w := &h.l2.ways[b2+w2]
			w.lru = h.clock
			if write && w.st == Exclusive {
				w.st = Modified
			}
			return L1Hit, w.st
		}
		return L1Hit, Exclusive
	}
	h.L1Misses++
	w2s, hit2, vic2 := h.l2.scan(la)
	if hit2 >= 0 {
		w := &w2s[hit2]
		w.lru = h.clock
		if write && w.st == Exclusive {
			w.st = Modified
		}
		st := w.st
		w1s[vic1] = way{tag: la, lru: h.clock, st: st}
		return L2Hit, st
	}
	h.L2Misses++
	st := fillState
	if write {
		if st == Exclusive || st == Shared {
			st = Modified
		}
	}
	v := &w2s[vic2]
	ev, evSt := v.tag, v.st
	*v = way{tag: la, lru: h.clock, st: st}
	if evSt != Invalid {
		// Inclusion: a line leaving L2 must also leave L1. This can free a
		// way in la's own L1 set, so the L1 victim must be re-chosen below
		// rather than taken from the pre-eviction scan.
		if b1, w1, ok := h.l1.lookup(ev); ok {
			h.l1.ways[b1+w1].st = Invalid
		}
		if h.OnL2Evict != nil {
			h.OnL2Evict(ev, evSt)
		}
	}
	h.l1.insert(la, st, h.clock)
	return Miss, st
}

// HitAccess is Probe followed by Access, fused into one tag-array walk, for
// the platforms' FastAccess hot path: it performs the access ONLY if the
// line hits and (for writes) the MESI state grants write permission
// (Modified or Exclusive). On a miss or an insufficient state it mutates
// nothing — not even the LRU clock — exactly as the unfused Probe-then-
// return-false path did, so SlowAccess still performs the one and only
// Access of the reference. The mutations of the hit path (clock, counters,
// LRU stamps, the silent Exclusive->Modified write upgrade) are identical to
// Access's, so fused and unfused runs are cycle-identical.
func (h *Hierarchy) HitAccess(addr uint64, write bool) (Level, State, bool) {
	la := addr >> h.lineShift
	if b1, w1, ok := h.l1.lookup(la); ok {
		// L1 hit; authoritative state lives in L2 (write-through L1).
		b2, w2, ok2 := h.l2.lookup(la)
		st := Exclusive
		if ok2 {
			st = h.l2.ways[b2+w2].st
		}
		if write && st != Modified && st != Exclusive {
			return L1Hit, st, false
		}
		h.clock++
		h.Accesses++
		h.l1.ways[b1+w1].lru = h.clock
		if ok2 {
			w := &h.l2.ways[b2+w2]
			w.lru = h.clock
			if write && w.st == Exclusive {
				w.st = Modified
			}
			return L1Hit, w.st, true
		}
		return L1Hit, Exclusive, true
	}
	b2, w2, ok := h.l2.lookup(la)
	if !ok {
		return Miss, Invalid, false
	}
	st := h.l2.ways[b2+w2].st
	if write && st != Modified && st != Exclusive {
		return L2Hit, st, false
	}
	h.clock++
	h.Accesses++
	h.L1Misses++
	w := &h.l2.ways[b2+w2]
	w.lru = h.clock
	if write && w.st == Exclusive {
		w.st = Modified
	}
	st = w.st
	h.l1.insert(la, st, h.clock)
	return L2Hit, st, true
}

// SetState forces the L2 (and implicitly L1) state of the line containing
// addr; used by the coherence protocols for upgrades and downgrades. A
// transition to Invalid removes the line from both levels.
func (h *Hierarchy) SetState(addr uint64, st State) {
	la := addr >> h.lineShift
	if b2, w2, ok := h.l2.lookup(la); ok {
		h.l2.ways[b2+w2].st = st
	}
	if b1, w1, ok := h.l1.lookup(la); ok {
		if st == Invalid {
			h.l1.ways[b1+w1].st = Invalid
		}
	}
}

// Contains reports whether the line containing addr is present (any level).
func (h *Hierarchy) Contains(addr uint64) bool {
	lvl, _ := h.Probe(addr)
	return lvl != Miss
}

// InvalidateRange removes all lines overlapping [addr, addr+n) — used when a
// page is invalidated under the SVM protocol, so stale data cannot be read
// from the cache after a page fetch replaces the page.
func (h *Hierarchy) InvalidateRange(addr uint64, n int) {
	line := uint64(h.cfg.Line)
	first := addr &^ (line - 1)
	for a := first; a < addr+uint64(n); a += line {
		h.SetState(a, Invalid)
	}
}

// LinesL2 calls f for every valid line resident in L2, in set/way order
// (deterministic). Platform invariant checkers use it to cross-check cache
// contents against directory or bus sharer state.
func (h *Hierarchy) LinesL2(f func(lineAddr uint64, st State)) {
	for i := range h.l2.ways {
		if w := &h.l2.ways[i]; w.st != Invalid {
			f(w.tag, w.st)
		}
	}
}

// CheckInclusion verifies the multilevel inclusion property: every valid L1
// line must also be present in L2. Access maintains this by back-invalidating
// L1 on L2 eviction; a violation means a protocol path mutated one level
// without the other.
func (h *Hierarchy) CheckInclusion() error {
	for i := range h.l1.ways {
		w := &h.l1.ways[i]
		if w.st == Invalid {
			continue
		}
		if _, _, ok := h.l2.lookup(w.tag); !ok {
			return fmt.Errorf("cache: L1 line %#x (state %s) not present in L2 (inclusion violated)",
				w.tag, w.st)
		}
	}
	return nil
}

// Flush empties both levels (used between simulated runs).
func (h *Hierarchy) Flush() {
	for _, l := range []*level{h.l1, h.l2} {
		for i := range l.ways {
			l.ways[i].st = Invalid
		}
	}
}

// Reset returns the hierarchy to its exact post-New state — cold tag arrays,
// zero LRU clock, zero counters — without reallocating the way records, so a
// platform reattaching between runs allocates nothing.
func (h *Hierarchy) Reset() {
	clear(h.l1.ways)
	clear(h.l2.ways)
	h.clock = 0
	h.Accesses = 0
	h.L1Misses = 0
	h.L2Misses = 0
}
