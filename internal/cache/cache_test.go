package cache

import (
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{L1Size: 1 << 10, L1Assoc: 1, L2Size: 8 << 10, L2Assoc: 2, Line: 32}
}

func TestColdMissThenHit(t *testing.T) {
	h := New(testConfig())
	lvl, _ := h.Access(0x1000, false, Exclusive)
	if lvl != Miss {
		t.Errorf("first access = %v, want Miss", lvl)
	}
	lvl, _ = h.Access(0x1000, false, Exclusive)
	if lvl != L1Hit {
		t.Errorf("second access = %v, want L1Hit", lvl)
	}
	// Same line, different word.
	lvl, _ = h.Access(0x1010, false, Exclusive)
	if lvl != L1Hit {
		t.Errorf("same-line access = %v, want L1Hit", lvl)
	}
}

func TestL1ConflictL2Hit(t *testing.T) {
	h := New(testConfig())
	// L1 is 1 KB direct-mapped with 32 B lines = 32 sets; addresses 1 KB
	// apart conflict in L1 but 8 KB L2 (2-way, 128 sets) holds both.
	h.Access(0x0000, false, Exclusive)
	h.Access(0x0400, false, Exclusive) // evicts 0x0000 from L1
	lvl, _ := h.Access(0x0000, false, Exclusive)
	if lvl != L2Hit {
		t.Errorf("conflicting access = %v, want L2Hit", lvl)
	}
}

func TestWriteSetsModified(t *testing.T) {
	h := New(testConfig())
	h.Access(0x2000, true, Exclusive)
	_, st := h.Probe(0x2000)
	if st != Modified {
		t.Errorf("state after write = %v, want M", st)
	}
}

func TestEToMOnWriteHit(t *testing.T) {
	h := New(testConfig())
	h.Access(0x2000, false, Exclusive)
	_, st := h.Access(0x2000, true, Exclusive)
	if st != Modified {
		t.Errorf("state after write hit on E = %v, want M", st)
	}
}

func TestSetStateInvalidRemovesLine(t *testing.T) {
	h := New(testConfig())
	h.Access(0x3000, false, Shared)
	h.SetState(0x3000, Invalid)
	if h.Contains(0x3000) {
		t.Error("line still present after invalidation")
	}
	lvl, _ := h.Access(0x3000, false, Shared)
	if lvl != Miss {
		t.Errorf("access after invalidation = %v, want Miss", lvl)
	}
}

func TestInvalidateRange(t *testing.T) {
	h := New(testConfig())
	for a := uint64(0x4000); a < 0x4000+4096; a += 32 {
		h.Access(a, false, Exclusive)
	}
	h.InvalidateRange(0x4000, 4096)
	for a := uint64(0x4000); a < 0x4000+4096; a += 32 {
		if h.Contains(a) {
			t.Fatalf("line %#x survived page invalidation", a)
		}
	}
}

func TestEvictionCallbackAndInclusion(t *testing.T) {
	h := New(testConfig())
	var evicted []uint64
	h.OnL2Evict = func(la uint64, st State) { evicted = append(evicted, la) }
	// Fill one L2 set (2 ways) with conflicting lines, then add a third.
	// L2: 8 KB / 32 B / 2-way = 128 sets, so addresses 128*32 = 4 KB
	// apart map to the same set.
	h.Access(0x0000, false, Exclusive)
	h.Access(0x1000, false, Exclusive)
	h.Access(0x2000, false, Exclusive)
	if len(evicted) != 1 {
		t.Fatalf("evictions = %d, want 1", len(evicted))
	}
	if evicted[0] != 0 {
		t.Errorf("evicted line %#x, want line 0 (LRU)", evicted[0])
	}
	// Inclusion: the evicted line must be gone from L1 too.
	if h.Contains(0x0000) {
		t.Error("evicted L2 line still visible (L1 inclusion violated)")
	}
}

func TestDirectMappedConflictThrashing(t *testing.T) {
	// The superlinear-speedup story in the paper depends on 2-d layouts
	// thrashing direct-mapped caches: alternating accesses at a stride of
	// the whole cache size always miss.
	cfg := Config{L1Size: 1 << 10, L1Assoc: 1, L2Size: 2 << 10, L2Assoc: 1, Line: 32}
	h := New(cfg)
	h.Access(0x0000, false, Exclusive)
	h.Access(0x0800, false, Exclusive) // conflicts in both levels
	for i := 0; i < 10; i++ {
		lvl, _ := h.Access(uint64(0x0000+(i%2)*0x0800), false, Exclusive)
		if i >= 2 && lvl != Miss {
			t.Fatalf("iteration %d: level %v, want Miss (thrash)", i, lvl)
		}
	}
}

func TestFlush(t *testing.T) {
	h := New(testConfig())
	h.Access(0x5000, true, Exclusive)
	h.Flush()
	if h.Contains(0x5000) {
		t.Error("line survived Flush")
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	h := New(testConfig())
	h.Access(0x6000, false, Shared)
	before := h.Accesses
	h.Probe(0x6000)
	h.Probe(0x9999999)
	if h.Accesses != before {
		t.Error("Probe counted as access")
	}
}

func TestAccessLevelNeverWorsensImmediately(t *testing.T) {
	// Property: accessing an address twice in a row, the second access
	// hits L1.
	h := New(testConfig())
	f := func(a uint32) bool {
		addr := uint64(a) + 1 // avoid line-address 0 sentinel
		h.Access(addr, false, Exclusive)
		lvl, _ := h.Access(addr, false, Exclusive)
		return lvl == L1Hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMissCounters(t *testing.T) {
	h := New(testConfig())
	h.Access(0x1000, false, Exclusive)
	h.Access(0x1000, false, Exclusive)
	if h.Accesses != 2 || h.L2Misses != 1 || h.L1Misses != 1 {
		t.Errorf("counters = %d/%d/%d, want 2/1/1", h.Accesses, h.L1Misses, h.L2Misses)
	}
}
