package cache

import "testing"

// The hierarchy's tag arrays are allocated once in New; every steady-state
// operation — probe, fused hit-access, plain access including misses with
// eviction — must run allocation-free, because these are the innermost
// operations of every simulated memory reference. A regression here (say, a
// return to per-set slices or a closure sneaking into the walk) multiplies
// across hundreds of millions of references per figure run.

func allocTestConfig() Config {
	return Config{L1Size: 8 << 10, L1Assoc: 1, L2Size: 64 << 10, L2Assoc: 2, Line: 32}
}

func TestAllocFreeProbe(t *testing.T) {
	h := New(allocTestConfig())
	h.Access(64, false, Exclusive)
	if n := testing.AllocsPerRun(1000, func() {
		h.Probe(64)
		h.Probe(1 << 20) // miss probe
	}); n != 0 {
		t.Fatalf("Probe allocates %v per run; want 0", n)
	}
}

func TestAllocFreeHitAccess(t *testing.T) {
	h := New(allocTestConfig())
	h.Access(64, true, Modified)
	if n := testing.AllocsPerRun(1000, func() {
		h.HitAccess(64, false)
		h.HitAccess(64, true)
		h.HitAccess(1<<20, false) // refused: miss
	}); n != 0 {
		t.Fatalf("HitAccess allocates %v per run; want 0", n)
	}
}

func TestAllocFreeAccess(t *testing.T) {
	h := New(allocTestConfig())
	var addr uint64
	if n := testing.AllocsPerRun(1000, func() {
		// A moving stream forces misses, fills, and L1/L2 evictions.
		h.Access(addr, false, Exclusive)
		h.Access(addr, true, Modified)
		addr += 32
	}); n != 0 {
		t.Fatalf("Access allocates %v per run; want 0", n)
	}
}

func TestAllocFreeSetState(t *testing.T) {
	h := New(allocTestConfig())
	h.Access(64, false, Shared)
	if n := testing.AllocsPerRun(1000, func() {
		h.SetState(64, Invalid)
		h.SetState(64, Shared) // no-op on a now-invalid line
	}); n != 0 {
		t.Fatalf("SetState allocates %v per run; want 0", n)
	}
}
