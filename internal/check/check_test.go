package check

import (
	"runtime"
	"testing"

	_ "repro/internal/apps"
	"repro/internal/core"
	"repro/internal/harness"
)

const (
	sweepProcs = 8
	sweepScale = 0.25
)

// firstVersion returns the original (paper-baseline) version of app.
func firstVersion(t *testing.T, app string) string {
	t.Helper()
	a, err := core.Lookup(app)
	if err != nil {
		t.Fatal(err)
	}
	return a.Versions()[0].Name
}

// Every registered figure cell must run to completion — and verify — with
// the runtime invariant checker enabled.
func TestFigureCellsPassInvariantChecking(t *testing.T) {
	r := harness.NewRunner(sweepProcs, sweepScale)
	r.Check = true
	cells := FigureCells()
	if len(cells) < 20 {
		t.Fatalf("only %d figure cells registered, expected the full experiment matrix", len(cells))
	}
	r.RunParallel(runtime.GOMAXPROCS(0), cells)
	for _, f := range r.FailedCells() {
		t.Error(f)
	}
}

// Running the same experiment twice must produce byte-identical JSON: one
// representative cell per application, rotating over the platforms so every
// protocol model gets differential coverage.
func TestRunTwiceIsByteIdentical(t *testing.T) {
	plats := []string{"svm", "smp", "dsm", "svmsmp"}
	for i, app := range core.Apps() {
		spec := harness.Spec{
			App: app, Version: firstVersion(t, app), Platform: plats[i%len(plats)],
			NumProcs: sweepProcs, Scale: sweepScale, Check: true,
		}
		if err := DiffRuns(spec); err != nil {
			t.Error(err)
		}
	}
}

// The computed result of an application must not depend on which platform
// simulated it: page-grained HLRC, a snooping bus, a hardware directory and
// the two-level hierarchy must all produce bit-identical fingerprints.
func TestResultsAgreeAcrossPlatforms(t *testing.T) {
	for _, app := range core.Apps() {
		ver := firstVersion(t, app)
		var first uint64
		var firstPlat string
		for _, plat := range []string{"svm", "smp", "dsm", "svmsmp"} {
			_, fp, ok, err := harness.ExecuteFingerprint(harness.Spec{
				App: app, Version: ver, Platform: plat,
				NumProcs: sweepProcs, Scale: sweepScale, Check: true,
			})
			if err != nil {
				t.Errorf("%s/%s on %s: %v", app, ver, plat, err)
				continue
			}
			if !ok {
				t.Errorf("%s does not implement core.Fingerprinter", app)
				break
			}
			if firstPlat == "" {
				first, firstPlat = fp, plat
			} else if fp != first {
				t.Errorf("%s/%s: fingerprint %016x on %s != %016x on %s",
					app, ver, fp, plat, first, firstPlat)
			}
		}
	}
}

// For computations whose result is independent of the work partition, the
// fingerprint must also be stable across processor counts. Ocean is excluded:
// its residual is a floating-point sum over per-processor partials, so its
// grouping — and the low bits of the result — legitimately follow the
// partition (Verify still bounds the error at every processor count).
func TestResultsStableAcrossProcCounts(t *testing.T) {
	for _, app := range core.Apps() {
		if app == "ocean" {
			continue
		}
		ver := firstVersion(t, app)
		var first uint64
		var firstNP int
		for _, np := range []int{4, 8} {
			_, fp, ok, err := harness.ExecuteFingerprint(harness.Spec{
				App: app, Version: ver, Platform: "svm",
				NumProcs: np, Scale: sweepScale, Check: true,
			})
			if err != nil {
				t.Errorf("%s/%s P=%d: %v", app, ver, np, err)
				continue
			}
			if !ok {
				break // reported by the cross-platform test
			}
			if firstNP == 0 {
				first, firstNP = fp, np
			} else if fp != first {
				t.Errorf("%s/%s: fingerprint %016x at P=%d != %016x at P=%d",
					app, ver, fp, np, first, firstNP)
			}
		}
	}
}

// Verification must hold at processor counts that do not divide the problem
// evenly (regression: volrend's blocked partition silently dropped the
// remainder tiles).
func TestVerifyAtAwkwardProcCounts(t *testing.T) {
	for _, app := range core.Apps() {
		ver := firstVersion(t, app)
		if _, err := harness.Execute(harness.Spec{
			App: app, Version: ver, Platform: "svm",
			NumProcs: 5, Scale: sweepScale, Check: true,
		}); err != nil {
			t.Errorf("%s/%s P=5: %v", app, ver, err)
		}
	}
}
