// Package check is the simulator's differential and determinism harness —
// the testing half of the runtime invariant checker (sim.Config.Check).
//
// The invariant checker audits protocol state from the inside while a
// simulation runs: scheduler virtual-time monotonicity, HLRC twin/diff
// balance and vector-clock monotonicity, MESI directory/cache consistency,
// resource occupancy bounds, and the accounting identity that every
// processor's breakdown categories sum exactly to its final clock. This
// package attacks the same correctness question from the outside:
//
//   - every registered figure cell must run to completion with invariant
//     checking enabled;
//   - running the same experiment twice must produce byte-identical
//     machine-readable output (no map-iteration order, unseeded randomness
//     or goroutine scheduling may leak into results);
//   - the computed RESULT of an application version must not depend on
//     which platform simulated it or (for order-independent computations)
//     on the processor count — compared by result fingerprints
//     (core.Fingerprinter);
//   - result verification must hold across processor counts, including
//     ones that do not divide the problem evenly.
//
// Both halves are wired into CI: the normal leg runs this package's tests,
// and a REPRO_CHECK=1 leg re-runs the whole suite with checking forced on
// process-wide (see harness.Spec).
package check

import (
	"bytes"
	"fmt"

	"repro/internal/harness"
)

// FigureCells returns every distinct (app, version, platform) cell used by
// the registered figures, in first-appearance order. Speedup flags are
// dropped: the checker cares about the cell's own execution, and baselines
// are exercised separately.
func FigureCells() []harness.Cell {
	seen := map[string]bool{}
	var out []harness.Cell
	for _, f := range harness.Figures() {
		for _, c := range f.Cells() {
			key := c.App + "/" + c.Version + "@" + c.Platform
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, harness.Cell{App: c.App, Version: c.Version, Platform: c.Platform})
		}
	}
	return out
}

// DiffRuns executes spec twice from scratch and compares the rendered JSON
// byte for byte. Any difference — cycle counts, counters, phase times — is
// nondeterminism in the simulator or the application and is returned as an
// error naming the cell.
func DiffRuns(spec harness.Spec) error {
	var outs [2][]byte
	for i := range outs {
		run, err := harness.Execute(spec)
		if err != nil {
			return fmt.Errorf("repetition %d: %w", i+1, err)
		}
		out, err := harness.RunJSON(spec, run, 0)
		if err != nil {
			return fmt.Errorf("repetition %d: %w", i+1, err)
		}
		outs[i] = out
	}
	if !bytes.Equal(outs[0], outs[1]) {
		return fmt.Errorf("%s/%s on %s (P=%d): two runs produced different results (nondeterministic simulation)",
			spec.App, spec.Version, spec.Platform, spec.NumProcs)
	}
	return nil
}
