package check

import (
	"testing"

	_ "repro/internal/apps"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/platform"
)

// The irregular modern workloads of ROADMAP item 3. Their computed results
// are designed to be bit-identical across every platform preset, processor
// count, and restructured version, so the differential net over them can be
// much tighter than for the floating-point paper applications.
var irregularApps = []string{"bfs", "kvstore", "pipeline"}

var irregularProcs = []int{1, 2, 4, 8, 16}

// The irregular workloads must be registered as extensions: available to
// sweeps and campaigns, excluded from the paper-figure enumerations.
func TestIrregularAppsRegisteredAsExtensions(t *testing.T) {
	inPaper := map[string]bool{}
	for _, a := range core.PaperApps() {
		inPaper[a] = true
	}
	for _, app := range irregularApps {
		if !core.IsExtension(app) {
			t.Errorf("%s is not registered as an extension", app)
		}
		if inPaper[app] {
			t.Errorf("%s leaked into PaperApps()", app)
		}
		if _, err := core.Lookup(app); err != nil {
			t.Errorf("%s not registered: %v", app, err)
		}
	}
	if len(core.Apps()) != len(core.PaperApps())+len(irregularApps) {
		t.Errorf("Apps() has %d entries, PaperApps() %d + %d extensions expected",
			len(core.Apps()), len(core.PaperApps()), len(irregularApps))
	}
}

// Every version of every irregular workload must produce one single
// fingerprint across the full differential net: all six platform presets
// crossed with processor counts 1..16. One mismatch anywhere means an
// interleaving-dependent result leaked into the computation.
func TestIrregularFingerprintsAcrossAllPresetsAndProcCounts(t *testing.T) {
	for _, app := range irregularApps {
		a, err := core.Lookup(app)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range a.Versions() {
			t.Run(app+"/"+v.Name, func(t *testing.T) {
				var first uint64
				firstCell := ""
				for _, plat := range platform.AllPresets {
					for _, np := range irregularProcs {
						_, fp, ok, err := harness.ExecuteFingerprint(harness.Spec{
							App: app, Version: v.Name, Platform: plat,
							NumProcs: np, Scale: sweepScale,
						})
						if err != nil {
							t.Errorf("%s p=%d: %v", plat, np, err)
							continue
						}
						if !ok {
							t.Fatalf("%s does not implement core.Fingerprinter", app)
						}
						if firstCell == "" {
							first, firstCell = fp, plat
						} else if fp != first {
							t.Errorf("fingerprint %016x on %s p=%d != %016x on %s",
								fp, plat, np, first, firstCell)
						}
					}
				}
			})
		}
	}
}

// Running any irregular cell twice must be byte-identical, on every
// platform preset, with the runtime invariant checker enabled — this is
// also the guaranteed-checked cell per app x platform combination.
func TestIrregularRunTwiceByteIdenticalEveryPreset(t *testing.T) {
	for _, app := range irregularApps {
		for _, plat := range platform.AllPresets {
			spec := harness.Spec{
				App: app, Version: firstVersion(t, app), Platform: plat,
				NumProcs: sweepProcs, Scale: sweepScale, Check: true,
			}
			if err := DiffRuns(spec); err != nil {
				t.Error(err)
			}
		}
	}
}

// Every restructured version must verify at a processor count that divides
// neither the problem sizes nor the four-stage pipeline.
func TestIrregularVersionsVerifyAtAwkwardProcCounts(t *testing.T) {
	for _, app := range irregularApps {
		a, err := core.Lookup(app)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range a.Versions() {
			if _, err := harness.Execute(harness.Spec{
				App: app, Version: v.Name, Platform: "svm",
				NumProcs: 5, Scale: sweepScale, Check: true,
			}); err != nil {
				t.Errorf("%s/%s P=5: %v", app, v.Name, err)
			}
		}
	}
}
