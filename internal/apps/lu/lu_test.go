package lu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
)

func runLU(t *testing.T, version, plat string, np int, scale float64) *stats.Run {
	t.Helper()
	as := mem.NewAddressSpace(platform.PageSize, np)
	a, err := core.Lookup("lu")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := a.Build(version, scale, as, np)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platform.Make(plat, as, np)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.New(pl, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager})
	run := k.Run("lu/"+version+"@"+plat, inst.Body)
	if err := inst.Verify(); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	return run
}

func TestLUCorrectAllVersionsSVM(t *testing.T) {
	for _, v := range []string{"orig", "pad", "4d", "4da"} {
		t.Run(v, func(t *testing.T) { runLU(t, v, "svm", 4, 0.25) })
	}
}

func TestLUCorrectAcrossPlatforms(t *testing.T) {
	for _, pl := range platform.Names {
		t.Run(pl, func(t *testing.T) { runLU(t, "4da", pl, 4, 0.25) })
	}
}

func TestLUUniprocessor(t *testing.T) {
	runLU(t, "orig", "svm", 1, 0.25)
}

func TestLU4dReducesFaultsVsOrig(t *testing.T) {
	orig := runLU(t, "orig", "svm", 8, 0.5)
	opt := runLU(t, "4da", "svm", 8, 0.5)
	of := orig.AggregateCounters().PageFetches
	nf := opt.AggregateCounters().PageFetches
	if nf >= of {
		t.Errorf("4da fetches %d >= orig fetches %d; restructuring must cut communication", nf, of)
	}
	if opt.EndTime >= orig.EndTime {
		t.Errorf("4da time %d >= orig time %d on SVM", opt.EndTime, orig.EndTime)
	}
}

func TestLUVersionsListed(t *testing.T) {
	a, _ := core.Lookup("lu")
	vs := a.Versions()
	if len(vs) != 4 || vs[0].Class != core.Orig {
		t.Fatalf("unexpected versions: %+v", vs)
	}
}

func TestLUUnknownVersion(t *testing.T) {
	as := mem.NewAddressSpace(platform.PageSize, 2)
	a, _ := core.Lookup("lu")
	if _, err := a.Build("nope", 1, as, 2); err == nil {
		t.Error("expected error for unknown version")
	}
}
