package lu

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
)

// Fingerprint implements core.Fingerprinter: the in-place LU factors, the
// same data Verify multiplies back. Every processor updates disjoint blocks
// in a fixed order, so the factors are bit-identical across platforms and
// processor counts.
func (in *instance) Fingerprint() uint64 {
	h := apputil.NewHash()
	h.Floats(in.data)
	return h.Sum()
}

var _ core.Fingerprinter = (*instance)(nil)
