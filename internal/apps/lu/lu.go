// Package lu reimplements the SPLASH-2 blocked dense LU factorization
// (paper §2.2.1, §4.1.1). The kernel factors an n x n matrix without
// pivoting using B x B blocks under a 2-d scatter decomposition. The
// restructured versions differ only in the simulated memory layout of the
// matrix:
//
//   - orig: the "non-contiguous" 2-d array — a page spans sub-rows of
//     blocks owned by different processors (false sharing + fragmentation);
//   - pad:  each sub-row of each block padded and aligned to a page (the
//     paper's P/A attempt — storage-hungry and still fragmented);
//   - 4d:   the "contiguous" 4-d array: every block contiguous (DS class);
//   - 4da:  4-d with blocks additionally page-aligned and homed at their
//     owners — the version that reaches the paper's 20.6 speedup.
package lu

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/apps/apputil"
	"repro/internal/mem"
	"repro/internal/sim"
)

// blockSize is the paper's 32x32 blocking ("even with the 32 by 32 blocks,
// we use only 32x8 or 256 bytes out of each 4KB page", §4.1.1).
const blockSize = 32

type app struct{}

func init() { core.Register(app{}) }

// Name implements core.App.
func (app) Name() string { return "lu" }

// Versions implements core.App.
func (app) Versions() []core.Version {
	return []core.Version{
		{Name: "orig", Class: core.Orig, Desc: "non-contiguous 2-d array"},
		{Name: "pad", Class: core.PA, Desc: "block sub-rows padded and page-aligned"},
		{Name: "4d", Class: core.DS, Desc: "contiguous blocks (4-d array)"},
		{Name: "4da", Class: core.Alg, Desc: "4-d blocks page-aligned and homed at owners"},
	}
}

// padLayout is the paper's P/A layout: every sub-row of every block sits on
// its own page ("we use only 32x8 or 256 bytes out of each 4KB page").
type padLayout struct {
	base     uint64
	n, b     int
	pageSize uint64
}

func (l *padLayout) Addr(i, j int) uint64 {
	subRow := i*(l.n/l.b) + j/l.b
	return l.base + uint64(subRow)*l.pageSize + uint64(j%l.b)*8
}

type instance struct {
	n, b, np int
	pr, pc   int // processor grid
	lay      mem.Layout2D
	data     []float64
	orig     []float64
}

// Build implements core.App.
func (app) Build(version string, scale float64, as *mem.AddressSpace, np int) (core.Instance, error) {
	n := int(256 * scale)
	n = (n / blockSize) * blockSize
	if n < 2*blockSize {
		n = 2 * blockSize
	}
	in := &instance{n: n, b: blockSize, np: np}
	in.pr, in.pc = procGrid(np)

	nb := n / in.b
	switch version {
	case "orig":
		m := mem.NewArray2D(as, n, n, 8)
		as.DistributeRoundRobin(m.Base, m.Size())
		in.lay = m
	case "pad":
		l := &padLayout{n: n, b: in.b, pageSize: as.PageSize()}
		size := nb * n * int(as.PageSize())
		l.base = as.AllocPages(size)
		// With a page per sub-row, pages CAN be homed at owners.
		for i := 0; i < n; i++ {
			for bj := 0; bj < nb; bj++ {
				a := l.Addr(i, bj*in.b)
				as.SetHome(a, int(as.PageSize()), in.owner(i/in.b, bj))
			}
		}
		in.lay = l
	case "4d":
		// A realistic heap offset: without explicit alignment the
		// allocator does not hand out page-aligned blocks, so block
		// boundaries straddle pages shared with the neighbouring
		// block's owner — the paper's Figure 3 situation ("page
		// alignment problems").
		as.Alloc(1280)
		m := mem.NewArray4D(as, n, n, in.b, in.b, 8, 1)
		for bi := 0; bi < nb; bi++ {
			for bj := 0; bj < nb; bj++ {
				as.SetHome(m.BlockAddr(bi, bj), m.BlockBytes(), in.owner(bi, bj))
			}
		}
		in.lay = m
	case "4da":
		m := mem.NewArray4D(as, n, n, in.b, in.b, 8, as.PageSize())
		for bi := 0; bi < nb; bi++ {
			for bj := 0; bj < nb; bj++ {
				as.SetHome(m.BlockAddr(bi, bj), int(m.BlockStride()), in.owner(bi, bj))
			}
		}
		in.lay = m
	default:
		return nil, fmt.Errorf("lu: unknown version %q", version)
	}

	// A well-conditioned, diagonally dominant random matrix.
	rng := apputil.NewRNG(12345)
	in.data = make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			in.data[i*n+j] = rng.Float64()
		}
		in.data[i*n+i] += float64(n)
	}
	in.orig = append([]float64(nil), in.data...)
	return in, nil
}

// procGrid factors np into a near-square pr x pc grid with pc >= pr.
func procGrid(np int) (pr, pc int) {
	pr = int(math.Sqrt(float64(np)))
	for np%pr != 0 {
		pr--
	}
	return pr, np / pr
}

// owner returns the processor owning block (bi, bj) under the 2-d scatter
// decomposition.
func (in *instance) owner(bi, bj int) int {
	return (bi%in.pr)*in.pc + (bj % in.pc)
}

// touchBlock issues the simulated accesses for using block (bi, bj): one
// range per sub-row (contiguous in every layout).
func (in *instance) touchBlock(p *sim.Proc, bi, bj int, write bool) {
	b := in.b
	for r := 0; r < b; r++ {
		a := in.lay.Addr(bi*b+r, bj*b)
		if write {
			p.WriteRange(a, b*8)
		} else {
			p.ReadRange(a, b*8)
		}
	}
}

// touchBlockReuse models a block operand that the kernel's inner loops walk
// `walks` times (e.g. the U block in bmod is streamed once per row of A):
// the first walk runs normally (page faults, cold misses), a second probe
// walk measures the steady-state conflict-miss cost of the layout, and the
// remaining walks are extrapolated from the probe. This is what makes the
// 2-d layouts pay for their cache conflicts — the source of the paper's
// superlinear speedups over the 2-d uniprocessor baseline.
func (in *instance) touchBlockReuse(p *sim.Proc, bi, bj, walks int) {
	in.touchBlock(p, bi, bj, false)
	if walks <= 1 {
		return
	}
	before := p.CacheStallCycles()
	in.touchBlock(p, bi, bj, false)
	perWalk := p.CacheStallCycles() - before
	if walks > 2 {
		p.Stall(uint64(walks-2) * perWalk)
	}
}

// --- real arithmetic on the row-major matrix ---

func (in *instance) at(i, j int) *float64 { return &in.data[i*in.n+j] }

// factor performs the unblocked LU of diagonal block kk in place.
func (in *instance) factor(kk int) {
	b, o := in.b, kk*in.b
	for k := 0; k < b; k++ {
		pivot := *in.at(o+k, o+k)
		for i := k + 1; i < b; i++ {
			*in.at(o+i, o+k) /= pivot
			lik := *in.at(o+i, o+k)
			for j := k + 1; j < b; j++ {
				*in.at(o+i, o+j) -= lik * *in.at(o+k, o+j)
			}
		}
	}
}

// bdiv computes A[bi][kk] = A[bi][kk] * U^{-1} (column panel of L).
func (in *instance) bdiv(bi, kk int) {
	b := in.b
	ro, co, do := bi*b, kk*b, kk*b
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			s := *in.at(ro+i, co+j)
			for k := 0; k < j; k++ {
				s -= *in.at(ro+i, co+k) * *in.at(do+k, do+j)
			}
			*in.at(ro+i, co+j) = s / *in.at(do+j, do+j)
		}
	}
}

// bmodd computes A[kk][bj] = L^{-1} * A[kk][bj] (row panel of U; L has unit
// diagonal).
func (in *instance) bmodd(kk, bj int) {
	b := in.b
	ro, co, do := kk*b, bj*b, kk*b
	for i := 0; i < b; i++ {
		for k := 0; k < i; k++ {
			lik := *in.at(do+i, do+k)
			for j := 0; j < b; j++ {
				*in.at(ro+i, co+j) -= lik * *in.at(ro+k, co+j)
			}
		}
	}
}

// bmod computes the interior update A[bi][bj] -= A[bi][kk] * A[kk][bj].
func (in *instance) bmod(bi, bj, kk int) {
	b := in.b
	ro, co := bi*b, bj*b
	lo, uo := kk*b, kk*b
	for i := 0; i < b; i++ {
		for k := 0; k < b; k++ {
			lik := *in.at(ro+i, lo+k)
			for j := 0; j < b; j++ {
				*in.at(ro+i, co+j) -= lik * *in.at(uo+k, co+j)
			}
		}
	}
}

// Body implements core.Instance: the SPMD blocked LU.
func (in *instance) Body(p *sim.Proc) {
	id := p.ID()
	b := in.b
	nb := in.n / b
	flops := uint64(b * b * b)
	// Two barriers per step, as in SPLASH-2 LU: the diagonal factor only
	// needs its owner's own interior updates from the previous step, so
	// no barrier is needed between interior and factor.
	for kk := 0; kk < nb; kk++ {
		if in.owner(kk, kk) == id {
			in.factor(kk)
			in.touchBlockReuse(p, kk, kk, in.b)
			in.touchBlock(p, kk, kk, true)
			p.Compute(2 * flops / 3)
		}
		p.Barrier()
		for bi := kk + 1; bi < nb; bi++ {
			if in.owner(bi, kk) == id {
				in.bdiv(bi, kk)
				in.touchBlockReuse(p, kk, kk, in.b)
				in.touchBlock(p, bi, kk, false)
				in.touchBlock(p, bi, kk, true)
				p.Compute(flops)
			}
		}
		for bj := kk + 1; bj < nb; bj++ {
			if in.owner(kk, bj) == id {
				in.bmodd(kk, bj)
				in.touchBlock(p, kk, kk, false)
				in.touchBlockReuse(p, kk, bj, in.b)
				in.touchBlock(p, kk, bj, true)
				p.Compute(flops)
			}
		}
		p.Barrier()
		for bi := kk + 1; bi < nb; bi++ {
			for bj := kk + 1; bj < nb; bj++ {
				if in.owner(bi, bj) == id {
					in.bmod(bi, bj, kk)
					in.touchBlock(p, bi, kk, false)
					in.touchBlockReuse(p, kk, bj, in.b)
					in.touchBlock(p, bi, bj, false)
					in.touchBlock(p, bi, bj, true)
					p.Compute(2 * flops)
				}
			}
		}
	}
	p.Barrier()
}

// Verify implements core.Instance: reconstruct L*U and compare against the
// original matrix.
func (in *instance) Verify() error {
	n := in.n
	var maxErr float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			kmax := i
			if j < i {
				kmax = j
				s = 0
			}
			for k := 0; k < kmax; k++ {
				s += in.data[i*n+k] * in.data[k*n+j]
			}
			if i <= j {
				s += in.data[i*n+j] // U[i][j], L[i][i]=1
			} else {
				s += in.data[i*n+j] * in.data[j*n+j] // L[i][j]*U[j][j]
			}
			if e := math.Abs(s - in.orig[i*n+j]); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 1e-6*float64(n) {
		return fmt.Errorf("lu: reconstruction error %g too large", maxErr)
	}
	return nil
}
