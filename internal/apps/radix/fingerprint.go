package radix

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
)

// Fingerprint implements core.Fingerprinter: the sorted keys. The sort is a
// stable counting sort over deterministic input, so the output permutation
// is identical across platforms and processor counts.
func (in *instance) Fingerprint() uint64 {
	out := in.keys
	if passes%2 == 1 {
		out = in.scratch
	}
	h := apputil.NewHash()
	for _, k := range out {
		h.Uint32(k)
	}
	return h.Sum()
}

var _ core.Fingerprinter = (*instance)(nil)
