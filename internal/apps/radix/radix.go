// Package radix reimplements the SPLASH-2 parallel radix sort (paper §2.2.2,
// §4.2.5). Keys are sorted by repeated stable counting passes over digits.
// The permutation phase writes each key to its globally-computed destination
// slot — writes that are scattered and unpredictable, producing the massive
// page-grained false sharing the paper describes.
//
// Versions:
//
//   - orig:  permutation writes directly into the shared destination array;
//   - pad:   per-processor histogram rows padded to pages (P/A; the paper
//     finds it has little impact because the permutation is untouched);
//   - local: the SPLASH-2 [18] optimization — each processor gathers its
//     output into a local buffer and then copies consecutive runs into the
//     shared array, making remote writes less scattered (Alg class; helps,
//     "but it is still terrible").
package radix

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// The paper sorts 4M integers with radix 1024, giving output runs of
// N/radix = 4096 keys (16 KB, four pages) per bucket. We keep that ratio at
// scaled-down key counts by using radix 256: at the default 256K keys a
// bucket's output region is 1K keys (one page), and at scale 2+ it spans
// multiple pages — the regime where the local-gather optimization starts to
// reduce the number of writers per page, as in the paper.
const (
	radixBits = 8
	radix     = 1 << radixBits
	keyBits   = 16
	passes    = keyBits / radixBits
)

type app struct{}

func init() { core.Register(app{}) }

// Name implements core.App.
func (app) Name() string { return "radix" }

// Versions implements core.App.
func (app) Versions() []core.Version {
	return []core.Version{
		{Name: "orig", Class: core.Orig, Desc: "scattered permutation writes to the shared array"},
		{Name: "pad", Class: core.PA, Desc: "histograms padded to pages"},
		{Name: "local", Class: core.Alg, Desc: "gather into a local buffer, then copy contiguous runs"},
	}
}

type instance struct {
	n, np   int
	local   bool
	keys    []uint32
	scratch []uint32
	input   []uint32
	hist    [][]int // [proc][radix]

	srcAdr, dstAdr uint64 // simulated base addresses (swapped per pass)
	histAdr        uint64
	histStride     uint64 // bytes per proc histogram row
	bufAdr         []uint64 // per-proc local gather buffers (local version)
}

// Build implements core.App.
func (app) Build(version string, scale float64, as *mem.AddressSpace, np int) (core.Instance, error) {
	n := int(256 * 1024 * scale)
	if n < np*radix {
		n = np * radix
	}
	in := &instance{n: n, np: np}

	switch version {
	case "orig":
		in.histStride = radix * 4
	case "pad":
		in.histStride = (radix*4 + as.PageSize() - 1) &^ (as.PageSize() - 1)
	case "local":
		in.histStride = radix * 4
		in.local = true
	default:
		return nil, fmt.Errorf("radix: unknown version %q", version)
	}

	in.srcAdr = as.AllocPages(n * 4)
	in.dstAdr = as.AllocPages(n * 4)
	// Key chunks are distributed blocked so each processor's input is
	// local, as SPLASH-2 suggests.
	for id := 0; id < np; id++ {
		lo, hi := apputil.Split(n, np, id)
		as.SetHome(in.srcAdr+uint64(lo)*4, (hi-lo)*4, id)
		as.SetHome(in.dstAdr+uint64(lo)*4, (hi-lo)*4, id)
	}
	in.histAdr = as.AllocPages(np * int(in.histStride))
	for id := 0; id < np; id++ {
		as.SetHome(in.histAdr+uint64(id)*in.histStride, int(in.histStride), id)
	}
	if in.local {
		in.bufAdr = make([]uint64, np)
		for id := 0; id < np; id++ {
			lo, hi := apputil.Split(n, np, id)
			in.bufAdr[id] = as.AllocPages((hi - lo) * 4)
			as.SetHome(in.bufAdr[id], (hi-lo)*4, id)
		}
	}

	rng := apputil.NewRNG(424242)
	in.keys = make([]uint32, n)
	for i := range in.keys {
		in.keys[i] = uint32(rng.Uint64() & (1<<keyBits - 1))
	}
	in.input = append([]uint32(nil), in.keys...)
	in.scratch = make([]uint32, n)
	in.hist = make([][]int, np)
	for i := range in.hist {
		in.hist[i] = make([]int, radix)
	}
	return in, nil
}

// Body implements core.Instance.
func (in *instance) Body(p *sim.Proc) {
	id := p.ID()
	lo, hi := apputil.Split(in.n, in.np, id)
	src, dst := in.keys, in.scratch
	srcA, dstA := in.srcAdr, in.dstAdr

	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * radixBits)

		// Phase 1: local histogram over the processor's chunk.
		h := in.hist[id]
		for r := range h {
			h[r] = 0
		}
		p.ReadRange(srcA+uint64(lo)*4, (hi-lo)*4)
		for i := lo; i < hi; i++ {
			h[(src[i]>>shift)&(radix-1)]++
		}
		p.Compute(uint64(2 * (hi - lo)))
		p.WriteRange(in.histAdr+uint64(id)*in.histStride, radix*4)
		p.Barrier()

		// Phase 2: every processor reads all histograms and computes
		// the write offsets for its own chunk.
		for q := 0; q < in.np; q++ {
			p.ReadRange(in.histAdr+uint64(q)*in.histStride, radix*4)
		}
		p.Compute(uint64(2 * radix * in.np))
		offs := make([]int, radix)
		base := 0
		for r := 0; r < radix; r++ {
			mine := base
			for q := 0; q < id; q++ {
				mine += in.hist[q][r]
			}
			offs[r] = mine
			for q := 0; q < in.np; q++ {
				base += in.hist[q][r]
			}
		}
		p.Barrier()

		// Phase 3: permutation.
		if in.local {
			// Gather into the local buffer first: all writes are
			// local, then copy contiguous runs per bucket into the
			// shared array.
			bucketStart := make([]int, radix)
			c := 0
			for r := 0; r < radix; r++ {
				bucketStart[r] = c
				c += h[r]
			}
			// One sequential pass building the buffer (simulated
			// as local contiguous writes).
			buf := make([]uint32, hi-lo)
			fill := append([]int(nil), bucketStart...)
			p.ReadRange(srcA+uint64(lo)*4, (hi-lo)*4)
			for i := lo; i < hi; i++ {
				r := (src[i] >> shift) & (radix - 1)
				buf[fill[r]] = src[i]
				fill[r]++
			}
			p.WriteRange(in.bufAdr[id], (hi-lo)*4)
			p.Compute(uint64(4 * (hi - lo)))
			// Copy each bucket's run to its global slot. Buckets
			// are visited starting at a processor-specific offset
			// so the processors do not convoy on the same home
			// nodes.
			for rr := 0; rr < radix; rr++ {
				r := (rr + id*radix/in.np) % radix
				cnt := fill[r] - bucketStart[r]
				if cnt == 0 {
					continue
				}
				p.ReadRange(in.bufAdr[id]+uint64(bucketStart[r])*4, cnt*4)
				p.WriteRange(dstA+uint64(offs[r])*4, cnt*4)
				copy(dst[offs[r]:offs[r]+cnt], buf[bucketStart[r]:fill[r]])
			}
			p.Compute(uint64(hi - lo))
		} else {
			// Scattered remote writes, one per key.
			for i := lo; i < hi; i++ {
				r := (src[i] >> shift) & (radix - 1)
				dst[offs[r]] = src[i]
				p.Write(dstA + uint64(offs[r])*4)
				offs[r]++
			}
			p.Compute(uint64(3 * (hi - lo)))
		}
		p.Barrier()

		src, dst = dst, src
		srcA, dstA = dstA, srcA
	}
}

// Verify implements core.Instance.
func (in *instance) Verify() error {
	// passes is even, so the final sorted data is back in in.keys.
	out := in.keys
	if passes%2 == 1 {
		out = in.scratch
	}
	var sum, ref uint64
	for i := range out {
		if i > 0 && out[i-1] > out[i] {
			return fmt.Errorf("radix: out of order at %d: %d > %d", i, out[i-1], out[i])
		}
		v, w := uint64(out[i]), uint64(in.input[i])
		sum += v*v + v*31
		ref += w*w + w*31
	}
	if sum != ref {
		return fmt.Errorf("radix: output is not a permutation of the input")
	}
	return nil
}
