package radix

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
)

func runRadix(t *testing.T, version, plat string, np int, scale float64) *stats.Run {
	t.Helper()
	as := mem.NewAddressSpace(platform.PageSize, np)
	a, err := core.Lookup("radix")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := a.Build(version, scale, as, np)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platform.Make(plat, as, np)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.New(pl, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager})
	run := k.Run("radix/"+version+"@"+plat, inst.Body)
	if err := inst.Verify(); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	return run
}

func TestRadixSortsAllVersions(t *testing.T) {
	for _, v := range []string{"orig", "pad", "local"} {
		t.Run(v, func(t *testing.T) { runRadix(t, v, "svm", 4, 0.125) })
	}
}

func TestRadixAcrossPlatforms(t *testing.T) {
	for _, pl := range platform.Names {
		t.Run(pl, func(t *testing.T) { runRadix(t, "orig", pl, 4, 0.125) })
	}
}

func TestRadixUniprocessor(t *testing.T) {
	runRadix(t, "orig", "svm", 1, 0.125)
}

func TestRadixMatchesSortReference(t *testing.T) {
	as := mem.NewAddressSpace(platform.PageSize, 2)
	a, _ := core.Lookup("radix")
	instI, err := a.Build("orig", 0.125, as, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := instI.(*instance)
	want := append([]uint32(nil), in.input...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	pl, _ := platform.Make("svm", as, 2)
	sim.New(pl, sim.Config{NumProcs: 2}).Run("radix", in.Body)
	for i := range want {
		if in.keys[i] != want[i] {
			t.Fatalf("key %d = %d, want %d", i, in.keys[i], want[i])
		}
	}
}

func TestRadixLocalBufferVersion(t *testing.T) {
	// With stable rank-offset destinations, each processor's page working
	// set is identical in both versions — only the write ORDER differs —
	// so SVM protocol traffic is equal by construction and only local
	// cache behaviour improves (see EXPERIMENTS.md for the deviation
	// from the paper's 1.4 -> 2.24 step). The gathered version must not
	// be significantly worse, and its scattered-write cache stalls must
	// drop.
	orig := runRadix(t, "orig", "svm", 8, 1)
	local := runRadix(t, "local", "svm", 8, 1)
	if lo, oo := local.AggregateCounters().TwinsMade, orig.AggregateCounters().TwinsMade; lo != oo {
		t.Errorf("local twins %d != orig twins %d (page working sets should match)", lo, oo)
	}
	if float64(local.EndTime) > 1.6*float64(orig.EndTime) {
		t.Errorf("local time %d is much worse than orig time %d", local.EndTime, orig.EndTime)
	}
	// Both versions stay far from linear speedup — the paper's bottom
	// line for Radix on SVM ("the major outstanding problems are still
	// communication volume and contention").
	for _, r := range []*stats.Run{orig, local} {
		if w := r.TotalCycles(stats.DataWait) + r.TotalCycles(stats.BarrierWait); w < r.TotalCycles(stats.Compute) {
			t.Errorf("%s: communication+barrier (%d) should dominate compute (%d)", r.Name, w, r.TotalCycles(stats.Compute))
		}
	}
}
