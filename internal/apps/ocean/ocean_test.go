package ocean

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
)

func runOcean(t *testing.T, version, plat string, np int, scale float64) *stats.Run {
	t.Helper()
	as := mem.NewAddressSpace(platform.PageSize, np)
	a, err := core.Lookup("ocean")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := a.Build(version, scale, as, np)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platform.Make(plat, as, np)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.New(pl, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager})
	run := k.Run("ocean/"+version+"@"+plat, inst.Body)
	if err := inst.Verify(); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	return run
}

func TestOceanCorrectAllVersionsSVM(t *testing.T) {
	for _, v := range []string{"orig", "pad", "4d", "rows"} {
		t.Run(v, func(t *testing.T) { runOcean(t, v, "svm", 4, 0.25) })
	}
}

func TestOceanCorrectAcrossPlatforms(t *testing.T) {
	for _, pl := range platform.Names {
		t.Run(pl, func(t *testing.T) { runOcean(t, "rows", pl, 4, 0.25) })
	}
}

func TestOceanUniprocessor(t *testing.T) {
	runOcean(t, "orig", "svm", 1, 0.25)
}

func TestOceanColumnBoundaryFragmentation(t *testing.T) {
	// Square partitions communicate word-at-a-time at column boundaries;
	// row-wise partitions fetch whole useful pages. The 4d square version
	// must therefore fetch more pages than the row-wise version.
	sq := runOcean(t, "4d", "svm", 16, 0.5)
	rw := runOcean(t, "rows", "svm", 16, 0.5)
	if rw.AggregateCounters().PageFetches >= sq.AggregateCounters().PageFetches {
		t.Errorf("rows fetches (%d) should be below square 4d fetches (%d)",
			rw.AggregateCounters().PageFetches, sq.AggregateCounters().PageFetches)
	}
	if rw.EndTime >= sq.EndTime {
		t.Errorf("rows (%d cycles) should beat square 4d (%d cycles) on SVM", rw.EndTime, sq.EndTime)
	}
}

func TestOceanColumnOwnersImbalanced(t *testing.T) {
	// Paper Figure 4: processors whose square partitions have two
	// column-oriented boundaries fetch more remote pages than those with
	// one. With a 4x4 grid, interior-column owners have two.
	run := runOcean(t, "4d", "svm", 16, 0.5)
	interior := run.Procs[5].Counters.PageFetches  // grid position (1,1)
	corner := run.Procs[0].Counters.PageFetches    // grid position (0,0)
	if interior <= corner {
		t.Errorf("interior proc fetches %d <= corner proc %d; want imbalance", interior, corner)
	}
}
