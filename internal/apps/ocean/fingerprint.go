package ocean

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
)

// Fingerprint implements core.Fingerprinter: the final grid plus the
// convergence sum. Each point is relaxed by exactly one processor per
// iteration and errSum folds in processor-id order, so both are
// bit-identical across platforms and processor counts.
func (in *instance) Fingerprint() uint64 {
	final := in.a
	if iterations%2 == 1 {
		final = in.b
	}
	h := apputil.NewHash()
	h.Floats(final)
	h.Float64(in.errSum)
	return h.Sum()
}

var _ core.Fingerprinter = (*instance)(nil)
