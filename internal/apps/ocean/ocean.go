// Package ocean reimplements the memory behaviour of SPLASH-2 Ocean (paper
// §2.2.1, §4.1.2): an iterative nearest-neighbour solver over regular grids
// with many barriers per time-step and a lock-protected global convergence
// test. The solver is a Jacobi relaxation over two grids — the paper
// analyses Ocean purely as a near-neighbour grid code, so the full
// eddy-current physics adds nothing to the study (see DESIGN.md §6).
//
// Versions:
//
//   - orig: 2-d arrays, square subgrid partitions — fine-grained sharing at
//     column-oriented boundaries, false sharing inside pages that span
//     several processors' sub-rows;
//   - pad:  every grid row padded and aligned to a page (P/A class);
//   - 4d:   4-d arrays, square partitions contiguous and homed at their
//     owners (DS class, the SPLASH-2 "contiguous" version);
//   - rows: row-wise partitioning of n/p contiguous whole rows (Alg class) —
//     a worse inherent communication-to-computation ratio, but only
//     coarse-grained row-boundary communication, and partitions are
//     contiguous even in a plain 2-d array.
package ocean

import (
	"fmt"
	"math"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

const iterations = 20

type app struct{}

func init() { core.Register(app{}) }

// Name implements core.App.
func (app) Name() string { return "ocean" }

// Versions implements core.App.
func (app) Versions() []core.Version {
	return []core.Version{
		{Name: "orig", Class: core.Orig, Desc: "2-d arrays, square partitions"},
		{Name: "pad", Class: core.PA, Desc: "rows padded and page-aligned"},
		{Name: "4d", Class: core.DS, Desc: "contiguous square partitions (4-d arrays)"},
		{Name: "rows", Class: core.Alg, Desc: "row-wise partitioning of contiguous rows"},
	}
}

type instance struct {
	n, np  int
	pr, pc int  // processor grid (square versions)
	rows   bool // row-wise partitioning
	a, b   []float64
	ref    []float64 // sequential reference result
	la, lb mem.Layout2D
	blockW int // 4-d block width, 0 for 2-d layouts
	errAdr uint64
	errSum float64
	// errParts[id] is processor id's convergence contribution for the
	// current iteration; proc 0 folds them in id order so errSum does not
	// depend on the simulated lock-grant order (floats don't associate).
	errParts []float64
}

// Build implements core.App.
func (app) Build(version string, scale float64, as *mem.AddressSpace, np int) (core.Instance, error) {
	in := &instance{np: np}
	in.pr, in.pc = procGrid(np)
	n := int(256 * scale)
	// Grid must divide evenly into the processor grid for both layouts.
	lcm := in.pr * in.pc
	n = (n / lcm) * lcm
	if n < 4*lcm {
		n = 4 * lcm
	}
	in.n = n

	mk2d := func(pad bool) (mem.Layout2D, mem.Layout2D) {
		if pad {
			return mem.NewArray2DPadded(as, n, n, 8, as.PageSize()),
				mem.NewArray2DPadded(as, n, n, 8, as.PageSize())
		}
		ga := mem.NewArray2D(as, n, n, 8)
		gb := mem.NewArray2D(as, n, n, 8)
		return ga, gb
	}

	switch version {
	case "orig":
		in.la, in.lb = mk2d(false)
		for _, l := range []mem.Layout2D{in.la, in.lb} {
			m := l.(*mem.Array2D)
			as.DistributeRoundRobin(m.Base, m.Size())
		}
	case "pad":
		in.la, in.lb = mk2d(true)
		for _, l := range []mem.Layout2D{in.la, in.lb} {
			m := l.(*mem.Array2D)
			// Row-aligned pages can at least be homed at the row's
			// majority owner (the processor-row owning the row).
			for i := 0; i < n; i++ {
				as.SetHome(m.RowAddr(i), int(m.Pitch), in.ownerSquare(i, 0))
			}
		}
	case "4d":
		bh, bw := n/in.pr, n/in.pc
		in.blockW = bw
		m1 := mem.NewArray4D(as, n, n, bh, bw, 8, as.PageSize())
		m2 := mem.NewArray4D(as, n, n, bh, bw, 8, as.PageSize())
		for bi := 0; bi < in.pr; bi++ {
			for bj := 0; bj < in.pc; bj++ {
				owner := bi*in.pc + bj
				as.SetHome(m1.BlockAddr(bi, bj), int(m1.BlockStride()), owner)
				as.SetHome(m2.BlockAddr(bi, bj), int(m2.BlockStride()), owner)
			}
		}
		in.la, in.lb = m1, m2
	case "rows":
		in.rows = true
		in.la, in.lb = mk2d(false)
		for _, l := range []mem.Layout2D{in.la, in.lb} {
			m := l.(*mem.Array2D)
			for id := 0; id < np; id++ {
				lo, hi := apputil.Split(n, np, id)
				as.SetHome(m.RowAddr(lo), (hi-lo)*int(m.Pitch), id)
			}
		}
	default:
		return nil, fmt.Errorf("ocean: unknown version %q", version)
	}

	in.errAdr = as.Alloc(8)
	in.errParts = make([]float64, np)

	// Initial condition: a smooth bump plus deterministic noise.
	in.a = make([]float64, n*n)
	in.b = make([]float64, n*n)
	rng := apputil.NewRNG(777)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := float64(i) / float64(n)
			y := float64(j) / float64(n)
			in.a[i*n+j] = math.Sin(math.Pi*x)*math.Sin(math.Pi*y) + 0.01*rng.Float64()
		}
	}
	copy(in.b, in.a)
	in.ref = sequentialReference(in.a, n)
	return in, nil
}

func procGrid(np int) (pr, pc int) {
	pr = int(math.Sqrt(float64(np)))
	for np%pr != 0 {
		pr--
	}
	return pr, np / pr
}

// sequentialReference runs the same Jacobi iterations serially.
func sequentialReference(init []float64, n int) []float64 {
	a := append([]float64(nil), init...)
	b := append([]float64(nil), init...)
	for t := 0; t < iterations; t++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				b[i*n+j] = 0.2 * (a[i*n+j] + a[(i-1)*n+j] + a[(i+1)*n+j] + a[i*n+j-1] + a[i*n+j+1])
			}
		}
		a, b = b, a
	}
	return a
}

// ownerSquare returns the owner of point (i, j) under the square partition.
func (in *instance) ownerSquare(i, j int) int {
	bh, bw := in.n/in.pr, in.n/in.pc
	return (i/bh)*in.pc + j/bw
}

// span returns this processor's subgrid [r0,r1) x [c0,c1).
func (in *instance) span(id int) (r0, r1, c0, c1 int) {
	if in.rows {
		r0, r1 = apputil.Split(in.n, in.np, id)
		return r0, r1, 0, in.n
	}
	bh, bw := in.n/in.pr, in.n/in.pc
	pi, pj := id/in.pc, id%in.pc
	return pi * bh, (pi + 1) * bh, pj * bw, (pj + 1) * bw
}

// touchRowSpan touches the cache lines of logical row i, columns [j0, j1),
// splitting at 4-d block boundaries where the row is not contiguous.
func (in *instance) touchRowSpan(p *sim.Proc, l mem.Layout2D, i, j0, j1 int, write bool) {
	if in.blockW == 0 {
		a := l.Addr(i, j0)
		if write {
			p.WriteRange(a, (j1-j0)*8)
		} else {
			p.ReadRange(a, (j1-j0)*8)
		}
		return
	}
	for j := j0; j < j1; {
		end := (j/in.blockW + 1) * in.blockW
		if end > j1 {
			end = j1
		}
		a := l.Addr(i, j)
		if write {
			p.WriteRange(a, (end-j)*8)
		} else {
			p.ReadRange(a, (end-j)*8)
		}
		j = end
	}
}

// Body implements core.Instance.
func (in *instance) Body(p *sim.Proc) {
	id := p.ID()
	n := in.n
	r0, r1, c0, c1 := in.span(id)
	src, dst := in.a, in.b
	lsrc, ldst := in.la, in.lb

	for t := 0; t < iterations; t++ {
		var localErr float64
		// Ghost reads: the boundary rows/columns of neighbouring
		// partitions. Row boundaries are contiguous; column
		// boundaries are one word per page-strided row — the paper's
		// fine-grained fragmentation case.
		if r0 > 1 {
			in.touchRowSpan(p, lsrc, r0-1, c0, c1, false)
		}
		if r1 < n-1 {
			in.touchRowSpan(p, lsrc, r1, c0, c1, false)
		}
		if c0 > 1 {
			for i := r0; i < r1; i++ {
				p.Read(lsrc.Addr(i, c0-1))
			}
		}
		if c1 < n-1 {
			for i := r0; i < r1; i++ {
				p.Read(lsrc.Addr(i, c1))
			}
		}
		// Interior update.
		for i := max(r0, 1); i < min(r1, n-1); i++ {
			jlo, jhi := max(c0, 1), min(c1, n-1)
			in.touchRowSpan(p, lsrc, i, jlo, jhi, false)
			in.touchRowSpan(p, ldst, i, jlo, jhi, true)
			for j := jlo; j < jhi; j++ {
				v := 0.2 * (src[i*n+j] + src[(i-1)*n+j] + src[(i+1)*n+j] + src[i*n+j-1] + src[i*n+j+1])
				if d := math.Abs(v - src[i*n+j]); d > localErr {
					localErr = d
				}
				dst[i*n+j] = v
			}
			p.Compute(uint64(7 * (jhi - jlo)))
		}
		// Global convergence accumulation under a lock, as in Ocean. The
		// simulated traffic stays the shared-word read-modify-write, but
		// the host-side value is deposited per processor and folded in id
		// order by proc 0 after the barrier: summing here in lock-grant
		// order made errSum interleaving-dependent (floats don't
		// associate), and the old "proc 0 resets at t=0" under the lock
		// discarded whichever t=0 contributions were deposited before
		// proc 0 happened to get the lock.
		p.Lock(1)
		p.Read(in.errAdr)
		in.errParts[id] = localErr
		p.Write(in.errAdr)
		p.Unlock(1)
		p.Barrier()
		if id == 0 {
			if t == 0 {
				in.errSum = 0
			}
			for _, e := range in.errParts {
				in.errSum += e
			}
		}
		src, dst = dst, src
		lsrc, ldst = ldst, lsrc
		p.Barrier()
	}
}

// Verify implements core.Instance.
func (in *instance) Verify() error {
	final := in.a
	if iterations%2 == 1 {
		final = in.b
	}
	for i := range final {
		if math.Abs(final[i]-in.ref[i]) > 1e-12 {
			return fmt.Errorf("ocean: grid point %d = %g, want %g", i, final[i], in.ref[i])
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
