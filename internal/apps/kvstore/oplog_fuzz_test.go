package kvstore

import (
	"bytes"
	"testing"
)

// FuzzDecodeOps drives arbitrary bytes through the op-log decoder: it must
// never panic, and anything it accepts must re-encode byte-identically
// (the format is canonical).
func FuzzDecodeOps(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(oplogMagic))
	f.Add(EncodeOps(nil))
	f.Add(EncodeOps([]Op{{Key: 7, Delta: 0}, {Key: 9, Delta: 1 << 16}}))
	f.Add(EncodeOps(GenerateOps(64, 100, 1)))
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := DecodeOps(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeOps(ops), data) {
			t.Fatalf("accepted input does not re-encode canonically (%d ops)", len(ops))
		}
	})
}
