package kvstore

import (
	"encoding/binary"
	"fmt"
)

// Operation-log wire format, for capturing and replaying request traces
// against the service versions (and for fuzzing the decoder in CI):
//
//	magic   "kvoplog1"           8 bytes
//	count   uint32 little-endian 4 bytes
//	records count x { key uint32 LE, delta uint32 LE }
//
// A delta of zero is a get, anything else a put. The encoding is canonical:
// DecodeOps(EncodeOps(ops)) round-trips exactly, and any accepted input
// re-encodes to itself.

const (
	oplogMagic = "kvoplog1"
	// maxOps bounds decoded logs (64 Mi operations, a 512 MiB log) so a
	// corrupt count cannot drive a huge allocation.
	maxOps = 1 << 26
)

// EncodeOps serializes an operation log in the canonical wire format.
func EncodeOps(ops []Op) []byte {
	buf := make([]byte, len(oplogMagic)+4+8*len(ops))
	copy(buf, oplogMagic)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(ops)))
	for i, op := range ops {
		binary.LittleEndian.PutUint32(buf[12+8*i:], op.Key)
		binary.LittleEndian.PutUint32(buf[16+8*i:], op.Delta)
	}
	return buf
}

// DecodeOps parses the canonical wire format, rejecting bad magic,
// truncated or oversized payloads, and counts past the sanity bound.
func DecodeOps(data []byte) ([]Op, error) {
	if len(data) < len(oplogMagic)+4 {
		return nil, fmt.Errorf("kvstore: op log too short (%d bytes)", len(data))
	}
	if string(data[:8]) != oplogMagic {
		return nil, fmt.Errorf("kvstore: bad op log magic %q", data[:8])
	}
	n := binary.LittleEndian.Uint32(data[8:])
	if n > maxOps {
		return nil, fmt.Errorf("kvstore: op log count %d exceeds limit %d", n, maxOps)
	}
	want := len(oplogMagic) + 4 + 8*int(n)
	if len(data) != want {
		return nil, fmt.Errorf("kvstore: op log length %d, header says %d", len(data), want)
	}
	ops := make([]Op, n)
	for i := range ops {
		ops[i].Key = binary.LittleEndian.Uint32(data[12+8*i:])
		ops[i].Delta = binary.LittleEndian.Uint32(data[16+8*i:])
	}
	return ops, nil
}
