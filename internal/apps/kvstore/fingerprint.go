package kvstore

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
)

// Fingerprint implements core.Fingerprinter: the final table contents in
// key order. Puts are commutative additions applied atomically with respect
// to simulated yields, so the values are identical across platforms,
// processor counts, interleavings, and table layouts.
func (in *instance) Fingerprint() uint64 {
	h := apputil.NewHash()
	for _, v := range in.vals {
		h.Uint64(v)
	}
	return h.Sum()
}

var _ core.Fingerprinter = (*instance)(nil)
