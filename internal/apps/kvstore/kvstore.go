// Package kvstore is the first of the irregular modern workloads of ROADMAP
// item 3: a concurrent key-value service — zipf-keyed get/put operations over
// a shared hash table — restructured along the paper's §3 taxonomy. The
// access pattern is the opposite of the SPLASH codes: no phase structure, no
// spatial locality, every processor hashing into the same table, with a zipf
// head of hot keys providing true sharing and the table layout deciding how
// much false sharing rides along.
//
// Versions:
//
//   - orig:  chained buckets with entries allocated from a global pool in
//     insertion order, so a chain walk is a dependent pointer chase across
//     pages and entry writes false-share pool pages (and cache lines);
//   - pad:   P/A — entries padded and aligned to the hardware coherence
//     grain (64 B). Kills line-grain false sharing for the hardware
//     platforms, does nothing about page-grain sharing on SVM;
//   - open:  DS — the table reorganized into bucketized open addressing:
//     page-sized buckets of inline slots, so a probe sequence almost always
//     stays within a single page and the pointer chase is gone;
//   - shard: Alg — batched operation shipping: keys are range-partitioned
//     across processors, each round every processor buckets its operations
//     into per-owner outboxes (bulk writes to singly-written pages homed at
//     the reader), and after a barrier each owner applies the operations
//     destined to it against its own locally-homed open-addressed shard,
//     writing get replies into per-requester reply buffers.
//
// Puts are commutative (put(k, d) adds d to the key's value) and the
// host-side table mutation is a single Go statement between simulated
// events, so the final table contents — and therefore the fingerprint — are
// independent of the simulated interleaving, the platform, and the
// processor count. Gets perform the simulated probe traffic but their
// observed values are timing-dependent and are deliberately excluded from
// the fingerprint.
package kvstore

import (
	"fmt"
	"math"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

const (
	baseKeys = 4096
	baseOps  = 32768
	// keysPerBucket sets the chained-table bucket count (numKeys /
	// keysPerBucket buckets): average chains of four dependent entries.
	keysPerBucket = 4
	// zipfTheta skews the key popularity (0 = uniform; ~1 = web-like).
	zipfTheta = 0.9
	// putFraction of operations are puts, in 1/256ths (77 ≈ 30%).
	putFraction = 77
	// entryBytes is an unpadded entry: key, value, next link.
	entryBytes = 16
	// lineBytes is the hardware coherence grain the pad version aligns to.
	lineBytes = 64
	// shardRounds is how many distribute/apply/reply rounds the shard
	// version splits the operation log into.
	shardRounds = 4
)

type app struct{}

func init() { core.RegisterExtension(app{}) }

// Name implements core.App.
func (app) Name() string { return "kvstore" }

// Versions implements core.App.
func (app) Versions() []core.Version {
	return []core.Version{
		{Name: "orig", Class: core.Orig, Desc: "chained buckets, entries pooled in insertion order (pointer chase, pool false sharing)"},
		{Name: "pad", Class: core.PA, Desc: "entries padded+aligned to the 64 B hardware line"},
		{Name: "open", Class: core.DS, Desc: "bucketized open addressing: inline slots, probes confined to one page"},
		{Name: "shard", Class: core.Alg, Desc: "range-sharded table with batched per-owner operation shipping"},
	}
}

type version int

const (
	vOrig version = iota
	vPad
	vOpen
	vShard
)

type instance struct {
	ver      version
	np       int
	numKeys  int
	ops      []Op
	vals     []uint64 // live table contents, mutated during the run
	expected []uint64 // sequential replay of the op log, fixed at Build

	opsAdr uint64

	// Chained versions (orig, pad).
	chainNext []int32 // key -> next key in its chain, -1 at tail
	heads     []int32 // bucket -> first key, -1 when empty
	headAdr   uint64
	poolAdr   uint64
	entrySize uint64

	// Open-addressed versions (open, shard). path[k] is the exact probe
	// sequence for key k — slot indices relative to tableAdr, ending at
	// the key's resolved slot — fixed at Build so a simulated lookup
	// replays exactly the references a real probe would issue.
	path     [][]int32
	tableAdr uint64
	spp      int // slots per page

	// Shard version.
	outAdr, repAdr [][]uint64 // [src][dst] outbox / [owner][requester] reply bases
	cntAdr         uint64     // np*np counts matrix, one 8 B word each
}

// Op is one operation of the log: a get when Delta is zero, otherwise a
// put that adds Delta to the key's value.
type Op struct {
	Key   uint32
	Delta uint32
}

// Build implements core.App.
func (app) Build(versionName string, scale float64, as *mem.AddressSpace, np int) (core.Instance, error) {
	in := &instance{np: np, spp: int(as.PageSize()) / entryBytes}
	switch versionName {
	case "orig":
		in.ver, in.entrySize = vOrig, entryBytes
	case "pad":
		in.ver, in.entrySize = vPad, lineBytes
	case "open":
		in.ver = vOpen
	case "shard":
		in.ver = vShard
	default:
		return nil, fmt.Errorf("kvstore: unknown version %q", versionName)
	}

	in.numKeys = int(baseKeys * scale)
	if in.numKeys < np*keysPerBucket {
		in.numKeys = np * keysPerBucket
	}
	nops := int(baseOps * scale)
	if nops < np*shardRounds {
		nops = np * shardRounds
	}
	in.ops = GenerateOps(in.numKeys, nops, 707)
	in.vals = make([]uint64, in.numKeys)
	rng := apputil.NewRNG(909)
	for k := range in.vals {
		in.vals[k] = rng.Uint64()
	}
	in.expected = append([]uint64(nil), in.vals...)
	ReplayOps(in.ops, in.expected)

	in.opsAdr = as.AllocPages(nops * 8)
	for id := 0; id < np; id++ {
		lo, hi := apputil.Split(nops, np, id)
		if hi > lo {
			as.SetHome(in.opsAdr+uint64(lo)*8, (hi-lo)*8, id)
		}
	}

	switch in.ver {
	case vOrig, vPad:
		in.buildChains(as)
	case vOpen:
		in.buildOpenTable(as, 0, in.numKeys, -1)
	case vShard:
		in.buildShard(as)
	}
	return in, nil
}

// hash spreads key ids (Fibonacci hashing) so bucket occupancy is uniform
// even though key ids are dense.
func hash(k uint32) uint32 { return k * 2654435761 }

// buildChains lays out the chained table: a packed head array plus a global
// entry pool in key order, so consecutive keys of one bucket sit ~numBuckets
// entries — typically pages — apart.
func (in *instance) buildChains(as *mem.AddressSpace) {
	numBuckets := in.numBuckets()
	in.heads = make([]int32, numBuckets)
	for b := range in.heads {
		in.heads[b] = -1
	}
	in.chainNext = make([]int32, in.numKeys)
	tail := make([]int32, numBuckets)
	for k := 0; k < in.numKeys; k++ {
		b := hash(uint32(k)) % uint32(numBuckets)
		in.chainNext[k] = -1
		if in.heads[b] < 0 {
			in.heads[b] = int32(k)
		} else {
			in.chainNext[tail[b]] = int32(k)
		}
		tail[b] = int32(k)
	}
	align := uint64(8)
	if in.ver == vPad {
		align = lineBytes
	}
	// Chain heads are written only at (untimed) build, so padding them buys
	// nothing; the pad version pads the entries, which take the put writes.
	in.headAdr = as.AllocPages(numBuckets * 4)
	in.poolAdr = as.AllocAlign(in.numKeys*int(in.entrySize), align)
}

func (in *instance) numBuckets() int {
	n := in.numKeys / keysPerBucket
	if n < 1 {
		n = 1
	}
	return n
}

// buildOpenTable inserts keys [lo, hi) into a fresh open-addressed region
// sized for ~50% load — page-sized buckets of inline 16 B slots, linear
// probing with wraparound — and records each key's probe path. home >= 0
// homes the whole region on that node (the shard version's per-owner
// sub-tables); home < 0 leaves the default round-robin placement.
func (in *instance) buildOpenTable(as *mem.AddressSpace, lo, hi, home int) {
	if in.path == nil {
		in.path = make([][]int32, in.numKeys)
	}
	numPages := (hi - lo + in.spp/2 - 1) / (in.spp / 2)
	if numPages < 1 {
		numPages = 1
	}
	total := numPages * in.spp
	base := as.AllocPages(total * entryBytes)
	if in.tableAdr == 0 {
		in.tableAdr = base
	}
	if home >= 0 {
		as.SetHome(base, total*entryBytes, home)
	}
	occupied := make([]bool, total)
	baseSlot := int32((base - in.tableAdr) / entryBytes)
	for k := lo; k < hi; k++ {
		h := hash(uint32(k - lo))
		s := int(h)%numPages*in.spp + int(h>>16)%in.spp
		path := []int32{baseSlot + int32(s)}
		for occupied[s] {
			s = (s + 1) % total
			path = append(path, baseSlot+int32(s))
		}
		occupied[s] = true
		in.path[k] = path
	}
}

// buildShard lays out the Alg version: per-owner open sub-tables homed at
// their owner, plus page-aligned per-(src,dst) outbox, count, and reply
// regions so every communication buffer has exactly one writer.
func (in *instance) buildShard(as *mem.AddressSpace) {
	for q := 0; q < in.np; q++ {
		lo, hi := apputil.Split(in.numKeys, in.np, q)
		in.buildOpenTable(as, lo, hi, q)
	}
	rc := in.roundCap()
	in.cntAdr = as.AllocPages(in.np * in.np * 8)
	in.outAdr = make([][]uint64, in.np)
	in.repAdr = make([][]uint64, in.np)
	for p := 0; p < in.np; p++ {
		in.outAdr[p] = make([]uint64, in.np)
		in.repAdr[p] = make([]uint64, in.np)
	}
	for p := 0; p < in.np; p++ {
		for q := 0; q < in.np; q++ {
			// Outbox p->q homed at the reader q; reply q->p homed at p.
			in.outAdr[p][q] = as.AllocPages(rc * 8)
			as.SetHome(in.outAdr[p][q], rc*8, q)
			in.repAdr[q][p] = as.AllocPages(rc * 8)
			as.SetHome(in.repAdr[q][p], rc*8, p)
		}
	}
}

// roundCap bounds how many operations one processor can distribute in one
// round — the outbox and reply buffer capacity.
func (in *instance) roundCap() int {
	perRound := (len(in.ops) + shardRounds - 1) / shardRounds
	return perRound/in.np + 1
}

// owner returns the processor whose key range contains k (shard version).
func (in *instance) owner(k uint32) int {
	for q := 0; q < in.np; q++ {
		lo, hi := apputil.Split(in.numKeys, in.np, q)
		if int(k) >= lo && int(k) < hi {
			return q
		}
	}
	return in.np - 1
}

// Body implements core.Instance.
func (in *instance) Body(p *sim.Proc) {
	switch in.ver {
	case vOrig, vPad:
		in.runChained(p)
	case vOpen:
		in.runOpen(p)
	case vShard:
		in.runShard(p)
	}
	p.Barrier()
}

// runChained processes this processor's operation block against the chained
// table: walk the chain (a dependent read per entry, scattered across the
// pool), then write the value in place under the bucket lock for puts.
func (in *instance) runChained(p *sim.Proc) {
	lo, hi := apputil.Split(len(in.ops), in.np, p.ID())
	p.ReadRange(in.opsAdr+uint64(lo)*8, (hi-lo)*8)
	numBuckets := uint32(in.numBuckets())
	for i := lo; i < hi; i++ {
		op := in.ops[i]
		b := hash(op.Key) % numBuckets
		put := op.Delta != 0
		if put {
			p.Lock(int(b))
		}
		p.Read(in.headAdr + uint64(b)*4)
		for k := in.heads[b]; k >= 0; k = in.chainNext[k] {
			p.ReadRange(in.poolAdr+uint64(k)*in.entrySize, entryBytes)
			p.Compute(4)
			if uint32(k) == op.Key {
				break
			}
		}
		if put {
			in.vals[op.Key] += uint64(op.Delta)
			p.Write(in.poolAdr + uint64(op.Key)*in.entrySize + 8)
			p.Unlock(int(b))
		}
		p.Compute(12)
	}
}

// probe simulates the open-addressing lookup of key k, reading every slot
// on the key's recorded probe path.
func (in *instance) probe(p *sim.Proc, k uint32) {
	for _, s := range in.path[k] {
		p.ReadRange(in.tableAdr+uint64(s)*entryBytes, entryBytes)
		p.Compute(4)
	}
}

// runOpen processes this processor's operation block against the
// open-addressed table; puts lock the page bucket the key probes in.
func (in *instance) runOpen(p *sim.Proc) {
	lo, hi := apputil.Split(len(in.ops), in.np, p.ID())
	p.ReadRange(in.opsAdr+uint64(lo)*8, (hi-lo)*8)
	for i := lo; i < hi; i++ {
		op := in.ops[i]
		put := op.Delta != 0
		lockID := int(in.path[op.Key][0]) / in.spp
		if put {
			p.Lock(lockID)
		}
		in.probe(p, op.Key)
		if put {
			in.vals[op.Key] += uint64(op.Delta)
			last := in.path[op.Key][len(in.path[op.Key])-1]
			p.Write(in.tableAdr + uint64(last)*entryBytes + 8)
			p.Unlock(lockID)
		}
		p.Compute(12)
	}
}

// runShard is the Alg version: in each of shardRounds rounds, distribute
// this processor's slice of the round's operations into per-owner outboxes
// (bulk writes), apply the operations shipped to this processor against its
// own locally-homed sub-table after a barrier, then read back get replies
// before the buffers are reused.
func (in *instance) runShard(p *sim.Proc) {
	id := p.ID()
	out := make([][]Op, in.np)  // this round's outboxes, by owner
	reply := make([]int, in.np) // replies produced for each requester
	for r := 0; r < shardRounds; r++ {
		rlo, rhi := apputil.Split(len(in.ops), shardRounds, r)
		lo, hi := apputil.Split(rhi-rlo, in.np, id)
		lo, hi = rlo+lo, rlo+hi

		// Distribute: bucket my slice by owner, one bulk write per outbox.
		for q := range out {
			out[q] = out[q][:0]
		}
		p.ReadRange(in.opsAdr+uint64(lo)*8, (hi-lo)*8)
		for i := lo; i < hi; i++ {
			op := in.ops[i]
			q := in.owner(op.Key)
			out[q] = append(out[q], op)
			p.Compute(3)
		}
		for q := 0; q < in.np; q++ {
			if len(out[q]) > 0 {
				p.WriteRange(in.outAdr[id][q], len(out[q])*8)
			}
			p.Write(in.cntAdr + uint64(id*in.np+q)*8)
		}
		p.Barrier()

		// Apply: drain every inbox destined to me against my local shard;
		// gets write an 8-byte reply into the requester's reply buffer.
		for q := 0; q < in.np; q++ {
			reply[q] = 0
		}
		for src := 0; src < in.np; src++ {
			p.Read(in.cntAdr + uint64(src*in.np+id)*8)
			slo, shi := apputil.Split(rhi-rlo, in.np, src)
			n := 0
			for i := rlo + slo; i < rlo+shi; i++ {
				if in.owner(in.ops[i].Key) != id {
					continue
				}
				n++
				op := in.ops[i]
				in.probe(p, op.Key)
				if op.Delta != 0 {
					in.vals[op.Key] += uint64(op.Delta)
					last := in.path[op.Key][len(in.path[op.Key])-1]
					p.Write(in.tableAdr + uint64(last)*entryBytes + 8)
				} else {
					p.Write(in.repAdr[id][src] + uint64(reply[src])*8)
					reply[src]++
				}
				p.Compute(8)
			}
			if n > 0 {
				p.ReadRange(in.outAdr[src][id], n*8)
			}
		}
		p.Barrier()

		// Collect replies to my gets before the buffers are reused.
		for q := 0; q < in.np; q++ {
			mine := 0
			for _, op := range out[q] {
				if op.Delta == 0 {
					mine++
				}
			}
			if mine > 0 {
				p.ReadRange(in.repAdr[q][id], mine*8)
				p.Compute(uint64(2 * mine))
			}
		}
		p.Barrier()
	}
}

// Verify implements core.Instance: the final table contents must equal a
// sequential replay of the operation log (puts are commutative, so every
// interleaving must land exactly here).
func (in *instance) Verify() error {
	for k := range in.vals {
		if in.vals[k] != in.expected[k] {
			return fmt.Errorf("kvstore: key %d = %d after the run, sequential replay says %d", k, in.vals[k], in.expected[k])
		}
	}
	return nil
}

// GenerateOps builds the deterministic zipf-keyed operation log shared by
// every version: numOps operations over numKeys keys, ~30% puts.
func GenerateOps(numKeys, numOps int, seed uint64) []Op {
	rng := apputil.NewRNG(seed)
	// Zipf CDF over popularity ranks, then a permutation so rank order is
	// decoupled from key id (and thus from every table layout).
	cdf := make([]float64, numKeys)
	total := 0.0
	for r := 0; r < numKeys; r++ {
		total += 1.0 / math.Pow(float64(r+1), zipfTheta)
		cdf[r] = total
	}
	perm := make([]uint32, numKeys)
	for i := range perm {
		perm[i] = uint32(i)
	}
	for i := numKeys - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	ops := make([]Op, numOps)
	for i := range ops {
		x := rng.Float64() * total
		lo, hi := 0, numKeys-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		op := Op{Key: perm[lo]}
		if rng.Intn(256) < putFraction {
			op.Delta = uint32(rng.Uint64()&0xffff) + 1
		}
		ops[i] = op
	}
	return ops
}

// ReplayOps applies the operation log sequentially to vals — the serial
// reference that Verify and the property tests compare parallel runs
// against.
func ReplayOps(ops []Op, vals []uint64) {
	for _, op := range ops {
		if op.Delta != 0 {
			vals[op.Key] += uint64(op.Delta)
		}
	}
}
