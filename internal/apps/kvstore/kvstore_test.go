package kvstore

import (
	"bytes"
	"testing"

	"repro/internal/apps/apputil"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
)

func runKV(t *testing.T, version, plat string, np int, scale float64) *instance {
	t.Helper()
	as := mem.NewAddressSpace(platform.PageSize, np)
	inst, err := app{}.Build(version, scale, as, np)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platform.Make(plat, as, np)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.New(pl, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager})
	k.Run("kvstore/"+version+"@"+plat, inst.Body)
	if err := inst.Verify(); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	return inst.(*instance)
}

func TestAllVersionsRunAndVerify(t *testing.T) {
	for _, v := range []string{"orig", "pad", "open", "shard"} {
		t.Run(v, func(t *testing.T) { runKV(t, v, "svm", 4, 0.25) })
	}
}

func TestAcrossPlatforms(t *testing.T) {
	for _, pl := range platform.Names {
		t.Run(pl, func(t *testing.T) { runKV(t, "shard", pl, 4, 0.25) })
	}
}

func TestUniprocessor(t *testing.T) {
	runKV(t, "orig", "svm", 1, 0.25)
}

// All versions compute the same service state: the fingerprint must agree
// across versions, platforms, and processor counts.
func TestFingerprintInvariant(t *testing.T) {
	var want uint64
	first := ""
	check := func(name string, in *instance) {
		fp := in.Fingerprint()
		if first == "" {
			want, first = fp, name
			return
		}
		if fp != want {
			t.Errorf("%s fingerprint %#x != %s fingerprint %#x", name, fp, first, want)
		}
	}
	for _, v := range []string{"orig", "pad", "open", "shard"} {
		check(v+"@svm p=3", runKV(t, v, "svm", 3, 0.25))
	}
	check("shard@smp p=8", runKV(t, "shard", "smp", 8, 0.25))
	check("orig@dsm p=1", runKV(t, "orig", "dsm", 1, 0.25))
}

// Property: for randomized operation logs, the parallel run's final table
// must equal a sequential replay of the log — for every version, at a
// processor count that does not divide the op count evenly.
func TestRandomOpLogsMatchSequentialReplay(t *testing.T) {
	for _, v := range []string{"orig", "pad", "open", "shard"} {
		for _, seed := range []uint64{1, 42, 31337} {
			np := 6
			as := mem.NewAddressSpace(platform.PageSize, np)
			inst, err := app{}.Build(v, 0.25, as, np)
			if err != nil {
				t.Fatal(err)
			}
			in := inst.(*instance)
			// Swap in a randomized log of the same length (the layout and
			// communication buffers were sized for it) and re-derive the
			// sequential reference.
			in.ops = GenerateOps(in.numKeys, len(in.ops), seed)
			rng := apputil.NewRNG(seed ^ 0xabcdef)
			for k := range in.vals {
				in.vals[k] = rng.Uint64()
			}
			in.expected = append(in.expected[:0], in.vals...)
			ReplayOps(in.ops, in.expected)

			pl, _ := platform.Make("svm", as, np)
			sim.New(pl, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager}).Run("kvstore", in.Body)
			if err := in.Verify(); err != nil {
				t.Errorf("version %s seed %d: %v", v, seed, err)
			}
		}
	}
}

func TestGenerateOpsIsSkewedAndMixed(t *testing.T) {
	ops := GenerateOps(1024, 16384, 707)
	counts := make(map[uint32]int)
	puts := 0
	for _, op := range ops {
		counts[op.Key]++
		if op.Delta != 0 {
			puts++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if uniform := len(ops) / 1024; max < 4*uniform {
		t.Errorf("hottest key seen %d times, want zipf head well above uniform %d", max, uniform)
	}
	if frac := float64(puts) / float64(len(ops)); frac < 0.2 || frac > 0.4 {
		t.Errorf("put fraction %.2f outside [0.2, 0.4]", frac)
	}
}

func TestOpLogRoundTrip(t *testing.T) {
	ops := GenerateOps(512, 1000, 3)
	enc := EncodeOps(ops)
	dec, err := DecodeOps(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(dec), len(ops))
	}
	for i := range ops {
		if dec[i] != ops[i] {
			t.Fatalf("op %d = %+v, want %+v", i, dec[i], ops[i])
		}
	}
	if !bytes.Equal(EncodeOps(dec), enc) {
		t.Error("re-encoding is not canonical")
	}
}

func TestDecodeOpsRejectsCorruptLogs(t *testing.T) {
	good := EncodeOps([]Op{{Key: 1, Delta: 2}})
	cases := map[string][]byte{
		"empty":      nil,
		"short":      good[:8],
		"bad magic":  append([]byte("kvoplogX"), good[8:]...),
		"truncated":  good[:len(good)-1],
		"extra byte": append(append([]byte(nil), good...), 0),
		"huge count": func() []byte {
			b := append([]byte(nil), good...)
			b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeOps(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}
