package apputil

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

func TestSplitCoversExactly(t *testing.T) {
	f := func(n16 uint16, np8 uint8) bool {
		n := int(n16)
		np := int(np8)%16 + 1
		covered := 0
		prevHi := 0
		for id := 0; id < np; id++ {
			lo, hi := Split(n, np, id)
			if lo != prevHi {
				return false // gaps or overlap
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitBalance(t *testing.T) {
	for _, n := range []int{100, 1024, 1 << 20} {
		for np := 1; np <= 16; np++ {
			min, max := n, 0
			for id := 0; id < np; id++ {
				lo, hi := Split(n, np, id)
				if hi-lo < min {
					min = hi - lo
				}
				if hi-lo > max {
					max = hi - lo
				}
			}
			if max-min > 1 {
				t.Errorf("Split(%d, %d): chunk sizes differ by %d", n, np, max-min)
			}
		}
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverge")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Error("zero seed must be remapped")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func queueKernel() (*sim.Kernel, *mem.AddressSpace) {
	as := mem.NewAddressSpace(4096, 2)
	return sim.New(&sim.NopPlatform{}, sim.Config{NumProcs: 2}), as
}

func TestTaskQueueFIFO(t *testing.T) {
	k, as := queueKernel()
	q := NewTaskQueue(as, 0, QueueOptions{Capacity: 16, LockID: 1})
	q.Reset([]int{3, 1, 4, 1, 5})
	var got []int
	k.Run("q", func(p *sim.Proc) {
		if p.ID() == 0 {
			for {
				v, ok := q.Dequeue(p)
				if !ok {
					break
				}
				got = append(got, v)
			}
		}
		p.Barrier()
	})
	want := []int{3, 1, 4, 1, 5}
	if len(got) != len(want) {
		t.Fatalf("dequeued %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeued %v, want %v (FIFO)", got, want)
		}
	}
}

func TestTaskQueueEnqueueDequeue(t *testing.T) {
	k, as := queueKernel()
	q := NewTaskQueue(as, 0, QueueOptions{Capacity: 16, LockID: 1})
	total := 0
	k.Run("q", func(p *sim.Proc) {
		if p.ID() == 0 {
			q.Enqueue(p, 10)
			q.Enqueue(p, 20)
		}
		p.Barrier()
		if p.ID() == 1 {
			for {
				v, ok := q.Dequeue(p)
				if !ok {
					break
				}
				total += v
			}
		}
		p.Barrier()
	})
	if total != 30 {
		t.Errorf("total = %d, want 30", total)
	}
}

func TestTaskQueueNoDoubleDequeue(t *testing.T) {
	// Two processors draining one queue must get each task exactly once.
	k, as := queueKernel()
	q := NewTaskQueue(as, 0, QueueOptions{Capacity: 64, LockID: 1})
	tasks := make([]int, 40)
	for i := range tasks {
		tasks[i] = i
	}
	q.Reset(tasks)
	seen := map[int]int{}
	k.Run("q", func(p *sim.Proc) {
		for {
			v, ok := q.Dequeue(p)
			if !ok {
				break
			}
			seen[v]++
			p.Compute(uint64(10 * (p.ID() + 1)))
		}
		p.Barrier()
	})
	if len(seen) != 40 {
		t.Fatalf("saw %d distinct tasks, want 40", len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Errorf("task %d dequeued %d times", v, n)
		}
	}
}

func TestStealHalf(t *testing.T) {
	k, as := queueKernel()
	src := NewTaskQueue(as, 0, QueueOptions{Capacity: 16, LockID: 1})
	dst := NewTaskQueue(as, 1, QueueOptions{Capacity: 16, LockID: 2})
	src.Reset([]int{1, 2, 3, 4, 5, 6})
	moved := 0
	k.Run("steal", func(p *sim.Proc) {
		if p.ID() == 1 {
			moved = src.StealHalf(p, dst)
		}
		p.Barrier()
	})
	if moved != 3 || src.Len() != 3 || dst.Len() != 3 {
		t.Errorf("moved=%d src=%d dst=%d, want 3/3/3", moved, src.Len(), dst.Len())
	}
}

func TestPaddedQueueEntriesPageAligned(t *testing.T) {
	as := mem.NewAddressSpace(4096, 2)
	q := NewTaskQueue(as, 0, QueueOptions{Capacity: 4, PadEntriesTo: 4096, LockID: 1})
	if q.entryBase%4096 != 0 {
		t.Error("padded queue entries not page aligned")
	}
	if q.entrySize != 4096 {
		t.Errorf("entry size = %d, want 4096", q.entrySize)
	}
}

func TestPeek(t *testing.T) {
	k, as := queueKernel()
	q := NewTaskQueue(as, 0, QueueOptions{Capacity: 4, LockID: 1})
	q.Reset([]int{1})
	k.Run("peek", func(p *sim.Proc) {
		if p.ID() == 0 {
			if !q.Peek(p) {
				t.Error("peek of non-empty queue returned false")
			}
			q.Dequeue(p)
			if q.Peek(p) {
				t.Error("peek of empty queue returned true")
			}
		}
		p.Barrier()
	})
}
