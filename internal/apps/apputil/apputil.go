// Package apputil provides building blocks shared by the application
// reimplementations: lock-protected task queues with stealing (Volrend,
// Raytrace), block partition helpers, and a small deterministic RNG so runs
// are reproducible across platforms.
package apputil

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// Split returns the half-open range [lo, hi) of n items assigned to
// processor id out of np under a contiguous block partition.
func Split(n, np, id int) (lo, hi int) {
	per := n / np
	rem := n % np
	lo = id*per + min(id, rem)
	hi = lo + per
	if id < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RNG is a tiny deterministic xorshift generator. Applications must not use
// math/rand's global state so simulated runs are identical across platforms
// and repetitions.
type RNG struct{ s uint64 }

// NewRNG seeds a generator; seed 0 is mapped to a fixed constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int { return int(r.Uint64() % uint64(n)) }

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// TaskQueue is a shared work queue whose header and entries live in the
// simulated address space. Dequeue and Enqueue perform the simulated memory
// accesses and locking a real implementation would; the task payloads
// themselves are kept in ordinary Go memory.
type TaskQueue struct {
	// LockID is the simulated lock protecting the queue; -1 means the
	// queue is accessed without locking (Raytrace's split local queues).
	LockID int

	header    uint64 // simulated address of head/tail/count words
	entryBase uint64
	entrySize uint64

	tasks []int
	head  int
}

// QueueOptions configure the simulated layout of a task queue.
type QueueOptions struct {
	// Capacity is the number of entry slots to allocate.
	Capacity int
	// EntryBytes is the simulated size of one entry (default 16).
	EntryBytes int
	// PadEntriesTo, when > 0, pads and aligns every entry to this
	// boundary (the paper's P/A transformation on task queues).
	PadEntriesTo uint64
	// LockID is the protecting lock; pass -1 for an unlocked queue.
	LockID int
}

// NewTaskQueue allocates a task queue in the simulated address space.
func NewTaskQueue(as *mem.AddressSpace, home int, o QueueOptions) *TaskQueue {
	if o.EntryBytes == 0 {
		o.EntryBytes = 16
	}
	q := &TaskQueue{LockID: o.LockID}
	q.header = as.Alloc(32)
	if o.PadEntriesTo > 0 {
		q.entrySize = o.PadEntriesTo
		q.entryBase = as.AllocAlign(o.Capacity*int(o.PadEntriesTo), o.PadEntriesTo)
	} else {
		q.entrySize = uint64(o.EntryBytes)
		q.entryBase = as.Alloc(o.Capacity * o.EntryBytes)
	}
	if home >= 0 {
		as.SetHome(q.header, 32, home)
		as.SetHome(q.entryBase, o.Capacity*int(q.entrySize), home)
	}
	return q
}

// Reset refills the queue with tasks without simulated cost (untimed setup).
func (q *TaskQueue) Reset(tasks []int) {
	q.tasks = append(q.tasks[:0], tasks...)
	q.head = 0
}

// Refill reloads the queue in bulk with one unsynchronized pass over its
// entries — how the owner reinitializes its own queue between frames.
func (q *TaskQueue) Refill(p *sim.Proc, tasks []int) {
	q.Reset(tasks)
	p.WriteRange(q.entryBase, len(tasks)*int(q.entrySize))
	p.Write(q.header)
}

// Len returns the number of tasks remaining (no simulated cost; callers use
// it for host-side control decisions only).
func (q *TaskQueue) Len() int { return len(q.tasks) - q.head }

// Peek reads the queue's count word without taking the lock — the
// test-before-test&set idiom thieves use to skip empty queues cheaply. It
// returns whether the queue appeared non-empty.
func (q *TaskQueue) Peek(p *sim.Proc) bool {
	p.Read(q.header)
	return q.Len() > 0
}

// Enqueue appends a task, performing the simulated header/entry accesses.
func (q *TaskQueue) Enqueue(p *sim.Proc, task int) {
	if q.LockID >= 0 {
		p.Lock(q.LockID)
	}
	p.Read(q.header)
	idx := len(q.tasks)
	q.tasks = append(q.tasks, task)
	p.WriteRange(q.entryBase+uint64(idx)*q.entrySize, int(q.entrySize))
	p.Write(q.header)
	if q.LockID >= 0 {
		p.Unlock(q.LockID)
	}
}

// Dequeue removes the next task, performing the simulated accesses. It
// returns ok=false when the queue is empty.
func (q *TaskQueue) Dequeue(p *sim.Proc) (task int, ok bool) {
	if q.LockID >= 0 {
		p.Lock(q.LockID)
	}
	p.Read(q.header)
	if q.head < len(q.tasks) {
		task = q.tasks[q.head]
		p.ReadRange(q.entryBase+uint64(q.head)*q.entrySize, int(q.entrySize))
		q.head++
		p.Write(q.header)
		ok = true
	}
	if q.LockID >= 0 {
		p.Unlock(q.LockID)
	}
	return task, ok
}

// StealHalf moves up to half of the victim queue's remaining tasks into dst
// (both queues' simulated state is touched); it returns how many moved.
// Stealing in bulk keeps the lock-holding pattern of the SPLASH codes.
func (q *TaskQueue) StealHalf(p *sim.Proc, dst *TaskQueue) int {
	if q.LockID >= 0 {
		p.Lock(q.LockID)
	}
	p.Read(q.header)
	n := (len(q.tasks) - q.head) / 2
	for i := 0; i < n; i++ {
		t := q.tasks[q.head]
		p.ReadRange(q.entryBase+uint64(q.head)*q.entrySize, int(q.entrySize))
		q.head++
		p.WriteRange(dst.entryBase+uint64(len(dst.tasks))*dst.entrySize, int(dst.entrySize))
		dst.tasks = append(dst.tasks, t)
	}
	if n > 0 {
		p.Write(q.header)
	}
	if q.LockID >= 0 {
		p.Unlock(q.LockID)
	}
	return n
}
