package apputil

import "math"

// Hash accumulates a 64-bit FNV-1a fingerprint of computed results. The
// applications hash exactly the data their Verify methods inspect; the
// determinism harness then compares the hashes across runs, platforms and
// processor counts without holding both results in memory.
type Hash struct{ h uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewHash returns a fresh accumulator.
func NewHash() *Hash { return &Hash{h: fnvOffset} }

// Uint64 mixes one 64-bit value, byte by byte (FNV-1a).
func (f *Hash) Uint64(v uint64) {
	for i := 0; i < 8; i++ {
		f.h ^= v & 0xff
		f.h *= fnvPrime
		v >>= 8
	}
}

// Uint32 mixes one 32-bit value.
func (f *Hash) Uint32(v uint32) { f.Uint64(uint64(v)) }

// Float64 mixes a float's exact bit pattern — fingerprints compare results
// bit-for-bit, not within a tolerance.
func (f *Hash) Float64(v float64) { f.Uint64(math.Float64bits(v)) }

// Floats mixes a whole slice in order.
func (f *Hash) Floats(vs []float64) {
	for _, v := range vs {
		f.Float64(v)
	}
}

// Sum returns the accumulated fingerprint.
func (f *Hash) Sum() uint64 { return f.h }
