// Package pipeline is the third irregular modern workload of ROADMAP item 3:
// a bounded-queue producer-consumer pipeline — four stages of unequal cost
// connected by queues, processors assigned to stages — restructured along
// the paper's §3 taxonomy. Unlike the barrier-phased SPLASH codes, the
// sharing here is continuous fine-grained hand-off: queue headers are
// write-hot from both sides, and how the queues are laid out and batched
// decides the protocol traffic.
//
// Versions:
//
//   - orig:  one lock-protected shared queue per stage boundary, 16 B
//     entries packed back-to-back and all queue headers packed on a single
//     page (header false sharing between every boundary);
//   - pad:   P/A — entries padded+aligned to the 64 B hardware line and one
//     page per queue header;
//   - split: DS — the shared queues replaced by per-(producer,consumer)
//     single-producer single-consumer rings: no locks, the head and tail
//     words on separate pages (each written by exactly one side), entries
//     homed at the consumer, items routed by index round-robin;
//   - batch: Alg — the split structure with items handed off in batches of
//     batchK, so header updates and page transfers amortize across a whole
//     batch instead of being paid per item.
//
// Every item passes through every stage exactly once (queue pops are
// unique), and the per-stage transform depends only on the stage and the
// item value — never on which processor ran it or when — so the final
// output array is identical across platforms, processor counts, and
// versions, and is what the fingerprint hashes. Which processor handles an
// item, by contrast, is timing-dependent, so per-processor counts are kept
// out of both Verify and the fingerprint.
//
// Processor-to-stage assignment handles any processor count: with np >= 4
// processors, processor p serves stage p mod 4; with fewer, processor p
// multiplexes every stage s with s mod np == p, polling its stages round
// robin (a poll that makes no progress still burns simulated cycles, so
// virtual time always advances and the schedule cannot livelock).
package pipeline

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

const (
	baseItems = 8192
	numStages = 4
	// queueCap is the shared-queue capacity (orig/pad), spscCap the
	// per-pair ring capacity (split/batch), in items.
	queueCap = 128
	spscCap  = 64
	// batchK is the Alg version's hand-off batch size.
	batchK = 16
	// burst bounds how many items one scheduling step processes per stage.
	burst      = 8
	entryBytes = 16
	lineBytes  = 64
)

// stageCost is the per-item compute cost of each stage — deliberately
// unequal so the pipeline has a bottleneck stage and real queueing.
var stageCost = [numStages]uint64{24, 40, 16, 32}

// stageSalt parameterizes the per-stage transform.
var stageSalt = [numStages]uint64{0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 0xD6E8FEB86659FD93}

type app struct{}

func init() { core.RegisterExtension(app{}) }

// Name implements core.App.
func (app) Name() string { return "pipeline" }

// Versions implements core.App.
func (app) Versions() []core.Version {
	return []core.Version{
		{Name: "orig", Class: core.Orig, Desc: "shared locked queue per boundary, packed entries and headers"},
		{Name: "pad", Class: core.PA, Desc: "entries padded to the 64 B line, one page per queue header"},
		{Name: "split", Class: core.DS, Desc: "per-(producer,consumer) lock-free SPSC rings, consumer-homed"},
		{Name: "batch", Class: core.Alg, Desc: "SPSC rings with batched hand-off (amortized headers and pages)"},
	}
}

type version int

const (
	vOrig version = iota
	vPad
	vSplit
	vBatch
)

// transform is the deterministic per-(stage,value) item computation.
func transform(s int, v uint64) uint64 {
	for r := 0; r < 3; r++ {
		v = v*6364136223846793005 + stageSalt[s]
	}
	return v
}

type instance struct {
	ver      version
	np       int
	numItems int
	vals     []uint64 // live item values, transformed in place stage by stage
	expected []uint64 // all four transforms applied serially, fixed at Build

	inAdr, outAdr uint64

	// processed[s] counts items transformed at stage s (conservation
	// invariant: every entry must equal numItems after the run).
	processed [numStages]int
	// popped[b] counts items popped across boundary b; the producer-side
	// end-of-input signal for stage b+1.
	popped [numStages - 1]int

	shared [numStages - 1]*sharedQueue   // orig, pad
	spsc   [numStages - 1][][]*spscQueue // split, batch: [boundary][prodIdx][consIdx]
}

// sharedQueue is one lock-protected bounded MPMC queue (orig/pad).
type sharedQueue struct {
	lockID     int
	headerAdr  uint64
	entryAdr   uint64
	entrySize  uint64
	buf        []int
	head, tail int
}

func (q *sharedQueue) tryPush(p *sim.Proc, item int) bool {
	p.Lock(q.lockID)
	p.Read(q.headerAdr)
	if q.tail-q.head >= queueCap {
		p.Unlock(q.lockID)
		return false
	}
	q.buf[q.tail%queueCap] = item
	p.WriteRange(q.entryAdr+uint64(q.tail%queueCap)*q.entrySize, entryBytes)
	q.tail++
	p.Write(q.headerAdr)
	p.Unlock(q.lockID)
	return true
}

func (q *sharedQueue) tryPop(p *sim.Proc) (int, bool) {
	p.Lock(q.lockID)
	p.Read(q.headerAdr)
	if q.tail == q.head {
		p.Unlock(q.lockID)
		return 0, false
	}
	item := q.buf[q.head%queueCap]
	p.ReadRange(q.entryAdr+uint64(q.head%queueCap)*q.entrySize, entryBytes)
	q.head++
	p.Write(q.headerAdr + 8)
	p.Unlock(q.lockID)
	return item, true
}

// spscQueue is a lock-free single-producer single-consumer ring
// (split/batch): the producer writes only tailAdr and the entries, the
// consumer writes only headAdr, so neither word is ever write-shared.
type spscQueue struct {
	headAdr    uint64 // consumer-written cursor, homed at the producer
	tailAdr    uint64 // producer-written cursor, leading the entry region
	entryAdr   uint64
	buf        []int
	head, tail int
}

func (q *spscQueue) tryPush(p *sim.Proc, item int) bool {
	p.Read(q.headAdr)
	if q.tail-q.head >= spscCap {
		return false
	}
	q.buf[q.tail%spscCap] = item
	p.WriteRange(q.entryAdr+uint64(q.tail%spscCap)*entryBytes, entryBytes)
	q.tail++
	p.Write(q.tailAdr)
	return true
}

func (q *spscQueue) tryPop(p *sim.Proc) (int, bool) {
	p.Read(q.tailAdr)
	if q.tail == q.head {
		return 0, false
	}
	item := q.buf[q.head%spscCap]
	p.ReadRange(q.entryAdr+uint64(q.head%spscCap)*entryBytes, entryBytes)
	q.head++
	p.Write(q.headAdr)
	return item, true
}

// tryPushBatch pushes all items or none, with one header update and one
// (possibly wrapped) bulk entry write.
func (q *spscQueue) tryPushBatch(p *sim.Proc, items []int) bool {
	p.Read(q.headAdr)
	if spscCap-(q.tail-q.head) < len(items) {
		return false
	}
	for _, item := range items {
		q.buf[q.tail%spscCap] = item
		q.tail++
	}
	q.rangeOp(p, q.tail-len(items), len(items), true)
	p.Write(q.tailAdr)
	return true
}

// popBatch drains up to max items with one header update.
func (q *spscQueue) popBatch(p *sim.Proc, max int, into []int) []int {
	p.Read(q.tailAdr)
	n := q.tail - q.head
	if n == 0 {
		return into
	}
	if n > max {
		n = max
	}
	q.rangeOp(p, q.head, n, false)
	for i := 0; i < n; i++ {
		into = append(into, q.buf[q.head%spscCap])
		q.head++
	}
	p.Write(q.headAdr)
	return into
}

// rangeOp touches n ring entries starting at cursor, splitting the access
// at the ring's wrap point.
func (q *spscQueue) rangeOp(p *sim.Proc, cursor, n int, write bool) {
	first := cursor % spscCap
	k := n
	if first+k > spscCap {
		k = spscCap - first
	}
	op := p.ReadRange
	if write {
		op = p.WriteRange
	}
	op(q.entryAdr+uint64(first)*entryBytes, k*entryBytes)
	if k < n {
		op(q.entryAdr, (n-k)*entryBytes)
	}
}

// Build implements core.App.
func (app) Build(versionName string, scale float64, as *mem.AddressSpace, np int) (core.Instance, error) {
	in := &instance{np: np}
	switch versionName {
	case "orig":
		in.ver = vOrig
	case "pad":
		in.ver = vPad
	case "split":
		in.ver = vSplit
	case "batch":
		in.ver = vBatch
	default:
		return nil, fmt.Errorf("pipeline: unknown version %q", versionName)
	}
	in.numItems = int(baseItems * scale)
	if in.numItems < np*4*batchK {
		in.numItems = np * 4 * batchK
	}
	in.vals = make([]uint64, in.numItems)
	rng := apputil.NewRNG(1311)
	for i := range in.vals {
		in.vals[i] = rng.Uint64()
	}
	in.expected = make([]uint64, in.numItems)
	for i, v := range in.vals {
		for s := 0; s < numStages; s++ {
			v = transform(s, v)
		}
		in.expected[i] = v
	}

	in.inAdr = as.AllocPages(in.numItems * 8)
	in.outAdr = as.AllocPages(in.numItems * 8)

	switch in.ver {
	case vOrig, vPad:
		entrySize := uint64(entryBytes)
		if in.ver == vPad {
			entrySize = lineBytes
		}
		var headerBase uint64
		if in.ver == vOrig {
			headerBase = as.Alloc(32 * (numStages - 1))
		}
		for b := 0; b < numStages-1; b++ {
			q := &sharedQueue{lockID: b, entrySize: entrySize, buf: make([]int, queueCap)}
			if in.ver == vOrig {
				q.headerAdr = headerBase + uint64(b)*32
				q.entryAdr = as.Alloc(queueCap * entryBytes)
			} else {
				q.headerAdr = as.AllocPages(32)
				q.entryAdr = as.AllocAlign(queueCap*int(entrySize), lineBytes)
			}
			in.shared[b] = q
		}
	case vSplit, vBatch:
		for b := 0; b < numStages-1; b++ {
			prods := stageProcs(np, b)
			cons := stageProcs(np, b+1)
			in.spsc[b] = make([][]*spscQueue, len(prods))
			for pi, pp := range prods {
				in.spsc[b][pi] = make([]*spscQueue, len(cons))
				for ci, cp := range cons {
					q := &spscQueue{buf: make([]int, spscCap)}
					q.headAdr = as.AllocPages(8)
					as.SetHome(q.headAdr, 8, pp%np)
					q.tailAdr = as.AllocPages(8 + spscCap*entryBytes)
					q.entryAdr = q.tailAdr + 8
					as.SetHome(q.tailAdr, 8+spscCap*entryBytes, cp%np)
					in.spsc[b][pi][ci] = q
				}
			}
		}
	}
	return in, nil
}

// stageProcs lists the processors serving stage s, in ascending order.
func stageProcs(np, s int) []int {
	var procs []int
	if np >= numStages {
		for p := s % numStages; p < np; p += numStages {
			procs = append(procs, p)
		}
	} else {
		procs = append(procs, s%np)
	}
	return procs
}

// stagesOf lists the stages processor p serves, in ascending order.
func stagesOf(np, p int) []int {
	var ss []int
	for s := 0; s < numStages; s++ {
		for _, q := range stageProcs(np, s) {
			if q == p {
				ss = append(ss, s)
			}
		}
	}
	return ss
}

// procStage is one processor's scheduling state for one stage it serves.
type procStage struct {
	stage    int
	next, hi int          // stage 0: this processor's static item slice
	pending  int          // transformed item awaiting a successful push, -1 = none
	inQs     []*spscQueue // split/batch: my inboxes, by producer
	outQs    []*spscQueue // split/batch: my outboxes, by consumer
	rr       int          // inbox polling rotation
	batches  [][]int      // batch: per-consumer pending batches
	popBuf   []int
}

// Body implements core.Instance.
func (in *instance) Body(p *sim.Proc) {
	id := p.ID()
	var states []*procStage
	for _, s := range stagesOf(in.np, id) {
		ps := &procStage{stage: s, pending: -1}
		if s == 0 {
			prods := stageProcs(in.np, 0)
			idx := indexOf(prods, id)
			ps.next, ps.hi = apputil.Split(in.numItems, len(prods), idx)
		}
		if in.ver == vSplit || in.ver == vBatch {
			if s > 0 {
				ci := indexOf(stageProcs(in.np, s), id)
				for pi := range in.spsc[s-1] {
					ps.inQs = append(ps.inQs, in.spsc[s-1][pi][ci])
				}
			}
			if s < numStages-1 {
				pi := indexOf(stageProcs(in.np, s), id)
				ps.outQs = in.spsc[s][pi]
				ps.batches = make([][]int, len(ps.outQs))
			}
		}
		states = append(states, ps)
	}
	for {
		progress, done := false, true
		for _, ps := range states {
			var pr, dn bool
			if in.ver == vBatch {
				pr, dn = in.stepBatch(p, ps)
			} else {
				pr, dn = in.stepItems(p, ps)
			}
			progress = progress || pr
			done = done && dn
		}
		if done {
			break
		}
		if !progress {
			// Fruitless poll: burn cycles so virtual time advances and
			// the producers/consumers we wait on get scheduled.
			p.Compute(6)
		}
	}
	p.Barrier()
}

func indexOf(procs []int, p int) int {
	for i, q := range procs {
		if q == p {
			return i
		}
	}
	panic("pipeline: processor not in stage list")
}

// inputDone reports whether stage ps can never receive another item.
func (in *instance) inputDone(ps *procStage) bool {
	if ps.stage == 0 {
		return ps.next >= ps.hi
	}
	return in.popped[ps.stage-1] == in.numItems
}

// nextInput acquires one item for the stage: the static slice for stage 0,
// a queue pop otherwise.
func (in *instance) nextInput(p *sim.Proc, ps *procStage) (int, bool) {
	if ps.stage == 0 {
		if ps.next >= ps.hi {
			return 0, false
		}
		item := ps.next
		ps.next++
		p.ReadRange(in.inAdr+uint64(item)*8, 8)
		return item, true
	}
	if in.ver == vOrig || in.ver == vPad {
		item, ok := in.shared[ps.stage-1].tryPop(p)
		if ok {
			in.popped[ps.stage-1]++
		}
		return item, ok
	}
	for i := 0; i < len(ps.inQs); i++ {
		q := ps.inQs[(ps.rr+i)%len(ps.inQs)]
		if item, ok := q.tryPop(p); ok {
			ps.rr = (ps.rr + i + 1) % len(ps.inQs)
			in.popped[ps.stage-1]++
			return item, true
		}
	}
	return 0, false
}

// emit hands a transformed item downstream (or retires it at the last
// stage); false means the output queue was full and the item must wait.
func (in *instance) emit(p *sim.Proc, ps *procStage, item int) bool {
	s := ps.stage
	if s == numStages-1 {
		p.Write(in.outAdr + uint64(item)*8)
		return true
	}
	if in.ver == vOrig || in.ver == vPad {
		return in.shared[s].tryPush(p, item)
	}
	return ps.outQs[item%len(ps.outQs)].tryPush(p, item)
}

// runStage transforms one item at this stage (host-side single statement,
// so the value update is atomic with respect to simulated yields).
func (in *instance) runStage(p *sim.Proc, s, item int) {
	in.vals[item] = transform(s, in.vals[item])
	in.processed[s]++
	p.Compute(stageCost[s])
}

// stepItems is one scheduling step of the per-item versions (orig, pad,
// split): flush the pending item, then pop-transform-push up to burst
// items.
func (in *instance) stepItems(p *sim.Proc, ps *procStage) (progress, done bool) {
	if ps.pending >= 0 {
		if !in.emit(p, ps, ps.pending) {
			return false, false
		}
		ps.pending = -1
		progress = true
	}
	for n := 0; n < burst; n++ {
		item, ok := in.nextInput(p, ps)
		if !ok {
			break
		}
		progress = true
		in.runStage(p, ps.stage, item)
		if !in.emit(p, ps, item) {
			ps.pending = item
			return progress, false
		}
	}
	return progress, ps.pending < 0 && in.inputDone(ps)
}

// flushBatches pushes full batches downstream in batchK-sized chunks —
// and, once the stage's input is exhausted, partial ones too. It reports
// progress and whether any batch remains stuck behind a full ring.
func (in *instance) flushBatches(p *sim.Proc, ps *procStage) (progress, blocked bool) {
	flushAll := in.inputDone(ps)
	for ci := range ps.batches {
		for {
			b := ps.batches[ci]
			if len(b) == 0 || (len(b) < batchK && !flushAll) {
				break
			}
			n := len(b)
			if n > batchK {
				n = batchK
			}
			if !ps.outQs[ci].tryPushBatch(p, b[:n]) {
				blocked = true
				break
			}
			ps.batches[ci] = b[n:]
			progress = true
		}
	}
	return progress, blocked
}

// batchesFull reports whether any pending batch has reached batchK — the
// backpressure signal to stop acquiring input, which bounds every batch at
// under 2*batchK items so a batchK-sized chunk always fits the ring.
func (ps *procStage) batchesFull() bool {
	for _, b := range ps.batches {
		if len(b) >= batchK {
			return true
		}
	}
	return false
}

// stepBatch is one scheduling step of the batch version: flush what can be
// flushed, then (unless backpressured) drain one inbox in bulk, transform,
// and accumulate per-consumer output batches.
func (in *instance) stepBatch(p *sim.Proc, ps *procStage) (progress, done bool) {
	s := ps.stage
	last := s == numStages-1

	if !last {
		pr, _ := in.flushBatches(p, ps)
		progress = progress || pr
	}

	// Acquire a batch of input, unless output backpressure would grow a
	// pending batch past what one ring push can ever take.
	ps.popBuf = ps.popBuf[:0]
	if last || !ps.batchesFull() {
		if s == 0 {
			n := ps.hi - ps.next
			if n > batchK {
				n = batchK
			}
			if n > 0 {
				p.ReadRange(in.inAdr+uint64(ps.next)*8, n*8)
				for i := 0; i < n; i++ {
					ps.popBuf = append(ps.popBuf, ps.next)
					ps.next++
				}
			}
		} else {
			for i := 0; i < len(ps.inQs) && len(ps.popBuf) == 0; i++ {
				q := ps.inQs[(ps.rr+i)%len(ps.inQs)]
				ps.popBuf = q.popBatch(p, batchK, ps.popBuf)
				if len(ps.popBuf) > 0 {
					ps.rr = (ps.rr + i + 1) % len(ps.inQs)
				}
			}
			in.popped[s-1] += len(ps.popBuf)
		}
	}
	for _, item := range ps.popBuf {
		progress = true
		in.runStage(p, s, item)
		if last {
			p.Write(in.outAdr + uint64(item)*8)
		} else {
			ci := item % len(ps.outQs)
			ps.batches[ci] = append(ps.batches[ci], item)
		}
	}

	if !last && len(ps.popBuf) > 0 {
		pr, _ := in.flushBatches(p, ps)
		progress = progress || pr
	}

	done = in.inputDone(ps)
	for _, b := range ps.batches {
		if len(b) > 0 {
			done = false
		}
	}
	return progress, done
}

// Verify implements core.Instance: conservation (every stage transformed
// every item exactly once, every queue drained) and the final values
// against the serial reference.
func (in *instance) Verify() error {
	for s := 0; s < numStages; s++ {
		if in.processed[s] != in.numItems {
			return fmt.Errorf("pipeline: stage %d transformed %d items, want %d", s, in.processed[s], in.numItems)
		}
	}
	for b := 0; b < numStages-1; b++ {
		if q := in.shared[b]; q != nil && q.head != q.tail {
			return fmt.Errorf("pipeline: boundary %d queue not drained (%d left)", b, q.tail-q.head)
		}
		for _, row := range in.spsc[b] {
			for _, q := range row {
				if q.head != q.tail {
					return fmt.Errorf("pipeline: boundary %d ring not drained (%d left)", b, q.tail-q.head)
				}
			}
		}
	}
	for i := range in.vals {
		if in.vals[i] != in.expected[i] {
			return fmt.Errorf("pipeline: item %d = %#x after the run, serial reference says %#x", i, in.vals[i], in.expected[i])
		}
	}
	return nil
}
