package pipeline

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
)

func runPipe(t *testing.T, version, plat string, np int, scale float64) *instance {
	t.Helper()
	as := mem.NewAddressSpace(platform.PageSize, np)
	inst, err := app{}.Build(version, scale, as, np)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platform.Make(plat, as, np)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.New(pl, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager})
	k.Run("pipeline/"+version+"@"+plat, inst.Body)
	if err := inst.Verify(); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	return inst.(*instance)
}

func TestAllVersionsRunAndVerify(t *testing.T) {
	for _, v := range []string{"orig", "pad", "split", "batch"} {
		t.Run(v, func(t *testing.T) { runPipe(t, v, "svm", 4, 0.25) })
	}
}

func TestAcrossPlatforms(t *testing.T) {
	for _, pl := range platform.Names {
		t.Run(pl, func(t *testing.T) { runPipe(t, "batch", pl, 4, 0.25) })
	}
}

func TestUniprocessor(t *testing.T) {
	runPipe(t, "orig", "svm", 1, 0.25)
}

// Conservation at processor counts that do not divide the stage count (or
// each other): every stage transforms every item exactly once and every
// queue drains, even when processors multiplex stages (np < 4) or stages
// have unequal processor shares (np % 4 != 0).
func TestItemConservationAtAwkwardProcCounts(t *testing.T) {
	for _, np := range []int{1, 2, 3, 5, 6, 7} {
		for _, v := range []string{"orig", "pad", "split", "batch"} {
			in := runPipe(t, v, "svm", np, 0.25) // Verify inside runPipe checks conservation
			for s := 0; s < numStages; s++ {
				if in.processed[s] != in.numItems {
					t.Errorf("np=%d %s: stage %d processed %d of %d", np, v, s, in.processed[s], in.numItems)
				}
			}
		}
	}
}

// The output is a pure function of the input: fingerprints must agree
// across versions, platforms, and processor counts.
func TestFingerprintInvariant(t *testing.T) {
	var want uint64
	first := ""
	check := func(name string, in *instance) {
		fp := in.Fingerprint()
		if first == "" {
			want, first = fp, name
			return
		}
		if fp != want {
			t.Errorf("%s fingerprint %#x != %s fingerprint %#x", name, fp, first, want)
		}
	}
	for _, v := range []string{"orig", "pad", "split", "batch"} {
		check(v+"@svm p=3", runPipe(t, v, "svm", 3, 0.25))
	}
	check("batch@smp p=8", runPipe(t, "batch", "smp", 8, 0.25))
	check("orig@dsm p=1", runPipe(t, "orig", "dsm", 1, 0.25))
}

func TestStageAssignmentCoversAllStages(t *testing.T) {
	for np := 1; np <= 16; np++ {
		seen := map[int]bool{}
		for p := 0; p < np; p++ {
			for _, s := range stagesOf(np, p) {
				seen[s] = true
			}
		}
		for s := 0; s < numStages; s++ {
			if !seen[s] {
				t.Errorf("np=%d: stage %d has no processor", np, s)
			}
		}
		for s := 0; s < numStages; s++ {
			for _, p := range stageProcs(np, s) {
				if p < 0 || p >= np {
					t.Errorf("np=%d stage %d: processor %d out of range", np, s, p)
				}
			}
		}
	}
}
