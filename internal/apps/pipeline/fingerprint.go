package pipeline

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
)

// Fingerprint implements core.Fingerprinter: the output array in item
// order. Each item passes through each stage exactly once and the
// transform ignores which processor ran it, so the values are identical
// across platforms, processor counts, interleavings, and versions.
func (in *instance) Fingerprint() uint64 {
	h := apputil.NewHash()
	for _, v := range in.vals {
		h.Uint64(v)
	}
	return h.Sum()
}

var _ core.Fingerprinter = (*instance)(nil)
