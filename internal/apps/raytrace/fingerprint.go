package raytrace

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
)

// Fingerprint implements core.Fingerprinter: the rendered image plus the
// global ray counter. Each pixel belongs to exactly one task, and the ray
// count is a plain sum of per-pixel integer counts, so both are identical
// across platforms, processor counts and queue organizations.
func (in *instance) Fingerprint() uint64 {
	h := apputil.NewHash()
	h.Floats(in.img)
	h.Uint64(in.statRays)
	return h.Sum()
}

var _ core.Fingerprinter = (*instance)(nil)
