package raytrace

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
)

func runRT(t *testing.T, version, plat string, np int, scale float64) *stats.Run {
	t.Helper()
	as := mem.NewAddressSpace(platform.PageSize, np)
	a, err := core.Lookup("raytrace")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := a.Build(version, scale, as, np)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platform.Make(plat, as, np)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.New(pl, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager})
	run := k.Run("raytrace/"+version+"@"+plat, inst.Body)
	if err := inst.Verify(); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	return run
}

func TestRaytraceCorrectAllVersions(t *testing.T) {
	for _, v := range []string{"orig", "nolock", "splitq"} {
		t.Run(v, func(t *testing.T) { runRT(t, v, "svm", 4, 0.5) })
	}
}

func TestRaytraceAcrossPlatforms(t *testing.T) {
	for _, pl := range platform.Names {
		t.Run(pl, func(t *testing.T) { runRT(t, "splitq", pl, 4, 0.5) })
	}
}

func TestRaytraceUniprocessor(t *testing.T) {
	runRT(t, "orig", "svm", 1, 0.5)
}

func TestRaytraceStatsLockKillsSVM(t *testing.T) {
	// The paper's headline: removing one statistics lock takes Raytrace
	// from 0.5 to 11.05 on SVM.
	orig := runRT(t, "orig", "svm", 8, 0.5)
	nolock := runRT(t, "nolock", "svm", 8, 0.5)
	if nolock.EndTime*2 >= orig.EndTime {
		t.Errorf("nolock (%d) must be far faster than orig (%d) on SVM", nolock.EndTime, orig.EndTime)
	}
	if lw := orig.Share(stats.LockWait); lw < 0.4 {
		t.Errorf("orig lock wait share = %.2f, want dominant (>= 0.4)", lw)
	}
}

func TestRaytraceStatsLockHarmlessOnSMP(t *testing.T) {
	// On hardware cache coherence the same lock is "relatively
	// insignificant" (paper §4.2.3).
	orig := runRT(t, "orig", "smp", 8, 0.5)
	nolock := runRT(t, "nolock", "smp", 8, 0.5)
	if float64(orig.EndTime) > 1.5*float64(nolock.EndTime) {
		t.Errorf("SMP orig/nolock = %.2f, statistics lock should be cheap on hardware",
			float64(orig.EndTime)/float64(nolock.EndTime))
	}
}

func TestRaytraceProcZeroWarmScene(t *testing.T) {
	// Processor 0 initialized the scene, so it fetches fewer pages than
	// the others (paper Figure 12 analysis).
	run := runRT(t, "nolock", "svm", 8, 0.5)
	p0 := run.Procs[0].Counters.PageFetches
	var others uint64
	for i := 1; i < 8; i++ {
		others += run.Procs[i].Counters.PageFetches
	}
	others /= 7
	if p0 >= others {
		t.Errorf("proc 0 fetches %d >= average others %d; scene warm-start missing", p0, others)
	}
}
