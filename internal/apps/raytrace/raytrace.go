// Package raytrace reimplements the memory behaviour of SPLASH-2 Raytrace
// (paper §2.2.2, §4.2.3): a recursive ray tracer over an irregular scene
// with round-robin tile assignment, per-processor task queues, and task
// stealing. The scene is a procedural stand-in for the paper's "car" data
// set: a thousand spheres grouped under bounding volumes, so ray cost is
// irregular and unpredictable.
//
// The original SPLASH-2 code keeps global program statistics behind a lock
// acquired roughly once per ray — irrelevant on hardware cache coherence,
// catastrophic on SVM ("the performance jumps from a speedup of 0.5 to 11.05
// by simply eliminating this lock").
//
// Versions:
//
//   - orig:   global statistics lock taken once per primary ray;
//   - nolock: the lock removed (statistics kept per-processor) — the
//     paper's trivial, decisive fix;
//   - splitq: additionally, each processor's task queue is split into a
//     lock-free local queue and a locked public queue for stealing, with
//     tasks moved between them (the paper's final 11.72 version).
//
// Processor 0 reads the scene in from the (untimed) input file, so it starts
// with copies of the scene pages — the data-access-induced imbalance the
// paper observes in its optimized version (Figure 12).
package raytrace

import (
	"fmt"
	"math"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

const (
	tile       = 8
	nGroups    = 64
	perGroup   = 16
	groupCost  = 20  // cycles per bounding-volume test
	sphereCost = 40  // cycles per sphere intersection test
	shadeCost  = 200 // cycles per hit shaded
	maxDepth   = 2   // reflection bounces
)

type app struct{}

func init() { core.Register(app{}) }

// Name implements core.App.
func (app) Name() string { return "raytrace" }

// Versions implements core.App.
func (app) Versions() []core.Version {
	return []core.Version{
		{Name: "orig", Class: core.Orig, Desc: "global statistics lock once per ray"},
		{Name: "nolock", Class: core.Alg, Desc: "statistics lock eliminated"},
		{Name: "splitq", Class: core.Alg, Desc: "split local/steal task queues"},
	}
}

type vec struct{ x, y, z float64 }

func (a vec) sub(b vec) vec      { return vec{a.x - b.x, a.y - b.y, a.z - b.z} }
func (a vec) add(b vec) vec      { return vec{a.x + b.x, a.y + b.y, a.z + b.z} }
func (a vec) scale(s float64) vec { return vec{a.x * s, a.y * s, a.z * s} }
func (a vec) dot(b vec) float64  { return a.x*b.x + a.y*b.y + a.z*b.z }
func (a vec) norm() vec {
	l := math.Sqrt(a.dot(a))
	if l == 0 {
		return a
	}
	return a.scale(1 / l)
}

type sphere struct {
	c    vec
	r    float64
	refl float64 // reflectivity
	col  float64 // base intensity
}

type group struct {
	c      vec
	r      float64
	first  int
	count  int
}

type instance struct {
	n, np    int
	statLock bool
	splitQ   bool

	spheres []sphere
	groups  []group
	sphAdr  uint64 // 128 B per sphere record
	grpAdr  uint64 // 32 B per group record
	statAdr uint64

	img    []float64
	imgLay *mem.Array2D
	ref    []float64

	public []*apputil.TaskQueue
	local  []*apputil.TaskQueue
	assign [][]int

	statRays uint64
}

// Build implements core.App.
func (app) Build(version string, scale float64, as *mem.AddressSpace, np int) (core.Instance, error) {
	in := &instance{np: np}
	switch version {
	case "orig":
		in.statLock = true
	case "nolock":
	case "splitq":
		in.splitQ = true
	default:
		return nil, fmt.Errorf("raytrace: unknown version %q", version)
	}
	n := int(128 * scale)
	n = (n / (tile * 2)) * tile * 2
	if n < tile*4 {
		n = tile * 4
	}
	in.n = n

	// Procedural scene: clusters of spheres over a ground region.
	rng := apputil.NewRNG(2025)
	in.groups = make([]group, nGroups)
	in.spheres = make([]sphere, 0, nGroups*perGroup)
	for g := 0; g < nGroups; g++ {
		gc := vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*0.8 + 0.4}
		gr := 0.08 + rng.Float64()*0.12
		in.groups[g] = group{c: gc, r: gr * 2.2, first: len(in.spheres), count: perGroup}
		for s := 0; s < perGroup; s++ {
			sc := gc.add(vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}.scale(gr))
			in.spheres = append(in.spheres, sphere{
				c: sc, r: gr * (0.2 + 0.3*rng.Float64()),
				refl: 0.4 * rng.Float64(), col: 0.3 + 0.7*rng.Float64(),
			})
		}
	}
	in.sphAdr = as.AllocPages(len(in.spheres) * 128)
	in.grpAdr = as.Alloc(nGroups * 32)
	as.DistributeRoundRobin(in.sphAdr, len(in.spheres)*128)
	in.statAdr = as.Alloc(64)

	m := mem.NewArray2D(as, n, n, 8)
	as.DistributeRoundRobin(m.Base, m.Size())
	in.imgLay = m
	in.img = make([]float64, n*n)

	// Round-robin tile assignment (Raytrace starts this way, §4.2.3).
	nt := n / tile
	in.assign = make([][]int, np)
	for t := 0; t < nt*nt; t++ {
		in.assign[t%np] = append(in.assign[t%np], t)
	}
	in.public = make([]*apputil.TaskQueue, np)
	in.local = make([]*apputil.TaskQueue, np)
	for q := 0; q < np; q++ {
		in.public[q] = apputil.NewTaskQueue(as, q, apputil.QueueOptions{
			Capacity: nt * nt, EntryBytes: 16, LockID: 200 + q,
		})
		in.local[q] = apputil.NewTaskQueue(as, q, apputil.QueueOptions{
			Capacity: nt * nt, EntryBytes: 16, LockID: -1,
		})
		if in.splitQ {
			// A quarter of the tasks are published for stealing;
			// the rest stay in the lock-free local queue.
			cut := len(in.assign[q]) / 4
			in.public[q].Reset(in.assign[q][:cut])
			in.local[q].Reset(in.assign[q][cut:])
		} else {
			in.public[q].Reset(in.assign[q])
		}
	}

	in.ref = make([]float64, n*n)
	for py := 0; py < n; py++ {
		for px := 0; px < n; px++ {
			o, d := in.primary(px, py)
			in.ref[py*n+px] = in.shade(nil, o, d, maxDepth)
		}
	}
	return in, nil
}

// primary builds the orthographic primary ray for a pixel.
func (in *instance) primary(px, py int) (vec, vec) {
	o := vec{float64(px)/float64(in.n)*2 - 1, float64(py)/float64(in.n)*2 - 1, -2}
	return o, vec{0, 0, 1}
}

// intersect finds the nearest sphere hit; when p is non-nil it issues the
// simulated scene reads (group records, then sphere records of hit groups).
func (in *instance) intersect(p *sim.Proc, o, d vec) (int, float64) {
	best, bestT := -1, math.Inf(1)
	var work uint64
	for gi := range in.groups {
		g := &in.groups[gi]
		if p != nil {
			p.ReadRange(in.grpAdr+uint64(gi)*32, 32)
		}
		work += groupCost
		if !hitSphere(o, d, g.c, g.r) {
			continue
		}
		for si := g.first; si < g.first+g.count; si++ {
			s := &in.spheres[si]
			if p != nil {
				p.ReadRange(in.sphAdr+uint64(si)*128, 64)
			}
			work += sphereCost
			if t, ok := sphereT(o, d, s); ok && t < bestT {
				bestT, best = t, si
			}
		}
	}
	if p != nil {
		p.Compute(work)
	}
	return best, bestT
}

func hitSphere(o, d, c vec, r float64) bool {
	oc := o.sub(c)
	b := oc.dot(d)
	return b*b-oc.dot(oc)+r*r >= 0
}

func sphereT(o, d vec, s *sphere) (float64, bool) {
	oc := o.sub(s.c)
	b := oc.dot(d)
	disc := b*b - oc.dot(oc) + s.r*s.r
	if disc < 0 {
		return 0, false
	}
	t := -b - math.Sqrt(disc)
	if t < 1e-9 {
		return 0, false
	}
	return t, true
}

var light = vec{3, -4, -5}

// shade traces a ray and returns its intensity, recursing for reflections
// and casting a shadow ray per hit.
func (in *instance) shade(p *sim.Proc, o, d vec, depth int) float64 {
	oo, dd := o, d
	si, t := in.intersect(p, oo, dd)
	if si < 0 {
		return 0.05 // background
	}
	s := &in.spheres[si]
	hit := oo.add(dd.scale(t))
	nrm := hit.sub(s.c).norm()
	ldir := light.sub(hit).norm()
	if p != nil {
		p.Compute(shadeCost)
	}
	// Shadow ray.
	lum := 0.1
	if shadowIdx, _ := in.intersect(p, hit.add(nrm.scale(1e-6)), ldir); shadowIdx < 0 {
		if diff := nrm.dot(ldir); diff > 0 {
			lum += s.col * diff
		}
	}
	// Reflection.
	if depth > 0 && s.refl > 0.05 {
		rd := dd.sub(nrm.scale(2 * dd.dot(nrm)))
		lum += s.refl * in.shade(p, hit.add(nrm.scale(1e-6)), rd, depth-1)
	}
	return lum
}

func (in *instance) renderTile(p *sim.Proc, t int) {
	nt := in.n / tile
	x0, y0 := (t%nt)*tile, (t/nt)*tile
	for py := y0; py < y0+tile; py++ {
		for px := x0; px < x0+tile; px++ {
			o, d := in.primary(px, py)
			in.img[py*in.n+px] = in.shade(p, o, d, maxDepth)
			if in.statLock {
				// The paper's killer: global statistics updated
				// under a lock once per ray.
				p.Lock(9)
				p.Read(in.statAdr)
				in.statRays++
				p.Write(in.statAdr)
				p.Unlock(9)
			}
		}
		p.WriteRange(in.imgLay.Addr(py, x0), tile*8)
	}
}

// Body implements core.Instance.
func (in *instance) Body(p *sim.Proc) {
	id := p.ID()
	if id == 0 {
		// Processor 0 read the scene from the input file during
		// untimed initialization, so it already holds those pages.
		sim.WarmPages(p.Kernel(), in.sphAdr, len(in.spheres)*128, 0)
		sim.WarmPages(p.Kernel(), in.grpAdr, nGroups*32, 0)
	}
	p.Barrier()
	localDrained := false
	for {
		// Lock-free local queue first (splitq), replenishing the
		// public queue when thieves have emptied it.
		if in.splitQ && !localDrained {
			if in.public[id].Len() == 0 && in.local[id].Len() > 2 {
				in.local[id].StealHalf(p, in.public[id])
				continue
			}
			if t, ok := in.local[id].Dequeue(p); ok {
				in.renderTile(p, t)
				p.CountTask(false)
				continue
			}
			localDrained = true
		}
		if t, ok := in.public[id].Dequeue(p); ok {
			in.renderTile(p, t)
			p.CountTask(false)
			continue
		}
		break
	}
	// Steal from other public queues.
	for {
		got := false
		for off := 1; off < in.np; off++ {
			victim := (id + off) % in.np
			if !in.public[victim].Peek(p) {
				continue
			}
			t, ok := in.public[victim].Dequeue(p)
			if !ok {
				continue
			}
			in.renderTile(p, t)
			p.CountTask(true)
			got = true
		}
		if !got {
			if in.splitQ && in.anyLocalLeft() {
				// Owners still hold unpublished local work and
				// will republish; spin briefly and retry.
				p.Compute(1000)
				continue
			}
			break
		}
	}
	p.Barrier()
}

// anyLocalLeft reports whether any processor still holds unpublished tasks
// (host-side control check mirroring the shared work counter).
func (in *instance) anyLocalLeft() bool {
	for _, q := range in.local {
		if q.Len() > 0 {
			return true
		}
	}
	return false
}

// Verify implements core.Instance.
func (in *instance) Verify() error {
	for i := range in.img {
		if math.Abs(in.img[i]-in.ref[i]) > 1e-12 {
			return fmt.Errorf("raytrace: pixel %d = %g, want %g", i, in.img[i], in.ref[i])
		}
	}
	return nil
}
