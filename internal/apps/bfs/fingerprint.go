package bfs

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
)

// Fingerprint implements core.Fingerprinter: the distance array in vertex
// order. Distances are a pure function of the graph — the two-phase
// owner-claim protocol makes them independent of interleaving, platform,
// processor count, and version.
func (in *instance) Fingerprint() uint64 {
	h := apputil.NewHash()
	for _, d := range in.dist {
		h.Uint32(uint32(d))
	}
	return h.Sum()
}

var _ core.Fingerprinter = (*instance)(nil)
