// Package bfs is the second irregular modern workload of ROADMAP item 3:
// level-synchronous breadth-first search over a CSR graph (a ring for
// connectivity plus random long-range edges), restructured along the
// paper's §3 taxonomy. BFS is the canonical irregular-communication
// benchmark: the frontier's neighbor reads scatter across the whole
// distance array with no spatial locality, and the candidate hand-off
// between levels is exactly the kind of fine-grained producer-consumer
// traffic that page-grained SVM amplifies.
//
// Every level runs in two phases separated by barriers so results are
// interleaving-independent: an expand phase that scans the current frontier
// against the stable distance array (no distance is written while any
// processor reads it) and emits candidate vertices, then a claim phase in
// which each vertex's owner — and only its owner — marks its still-unvisited
// candidates with the next level. The distance array is therefore a pure
// function of the graph, identical across platforms, processor counts, and
// versions, and is what the fingerprint hashes.
//
// Versions:
//
//   - orig: per-processor candidate and frontier segments packed
//     back-to-back (false sharing at the seams), distances placed
//     round-robin, and every processor scans every candidate segment to
//     find the vertices it owns;
//   - pad:  P/A — the same structure with every per-processor segment
//     padded out to page boundaries;
//   - part: DS — owner-compute reorganization: expand writes candidates
//     directly into per-(source,owner) outboxes homed at the owner, the
//     claim phase reads only the processor's own inboxes, and the distance
//     array, row pointers, and adjacency are block-distributed so claim
//     writes are home-local;
//   - dir:  Alg — direction-optimizing BFS on the part structure: when the
//     frontier is large, switch bottom-up — each owner scans its own
//     unvisited vertices for a parent at the current level, with an early
//     exit on the first hit and no candidate traffic at all.
package bfs

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

const (
	baseVerts = 2048
	// extraEdges is the number of random long-range edges added per vertex
	// (each lands as two directed arcs) on top of the ring.
	extraEdges = 4
	// bottomUpDivisor: the dir version goes bottom-up when the frontier
	// holds more than numVerts/bottomUpDivisor vertices.
	bottomUpDivisor = 8
)

type app struct{}

func init() { core.RegisterExtension(app{}) }

// Name implements core.App.
func (app) Name() string { return "bfs" }

// Versions implements core.App.
func (app) Versions() []core.Version {
	return []core.Version{
		{Name: "orig", Class: core.Orig, Desc: "packed frontier/candidate segments, round-robin distances, all-scan claim"},
		{Name: "pad", Class: core.PA, Desc: "per-processor segments padded to page boundaries"},
		{Name: "part", Class: core.DS, Desc: "owner-partitioned outboxes and block-distributed graph data"},
		{Name: "dir", Class: core.Alg, Desc: "direction-optimizing traversal (bottom-up on large frontiers)"},
	}
}

type version int

const (
	vOrig version = iota
	vPad
	vPart
	vDir
)

type instance struct {
	ver      version
	np       int
	numVerts int
	row      []int32 // CSR row offsets, numVerts+1
	adj      []int32 // CSR adjacency
	dist     []int32 // live distances, -1 = unvisited; source is vertex 0
	expected []int32 // serial BFS reference, fixed at Build

	rowAdr, adjAdr, distAdr uint64

	// Frontier double buffer: segs[parity][q] is processor q's slice of
	// the frontier being built (claim) or consumed (expand), with its
	// simulated region at segAdr[parity][q]. segCap entries each.
	segs   [2][][]int32
	segAdr [2][]uint64
	segCap int

	// orig/pad: one candidate buffer per expanding processor.
	cand    [][]int32
	candAdr []uint64

	// part/dir: per-(source,owner) outboxes and a count matrix.
	out    [][][]int32
	outAdr [][]uint64
	cntAdr uint64
}

// Build implements core.App.
func (app) Build(versionName string, scale float64, as *mem.AddressSpace, np int) (core.Instance, error) {
	var ver version
	switch versionName {
	case "orig":
		ver = vOrig
	case "pad":
		ver = vPad
	case "part":
		ver = vPart
	case "dir":
		ver = vDir
	default:
		return nil, fmt.Errorf("bfs: unknown version %q", versionName)
	}
	numVerts := int(baseVerts * scale)
	if numVerts < 4*np {
		numVerts = 4 * np
	}
	return newInstance(ver, numVerts, 4242, as, np), nil
}

// newInstance builds a runnable instance over the seeded random graph; the
// property tests call it directly with randomized seeds.
func newInstance(ver version, numVerts int, seed uint64, as *mem.AddressSpace, np int) *instance {
	in := &instance{ver: ver, np: np, numVerts: numVerts}
	in.row, in.adj = generateGraph(numVerts, seed)
	in.dist = make([]int32, numVerts)
	for v := range in.dist {
		in.dist[v] = -1
	}
	in.dist[0] = 0
	in.expected = SerialBFS(in.row, in.adj)

	in.rowAdr = as.AllocPages((numVerts + 1) * 4)
	in.adjAdr = as.AllocPages(len(in.adj) * 4)
	in.distAdr = as.AllocPages(numVerts * 4)
	if in.ver == vPart || in.ver == vDir {
		for q := 0; q < np; q++ {
			lo, hi := apputil.Split(numVerts, np, q)
			if hi == lo {
				continue
			}
			as.SetHome(in.distAdr+uint64(lo)*4, (hi-lo)*4, q)
			as.SetHome(in.rowAdr+uint64(lo)*4, (hi-lo+1)*4, q)
			as.SetHome(in.adjAdr+uint64(in.row[lo])*4, int(in.row[hi]-in.row[lo])*4, q)
		}
	}

	// A processor appends at most one candidate per directed edge it
	// scans, so |edges|+|verts| entries bound every buffer for a level.
	in.segCap = len(in.adj) + numVerts
	alloc := func(parity int) {
		in.segs[parity] = make([][]int32, np)
		in.segAdr[parity] = make([]uint64, np)
		switch in.ver {
		case vOrig:
			base := as.Alloc(np * in.segCap * 4)
			for q := 0; q < np; q++ {
				in.segAdr[parity][q] = base + uint64(q*in.segCap)*4
			}
		default:
			for q := 0; q < np; q++ {
				in.segAdr[parity][q] = as.AllocPages(in.segCap * 4)
				if in.ver == vPart || in.ver == vDir {
					as.SetHome(in.segAdr[parity][q], in.segCap*4, q)
				}
			}
		}
	}
	alloc(0)
	alloc(1)
	in.segs[0][0] = append(in.segs[0][0], 0) // level-0 frontier: the source

	switch in.ver {
	case vOrig, vPad:
		in.cand = make([][]int32, np)
		in.candAdr = make([]uint64, np)
		if in.ver == vOrig {
			base := as.Alloc(np * in.segCap * 4)
			for p := 0; p < np; p++ {
				in.candAdr[p] = base + uint64(p*in.segCap)*4
			}
		} else {
			for p := 0; p < np; p++ {
				in.candAdr[p] = as.AllocPages(in.segCap * 4)
			}
		}
	case vPart, vDir:
		in.out = make([][][]int32, np)
		in.outAdr = make([][]uint64, np)
		in.cntAdr = as.AllocPages(np * np * 8)
		for p := 0; p < np; p++ {
			in.out[p] = make([][]int32, np)
			in.outAdr[p] = make([]uint64, np)
			for q := 0; q < np; q++ {
				// Outbox p->q homed at the owner that drains it.
				in.outAdr[p][q] = as.AllocPages(in.segCap * 4)
				as.SetHome(in.outAdr[p][q], in.segCap*4, q)
			}
		}
	}
	return in
}

// generateGraph builds the undirected test graph in CSR form: a ring for
// connectivity plus extraEdges random long-range edges per vertex.
func generateGraph(numVerts int, seed uint64) (row, adj []int32) {
	rng := apputil.NewRNG(seed)
	deg := make([]int32, numVerts)
	type edge struct{ u, v int32 }
	edges := make([]edge, 0, numVerts*(1+extraEdges))
	addEdge := func(u, v int32) {
		edges = append(edges, edge{u, v})
		deg[u]++
		deg[v]++
	}
	for i := 0; i < numVerts; i++ {
		addEdge(int32(i), int32((i+1)%numVerts))
	}
	for i := 0; i < numVerts*extraEdges; i++ {
		u, v := int32(rng.Intn(numVerts)), int32(rng.Intn(numVerts))
		if u != v {
			addEdge(u, v)
		}
	}
	row = make([]int32, numVerts+1)
	for v := 0; v < numVerts; v++ {
		row[v+1] = row[v] + deg[v]
	}
	adj = make([]int32, row[numVerts])
	next := append([]int32(nil), row[:numVerts]...)
	for _, e := range edges {
		adj[next[e.u]] = e.v
		next[e.u]++
		adj[next[e.v]] = e.u
		next[e.v]++
	}
	return row, adj
}

// SerialBFS computes distances from vertex 0 with a plain sequential
// traversal — the reference Verify and the property tests compare against.
func SerialBFS(row, adj []int32) []int32 {
	dist := make([]int32, len(row)-1)
	for v := range dist {
		dist[v] = -1
	}
	dist[0] = 0
	queue := []int32{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[row[u]:row[u+1]] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// frontierLen totals the current frontier; identical on every processor, so
// the level loop and the dir version's direction choice stay in lockstep.
func (in *instance) frontierLen(parity int) int {
	n := 0
	for _, s := range in.segs[parity] {
		n += len(s)
	}
	return n
}

// readFrontier simulates reading the processor's [lo, hi) chunk of the
// concatenated frontier segments and returns the chunk's vertices.
func (in *instance) readFrontier(p *sim.Proc, parity, lo, hi int) []int32 {
	var chunk []int32
	base := 0
	for q, seg := range in.segs[parity] {
		slo, shi := lo-base, hi-base
		if slo < 0 {
			slo = 0
		}
		if shi > len(seg) {
			shi = len(seg)
		}
		if slo < shi {
			p.ReadRange(in.segAdr[parity][q]+uint64(slo)*4, (shi-slo)*4)
			chunk = append(chunk, seg[slo:shi]...)
		}
		base += len(seg)
	}
	return chunk
}

// Body implements core.Instance.
func (in *instance) Body(p *sim.Proc) {
	id := p.ID()
	olo, ohi := apputil.Split(in.numVerts, in.np, id)
	parity := 0
	for level := int32(0); ; level++ {
		total := in.frontierLen(parity)
		if total == 0 {
			break
		}
		lo, hi := apputil.Split(total, in.np, id)
		bottomUp := in.ver == vDir && total > in.numVerts/bottomUpDivisor

		if !bottomUp {
			chunk := in.readFrontier(p, parity, lo, hi)
			switch in.ver {
			case vOrig, vPad:
				in.expandShared(p, chunk)
			default:
				in.expandPartitioned(p, chunk)
			}
		}
		p.Barrier()

		next := in.segs[1-parity]
		next[id] = next[id][:0]
		switch {
		case bottomUp:
			in.claimBottomUp(p, level, olo, ohi, next)
		case in.ver == vOrig || in.ver == vPad:
			in.claimShared(p, level, olo, ohi, next)
		default:
			in.claimPartitioned(p, level, next)
		}
		if len(next[id]) > 0 {
			p.WriteRange(in.segAdr[1-parity][id], len(next[id])*4)
		}
		p.Barrier()
		parity = 1 - parity
	}
	p.Barrier()
}

// expandShared scans the chunk's adjacency against the stable distance
// array and appends unvisited neighbors to this processor's candidate
// buffer (orig/pad).
func (in *instance) expandShared(p *sim.Proc, chunk []int32) {
	id := p.ID()
	in.cand[id] = in.cand[id][:0]
	for _, u := range chunk {
		p.ReadRange(in.rowAdr+uint64(u)*4, 8)
		r0, r1 := in.row[u], in.row[u+1]
		p.ReadRange(in.adjAdr+uint64(r0)*4, int(r1-r0)*4)
		for _, v := range in.adj[r0:r1] {
			p.Read(in.distAdr + uint64(v)*4)
			p.Compute(2)
			if in.dist[v] < 0 {
				in.cand[id] = append(in.cand[id], v)
			}
		}
		p.Compute(6)
	}
	if len(in.cand[id]) > 0 {
		p.WriteRange(in.candAdr[id], len(in.cand[id])*4)
	}
}

// claimShared has every processor scan every candidate buffer, claiming the
// vertices it owns (orig/pad).
func (in *instance) claimShared(p *sim.Proc, level int32, olo, ohi int, next [][]int32) {
	id := p.ID()
	for src := 0; src < in.np; src++ {
		if len(in.cand[src]) > 0 {
			p.ReadRange(in.candAdr[src], len(in.cand[src])*4)
		}
		for _, v := range in.cand[src] {
			p.Compute(2)
			if int(v) < olo || int(v) >= ohi {
				continue
			}
			p.Read(in.distAdr + uint64(v)*4)
			if in.dist[v] < 0 {
				in.dist[v] = level + 1
				p.Write(in.distAdr + uint64(v)*4)
				next[id] = append(next[id], v)
			}
		}
	}
}

// expandPartitioned scans the chunk and ships each unvisited neighbor
// straight to its owner's outbox (part/dir).
func (in *instance) expandPartitioned(p *sim.Proc, chunk []int32) {
	id := p.ID()
	for q := 0; q < in.np; q++ {
		in.out[id][q] = in.out[id][q][:0]
	}
	for _, u := range chunk {
		p.ReadRange(in.rowAdr+uint64(u)*4, 8)
		r0, r1 := in.row[u], in.row[u+1]
		p.ReadRange(in.adjAdr+uint64(r0)*4, int(r1-r0)*4)
		for _, v := range in.adj[r0:r1] {
			p.Read(in.distAdr + uint64(v)*4)
			p.Compute(2)
			if in.dist[v] < 0 {
				q := in.ownerOf(v)
				in.out[id][q] = append(in.out[id][q], v)
			}
		}
		p.Compute(6)
	}
	for q := 0; q < in.np; q++ {
		if n := len(in.out[id][q]); n > 0 {
			p.WriteRange(in.outAdr[id][q], n*4)
		}
		p.Write(in.cntAdr + uint64(id*in.np+q)*8)
	}
}

// claimPartitioned drains only this processor's own inboxes (part/dir).
func (in *instance) claimPartitioned(p *sim.Proc, level int32, next [][]int32) {
	id := p.ID()
	for src := 0; src < in.np; src++ {
		p.Read(in.cntAdr + uint64(src*in.np+id)*8)
		box := in.out[src][id]
		if len(box) > 0 {
			p.ReadRange(in.outAdr[src][id], len(box)*4)
		}
		for _, v := range box {
			p.Read(in.distAdr + uint64(v)*4)
			p.Compute(2)
			if in.dist[v] < 0 {
				in.dist[v] = level + 1
				p.Write(in.distAdr + uint64(v)*4)
				next[id] = append(next[id], v)
			}
		}
	}
}

// claimBottomUp scans this owner's unvisited vertices for a parent at the
// current level, stopping at the first hit (dir). A concurrent claim can
// only write level+1 into a distance, never level, so the parent test reads
// stable values and the result is interleaving-independent.
func (in *instance) claimBottomUp(p *sim.Proc, level int32, olo, ohi int, next [][]int32) {
	id := p.ID()
	for v := olo; v < ohi; v++ {
		p.Read(in.distAdr + uint64(v)*4)
		if in.dist[v] >= 0 {
			continue
		}
		p.ReadRange(in.rowAdr+uint64(v)*4, 8)
		r0, r1 := in.row[v], in.row[v+1]
		for i := r0; i < r1; i++ {
			u := in.adj[i]
			p.Read(in.adjAdr + uint64(i)*4)
			p.Read(in.distAdr + uint64(u)*4)
			p.Compute(2)
			if in.dist[u] == level {
				in.dist[v] = level + 1
				p.Write(in.distAdr + uint64(v)*4)
				next[id] = append(next[id], int32(v))
				break
			}
		}
		p.Compute(4)
	}
}

// ownerOf returns the processor owning vertex v under the block partition.
func (in *instance) ownerOf(v int32) int {
	for q := 0; q < in.np; q++ {
		lo, hi := apputil.Split(in.numVerts, in.np, q)
		if int(v) >= lo && int(v) < hi {
			return q
		}
	}
	return in.np - 1
}

// Verify implements core.Instance: the computed distances must equal the
// serial traversal's exactly.
func (in *instance) Verify() error {
	for v := range in.dist {
		if in.dist[v] != in.expected[v] {
			return fmt.Errorf("bfs: dist[%d] = %d, serial reference says %d", v, in.dist[v], in.expected[v])
		}
	}
	return nil
}
