package bfs

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
)

func runBFS(t *testing.T, version, plat string, np int, scale float64) *instance {
	t.Helper()
	as := mem.NewAddressSpace(platform.PageSize, np)
	inst, err := app{}.Build(version, scale, as, np)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platform.Make(plat, as, np)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.New(pl, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager})
	k.Run("bfs/"+version+"@"+plat, inst.Body)
	if err := inst.Verify(); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	return inst.(*instance)
}

func TestAllVersionsRunAndVerify(t *testing.T) {
	for _, v := range []string{"orig", "pad", "part", "dir"} {
		t.Run(v, func(t *testing.T) { runBFS(t, v, "svm", 4, 0.25) })
	}
}

func TestAcrossPlatforms(t *testing.T) {
	for _, pl := range platform.Names {
		t.Run(pl, func(t *testing.T) { runBFS(t, "dir", pl, 4, 0.25) })
	}
}

func TestUniprocessor(t *testing.T) {
	runBFS(t, "orig", "svm", 1, 0.25)
}

// The distance array is a pure function of the graph: fingerprints must
// agree across versions, platforms, and processor counts.
func TestFingerprintInvariant(t *testing.T) {
	var want uint64
	first := ""
	check := func(name string, in *instance) {
		fp := in.Fingerprint()
		if first == "" {
			want, first = fp, name
			return
		}
		if fp != want {
			t.Errorf("%s fingerprint %#x != %s fingerprint %#x", name, fp, first, want)
		}
	}
	for _, v := range []string{"orig", "pad", "part", "dir"} {
		check(v+"@svm p=3", runBFS(t, v, "svm", 3, 0.25))
	}
	check("dir@smp p=8", runBFS(t, "dir", "smp", 8, 0.25))
	check("orig@dsm p=1", runBFS(t, "orig", "dsm", 1, 0.25))
}

// Property: on randomized graphs, every version's parallel distances must
// equal a plain sequential BFS — including at processor counts that do not
// divide the vertex count.
func TestRandomGraphsMatchSerialBFS(t *testing.T) {
	for _, seed := range []uint64{2, 99, 123456} {
		for _, ver := range []version{vOrig, vPad, vPart, vDir} {
			np := 5
			as := mem.NewAddressSpace(platform.PageSize, np)
			in := newInstance(ver, 300+int(seed%7)*31, seed, as, np)
			want := SerialBFS(in.row, in.adj)
			pl, _ := platform.Make("svm", as, np)
			sim.New(pl, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager}).Run("bfs", in.Body)
			for v := range want {
				if in.dist[v] != want[v] {
					t.Fatalf("seed %d version %d: dist[%d] = %d, want %d", seed, ver, v, in.dist[v], want[v])
				}
			}
		}
	}
}

// The ring guarantees connectivity: a serial traversal must reach every
// vertex, so -1 distances can only ever mean a broken parallel claim.
func TestGraphIsConnected(t *testing.T) {
	row, adj := generateGraph(512, 7)
	for v, d := range SerialBFS(row, adj) {
		if d < 0 {
			t.Fatalf("vertex %d unreachable", v)
		}
	}
}

// The dir version must actually exercise both directions on the default
// graph — otherwise it degenerates to part and the Alg label is a lie.
func TestDirectionOptimizingSwitches(t *testing.T) {
	np := 4
	as := mem.NewAddressSpace(platform.PageSize, np)
	in := newInstance(vDir, 1024, 4242, as, np)
	levels := map[int32]int{}
	for _, d := range SerialBFS(in.row, in.adj) {
		levels[d]++
	}
	sawSmall, sawBig := false, false
	for _, n := range levels {
		if n <= in.numVerts/bottomUpDivisor {
			sawSmall = true
		} else {
			sawBig = true
		}
	}
	if !sawSmall || !sawBig {
		t.Fatalf("frontier sizes %v never cross the bottom-up threshold %d", levels, in.numVerts/bottomUpDivisor)
	}
}
