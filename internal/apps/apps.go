// Package apps links every application reimplementation into the registry.
// Importing it (blank) makes the paper's seven applications and the
// irregular extension workloads (kvstore, bfs, pipeline) available to
// core.Lookup.
package apps

import (
	// Each application package registers itself in its init function.
	_ "repro/internal/apps/barnes"
	_ "repro/internal/apps/bfs"
	_ "repro/internal/apps/kvstore"
	_ "repro/internal/apps/lu"
	_ "repro/internal/apps/ocean"
	_ "repro/internal/apps/pipeline"
	_ "repro/internal/apps/radix"
	_ "repro/internal/apps/raytrace"
	_ "repro/internal/apps/shearwarp"
	_ "repro/internal/apps/volrend"
)
