package barnes

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
)

var allVersions = []string{"splash", "pad", "splash2", "updatetree", "partree", "spatial"}

func runBarnes(t *testing.T, version, plat string, np int, scale float64) *stats.Run {
	t.Helper()
	as := mem.NewAddressSpace(platform.PageSize, np)
	a, err := core.Lookup("barnes")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := a.Build(version, scale, as, np)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platform.Make(plat, as, np)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.New(pl, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager})
	run := k.Run("barnes/"+version+"@"+plat, inst.Body)
	if err := inst.Verify(); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	return run
}

func TestBarnesCorrectAllVersions(t *testing.T) {
	for _, v := range allVersions {
		t.Run(v, func(t *testing.T) { runBarnes(t, v, "svm", 4, 0.25) })
	}
}

func TestBarnesAcrossPlatforms(t *testing.T) {
	for _, pl := range platform.Names {
		t.Run(pl, func(t *testing.T) { runBarnes(t, "spatial", pl, 4, 0.25) })
	}
}

func TestBarnesUniprocessor(t *testing.T) {
	runBarnes(t, "splash", "svm", 1, 0.25)
}

func TestBarnesLockCounts(t *testing.T) {
	// The shared-tree build locks on the order of a couple of lock
	// acquisitions per body (paper: ~66k remote locks for 16k bodies in
	// 2 steps); the spatial build must use almost none.
	shared := runBarnes(t, "splash", "svm", 8, 0.5)
	spatial := runBarnes(t, "spatial", "svm", 8, 0.5)
	ls, lo := spatial.AggregateCounters().LockAcquires, shared.AggregateCounters().LockAcquires
	if lo < uint64(1024) { // 1024 bodies at scale 0.5, ~>=1 lock/body over 2 steps
		t.Errorf("shared-tree build acquired only %d locks", lo)
	}
	if ls*4 >= lo {
		t.Errorf("spatial locks (%d) not well below shared-tree locks (%d)", ls, lo)
	}
}

func TestBarnesSpatialBeatsSplashOnSVM(t *testing.T) {
	shared := runBarnes(t, "splash", "svm", 16, 0.5)
	spatial := runBarnes(t, "spatial", "svm", 16, 0.5)
	if spatial.EndTime >= shared.EndTime {
		t.Errorf("spatial (%d) should beat splash (%d) on SVM", spatial.EndTime, shared.EndTime)
	}
}

func TestBarnesTreeBuildShareShrinks(t *testing.T) {
	// Paper: tree building takes 43%% of SVM time with the shared-tree
	// algorithm versus a small share with the spatial one.
	shared := runBarnes(t, "splash", "svm", 16, 0.5)
	spatial := runBarnes(t, "spatial", "svm", 16, 0.5)
	fs := float64(shared.PhaseTimes["treebuild"]) / float64(shared.EndTime*16)
	fo := float64(spatial.PhaseTimes["treebuild"]) / float64(spatial.EndTime*16)
	if fo >= fs {
		t.Errorf("spatial tree-build share %.2f >= shared %.2f", fo, fs)
	}
}
