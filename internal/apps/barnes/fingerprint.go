package barnes

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
)

// Fingerprint implements core.Fingerprinter over the step-0 accelerations
// and position snapshot — the data Verify checks. The freshly built tree's
// structure is canonical (a region is split iff it holds more than leafCap
// bodies, regardless of insertion interleaving) and leaf body lists are kept
// sorted, so step-0 forces are bit-identical across platforms and processor
// counts for a given version. Later steps go through Update-Tree, whose
// structure IS interleaving-dependent (a removal can shrink a leaf below the
// split threshold before a concurrent insertion), so they are deliberately
// not fingerprinted.
func (in *instance) Fingerprint() uint64 {
	h := apputil.NewHash()
	for i := range in.verifyAcc {
		h.Floats(in.verifyAcc[i][:])
		h.Floats(in.posSnap[i][:])
	}
	return h.Sum()
}

var _ core.Fingerprinter = (*instance)(nil)
