package barnes

import "math"

// The real Barnes-Hut data structures and geometry. Tree nodes live in a
// single host-side slice; the simulated address of a node depends on which
// pool (global interleaved vs. per-processor heap) the running version
// allocated it from — that mapping lives in instance, not here.

const (
	leafCap = 8   // bodies per leaf, as in SPLASH Barnes
	theta   = 0.7 // opening criterion
	softEps = 0.05
)

type body struct {
	pos, vel, acc [3]float64
	mass          float64
	leaf          int32 // leaf node currently holding the body (Update-Tree)
}

type node struct {
	center [3]float64
	half   float64
	child  [8]int32 // children (internal nodes); -1 = empty
	bodies []int32  // leaf payload; nil for internal nodes
	com    [3]float64
	mass   float64
	owner  int32 // allocating processor
	leafN  bool
	used   bool
}

// tree is a growable arena of nodes with a root index.
type tree struct {
	nodes []node
	root  int32
}

func (t *tree) reset() {
	t.nodes = t.nodes[:0]
	t.root = -1
}

// alloc appends a fresh node and returns its index.
func (t *tree) alloc(center [3]float64, half float64, owner int, leaf bool) int32 {
	n := node{center: center, half: half, owner: int32(owner), leafN: leaf, used: true}
	for i := range n.child {
		n.child[i] = -1
	}
	t.nodes = append(t.nodes, n)
	return int32(len(t.nodes) - 1)
}

// octant returns which child octant of c contains p.
func octant(c *node, p [3]float64) int {
	o := 0
	for d := 0; d < 3; d++ {
		if p[d] >= c.center[d] {
			o |= 1 << d
		}
	}
	return o
}

// childBounds computes the center/half of octant o of cell c.
func childBounds(c *node, o int) ([3]float64, float64) {
	h := c.half / 2
	ctr := c.center
	for d := 0; d < 3; d++ {
		if o&(1<<d) != 0 {
			ctr[d] += h
		} else {
			ctr[d] -= h
		}
	}
	return ctr, h
}

// contains reports whether p lies within node c's cube.
func contains(c *node, p [3]float64) bool {
	for d := 0; d < 3; d++ {
		if p[d] < c.center[d]-c.half || p[d] >= c.center[d]+c.half {
			return false
		}
	}
	return true
}

// insertVisitor is called on every node touched during an insertion: descend
// steps (reads) and modifications (locked writes, allocations). It lets the
// instance charge the right simulated costs per version.
type insertVisitor interface {
	visit(n int32)             // node read while descending
	modify(n int32)            // node written under its lock
	allocated(n int32, by int) // new node created
}

// insert adds body b (index bi) into the subtree at idx, invoking v's hooks.
// It returns the leaf that finally holds the body.
func (t *tree) insert(idx int32, bodies []body, bi int32, owner int, v insertVisitor) int32 {
	for {
		c := &t.nodes[idx]
		if v != nil {
			v.visit(idx)
		}
		if c.leafN {
			if v != nil {
				v.modify(idx)
			}
			if len(c.bodies) < leafCap {
				c.bodies = insertSorted(c.bodies, bi)
				bodies[bi].leaf = idx
				return idx
			}
			// Split the leaf into an internal node and reinsert.
			old := append([]int32(nil), c.bodies...)
			c.bodies = nil
			c.leafN = false
			for _, ob := range old {
				t.placeInChild(idx, bodies, ob, owner, v)
			}
			// Fall through: continue inserting bi at this internal node.
			continue
		}
		o := octant(c, bodies[bi].pos)
		ch := c.child[o]
		if ch < 0 {
			if v != nil {
				v.modify(idx)
			}
			ctr, h := childBounds(c, o)
			nl := t.alloc(ctr, h, owner, true)
			if v != nil {
				v.allocated(nl, owner)
			}
			t.nodes[idx].child[o] = nl
			t.nodes[nl].bodies = append(t.nodes[nl].bodies, bi)
			bodies[bi].leaf = nl
			return nl
		}
		idx = ch
	}
}

// insertSorted adds bi to a leaf's body list keeping it sorted by index.
// Which bodies land in a leaf is canonical (pure geometry), but the order
// processors reach it depends on the simulated interleaving — and the
// floating-point folds in computeCOM and force walk this list in order, so
// an interleaving-dependent order would make results differ across
// processor counts, versions and platforms that agree on the physics.
func insertSorted(bs []int32, bi int32) []int32 {
	i := len(bs)
	bs = append(bs, bi)
	for i > 0 && bs[i-1] > bi {
		bs[i] = bs[i-1]
		i--
	}
	bs[i] = bi
	return bs
}

// placeInChild pushes body ob one level down from internal node idx during a
// leaf split.
func (t *tree) placeInChild(idx int32, bodies []body, ob int32, owner int, v insertVisitor) {
	c := &t.nodes[idx]
	o := octant(c, bodies[ob].pos)
	if c.child[o] < 0 {
		ctr, h := childBounds(c, o)
		nl := t.alloc(ctr, h, owner, true)
		if v != nil {
			v.allocated(nl, owner)
		}
		t.nodes[idx].child[o] = nl
	}
	ch := t.nodes[idx].child[o]
	t.insert(ch, bodies, ob, owner, v)
}

// computeCOM fills in masses and centers of mass bottom-up from idx.
func (t *tree) computeCOM(idx int32, bodies []body) (mass float64, com [3]float64) {
	c := &t.nodes[idx]
	if c.leafN {
		for _, bi := range c.bodies {
			b := &bodies[bi]
			mass += b.mass
			for d := 0; d < 3; d++ {
				com[d] += b.mass * b.pos[d]
			}
		}
	} else {
		for _, ch := range c.child {
			if ch < 0 {
				continue
			}
			m, cc := t.computeCOM(ch, bodies)
			mass += m
			for d := 0; d < 3; d++ {
				com[d] += m * cc[d]
			}
		}
	}
	if mass > 0 {
		for d := 0; d < 3; d++ {
			com[d] /= mass
		}
	}
	c.mass = mass
	c.com = com
	return mass, com
}

// forceVisitor is called on every node examined during a force traversal.
type forceVisitor interface {
	examine(n int32)       // node whose COM/children were read
	interactBody(bi int32) // direct body-body interaction
}

// force accumulates the acceleration on body bi from the subtree at idx.
func (t *tree) force(idx int32, bodies []body, bi int32, acc *[3]float64, v forceVisitor) {
	c := &t.nodes[idx]
	if v != nil {
		v.examine(idx)
	}
	if c.mass == 0 {
		return
	}
	b := &bodies[bi]
	if c.leafN {
		for _, ob := range c.bodies {
			if ob == bi {
				continue
			}
			if v != nil {
				v.interactBody(ob)
			}
			addForce(b.pos, bodies[ob].pos, bodies[ob].mass, acc)
		}
		return
	}
	dx := c.com[0] - b.pos[0]
	dy := c.com[1] - b.pos[1]
	dz := c.com[2] - b.pos[2]
	dist := math.Sqrt(dx*dx + dy*dy + dz*dz)
	if (2*c.half)/ (dist + 1e-12) < theta {
		addPoint(dx, dy, dz, dist, c.mass, acc)
		return
	}
	for _, ch := range c.child {
		if ch >= 0 {
			t.force(ch, bodies, bi, acc, v)
		}
	}
}

func addForce(p, q [3]float64, m float64, acc *[3]float64) {
	dx, dy, dz := q[0]-p[0], q[1]-p[1], q[2]-p[2]
	dist := math.Sqrt(dx*dx + dy*dy + dz*dz)
	addPoint(dx, dy, dz, dist, m, acc)
}

func addPoint(dx, dy, dz, dist, m float64, acc *[3]float64) {
	d2 := dist*dist + softEps*softEps
	f := m / (d2 * math.Sqrt(d2))
	acc[0] += f * dx
	acc[1] += f * dy
	acc[2] += f * dz
}

// directForce computes the exact O(n^2) acceleration on body bi — the
// verification reference for the Barnes-Hut approximation.
func directForce(bodies []body, bi int) [3]float64 {
	var acc [3]float64
	for j := range bodies {
		if j == bi {
			continue
		}
		addForce(bodies[bi].pos, bodies[j].pos, bodies[j].mass, &acc)
	}
	return acc
}

// remove deletes body bi from leaf lf (Update-Tree), preserving the sorted
// order insertSorted maintains (a swap-with-last would reintroduce an
// interleaving-dependent order).
func (t *tree) remove(lf int32, bi int32) {
	bs := t.nodes[lf].bodies
	for i, b := range bs {
		if b == bi {
			copy(bs[i:], bs[i+1:])
			t.nodes[lf].bodies = bs[:len(bs)-1]
			return
		}
	}
}
