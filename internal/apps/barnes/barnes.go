// Package barnes reimplements the memory behaviour of Barnes-Hut N-body
// simulation as studied in the paper (§2.2.2, §4.2.4). Two time-steps are
// simulated (the paper's measurement uses 2 steps, "almost 66k remote locks
// in 2 steps"). The force-calculation phase is shared by all versions; the
// versions differ in how the shared octree is built — the phase the paper
// shows ballooning from ~2% sequentially to 43% of SVM execution time.
//
// Versions:
//
//   - splash:     the SPLASH (not SPLASH-2) original: one shared tree built
//     with a lock per modified cell; cells allocated from a globally
//     interleaved shared array, so concurrently-allocated cells share pages;
//   - pad:        per-processor pointer arrays and allocation chunks padded
//     to pages (P/A; "does not help performance much");
//   - splash2:    the SPLASH-2 restructuring (DS): cells and leaves are
//     allocated from per-processor local heaps (2.76 -> 2.94);
//   - updatetree: incremental Alg redesign — the tree is kept between steps
//     and only bodies that crossed cell boundaries move (5.56);
//   - partree:    each processor builds a lock-free local tree over its own
//     bodies, then the trees are merged — the merging is locked and highly
//     imbalanced (5.65);
//   - spatial:    the domain is split into equal subspaces; each processor
//     builds the subtree of its subspace without synchronization and the
//     disjoint subtrees are merged almost for free (10.5).
package barnes

import (
	"fmt"
	"math"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

const (
	steps      = 2
	cellBytes  = 256
	bodyBytes  = 128
	visitCost  = 12 // cycles per node opening test
	interCost  = 40 // cycles per body-body interaction
	buildCost  = 30 // cycles per insertion step
	dt         = 0.02
	rootHalf   = 2.0
	nLockSlots = 512 // SPLASH's finite lock array: cell locks alias
)

type app struct{}

func init() { core.Register(app{}) }

// Name implements core.App.
func (app) Name() string { return "barnes" }

// Versions implements core.App.
func (app) Versions() []core.Version {
	return []core.Version{
		{Name: "splash", Class: core.Orig, Desc: "shared tree, per-cell locks, interleaved cell array"},
		{Name: "pad", Class: core.PA, Desc: "pointer arrays and cell chunks padded to pages"},
		{Name: "splash2", Class: core.DS, Desc: "cells allocated from per-processor local heaps"},
		{Name: "updatetree", Class: core.Alg, Desc: "incremental tree update between steps"},
		{Name: "partree", Class: core.Alg, Desc: "lock-free local trees merged with locks"},
		{Name: "spatial", Class: core.Alg, Desc: "equal subspaces, disjoint local builds, trivial merge"},
	}
}

type version int

const (
	vSplash version = iota
	vPad
	vSplash2
	vUpdate
	vPartree
	vSpatial
)

type instance struct {
	ver    version
	n, np  int
	bodies []body
	t      tree

	bodyAdr uint64 // body records, blocked by owner
	bboxAdr uint64

	// Cell pools. localPools: per-processor heaps (DS versions);
	// otherwise one interleaved global array.
	globalPool uint64
	localPool  []uint64
	allocCnt   []int
	nodeAddr   []uint64 // simulated address per tree node

	slabRoot []int32 // spatial version: per-processor subtree roots
	locRoot  []int32 // partree: local roots

	verifyAcc [][3]float64 // accelerations after the first force phase
	posSnap   [][3]float64 // positions at that same point
}

// Build implements core.App.
func (app) Build(vname string, scale float64, as *mem.AddressSpace, np int) (core.Instance, error) {
	in := &instance{np: np}
	switch vname {
	case "splash":
		in.ver = vSplash
	case "pad":
		in.ver = vPad
	case "splash2":
		in.ver = vSplash2
	case "updatetree":
		in.ver = vUpdate
	case "partree":
		in.ver = vPartree
	case "spatial":
		in.ver = vSpatial
	default:
		return nil, fmt.Errorf("barnes: unknown version %q", vname)
	}
	n := int(2048 * scale)
	if n < 16*np {
		n = 16 * np
	}
	in.n = n

	// Two clustered blobs: a non-uniform distribution, so equal subspaces
	// are imbalanced (the spatial version's documented cost).
	rng := apputil.NewRNG(31337)
	gauss := func() float64 {
		// Sum of uniforms, scaled: cheap approximate normal.
		return (rng.Float64() + rng.Float64() + rng.Float64() + rng.Float64() - 2) / 2
	}
	in.bodies = make([]body, n)
	for i := range in.bodies {
		c := [3]float64{-0.8, -0.2, 0}
		if i%3 == 0 {
			c = [3]float64{0.7, 0.3, 0.1}
		}
		b := &in.bodies[i]
		for d := 0; d < 3; d++ {
			b.pos[d] = clamp(c[d]+0.45*gauss(), -rootHalf+0.01, rootHalf-0.01)
			b.vel[d] = 0.05 * gauss()
		}
		b.mass = 1.0 / float64(n)
		b.leaf = -1
	}

	in.bodyAdr = as.AllocPages(n * bodyBytes)
	for q := 0; q < np; q++ {
		lo, hi := apputil.Split(n, np, q)
		as.SetHome(in.bodyAdr+uint64(lo)*bodyBytes, (hi-lo)*bodyBytes, q)
	}
	in.bboxAdr = as.Alloc(64)

	maxCells := 8*n/leafCap + 64*np
	switch in.ver {
	case vSplash:
		in.globalPool = as.AllocPages(maxCells * cellBytes)
		as.DistributeRoundRobin(in.globalPool, maxCells*cellBytes)
	case vPad:
		// Padding the per-processor allocation chunks to pages: the
		// global array is still shared, but each processor's chunk of
		// slots starts page-aligned. (Cells are padded, not relocated
		// — "a huge waste of memory".)
		in.globalPool = as.AllocPages(maxCells * cellBytes * 2)
		as.DistributeRoundRobin(in.globalPool, maxCells*cellBytes*2)
	default:
		in.localPool = make([]uint64, np)
		per := maxCells/np + 64
		for q := 0; q < np; q++ {
			in.localPool[q] = as.AllocPages(per * cellBytes)
			as.SetHome(in.localPool[q], per*cellBytes, q)
		}
	}
	in.allocCnt = make([]int, np)
	in.slabRoot = make([]int32, np)
	in.locRoot = make([]int32, np)
	return in, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// cellAddr returns the simulated address of tree node idx.
func (in *instance) cellAddr(idx int32) uint64 { return in.nodeAddr[idx] }

// assignAddr gives a freshly allocated node its simulated address according
// to the version's pool layout.
func (in *instance) assignAddr(idx int32, owner int) {
	for int(idx) >= len(in.nodeAddr) {
		in.nodeAddr = append(in.nodeAddr, 0)
	}
	cnt := in.allocCnt[owner]
	in.allocCnt[owner]++
	switch in.ver {
	case vSplash:
		// Interleaved: consecutive allocations from different
		// processors share pages.
		slot := cnt*in.np + owner
		in.nodeAddr[idx] = in.globalPool + uint64(slot)*cellBytes
	case vPad:
		// Page-aligned per-processor chunks of 16 slots.
		chunk, off := cnt/16, cnt%16
		slot := (chunk*in.np+owner)*16 + off
		in.nodeAddr[idx] = in.globalPool + uint64(slot)*cellBytes
	default:
		in.nodeAddr[idx] = in.localPool[owner] + uint64(cnt)*cellBytes
	}
}

func (in *instance) bAddr(bi int32) uint64 { return in.bodyAdr + uint64(bi)*bodyBytes }

func lockOf(idx int32) int { return 1000 + int(idx)%nLockSlots }

// recorder collects the nodes an insertion touches. Tree mutations run
// host-atomically (no simulation yields can interleave with them); the
// recorded reads, locked writes and allocations are charged to the simulated
// processor afterwards, so lock contention and page behaviour are preserved
// while the host data structure stays consistent.
type recorder struct {
	in     *instance
	visits []int32
	mods   []int32
	allocs []int32
}

func (r *recorder) reset() {
	r.visits = r.visits[:0]
	r.mods = r.mods[:0]
	r.allocs = r.allocs[:0]
}

func (r *recorder) visit(n int32) { r.visits = append(r.visits, n) }

func (r *recorder) modify(n int32) { r.mods = append(r.mods, n) }

func (r *recorder) allocated(n int32, by int) {
	r.in.assignAddr(n, by)
	r.allocs = append(r.allocs, n)
}

// charge replays the recorded costs: descent reads, per-cell locked writes,
// and new-cell initializations.
func (r *recorder) charge(p *sim.Proc, locks bool) {
	for _, n := range r.visits {
		p.ReadRange(r.in.cellAddr(n), 64)
		p.Compute(buildCost)
	}
	for _, n := range r.mods {
		if locks {
			p.Lock(lockOf(n))
		}
		p.WriteRange(r.in.cellAddr(n), 64)
		if locks {
			p.Unlock(lockOf(n))
		}
	}
	for _, n := range r.allocs {
		p.WriteRange(r.in.cellAddr(n), cellBytes)
	}
}

// forceCharger charges force-traversal accesses.
type forceCharger struct {
	in *instance
	p  *sim.Proc
}

func (fc *forceCharger) examine(n int32) {
	fc.p.ReadRange(fc.in.cellAddr(n), 64)
	fc.p.Compute(visitCost)
}

func (fc *forceCharger) interactBody(bi int32) {
	fc.p.ReadRange(fc.in.bAddr(bi), 32)
	fc.p.Compute(interCost)
}

// Body implements core.Instance.
func (in *instance) Body(p *sim.Proc) {
	id := p.ID()
	lo, hi := apputil.Split(in.n, in.np, id)

	for step := 0; step < steps; step++ {
		// Phase 1: bounding box (a locked reduction over own bodies).
		for bi := lo; bi < hi; bi++ {
			p.ReadRange(in.bAddr(int32(bi)), 32)
		}
		p.Compute(uint64(4 * (hi - lo)))
		p.Lock(2000)
		p.Read(in.bboxAdr)
		p.Write(in.bboxAdr)
		p.Unlock(2000)
		p.Barrier()

		// Phase 2: tree build.
		t0 := p.Now()
		in.buildPhase(p, step, lo, hi)
		p.Barrier()
		p.RecordPhase("treebuild", p.Now()-t0)

		// Phase 3: centers of mass. Values are computed host-side once
		// (deterministically, by the last processor to arrive at the
		// barrier above via sync order: proc 0 does it here before any
		// force work); each processor is charged for its own cells.
		if id == 0 {
			in.computeAllCOM()
		}
		for ci := range in.t.nodes {
			c := &in.t.nodes[ci]
			if c.used && int(c.owner) == id {
				p.ReadRange(in.cellAddr(int32(ci)), 64)
				p.WriteRange(in.cellAddr(int32(ci)), 64)
				p.Compute(80)
			}
		}
		p.Barrier()

		// Phase 4: force calculation on own bodies.
		t0 = p.Now()
		fc := &forceCharger{in: in, p: p}
		for bi := lo; bi < hi; bi++ {
			var acc [3]float64
			in.forAllRoots(func(r int32) {
				in.t.force(r, in.bodies, int32(bi), &acc, fc)
			})
			in.bodies[bi].acc = acc
		}
		p.Barrier()
		p.RecordPhase("force", p.Now()-t0)

		if step == 0 && id == 0 {
			in.verifyAcc = make([][3]float64, in.n)
			in.posSnap = make([][3]float64, in.n)
			for i := range in.bodies {
				in.verifyAcc[i] = in.bodies[i].acc
				in.posSnap[i] = in.bodies[i].pos
			}
		}
		p.Barrier()

		// Phase 5: update positions.
		for bi := lo; bi < hi; bi++ {
			b := &in.bodies[bi]
			for d := 0; d < 3; d++ {
				b.vel[d] += b.acc[d] * dt
				b.pos[d] = clamp(b.pos[d]+b.vel[d]*dt, -rootHalf+0.01, rootHalf-0.01)
			}
			p.ReadRange(in.bAddr(int32(bi)), bodyBytes)
			p.WriteRange(in.bAddr(int32(bi)), 64)
		}
		p.Compute(uint64(12 * (hi - lo)))
		p.Barrier()
	}
}

// forAllRoots visits the root(s) of the current tree: one root normally, the
// per-slab subtree table for the spatial version.
func (in *instance) forAllRoots(f func(r int32)) {
	if in.ver == vSpatial {
		for _, r := range in.slabRoot {
			if r >= 0 {
				f(r)
			}
		}
		return
	}
	if in.t.root >= 0 {
		f(in.t.root)
	}
}

func (in *instance) computeAllCOM() {
	in.forAllRoots(func(r int32) {
		in.t.computeCOM(r, in.bodies)
	})
}

// buildPhase dispatches to the version's tree construction.
func (in *instance) buildPhase(p *sim.Proc, step, lo, hi int) {
	id := p.ID()
	rebuild := step == 0 || in.ver != vUpdate

	if rebuild && in.ver != vSpatial && in.ver != vPartree {
		// Shared-tree build (splash, pad, splash2, updatetree step 0).
		if id == 0 {
			in.resetTree()
			in.t.root = in.t.alloc([3]float64{}, rootHalf, 0, false)
			in.assignAddr(in.t.root, 0)
		}
		p.Barrier()
		rec := &recorder{in: in}
		for bi := lo; bi < hi; bi++ {
			p.ReadRange(in.bAddr(int32(bi)), 32)
			rec.reset()
			in.t.insert(in.t.root, in.bodies, int32(bi), id, rec)
			rec.charge(p, true)
		}
		return
	}

	switch in.ver {
	case vUpdate:
		// Incremental: move only bodies that left their leaf.
		rec := &recorder{in: in}
		for bi := lo; bi < hi; bi++ {
			b := &in.bodies[bi]
			lf := b.leaf
			p.ReadRange(in.cellAddr(lf), 64)
			p.Compute(20)
			if contains(&in.t.nodes[lf], b.pos) {
				continue
			}
			// Remove under the leaf's lock, reinsert from the root.
			in.t.remove(lf, int32(bi))
			p.Lock(lockOf(lf))
			p.WriteRange(in.cellAddr(lf), 64)
			p.Unlock(lockOf(lf))
			p.ReadRange(in.bAddr(int32(bi)), 32)
			rec.reset()
			in.t.insert(in.t.root, in.bodies, int32(bi), id, rec)
			rec.charge(p, true)
		}

	case vPartree:
		if id == 0 {
			in.resetTree()
		}
		p.Barrier()
		// Lock-free local tree over own bodies (full bounds so the
		// octant decomposition lines up for merging).
		rec := &recorder{in: in}
		root := in.t.alloc([3]float64{}, rootHalf, id, false)
		in.assignAddr(root, id)
		p.WriteRange(in.cellAddr(root), cellBytes)
		in.locRoot[id] = root
		for bi := lo; bi < hi; bi++ {
			p.ReadRange(in.bAddr(int32(bi)), 32)
			rec.reset()
			in.t.insert(root, in.bodies, int32(bi), id, rec)
			rec.charge(p, false)
		}
		// Merge into the global tree. The first processor to merge
		// just redirects the root pointer; later processors find more
		// of the global tree already present and do successively more
		// per-cell-locked work (the paper's merge imbalance).
		p.Lock(1999)
		if in.t.root < 0 {
			in.t.root = root
			p.Write(in.cellAddr(root))
		} else {
			in.merge(p, in.t.root, root, id)
		}
		p.Unlock(1999)

	case vSpatial:
		if id == 0 {
			in.resetTree()
			for q := range in.slabRoot {
				in.slabRoot[q] = -1
			}
		}
		p.Barrier()
		// Gather the bodies of this processor's equal subspace (slab
		// of x) from the shared body array — they may be owned by
		// anyone for the force phase.
		slabW := 2 * rootHalf / float64(in.np)
		x0 := -rootHalf + float64(id)*slabW
		x1 := x0 + slabW
		ctr := [3]float64{x0 + slabW/2, 0, 0}
		root := in.t.alloc(ctr, rootHalf, id, false)
		// A slab is a box, not a cube; use the full half-height so
		// containment works, opening tests use the cube half.
		in.assignAddr(root, id)
		p.WriteRange(in.cellAddr(root), cellBytes)
		in.slabRoot[id] = root
		rec := &recorder{in: in}
		for bi := 0; bi < in.n; bi++ {
			p.ReadRange(in.bAddr(int32(bi)), 16)
			p.Compute(4)
			x := in.bodies[bi].pos[0]
			if x < x0 || x >= x1 {
				continue
			}
			rec.reset()
			in.t.insert(root, in.bodies, int32(bi), id, rec)
			rec.charge(p, false)
		}
		// Merge: publish the subtree root — one locked write.
		p.Lock(1998)
		p.Write(in.bboxAdr)
		p.Unlock(1998)
	}
}

func (in *instance) resetTree() {
	in.t.reset()
	in.nodeAddr = in.nodeAddr[:0]
	for q := range in.allocCnt {
		in.allocCnt[q] = 0
	}
}

// merge folds local subtree src into the global tree at dst (both internal
// nodes over the same bounds), charging locked insertions as it goes. The
// whole merge runs under the global merge lock, so host-side mutation is
// already serialized; costs are charged as the walk proceeds.
func (in *instance) merge(p *sim.Proc, dst, src int32, id int) {
	rec := &recorder{in: in}
	s := in.t.nodes[src]
	if s.leafN {
		for _, bi := range s.bodies {
			rec.reset()
			in.t.insert(dst, in.bodies, bi, id, rec)
			rec.charge(p, false)
		}
		return
	}
	for o := 0; o < 8; o++ {
		sc := s.child[o]
		if sc < 0 {
			continue
		}
		p.ReadRange(in.cellAddr(dst), 64)
		if in.t.nodes[dst].child[o] < 0 {
			// Link the whole local subtree in one locked write.
			in.t.nodes[dst].child[o] = sc
			p.WriteRange(in.cellAddr(dst), 64)
			continue
		}
		dc := in.t.nodes[dst].child[o]
		if in.t.nodes[dc].leafN {
			// Collision with an existing leaf: swap the link, then
			// reinsert the displaced bodies into the local subtree.
			old := append([]int32(nil), in.t.nodes[dc].bodies...)
			in.t.nodes[dst].child[o] = sc
			p.WriteRange(in.cellAddr(dst), 64)
			for _, bi := range old {
				rec.reset()
				in.t.insert(sc, in.bodies, bi, id, rec)
				rec.charge(p, false)
			}
			continue
		}
		in.merge(p, dc, sc, id)
	}
}

// Verify implements core.Instance: the Barnes-Hut accelerations of the first
// step must agree with the direct O(n^2) sum to within the accuracy of the
// theta criterion, and the tree must hold every body exactly once.
func (in *instance) Verify() error {
	if in.verifyAcc == nil {
		return fmt.Errorf("barnes: no accelerations recorded")
	}
	// Compare the step-0 Barnes-Hut accelerations against the direct
	// O(n^2) sum over the positions snapshotted at the same point. The
	// tree approximation with theta=0.7 should agree within a few
	// percent on average; a sampled subset keeps verification fast.
	ref := make([]body, in.n)
	for i := range ref {
		ref[i].pos = in.posSnap[i]
		ref[i].mass = in.bodies[i].mass
	}
	stride := in.n / 512
	if stride < 1 {
		stride = 1
	}
	var sumRel float64
	var checked, outliers int
	for i := 0; i < in.n; i += stride {
		d := directForce(ref, i)
		a := in.verifyAcc[i]
		var dn, en float64
		for k := 0; k < 3; k++ {
			dn += d[k] * d[k]
			en += (d[k] - a[k]) * (d[k] - a[k])
		}
		dn = math.Sqrt(dn)
		rel := math.Sqrt(en) / (dn + 1e-9)
		sumRel += rel
		checked++
		if rel > 0.25 {
			outliers++
		}
	}
	if mean := sumRel / float64(checked); mean > 0.06 {
		return fmt.Errorf("barnes: mean force error %.3f vs direct sum, want < 0.06", mean)
	}
	if float64(outliers) > 0.03*float64(checked) {
		return fmt.Errorf("barnes: %d/%d force outliers (>25%% error)", outliers, checked)
	}
	count := 0
	seen := make(map[int32]bool)
	in.forAllRoots(func(r int32) {
		var walk func(idx int32)
		walk = func(idx int32) {
			c := &in.t.nodes[idx]
			if c.leafN {
				for _, bi := range c.bodies {
					if seen[bi] {
						count = -1 << 30 // duplicate
					}
					seen[bi] = true
					count++
				}
				return
			}
			for _, ch := range c.child {
				if ch >= 0 {
					walk(ch)
				}
			}
		}
		walk(r)
	})
	if count != in.n {
		return fmt.Errorf("barnes: tree holds %d bodies, want %d", count, in.n)
	}
	var mass float64
	in.forAllRoots(func(r int32) { mass += in.t.nodes[r].mass })
	if math.Abs(mass-1.0) > 1e-9 {
		return fmt.Errorf("barnes: root mass %g, want 1", mass)
	}
	return nil
}
