package volrend

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
)

func runVolrend(t *testing.T, version, plat string, np int, scale float64) *stats.Run {
	t.Helper()
	as := mem.NewAddressSpace(platform.PageSize, np)
	a, err := core.Lookup("volrend")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := a.Build(version, scale, as, np)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platform.Make(plat, as, np)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.New(pl, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager})
	run := k.Run("volrend/"+version+"@"+plat, inst.Body)
	if err := inst.Verify(); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	return run
}

func TestVolrendCorrectAllVersions(t *testing.T) {
	for _, v := range []string{"orig", "pad", "ds4d", "balanced", "nosteal"} {
		t.Run(v, func(t *testing.T) { runVolrend(t, v, "svm", 4, 0.5) })
	}
}

func TestVolrendAcrossPlatforms(t *testing.T) {
	for _, pl := range platform.Names {
		t.Run(pl, func(t *testing.T) { runVolrend(t, "balanced", pl, 4, 0.5) })
	}
}

func TestVolrendUniprocessor(t *testing.T) {
	runVolrend(t, "orig", "svm", 1, 0.5)
}

func TestVolrendBlockedPartitionSteals(t *testing.T) {
	// The blocked partition is imbalanced (corner blocks are empty space)
	// so the original version must steal; the balanced round-robin
	// assignment must steal much less.
	orig := runVolrend(t, "orig", "svm", 16, 1)
	bal := runVolrend(t, "balanced", "svm", 16, 1)
	so, sb := orig.AggregateCounters().TasksStolen, bal.AggregateCounters().TasksStolen
	if so == 0 {
		t.Error("blocked partition stole no tasks; expected imbalance-driven stealing")
	}
	if sb*2 >= so {
		t.Errorf("balanced stealing (%d) not well below blocked stealing (%d)", sb, so)
	}
}

func TestVolrendBalancedBeatsOrigOnSVM(t *testing.T) {
	// Scale 2 is the paper's 256x256 image. At half that size the image is
	// only 16 pages, every page is falsely shared between the two
	// interleaved tile-rows it holds, and the balanced partition's diff
	// traffic can swamp its load-balance win — a degenerate regime the
	// paper never ran.
	orig := runVolrend(t, "orig", "svm", 16, 2)
	bal := runVolrend(t, "balanced", "svm", 16, 2)
	nos := runVolrend(t, "nosteal", "svm", 16, 2)
	if bal.EndTime >= orig.EndTime {
		t.Errorf("balanced (%d) should beat orig (%d) on SVM", bal.EndTime, orig.EndTime)
	}
	// Lock wait must collapse without stealing.
	if lw, lo := nos.TotalCycles(stats.LockWait), bal.TotalCycles(stats.LockWait); lw >= lo {
		t.Errorf("nosteal lock wait %d >= balanced lock wait %d", lw, lo)
	}
}

func TestVolrendNoStealRunsEverything(t *testing.T) {
	run := runVolrend(t, "nosteal", "svm", 8, 0.5)
	c := run.AggregateCounters()
	if c.TasksStolen != 0 {
		t.Errorf("nosteal stole %d tasks", c.TasksStolen)
	}
	nt := 64 / 4 // image 64 at scale 0.5, tile 4
	if want := uint64(nt * nt * 4); c.TasksRun != want { // 4 frames
		t.Errorf("tasks run = %d, want %d", c.TasksRun, want)
	}
}
