package volrend

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
)

// Fingerprint implements core.Fingerprinter: the rendered image. Each pixel
// is written by exactly one task and ray casting is pure integer/float math
// over the deterministic volume, so the image is identical no matter which
// processor ran (or stole) which tile.
func (in *instance) Fingerprint() uint64 {
	h := apputil.NewHash()
	for _, px := range in.img {
		h.Uint32(px)
	}
	return h.Sum()
}

var _ core.Fingerprinter = (*instance)(nil)
