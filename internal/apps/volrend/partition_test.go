package volrend

import (
	"testing"

	"repro/internal/mem"
)

// Regression: the blocked tile partition truncated with nt/pr x nt/pc sized
// blocks, so processor counts whose grid does not divide the tile grid left
// the remainder tile rows/columns unassigned — those pixels were never
// rendered and Verify failed. Every tile must be assigned exactly once for
// any processor count.
func TestBlockedPartitionCoversAllTiles(t *testing.T) {
	for _, np := range []int{1, 2, 3, 5, 7, 8, 16} {
		as := mem.NewAddressSpace(4096, np)
		built, err := app{}.Build("orig", 0.25, as, np)
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		in := built.(*instance)
		seen := make([]int, len(in.tiles))
		for id := range in.assign {
			for _, ti := range in.assign[id] {
				seen[ti]++
			}
		}
		for ti, n := range seen {
			if n != 1 {
				t.Fatalf("np=%d: tile %d assigned %d times, want exactly once", np, ti, n)
			}
		}
	}
}
