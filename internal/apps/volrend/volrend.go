// Package volrend reimplements the memory behaviour of SPLASH-2 Volrend
// (paper §2.2.2, §4.2.1): a volume ray-caster with per-processor task queues
// and task stealing. The image plane is divided into per-processor blocks of
// small tiles; a tile is the unit of work and of stealing. Ray cost varies
// strongly across the image (empty-space skipping outside the head, early
// ray termination inside it), so the blocked initial partition is imbalanced
// and the original code relies on stealing — which is nearly free on
// hardware cache coherence and very expensive on SVM.
//
// Versions:
//
//   - orig:     blocked partition, contiguous per-processor blocks of tiles,
//     2-d image (pages span processors' partitions), stealing on;
//   - pad:      every task-queue entry padded and aligned to a page (P/A;
//     cuts queue false sharing but adds fragmentation — not beneficial);
//   - ds4d:     image restructured as a 4-d array, partitions contiguous,
//     page-aligned and homed (DS class; the paper finds it HURTS — 7.09
//     to 6.27 — because pixel addressing gets costlier and interacts with
//     stealing);
//   - balanced: the Alg-class fix — many small block pieces assigned
//     round-robin for initial balance, stealing still on (11.42);
//   - nosteal:  balanced assignment with stealing disabled (11.70) —
//     trades a little barrier imbalance for no lock serialization.
package volrend

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

const (
	tile     = 4 // pixels per tile side
	maxAlpha = 0.95
	// Per-sample compositing in Volrend does a trilinear interpolation,
	// gradient shading, classification and opacity update — roughly 30
	// scalar-code cycles per sample on a 1997 processor.
	voxelCost  = 30
	pixelSetup = 150 // ray setup, clipping, termination
	// frames is the number of frames rendered; the volume distribution
	// cost amortizes over the sequence, as in the SPLASH-2 runs.
	frames = 4
)

type app struct{}

func init() { core.Register(app{}) }

// Name implements core.App.
func (app) Name() string { return "volrend" }

// Versions implements core.App.
func (app) Versions() []core.Version {
	return []core.Version{
		{Name: "orig", Class: core.Orig, Desc: "blocked tile partition, 2-d image, stealing"},
		{Name: "pad", Class: core.PA, Desc: "task-queue entries padded to pages"},
		{Name: "ds4d", Class: core.DS, Desc: "4-d image, partitions contiguous and aligned (hurts)"},
		{Name: "balanced", Class: core.Alg, Desc: "small round-robin task pieces, stealing"},
		{Name: "nosteal", Class: core.Alg, Desc: "small round-robin task pieces, no stealing"},
	}
}

type instance struct {
	n, nz, np int
	steal     bool
	fourD     bool

	vol     []uint8
	volAdr  uint64
	img     []uint32
	imgLay  mem.Layout2D
	ref     []uint32
	queues  []*apputil.TaskQueue
	assign  [][]int  // per-processor initial task lists (per frame)
	tiles   [][2]int // task id -> tile origin (x, y)
	extraPx uint64   // extra per-pixel addressing cost (ds4d)
}

// Build implements core.App.
func (app) Build(version string, scale float64, as *mem.AddressSpace, np int) (core.Instance, error) {
	in := &instance{np: np, steal: true}
	n := int(128 * scale)
	n = (n / (tile * 4)) * tile * 4
	if n < tile*8 {
		n = tile * 8
	}
	in.n = n
	in.nz = n / 2

	// The run-length-encoded volume, stored ray-major so an axis-aligned
	// ray reads contiguously; read-only data, distributed round-robin.
	in.vol = make([]uint8, n*n*in.nz)
	in.volAdr = as.AllocPages(len(in.vol))
	as.DistributeRoundRobin(in.volAdr, len(in.vol))
	fillHead(in.vol, n, in.nz)

	padQueues := uint64(0)
	balanced := false
	switch version {
	case "orig":
	case "pad":
		padQueues = as.PageSize()
	case "ds4d":
		in.fourD = true
		in.extraPx = 100 // 4-d pixel addressing: two integer divides+mods per access
	case "balanced":
		balanced = true
	case "nosteal":
		balanced = true
		in.steal = false
	default:
		return nil, fmt.Errorf("volrend: unknown version %q", version)
	}

	// Image plane.
	in.img = make([]uint32, n*n)
	pr, pc := procGrid(np)
	if in.fourD {
		m := mem.NewArray4D(as, n, n, n/pr, n/pc, 4, as.PageSize())
		for bi := 0; bi < pr; bi++ {
			for bj := 0; bj < pc; bj++ {
				as.SetHome(m.BlockAddr(bi, bj), int(m.BlockStride()), bi*pc+bj)
			}
		}
		in.imgLay = m
	} else {
		m := mem.NewArray2D(as, n, n, 4)
		as.DistributeRoundRobin(m.Base, m.Size())
		in.imgLay = m
	}

	// Tiles and task queues.
	nt := n / tile
	in.tiles = make([][2]int, 0, nt*nt)
	for ty := 0; ty < nt; ty++ {
		for tx := 0; tx < nt; tx++ {
			in.tiles = append(in.tiles, [2]int{tx * tile, ty * tile})
		}
	}
	in.queues = make([]*apputil.TaskQueue, np)
	for q := 0; q < np; q++ {
		in.queues[q] = apputil.NewTaskQueue(as, q, apputil.QueueOptions{
			Capacity: len(in.tiles), EntryBytes: 16, PadEntriesTo: padQueues, LockID: 100 + q,
		})
	}
	assign := make([][]int, np)
	if balanced {
		// Many small pieces dealt round-robin across processors: one
		// tile-row (a few tiles) per piece. Interleaving samples the
		// whole image so every processor gets a fair mix of cheap and
		// expensive rays, and a piece's pixels stay row-contiguous.
		for ty := 0; ty < nt; ty++ {
			owner := ty % np
			for tx := 0; tx < nt; tx++ {
				assign[owner] = append(assign[owner], ty*nt+tx)
			}
		}
	} else {
		// Contiguous blocks of tiles, one per processor. Block boundaries
		// are ceil-split (pi*nt/pr) so remainder tile rows/columns are
		// still assigned when the processor grid does not divide the tile
		// grid; with divisible dimensions this is the same blocked
		// partition as before.
		for id := 0; id < np; id++ {
			pi, pj := id/pc, id%pc
			for ty := pi * nt / pr; ty < (pi+1)*nt/pr; ty++ {
				for tx := pj * nt / pc; tx < (pj+1)*nt/pc; tx++ {
					assign[id] = append(assign[id], ty*nt+tx)
				}
			}
		}
	}
	for q := 0; q < np; q++ {
		in.queues[q].Reset(assign[q])
	}
	in.assign = assign

	in.ref = make([]uint32, n*n)
	for py := 0; py < n; py++ {
		for px := 0; px < n; px++ {
			in.ref[py*n+px], _ = castRay(in.vol, n, in.nz, px, py)
		}
	}
	return in, nil
}

func procGrid(np int) (pr, pc int) {
	pr = 1
	for pr*pr < np {
		pr++
	}
	for np%pr != 0 {
		pr--
	}
	return pr, np / pr
}

// fillHead builds the CT-head stand-in: concentric density shells inside a
// bounding sphere, empty outside.
func fillHead(vol []uint8, n, nz int) {
	cx, cy, cz := float64(n)/2, float64(n)/2, float64(nz)/2
	r := 0.45 * float64(n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			for z := 0; z < nz; z++ {
				dx, dy, dz := float64(x)-cx, float64(y)-cy, (float64(z)-cz)*2
				d2 := dx*dx + dy*dy + dz*dz
				if d2 > r*r {
					continue
				}
				// Shells: alternating dense / sparse bands.
				band := int(d2/(r*r)*8) % 3
				switch band {
				case 0:
					vol[(y*n+x)*nz+z] = 200
				case 1:
					vol[(y*n+x)*nz+z] = 40
				default:
					vol[(y*n+x)*nz+z] = 90
				}
			}
		}
	}
}

// castRay composites the ray for pixel (px, py); it returns the pixel value
// and the number of voxels marched (0 when empty-space skipping rejects the
// whole ray).
func castRay(vol []uint8, n, nz, px, py int) (uint32, int) {
	cx, cy := float64(n)/2, float64(n)/2
	dx, dy := float64(px)-cx, float64(py)-cy
	r := 0.45 * float64(n)
	if dx*dx+dy*dy > r*r {
		return 0, 0 // octree: fully empty column
	}
	var acc, alpha float64
	steps := 0
	base := (py*n + px) * nz
	for z := 0; z < nz; z++ {
		steps++
		d := float64(vol[base+z]) / 255
		a := d * 0.05
		acc += (1 - alpha) * a * d * 255
		alpha += (1 - alpha) * a
		if alpha > maxAlpha {
			break
		}
	}
	return uint32(acc), steps
}

// renderTile runs one task: casts the rays of a tile, issuing the simulated
// volume reads and image writes.
func (in *instance) renderTile(p *sim.Proc, t int) {
	nt := in.n / tile
	x0, y0 := (t%nt)*tile, (t/nt)*tile
	for py := y0; py < y0+tile; py++ {
		for px := x0; px < x0+tile; px++ {
			v, steps := castRay(in.vol, in.n, in.nz, px, py)
			in.img[py*in.n+px] = v
			if steps > 0 {
				p.ReadRange(in.volAdr+uint64((py*in.n+px)*in.nz), steps)
				p.Compute(uint64(steps * voxelCost))
			}
			p.Compute(pixelSetup + in.extraPx)
		}
		// The tile row's pixels are contiguous in the image layout.
		p.WriteRange(in.imgLay.Addr(py, x0), tile*4)
	}
}

// Body implements core.Instance: a short frame sequence, each frame rendered
// from per-processor task queues with optional stealing.
func (in *instance) Body(p *sim.Proc) {
	id := p.ID()
	p.Barrier()
	for f := 0; f < frames; f++ {
		if f > 0 {
			in.queues[id].Refill(p, in.assign[id])
			p.Barrier()
		}
		// Drain own queue.
		for {
			t, ok := in.queues[id].Dequeue(p)
			if !ok {
				break
			}
			in.renderTile(p, t)
			p.CountTask(false)
		}
		// Steal from victims round-robin. Every attempt pays the real
		// cost: the victim's queue must be locked just to look, and
		// the lock's critical section is dilated by remote faults on
		// the queue pages — the paper's key observation about
		// stealing on SVM.
		if in.steal {
			for {
				got := false
				for off := 1; off < in.np; off++ {
					victim := (id + off) % in.np
					if !in.queues[victim].Peek(p) {
						continue // unlocked emptiness test
					}
					t, ok := in.queues[victim].Dequeue(p)
					if !ok {
						continue
					}
					in.renderTile(p, t)
					p.CountTask(true)
					got = true
				}
				if !got {
					break
				}
			}
		}
		p.Barrier()
	}
}

// Verify implements core.Instance.
func (in *instance) Verify() error {
	for i := range in.img {
		if in.img[i] != in.ref[i] {
			return fmt.Errorf("volrend: pixel %d = %d, want %d", i, in.img[i], in.ref[i])
		}
	}
	return nil
}
