package shearwarp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
)

func runSW(t *testing.T, version, plat string, np int, scale float64) *stats.Run {
	t.Helper()
	as := mem.NewAddressSpace(platform.PageSize, np)
	a, err := core.Lookup("shearwarp")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := a.Build(version, scale, as, np)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platform.Make(plat, as, np)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.New(pl, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager})
	run := k.Run("shearwarp/"+version+"@"+plat, inst.Body)
	if err := inst.Verify(); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	return run
}

func TestShearWarpCorrectAllVersions(t *testing.T) {
	for _, v := range []string{"orig", "pad", "opt"} {
		t.Run(v, func(t *testing.T) { runSW(t, v, "svm", 4, 0.5) })
	}
}

func TestShearWarpAcrossPlatforms(t *testing.T) {
	for _, pl := range []string{"svm", "smp", "dsm", "svmsmp"} {
		t.Run(pl, func(t *testing.T) { runSW(t, "opt", pl, 4, 0.5) })
	}
}

func TestShearWarpUniprocessor(t *testing.T) {
	runSW(t, "orig", "svm", 1, 0.5)
}

func TestShearWarpOptEliminatesInterPhaseBarrier(t *testing.T) {
	orig := runSW(t, "orig", "svm", 8, 0.5)
	opt := runSW(t, "opt", "svm", 8, 0.5)
	co := orig.AggregateCounters().Barriers
	cp := opt.AggregateCounters().Barriers
	if cp >= co {
		t.Errorf("opt barrier count %d >= orig %d; the inter-phase barrier should be gone", cp, co)
	}
}

func TestShearWarpOptCutsRedistribution(t *testing.T) {
	// In the optimized version a processor warps from intermediate rows
	// it composited itself, so inter-processor page traffic must drop.
	orig := runSW(t, "orig", "svm", 16, 1)
	opt := runSW(t, "opt", "svm", 16, 1)
	fo := orig.AggregateCounters().PageFetches
	fp := opt.AggregateCounters().PageFetches
	if fp >= fo {
		t.Errorf("opt fetches %d >= orig fetches %d", fp, fo)
	}
	if opt.EndTime >= orig.EndTime {
		t.Errorf("opt time %d >= orig time %d on SVM", opt.EndTime, orig.EndTime)
	}
}

func TestShearWarpProfiledPartitionBalances(t *testing.T) {
	// The profiled contiguous blocks equalize compositing cost even
	// though the head's scanline costs vary strongly: compute times must
	// be within a reasonable band across processors.
	run := runSW(t, "opt", "svm", 8, 1)
	var min, max uint64 = ^uint64(0), 0
	for i := range run.Procs {
		c := run.Procs[i].Cycles[stats.Compute]
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if float64(max) > 1.6*float64(min) {
		t.Errorf("profiled partition imbalanced: compute %d..%d", min, max)
	}
}

func TestShearWarpRLECostsVary(t *testing.T) {
	// The per-scanline RLE cost profile must be non-uniform (center
	// scanlines cross the head), or the load-balancing story is vacuous.
	as := mem.NewAddressSpace(platform.PageSize, 4)
	a, _ := core.Lookup("shearwarp")
	instI, err := a.Build("opt", 0.5, as, 4)
	if err != nil {
		t.Fatal(err)
	}
	in := instI.(*instance)
	mid := in.cost[in.n/2]
	edge := in.cost[1]
	if mid <= edge*2 {
		t.Errorf("scanline costs too uniform: center %d vs edge %d", mid, edge)
	}
}
