// Package shearwarp reimplements the memory behaviour of the parallel
// shear-warp volume renderer (paper §2.2.2, §4.2.2; Lacroute's factorization
// as parallelized in the companion PPoPP'97 paper). Rendering has two
// phases: the run-length-encoded volume is composited slice by slice into an
// intermediate image in scanline order, and the intermediate image is then
// warped into the final image.
//
// Versions:
//
//   - orig: the intermediate image is partitioned into small interleaved
//     chunks of scanlines (for load balance); the warp partitions the FINAL
//     image into blocks of tiles — a different partition, so most
//     intermediate data a processor reads in the warp was written by other
//     processors (the redistribution the paper blames), with an expensive
//     barrier between the phases;
//   - pad:  intermediate-image scanlines padded and aligned to pages (the
//     paper measured about +10%);
//   - opt:  the restructured algorithm — the intermediate image is split
//     into p CONTIGUOUS blocks of scanlines sized by dynamic profiling of
//     per-scanline cost, the SAME partition is used for both phases (each
//     processor warps from intermediate rows it itself wrote, boundary
//     rows designated to one neighbour), and the inter-phase barrier is
//     eliminated (3.47 -> 9.21 in the paper).
package shearwarp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

const (
	runCost   = 30 // cycles per RLE run processed
	voxCost   = 18 // cycles per non-transparent voxel composited
	warpCost  = 14 // cycles per final pixel resampled
	slabs     = 4  // write passes over an intermediate scanline (slice groups)
	chunkRows = 2  // scanlines per interleaved chunk in the original version
)

type app struct{}

func init() { core.Register(app{}) }

// Name implements core.App.
func (app) Name() string { return "shearwarp" }

// Versions implements core.App.
func (app) Versions() []core.Version {
	return []core.Version{
		{Name: "orig", Class: core.Orig, Desc: "interleaved scanline chunks; blocked warp; inter-phase barrier"},
		{Name: "pad", Class: core.PA, Desc: "intermediate scanlines padded to pages"},
		{Name: "opt", Class: core.Alg, Desc: "profiled contiguous blocks, same partition in both phases, no barrier"},
	}
}

type instance struct {
	n, nz, np int
	opt       bool

	vol    []uint8
	rleAdr uint64
	rleOff []int // per-scanline offset into the RLE data
	rleLen []int // per-scanline RLE byte length
	runs   []int // per-scanline run count
	cost   []uint64

	inter    []float64
	interLay *mem.Array2D
	final    []float64
	finalLay *mem.Array2D
	refI     []float64
	refF     []float64

	// Partitions.
	rowOwner  []int // intermediate scanline -> owner (composite phase)
	blockLo   []int // opt: contiguous block bounds per processor
	blockHi   []int
}

// Build implements core.App.
func (app) Build(version string, scale float64, as *mem.AddressSpace, np int) (core.Instance, error) {
	in := &instance{np: np}
	n := int(128 * scale)
	n = (n / (4 * np)) * 4 * np
	if n < 4*np {
		n = 4 * np
	}
	in.n = n
	in.nz = n / 2

	// Head volume, ray-major like Volrend's, then run-length encoded per
	// intermediate scanline.
	in.vol = make([]uint8, n*n*in.nz)
	fillHead(in.vol, n, in.nz)
	in.rleOff = make([]int, n+1)
	in.rleLen = make([]int, n)
	in.runs = make([]int, n)
	in.cost = make([]uint64, n)
	total := 0
	for y := 0; y < n; y++ {
		nvox, runs := rleScan(in.vol, n, in.nz, y)
		in.rleOff[y] = total
		in.rleLen[y] = nvox + 2*runs
		in.runs[y] = runs
		in.cost[y] = uint64(runs*runCost) + uint64(nvox*voxCost)
		total += in.rleLen[y]
	}
	in.rleOff[n] = total
	in.rleAdr = as.AllocPages(total)
	as.DistributeRoundRobin(in.rleAdr, total)

	pad := uint64(0)
	switch version {
	case "orig":
	case "pad":
		pad = as.PageSize()
	case "opt":
		in.opt = true
	default:
		return nil, fmt.Errorf("shearwarp: unknown version %q", version)
	}

	if pad > 0 {
		in.interLay = mem.NewArray2DPadded(as, n, n, 4, pad)
	} else {
		in.interLay = mem.NewArray2D(as, n, n, 4)
	}
	in.finalLay = mem.NewArray2D(as, n, n, 4)
	in.inter = make([]float64, n*n)
	in.final = make([]float64, n*n)

	// Composite-phase partition of intermediate scanlines.
	in.rowOwner = make([]int, n)
	if in.opt {
		// Dynamic profiling: split scanlines into contiguous blocks of
		// near-equal measured cost.
		in.blockLo = make([]int, np)
		in.blockHi = make([]int, np)
		var sum uint64
		for _, c := range in.cost {
			sum += c
		}
		per := sum / uint64(np)
		q, acc := 0, uint64(0)
		in.blockLo[0] = 0
		for y := 0; y < n; y++ {
			if q < np-1 && acc >= per*(uint64(q)+1) {
				in.blockHi[q] = y
				q++
				in.blockLo[q] = y
			}
			in.rowOwner[y] = q
			acc += in.cost[y]
		}
		in.blockHi[np-1] = n
		for q := 0; q < np; q++ {
			lo, hi := in.blockLo[q], in.blockHi[q]
			if hi > lo {
				as.SetHome(in.interLay.RowAddr(lo), (hi-lo)*int(in.interLay.Pitch), q)
				as.SetHome(in.finalLay.RowAddr(lo), (hi-lo)*int(in.finalLay.Pitch), q)
			}
		}
	} else {
		// Interleaved chunks of scanlines.
		for y := 0; y < n; y++ {
			in.rowOwner[y] = (y / chunkRows) % np
		}
		as.DistributeRoundRobin(in.interLay.Base, in.interLay.Size())
		as.DistributeRoundRobin(in.finalLay.Base, in.finalLay.Size())
	}

	// Reference results.
	in.refI = make([]float64, n*n)
	for y := 0; y < n; y++ {
		compositeRow(in.vol, n, in.nz, y, in.refI)
	}
	in.refF = make([]float64, n*n)
	for y := 0; y < n; y++ {
		warpRow(in.refI, n, y, in.refF)
	}
	return in, nil
}

// fillHead builds the same CT-head stand-in as Volrend.
func fillHead(vol []uint8, n, nz int) {
	cx, cy, cz := float64(n)/2, float64(n)/2, float64(nz)/2
	r := 0.45 * float64(n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			for z := 0; z < nz; z++ {
				dx, dy, dz := float64(x)-cx, float64(y)-cy, (float64(z)-cz)*2
				d2 := dx*dx + dy*dy + dz*dz
				if d2 > r*r {
					continue
				}
				switch int(d2/(r*r)*8) % 3 {
				case 0:
					vol[(y*n+x)*nz+z] = 200
				case 1:
					vol[(y*n+x)*nz+z] = 40
				default:
					vol[(y*n+x)*nz+z] = 90
				}
			}
		}
	}
}

// rleScan counts the non-transparent voxels and runs of scanline y.
func rleScan(vol []uint8, n, nz, y int) (nvox, runs int) {
	inRun := false
	for x := 0; x < n; x++ {
		for z := 0; z < nz; z++ {
			if vol[(y*n+x)*nz+z] != 0 {
				nvox++
				if !inRun {
					runs++
					inRun = true
				}
			} else {
				inRun = false
			}
		}
	}
	return nvox, runs
}

// compositeRow computes intermediate scanline y (front-to-back compositing
// down z for each column).
func compositeRow(vol []uint8, n, nz, y int, out []float64) {
	for x := 0; x < n; x++ {
		var acc, alpha float64
		base := (y*n + x) * nz
		for z := 0; z < nz; z++ {
			d := float64(vol[base+z]) / 255
			if d == 0 {
				continue // RLE skips transparent voxels
			}
			a := d * 0.05
			acc += (1 - alpha) * a * d * 255
			alpha += (1 - alpha) * a
			if alpha > 0.95 {
				break
			}
		}
		out[y*n+x] = acc
	}
}

// warpRow resamples intermediate scanline y into final scanline y with a
// per-row horizontal shear (the 2-d warp of the factorization).
func warpRow(inter []float64, n, y int, out []float64) {
	shift := 0.25 * float64(y) / float64(n) * 8
	fx := shift - math.Floor(shift)
	s := int(shift)
	for x := 0; x < n; x++ {
		x0 := x + s
		v := 0.0
		if x0 >= 0 && x0 < n {
			v += (1 - fx) * inter[y*n+x0]
		}
		if x0+1 >= 0 && x0+1 < n {
			v += fx * inter[y*n+x0+1]
		}
		out[y*n+x] = v
	}
}

// compositeScanline performs phase-1 work for scanline y with simulated
// accesses: read the RLE data, write the intermediate row once per slab.
func (in *instance) compositeScanline(p *sim.Proc, y int) {
	compositeRow(in.vol, in.n, in.nz, y, in.inter)
	p.ReadRange(in.rleAdr+uint64(in.rleOff[y]), in.rleLen[y])
	for s := 0; s < slabs; s++ {
		p.WriteRange(in.interLay.RowAddr(y), in.n*4)
	}
	p.Compute(in.cost[y])
}

// warpScanline performs phase-2 work for final scanline y: read the
// intermediate row and write the final row.
func (in *instance) warpScanline(p *sim.Proc, y int) {
	warpRow(in.inter, in.n, y, in.final)
	p.ReadRange(in.interLay.RowAddr(y), in.n*4)
	p.WriteRange(in.finalLay.RowAddr(y), in.n*4)
	p.Compute(uint64(in.n * warpCost))
}

// warpBlockRow warps the [x0, x1) segment of final scanline y (the blocked
// warp partition of the original version). The real computation for the row
// is done once, by the block owner covering column 0.
func (in *instance) warpBlockRow(p *sim.Proc, y, x0, x1 int) {
	if x0 == 0 {
		warpRow(in.inter, in.n, y, in.final)
	}
	p.ReadRange(in.interLay.Addr(y, x0), (x1-x0)*4)
	p.WriteRange(in.finalLay.Addr(y, x0), (x1-x0)*4)
	p.Compute(uint64((x1 - x0) * warpCost))
}

// procGrid factors np into a near-square grid.
func procGrid(np int) (pr, pc int) {
	pr = 1
	for pr*pr < np {
		pr++
	}
	for np%pr != 0 {
		pr--
	}
	return pr, np / pr
}

// Body implements core.Instance.
func (in *instance) Body(p *sim.Proc) {
	id := p.ID()
	n := in.n
	p.Barrier()
	if in.opt {
		// Phase 1+2 fused over the processor's contiguous block: no
		// inter-phase barrier; every intermediate row a processor
		// warps from is one it composited itself (boundary rows are
		// designated to one neighbour via host rows).
		for y := in.blockLo[id]; y < in.blockHi[id]; y++ {
			in.compositeScanline(p, y)
		}
		for y := in.blockLo[id]; y < in.blockHi[id]; y++ {
			in.warpScanline(p, y)
		}
	} else {
		for y := 0; y < n; y++ {
			if in.rowOwner[y] == id {
				in.compositeScanline(p, y)
			}
		}
		p.Barrier() // redistribution point
		// Warp partition: 2-d blocks of final-image tiles — a different
		// partition from the compositing phase, so the rows a processor
		// resamples were mostly composited by OTHER processors, and each
		// intermediate page is read by several warp processors (the
		// redistribution + fragmentation the paper blames).
		pr, pc := procGrid(in.np)
		bh, bw := n/pr, n/pc
		py, px := id/pc, id%pc
		for y := py * bh; y < (py+1)*bh; y++ {
			in.warpBlockRow(p, y, px*bw, (px+1)*bw)
		}
	}
	p.Barrier()
}

// Verify implements core.Instance.
func (in *instance) Verify() error {
	for i := range in.final {
		if math.Abs(in.final[i]-in.refF[i]) > 1e-12 {
			return fmt.Errorf("shearwarp: final pixel %d = %g, want %g", i, in.final[i], in.refF[i])
		}
	}
	for i := range in.inter {
		if math.Abs(in.inter[i]-in.refI[i]) > 1e-12 {
			return fmt.Errorf("shearwarp: intermediate pixel %d = %g, want %g", i, in.inter[i], in.refI[i])
		}
	}
	return nil
}
