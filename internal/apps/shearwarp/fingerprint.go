package shearwarp

import (
	"repro/internal/apps/apputil"
	"repro/internal/core"
)

// Fingerprint implements core.Fingerprinter: the warped final image and the
// intermediate (sheared) image, the two buffers Verify checks. Compositing
// walks each scanline front-to-back in a fixed order regardless of which
// processor owns it, so both images are bit-identical across platforms and
// processor counts.
func (in *instance) Fingerprint() uint64 {
	h := apputil.NewHash()
	h.Floats(in.final)
	h.Floats(in.inter)
	return h.Sum()
}

var _ core.Fingerprinter = (*instance)(nil)
