package protocol

import "fmt"

// BusParams are the cycle costs of a snooping-bus interconnect (the paper's
// SGI Challenge-class SMP at 150 MHz; see internal/smp for the machine
// description the defaults are calibrated to).
type BusParams struct {
	L2HitCost uint64
	BusArb    uint64 // bus arbitration
	BusXfer   uint64 // bus occupancy per line (1.2 GB/s)
	MemLat    uint64 // main memory access latency
	C2CLat    uint64 // cache-to-cache supply latency
	InvalPer  uint64 // invalidation cost on upgrades (see UpgradeAccounting)

	LockAcquire uint64
	LockRelease uint64
	BarrierHW   uint64
	BarrierLeaf uint64
}

// DefaultBusParams returns the Challenge-calibrated cost model.
func DefaultBusParams() BusParams {
	return BusParams{
		L2HitCost: 8,
		BusArb:    8,
		BusXfer:   16, // 128 B at 1.2 GB/s is ~107 ns
		MemLat:    55,
		C2CLat:    35,
		InvalPer:  8,

		LockAcquire: 90,
		LockRelease: 40,
		BarrierHW:   400,
		BarrierLeaf: 90,
	}
}

// DirParams are the cycle costs of a full-map directory interconnect (the
// paper's DASH-like CC-NUMA at 300 MHz; see internal/dsm).
type DirParams struct {
	L2HitCost   uint64 // L1 miss, L2 hit
	LocalMem    uint64 // L2 miss satisfied by local (home) memory
	RemoteClean uint64 // 2-hop miss: remote home, memory-clean line
	RemoteDirty uint64 // 3-hop miss: line dirty in a third node's cache
	UpgradeBase uint64 // write to a Shared line, local directory
	UpgradeHop  uint64 // extra when the directory is remote
	InvalPer    uint64 // per remote sharer invalidated
	DirOccupy   uint64 // home directory controller occupancy per transaction

	LockAcquire uint64 // uncontended hardware lock acquisition (remote line)
	LockRelease uint64
	BarrierHW   uint64 // hardware barrier fan-in/fan-out beyond max arrival
	BarrierLeaf uint64 // per-processor arrival cost
}

// DefaultDirParams returns the paper-calibrated DSM cost model.
func DefaultDirParams() DirParams {
	return DirParams{
		L2HitCost:   8,
		LocalMem:    60,
		RemoteClean: 150,
		RemoteDirty: 250,
		UpgradeBase: 80,
		UpgradeHop:  60,
		InvalPer:    20,
		DirOccupy:   30,

		LockAcquire: 200,
		LockRelease: 60,
		BarrierHW:   600,
		BarrierLeaf: 150,
	}
}

// HLRCParams are the cycle costs of the home-based lazy release consistency
// page engine (the paper's all-software SVM over Myrinet at 200 MHz; see
// internal/svm for the calibration rationale).
type HLRCParams struct {
	PageSize uint64

	// Local hierarchy.
	L2HitCost uint64 // L1 miss satisfied in L2
	MemCost   uint64 // L2 miss satisfied in local memory

	// Software protocol overheads.
	FaultOverhead uint64 // kernel trap + SIGSEGV handler entry on a page fault
	WriteTrap     uint64 // write-protection trap detecting first write to a page
	TwinCost      uint64 // copying a page-sized twin
	DiffCreate    uint64 // comparing a dirty page against its twin
	DiffApply     uint64 // applying a diff at the home
	NoticeCost    uint64 // logging/sending one write notice
	InvalCost     uint64 // invalidating one page at an acquire (incl. mprotect)

	// Messaging.
	MsgSend    uint64 // software send overhead (host side)
	MsgRecv    uint64 // software receive/dispatch overhead
	NetLatency uint64 // wire+switch latency
	PageXfer   uint64 // I/O-bus occupancy to move one page
	DiffXfer   uint64 // I/O-bus occupancy to move one diff

	// Home-side service.
	HomeService uint64 // page lookup + reply preparation at the home

	// Synchronization.
	LockMgrService uint64 // lock manager processing per request
	BarrierPerProc uint64 // manager processing per arrival (notice merge)
	BarrierBcast   uint64 // release broadcast cost
}

// DefaultHLRCParams returns the paper-calibrated SVM cost model.
func DefaultHLRCParams() HLRCParams {
	return HLRCParams{
		PageSize: 4096,

		L2HitCost: 10,
		MemCost:   60,

		FaultOverhead: 2000, // ~10 µs trap + handler entry
		WriteTrap:     2000,
		TwinCost:      1000, // 4 KB copy over the 400 MB/s memory bus
		DiffCreate:    1200,
		DiffApply:     800,
		NoticeCost:    50,
		InvalCost:     150,

		MsgSend:    1000, // ~5 µs software messaging each side
		MsgRecv:    1000,
		NetLatency: 200,  // ~1 µs wire
		PageXfer:   8192, // 4 KB over the 100 MB/s I/O bus
		DiffXfer:   1024,

		HomeService: 500,

		LockMgrService: 500,
		BarrierPerProc: 400,
		BarrierBcast:   1200,
	}
}

// PageShift returns log2(n), panicking unless n is a power of two. Page-
// grained engines use it to turn per-access page-number divisions into
// shifts.
func PageShift(n uint64) uint {
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("svm: page size %d is not a power of two", n))
	}
	for sh := uint(0); ; sh++ {
		if 1<<sh == n {
			return sh
		}
	}
}

// IntervalOverflowError reports that a domain's uint32 interval counter was
// about to wrap. Intervals advance at every lock release and barrier arrival
// whether or not anything was written, so a long enough run genuinely reaches
// the limit; wrapping would make interval 0 compare older than the 2^32-1
// intervals it follows and corrupt every vector-clock comparison, so the
// protocol panics instead and the kernel contains it as a ProcPanicError.
// Node names the coherence domain: an SVM node, or a cluster on the
// two-level platform.
type IntervalOverflowError struct {
	Node int
}

func (e *IntervalOverflowError) Error() string {
	return fmt.Sprintf("svm: interval counter of node %d would overflow uint32 (run too long for 32-bit vector clocks)", e.Node)
}
