package protocol

import (
	"fmt"
	"sort"

	"repro/internal/cache"
)

// LineEntry is the sharing state of one cache line within a coherence
// domain: a bitmask of caching members and the exclusive owner (-1 when
// the line is memory-clean/shared). It is the full-map bookkeeping a
// directory holds in hardware and a snooping bus reconstructs from snoop
// results on every transaction.
type LineEntry struct {
	Sharers uint64
	Owner   int8
}

// LineEngine is the line-grained coherence state machine of one domain: the
// member caches, the line-sharing table, and the StateKind policy deciding
// fill states. It performs the state transitions every interconnect needs —
// claim on write, fill on read, sharer invalidation sweeps, owner
// downgrades — while the interconnect (SnoopBus, Directory) prices them.
//
// Members are domain-relative: for the machine-wide smp/dsm engines the
// member index IS the processor id; for the per-cluster engines of the
// two-level hierarchy it is the processor's index within its cluster.
type LineEngine struct {
	Sts    StateKind
	NP     int // members of this coherence domain
	Caches []*cache.Hierarchy
	Lines  map[uint64]*LineEntry
	lineSz uint64
}

// NewLineEngine builds an engine of np member caches with the given
// hierarchy configuration, wiring L2 evictions back into the line table
// (an evicted line stops being a sharer; an evicted owner's dirty line
// conceptually writes back to memory).
func NewLineEngine(sts StateKind, cfg cache.Config, np int) *LineEngine {
	e := &LineEngine{Sts: sts, NP: np, lineSz: uint64(cfg.Line)}
	e.Caches = make([]*cache.Hierarchy, np)
	e.Lines = make(map[uint64]*LineEntry, 1<<16)
	for i := 0; i < np; i++ {
		h := cache.New(cfg)
		m := i
		h.OnL2Evict = func(la uint64, st cache.State) {
			if le, ok := e.Lines[la]; ok {
				le.Sharers &^= 1 << uint(m)
				if le.Owner == int8(m) {
					le.Owner = -1
				}
			}
		}
		e.Caches[i] = h
	}
	return e
}

// LineSize returns the coherence granularity in bytes.
func (e *LineEngine) LineSize() int { return int(e.lineSz) }

// Entry returns the line entry for la, creating an ownerless one on first
// touch.
func (e *LineEngine) Entry(la uint64) *LineEntry {
	le, ok := e.Lines[la]
	if !ok {
		le = &LineEntry{Owner: -1}
		e.Lines[la] = le
	}
	return le
}

// HasLine reports whether member m's cache currently holds the line of addr.
func (e *LineEngine) HasLine(m int, addr uint64) bool {
	lvl, _ := e.Caches[m].Probe(addr)
	return lvl != cache.Miss
}

// InvalidateSharers invalidates every recorded sharer of le except self, in
// ascending member order (part of run determinism), returning how many
// copies were destroyed.
func (e *LineEngine) InvalidateSharers(le *LineEntry, self int, addr uint64) int {
	n := 0
	for q := 0; q < e.NP; q++ {
		if q != self && le.Sharers&(1<<uint(q)) != 0 {
			e.Caches[q].SetState(addr, cache.Invalid)
			n++
		}
	}
	return n
}

// WriteClaim installs member m as the sole Modified owner of addr's line.
// Access applies its fill state only on a miss; on a write UPGRADE the line
// hits in state Shared and would stay Shared, so the owner would keep
// paying upgrade transactions for a line it owns — hence the explicit
// SetState after the access (the write-upgrade bug PR 3 fixed three times
// across the clones, now fixed once).
func (e *LineEngine) WriteClaim(m int, addr uint64, le *LineEntry) {
	le.Sharers = 1 << uint(m)
	le.Owner = int8(m)
	e.Caches[m].Access(addr, true, cache.Modified)
	e.Caches[m].SetState(addr, cache.Modified)
}

// DowngradeOwner makes the current exclusive owner supply the line and drop
// to Shared (the cache-to-cache transfer of a read miss on a dirty line).
func (e *LineEngine) DowngradeOwner(le *LineEntry, addr uint64) {
	e.Caches[le.Owner].SetState(addr, cache.Shared)
	le.Sharers |= 1 << uint(le.Owner)
	le.Owner = -1
}

// ReadFill records member m as a sharer and fills its cache, choosing the
// fill state by the engine's coherence state machine: under MESI a sole
// sharer of an ownerless line fills Exclusive and becomes the owner (so a
// later write upgrades silently); under MSI every read fills Shared.
func (e *LineEngine) ReadFill(m int, addr uint64, le *LineEntry) {
	le.Sharers |= 1 << uint(m)
	fill := cache.Shared
	if e.Sts == MESI && le.Sharers == 1<<uint(m) && le.Owner < 0 {
		fill = cache.Exclusive
		le.Owner = int8(m)
	}
	e.Caches[m].Access(addr, false, fill)
}

// CheckInvariants audits the line table against the member caches — the
// single implementation of the MESI/MSI sharing invariants the clones each
// carried a copy of. scope prefixes every message ("smp", "dsm",
// "svmsmp: cluster 3"). The invariants:
//
//   - an exclusive owner is the ONLY sharer and holds the line Modified or
//     Exclusive in its L2 (under MSI no line is ever Exclusive);
//   - without an owner, every recorded sharer holds the line Shared;
//   - a sharer bit is set if and only if that member's cache holds the line
//     (OnL2Evict keeps the reverse direction, invalidations the forward);
//   - each hierarchy preserves multilevel inclusion.
func (e *LineEngine) CheckInvariants(scope string) error {
	las := make([]uint64, 0, len(e.Lines))
	for la := range e.Lines {
		las = append(las, la)
	}
	// Sorted so a violating run reports the same line every time.
	sort.Slice(las, func(i, j int) bool { return las[i] < las[j] })
	for _, la := range las {
		le := e.Lines[la]
		if e.NP < 64 && le.Sharers>>uint(e.NP) != 0 {
			return fmt.Errorf("%s: line %#x has sharer bits %#x beyond its %d members", scope, la, le.Sharers, e.NP)
		}
		if le.Owner >= 0 {
			if int(le.Owner) >= e.NP {
				return fmt.Errorf("%s: line %#x owned by out-of-range member %d", scope, la, le.Owner)
			}
			if le.Sharers != 1<<uint(le.Owner) {
				return fmt.Errorf("%s: line %#x has owner %d but sharers %#x (owner must be sole sharer)", scope, la, le.Owner, le.Sharers)
			}
		}
		for q := 0; q < e.NP; q++ {
			bit := le.Sharers&(1<<uint(q)) != 0
			holds := e.HasLine(q, la*e.lineSz)
			if bit && !holds {
				return fmt.Errorf("%s: line %#x lists member %d as sharer but its cache lost the line", scope, la, q)
			}
			if !holds {
				continue
			}
			_, st := e.Caches[q].Probe(la * e.lineSz)
			if int(le.Owner) == q {
				if st != cache.Modified && st != cache.Exclusive {
					return fmt.Errorf("%s: line %#x owner %d holds it in state %s, want M or E", scope, la, q, st)
				}
				if e.Sts == MSI && st == cache.Exclusive {
					return fmt.Errorf("%s: line %#x held Exclusive by member %d under MSI (no E state)", scope, la, q)
				}
			} else if bit && st != cache.Shared {
				return fmt.Errorf("%s: line %#x non-owner sharer %d holds it in state %s, want S", scope, la, q, st)
			}
		}
	}
	for q := 0; q < e.NP; q++ {
		if err := e.Caches[q].CheckInclusion(); err != nil {
			return fmt.Errorf("%s: member %d: %w", scope, q, err)
		}
		var lerr error
		e.Caches[q].LinesL2(func(la uint64, st cache.State) {
			if lerr != nil {
				return
			}
			le, ok := e.Lines[la]
			if !ok || le.Sharers&(1<<uint(q)) == 0 {
				lerr = fmt.Errorf("%s: member %d caches line %#x (state %s) unknown to the line table", scope, q, la, st)
			}
		})
		if lerr != nil {
			return lerr
		}
	}
	return nil
}
