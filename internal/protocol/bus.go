package protocol

import (
	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/trace"
)

// UpgradeAccounting selects how a snooping bus prices the invalidation of
// remote sharers on a write upgrade. The two values are the two accountings
// the hand-cloned platforms had silently diverged into (ISSUE 8 satellite:
// internal/smp/smp.go charged n × InvalPer while internal/svmsmp charged a
// single Bus.InvalPer); the extraction keeps both as an explicit, documented
// modeling parameter — see the pinned regressions in bus_test.go.
type UpgradeAccounting int

const (
	// UpgradePerSharer charges InvalPer per remote sharer invalidated, plus
	// a MemLat refetch when the requester no longer holds the line itself
	// (its copy was evicted between the read and the write). This models a
	// machine-wide bus where each snooping cache acknowledges in turn — the
	// paper's SGI Challenge accounting.
	UpgradePerSharer UpgradeAccounting = iota
	// UpgradeBroadcast charges a single InvalPer regardless of sharer count
	// and never a refetch: the invalidation is one broadcast on a short
	// intra-cluster bus whose snoop responses overlap, appropriate for the
	// few-processor SMP nodes of the two-level hierarchy.
	UpgradeBroadcast
)

// BusAccounting selects which counters and trace events a bus transaction
// produces — the observability differences between the machine-wide smp bus
// and the per-cluster buses of the two-level platform, made explicit.
type BusAccounting struct {
	// ClassifyMisses updates LocalMisses/RemoteMisses per transaction (the
	// machine-wide bus does; the intra-cluster buses leave miss
	// classification to the page layer above them).
	ClassifyMisses bool
	// EmitTxn emits a trace.BusTxn event per transaction with its total
	// cost.
	EmitTxn bool
	// TraceID is the processor field stamped on BusOccupy events: 0 for the
	// single machine-wide bus, the cluster id for per-cluster buses.
	TraceID int
}

// SnoopBus prices coherence actions as transactions on one shared snooping
// bus: every miss or upgrade arbitrates for the bus and occupies it for a
// line transfer, so queueing delay under load is the contended resource.
type SnoopBus struct {
	P       BusParams
	Upgrade UpgradeAccounting
	Acct    BusAccounting
	Res     sim.Resource
}

// Reset implements Transport.
func (b *SnoopBus) Reset() { b.Res.Reset() }

// Kind implements Transport.
func (b *SnoopBus) Kind() string { return "bus" }

// SlowLine implements Transport: one bus transaction for member m of engine
// e (gp is the global processor id for counters and per-processor trace
// events; on a machine-wide bus m == gp). Fills from memory are charged to
// CacheStall (centralized memory, "local cache miss"); cache-to-cache
// transfers and upgrades are communication, charged to DataWait. Bus
// queueing delay is charged with the transaction.
func (b *SnoopBus) SlowLine(k *sim.Kernel, e *LineEngine, m, gp int, now, addr uint64, write bool) sim.AccessCost {
	h := e.Caches[m]
	la := h.LineOf(addr)
	le := e.Entry(la)
	c := k.Counters(gp)
	c.BusTransactions++
	var cost sim.AccessCost

	occ := b.P.BusArb + b.P.BusXfer
	start := b.Res.Acquire(now, occ)
	wait := start - now + occ
	k.Emit(trace.BusOccupy, b.Acct.TraceID, start, la, occ)

	if write {
		remoteOwner := le.Owner >= 0 && int(le.Owner) != m
		remoteSharers := le.Sharers&^(1<<uint(m)) != 0
		var lat uint64
		comm := false
		switch {
		case remoteOwner:
			lat = b.P.C2CLat
			e.Caches[le.Owner].SetState(addr, cache.Invalid)
			comm = true
		case remoteSharers:
			n := e.InvalidateSharers(le, m, addr)
			if b.Upgrade == UpgradePerSharer {
				lat = uint64(n) * b.P.InvalPer
				if !e.HasLine(m, addr) {
					lat += b.P.MemLat
				}
			} else {
				lat = b.P.InvalPer
			}
			comm = true
		default:
			lat = b.P.MemLat
		}
		e.WriteClaim(m, addr, le)
		if comm {
			cost.DataWait += wait + lat
			if b.Acct.ClassifyMisses {
				c.RemoteMisses++
			}
		} else {
			cost.CacheStall += wait + lat
			if b.Acct.ClassifyMisses {
				c.LocalMisses++
			}
		}
	} else {
		if le.Owner >= 0 && int(le.Owner) != m {
			// Owner supplies the line (cache-to-cache) and downgrades.
			e.DowngradeOwner(le, addr)
			cost.DataWait += wait + b.P.C2CLat
			if b.Acct.ClassifyMisses {
				c.RemoteMisses++
			}
		} else {
			cost.CacheStall += wait + b.P.MemLat
			if b.Acct.ClassifyMisses {
				c.LocalMisses++
			}
		}
		e.ReadFill(m, addr, le)
	}
	if b.Acct.EmitTxn {
		k.Emit(trace.BusTxn, gp, now, la, cost.Total())
	}
	return cost
}

// LockGrant implements Transport: an LL/SC or test&set acquisition — one
// bus transaction, "locks are cheap and are simply locks" (paper §4.2.3).
func (b *SnoopBus) LockGrant(k *sim.Kernel, now uint64, lock int) uint64 {
	start := b.Res.Acquire(now, b.P.BusArb)
	k.Emit(trace.BusOccupy, b.Acct.TraceID, start, uint64(lock), b.P.BusArb)
	return (start - now) + b.P.LockAcquire
}

// CheckOccupancy implements Transport.
func (b *SnoopBus) CheckOccupancy(scope string) error {
	return b.Res.CheckOccupancy(scope + ": bus")
}

var _ Transport = (*SnoopBus)(nil)
