// Package protocol is the composable coherence-protocol framework the four
// platform models are built from. A platform is no longer a hand-cloned
// package but a *composition* of orthogonal policies:
//
//   - a coherence state machine (MSI or MESI today; the StateKind axis is
//     where MOESI's owned-state supply rules would slot in),
//   - an interconnect model (snooping bus or full-map directory) that turns
//     coherence actions into cycle costs, counters and trace events,
//   - a write/consistency policy (hardware eager coherence at line grain, or
//     HLRC twin/diff software coherence at page grain),
//   - a coherence grain (cache line for the hardware engines, page for the
//     HLRC engine, or both stacked for the two-level hierarchy).
//
// The compositions behind the paper's platforms:
//
//	smp    = HW{MESI × SnoopBus}                          (line grain)
//	dsm    = HW{MESI × Directory}                         (line grain)
//	svm    = PageEngine (HLRC)                            (page grain)
//	svmsmp = PageEngine per cluster + {MESI × SnoopBus}   (two-level)
//
// and new rows are configuration, not packages: platform.Make("smp-msi")
// and platform.Make("dsm-msi") build the MSI variants from the same two
// engines, and further machines ({MOESI, limited-directory, CXL-PCC} rows
// of the roadmap) are meant to land as new policy values here.
//
// Extracting the engines is also an audit of the clones they replace: every
// place the hand-copied platforms disagreed is now either a named policy
// knob (see UpgradeAccounting and BusAccounting in bus.go, CountApplies in
// page.go) or would have been a bug fixed once. The invariant checker that
// previously existed in four per-platform copies is implemented once per
// engine (LineEngine.CheckInvariants, PageEngine.CheckInvariants), and the
// whole extraction is gated by byte-identity: figure output, the
// paper-claims golden suite, and the per-cell end-time/fingerprint goldens
// (internal/check testdata/engine_goldens.json, generated on the
// pre-refactor clones) are identical before and after.
package protocol

// StateKind selects the coherence state machine of a line-grained engine.
type StateKind int

const (
	// MESI adds the Exclusive state: a read miss that finds no other sharer
	// fills Exclusive, so the first subsequent write upgrades silently in
	// the cache with no interconnect transaction.
	MESI StateKind = iota
	// MSI has no Exclusive state: every read fills Shared, so the first
	// write to any line — even one cached by nobody else — pays an upgrade
	// transaction on the interconnect.
	MSI
)

// String names the state machine for composition labels.
func (s StateKind) String() string {
	switch s {
	case MESI:
		return "mesi"
	case MSI:
		return "msi"
	}
	return "unknown"
}
