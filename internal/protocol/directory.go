package protocol

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Directory prices coherence actions as full-map directory transactions in a
// CC-NUMA machine: every miss or upgrade visits the line's home directory
// controller (the contended resource), and latency depends on how many
// network hops the protocol needs — local memory, 2-hop clean fills, 3-hop
// dirty fetches. Memory is physically distributed; placement comes from the
// address space's page homes.
type Directory struct {
	P      DirParams
	AS     *mem.AddressSpace
	NP     int
	dirOcc []sim.Resource // per home node
}

// Reset implements Transport.
func (t *Directory) Reset() { t.dirOcc = make([]sim.Resource, t.NP) }

// Kind implements Transport.
func (t *Directory) Kind() string { return "directory" }

// SlowLine implements Transport: a directory transaction for a miss or
// upgrade by member m (== gp: the directory engine is always machine-wide).
// Accounting: fills satisfied entirely by local home memory are CacheStall;
// anything involving another node is DataWait, with 2-/3-hop classification
// emitted to the trace stream.
func (t *Directory) SlowLine(k *sim.Kernel, e *LineEngine, m, gp int, now, addr uint64, write bool) sim.AccessCost {
	h := e.Caches[m]
	la := h.LineOf(addr)
	home := t.AS.Home(addr)
	le := e.Entry(la)
	c := k.Counters(gp)
	var cost sim.AccessCost

	// Home directory occupancy models contention at home nodes.
	start := t.dirOcc[home].Acquire(now, t.P.DirOccupy)
	contention := start - now
	k.Emit(trace.DirOccupy, home, start, la, t.P.DirOccupy)
	var kind trace.Kind // 2-/3-hop classification for the trace stream

	switch {
	case write:
		var base uint64
		remoteOwner := le.Owner >= 0 && int(le.Owner) != m
		remoteSharers := le.Sharers&^(1<<uint(m)) != 0
		switch {
		case remoteOwner:
			// 3-hop: fetch dirty line from owner, invalidate it.
			base = t.P.RemoteDirty
			if home == m {
				base = t.P.RemoteDirty - 50
			}
			e.Caches[le.Owner].SetState(addr, cache.Invalid)
			c.ThreeHopMisses++
			c.RemoteMisses++
			kind = trace.Miss3Hop
		case remoteSharers || le.Sharers&(1<<uint(m)) != 0 && e.HasLine(m, addr):
			// Upgrade (or fetch+invalidate) with sharers.
			base = t.P.UpgradeBase
			if home != m {
				base += t.P.UpgradeHop
				c.RemoteMisses++
				kind = trace.Miss2Hop
			} else {
				c.LocalMisses++
			}
			n := e.InvalidateSharers(le, m, addr)
			base += uint64(n) * t.P.InvalPer
		default:
			// Plain write miss from memory.
			if home == m {
				base = t.P.LocalMem
				c.LocalMisses++
			} else {
				base = t.P.RemoteClean
				c.RemoteMisses++
				kind = trace.Miss2Hop
			}
		}
		e.WriteClaim(m, addr, le)
		if home == m && !remoteOwner && !remoteSharers {
			cost.CacheStall += base + contention
		} else {
			cost.DataWait += base + contention
		}

	default: // read miss
		var base uint64
		if le.Owner >= 0 && int(le.Owner) != m {
			// 3-hop: owner supplies the line and downgrades.
			base = t.P.RemoteDirty
			e.DowngradeOwner(le, addr)
			c.ThreeHopMisses++
			c.RemoteMisses++
			kind = trace.Miss3Hop
			cost.DataWait += base + contention
		} else if home == m {
			base = t.P.LocalMem
			c.LocalMisses++
			cost.CacheStall += base + contention
		} else {
			base = t.P.RemoteClean
			c.RemoteMisses++
			kind = trace.Miss2Hop
			cost.DataWait += base + contention
		}
		e.ReadFill(m, addr, le)
	}
	if kind != trace.KindNone {
		k.Emit(kind, gp, now, la, cost.DataWait)
	}
	return cost
}

// LockGrant implements Transport: an uncontended hardware lock costs about a
// remote miss; no protocol consistency work happens at acquire (coherence is
// at access time, paper §5.2).
func (t *Directory) LockGrant(k *sim.Kernel, now uint64, lock int) uint64 {
	return t.P.LockAcquire
}

// CheckOccupancy implements Transport: no home's directory controller may be
// charged more occupancy than wall time.
func (t *Directory) CheckOccupancy(scope string) error {
	for q := range t.dirOcc {
		if err := t.dirOcc[q].CheckOccupancy(fmt.Sprintf("%s: home %d directory", scope, q)); err != nil {
			return err
		}
	}
	return nil
}

var _ Transport = (*Directory)(nil)
