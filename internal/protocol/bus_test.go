package protocol

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

var testBusCfg = cache.Config{
	L1Size: 16 << 10, L1Assoc: 1,
	L2Size: 1 << 20, L2Assoc: 1,
	Line: 128,
}

// testBusMachine builds a bus machine with an explicit upgrade-accounting
// policy (NewBusMachine pins PerSharer; the Broadcast flavor is reached in
// production through the two-level platform's per-cluster buses).
func testBusMachine(upg UpgradeAccounting, np int) *HW {
	p := DefaultBusParams()
	return &HW{
		name: "test-bus", sts: MESI, cfg: testBusCfg, np: np,
		tr:          &SnoopBus{P: p, Upgrade: upg, Acct: BusAccounting{ClassifyMisses: true, EmitTxn: true}},
		l2HitCost:   p.L2HitCost,
		lockRelease: p.LockRelease,
		barrierHW:   p.BarrierHW,
		barrierLeaf: p.BarrierLeaf,
	}
}

// upgradeDataWait runs three readers then one writer on a shared line and
// returns the writer's DataWait. writerHolds controls whether the writer read
// the line first (so its own copy is Shared at upgrade time) or never held it.
func upgradeDataWait(t *testing.T, upg UpgradeAccounting, writerHolds bool) uint64 {
	t.Helper()
	as := mem.NewAddressSpace(4096, 4)
	pl := testBusMachine(upg, 4)
	k := sim.New(pl, sim.Config{NumProcs: 4, Check: true})
	a := as.AllocPages(4096)
	run, err := k.RunErr("upgrade", func(p *sim.Proc) {
		if writerHolds && p.ID() == 0 {
			p.Read(a)
		}
		p.Barrier()
		if p.ID() != 0 {
			p.Read(a)
		}
		p.Barrier()
		if p.ID() == 0 {
			p.Write(a)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	return run.Procs[0].Cycles[stats.DataWait]
}

// Pinned regression for the upgrade-invalidation divergence the platform
// clones had silently grown (ISSUE 8 satellite): the machine-wide smp bus
// charged n × InvalPer per remote sharer (plus a MemLat refetch when the
// writer's own copy was evicted), while the two-level platform's cluster
// buses charged a single InvalPer. Both accountings are now explicit
// UpgradeAccounting values of the one SnoopBus implementation; these tests
// pin the exact cycle charges of each so neither can silently drift into the
// other again.
func TestUpgradeAccountingPerSharer(t *testing.T) {
	p := DefaultBusParams()
	wait := p.BusArb + p.BusXfer // uncontended bus: arb + line transfer

	// Writer holds the line Shared: pay one InvalPer per remote sharer.
	if got, want := upgradeDataWait(t, UpgradePerSharer, true), wait+3*p.InvalPer; got != want {
		t.Errorf("per-sharer upgrade (writer holds line): DataWait = %d, want %d", got, want)
	}
	// Writer's copy gone: same sweep plus a memory refetch of the line.
	if got, want := upgradeDataWait(t, UpgradePerSharer, false), wait+3*p.InvalPer+p.MemLat; got != want {
		t.Errorf("per-sharer upgrade (writer evicted): DataWait = %d, want %d", got, want)
	}
}

func TestUpgradeAccountingBroadcast(t *testing.T) {
	p := DefaultBusParams()
	wait := p.BusArb + p.BusXfer

	// One broadcast invalidation regardless of sharer count, never a refetch.
	for _, holds := range []bool{true, false} {
		if got, want := upgradeDataWait(t, UpgradeBroadcast, holds), wait+p.InvalPer; got != want {
			t.Errorf("broadcast upgrade (writerHolds=%v): DataWait = %d, want %d", holds, got, want)
		}
	}
}
