package protocol

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// PageHost is how a PageEngine's owner maps protocol roles onto the machine.
// The engine runs the home-based lazy release consistency (HLRC) state
// machine over abstract coherence DOMAINS; the host decides what a domain is
// (a node on the flat SVM platform, an SMP cluster on the two-level one) and
// what happens beneath the page table when page contents change.
type PageHost interface {
	// HomeDomain returns the domain that is home to addr's page.
	HomeDomain(addr uint64) int
	// HandlerProc returns the global processor that runs dom's protocol
	// handlers (the node itself, or a cluster's first processor) — the
	// target for handler-cycle charges and per-processor counters of
	// home-side work.
	HandlerProc(dom int) int
	// MemberRange returns the half-open global-processor range [lo, hi) of
	// dom, for accounting that must aggregate over a domain's processors
	// (the twin/diff balance invariant).
	MemberRange(dom int) (lo, hi int)
	// PageArrived is called after a fetched page lands at dom: its contents
	// changed under the domain's caches, which must drop the page's lines.
	PageArrived(dom int, pg uint64)
	// DiffApplied is called after a diff is applied at home's copy: same
	// cache consequence, at the home domain.
	DiffApplied(home int, pg uint64)
}

// PageConfig assembles a PageEngine.
type PageConfig struct {
	Params  HLRCParams
	Domains int
	Host    PageHost
	// CountApplies updates the home handler processor's DiffsApplied
	// counter per diff (the flat SVM platform does; the two-level platform
	// leaves home-side diff counting out of its per-processor stats).
	CountApplies bool
	// Scope and Noun shape invariant-violation messages: "svm"/"node" on
	// the flat platform, "svmsmp"/"cluster" on the two-level one.
	Scope, Noun string
}

// PageDomain is one coherence domain's HLRC state: the vector clock and
// interval counter, the page table (valid/dirty bits plus the dirty list
// driving the next flush), the diffed-but-unnotified pending list, and the
// NIC modeling the domain's protocol-handler occupancy for incoming
// requests. Fields are exported because the platform fast paths (FastAccess,
// FastRange) read Valid/Dirty directly on every simulated reference.
type PageDomain struct {
	VC       []uint32 // latest interval of each domain known here
	Interval uint32   // own current interval
	Valid    []bool   // per page: is a copy readable here
	Dirty    []bool   // per page: twin exists (written in current interval)
	DirtyLst []uint64
	// Pending lists pages whose diff was already flushed home by an
	// acquire-time invalidation in the still-open interval; the next flush
	// publishes their write notices without diffing them again.
	Pending []uint64
	NIC     sim.Resource
}

// PageEngine is the page-grained write/consistency policy: home-based lazy
// release consistency with twins, diffs, write notices and vector clocks,
// implemented once and parameterized by the domain mapping (PageHost). The
// flat SVM platform instantiates it with one domain per node; the two-level
// platform with one domain per SMP cluster, stacking a {MESI × SnoopBus}
// line engine underneath.
type PageEngine struct {
	Cfg PageConfig
	// Doms is the per-run protocol state; exported for the platforms' fast
	// paths and white-box tests.
	Doms []*PageDomain

	P         HLRCParams
	k         *sim.Kernel
	nd        int
	pageShift uint

	// writeLog[q][i] lists pages domain q flushed in interval i; acquirers
	// walk the intervals their vector clock advances over and invalidate
	// those pages (the write notices of LRC).
	writeLog [][][]uint64

	// lockVC[id] is the releaser's vector clock at the last release of
	// lock id, transferred to the next acquirer.
	lockVC map[int][]uint32

	// npagesAlloc is the page-table size the domains were built with; Init
	// reuses them in place while the address space still fits.
	npagesAlloc int
}

// NewPageEngine builds an engine; per-run state is created by Init.
func NewPageEngine(cfg PageConfig) *PageEngine {
	return &PageEngine{
		Cfg: cfg, P: cfg.Params, nd: cfg.Domains,
		pageShift: PageShift(cfg.Params.PageSize),
	}
}

// Domains returns the number of coherence domains.
func (e *PageEngine) Domains() int { return e.nd }

// Init resets all protocol state for a run over npages pages. An engine
// re-initialized with a fitting shape resets its domains in place — vector
// clocks and page tables are cleared, not reallocated — so a repeated run
// allocates nothing and starts from the identical cold state a fresh engine
// would. It returns whether the in-place path was taken, so the owner can
// mirror the decision for the cache hierarchies it manages. Home domains
// start with valid copies of their pages (untimed initialization, as in the
// paper).
func (e *PageEngine) Init(k *sim.Kernel, npages int) (reused bool) {
	e.k = k
	if len(e.Doms) == e.nd && npages <= e.npagesAlloc {
		for _, d := range e.Doms {
			clear(d.VC)
			d.Interval = 0
			clear(d.Valid)
			clear(d.Dirty)
			d.DirtyLst = d.DirtyLst[:0]
			d.Pending = d.Pending[:0]
			d.NIC = sim.Resource{}
		}
		for i := range e.writeLog {
			e.writeLog[i] = append(e.writeLog[i][:0], nil) // interval 0
		}
		clear(e.lockVC)
		reused = true
	} else {
		e.Doms = make([]*PageDomain, e.nd)
		for i := range e.Doms {
			e.Doms[i] = &PageDomain{
				VC:    make([]uint32, e.nd),
				Valid: make([]bool, npages),
				Dirty: make([]bool, npages),
			}
		}
		e.writeLog = make([][][]uint64, e.nd)
		for i := range e.writeLog {
			e.writeLog[i] = [][]uint64{nil} // interval 0
		}
		e.lockVC = map[int][]uint32{}
		e.npagesAlloc = npages
	}
	for pg := 0; pg < npages; pg++ {
		h := e.Cfg.Host.HomeDomain(uint64(pg) * e.P.PageSize)
		if h < e.nd {
			e.Doms[h].Valid[pg] = true
		}
	}
	return reused
}

// EnsurePage grows dom's page table to cover pg.
func (e *PageEngine) EnsurePage(dom int, pg uint64) {
	d := e.Doms[dom]
	for uint64(len(d.Valid)) <= pg {
		d.Valid = append(d.Valid, false)
		d.Dirty = append(d.Dirty, false)
	}
}

// Prevalidate gives dom a valid (clean) copy of every page overlapping
// [addr, addr+nbytes), modelling data placed during untimed setup.
func (e *PageEngine) Prevalidate(addr uint64, nbytes int, dom int) {
	if dom < 0 || dom >= e.nd {
		return
	}
	first := addr >> e.pageShift
	last := (addr + uint64(nbytes) - 1) >> e.pageShift
	d := e.Doms[dom]
	for pg := first; pg <= last; pg++ {
		e.EnsurePage(dom, pg)
		d.Valid[pg] = true
	}
}

// Fault handles a page fault by processor p in domain dom: fetch the whole
// page from the home (unless dom IS the home, which never invalidates its
// own pages — a fault there means a never-touched page past the
// prevalidated range, treated as local). Returns the cycles the faulting
// processor waits (DataWait).
func (e *PageEngine) Fault(p, dom int, now uint64, addr uint64) (wait uint64) {
	d := e.Doms[dom]
	pg := addr >> e.pageShift
	c := e.k.Counters(p)
	c.PageFaults++
	e.k.Emit(trace.PageFault, p, now, pg, 0)
	home := e.Cfg.Host.HomeDomain(addr)
	if home == dom {
		d.Valid[pg] = true
		return 0
	}
	c.PageFetches++
	hp := e.Cfg.Host.HandlerProc(home)
	e.k.Counters(hp).PagesServed++
	reqArrive := now + e.P.FaultOverhead + e.P.MsgSend + e.P.NetLatency
	service := e.P.MsgRecv + e.P.HomeService + e.P.PageXfer
	start := e.Doms[home].NIC.Acquire(reqArrive, service)
	e.k.ChargeHandler(hp, service)
	// The page crosses the requester's I/O bus too before the faulting
	// processor can be resumed.
	done := start + service + e.P.NetLatency + e.P.PageXfer + e.P.MsgRecv
	wait = done - now
	e.k.Emit(trace.PageFetch, p, now, pg, wait)
	e.k.Emit(trace.NICOccupy, home, start, pg, service)
	d.Valid[pg] = true
	d.Dirty[pg] = false
	// The page contents changed under the domain's caches.
	e.Cfg.Host.PageArrived(dom, pg)
	return wait
}

// Trap handles the first write to a page in the current interval: a write
// trap, plus a twin for later diffing when dom is not the page's home.
// Returns the handler cycles charged to the writing processor. With a single
// domain there is no coherence to maintain, so pages are never
// write-protected (the paper's sequential baseline is plain execution).
func (e *PageEngine) Trap(p, dom int, now uint64, addr uint64) (handler uint64) {
	if e.nd <= 1 {
		return 0
	}
	d := e.Doms[dom]
	pg := addr >> e.pageShift
	handler = e.P.WriteTrap
	e.k.Emit(trace.WriteTrap, p, now, pg, e.P.WriteTrap)
	if e.Cfg.Host.HomeDomain(addr) != dom {
		handler += e.P.TwinCost
		e.k.Counters(p).TwinsMade++
		e.k.Emit(trace.TwinCreate, p, now, pg, e.P.TwinCost)
	}
	d.Dirty[pg] = true
	d.DirtyLst = append(d.DirtyLst, pg)
	return handler
}

// DiffHome computes the diff of page pg against its twin, ships it to the
// page's home domain and has the home apply it (updating the home copy under
// the home's caches). It returns the cycles spent on the diffing processor
// p; the home's receive/apply work is charged asynchronously to its handler
// processor.
func (e *PageEngine) DiffHome(p int, pg uint64, now uint64) (local uint64) {
	home := e.Cfg.Host.HomeDomain(pg * e.P.PageSize)
	e.k.Counters(p).DiffsCreated++
	local = e.P.DiffCreate + e.P.MsgSend
	e.k.Emit(trace.DiffCreate, p, now+local, pg, e.P.DiffCreate)
	hp := e.Cfg.Host.HandlerProc(home)
	if e.Cfg.CountApplies {
		e.k.Counters(hp).DiffsApplied++
	}
	service := e.P.MsgRecv + e.P.DiffXfer + e.P.DiffApply
	start := e.Doms[home].NIC.Acquire(now+local+e.P.NetLatency, service)
	e.k.ChargeHandler(hp, service)
	e.k.Emit(trace.DiffApply, hp, start, pg, service)
	e.k.Emit(trace.NICOccupy, home, start, pg, service)
	e.Cfg.Host.DiffApplied(home, pg)
	return local
}

// Flush computes diffs for all pages dom dirtied in the current interval,
// sends them to their homes, logs write notices, and opens a new interval
// (p is the flushing processor, for handler charges and trace events). It
// returns the handler cycles spent by the flushing processor.
func (e *PageEngine) Flush(dom, p int, now uint64) (handler uint64) {
	d := e.Doms[dom]
	var log []uint64
	// Pages whose diff already went home at an acquire-time invalidation
	// still owe a write notice in this interval; re-dirtied ones are
	// covered by the dirty-list walk below.
	for _, pg := range d.Pending {
		if d.Dirty[pg] {
			continue
		}
		log = append(log, pg)
		handler += e.P.NoticeCost
		e.k.Emit(trace.WriteNotice, p, now+handler, pg, e.P.NoticeCost)
	}
	d.Pending = d.Pending[:0]
	for _, pg := range d.DirtyLst {
		d.Dirty[pg] = false
		log = append(log, pg)
		handler += e.P.NoticeCost
		e.k.Emit(trace.WriteNotice, p, now+handler, pg, e.P.NoticeCost)
		if e.Cfg.Host.HomeDomain(pg*e.P.PageSize) != dom {
			// Diff against the twin, ship to home, home applies.
			handler += e.DiffHome(p, pg, now+handler)
		}
	}
	d.DirtyLst = d.DirtyLst[:0]
	e.writeLog[dom] = append(e.writeLog[dom], log)
	if d.Interval == math.MaxUint32 {
		// Intervals advance at every release and barrier arrival whether or
		// not anything was written, so a long enough run genuinely gets
		// here. Wrapping would silently reorder the vector clocks (interval
		// 0 would compare older than everything it follows), so fail loudly;
		// the kernel contains the panic as a ProcPanicError.
		panic(&IntervalOverflowError{Node: dom})
	}
	d.Interval++
	d.VC[dom] = d.Interval
	return handler
}

// removeDirty drops pg from the domain's pending-flush list, preserving the
// order of the remaining entries (Flush walks the list in order, so its
// order is part of the run's determinism).
func (d *PageDomain) removeDirty(pg uint64) {
	for i, x := range d.DirtyLst {
		if x == pg {
			d.DirtyLst = append(d.DirtyLst[:i], d.DirtyLst[i+1:]...)
			return
		}
	}
}

// addPending records pg as diffed-but-unnotified in the open interval. A page
// can be invalidated while dirty more than once per interval (re-fetch and
// re-write between two acquires), so membership is checked to keep the list
// duplicate-free — one notice per page per interval.
func (d *PageDomain) addPending(pg uint64) {
	for _, q := range d.Pending {
		if q == pg {
			return
		}
	}
	d.Pending = append(d.Pending, pg)
}

// InvalidateUpTo advances domain dom's knowledge of domain q to interval
// upTo, invalidating dom's copies of every page q flushed in the newly
// covered intervals (the Invalidate trace events land at virtual time now,
// attributed to processor p). Returns the number of pages actually
// invalidated and the cycles spent flushing diffs of dirty pages home before
// dropping them.
func (e *PageEngine) InvalidateUpTo(dom, q int, upTo uint32, p int, now uint64) (inv int, diffC uint64) {
	if dom == q {
		return 0, 0
	}
	d := e.Doms[dom]
	for i := d.VC[q] + 1; i <= upTo; i++ {
		if int(i) >= len(e.writeLog[q]) {
			break
		}
		for _, pg := range e.writeLog[q][i] {
			e.EnsurePage(dom, pg)
			// The home keeps its copy up to date by applying diffs;
			// everyone else invalidates.
			if e.Cfg.Host.HomeDomain(pg*e.P.PageSize) == dom {
				continue
			}
			if d.Valid[pg] {
				if d.Dirty[pg] {
					// The page was written here in the still-open interval. A
					// multiple-writer protocol must not lose those writes:
					// compute the diff against the twin and flush it home
					// before dropping the copy (TreadMarks-style
					// diff-on-invalidate; word-grained diffs merge at the
					// home, which is what makes falsely-shared pages safe).
					// The write notice is still published when the interval
					// closes. Leaving the entry in DirtyLst instead would
					// flush a diff for an invalid page — and a re-write after
					// a refetch would append a duplicate entry,
					// double-counting the diff.
					diffC += e.DiffHome(p, pg, now+diffC)
					d.removeDirty(pg)
					d.addPending(pg)
				}
				d.Valid[pg] = false
				d.Dirty[pg] = false
				inv++
				e.k.Emit(trace.Invalidate, p, now, pg, e.P.InvalCost)
			}
		}
	}
	if upTo > d.VC[q] {
		d.VC[q] = upTo
	}
	return inv, diffC
}

// AcquireApply applies the write notices carried by lock's last release
// vector clock to acquiring domain dom (lazy invalidation), charging diff
// work asynchronously to processor p's handler time — it must not serialize
// lock handoffs. Returns the invalidation cycles to add to the acquire cost;
// zero (and no state change) when the lock has never been released.
func (e *PageEngine) AcquireApply(lock, dom, p int, now uint64) uint64 {
	rvc, ok := e.lockVC[lock]
	if !ok {
		return 0
	}
	inv := 0
	var diff uint64
	for q := 0; q < e.nd; q++ {
		i, diffC := e.InvalidateUpTo(dom, q, rvc[q], p, now+diff)
		inv += i
		diff += diffC
	}
	e.k.ChargeHandler(p, diff)
	e.k.Counters(p).Invalidations += uint64(inv)
	return uint64(inv) * e.P.InvalCost
}

// SaveLockVC records dom's vector clock as lock's release clock. The
// backing array is reused across releases: AcquireApply consumes the values
// synchronously before the next release of the same lock can overwrite
// them, and the map holds last-release-wins semantics.
func (e *PageEngine) SaveLockVC(lock, dom int) {
	rvc := e.lockVC[lock]
	if rvc == nil {
		rvc = make([]uint32, e.nd)
		e.lockVC[lock] = rvc
	}
	copy(rvc, e.Doms[dom].VC)
}

// ReleaseWork computes a barrier's global release time: the manager serially
// processes n arrival messages (merging write notices), then broadcasts the
// release. n is the number of arrival messages the manager handles — one
// per processor on the flat platform, one per cluster on the two-level one.
func (e *PageEngine) ReleaseWork(arrivals []uint64, manager, n int) uint64 {
	var maxArr uint64
	for _, a := range arrivals {
		if a > maxArr {
			maxArr = a
		}
	}
	mgrWork := uint64(n) * (e.P.MsgRecv/4 + e.P.BarrierPerProc)
	e.k.ChargeHandler(manager, mgrWork)
	return maxArr + mgrWork + e.P.BarrierBcast + e.P.NetLatency
}

// DepartApply performs post-barrier consistency for domain dom: on
// departure every domain has merged every other domain's vector clock, so
// stale copies are invalidated. Diff work is charged asynchronously to
// processor p (arrival flushed the domain's dirty pages, so it is zero in
// practice; accounted anyway for symmetry with AcquireApply). Returns the
// invalidation cycles.
func (e *PageEngine) DepartApply(dom, p int, releaseTime uint64) uint64 {
	inv := 0
	var diff uint64
	for q := 0; q < e.nd; q++ {
		if q == dom {
			continue
		}
		i, diffC := e.InvalidateUpTo(dom, q, e.Doms[q].VC[q], p, releaseTime+diff)
		inv += i
		diff += diffC
	}
	e.k.ChargeHandler(p, diff)
	e.k.Counters(p).Invalidations += uint64(inv)
	return uint64(inv) * e.P.InvalCost
}

// CheckInvariants audits the HLRC state — the single implementation of the
// page-protocol invariants the flat and two-level platforms each carried a
// copy of. The audited invariants:
//
//   - a domain's own vector-clock entry tracks its interval counter, and its
//     write log holds exactly one notice list per closed interval;
//   - no vector clock (per domain or per lock) claims knowledge of an
//     interval its producer has not reached (vector-clock monotonicity);
//   - the dirty list is duplicate-free and agrees with the dirty bits, and
//     dirty pages are valid (a twin without a readable copy is meaningless);
//   - twin/diff balance: every twin ever made has either been diffed (at a
//     flush or at an acquire-time invalidation) or is still pending in the
//     open interval (non-home dirty pages) — twins are never dropped without
//     their writes reaching the home. The balance is aggregated over the
//     domain's processors (MemberRange): on the two-level platform the write
//     trap lands on the accessing processor while the flush lands on
//     whichever cluster mate releases;
//   - the diffed-but-unnotified list is duplicate-free;
//   - NIC occupancy never exceeds its busy-until clock.
func (e *PageEngine) CheckInvariants() error {
	scope, noun := e.Cfg.Scope, e.Cfg.Noun
	for dom, d := range e.Doms {
		if d.VC[dom] != d.Interval {
			return fmt.Errorf("%s: %s %d's own vector-clock entry is %d but its interval is %d", scope, noun, dom, d.VC[dom], d.Interval)
		}
		if got, want := len(e.writeLog[dom]), int(d.Interval)+1; got != want {
			return fmt.Errorf("%s: %s %d's write log has %d interval entries, want %d", scope, noun, dom, got, want)
		}
		for q, dq := range e.Doms {
			if d.VC[q] > dq.Interval {
				return fmt.Errorf("%s: %s %d knows interval %d of %s %d, which has only reached %d", scope, noun, dom, d.VC[q], noun, q, dq.Interval)
			}
		}
		seen := make(map[uint64]bool, len(d.DirtyLst))
		var pendingTwins uint64
		for _, pg := range d.DirtyLst {
			if seen[pg] {
				return fmt.Errorf("%s: %s %d's dirty list holds page %d twice", scope, noun, dom, pg)
			}
			seen[pg] = true
			if !d.Dirty[pg] {
				return fmt.Errorf("%s: %s %d's dirty list holds page %d but its dirty bit is clear", scope, noun, dom, pg)
			}
			if !d.Valid[pg] {
				return fmt.Errorf("%s: %s %d has page %d dirty but not valid", scope, noun, dom, pg)
			}
			if e.Cfg.Host.HomeDomain(pg*e.P.PageSize) != dom {
				pendingTwins++
			}
		}
		for pg, dirty := range d.Dirty {
			if dirty && !seen[uint64(pg)] {
				return fmt.Errorf("%s: %s %d has page %d marked dirty but missing from the dirty list", scope, noun, dom, pg)
			}
		}
		seenPend := make(map[uint64]bool, len(d.Pending))
		for _, pg := range d.Pending {
			if seenPend[pg] {
				return fmt.Errorf("%s: %s %d's pending-notice list holds page %d twice", scope, noun, dom, pg)
			}
			seenPend[pg] = true
		}
		var made, diffed uint64
		lo, hi := e.Cfg.Host.MemberRange(dom)
		for q := lo; q < hi; q++ {
			c := e.k.Counters(q)
			made += c.TwinsMade
			diffed += c.DiffsCreated
		}
		if made != diffed+pendingTwins {
			return fmt.Errorf("%s: %s %d twin/diff balance broken: %d twins made != %d diffs + %d pending",
				scope, noun, dom, made, diffed, pendingTwins)
		}
		if err := d.NIC.CheckOccupancy(fmt.Sprintf("%s: %s %d NIC", scope, noun, dom)); err != nil {
			return err
		}
	}
	// Sorted lock order so a violating run reports deterministically.
	ids := make([]int, 0, len(e.lockVC))
	for id := range e.lockVC {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		for q, iv := range e.lockVC[id] {
			if iv > e.Doms[q].Interval {
				return fmt.Errorf("%s: lock %d's vector clock knows interval %d of %s %d, which has only reached %d", scope, id, iv, noun, q, e.Doms[q].Interval)
			}
		}
	}
	return nil
}
