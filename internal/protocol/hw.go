package protocol

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Transport is the interconnect-model axis of a hardware-coherent machine:
// it prices the line transitions a LineEngine performs. SnoopBus and
// Directory are the two implementations; a limited-directory or CXL-style
// transport would slot in here without touching the state machine.
type Transport interface {
	// Kind names the interconnect model ("bus", "directory").
	Kind() string
	// Reset clears per-run occupancy state before a run.
	Reset()
	// SlowLine performs one coherence transaction for member m of engine e.
	// gp is the global processor id, used for counters and per-processor
	// trace events; engines that span the whole machine pass m == gp.
	SlowLine(k *sim.Kernel, e *LineEngine, m, gp int, now, addr uint64, write bool) sim.AccessCost
	// LockGrant prices an uncontended hardware lock acquisition.
	LockGrant(k *sim.Kernel, now uint64, lock int) uint64
	// CheckOccupancy audits the transport's contended resources against
	// wall time; scope prefixes error messages.
	CheckOccupancy(scope string) error
}

// HW is a hardware-coherent platform assembled from the two line-grained
// policy axes: a coherence state machine (StateKind, realized by the
// LineEngine) and an interconnect model (Transport). The paper's "smp" is
// {MESI × SnoopBus} and its "dsm" is {MESI × Directory}; "smp-msi" and
// "dsm-msi" swap the state-machine axis while keeping everything else —
// new rows are configuration, not packages.
type HW struct {
	name string
	sts  StateKind
	cfg  cache.Config
	tr   Transport
	np   int
	k    *sim.Kernel
	// Eng is the per-run coherence state; exported for the invariant
	// checker's tests and for tools that inspect final cache state.
	Eng *LineEngine

	l2HitCost   uint64
	lockRelease uint64
	barrierHW   uint64
	barrierLeaf uint64
}

// NewBusMachine composes a snooping-bus machine: StateKind × SnoopBus with
// per-sharer upgrade accounting, per-transaction miss classification and
// BusTxn trace events (the machine-wide bus observability profile).
func NewBusMachine(name string, sts StateKind, cfg cache.Config, p BusParams, np int) *HW {
	return &HW{
		name: name, sts: sts, cfg: cfg, np: np,
		tr: &SnoopBus{
			P:       p,
			Upgrade: UpgradePerSharer,
			Acct:    BusAccounting{ClassifyMisses: true, EmitTxn: true, TraceID: 0},
		},
		l2HitCost:   p.L2HitCost,
		lockRelease: p.LockRelease,
		barrierHW:   p.BarrierHW,
		barrierLeaf: p.BarrierLeaf,
	}
}

// NewDirMachine composes a full-map-directory machine: StateKind ×
// Directory, with homes taken from the address space's page placement.
func NewDirMachine(name string, sts StateKind, cfg cache.Config, as *mem.AddressSpace, p DirParams, np int) *HW {
	return &HW{
		name: name, sts: sts, cfg: cfg, np: np,
		tr:          &Directory{P: p, AS: as, NP: np},
		l2HitCost:   p.L2HitCost,
		lockRelease: p.LockRelease,
		barrierHW:   p.BarrierHW,
		barrierLeaf: p.BarrierLeaf,
	}
}

// Name implements sim.Platform.
func (w *HW) Name() string { return w.name }

// States returns the composition's coherence state machine.
func (w *HW) States() StateKind { return w.sts }

// Transport returns the composition's interconnect model.
func (w *HW) Transport() Transport { return w.tr }

// LineSize reports the coherence line size for range accesses.
func (w *HW) LineSize() int { return w.cfg.Line }

// Attach implements sim.Platform.
func (w *HW) Attach(k *sim.Kernel) {
	w.k = k
	w.Eng = NewLineEngine(w.sts, w.cfg, w.np)
	w.tr.Reset()
}

// FastAccess implements sim.Platform: cache hits with sufficient coherence
// rights are purely local. HitAccess fuses the probe and the access into one
// tag-array walk, refusing (mutating nothing) on a miss or a write without
// Modified/Exclusive rights.
func (w *HW) FastAccess(p int, now uint64, addr uint64, write bool) (uint64, bool) {
	lvl, _, ok := w.Eng.Caches[p].HitAccess(addr, write)
	if !ok {
		return 0, false // miss, or upgrade needed
	}
	if lvl == cache.L1Hit {
		return 0, true
	}
	return w.l2HitCost, true
}

// SlowAccess implements sim.Platform: one interconnect transaction.
func (w *HW) SlowAccess(p int, now uint64, addr uint64, write bool) sim.AccessCost {
	return w.tr.SlowLine(w.k, w.Eng, p, p, now, addr, write)
}

// LockRequest implements sim.Platform.
func (w *HW) LockRequest(p int, now uint64, lock int) uint64 { return 0 }

// LockGrant implements sim.Platform.
func (w *HW) LockGrant(p int, now uint64, lock int, prev int) uint64 {
	return w.tr.LockGrant(w.k, now, lock)
}

// LockRelease implements sim.Platform.
func (w *HW) LockRelease(p int, now uint64, lock int) (uint64, uint64, uint64) {
	return w.lockRelease, 0, 0
}

// BarrierArrive implements sim.Platform.
func (w *HW) BarrierArrive(p int, now uint64) (uint64, uint64) {
	return w.barrierLeaf, 0
}

// BarrierRelease implements sim.Platform.
func (w *HW) BarrierRelease(arrivals []uint64, manager int) uint64 {
	var m uint64
	for _, a := range arrivals {
		if a > m {
			m = a
		}
	}
	return m + w.barrierHW
}

// BarrierDepart implements sim.Platform.
func (w *HW) BarrierDepart(p int, releaseTime uint64) uint64 { return w.barrierLeaf / 3 }

// CheckInvariants implements sim.InvariantChecked: the engine's sharing
// invariants plus the transport's occupancy bounds — one implementation for
// every hardware-coherent composition instead of a copy per platform.
func (w *HW) CheckInvariants() error {
	if err := w.Eng.CheckInvariants(w.name); err != nil {
		return err
	}
	return w.tr.CheckOccupancy(w.name)
}

var (
	_ sim.Platform         = (*HW)(nil)
	_ sim.InvariantChecked = (*HW)(nil)
)
