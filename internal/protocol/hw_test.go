package protocol

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
)

var (
	busCfg = cache.Config{L1Size: 16 << 10, L1Assoc: 1, L2Size: 1 << 20, L2Assoc: 1, Line: 128}
	dirCfg = cache.Config{L1Size: 16 << 10, L1Assoc: 1, L2Size: 1 << 20, L2Assoc: 4, Line: 64}
)

// slowTransactions runs a read-then-write by one processor on machine pl and
// returns how many interconnect transactions it took (every SnoopBus and
// Directory transaction classifies the access as exactly one local or remote
// miss).
func slowTransactions(t *testing.T, pl *HW) uint64 {
	t.Helper()
	as := mem.NewAddressSpace(4096, 1)
	a := as.AllocPages(4096)
	k := sim.New(pl, sim.Config{NumProcs: 1, Check: true})
	run, err := k.RunErr("read-write", func(p *sim.Proc) {
		p.Read(a)
		p.Write(a)
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	c := run.Procs[0].Counters
	return c.LocalMisses + c.RemoteMisses
}

// The acceptance criterion of the protocol-engine extraction: at least two
// coherence state machines composed with two interconnect models purely via
// configuration. The observable difference between MESI and MSI is the E
// state: a MESI sole reader fills Exclusive and later writes upgrade
// silently in its cache (one interconnect transaction total), while under
// MSI every read fills Shared, so read-then-write always pays a second
// transaction for the upgrade — on either transport.
func TestStateMachineTransportCompositions(t *testing.T) {
	as := mem.NewAddressSpace(4096, 1)
	cases := []struct {
		pl       *HW
		sts      StateKind
		trKind   string
		wantTxns uint64
	}{
		{NewBusMachine("smp", MESI, busCfg, DefaultBusParams(), 1), MESI, "bus", 1},
		{NewBusMachine("smp-msi", MSI, busCfg, DefaultBusParams(), 1), MSI, "bus", 2},
		{NewDirMachine("dsm", MESI, dirCfg, as, DefaultDirParams(), 1), MESI, "directory", 1},
		{NewDirMachine("dsm-msi", MSI, dirCfg, as, DefaultDirParams(), 1), MSI, "directory", 2},
	}
	for _, tc := range cases {
		name := tc.pl.Name()
		if got := tc.pl.States(); got != tc.sts {
			t.Errorf("%s: States() = %v, want %v", name, got, tc.sts)
		}
		if got := tc.pl.Transport().Kind(); got != tc.trKind {
			t.Errorf("%s: Transport().Kind() = %q, want %q", name, got, tc.trKind)
		}
		if got := slowTransactions(t, tc.pl); got != tc.wantTxns {
			t.Errorf("%s (%s × %s): read-then-write took %d transactions, want %d",
				name, tc.sts, tc.trKind, got, tc.wantTxns)
		}
	}
}

// Under MSI no cache may ever hold a line Exclusive; the unified invariant
// checker enforces it. Force the state by hand and check it is caught.
func TestMSICheckerRejectsExclusive(t *testing.T) {
	pl := NewBusMachine("smp-msi", MSI, busCfg, DefaultBusParams(), 1)
	as := mem.NewAddressSpace(4096, 1)
	a := as.AllocPages(4096)
	k := sim.New(pl, sim.Config{NumProcs: 1})
	if _, err := k.RunErr("seed", func(p *sim.Proc) { p.Read(a); p.Barrier() }); err != nil {
		t.Fatal(err)
	}
	if err := pl.CheckInvariants(); err != nil {
		t.Fatalf("clean MSI run fails invariants: %v", err)
	}
	pl.Eng.Caches[0].SetState(a, cache.Exclusive)
	err := pl.CheckInvariants()
	if err == nil {
		t.Fatal("checker accepted an Exclusive line under MSI")
	}
}
