package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	_ "repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/stats"
	"repro/internal/store"
)

func get(t *testing.T, ts *httptest.Server, path string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	code, _, body := get(t, ts, "/healthz")
	if code != 200 || string(body) != "ok\n" {
		t.Errorf("healthz = %d %q, want 200 \"ok\\n\"", code, body)
	}
}

// TestRunByteIdentity: the served body must be the exact bytes `svmsim
// -json` prints for the same spec — cold and again as a cache hit.
func TestRunByteIdentity(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{Memo: harness.NewMemo(st)}))
	defer ts.Close()

	spec := harness.Spec{App: "radix", Version: "orig", Platform: "svm", NumProcs: 4, Scale: 0.125}
	run, err := harness.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := harness.RunJSON(spec, run, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := append(wantJSON, '\n')

	url := "/run?app=radix&version=orig&platform=svm&p=4&scale=0.125"
	code, hdr, cold := get(t, ts, url)
	if code != 200 {
		t.Fatalf("cold /run = %d: %s", code, cold)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !bytes.Equal(cold, want) {
		t.Errorf("cold body differs from svmsim -json bytes:\n got %d bytes\nwant %d bytes", len(cold), len(want))
	}
	_, _, warm := get(t, ts, url)
	if !bytes.Equal(warm, want) {
		t.Error("cache-hit body differs from svmsim -json bytes")
	}
}

func TestRunSpeedupAndErrors(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	code, _, body := get(t, ts, "/run?app=radix&version=local&platform=svm&p=2&scale=0.125&speedup=1")
	if code != 200 || !strings.Contains(string(body), "\"speedup\":") {
		t.Errorf("speedup run = %d, body missing speedup field:\n%s", code, body)
	}

	// Unknown app: a deterministic failure rendered as structured error JSON.
	code, _, body = get(t, ts, "/run?app=nosuchapp&p=2")
	if code != 422 || !strings.Contains(string(body), "\"error\"") {
		t.Errorf("unknown app = %d %q, want 422 with error JSON", code, body)
	}

	// Malformed and unknown parameters are client errors.
	for _, q := range []string{"/run", "/run?app=lu&p=zero", "/run?app=lu&procs=4", "/run?app=lu&scale=-1"} {
		if code, _, _ := get(t, ts, q); code != 400 {
			t.Errorf("%s = %d, want 400", q, code)
		}
	}
}

// blockingMemo returns a memo whose executor blocks until release is
// closed, counting executions.
func blockingMemo(execs *atomic.Uint64, started chan<- struct{}, release <-chan struct{}) *harness.Memo {
	m := harness.NewMemo(nil)
	m.Exec = func(s harness.Spec) (*stats.Run, error) {
		execs.Add(1)
		if started != nil {
			started <- struct{}{}
		}
		<-release
		r := stats.NewRun(s.App, s.NumProcs)
		r.EndTime = 42
		for i := range r.Procs {
			r.Procs[i].Cycles[stats.Compute] = 42
		}
		return r, nil
	}
	return m
}

// TestServerStampede: N concurrent requests for one cold cell perform
// exactly one simulation and every response is byte-identical.
func TestServerStampede(t *testing.T) {
	var execs atomic.Uint64
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	ts := httptest.NewServer(New(Config{Memo: blockingMemo(&execs, started, release), MaxInflight: 8, MaxQueue: 64}))
	defer ts.Close()

	const n = 16
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, bodies[i] = get(t, ts, "/run?app=radix&p=2&scale=0.125")
		}(i)
	}
	<-started // the one execution is in flight; the rest are coalescing
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Errorf("%d concurrent requests executed %d simulations, want exactly 1", n, got)
	}
	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d = %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
}

// TestAdmissionShedsWith429: with one execution slot and a one-deep queue,
// a third distinct cold request is shed with 429 + Retry-After.
func TestAdmissionShedsWith429(t *testing.T) {
	var execs atomic.Uint64
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	ts := httptest.NewServer(New(Config{Memo: blockingMemo(&execs, started, release), MaxInflight: 1, MaxQueue: 1, RetryAfter: 3 * time.Second}))
	defer ts.Close()

	var wg sync.WaitGroup
	resp := func(i int) {
		defer wg.Done()
		code, _, body := get(t, ts, fmt.Sprintf("/run?app=radix&p=%d&scale=0.125", 2+i))
		if code != 200 {
			t.Errorf("occupant %d = %d: %s", i, code, body)
		}
	}
	wg.Add(1)
	go resp(0) // occupies the slot
	<-started
	wg.Add(1)
	go resp(2) // occupies the queue
	// Wait until the queued request is actually counted as queued.
	deadline := time.Now().Add(5 * time.Second)
	srv := ts.Config.Handler.(*Server)
	for srv.mx.queued.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.mx.queued.Load() == 0 {
		t.Fatal("second request never queued")
	}

	code, hdr, _ := get(t, ts, "/run?app=radix&p=8&scale=0.125")
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow request = %d, want 429", code)
	}
	if ra := hdr.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}

	close(release)
	wg.Wait()
	if srv.mx.shed.Load() != 1 {
		t.Errorf("shed counter = %d, want 1", srv.mx.shed.Load())
	}
}

// TestBatchShedMatchesSingleCellShed pins the shed response of the batch
// admission path to the single-cell path, byte for byte: status code,
// Retry-After ceiling and body. The two handlers used to carry cloned copies
// of the response; they now share Server.admit, and this test keeps them
// from drifting apart again.
func TestBatchShedMatchesSingleCellShed(t *testing.T) {
	var execs atomic.Uint64
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	ts := httptest.NewServer(New(Config{Memo: blockingMemo(&execs, started, release), MaxInflight: 1, MaxQueue: 1, RetryAfter: 3 * time.Second}))
	defer ts.Close()
	srv := ts.Config.Handler.(*Server)

	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func(i int) { // one occupies the slot, one the queue
			defer wg.Done()
			get(t, ts, fmt.Sprintf("/run?app=radix&p=%d&scale=0.125", 2+i))
		}(i)
	}
	<-started
	deadline := time.Now().Add(5 * time.Second)
	for srv.mx.queued.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.mx.queued.Load() == 0 {
		t.Fatal("second request never queued")
	}

	singleCode, singleHdr, singleBody := get(t, ts, "/run?app=radix&p=8&scale=0.125")
	resp, err := ts.Client().Post(ts.URL+"/run", "application/json",
		strings.NewReader(`[{"app":"radix","procs":8,"scale":0.125}]`))
	if err != nil {
		t.Fatal(err)
	}
	batchBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	if singleCode != http.StatusTooManyRequests || resp.StatusCode != singleCode {
		t.Fatalf("shed codes: single %d, batch %d, want both 429", singleCode, resp.StatusCode)
	}
	if s, b := singleHdr.Get("Retry-After"), resp.Header.Get("Retry-After"); s != "3" || b != s {
		t.Errorf("Retry-After: single %q, batch %q, want both \"3\"", s, b)
	}
	if !bytes.Equal(singleBody, batchBody) {
		t.Errorf("shed bodies differ: single %q, batch %q", singleBody, batchBody)
	}

	close(release)
	wg.Wait()
}

// TestForwardedRequestBypassesAdmission pins the fleet's deadlock-freedom
// invariant: a request marked X-Cluster-Forwarded is served even when this
// node's slots and queue are saturated. The entry node already holds a
// slot for it; if owners queued forwards behind their own admission, two
// nodes whose slots are all held by requests forwarding to each other
// would wedge until the request deadline.
func TestForwardedRequestBypassesAdmission(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	m := harness.NewMemo(nil)
	m.Exec = func(s harness.Spec) (*stats.Run, error) {
		if s.App == "radix" { // only the saturating cells block
			started <- struct{}{}
			<-release
		}
		r := stats.NewRun(s.App, s.NumProcs)
		r.EndTime = 42
		for i := range r.Procs {
			r.Procs[i].Cycles[stats.Compute] = 42
		}
		return r, nil
	}
	ts := httptest.NewServer(New(Config{Memo: m, MaxInflight: 1, MaxQueue: 1}))
	defer ts.Close()

	var wg sync.WaitGroup
	occupy := func(path string) {
		defer wg.Done()
		get(t, ts, path)
	}
	wg.Add(1)
	go occupy("/run?app=radix&p=2&scale=0.125") // holds the only slot
	<-started
	wg.Add(1)
	go occupy("/run?app=radix&p=4&scale=0.125") // fills the queue
	srv := ts.Config.Handler.(*Server)
	deadline := time.Now().Add(5 * time.Second)
	for srv.mx.queued.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.mx.queued.Load() == 0 {
		t.Fatal("second request never queued")
	}

	// A plain request is shed: the node is genuinely saturated.
	if code, _, _ := get(t, ts, "/run?app=lu&p=2&scale=0.125"); code != http.StatusTooManyRequests {
		t.Fatalf("plain request under saturation = %d, want 429", code)
	}

	// The forwarded request is served right through the saturation.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/run?app=lu&p=2&scale=0.125", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(ForwardHeader, "test-origin")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("forwarded request under saturation = %d, want 200", resp.StatusCode)
	}

	close(release)
	wg.Wait()
}

// TestRequestTimeout: a request whose simulation outlives the deadline gets
// 504, and the simulation still completes and lands in the cache.
func TestRequestTimeout(t *testing.T) {
	var execs atomic.Uint64
	release := make(chan struct{})
	memo := blockingMemo(&execs, nil, release)
	ts := httptest.NewServer(New(Config{Memo: memo, Timeout: 50 * time.Millisecond}))
	defer ts.Close()

	code, _, _ := get(t, ts, "/run?app=radix&p=2&scale=0.125")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("slow request = %d, want 504", code)
	}
	close(release)
	// The orphaned simulation finishes and is memoized: the retry is a hit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _, _ = get(t, ts, "/run?app=radix&p=2&scale=0.125")
		if code == 200 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code != 200 {
		t.Fatalf("retry after timeout = %d, want 200", code)
	}
	if execs.Load() != 1 {
		t.Errorf("executed %d times, want 1 (timeout must not abandon the result)", execs.Load())
	}
}

func TestFiguresEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	code, _, body := get(t, ts, "/figures?fig=fig15&p=2&scale=0.125")
	if code != 200 {
		t.Fatalf("/figures = %d: %s", code, body)
	}
	if !strings.Contains(string(body), "== fig15:") || !strings.Contains(string(body), "Compute") {
		t.Errorf("figure body missing table:\n%s", body)
	}
	if code, _, _ := get(t, ts, "/figures?fig=fig99"); code != 400 {
		t.Errorf("unknown figure = %d, want 400", code)
	}
	if code, _, _ := get(t, ts, "/figures"); code != 400 {
		t.Errorf("missing fig = %d, want 400", code)
	}
}

func TestMetrics(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{Memo: harness.NewMemo(st)}))
	defer ts.Close()

	get(t, ts, "/run?app=radix&p=2&scale=0.125")
	get(t, ts, "/run?app=radix&p=2&scale=0.125") // memo hit
	code, _, body := get(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`svmserve_requests_total{path="/run",code="200"} 2`,
		"svmserve_cache_memo_hits_total 1",
		"svmserve_cache_memo_misses_total 1",
		"svmserve_simulations_total 1",
		"svmstore_puts_total 1",
		"svmstore_gc_runs_total 0",
		"svmstore_gc_evicted_total 0",
		"svmserve_cluster_forward_total 0",
		"svmserve_cluster_fallback_total 0",
		"svmserve_shed_total 0",
		"svmserve_inflight 0",
		"svmserve_queue_depth 0",
		"svmserve_request_seconds_count 2",
		`svmserve_request_seconds_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
