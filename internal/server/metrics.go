package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the request latency
// histogram, chosen to straddle both cache hits (microseconds) and cold
// simulations (seconds).
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// metrics is the server's hand-rolled counter set, exposed at /metrics in
// Prometheus text format. Everything is atomic or mutex-guarded; the hot
// path (observe) touches only atomics.
type metrics struct {
	mu       sync.Mutex
	requests map[string]uint64 // "path|code" -> count

	shed     atomic.Uint64 // admission queue full -> 429
	timeouts atomic.Uint64 // request deadline hit -> 504
	inflight atomic.Int64  // requests currently holding an execution slot
	queued   atomic.Int64  // requests waiting for a slot

	forwards    atomic.Uint64 // cells served by forwarding to their owner
	forwardHits atomic.Uint64 // cells served from the local forward-bytes cache
	fallbacks   atomic.Uint64 // forwards that failed over to local compute
	batchCells  atomic.Uint64 // cells served through POST /run batches
	draining    atomic.Bool   // Drain called; /healthz answers 503

	// Campaign progress, counted from batches marked with the
	// CampaignHeader: done (200), failed (anything else), and retried
	// (cells arriving in a batch marked as a campaign retry attempt —
	// counted in addition to their done/failed outcome).
	campaignDone    atomic.Uint64
	campaignFailed  atomic.Uint64
	campaignRetried atomic.Uint64

	latBuckets []atomic.Uint64 // len(latencyBuckets)+1: +Inf tail
	latCount   atomic.Uint64
	latSumNs   atomic.Uint64
}

func newMetrics() *metrics {
	return &metrics{
		requests:   map[string]uint64{},
		latBuckets: make([]atomic.Uint64, len(latencyBuckets)+1),
	}
}

func (m *metrics) countRequest(path string, code int) {
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s|%d", path, code)]++
	m.mu.Unlock()
}

func (m *metrics) observeLatency(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, s)
	m.latBuckets[i].Add(1)
	m.latCount.Add(1)
	m.latSumNs.Add(uint64(d.Nanoseconds()))
}

// render writes the metrics in Prometheus text exposition format. extra
// appends caller-provided gauge/counter lines (cache and store stats);
// peerHealth, when non-nil, appends the cluster's per-peer up gauges.
func (m *metrics) render(b *strings.Builder, extra map[string]uint64, peerHealth map[string]bool) {
	fmt.Fprintf(b, "# HELP svmserve_requests_total Requests served, by path and status code.\n")
	fmt.Fprintf(b, "# TYPE svmserve_requests_total counter\n")
	m.mu.Lock()
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		path, code, _ := strings.Cut(k, "|")
		fmt.Fprintf(b, "svmserve_requests_total{path=%q,code=%q} %d\n", path, code, m.requests[k])
	}
	m.mu.Unlock()

	fmt.Fprintf(b, "# HELP svmserve_shed_total Requests shed with 429 because the admission queue was full.\n")
	fmt.Fprintf(b, "# TYPE svmserve_shed_total counter\n")
	fmt.Fprintf(b, "svmserve_shed_total %d\n", m.shed.Load())
	fmt.Fprintf(b, "# HELP svmserve_timeouts_total Requests that hit their deadline before the simulation finished.\n")
	fmt.Fprintf(b, "# TYPE svmserve_timeouts_total counter\n")
	fmt.Fprintf(b, "svmserve_timeouts_total %d\n", m.timeouts.Load())
	fmt.Fprintf(b, "# HELP svmserve_inflight Requests currently holding an execution slot.\n")
	fmt.Fprintf(b, "# TYPE svmserve_inflight gauge\n")
	fmt.Fprintf(b, "svmserve_inflight %d\n", m.inflight.Load())
	fmt.Fprintf(b, "# HELP svmserve_queue_depth Requests waiting for an execution slot.\n")
	fmt.Fprintf(b, "# TYPE svmserve_queue_depth gauge\n")
	fmt.Fprintf(b, "svmserve_queue_depth %d\n", m.queued.Load())
	fmt.Fprintf(b, "# HELP svmserve_draining Whether SIGTERM drain has begun (healthz answers 503).\n")
	fmt.Fprintf(b, "# TYPE svmserve_draining gauge\n")
	fmt.Fprintf(b, "svmserve_draining %d\n", b2i(m.draining.Load()))
	fmt.Fprintf(b, "# HELP svmserve_cluster_forward_total Cells served by forwarding to their ring owner.\n")
	fmt.Fprintf(b, "# TYPE svmserve_cluster_forward_total counter\n")
	fmt.Fprintf(b, "svmserve_cluster_forward_total %d\n", m.forwards.Load())
	fmt.Fprintf(b, "# HELP svmserve_cluster_forward_cache_hits_total Cells answered from the local cache of forwarded response bytes.\n")
	fmt.Fprintf(b, "# TYPE svmserve_cluster_forward_cache_hits_total counter\n")
	fmt.Fprintf(b, "svmserve_cluster_forward_cache_hits_total %d\n", m.forwardHits.Load())
	fmt.Fprintf(b, "# HELP svmserve_cluster_fallback_total Failed forwards served by local compute-and-cache instead.\n")
	fmt.Fprintf(b, "# TYPE svmserve_cluster_fallback_total counter\n")
	fmt.Fprintf(b, "svmserve_cluster_fallback_total %d\n", m.fallbacks.Load())
	fmt.Fprintf(b, "# HELP svmserve_batch_cells_total Cells served through POST /run batches.\n")
	fmt.Fprintf(b, "# TYPE svmserve_batch_cells_total counter\n")
	fmt.Fprintf(b, "svmserve_batch_cells_total %d\n", m.batchCells.Load())
	fmt.Fprintf(b, "# HELP svmserve_campaign_cells_total Campaign-marked batch cells served, by outcome.\n")
	fmt.Fprintf(b, "# TYPE svmserve_campaign_cells_total counter\n")
	fmt.Fprintf(b, "svmserve_campaign_cells_total{status=\"done\"} %d\n", m.campaignDone.Load())
	fmt.Fprintf(b, "svmserve_campaign_cells_total{status=\"retried\"} %d\n", m.campaignRetried.Load())
	fmt.Fprintf(b, "svmserve_campaign_cells_total{status=\"failed\"} %d\n", m.campaignFailed.Load())
	if peerHealth != nil {
		fmt.Fprintf(b, "# HELP svmserve_cluster_peer_up Last probed health of each cluster peer (1 up, 0 down).\n")
		fmt.Fprintf(b, "# TYPE svmserve_cluster_peer_up gauge\n")
		peers := make([]string, 0, len(peerHealth))
		for p := range peerHealth {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		for _, p := range peers {
			fmt.Fprintf(b, "svmserve_cluster_peer_up{peer=%q} %d\n", p, b2i(peerHealth[p]))
		}
	}

	ekeys := make([]string, 0, len(extra))
	for k := range extra {
		ekeys = append(ekeys, k)
	}
	sort.Strings(ekeys)
	for _, k := range ekeys {
		fmt.Fprintf(b, "# TYPE %s counter\n%s %d\n", k, k, extra[k])
	}

	fmt.Fprintf(b, "# HELP svmserve_request_seconds Request latency.\n")
	fmt.Fprintf(b, "# TYPE svmserve_request_seconds histogram\n")
	var cum uint64
	for i, ub := range latencyBuckets {
		cum += m.latBuckets[i].Load()
		fmt.Fprintf(b, "svmserve_request_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += m.latBuckets[len(latencyBuckets)].Load()
	fmt.Fprintf(b, "svmserve_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(b, "svmserve_request_seconds_sum %g\n", float64(m.latSumNs.Load())/1e9)
	fmt.Fprintf(b, "svmserve_request_seconds_count %d\n", m.latCount.Load())
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
