// Package server is the simulation-serving layer: an HTTP front end over
// the harness experiment cache, turning the paper's (app, version, platform,
// procs) matrix into a queryable service. Requests for the same cell
// coalesce (the memo's singleflight), hit the persistent store when one is
// attached, and only simulate when genuinely cold — the cache/coalesce/
// admission-control architecture of an inference-serving stack, applied to
// a deterministic simulator.
//
// Endpoints:
//
//	GET /run?app=A&version=V&platform=P&p=N&scale=S[&speedup=1][&freecs=1][&check=1]
//	    The exact bytes `svmsim -json` prints for the same spec (a failed
//	    cell returns the same structured error JSON with status 422).
//	GET /figures?fig=fig16[&p=N][&scale=S][&check=1]   (fig=headline allowed)
//	GET /healthz
//	GET /metrics
//
// Overload behavior: at most MaxInflight requests execute at once; up to
// MaxQueue more wait; beyond that the server sheds load with 429 and a
// Retry-After hint. Every request carries a deadline — if it fires while a
// simulation is still running, the client gets 504 but the simulation
// completes and is cached, so a retry is cheap.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
)

// Config parameterizes a Server. The zero value of each field selects the
// documented default.
type Config struct {
	// Memo is the experiment cache (required). Attach a store to it for
	// persistence; share it to coalesce across servers and runners.
	Memo *harness.Memo
	// MaxInflight bounds concurrently executing requests (default 4).
	MaxInflight int
	// MaxQueue bounds requests waiting for an execution slot before the
	// server sheds with 429 (default 64).
	MaxQueue int
	// Timeout is the per-request deadline (default 120s).
	Timeout time.Duration
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
}

// Server is an http.Handler; build one with New.
type Server struct {
	cfg   Config
	memo  *harness.Memo
	mx    *metrics
	slots chan struct{}
	mux   *http.ServeMux
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Memo == nil {
		cfg.Memo = harness.NewMemo(nil)
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 120 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{
		cfg:   cfg,
		memo:  cfg.Memo,
		mx:    newMetrics(),
		slots: make(chan struct{}, cfg.MaxInflight),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/figures", s.handleFigures)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// statusRecorder captures the response code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(rec, r)
	s.mx.countRequest(r.URL.Path, rec.code)
	if r.URL.Path != "/metrics" && r.URL.Path != "/healthz" {
		s.mx.observeLatency(time.Since(start))
	}
}

var errShed = errors.New("admission queue full")

// acquire claims an execution slot, queueing up to MaxQueue waiters.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	if int(s.mx.queued.Add(1)) > s.cfg.MaxQueue {
		s.mx.queued.Add(-1)
		return errShed
	}
	defer s.mx.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run admits the request, then executes fn in a goroutine that keeps the
// slot until the work finishes even if the deadline fires first — the
// simulation completes, lands in the cache, and inflight stays truthful.
// fn must be safe to complete after the handler has returned.
func (s *Server) run(w http.ResponseWriter, r *http.Request, fn func() (body []byte, contentType string, code int)) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		if errors.Is(err, errShed) {
			s.mx.shed.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second)))
			http.Error(w, "serve: overloaded, admission queue full", http.StatusTooManyRequests)
			return
		}
		s.mx.timeouts.Add(1)
		http.Error(w, "serve: timed out waiting for an execution slot", http.StatusGatewayTimeout)
		return
	}
	type out struct {
		body        []byte
		contentType string
		code        int
	}
	ch := make(chan out, 1)
	s.mx.inflight.Add(1)
	go func() {
		defer func() {
			s.mx.inflight.Add(-1)
			<-s.slots
		}()
		body, ct, code := fn()
		ch <- out{body, ct, code}
	}()
	select {
	case o := <-ch:
		w.Header().Set("Content-Type", o.contentType)
		w.WriteHeader(o.code)
		w.Write(o.body)
	case <-ctx.Done():
		s.mx.timeouts.Add(1)
		http.Error(w, "serve: deadline exceeded (the simulation continues and will be cached)", http.StatusGatewayTimeout)
	}
}

// parseRunSpec builds a harness.Spec from /run query parameters, rejecting
// unknown parameters and malformed values.
func parseRunSpec(q map[string][]string) (spec harness.Spec, speedup bool, err error) {
	one := func(k string) (string, bool, error) {
		vs, ok := q[k]
		if !ok {
			return "", false, nil
		}
		if len(vs) != 1 {
			return "", false, fmt.Errorf("parameter %q given %d times", k, len(vs))
		}
		return vs[0], true, nil
	}
	for k := range q {
		switch k {
		case "app", "version", "platform", "p", "scale", "speedup", "freecs", "check":
		default:
			return spec, false, fmt.Errorf("unknown parameter %q", k)
		}
	}
	var ok bool
	if spec.App, ok, err = one("app"); err != nil {
		return spec, false, err
	} else if !ok || spec.App == "" {
		return spec, false, errors.New("missing required parameter \"app\"")
	}
	if spec.Version, _, err = one("version"); err != nil {
		return spec, false, err
	}
	if spec.Platform, _, err = one("platform"); err != nil {
		return spec, false, err
	}
	if v, ok, e := one("p"); e != nil {
		return spec, false, e
	} else if ok {
		n, e := strconv.Atoi(v)
		if e != nil || n < 1 {
			return spec, false, fmt.Errorf("bad processor count %q (want a positive integer)", v)
		}
		spec.NumProcs = n
	}
	if v, ok, e := one("scale"); e != nil {
		return spec, false, e
	} else if ok {
		f, e := strconv.ParseFloat(v, 64)
		if e != nil || f <= 0 {
			return spec, false, fmt.Errorf("bad scale %q (want a positive number)", v)
		}
		spec.Scale = f
	}
	parseBool := func(k string) (bool, error) {
		v, ok, e := one(k)
		if e != nil || !ok {
			return false, e
		}
		b, e := strconv.ParseBool(v)
		if e != nil {
			return false, fmt.Errorf("bad boolean %q for %q", v, k)
		}
		return b, nil
	}
	if speedup, err = parseBool("speedup"); err != nil {
		return spec, false, err
	}
	if spec.FreeCSFaults, err = parseBool("freecs"); err != nil {
		return spec, false, err
	}
	if spec.Check, err = parseBool("check"); err != nil {
		return spec, false, err
	}
	return spec, speedup, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	spec, speedup, err := parseRunSpec(r.URL.Query())
	if err != nil {
		http.Error(w, "serve: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.run(w, r, func() ([]byte, string, int) { return s.executeRun(spec, speedup) })
}

// executeRun produces the exact bytes `svmsim -json` prints for spec: the
// indented RunJSON document and a trailing newline (or the structured
// RunErrorJSON document for a deterministic failure, with status 422).
func (s *Server) executeRun(spec harness.Spec, speedup bool) (body []byte, contentType string, code int) {
	jsonBody := func(b []byte, jerr error, code int) ([]byte, string, int) {
		if jerr != nil {
			return []byte("serve: " + jerr.Error() + "\n"), "text/plain; charset=utf-8", http.StatusInternalServerError
		}
		return append(b, '\n'), "application/json", code
	}
	run, err := s.memo.Run(spec)
	if err != nil {
		b, jerr := harness.RunErrorJSON(spec, err)
		return jsonBody(b, jerr, http.StatusUnprocessableEntity)
	}
	var spFactor float64
	if speedup {
		// The paper's convention, exactly as svmsim -speedup: T1 of the
		// application's original version on the same platform and scale.
		a, aerr := core.Lookup(spec.App)
		if aerr != nil {
			return []byte("serve: " + aerr.Error() + "\n"), "text/plain; charset=utf-8", http.StatusBadRequest
		}
		baseSpec := spec
		baseSpec.Version = a.Versions()[0].Name
		baseSpec.NumProcs = 1
		baseSpec.FreeCSFaults = false
		base, berr := s.memo.Run(baseSpec)
		if berr != nil {
			b, jerr := harness.RunErrorJSON(baseSpec, berr)
			return jsonBody(b, jerr, http.StatusUnprocessableEntity)
		}
		spFactor = float64(base.EndTime) / float64(run.EndTime)
	}
	b, jerr := harness.RunJSON(spec, run, spFactor)
	return jsonBody(b, jerr, http.StatusOK)
}

func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	for k := range q {
		switch k {
		case "fig", "p", "scale", "check":
		default:
			http.Error(w, "serve: unknown parameter \""+k+"\"", http.StatusBadRequest)
			return
		}
	}
	figID := q.Get("fig")
	if figID == "" {
		http.Error(w, "serve: missing required parameter \"fig\" (fig2..fig17 or headline)", http.StatusBadRequest)
		return
	}
	np := 16
	if v := q.Get("p"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "serve: bad processor count "+strconv.Quote(v), http.StatusBadRequest)
			return
		}
		np = n
	}
	scale := 1.0
	if v := q.Get("scale"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			http.Error(w, "serve: bad scale "+strconv.Quote(v), http.StatusBadRequest)
			return
		}
		scale = f
	}
	check := false
	if v := q.Get("check"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			http.Error(w, "serve: bad boolean for \"check\"", http.StatusBadRequest)
			return
		}
		check = b
	}
	var fig harness.Figure
	if figID != "headline" {
		f, err := harness.FindFigure(figID)
		if err != nil {
			http.Error(w, "serve: "+err.Error(), http.StatusBadRequest)
			return
		}
		fig = f
	}

	// A figures request occupies one admission slot but fans its cells out
	// over its own pool, bounded by the server's inflight budget.
	s.run(w, r, func() ([]byte, string, int) {
		runner := harness.NewRunnerWith(np, scale, s.memo)
		runner.Check = check
		var out string
		var err error
		if figID == "headline" {
			runner.RunParallel(s.cfg.MaxInflight, harness.HeadlineCells())
			out, err = harness.HeadlineSpeedups(runner)
		} else {
			runner.RunParallel(s.cfg.MaxInflight, fig.Cells())
			var body string
			body, err = fig.Run(runner)
			out = fmt.Sprintf("== %s: %s ==\n%s", fig.ID, fig.Title, body)
		}
		if err != nil {
			return []byte("serve: " + err.Error() + "\n"), "text/plain; charset=utf-8", http.StatusInternalServerError
		}
		return []byte(out), "text/plain; charset=utf-8", http.StatusOK
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.memo.Stats()
	extra := map[string]uint64{
		"svmserve_cache_memo_hits_total":    cs.MemoHits,
		"svmserve_cache_memo_misses_total":  cs.MemoMisses,
		"svmserve_cache_store_hits_total":   cs.StoreHits,
		"svmserve_cache_store_misses_total": cs.StoreMisses,
		"svmserve_simulations_total":        cs.Executions,
	}
	if st := s.memo.Store; st != nil {
		ss := st.Stats()
		extra["svmstore_hits_total"] = ss.Hits
		extra["svmstore_misses_total"] = ss.Misses
		extra["svmstore_corrupt_total"] = ss.Corrupt
		extra["svmstore_puts_total"] = ss.Puts
	}
	var b strings.Builder
	s.mx.render(&b, extra)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}
