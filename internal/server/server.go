// Package server is the simulation-serving layer: an HTTP front end over
// the harness experiment cache, turning the paper's (app, version, platform,
// procs) matrix into a queryable service. Requests for the same cell
// coalesce (the memo's singleflight), hit the persistent store when one is
// attached, and only simulate when genuinely cold — the cache/coalesce/
// admission-control architecture of an inference-serving stack, applied to
// a deterministic simulator.
//
// Endpoints:
//
//	GET /run?app=A&version=V&platform=P&p=N&scale=S[&speedup=1][&freecs=1][&check=1]
//	    The exact bytes `svmsim -json` prints for the same spec (a failed
//	    cell returns the same structured error JSON with status 422).
//	POST /run
//	    Batched: a JSON array of cells in, NDJSON envelopes out as each
//	    cell completes; every envelope body is the exact single-cell GET
//	    bytes. See batch.go.
//	GET /figures?fig=fig16[&p=N][&scale=S][&check=1]   (fig=headline allowed)
//	GET /healthz   200 "ok" — or 503 "draining" once Drain has been called
//	GET /metrics
//
// Overload behavior: at most MaxInflight requests execute at once; up to
// MaxQueue more wait; beyond that the server sheds load with 429 and a
// Retry-After hint. Every request carries a deadline — if it fires while a
// simulation is still running, the client gets 504 but the simulation
// completes and is cached, so a retry is cheap.
//
// Cluster behavior (Config.Cluster set): the owner of a /run cell is the
// consistent-hash ring member for its spec memo-key. A request for a cell
// owned by a live peer is forwarded there (one hop, marked with the
// X-Cluster-Forwarded header, so the owner never re-forwards), which makes
// the owner's memo tier a cluster-wide singleflight: a unique cold cell is
// simulated exactly once fleet-wide. Forwarded requests bypass the owner's
// admission control — the entry node already holds a slot for them, and
// queueing them behind the owner's slots can deadlock the fleet (see
// Server.run). Deterministic forwarded responses (200/422) are cached at
// the entry node, so a warm fleet serves every cell locally from every
// node. If the forward fails — owner
// unreachable, owner 5xx, or timeout — the node falls back to local
// compute-and-cache and counts cluster_fallback_total; the client never
// sees a cluster-induced error.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/harness"
)

// Config parameterizes a Server. The zero value of each field selects the
// documented default.
type Config struct {
	// Memo is the experiment cache (required). Attach a store to it for
	// persistence; share it to coalesce across servers and runners.
	Memo *harness.Memo
	// MaxInflight bounds concurrently executing requests (default 4).
	MaxInflight int
	// MaxQueue bounds requests waiting for an execution slot before the
	// server sheds with 429 (default 64).
	MaxQueue int
	// Timeout is the per-request deadline (default 120s).
	Timeout time.Duration
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// Cluster, when non-nil, turns on ownership routing: /run cells owned
	// by a live peer are forwarded to it. See the package comment.
	Cluster *cluster.Cluster
	// MaxBatchCells bounds one POST /run batch (default 1024).
	MaxBatchCells int
}

// Server is an http.Handler; build one with New.
type Server struct {
	cfg       Config
	memo      *harness.Memo
	mx        *metrics
	slots     chan struct{}
	mux       *http.ServeMux
	cluster   *cluster.Cluster
	fwdClient *http.Client

	// fwdCache memoizes the deterministic response bytes a forward brought
	// back (200 results and 422 structured failures), keyed by memo-key.
	// The first request for a non-owned cell pays the hop; warm requests
	// are then local everywhere, so a warm fleet serves at single-node
	// speed instead of spending two HTTP round trips per hit. Grows with
	// unique forwarded cells — the same growth class as the memo itself.
	fwdMu    sync.RWMutex
	fwdCache map[string]fwdEntry
}

// fwdEntry is one cached forwarded response.
type fwdEntry struct {
	body        []byte
	contentType string
	code        int
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Memo == nil {
		cfg.Memo = harness.NewMemo(nil)
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 120 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxBatchCells <= 0 {
		cfg.MaxBatchCells = 1024
	}
	s := &Server{
		cfg:     cfg,
		memo:    cfg.Memo,
		mx:      newMetrics(),
		slots:   make(chan struct{}, cfg.MaxInflight),
		mux:     http.NewServeMux(),
		cluster: cfg.Cluster,
		// Forwarded requests ride the forwarder's request deadline (the
		// context), not a client-level timeout. The transport keeps one
		// idle connection per concurrent forward: with the default
		// transport's 2 idle conns per host, a warm fleet churns a fresh
		// TCP connection for nearly every forwarded hit and p50 balloons.
		fwdClient: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * cfg.MaxInflight,
			MaxIdleConnsPerHost: 4 * cfg.MaxInflight,
			IdleConnTimeout:     90 * time.Second,
		}},
		fwdCache: map[string]fwdEntry{},
	}
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/figures", s.handleFigures)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// statusRecorder captures the response code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(rec, r)
	s.mx.countRequest(r.URL.Path, rec.code)
	if r.URL.Path != "/metrics" && r.URL.Path != "/healthz" {
		s.mx.observeLatency(time.Since(start))
	}
}

var errShed = errors.New("admission queue full")

// acquire claims an execution slot, queueing up to MaxQueue waiters.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	if int(s.mx.queued.Add(1)) > s.cfg.MaxQueue {
		s.mx.queued.Add(-1)
		return errShed
	}
	defer s.mx.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admit claims an execution slot for a handler, writing the error response
// itself when none can be had: 429 with the Retry-After ceiling
// (cfg.RetryAfter rounded up to whole seconds) on shed, 504 on a deadline
// that fired while queued. The single-cell and batch admission paths both go
// through here, so their shed responses cannot drift apart.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) bool {
	err := s.acquire(ctx)
	if err == nil {
		return true
	}
	if errors.Is(err, errShed) {
		s.mx.shed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		http.Error(w, "serve: overloaded, admission queue full", http.StatusTooManyRequests)
		return false
	}
	s.mx.timeouts.Add(1)
	http.Error(w, "serve: timed out waiting for an execution slot", http.StatusGatewayTimeout)
	return false
}

// run admits the request, then executes fn in a goroutine that keeps the
// slot until the work finishes even if the deadline fires first — the
// simulation completes, lands in the cache, and inflight stays truthful.
// fn must be safe to complete after the handler has returned; its ctx is
// canceled when the handler returns, which aborts an in-flight peer
// forward (the owner still finishes and caches) but never a local
// simulation.
//
// With admit=false the request skips admission entirely. Forwarded cluster
// requests run this way: the entry node already holds a slot for them, so
// fleet-wide concurrency stays bounded by the sum of entry admissions —
// and an owner that queued forwards behind its own slots could deadlock
// the fleet (every slot on A held by requests waiting for a slot on B,
// and vice versa, each queued behind the other until the deadline).
func (s *Server) run(w http.ResponseWriter, r *http.Request, admit bool, fn func(ctx context.Context) (body []byte, contentType string, code int)) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	if admit && !s.admit(ctx, w) {
		return
	}
	type out struct {
		body        []byte
		contentType string
		code        int
	}
	ch := make(chan out, 1)
	s.mx.inflight.Add(1)
	go func() {
		defer func() {
			s.mx.inflight.Add(-1)
			if admit {
				<-s.slots
			}
		}()
		body, ct, code := fn(ctx)
		ch <- out{body, ct, code}
	}()
	select {
	case o := <-ch:
		w.Header().Set("Content-Type", o.contentType)
		w.WriteHeader(o.code)
		w.Write(o.body)
	case <-ctx.Done():
		s.mx.timeouts.Add(1)
		http.Error(w, "serve: deadline exceeded (the simulation continues and will be cached)", http.StatusGatewayTimeout)
	}
}

// parseRunSpec builds a harness.Spec from /run query parameters, rejecting
// unknown parameters and malformed values.
func parseRunSpec(q map[string][]string) (spec harness.Spec, speedup bool, err error) {
	one := func(k string) (string, bool, error) {
		vs, ok := q[k]
		if !ok {
			return "", false, nil
		}
		if len(vs) != 1 {
			return "", false, fmt.Errorf("parameter %q given %d times", k, len(vs))
		}
		return vs[0], true, nil
	}
	for k := range q {
		switch k {
		case "app", "version", "platform", "p", "scale", "speedup", "freecs", "check":
		default:
			return spec, false, fmt.Errorf("unknown parameter %q", k)
		}
	}
	var ok bool
	if spec.App, ok, err = one("app"); err != nil {
		return spec, false, err
	} else if !ok || spec.App == "" {
		return spec, false, errors.New("missing required parameter \"app\"")
	}
	if spec.Version, _, err = one("version"); err != nil {
		return spec, false, err
	}
	if spec.Platform, _, err = one("platform"); err != nil {
		return spec, false, err
	}
	if v, ok, e := one("p"); e != nil {
		return spec, false, e
	} else if ok {
		n, e := strconv.Atoi(v)
		if e != nil || n < 1 {
			return spec, false, fmt.Errorf("bad processor count %q (want a positive integer)", v)
		}
		spec.NumProcs = n
	}
	if v, ok, e := one("scale"); e != nil {
		return spec, false, e
	} else if ok {
		f, e := strconv.ParseFloat(v, 64)
		if e != nil || f <= 0 {
			return spec, false, fmt.Errorf("bad scale %q (want a positive number)", v)
		}
		spec.Scale = f
	}
	parseBool := func(k string) (bool, error) {
		v, ok, e := one(k)
		if e != nil || !ok {
			return false, e
		}
		b, e := strconv.ParseBool(v)
		if e != nil {
			return false, fmt.Errorf("bad boolean %q for %q", v, k)
		}
		return b, nil
	}
	if speedup, err = parseBool("speedup"); err != nil {
		return spec, false, err
	}
	if spec.FreeCSFaults, err = parseBool("freecs"); err != nil {
		return spec, false, err
	}
	if spec.Check, err = parseBool("check"); err != nil {
		return spec, false, err
	}
	return spec, speedup, nil
}

// ForwardHeader marks a request that already took its one cluster hop.
// The owner that receives it always computes locally — even if its own
// ring view disagrees about ownership mid-membership-change — so a
// forwarding loop is impossible by construction.
const ForwardHeader = "X-Cluster-Forwarded"

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		s.handleRunBatch(w, r)
		return
	}
	spec, speedup, err := parseRunSpec(r.URL.Query())
	if err != nil {
		http.Error(w, "serve: "+err.Error(), http.StatusBadRequest)
		return
	}
	forwarded := r.Header.Get(ForwardHeader) != ""
	s.run(w, r, !forwarded, func(ctx context.Context) ([]byte, string, int) {
		return s.routeRun(ctx, spec, speedup, forwarded)
	})
}

// routeRun serves one cell, cluster-aware: cells owned by a live peer are
// forwarded there (unless this request is itself a forward), anything
// else — self-owned cells, failed forwards — is computed locally. The
// returned bytes are identical either way: the owner runs the very same
// executeRun this node would. Deterministic forwarded responses are kept
// in fwdCache so only the first request for a non-owned cell pays the hop.
func (s *Server) routeRun(ctx context.Context, spec harness.Spec, speedup, forwarded bool) ([]byte, string, int) {
	if c := s.cluster; c != nil && !forwarded {
		key := spec.MemoKey()
		if speedup {
			key += "|speedup"
		}
		if owner := c.Owner(spec.MemoKey()); owner != "" && owner != c.Self() {
			s.fwdMu.RLock()
			e, hit := s.fwdCache[key]
			s.fwdMu.RUnlock()
			if hit {
				s.mx.forwardHits.Add(1)
				return e.body, e.contentType, e.code
			}
			body, ct, code, err := s.forwardRun(ctx, owner, specQuery(spec, speedup))
			if err == nil {
				s.mx.forwards.Add(1)
				// 200 results and 422 structured failures are deterministic
				// for the cell; keep the bytes so the next request for it
				// is local. Transient statuses (429, 400) are not cached.
				if code == http.StatusOK || code == http.StatusUnprocessableEntity {
					s.fwdMu.Lock()
					s.fwdCache[key] = fwdEntry{body, ct, code}
					s.fwdMu.Unlock()
				}
				return body, ct, code
			}
			if ctx.Err() != nil {
				// The client is gone (deadline/disconnect): don't burn a
				// local simulation nobody will read — the owner is still
				// computing and caching it.
				return []byte("serve: forward canceled: " + err.Error() + "\n"),
					"text/plain; charset=utf-8", http.StatusGatewayTimeout
			}
			s.mx.fallbacks.Add(1)
		}
	}
	return s.executeRun(spec, speedup)
}

// forwardRun proxies one cell request to its owner. A transport error or
// an owner-side 5xx reports failure so the caller can fall back locally;
// semantic statuses (200, 422 structured failures, 4xx including an
// overloaded owner's 429 with its Retry-After hint) pass through.
func (s *Server) forwardRun(ctx context.Context, owner string, query url.Values) (body []byte, contentType string, code int, err error) {
	u := cluster.BaseURL(owner) + "/run?" + query.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, "", 0, err
	}
	req.Header.Set(ForwardHeader, s.cluster.Self())
	resp, err := s.fwdClient.Do(req)
	if err != nil {
		return nil, "", 0, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", 0, err
	}
	if resp.StatusCode >= 500 {
		return nil, "", 0, fmt.Errorf("owner %s: HTTP %d", owner, resp.StatusCode)
	}
	return body, resp.Header.Get("Content-Type"), resp.StatusCode, nil
}

// specQuery renders a spec back into canonical /run query parameters, so
// a forwarded request parses into the identical spec on the owner (and
// therefore into byte-identical response bytes — RunJSON applies the same
// defaults on both sides).
func specQuery(spec harness.Spec, speedup bool) url.Values {
	q := url.Values{}
	q.Set("app", spec.App)
	if spec.Version != "" {
		q.Set("version", spec.Version)
	}
	if spec.Platform != "" {
		q.Set("platform", spec.Platform)
	}
	if spec.NumProcs != 0 {
		q.Set("p", strconv.Itoa(spec.NumProcs))
	}
	if spec.Scale != 0 {
		q.Set("scale", strconv.FormatFloat(spec.Scale, 'g', -1, 64))
	}
	if spec.FreeCSFaults {
		q.Set("freecs", "1")
	}
	if spec.Check {
		q.Set("check", "1")
	}
	if speedup {
		q.Set("speedup", "1")
	}
	return q
}

// executeRun produces the exact bytes `svmsim -json` prints for spec: the
// indented RunJSON document and a trailing newline (or the structured
// RunErrorJSON document for a deterministic failure, with status 422).
func (s *Server) executeRun(spec harness.Spec, speedup bool) (body []byte, contentType string, code int) {
	return CellBody(s.memo, spec, speedup)
}

// CellBody renders one cell through a memo into the canonical single-cell
// document: the exact bytes `svmsim -json` prints, trailing newline
// included, with code 200 — or the structured RunErrorJSON document with
// code 422 for a deterministic failure. It is the one place those bytes
// are produced, shared by the HTTP handlers and by internal/campaign's
// local execution path, so a campaign's result fingerprints are identical
// whether a cell was computed in-process or fetched from a serve fleet.
func CellBody(memo *harness.Memo, spec harness.Spec, speedup bool) (body []byte, contentType string, code int) {
	jsonBody := func(b []byte, jerr error, code int) ([]byte, string, int) {
		if jerr != nil {
			return []byte("serve: " + jerr.Error() + "\n"), "text/plain; charset=utf-8", http.StatusInternalServerError
		}
		return append(b, '\n'), "application/json", code
	}
	run, err := memo.Run(spec)
	if err != nil {
		b, jerr := harness.RunErrorJSON(spec, err)
		return jsonBody(b, jerr, http.StatusUnprocessableEntity)
	}
	var spFactor float64
	if speedup {
		// The paper's convention, exactly as svmsim -speedup: T1 of the
		// application's original version on the same platform and scale.
		a, aerr := core.Lookup(spec.App)
		if aerr != nil {
			return []byte("serve: " + aerr.Error() + "\n"), "text/plain; charset=utf-8", http.StatusBadRequest
		}
		baseSpec := spec
		baseSpec.Version = a.Versions()[0].Name
		baseSpec.NumProcs = 1
		baseSpec.FreeCSFaults = false
		base, berr := memo.Run(baseSpec)
		if berr != nil {
			b, jerr := harness.RunErrorJSON(baseSpec, berr)
			return jsonBody(b, jerr, http.StatusUnprocessableEntity)
		}
		spFactor = float64(base.EndTime) / float64(run.EndTime)
	}
	b, jerr := harness.RunJSON(spec, run, spFactor)
	return jsonBody(b, jerr, http.StatusOK)
}

func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	for k := range q {
		switch k {
		case "fig", "p", "scale", "check":
		default:
			http.Error(w, "serve: unknown parameter \""+k+"\"", http.StatusBadRequest)
			return
		}
	}
	figID := q.Get("fig")
	if figID == "" {
		http.Error(w, "serve: missing required parameter \"fig\" (fig2..fig17 or headline)", http.StatusBadRequest)
		return
	}
	np := 16
	if v := q.Get("p"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "serve: bad processor count "+strconv.Quote(v), http.StatusBadRequest)
			return
		}
		np = n
	}
	scale := 1.0
	if v := q.Get("scale"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			http.Error(w, "serve: bad scale "+strconv.Quote(v), http.StatusBadRequest)
			return
		}
		scale = f
	}
	check := false
	if v := q.Get("check"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			http.Error(w, "serve: bad boolean for \"check\"", http.StatusBadRequest)
			return
		}
		check = b
	}
	var fig harness.Figure
	if figID != "headline" {
		f, err := harness.FindFigure(figID)
		if err != nil {
			http.Error(w, "serve: "+err.Error(), http.StatusBadRequest)
			return
		}
		fig = f
	}

	// A figures request occupies one admission slot but fans its cells out
	// over its own pool, bounded by the server's inflight budget. Figure
	// cells are never cluster-routed: the matrix is a local batch
	// computation, and its cells still land in the shared memo/store.
	s.run(w, r, true, func(context.Context) ([]byte, string, int) {
		runner := harness.NewRunnerWith(np, scale, s.memo)
		runner.Check = check
		var out string
		var err error
		if figID == "headline" {
			runner.RunParallel(s.cfg.MaxInflight, harness.HeadlineCells())
			out, err = harness.HeadlineSpeedups(runner)
		} else {
			runner.RunParallel(s.cfg.MaxInflight, fig.Cells())
			var body string
			body, err = fig.Run(runner)
			out = fmt.Sprintf("== %s: %s ==\n%s", fig.ID, fig.Title, body)
		}
		if err != nil {
			return []byte("serve: " + err.Error() + "\n"), "text/plain; charset=utf-8", http.StatusInternalServerError
		}
		return []byte(out), "text/plain; charset=utf-8", http.StatusOK
	})
}

// Drain flips /healthz to 503 so cluster peers (and any real load
// balancer) stop routing here. Call it when SIGTERM shutdown begins,
// before http.Server.Shutdown: in-flight and still-arriving requests are
// served normally through the drain window, but no new traffic is steered
// in. Irreversible for the life of the Server.
func (s *Server) Drain() { s.mx.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.mx.draining.Load() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.mx.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.memo.Stats()
	extra := map[string]uint64{
		"svmserve_cache_memo_hits_total":    cs.MemoHits,
		"svmserve_cache_memo_misses_total":  cs.MemoMisses,
		"svmserve_cache_store_hits_total":   cs.StoreHits,
		"svmserve_cache_store_misses_total": cs.StoreMisses,
		"svmserve_simulations_total":        cs.Executions,
	}
	if st := s.memo.Store; st != nil {
		ss := st.Stats()
		extra["svmstore_hits_total"] = ss.Hits
		extra["svmstore_misses_total"] = ss.Misses
		extra["svmstore_corrupt_total"] = ss.Corrupt
		extra["svmstore_puts_total"] = ss.Puts
		extra["svmstore_gc_runs_total"] = ss.GCRuns
		extra["svmstore_gc_evicted_total"] = ss.GCEvicted
	}
	var health map[string]bool
	if s.cluster != nil {
		health = s.cluster.Health()
	}
	var b strings.Builder
	s.mx.render(&b, extra, health)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}
