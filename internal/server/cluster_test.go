package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	_ "repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/harness"
	"repro/internal/stats"
)

// fleet is an in-process cluster of n Servers, each with its own memo
// (separate caches, like separate processes) and a shared static
// membership list. Probing is never started: every peer stays in its
// optimistic up state, which is the steady state of a healthy fleet.
type fleet struct {
	addrs   []string
	servers []*Server
	memos   []*harness.Memo
	execs   []*atomic.Uint64
	httpds  []*http.Server
}

// newFleet builds and starts an n-node fleet. When countOnly is true,
// every node gets a fake executor that counts executions and returns a
// deterministic result (fast); otherwise nodes run real simulations.
func newFleet(t *testing.T, n int, countOnly bool) *fleet {
	t.Helper()
	f := &fleet{}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		f.addrs = append(f.addrs, l.Addr().String())
	}
	for i := 0; i < n; i++ {
		execs := &atomic.Uint64{}
		memo := harness.NewMemo(nil)
		if countOnly {
			memo.Exec = func(s harness.Spec) (*stats.Run, error) {
				execs.Add(1)
				r := stats.NewRun(s.App, s.NumProcs)
				r.EndTime = 42
				for p := range r.Procs {
					r.Procs[p].Cycles[stats.Compute] = 42
				}
				return r, nil
			}
		} else {
			memo.Exec = func(s harness.Spec) (*stats.Run, error) {
				execs.Add(1)
				return harness.Execute(s)
			}
		}
		cl, err := cluster.New(cluster.Config{Self: f.addrs[i], Peers: f.addrs, VNodes: 32})
		if err != nil {
			t.Fatal(err)
		}
		srv := New(Config{Memo: memo, Cluster: cl, MaxInflight: 8, MaxQueue: 128})
		hs := &http.Server{Handler: srv}
		go hs.Serve(listeners[i])
		f.servers = append(f.servers, srv)
		f.memos = append(f.memos, memo)
		f.execs = append(f.execs, execs)
		f.httpds = append(f.httpds, hs)
	}
	t.Cleanup(func() {
		for _, hs := range f.httpds {
			hs.Close()
		}
	})
	return f
}

func (f *fleet) get(t *testing.T, node int, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + f.addrs[node] + path)
	if err != nil {
		t.Fatalf("GET node %d %s: %v", node, path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func (f *fleet) totalExecs() uint64 {
	var total uint64
	for _, e := range f.execs {
		total += e.Load()
	}
	return total
}

// ownerIndex returns which fleet node owns spec.
func (f *fleet) ownerIndex(t *testing.T, spec harness.Spec) int {
	t.Helper()
	owner := f.servers[0].cluster.Owner(spec.MemoKey())
	for i, a := range f.addrs {
		if a == owner {
			return i
		}
	}
	t.Fatalf("owner %q not a fleet member %v", owner, f.addrs)
	return -1
}

// nonOwnedSpec returns a spec owned by some node other than `not`, so a
// request to `not` must forward.
func (f *fleet) nonOwnedSpec(t *testing.T, not int) (harness.Spec, int) {
	t.Helper()
	for p := 1; p <= 64; p++ {
		spec := harness.Spec{App: "radix", Version: "orig", Platform: "svm", NumProcs: p, Scale: 0.125}
		if o := f.ownerIndex(t, spec); o != not {
			return spec, o
		}
	}
	t.Fatal("no spec found owned by another node")
	return harness.Spec{}, -1
}

// TestFleetStampede is the cluster generalization of the single-node
// stampede test: N nodes × M concurrent clients all asking every node for
// the same cold cell must run exactly ONE simulation fleet-wide, and all
// N×M responses must be byte-identical — cross-node singleflight falling
// out of ownership routing plus the owner's memo tier.
func TestFleetStampede(t *testing.T) {
	const nodes, clientsPerNode = 3, 8
	f := newFleet(t, nodes, true)

	path := "/run?app=radix&p=2&scale=0.125"
	var wg sync.WaitGroup
	codes := make([]int, nodes*clientsPerNode)
	bodies := make([][]byte, nodes*clientsPerNode)
	for node := 0; node < nodes; node++ {
		for c := 0; c < clientsPerNode; c++ {
			wg.Add(1)
			go func(i, node int) {
				defer wg.Done()
				codes[i], bodies[i] = f.get(t, node, path)
			}(node*clientsPerNode+c, node)
		}
	}
	wg.Wait()

	for i := range bodies {
		if codes[i] != 200 {
			t.Fatalf("request %d = %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := f.totalExecs(); got != 1 {
		t.Errorf("fleet executed %d simulations for one unique cell, want exactly 1", got)
	}
}

// TestForwardByteIdentity: a real (non-stubbed) cell requested from a
// non-owner node returns exactly the bytes `svmsim -json` prints — the
// forwarded hop is invisible in the payload — and the simulation runs on
// the owner, not the entry node.
func TestForwardByteIdentity(t *testing.T) {
	f := newFleet(t, 2, false)
	spec, owner := f.nonOwnedSpec(t, 0)
	entry := 0

	run, err := harness.Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := harness.RunJSON(spec, run, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := append(wantJSON, '\n')

	path := fmt.Sprintf("/run?app=%s&version=%s&platform=%s&p=%d&scale=%g",
		spec.App, spec.Version, spec.Platform, spec.NumProcs, spec.Scale)
	code, body := f.get(t, entry, path)
	if code != 200 {
		t.Fatalf("forwarded /run = %d: %s", code, body)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("forwarded body differs from svmsim -json bytes (%d vs %d bytes)", len(body), len(want))
	}
	if got := f.execs[owner].Load(); got != 1 {
		t.Errorf("owner executed %d simulations, want 1", got)
	}
	if got := f.execs[entry].Load(); got != 0 {
		t.Errorf("entry node executed %d simulations, want 0 (it must forward)", got)
	}
	if got := f.servers[entry].mx.forwards.Load(); got != 1 {
		t.Errorf("entry node forward counter = %d, want 1", got)
	}

	// A second request through the entry node is served from its forward
	// cache: same bytes, no second hop, owner still ran only 1 simulation.
	code, warm := f.get(t, entry, path)
	if code != 200 || !bytes.Equal(warm, want) {
		t.Errorf("cached forwarded body differs (code %d)", code)
	}
	if got := f.servers[entry].mx.forwards.Load(); got != 1 {
		t.Errorf("entry forward counter after warm hit = %d, want 1 (no re-forward)", got)
	}
	if got := f.servers[entry].mx.forwardHits.Load(); got != 1 {
		t.Errorf("entry forward-cache hits = %d, want 1", got)
	}
	if got := f.execs[owner].Load(); got != 1 {
		t.Errorf("owner executed %d simulations after warm hit, want 1", got)
	}

	// A request sent straight to the owner is served locally: same bytes,
	// no new forward.
	code, direct := f.get(t, owner, path)
	if code != 200 || !bytes.Equal(direct, want) {
		t.Errorf("direct-to-owner body differs (code %d)", code)
	}
	if got := f.servers[owner].mx.forwards.Load(); got != 0 {
		t.Errorf("owner forward counter = %d, want 0", got)
	}
}

// TestForwardLoopGuard: a request already marked X-Cluster-Forwarded is
// computed locally even by a node that does not own the cell, so
// disagreeing ring views can never bounce a request around the fleet.
func TestForwardLoopGuard(t *testing.T) {
	f := newFleet(t, 2, true)
	spec, _ := f.nonOwnedSpec(t, 0)

	req, err := http.NewRequest(http.MethodGet, "http://"+f.addrs[0]+"/run?"+specQuery(spec, false).Encode(), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(ForwardHeader, "test-origin")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("forwarded-marked request = %d", resp.StatusCode)
	}
	if got := f.execs[0].Load(); got != 1 {
		t.Errorf("non-owner executed %d simulations for a forwarded-marked request, want 1 (local)", got)
	}
	if got := f.servers[0].mx.forwards.Load(); got != 0 {
		t.Errorf("non-owner re-forwarded a forwarded request (%d forwards)", got)
	}
}

// TestFallbackOnDeadOwner: when the owner is unreachable but still marked
// up (probe hasn't noticed yet), the forward fails and the entry node
// falls back to local compute-and-cache — the client sees a normal 200,
// never a cluster error — and counts cluster_fallback_total.
func TestFallbackOnDeadOwner(t *testing.T) {
	f := newFleet(t, 3, true)
	spec, owner := f.nonOwnedSpec(t, 0)
	f.httpds[owner].Close() // owner dies without its peers' knowledge

	code, body := f.get(t, 0, "/run?"+specQuery(spec, false).Encode())
	if code != 200 {
		t.Fatalf("fallback /run = %d: %s", code, body)
	}
	if got := f.execs[0].Load(); got != 1 {
		t.Errorf("entry node executed %d simulations, want 1 (local fallback)", got)
	}
	if got := f.servers[0].mx.fallbacks.Load(); got != 1 {
		t.Errorf("fallback counter = %d, want 1", got)
	}
	if got := f.servers[0].mx.forwards.Load(); got != 0 {
		t.Errorf("forward counter = %d, want 0 (the forward failed)", got)
	}
}

// TestBatchRun: POST /run streams one NDJSON envelope per cell, each body
// byte-identical to the single-cell GET response (including structured
// 422 failures), with per-cell request errors carried in the envelope.
func TestBatchRun(t *testing.T) {
	f := newFleet(t, 2, false) // real executor: the bad-app cell must 422

	batch := `[
		{"app":"radix","version":"orig","platform":"svm","procs":2,"scale":0.125},
		{"app":"radix","version":"orig","platform":"svm","procs":3,"scale":0.125},
		{"app":"","procs":2},
		{"app":"nosuchapp","procs":2}
	]`
	resp, err := http.Post("http://"+f.addrs[0]+"/run", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST /run = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}

	results := map[int]BatchResult{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r BatchResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		results[r.Index] = r
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d result lines, want 4: %v", len(results), results)
	}

	// Cells 0 and 1 succeed; their bodies are the exact single-GET bytes.
	for _, idx := range []int{0, 1} {
		r := results[idx]
		if r.Code != 200 || r.Error != "" {
			t.Fatalf("cell %d = code %d error %q", idx, r.Code, r.Error)
		}
		_, want := f.get(t, 0, fmt.Sprintf("/run?app=radix&version=orig&platform=svm&p=%d&scale=0.125", 2+idx))
		if r.Body != string(want) {
			t.Errorf("cell %d batch body differs from GET body", idx)
		}
	}
	// Cell 2 is malformed: envelope-level 400.
	if r := results[2]; r.Code != 400 || r.Error == "" || r.Body != "" {
		t.Errorf("malformed cell = %+v, want code 400 with error", r)
	}
	// Cell 3 fails deterministically: 422 with the structured error JSON.
	if r := results[3]; r.Code != 422 || !strings.Contains(r.Body, `"error"`) {
		t.Errorf("failing cell = %+v, want code 422 with error JSON body", r)
	}

	// Three unique cells reached an executor (two successes plus the
	// deterministic nosuchapp failure, which is computed-and-cached like
	// any result): exactly 3 executions fleet-wide, wherever the owners
	// were. The malformed cell never executes.
	if got := f.totalExecs(); got != 3 {
		t.Errorf("fleet executed %d simulations for 3 unique cells, want 3", got)
	}
}

// TestHealthzDrain pins the load-balancer contract: /healthz answers 200
// until drain begins, 503 after, while /run keeps serving through the
// drain window.
func TestHealthzDrain(t *testing.T) {
	f := newFleet(t, 2, true)
	if code, body := f.get(t, 0, "/healthz"); code != 200 || string(body) != "ok\n" {
		t.Fatalf("pre-drain healthz = %d %q", code, body)
	}
	f.servers[0].Drain()
	if code, body := f.get(t, 0, "/healthz"); code != 503 || string(body) != "draining\n" {
		t.Errorf("draining healthz = %d %q, want 503 \"draining\\n\"", code, body)
	}
	if code, _ := f.get(t, 0, "/run?app=radix&p=2&scale=0.125"); code != 200 {
		t.Errorf("in-drain /run = %d, want 200 (drain only stops NEW routing, not service)", code)
	}
	if code, _ := f.get(t, 1, "/healthz"); code != 200 {
		t.Errorf("peer healthz affected by another node's drain")
	}
	_, body := f.get(t, 0, "/metrics")
	if !strings.Contains(string(body), "svmserve_draining 1") {
		t.Error("/metrics missing svmserve_draining 1")
	}
}

// TestClusterMetrics: the cluster counters and per-peer gauges appear in
// /metrics in Prometheus text format.
func TestClusterMetrics(t *testing.T) {
	f := newFleet(t, 2, true)
	spec, _ := f.nonOwnedSpec(t, 0)
	if code, _ := f.get(t, 0, "/run?"+specQuery(spec, false).Encode()); code != 200 {
		t.Fatal("forwarded run failed")
	}
	_, body := f.get(t, 0, "/metrics")
	for _, want := range []string{
		"svmserve_cluster_forward_total 1",
		"svmserve_cluster_forward_cache_hits_total 0",
		"svmserve_cluster_fallback_total 0",
		fmt.Sprintf("svmserve_cluster_peer_up{peer=%q} 1", f.addrs[1]),
		"svmserve_draining 0",
		"svmserve_batch_cells_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
