package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/harness"
)

// BatchCell is one requested cell of a POST /run batch. Field names match
// the single-cell JSON output (`procs`, not `p`); zero values take the
// same defaults as the GET endpoint (version "orig", platform "svm",
// procs 16, scale 1).
type BatchCell struct {
	App      string  `json:"app"`
	Version  string  `json:"version,omitempty"`
	Platform string  `json:"platform,omitempty"`
	Procs    int     `json:"procs,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	FreeCS   bool    `json:"freecs,omitempty"`
	Check    bool    `json:"check,omitempty"`
	Speedup  bool    `json:"speedup,omitempty"`
}

// BatchResult is one NDJSON line of a POST /run response: the envelope
// around the exact bytes the single-cell GET endpoint returns for the
// same cell. Results stream in completion order; Index ties each line
// back to its position in the request array. Exactly one of Body / Error
// is set: Body carries the byte-identical `svmsim -json` document
// (including its trailing newline, and including 422 structured-error
// documents) as a JSON string, Error carries a cell-level request error
// (e.g. a malformed processor count) with Code 400.
type BatchResult struct {
	Index int    `json:"index"`
	Code  int    `json:"code"`
	Body  string `json:"body,omitempty"`
	Error string `json:"error,omitempty"`
}

// spec converts the cell to a harness spec, validating the fields the
// query parser would reject.
func (c BatchCell) spec() (harness.Spec, error) {
	if c.App == "" {
		return harness.Spec{}, fmt.Errorf("missing required field \"app\"")
	}
	if c.Procs < 0 {
		return harness.Spec{}, fmt.Errorf("bad processor count %d (want a positive integer)", c.Procs)
	}
	if c.Scale < 0 {
		return harness.Spec{}, fmt.Errorf("bad scale %g (want a positive number)", c.Scale)
	}
	return harness.Spec{
		App:          c.App,
		Version:      c.Version,
		Platform:     c.Platform,
		NumProcs:     c.Procs,
		Scale:        c.Scale,
		FreeCSFaults: c.FreeCS,
		Check:        c.Check,
	}, nil
}

// CampaignHeader, when present on a POST /run batch, names the campaign
// the batch belongs to; the server then counts each cell's outcome in the
// svmserve_campaign_cells_total metric (status="done" for 200, "failed"
// otherwise). CampaignRetryHeader additionally marks a batch that a
// campaign client is re-sending after a transient failure; its cells are
// also counted under status="retried". The headers only drive metrics —
// execution and routing are identical with or without them.
const (
	CampaignHeader      = "X-Campaign"
	CampaignRetryHeader = "X-Campaign-Retry"
)

// handleRunBatch serves POST /run: a JSON array of cells in, one NDJSON
// BatchResult per cell out, flushed as each completes. The batch occupies
// one admission slot (like /figures) and fans its cells out over its own
// pool bounded by MaxInflight; each cell takes the same cluster-routing
// path as a single GET, so a batch spanning many owners fans out across
// the fleet and still computes every unique cold cell exactly once.
func (s *Server) handleRunBatch(w http.ResponseWriter, r *http.Request) {
	var cells []BatchCell
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&cells); err != nil {
		http.Error(w, "serve: parsing batch body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(cells) == 0 {
		http.Error(w, "serve: empty batch (want a JSON array of cells)", http.StatusBadRequest)
		return
	}
	if len(cells) > s.cfg.MaxBatchCells {
		http.Error(w, fmt.Sprintf("serve: batch of %d cells exceeds the %d-cell limit", len(cells), s.cfg.MaxBatchCells), http.StatusBadRequest)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	// One admission slot for the whole batch; shedding and slot-timeout
	// behavior match single requests.
	if !s.admit(ctx, w) {
		return
	}
	defer func() { <-s.slots }()
	s.mx.inflight.Add(1)
	defer s.mx.inflight.Add(-1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var wmu sync.Mutex
	emit := func(res BatchResult) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := enc.Encode(res); err != nil {
			return // client gone; workers still finish and cache
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	forwarded := r.Header.Get(ForwardHeader) != ""
	campaign := r.Header.Get(CampaignHeader) != ""
	campaignRetry := campaign && r.Header.Get(CampaignRetryHeader) != ""
	workers := s.cfg.MaxInflight
	if workers > len(cells) {
		workers = len(cells)
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				s.mx.batchCells.Add(1)
				if campaignRetry {
					s.mx.campaignRetried.Add(1)
				}
				spec, err := cells[i].spec()
				if err != nil {
					if campaign {
						s.mx.campaignFailed.Add(1)
					}
					emit(BatchResult{Index: i, Code: http.StatusBadRequest, Error: err.Error()})
					continue
				}
				body, _, code := s.routeRun(ctx, spec, cells[i].Speedup, forwarded)
				if campaign {
					if code == http.StatusOK {
						s.mx.campaignDone.Add(1)
					} else {
						s.mx.campaignFailed.Add(1)
					}
				}
				emit(BatchResult{Index: i, Code: code, Body: string(body)})
			}
		}()
	}
	for i := range cells {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
}
