package svmsmp

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Regression: an intra-cluster write UPGRADE (write to a line the writer
// already holds Shared) must leave the writer's own cache in Modified. The
// bug: the protocol recorded the writer as line owner but cache.Access keeps
// a hit's existing state, so the line stayed Shared — inconsistent with the
// cluster's line table, and every later write by the owner paid a fresh bus
// upgrade for a line it already owned.
func TestWriteUpgradeLeavesOwnerModified(t *testing.T) {
	as := mem.NewAddressSpace(4096, 8)
	pl := New(as, DefaultParams(), 8)
	k := sim.New(pl, sim.Config{NumProcs: 8, Check: true})
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	_, err := k.RunErr("upgrade", func(p *sim.Proc) {
		if p.ID() == 0 {
			p.Read(a)
		}
		p.Barrier()
		if p.ID() == 1 { // cluster mate of 0
			p.Read(a) // both caches hold the line Shared
		}
		p.Barrier()
		if p.ID() == 1 {
			p.Write(a) // bus upgrade: invalidate proc 0, take ownership
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, st := pl.caches[1].Probe(a); st != cache.Modified {
		t.Errorf("writer's cache holds upgraded line in state %s, want M", st)
	}
}

// Regression: when a remote cluster's diff is applied at the page's home
// cluster, the home cluster's caches are invalidated AND its line table must
// drop the page's lines. The bug: only the caches were invalidated, leaving
// sharer/owner entries for lines no cache held.
func TestDiffApplyDropsHomeClusterLines(t *testing.T) {
	as := mem.NewAddressSpace(4096, 8)
	pl := New(as, DefaultParams(), 8)
	k := sim.New(pl, sim.Config{NumProcs: 8, Check: true})
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	_, err := k.RunErr("diffapply", func(p *sim.Proc) {
		if p.ID() == 0 {
			p.Read(a) // home cluster caches the line
		}
		p.Barrier()
		if p.ID() == 4 { // different cluster
			p.Lock(1)
			p.Write(a)
			p.Unlock(1) // diff flushed and applied at home cluster
		}
		p.Barrier()
	})
	// The checker's final sweep cross-checks line tables against cache
	// contents; a stale home-cluster entry fails the run.
	if err != nil {
		t.Fatal(err)
	}
	la := a / uint64(pl.LineSize())
	if e, ok := pl.lineEng[0].Lines[la]; ok && e.Sharers != 0 {
		t.Errorf("home cluster line table still lists sharers %#x after diff apply", e.Sharers)
	}
}
