package svmsmp

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/sim"
)

// CheckInvariants implements sim.InvariantChecked for the two-level model.
// The page-grained HLRC invariants from internal/svm hold here at CLUSTER
// granularity — in particular the twin/diff balance, which only balances
// when aggregated over a cluster, because the write trap (TwinsMade) lands
// on the accessing processor while the flush (DiffsCreated) lands on
// whichever cluster mate releases. On top of that, the intra-cluster line
// directory must agree exactly with the member caches: a sharer bit is set
// if and only if that processor's cache holds the line, and an owner holds
// it in Modified or Exclusive.
func (s *Platform) CheckInvariants() error {
	for cid, c := range s.cl {
		if c.vc[cid] != c.interval {
			return fmt.Errorf("svmsmp: cluster %d's own vector-clock entry is %d but its interval is %d", cid, c.vc[cid], c.interval)
		}
		if got, want := len(s.writeLog[cid]), int(c.interval)+1; got != want {
			return fmt.Errorf("svmsmp: cluster %d's write log has %d interval entries, want %d", cid, got, want)
		}
		for q, cq := range s.cl {
			if c.vc[q] > cq.interval {
				return fmt.Errorf("svmsmp: cluster %d knows interval %d of cluster %d, which has only reached %d", cid, c.vc[q], q, cq.interval)
			}
		}
		seen := make(map[pageID]bool, len(c.dirtyLst))
		var pendingTwins uint64
		for _, pg := range c.dirtyLst {
			if seen[pg] {
				return fmt.Errorf("svmsmp: cluster %d's dirty list holds page %d twice", cid, pg)
			}
			seen[pg] = true
			if !c.dirty[pg] {
				return fmt.Errorf("svmsmp: cluster %d's dirty list holds page %d but its dirty bit is clear", cid, pg)
			}
			if !c.valid[pg] {
				return fmt.Errorf("svmsmp: cluster %d has page %d dirty but not valid", cid, pg)
			}
			if s.homeCluster(pg*s.P.SVM.PageSize) != cid {
				pendingTwins++
			}
		}
		for pg, d := range c.dirty {
			if d && !seen[pageID(pg)] {
				return fmt.Errorf("svmsmp: cluster %d has page %d marked dirty but missing from the dirty list", cid, pg)
			}
		}
		seenPend := make(map[pageID]bool, len(c.pending))
		for _, pg := range c.pending {
			if seenPend[pg] {
				return fmt.Errorf("svmsmp: cluster %d's pending-notice list holds page %d twice", cid, pg)
			}
			seenPend[pg] = true
		}
		var made, diffed uint64
		for q := cid * s.P.ClusterSize; q < (cid+1)*s.P.ClusterSize && q < s.np; q++ {
			cnt := s.k.Counters(q)
			made += cnt.TwinsMade
			diffed += cnt.DiffsCreated
		}
		if made != diffed+pendingTwins {
			return fmt.Errorf("svmsmp: cluster %d twin/diff balance broken: %d twins made != %d diffs + %d pending",
				cid, made, diffed, pendingTwins)
		}
		if err := c.nic.CheckOccupancy(fmt.Sprintf("svmsmp: cluster %d NIC", cid)); err != nil {
			return err
		}
		if err := c.bus.CheckOccupancy(fmt.Sprintf("svmsmp: cluster %d bus", cid)); err != nil {
			return err
		}
		if err := s.checkLines(cid, c); err != nil {
			return err
		}
	}
	ids := make([]int, 0, len(s.lockVC))
	for id := range s.lockVC {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		for q, iv := range s.lockVC[id] {
			if iv > s.cl[q].interval {
				return fmt.Errorf("svmsmp: lock %d's vector clock knows interval %d of cluster %d, which has only reached %d", id, iv, q, s.cl[q].interval)
			}
		}
	}
	return nil
}

// checkLines cross-checks cluster cid's line directory against its member
// caches, in both directions.
func (s *Platform) checkLines(cid int, c *cluster) error {
	lineSz := uint64(s.LineSize())
	members := s.P.ClusterSize
	if rest := s.np - cid*s.P.ClusterSize; rest < members {
		members = rest
	}
	// Directory -> caches. Map iteration order does not matter for a passing
	// sweep; collect violations deterministically by checking each entry
	// fully before moving on and reporting the lowest offending line.
	las := make([]uint64, 0, len(c.lines))
	for la := range c.lines {
		las = append(las, la)
	}
	sort.Slice(las, func(i, j int) bool { return las[i] < las[j] })
	for _, la := range las {
		e := c.lines[la]
		if e.sharers>>uint(members) != 0 {
			return fmt.Errorf("svmsmp: cluster %d line %#x has sharer bits %#x beyond its %d members", cid, la, e.sharers, members)
		}
		if e.owner >= 0 {
			if int(e.owner) >= members {
				return fmt.Errorf("svmsmp: cluster %d line %#x owned by out-of-range member %d", cid, la, e.owner)
			}
			if e.sharers&(1<<uint(e.owner)) == 0 {
				return fmt.Errorf("svmsmp: cluster %d line %#x owner %d not among sharers %#x", cid, la, e.owner, e.sharers)
			}
		}
		for q := 0; q < members; q++ {
			h := s.caches[cid*s.P.ClusterSize+q]
			holds := h.Contains(la * lineSz)
			bit := e.sharers&(1<<uint(q)) != 0
			if bit && !holds {
				return fmt.Errorf("svmsmp: cluster %d line %#x lists member %d as sharer but its cache lost the line", cid, la, q)
			}
			if !holds {
				continue
			}
			_, st := h.Probe(la * lineSz)
			if int(e.owner) == q {
				if st != cache.Modified && st != cache.Exclusive {
					return fmt.Errorf("svmsmp: cluster %d line %#x owner %d holds it in state %s, want M or E", cid, la, q, st)
				}
			} else if bit && st != cache.Shared {
				return fmt.Errorf("svmsmp: cluster %d line %#x non-owner sharer %d holds it in state %s, want S", cid, la, q, st)
			}
		}
	}
	// Caches -> directory, plus inclusion within each hierarchy.
	for q := 0; q < members; q++ {
		h := s.caches[cid*s.P.ClusterSize+q]
		if err := h.CheckInclusion(); err != nil {
			return fmt.Errorf("svmsmp: cluster %d member %d: %w", cid, q, err)
		}
		var lerr error
		h.LinesL2(func(la uint64, st cache.State) {
			if lerr != nil {
				return
			}
			e, ok := c.lines[la]
			if !ok || e.sharers&(1<<uint(q)) == 0 {
				lerr = fmt.Errorf("svmsmp: cluster %d member %d caches line %#x (state %s) unknown to the line directory", cid, q, la, st)
			}
		})
		if lerr != nil {
			return lerr
		}
	}
	return nil
}

var _ sim.InvariantChecked = (*Platform)(nil)
