package svmsmp

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

func setup(np int) (*mem.AddressSpace, *sim.Kernel) {
	as := mem.NewAddressSpace(4096, np)
	p := New(as, DefaultParams(), np)
	return as, sim.New(p, sim.Config{NumProcs: np})
}

func TestIntraClusterSharingIsCheap(t *testing.T) {
	// Two processors in the SAME cluster share a page: no page fetches,
	// only bus-level coherence.
	as, k := setup(8)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("intra", func(p *sim.Proc) {
		if p.ID() == 0 {
			p.Write(a)
		}
		p.Barrier()
		if p.ID() == 1 { // cluster mate of 0
			p.Read(a)
		}
		p.Barrier()
	})
	c := run.AggregateCounters()
	if c.PageFetches != 0 {
		t.Errorf("intra-cluster sharing fetched %d pages, want 0", c.PageFetches)
	}
	if run.Procs[1].Cycles[stats.DataWait] > 1000 {
		t.Errorf("intra-cluster read cost %d cycles, want bus-level", run.Procs[1].Cycles[stats.DataWait])
	}
}

func TestInterClusterSharingPaysSVM(t *testing.T) {
	as, k := setup(8)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("inter", func(p *sim.Proc) {
		if p.ID() == 4 { // different cluster
			p.Read(a)
		}
		p.Barrier()
	})
	if got := run.Procs[4].Counters.PageFetches; got != 1 {
		t.Errorf("inter-cluster read fetched %d pages, want 1", got)
	}
	if dw := run.Procs[4].Cycles[stats.DataWait]; dw < 18000 {
		t.Errorf("inter-cluster fetch cost %d cycles, want SVM-class (>18k)", dw)
	}
}

func TestOneTwinPerClusterPerInterval(t *testing.T) {
	// All four processors of cluster 1 write the same remote page: only
	// the first write traps and twins.
	as, k := setup(8)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("twin", func(p *sim.Proc) {
		if p.ID() >= 4 {
			p.Write(a + uint64(p.ID())*64)
		}
		p.Barrier()
	})
	if got := run.AggregateCounters().TwinsMade; got != 1 {
		t.Errorf("twins = %d, want 1 (cluster granularity)", got)
	}
}

func TestIntraClusterLockIsHardware(t *testing.T) {
	as, k := setup(8)
	_ = as
	run := k.Run("locks", func(p *sim.Proc) {
		// Only cluster 0's processors contend.
		if p.ID() < 4 {
			for i := 0; i < 10; i++ {
				p.Lock(1)
				p.Compute(10)
				p.Unlock(1)
				p.Compute(500)
			}
		}
		p.Barrier()
	})
	perLock := run.TotalCycles(stats.LockWait) / 40
	if perLock > 2500 {
		t.Errorf("intra-cluster lock cost %d cycles, want near hardware cost", perLock)
	}
}

func TestWriteNoticesCrossClusters(t *testing.T) {
	// A write in cluster 0 must invalidate cluster 1's copy at the next
	// synchronization, exactly as plain SVM does between processors.
	as, k := setup(8)
	a := as.AllocPages(4096)
	as.SetHome(a, 4096, 0)
	run := k.Run("notices", func(p *sim.Proc) {
		if p.ID() == 4 {
			p.Read(a)
		}
		p.Barrier()
		if p.ID() == 0 {
			p.Write(a)
		}
		p.Barrier()
		if p.ID() == 4 {
			p.Read(a) // must re-fetch
		}
		p.Barrier()
	})
	if got := run.Procs[4].Counters.PageFetches; got != 2 {
		t.Errorf("cluster 1 fetched %d times, want 2", got)
	}
}

func TestClusterCountRounding(t *testing.T) {
	as := mem.NewAddressSpace(4096, 6)
	p := New(as, DefaultParams(), 6)
	if p.nc != 2 {
		t.Errorf("6 procs -> %d clusters, want 2", p.nc)
	}
}
