// Package svmsmp models the paper's §7 future-work platform: "SMP nodes
// connected by SVM" — clusters of hardware cache-coherent processors (PC
// SMPs) glued into one shared address space by a page-grained HLRC protocol
// over a Myrinet-class network. Within a cluster, coherence is at cache-line
// granularity over a snooping bus and costs tens of cycles; across clusters,
// coherence is at page granularity with twins, diffs and write notices kept
// per CLUSTER rather than per processor.
//
// The interesting questions the paper poses for this hierarchy — does
// intra-cluster sharing dodge the SVM tax, do cluster-grained twins cut
// protocol work, how do locks behave when the previous holder is a cluster
// mate — are all answerable with this model; see the TwoLevel benchmarks.
//
// Both protocol layers live in internal/protocol: one PageEngine whose
// coherence domains are the clusters, stacked on a {MESI × SnoopBus}
// LineEngine per cluster with broadcast upgrade accounting. This package is
// the composition: it maps processors to clusters and wires the page layer's
// "contents changed" callbacks down into the line layer.
package svmsmp

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/smp"
	"repro/internal/svm"
)

// DefaultClusterSize is the paper's envisioned PC-SMP node size.
const DefaultClusterSize = 4

// Params combines the inter-cluster SVM cost model with intra-cluster
// bus-coherence costs.
type Params struct {
	SVM svm.Params
	Bus smp.Params
	// ClusterSize is the number of processors per SMP node.
	ClusterSize int
}

// DefaultParams returns SVM costs across clusters and Challenge-class costs
// inside them.
func DefaultParams() Params {
	return Params{SVM: svm.DefaultParams(), Bus: smp.DefaultParams(), ClusterSize: DefaultClusterSize}
}

// Platform is the two-level machine model.
type Platform struct {
	P      Params
	as     *mem.AddressSpace
	k      *sim.Kernel
	np, nc int
	// pageShift is log2(SVM.PageSize); page-number extraction is on the
	// access fast path (see internal/svm).
	pageShift uint

	eng *protocol.PageEngine // inter-cluster HLRC, one domain per cluster
	// lineEng/buses are the intra-cluster layer, one {MESI × SnoopBus} pair
	// per cluster; caches is the flat per-processor view into the engines'
	// member caches (caches[p] == lineEng[clusterOf(p)].Caches[p%ClusterSize]).
	lineEng []*protocol.LineEngine
	buses   []*protocol.SnoopBus
	caches  []*cache.Hierarchy

	lockCl map[int]int // lock -> cluster of last holder
}

// New creates a two-level platform for np processors grouped into clusters.
func New(as *mem.AddressSpace, p Params, np int) *Platform {
	if p.ClusterSize <= 0 {
		p.ClusterSize = DefaultClusterSize
	}
	nc := (np + p.ClusterSize - 1) / p.ClusterSize
	s := &Platform{P: p, as: as, np: np, nc: nc, pageShift: svm.PageShift(p.SVM.PageSize)}
	s.eng = protocol.NewPageEngine(protocol.PageConfig{
		Params: p.SVM, Domains: nc, Host: s,
		Scope: "svmsmp", Noun: "cluster",
	})
	return s
}

// Name implements sim.Platform.
func (s *Platform) Name() string { return "svmsmp" }

// LineSize reports the intra-cluster coherence granularity.
func (s *Platform) LineSize() int { return smp.CacheConfig.Line }

func (s *Platform) clusterOf(p int) int { return p / s.P.ClusterSize }

// HomeDomain implements protocol.PageHost: a page's home cluster is the
// cluster of its home processor.
func (s *Platform) HomeDomain(addr uint64) int {
	return s.clusterOf(s.as.Home(addr) % s.np)
}

// HandlerProc implements protocol.PageHost: protocol handlers run on a
// cluster's first processor.
func (s *Platform) HandlerProc(dom int) int { return dom * s.P.ClusterSize }

// MemberRange implements protocol.PageHost.
func (s *Platform) MemberRange(dom int) (int, int) {
	lo := dom * s.P.ClusterSize
	hi := lo + s.P.ClusterSize
	if hi > s.np {
		hi = s.np
	}
	return lo, hi
}

// dropPageLines invalidates a page's lines in every member cache of cluster
// cid and drops the page's entries from the cluster's line table: the page
// contents changed (fetch or applied diff), so sharer/owner entries would
// otherwise survive for copies no cache holds.
func (s *Platform) dropPageLines(cid int, pg uint64) {
	base := pg * s.P.SVM.PageSize
	for _, h := range s.lineEng[cid].Caches {
		h.InvalidateRange(base, int(s.P.SVM.PageSize))
	}
	lineSz := uint64(s.LineSize())
	for la := base / lineSz; la <= (base+s.P.SVM.PageSize-1)/lineSz; la++ {
		delete(s.lineEng[cid].Lines, la)
	}
}

// PageArrived implements protocol.PageHost.
func (s *Platform) PageArrived(dom int, pg uint64) { s.dropPageLines(dom, pg) }

// DiffApplied implements protocol.PageHost.
func (s *Platform) DiffApplied(home int, pg uint64) { s.dropPageLines(home, pg) }

// Attach implements sim.Platform.
func (s *Platform) Attach(k *sim.Kernel) {
	s.k = k
	s.eng.Init(k, int(s.as.NumPages())+1)
	s.caches = make([]*cache.Hierarchy, s.np)
	s.lineEng = make([]*protocol.LineEngine, s.nc)
	s.buses = make([]*protocol.SnoopBus, s.nc)
	for c := 0; c < s.nc; c++ {
		members := s.P.ClusterSize
		if rest := s.np - c*s.P.ClusterSize; rest < members {
			members = rest
		}
		s.lineEng[c] = protocol.NewLineEngine(protocol.MESI, smp.CacheConfig, members)
		// Short intra-cluster buses: broadcast upgrade accounting, no
		// per-transaction miss classification (the page layer above owns
		// miss accounting), BusOccupy stamped with the cluster id.
		s.buses[c] = &protocol.SnoopBus{
			P:       s.P.Bus,
			Upgrade: protocol.UpgradeBroadcast,
			Acct:    protocol.BusAccounting{TraceID: c},
		}
		copy(s.caches[c*s.P.ClusterSize:], s.lineEng[c].Caches)
	}
	s.lockCl = map[int]int{}
}

// Prevalidate implements sim.Prevalidator at cluster granularity.
func (s *Platform) Prevalidate(addr uint64, nbytes int, nd int) {
	s.eng.Prevalidate(addr, nbytes, s.clusterOf(nd))
}

// FastAccess implements sim.Platform: the page must be valid at the cluster
// (and cluster-dirty for writes), then intra-cluster MESI applies.
func (s *Platform) FastAccess(p int, now uint64, addr uint64, write bool) (uint64, bool) {
	d := s.eng.Doms[s.clusterOf(p)]
	pg := addr >> s.pageShift
	if pg >= uint64(len(d.Valid)) || !d.Valid[pg] {
		return 0, false
	}
	if write && !d.Dirty[pg] {
		return 0, false
	}
	lvl, _, ok := s.caches[p].HitAccess(addr, write)
	if !ok {
		return 0, false
	}
	if lvl == cache.L1Hit {
		return 0, true
	}
	return s.P.Bus.L2HitCost, true
}

// SlowAccess implements sim.Platform: inter-cluster page faults and write
// traps first (one trap + twin per CLUSTER per interval — the two-level
// hierarchy's big saving over plain SVM), then an intra-cluster bus
// transaction for the line.
func (s *Platform) SlowAccess(p int, now uint64, addr uint64, write bool) sim.AccessCost {
	cid := s.clusterOf(p)
	d := s.eng.Doms[cid]
	pg := addr >> s.pageShift
	s.eng.EnsurePage(cid, pg)
	var cost sim.AccessCost
	if !d.Valid[pg] {
		cost.DataWait += s.eng.Fault(p, cid, now, addr)
	}
	if write && !d.Dirty[pg] {
		cost.Handler += s.eng.Trap(p, cid, now, addr)
	}
	bc := s.buses[cid].SlowLine(s.k, s.lineEng[cid], p%s.P.ClusterSize, p, now, addr, write)
	cost.CacheStall += bc.CacheStall
	cost.DataWait += bc.DataWait
	cost.Handler += bc.Handler
	return cost
}

// LockRequest implements sim.Platform: free within a cluster, a message
// across clusters.
func (s *Platform) LockRequest(p int, now uint64, lock int) uint64 {
	if last, ok := s.lockCl[lock]; ok && last == s.clusterOf(p) {
		return 0
	}
	return s.P.SVM.MsgSend + s.P.SVM.NetLatency
}

// LockGrant implements sim.Platform: an intra-cluster handoff is a hardware
// lock; an inter-cluster handoff pays SVM messaging plus write-notice
// invalidations at cluster granularity.
func (s *Platform) LockGrant(p int, now uint64, lock int, prevHolder int) uint64 {
	cid := s.clusterOf(p)
	sameCluster := prevHolder >= 0 && s.clusterOf(prevHolder) == cid
	var cost uint64
	if sameCluster {
		cost = s.P.Bus.LockAcquire
	} else {
		cost = s.P.SVM.NetLatency + s.P.SVM.MsgRecv
		if prevHolder >= 0 {
			cost += s.P.SVM.MsgSend + s.P.SVM.NetLatency + s.P.SVM.MsgRecv
		}
	}
	cost += s.eng.AcquireApply(lock, cid, p, now)
	s.lockCl[lock] = cid
	return cost
}

// LockRelease implements sim.Platform.
func (s *Platform) LockRelease(p int, now uint64, lock int) (uint64, uint64, uint64) {
	cid := s.clusterOf(p)
	handler := s.eng.Flush(cid, p, now)
	s.eng.SaveLockVC(lock, cid)
	return s.P.Bus.LockRelease, handler, 0
}

// BarrierArrive implements sim.Platform: gather on the cluster bus, then one
// message per cluster to the manager.
func (s *Platform) BarrierArrive(p int, now uint64) (uint64, uint64) {
	handler := s.eng.Flush(s.clusterOf(p), p, now)
	return s.P.Bus.BarrierLeaf + s.P.SVM.MsgSend/uint64(s.P.ClusterSize) + s.P.SVM.NetLatency/2, handler
}

// BarrierRelease implements sim.Platform: the manager handles one arrival
// per CLUSTER, not per processor.
func (s *Platform) BarrierRelease(arrivals []uint64, manager int) uint64 {
	return s.eng.ReleaseWork(arrivals, manager, s.nc)
}

// BarrierDepart implements sim.Platform.
func (s *Platform) BarrierDepart(p int, releaseTime uint64) uint64 {
	return s.P.Bus.BarrierLeaf/3 + s.eng.DepartApply(s.clusterOf(p), p, releaseTime)
}

// CheckInvariants implements sim.InvariantChecked: the page engine's HLRC
// invariants at cluster granularity (twin/diff balance aggregates over each
// cluster's processors, since the write trap lands on the accessing
// processor while the flush lands on whichever cluster mate releases), plus
// each cluster's bus occupancy and line-table/cache agreement.
func (s *Platform) CheckInvariants() error {
	if err := s.eng.CheckInvariants(); err != nil {
		return err
	}
	for cid := range s.lineEng {
		if err := s.buses[cid].CheckOccupancy(fmt.Sprintf("svmsmp: cluster %d", cid)); err != nil {
			return err
		}
		if err := s.lineEng[cid].CheckInvariants(fmt.Sprintf("svmsmp: cluster %d", cid)); err != nil {
			return err
		}
	}
	return nil
}

var (
	_ sim.Platform         = (*Platform)(nil)
	_ sim.Prevalidator     = (*Platform)(nil)
	_ sim.InvariantChecked = (*Platform)(nil)
	_ protocol.PageHost    = (*Platform)(nil)
)
