// Package svmsmp models the paper's §7 future-work platform: "SMP nodes
// connected by SVM" — clusters of hardware cache-coherent processors (PC
// SMPs) glued into one shared address space by a page-grained HLRC protocol
// over a Myrinet-class network. Within a cluster, coherence is at cache-line
// granularity over a snooping bus and costs tens of cycles; across clusters,
// coherence is at page granularity with twins, diffs and write notices kept
// per CLUSTER rather than per processor.
//
// The interesting questions the paper poses for this hierarchy — does
// intra-cluster sharing dodge the SVM tax, do cluster-grained twins cut
// protocol work, how do locks behave when the previous holder is a cluster
// mate — are all answerable with this model; see the TwoLevel benchmarks.
package svmsmp

import (
	"math"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/smp"
	"repro/internal/svm"
	"repro/internal/trace"
)

// DefaultClusterSize is the paper's envisioned PC-SMP node size.
const DefaultClusterSize = 4

// Params combines the inter-cluster SVM cost model with intra-cluster
// bus-coherence costs.
type Params struct {
	SVM svm.Params
	Bus smp.Params
	// ClusterSize is the number of processors per SMP node.
	ClusterSize int
}

// DefaultParams returns SVM costs across clusters and Challenge-class costs
// inside them.
func DefaultParams() Params {
	return Params{SVM: svm.DefaultParams(), Bus: smp.DefaultParams(), ClusterSize: DefaultClusterSize}
}

type pageID = uint64

// cluster holds one SMP node's protocol state: the page-grained SVM state
// (per cluster) plus the line-grained coherence state among its processors.
type cluster struct {
	vc       []uint32
	interval uint32
	valid    []bool
	dirty    []bool
	dirtyLst []pageID
	// pending lists pages already diffed home by an acquire-time
	// invalidation in the still-open interval; the next flush publishes
	// their write notices without diffing them again (see internal/svm).
	pending []pageID
	nic     sim.Resource
	bus     sim.Resource
	lines   map[uint64]*lineEntry // line -> intra-cluster sharers/owner
}

type lineEntry struct {
	sharers uint64 // bitmask of local (cluster-relative) processors
	owner   int8
}

// Platform is the two-level machine model.
type Platform struct {
	P      Params
	as     *mem.AddressSpace
	k      *sim.Kernel
	np, nc int
	// pageShift is log2(SVM.PageSize); page-number extraction is on the
	// access fast path (see internal/svm).
	pageShift uint
	caches    []*cache.Hierarchy
	cl        []*cluster

	writeLog [][][]pageID // per cluster
	lockVC   map[int][]uint32
	lockCl   map[int]int // lock -> cluster of last holder
}

// New creates a two-level platform for np processors grouped into clusters.
func New(as *mem.AddressSpace, p Params, np int) *Platform {
	if p.ClusterSize <= 0 {
		p.ClusterSize = DefaultClusterSize
	}
	nc := (np + p.ClusterSize - 1) / p.ClusterSize
	return &Platform{P: p, as: as, np: np, nc: nc, pageShift: svm.PageShift(p.SVM.PageSize)}
}

// Name implements sim.Platform.
func (s *Platform) Name() string { return "svmsmp" }

// LineSize reports the intra-cluster coherence granularity.
func (s *Platform) LineSize() int { return smp.CacheConfig.Line }

func (s *Platform) clusterOf(p int) int { return p / s.P.ClusterSize }

// homeCluster maps a page's home processor to its cluster.
func (s *Platform) homeCluster(addr uint64) int {
	return s.clusterOf(s.as.Home(addr) % s.np)
}

// Attach implements sim.Platform.
func (s *Platform) Attach(k *sim.Kernel) {
	s.k = k
	npages := int(s.as.NumPages()) + 1
	s.caches = make([]*cache.Hierarchy, s.np)
	s.cl = make([]*cluster, s.nc)
	for c := 0; c < s.nc; c++ {
		s.cl[c] = &cluster{
			vc:    make([]uint32, s.nc),
			valid: make([]bool, npages),
			dirty: make([]bool, npages),
			lines: map[uint64]*lineEntry{},
		}
	}
	for i := 0; i < s.np; i++ {
		h := cache.New(smp.CacheConfig)
		nd := i
		cl := s.cl[s.clusterOf(i)]
		local := int8(i % s.P.ClusterSize)
		h.OnL2Evict = func(la uint64, st cache.State) {
			if e, ok := cl.lines[la]; ok {
				e.sharers &^= 1 << uint(nd%s.P.ClusterSize)
				if e.owner == local {
					e.owner = -1
				}
			}
		}
		s.caches[i] = h
	}
	s.writeLog = make([][][]pageID, s.nc)
	for i := range s.writeLog {
		s.writeLog[i] = [][]pageID{nil}
	}
	s.lockVC = map[int][]uint32{}
	s.lockCl = map[int]int{}
	for pg := 0; pg < npages; pg++ {
		hc := s.homeCluster(uint64(pg) * s.P.SVM.PageSize)
		if hc < s.nc {
			s.cl[hc].valid[pg] = true
		}
	}
}

func (s *Platform) ensurePage(c *cluster, pg pageID) {
	for uint64(len(c.valid)) <= pg {
		c.valid = append(c.valid, false)
		c.dirty = append(c.dirty, false)
	}
}

// Prevalidate implements sim.Prevalidator at cluster granularity.
func (s *Platform) Prevalidate(addr uint64, nbytes int, nd int) {
	cid := s.clusterOf(nd)
	if cid < 0 || cid >= s.nc {
		return
	}
	c := s.cl[cid]
	first := addr >> s.pageShift
	last := (addr + uint64(nbytes) - 1) >> s.pageShift
	for pg := first; pg <= last; pg++ {
		s.ensurePage(c, pg)
		c.valid[pg] = true
	}
}

func (s *Platform) entry(c *cluster, la uint64) *lineEntry {
	e, ok := c.lines[la]
	if !ok {
		e = &lineEntry{owner: -1}
		c.lines[la] = e
	}
	return e
}

// FastAccess implements sim.Platform: the page must be valid at the cluster
// (and cluster-dirty for writes), then intra-cluster MESI applies.
func (s *Platform) FastAccess(p int, now uint64, addr uint64, write bool) (uint64, bool) {
	c := s.cl[s.clusterOf(p)]
	pg := addr >> s.pageShift
	if pg >= uint64(len(c.valid)) || !c.valid[pg] {
		return 0, false
	}
	if write && !c.dirty[pg] {
		return 0, false
	}
	lvl, _, ok := s.caches[p].HitAccess(addr, write)
	if !ok {
		return 0, false
	}
	if lvl == cache.L1Hit {
		return 0, true
	}
	return s.P.Bus.L2HitCost, true
}

// SlowAccess implements sim.Platform: inter-cluster page faults and write
// traps first, then an intra-cluster bus transaction for the line.
func (s *Platform) SlowAccess(p int, now uint64, addr uint64, write bool) sim.AccessCost {
	cid := s.clusterOf(p)
	c := s.cl[cid]
	pg := addr >> s.pageShift
	s.ensurePage(c, pg)
	cnt := s.k.Counters(p)
	var cost sim.AccessCost

	if !c.valid[pg] {
		cnt.PageFaults++
		s.k.Emit(trace.PageFault, p, now, pg, 0)
		hc := s.homeCluster(addr)
		if hc == cid {
			c.valid[pg] = true
		} else {
			cnt.PageFetches++
			P := s.P.SVM
			reqArrive := now + P.FaultOverhead + P.MsgSend + P.NetLatency
			service := P.MsgRecv + P.HomeService + P.PageXfer
			start := s.cl[hc].nic.Acquire(reqArrive, service)
			// The handler runs on the home cluster's first processor.
			s.k.ChargeHandler(hc*s.P.ClusterSize, service)
			s.k.Counters(hc*s.P.ClusterSize).PagesServed++
			done := start + service + P.NetLatency + P.PageXfer + P.MsgRecv
			cost.DataWait += done - now
			s.k.Emit(trace.PageFetch, p, now, pg, done-now)
			s.k.Emit(trace.NICOccupy, hc, start, pg, service)
			c.valid[pg] = true
			c.dirty[pg] = false
			// Every cluster member's cached lines of the page are stale.
			base := pg * P.PageSize
			for q := cid * s.P.ClusterSize; q < (cid+1)*s.P.ClusterSize && q < s.np; q++ {
				s.caches[q].InvalidateRange(base, int(P.PageSize))
			}
			for la := base / uint64(s.LineSize()); la <= (base+P.PageSize-1)/uint64(s.LineSize()); la++ {
				delete(c.lines, la)
			}
		}
	}

	if write && !c.dirty[pg] && s.nc > 1 {
		// One write trap + twin per CLUSTER per interval — the
		// two-level hierarchy's big saving over plain SVM.
		cost.Handler += s.P.SVM.WriteTrap
		s.k.Emit(trace.WriteTrap, p, now, pg, s.P.SVM.WriteTrap)
		if s.homeCluster(addr) != cid {
			cost.Handler += s.P.SVM.TwinCost
			cnt.TwinsMade++
			s.k.Emit(trace.TwinCreate, p, now, pg, s.P.SVM.TwinCost)
		}
		c.dirty[pg] = true
		c.dirtyLst = append(c.dirtyLst, pg)
	}

	// Intra-cluster line coherence over the cluster bus.
	h := s.caches[p]
	la := h.LineOf(addr)
	e := s.entry(c, la)
	local := p % s.P.ClusterSize
	occ := s.P.Bus.BusArb + s.P.Bus.BusXfer
	start := c.bus.Acquire(now, occ)
	wait := start - now + occ
	cnt.BusTransactions++
	s.k.Emit(trace.BusOccupy, cid, start, la, occ)
	if write {
		if e.owner >= 0 && int(e.owner) != local {
			s.caches[cid*s.P.ClusterSize+int(e.owner)].SetState(addr, cache.Invalid)
			cost.DataWait += wait + s.P.Bus.C2CLat
		} else if sh := e.sharers &^ (1 << uint(local)); sh != 0 {
			for q := 0; q < s.P.ClusterSize; q++ {
				if sh&(1<<uint(q)) != 0 {
					s.caches[cid*s.P.ClusterSize+q].SetState(addr, cache.Invalid)
				}
			}
			cost.DataWait += wait + s.P.Bus.InvalPer
		} else {
			cost.CacheStall += wait + s.P.Bus.MemLat
		}
		e.sharers = 1 << uint(local)
		e.owner = int8(local)
		h.Access(addr, true, cache.Modified)
		// Access applies fillState only on a miss; on a write UPGRADE the
		// line hits in state Shared and would stay Shared, so the owner
		// would keep paying upgrade transactions for a line it owns.
		h.SetState(addr, cache.Modified)
	} else {
		if e.owner >= 0 && int(e.owner) != local {
			s.caches[cid*s.P.ClusterSize+int(e.owner)].SetState(addr, cache.Shared)
			e.sharers |= 1 << uint(e.owner)
			e.owner = -1
			cost.DataWait += wait + s.P.Bus.C2CLat
		} else {
			cost.CacheStall += wait + s.P.Bus.MemLat
		}
		e.sharers |= 1 << uint(local)
		fill := cache.Shared
		if e.sharers == 1<<uint(local) && e.owner < 0 {
			fill = cache.Exclusive
			e.owner = int8(local)
		}
		h.Access(addr, false, fill)
	}
	return cost
}

// diffHome computes the diff of page pg against the cluster's twin, ships it
// to the page's home cluster and has it applied there. It returns the cycles
// spent on the diffing processor p; the home cluster's receive/apply work is
// charged asynchronously. Only called for pages homed in another cluster.
func (s *Platform) diffHome(p, cid int, pg pageID, now uint64) (local uint64) {
	P := s.P.SVM
	hc := s.homeCluster(pg * P.PageSize)
	s.k.Counters(p).DiffsCreated++
	local = P.DiffCreate + P.MsgSend
	s.k.Emit(trace.DiffCreate, p, now+local, pg, P.DiffCreate)
	service := P.MsgRecv + P.DiffXfer + P.DiffApply
	start := s.cl[hc].nic.Acquire(now+local+P.NetLatency, service)
	s.k.ChargeHandler(hc*s.P.ClusterSize, service)
	s.k.Emit(trace.DiffApply, hc*s.P.ClusterSize, start, pg, service)
	s.k.Emit(trace.NICOccupy, hc, start, pg, service)
	// The applied diff changes the home copy under the home cluster's
	// caches; the intra-cluster sharer/owner entries must go with it, or a
	// later access would pay a cache-to-cache transfer for a copy that no
	// longer exists (and the stale owner would survive as Shared).
	base := pg * P.PageSize
	for q := hc * s.P.ClusterSize; q < (hc+1)*s.P.ClusterSize && q < s.np; q++ {
		s.caches[q].InvalidateRange(base, int(P.PageSize))
	}
	for la := base / uint64(s.LineSize()); la <= (base+P.PageSize-1)/uint64(s.LineSize()); la++ {
		delete(s.cl[hc].lines, la)
	}
	return local
}

// flush ships the cluster's dirty pages to their home clusters and opens a
// new interval (see svm.Platform.flush; state is per cluster here).
func (s *Platform) flush(p int, now uint64) (handler uint64) {
	cid := s.clusterOf(p)
	c := s.cl[cid]
	P := s.P.SVM
	var log []pageID
	// Pages diffed home at an acquire-time invalidation still owe a write
	// notice in this interval; re-dirtied ones are covered below.
	for _, pg := range c.pending {
		if c.dirty[pg] {
			continue
		}
		log = append(log, pg)
		handler += P.NoticeCost
		s.k.Emit(trace.WriteNotice, p, now+handler, pg, P.NoticeCost)
	}
	c.pending = c.pending[:0]
	for _, pg := range c.dirtyLst {
		c.dirty[pg] = false
		log = append(log, pg)
		handler += P.NoticeCost
		s.k.Emit(trace.WriteNotice, p, now+handler, pg, P.NoticeCost)
		if s.homeCluster(pg*P.PageSize) != cid {
			handler += s.diffHome(p, cid, pg, now+handler)
		}
	}
	c.dirtyLst = c.dirtyLst[:0]
	s.writeLog[cid] = append(s.writeLog[cid], log)
	if c.interval == math.MaxUint32 {
		// Same hazard as svm.Platform.flush: intervals advance at every
		// release/barrier, and a wrapped uint32 would corrupt every
		// vector-clock comparison. Fail loudly instead.
		panic(&svm.IntervalOverflowError{Node: cid})
	}
	c.interval++
	c.vc[cid] = c.interval
	return handler
}

// removeDirty drops pg from the cluster's pending-flush list, preserving
// order (flush walks it in order, which is part of run determinism).
func (c *cluster) removeDirty(pg pageID) {
	for i, d := range c.dirtyLst {
		if d == pg {
			c.dirtyLst = append(c.dirtyLst[:i], c.dirtyLst[i+1:]...)
			return
		}
	}
}

// addPending records pg as diffed-but-unnotified in the open interval,
// keeping the list duplicate-free (one notice per page per interval).
func (c *cluster) addPending(pg pageID) {
	for _, q := range c.pending {
		if q == pg {
			return
		}
	}
	c.pending = append(c.pending, pg)
}

// invalidateUpTo advances cluster cid's knowledge of cluster q to interval
// upTo; p and now identify the acquiring processor and virtual time for the
// Invalidate trace events.
func (s *Platform) invalidateUpTo(cid, q int, upTo uint32, p int, now uint64) (inv int, diffC uint64) {
	if cid == q {
		return 0, 0
	}
	c := s.cl[cid]
	for i := c.vc[q] + 1; i <= upTo; i++ {
		if int(i) >= len(s.writeLog[q]) {
			break
		}
		for _, pg := range s.writeLog[q][i] {
			s.ensurePage(c, pg)
			if s.homeCluster(pg*s.P.SVM.PageSize) == cid {
				continue
			}
			if c.valid[pg] {
				if c.dirty[pg] {
					// Same as svm.Platform.invalidateUpTo: the cluster's
					// writes must not be lost with the copy, so the diff
					// is flushed to the home cluster before the page is
					// dropped; the notice goes out when the interval
					// closes. Home-cluster pages were skipped above, so
					// the copy always had a twin.
					diffC += s.diffHome(p, cid, pg, now+diffC)
					c.removeDirty(pg)
					c.addPending(pg)
				}
				c.valid[pg] = false
				c.dirty[pg] = false
				inv++
				s.k.Emit(trace.Invalidate, p, now, pg, s.P.SVM.InvalCost)
			}
		}
	}
	if upTo > c.vc[q] {
		c.vc[q] = upTo
	}
	return inv, diffC
}

// LockRequest implements sim.Platform: free within a cluster, a message
// across clusters.
func (s *Platform) LockRequest(p int, now uint64, lock int) uint64 {
	if last, ok := s.lockCl[lock]; ok && last == s.clusterOf(p) {
		return 0
	}
	return s.P.SVM.MsgSend + s.P.SVM.NetLatency
}

// LockGrant implements sim.Platform: an intra-cluster handoff is a hardware
// lock; an inter-cluster handoff pays SVM messaging plus write-notice
// invalidations at cluster granularity.
func (s *Platform) LockGrant(p int, now uint64, lock int, prevHolder int) uint64 {
	cid := s.clusterOf(p)
	sameCluster := prevHolder >= 0 && s.clusterOf(prevHolder) == cid
	var cost uint64
	if sameCluster {
		cost = s.P.Bus.LockAcquire
	} else {
		cost = s.P.SVM.NetLatency + s.P.SVM.MsgRecv
		if prevHolder >= 0 {
			cost += s.P.SVM.MsgSend + s.P.SVM.NetLatency + s.P.SVM.MsgRecv
		}
	}
	if rvc, ok := s.lockVC[lock]; ok {
		inv := 0
		var diff uint64
		for q := 0; q < s.nc; q++ {
			i, diffC := s.invalidateUpTo(cid, q, rvc[q], p, now+diff)
			inv += i
			diff += diffC
		}
		// Handler time, charged asynchronously like the release-side
		// flush — it must not serialize lock handoffs (see internal/svm).
		s.k.ChargeHandler(p, diff)
		cost += uint64(inv) * s.P.SVM.InvalCost
		s.k.Counters(p).Invalidations += uint64(inv)
	}
	s.lockCl[lock] = cid
	return cost
}

// LockRelease implements sim.Platform.
func (s *Platform) LockRelease(p int, now uint64, lock int) (uint64, uint64, uint64) {
	handler := s.flush(p, now)
	// Backing-array reuse: LockGrant consumes the values synchronously
	// before the next release of this lock overwrites them (see internal/svm).
	rvc := s.lockVC[lock]
	if rvc == nil {
		rvc = make([]uint32, s.nc)
		s.lockVC[lock] = rvc
	}
	copy(rvc, s.cl[s.clusterOf(p)].vc)
	return s.P.Bus.LockRelease, handler, 0
}

// BarrierArrive implements sim.Platform: gather on the cluster bus, then one
// message per cluster to the manager.
func (s *Platform) BarrierArrive(p int, now uint64) (uint64, uint64) {
	handler := s.flush(p, now)
	return s.P.Bus.BarrierLeaf + s.P.SVM.MsgSend/uint64(s.P.ClusterSize) + s.P.SVM.NetLatency/2, handler
}

// BarrierRelease implements sim.Platform: the manager handles one arrival
// per CLUSTER, not per processor.
func (s *Platform) BarrierRelease(arrivals []uint64, manager int) uint64 {
	var m uint64
	for _, a := range arrivals {
		if a > m {
			m = a
		}
	}
	mgrWork := uint64(s.nc) * (s.P.SVM.MsgRecv/4 + s.P.SVM.BarrierPerProc)
	if manager >= 0 && manager < s.np {
		s.k.ChargeHandler(manager, mgrWork)
	}
	return m + mgrWork + s.P.SVM.BarrierBcast + s.P.SVM.NetLatency
}

// BarrierDepart implements sim.Platform.
func (s *Platform) BarrierDepart(p int, releaseTime uint64) uint64 {
	cid := s.clusterOf(p)
	inv := 0
	var diff uint64
	for q := 0; q < s.nc; q++ {
		if q == cid {
			continue
		}
		// Arrival flushed the cluster's dirty pages, so diffC is zero here
		// in practice; accounted anyway for symmetry with LockGrant.
		i, diffC := s.invalidateUpTo(cid, q, s.cl[q].vc[q], p, releaseTime+diff)
		inv += i
		diff += diffC
	}
	s.k.ChargeHandler(p, diff)
	s.k.Counters(p).Invalidations += uint64(inv)
	return s.P.Bus.BarrierLeaf/3 + uint64(inv)*s.P.SVM.InvalCost
}

var (
	_ sim.Platform     = (*Platform)(nil)
	_ sim.Prevalidator = (*Platform)(nil)
)
