package campaign

import (
	"bytes"
	"reflect"
	"testing"

	_ "repro/internal/apps"
)

// FuzzSpecDecode pins the spec intake contract: arbitrary bytes never
// panic, and any spec that survives DecodeSpec+Expand yields a sorted,
// duplicate-free manifest whose digest is stable across re-expansion.
func FuzzSpecDecode(f *testing.F) {
	f.Add([]byte(`{"name":"x","apps":[{"app":"lu","versions":["orig"]}],"platforms":["svm"],"procs":[1],"scales":[0.5]}`))
	f.Add([]byte(`{"name":"x","apps":[{"app":"lu","versions":["orig","4da"]}],"platforms":["svm","smp"],"procs":[1,4,4],"scales":[0.25],"exclude":[{"version":"orig","min_procs":2}]}`))
	f.Add([]byte(`{"name":"bad app","apps":[{"app":"nope","versions":["orig"]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"name":"x"} trailing`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSpec(data)
		if err != nil {
			return
		}
		cells, err := s.Expand()
		if err != nil {
			return
		}
		if len(cells) == 0 {
			t.Fatal("Expand returned an empty manifest without error")
		}
		seen := map[string]bool{}
		for i, c := range cells {
			if c.Key == "" || c.Key != c.Spec.MemoKey() {
				t.Fatalf("cell %d key %q does not match its spec", i, c.Key)
			}
			if seen[c.Key] {
				t.Fatalf("duplicate cell %s", c.Key)
			}
			seen[c.Key] = true
			if i > 0 && cells[i-1].Key >= c.Key {
				t.Fatalf("cells not strictly sorted at %d", i)
			}
		}
		cells2, err := s.Expand()
		if err != nil || Digest(cells) != Digest(cells2) {
			t.Fatalf("re-expansion unstable: %v", err)
		}
	})
}

// FuzzJournalDecode pins the conservative-replay contract on arbitrary
// journal bodies: never panic, never accept bytes past the first torn or
// corrupt line, never return an invalid entry, and the accepted prefix
// must re-decode to exactly the same state (so a truncate-to-validLen
// followed by a reopen loses nothing it had admitted).
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte(`{"key":"a","status":"done","fp":"ff","end":12}` + "\n"))
	f.Add([]byte(`{"key":"a","status":"failed","kind":"deadlock","msg":"stuck"}` + "\n" + `{"key":"a","status":"done","fp":"ee"}` + "\n"))
	f.Add([]byte(`{"key":"a","status":"done","fp":"ff"}` + "\n" + `{"key":"b","status":"done","fp":"e`)) // torn tail
	f.Add([]byte("garbage\n"))
	f.Add([]byte(`{"key":"","status":"done","fp":"ff"}` + "\n")) // invalid: no key
	f.Add([]byte(`{"key":"a","status":"running"}` + "\n"))       // invalid: unknown status
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, validLen := decodeJournalEntries(data)
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("validLen %d out of range [0,%d]", validLen, len(data))
		}
		if validLen > 0 && data[validLen-1] != '\n' {
			t.Fatalf("accepted prefix does not end on a line boundary")
		}
		for _, e := range entries {
			if !e.valid() {
				t.Fatalf("returned invalid entry %+v", e)
			}
		}
		// An incomplete cell (present past validLen only) must never be
		// admitted: re-decoding the accepted prefix reproduces the state.
		again, againLen := decodeJournalEntries(data[:validLen])
		if againLen != validLen || !reflect.DeepEqual(entries, again) {
			t.Fatalf("accepted prefix does not round-trip: %d vs %d entries, %d vs %d bytes",
				len(entries), len(again), validLen, againLen)
		}
	})
}

// FuzzJournalHeaderDecode: header parsing never panics and never accepts a
// header without a newline or with the wrong version.
func FuzzJournalHeaderDecode(f *testing.F) {
	f.Add([]byte(`{"v":1,"name":"c","digest":"d","cells":3}` + "\n"))
	f.Add([]byte(`{"v":2,"name":"c","digest":"d","cells":3}` + "\n"))
	f.Add([]byte(`{"v":1`))
	f.Add([]byte("\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, n, err := decodeJournalHeader(data)
		if err != nil {
			return
		}
		if hdr.V != journalVersion {
			t.Fatalf("accepted header version %d", hdr.V)
		}
		if n < 1 || n > len(data) || data[n-1] != '\n' {
			t.Fatalf("header length %d not a line boundary of %d bytes", n, len(data))
		}
		if bytes.IndexByte(data[:n-1], '\n') >= 0 {
			t.Fatalf("header spans multiple lines")
		}
	})
}
