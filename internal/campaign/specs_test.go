package campaign

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	_ "repro/internal/apps"
)

// The committed irregular-workload campaign spec must expand to the exact
// manifest its committed journal was written for. This pins three things
// at once: the spec file's axes, the class predicates resolving through
// the registry taxonomy (a version gaining or losing its class silently
// would shrink the manifest), and the memo-key spelling the journal's
// entries are addressed by. If this digest changes, the journal can no
// longer resume and must be regenerated along with the spec.
const irregularDigest = "12e437818e2210f5bffcde0f112d2d37"

func readSpec(t *testing.T, name string) *Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "campaigns", name))
	if err != nil {
		t.Fatal(err)
	}
	s, err := DecodeSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIrregularSpecExpandsToCommittedDigest(t *testing.T) {
	s := readSpec(t, "irregular.json")
	cells, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 3 apps x 4 versions x 6 platforms x 5 proc counts x 1 scale; the
	// all-classes include must not filter anything (every version carries
	// one of the paper's four classes).
	if len(cells) != 360 {
		t.Fatalf("irregular.json expands to %d cells, want 360", len(cells))
	}
	if d := Digest(cells); d != irregularDigest {
		t.Errorf("irregular.json manifest digest %s, want %s (spec or memo-key spelling changed; regenerate the journal)", d, irregularDigest)
	}
}

// The committed journal must belong to that same manifest and record every
// cell done, so `campaign -spec campaigns/irregular.json -resume -table`
// re-renders the study with zero simulations.
func TestIrregularJournalIsCompleteForCommittedDigest(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "campaigns", "irregular.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		t.Fatal("empty journal")
	}
	var hdr struct {
		V      int    `json:"v"`
		Name   string `json:"name"`
		Digest string `json:"digest"`
		Cells  int    `json:"cells"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Name != "irregular" || hdr.Digest != irregularDigest || hdr.Cells != 360 {
		t.Fatalf("journal header %+v does not match committed digest %s / 360 cells", hdr, irregularDigest)
	}
	done := 0
	for sc.Scan() {
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad journal line: %v", err)
		}
		if e.Status != "done" {
			t.Errorf("cell %s journaled as %s, want done", e.Key, e.Status)
		}
		done++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if done != 360 {
		t.Errorf("journal has %d entries, want 360", done)
	}
}
