package campaign

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	_ "repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/server"
)

// testFleet is an in-process serve fleet: n real Servers over stub memos
// (separate caches, like separate processes) with static membership.
type testFleet struct {
	addrs  []string
	execs  []*atomic.Uint64
	httpds []*http.Server
}

func newTestFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		f.addrs = append(f.addrs, l.Addr().String())
	}
	for i := 0; i < n; i++ {
		execs := &atomic.Uint64{}
		memo := stubMemo(execs)
		cl, err := cluster.New(cluster.Config{Self: f.addrs[i], Peers: f.addrs, VNodes: 32})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(server.Config{Memo: memo, Cluster: cl, MaxInflight: 8, MaxQueue: 128})
		hs := &http.Server{Handler: srv}
		go hs.Serve(listeners[i])
		f.execs = append(f.execs, execs)
		f.httpds = append(f.httpds, hs)
	}
	t.Cleanup(func() {
		for _, hs := range f.httpds {
			hs.Close()
		}
	})
	return f
}

func (f *testFleet) totalExecs() uint64 {
	var total uint64
	for _, e := range f.execs {
		total += e.Load()
	}
	return total
}

// metricTotal scrapes one metric across the fleet's /metrics endpoints.
func (f *testFleet) metricTotal(t *testing.T, line string) uint64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(line) + ` (\d+)$`)
	var total uint64
	for _, a := range f.addrs {
		resp, err := http.Get("http://" + a + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		m := re.FindSubmatch(body)
		if m == nil {
			t.Fatalf("node %s /metrics lacks %q:\n%s", a, line, body)
		}
		v, _ := strconv.ParseUint(string(m[1]), 10, 64)
		total += v
	}
	return total
}

func fleetExec(f *testFleet) *Fleet {
	return &Fleet{
		Addrs:       f.addrs,
		Campaign:    "fleettest",
		BatchSize:   3, // several batches per node even on a small matrix
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
	}
}

// TestFleetCampaignExactlyOnce runs a campaign against a 3-node fleet and
// checks the core distributed properties: every cell settles, fleet-wide
// simulations per unique cell == 1, per-cell fingerprints are identical to
// a local run of the same spec, and the fleet's campaign metrics add up.
func TestFleetCampaignExactlyOnce(t *testing.T) {
	cells, err := runSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	f := newTestFleet(t, 3)

	r := &Runner{Name: "runtest", Cells: cells, Exec: fleetExec(f)}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != len(cells) {
		t.Fatalf("settled %d of %d cells", len(rep.Entries), len(cells))
	}
	if got := f.totalExecs(); got != uint64(len(cells)) {
		t.Errorf("fleet executed %d simulations for %d unique cells", got, len(cells))
	}

	// The local path must fingerprint identically, cell for cell.
	var localExecs atomic.Uint64
	local := &Runner{Name: "runtest", Cells: cells, Exec: &Local{Memo: stubMemo(&localExecs), Workers: 4}}
	lrep, err := local.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Manifest(), lrep.Manifest(); got != want {
		t.Errorf("fleet manifest differs from local manifest:\n--- local\n%s\n--- fleet\n%s", want, got)
	}

	// Campaign metrics: done+failed across the fleet covers every cell.
	done := f.metricTotal(t, `svmserve_campaign_cells_total{status="done"}`)
	failed := f.metricTotal(t, `svmserve_campaign_cells_total{status="failed"}`)
	if done+failed != uint64(len(cells)) {
		t.Errorf("campaign metrics: done %d + failed %d != %d cells", done, failed, len(cells))
	}
	if failed == 0 {
		t.Error("campaign metrics missed the deterministic radix failures")
	}
}

// TestFleetCancelResume interrupts a fleet campaign mid-flight and resumes
// it from the journal: the resume skips everything journaled and the final
// manifest is byte-identical to an uninterrupted local run.
func TestFleetCancelResume(t *testing.T) {
	cells, err := runSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	digest := Digest(cells)
	f := newTestFleet(t, 3)
	jpath := filepath.Join(t.TempDir(), "c.journal")

	j1, err := OpenJournal(jpath, "runtest", digest, len(cells), false)
	if err != nil {
		t.Fatal(err)
	}
	r1 := &Runner{Name: "runtest", Cells: cells, Journal: j1, Exec: fleetExec(f), StopAfter: 4}
	rep1, err := r1.Run(context.Background())
	j1.Close()
	if err == nil || !rep1.Interrupted {
		t.Fatalf("interrupt: err=%v interrupted=%v", err, rep1.Interrupted)
	}
	if len(rep1.Entries) >= len(cells) {
		t.Fatalf("interrupt settled all %d cells; nothing to resume", len(cells))
	}

	j2, err := OpenJournal(jpath, "runtest", digest, len(cells), true)
	if err != nil {
		t.Fatal(err)
	}
	r2 := &Runner{Name: "runtest", Cells: cells, Journal: j2, Exec: fleetExec(f)}
	rep2, err := r2.Run(context.Background())
	j2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != len(rep1.Entries) {
		t.Errorf("resume skipped %d, journal held %d", rep2.Resumed, len(rep1.Entries))
	}
	// Exactly-once fleet-wide across interrupt + resume.
	if got := f.totalExecs(); got != uint64(len(cells)) {
		t.Errorf("interrupt+resume executed %d simulations for %d cells", got, len(cells))
	}

	var localExecs atomic.Uint64
	local := &Runner{Name: "runtest", Cells: cells, Exec: &Local{Memo: stubMemo(&localExecs), Workers: 4}}
	lrep, _ := local.Run(context.Background())
	if got, want := rep2.Manifest(), lrep.Manifest(); got != want {
		t.Errorf("resumed fleet manifest differs from local:\n--- local\n%s\n--- fleet\n%s", want, got)
	}
}

// TestFleetRetryTransient fronts a real server with a handler that fails
// the first request of each batch worker, and checks that the campaign
// retries through it, records the attempts, and bumps the retry metric.
func TestFleetRetryTransient(t *testing.T) {
	cells, err := tinySpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Uint64
	memo := stubMemo(&execs)
	srv := server.New(server.Config{Memo: memo, MaxInflight: 8, MaxQueue: 128})

	var fails atomic.Int64
	fails.Store(1)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/run" && r.Method == http.MethodPost && fails.Add(-1) >= 0 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	fl := &Fleet{
		Addrs:       []string{flaky.URL},
		Campaign:    "retrytest",
		BatchSize:   len(cells), // one batch, so the single 500 hits it
		Workers:     1,
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
	}
	r := &Runner{Name: "tiny", Cells: cells, Exec: fl}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != len(cells) {
		t.Fatalf("settled %d of %d cells", len(rep.Entries), len(cells))
	}
	for _, c := range cells {
		if e := rep.Entries[c.Key]; e.Attempts < 2 {
			t.Errorf("cell %s settled with attempts=%d, want >=2 after the 500", c.Key, e.Attempts)
		}
	}
	// The retry batch carried X-Campaign-Retry, so the server counted it.
	resp, err := http.Get(flaky.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	re := regexp.MustCompile(`(?m)^svmserve_campaign_cells_total\{status="retried"\} (\d+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("/metrics lacks the retried counter:\n%s", body)
	}
	if v, _ := strconv.ParseUint(string(m[1]), 10, 64); v == 0 {
		t.Error("retried counter stayed 0 despite a retried batch")
	}
}

// TestFleetExhaustedRetriesStayPending checks the other side of the retry
// contract: when a node never recovers, cells journal as transient
// failures, which do NOT settle — a resume retries them.
func TestFleetExhaustedRetriesStayPending(t *testing.T) {
	cells, err := tinySpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer dead.Close()

	jpath := filepath.Join(t.TempDir(), "c.journal")
	j, err := OpenJournal(jpath, "tiny", Digest(cells), len(cells), false)
	if err != nil {
		t.Fatal(err)
	}
	fl := &Fleet{Addrs: []string{dead.URL}, Campaign: "tiny", MaxAttempts: 2, Backoff: time.Millisecond}
	r := &Runner{Name: "tiny", Cells: cells, Journal: j, Exec: fl}
	rep, err := r.Run(context.Background())
	j.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		e, ok := rep.Entries[c.Key]
		if !ok || e.Kind != KindTransient {
			t.Fatalf("cell %s entry %+v, want transient failure", c.Key, e)
		}
		if e.Complete() {
			t.Fatalf("transient entry counts as complete: %+v", e)
		}
	}
	// A resume finds nothing settled and retries everything.
	j2, err := OpenJournal(jpath, "tiny", Digest(cells), len(cells), true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	for key, e := range j2.Entries() {
		if e.Complete() {
			t.Errorf("journaled transient entry for %s resumed as complete", key)
		}
	}
}

func TestRingName(t *testing.T) {
	for in, want := range map[string]string{
		"http://10.0.0.1:8080": "10.0.0.1:8080",
		"https://node-3:443/":  "node-3:443",
		"10.0.0.1:8080":        "10.0.0.1:8080",
	} {
		if got := ringName(in); got != want {
			t.Errorf("ringName(%q) = %q, want %q", in, got, want)
		}
	}
}
