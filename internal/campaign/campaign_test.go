package campaign

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	_ "repro/internal/apps"
	"repro/internal/harness"
)

// tinySpec is a small valid campaign used throughout the tests: 2 versions
// × 2 platforms × 2 proc counts × 1 scale = 8 cells.
func tinySpec() *Spec {
	return &Spec{
		Name:      "tiny",
		Apps:      []AppMatrix{{App: "lu", Versions: []string{"orig", "4da"}}},
		Platforms: []string{"svm", "smp"},
		Procs:     []int{1, 4},
		Scales:    []float64{0.25},
	}
}

func TestDecodeSpec(t *testing.T) {
	s, err := DecodeSpec([]byte(`{
		"name": "x",
		"apps": [{"app": "lu", "versions": ["orig"]}],
		"platforms": ["svm"], "procs": [1], "scales": [0.5]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "x" || len(s.Apps) != 1 || s.Apps[0].App != "lu" {
		t.Fatalf("decoded %+v", s)
	}

	bad := map[string]string{
		"unknown field":  `{"name":"x","apps":[],"platform":["svm"]}`,
		"trailing data":  `{"name":"x"} {"name":"y"}`,
		"not an object":  `[1,2,3]`,
		"empty document": ``,
	}
	for what, doc := range bad {
		if _, err := DecodeSpec([]byte(doc)); err == nil {
			t.Errorf("DecodeSpec accepted %s: %s", what, doc)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	mutations := []struct {
		what string
		mut  func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"whitespace name", func(s *Spec) { s.Name = "a b" }},
		{"no apps", func(s *Spec) { s.Apps = nil }},
		{"unknown app", func(s *Spec) { s.Apps[0].App = "nope" }},
		{"no versions", func(s *Spec) { s.Apps[0].Versions = nil }},
		{"unknown version", func(s *Spec) { s.Apps[0].Versions = []string{"nope"} }},
		{"unknown platform", func(s *Spec) { s.Platforms = []string{"vax"} }},
		{"no procs", func(s *Spec) { s.Procs = nil }},
		{"zero procs", func(s *Spec) { s.Procs = []int{0} }},
		{"negative scale", func(s *Spec) { s.Scales = []float64{-1} }},
		{"zero scale", func(s *Spec) { s.Scales = []float64{0} }},
	}
	for _, m := range mutations {
		s := tinySpec()
		m.mut(s)
		if _, err := s.Expand(); err == nil {
			t.Errorf("Expand accepted spec with %s", m.what)
		}
	}
	if _, err := tinySpec().Expand(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestExpandDeterministicSortedDeduped(t *testing.T) {
	cells, err := tinySpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	if !sort.SliceIsSorted(cells, func(i, j int) bool { return cells[i].Key < cells[j].Key }) {
		t.Error("cells not sorted by memo key")
	}

	// Reordering and duplicating axis values must not change the manifest.
	s2 := tinySpec()
	s2.Platforms = []string{"smp", "svm", "smp"}
	s2.Procs = []int{4, 1, 4}
	s2.Apps[0].Versions = []string{"4da", "orig", "orig"}
	cells2, err := s2.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if Digest(cells) != Digest(cells2) {
		t.Error("manifest digest depends on axis spelling order")
	}
	if !reflect.DeepEqual(keysOf(cells), keysOf(cells2)) {
		t.Error("cell keys differ across axis spellings")
	}

	// Changing the matrix changes the digest.
	s3 := tinySpec()
	s3.Procs = []int{1, 4, 8}
	cells3, _ := s3.Expand()
	if Digest(cells) == Digest(cells3) {
		t.Error("different manifests share a digest")
	}
}

func keysOf(cells []Cell) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = c.Key
	}
	return out
}

func TestPredicates(t *testing.T) {
	s := tinySpec()
	s.Include = []Predicate{{Platform: "svm"}}
	cells, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("include platform=svm: got %d cells, want 4", len(cells))
	}
	for _, c := range cells {
		if c.Spec.Platform != "svm" {
			t.Errorf("include let through %s", c.Key)
		}
	}

	s = tinySpec()
	s.Exclude = []Predicate{{Version: "orig", MinProcs: 2}}
	cells, err = s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Spec.Version == "orig" && c.Spec.NumProcs >= 2 {
			t.Errorf("exclude kept %s", c.Key)
		}
	}
	if len(cells) != 6 {
		t.Fatalf("exclude orig@2+: got %d cells, want 6", len(cells))
	}

	// Predicates that drop everything are an error, not an empty campaign.
	s = tinySpec()
	s.Include = []Predicate{{App: "ocean"}}
	if _, err := s.Expand(); err == nil {
		t.Error("Expand accepted a fully filtered-out campaign")
	}
}

// Class predicates select versions through the registry's taxonomy
// metadata, so a spec can say "all algorithm-redesign variants" without
// naming each app's version spelling.
func TestClassPredicate(t *testing.T) {
	s := &Spec{
		Name: "classes",
		Apps: []AppMatrix{
			{App: "bfs", Versions: []string{"orig", "pad", "part", "dir"}},
			{App: "kvstore", Versions: []string{"orig", "pad", "open", "shard"}},
		},
		Platforms: []string{"svm"},
		Procs:     []int{4},
		Scales:    []float64{0.25},
		Include:   []Predicate{{Class: "Alg"}},
	}
	cells, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"bfs/dir": true, "kvstore/shard": true}
	if len(cells) != len(want) {
		t.Fatalf("class=Alg selected %d cells, want %d: %v", len(cells), len(want), keysOf(cells))
	}
	for _, c := range cells {
		if !want[c.Spec.App+"/"+c.Spec.Version] {
			t.Errorf("class=Alg selected %s", c.Key)
		}
	}

	// Excluding by class composes with the other predicate dimensions.
	s.Include = nil
	s.Exclude = []Predicate{{Class: "Orig", MinProcs: 2}, {Class: "P/A"}}
	cells, err = s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Spec.Version == "orig" || c.Spec.Version == "pad" {
			t.Errorf("class exclude kept %s", c.Key)
		}
	}
	if len(cells) != 4 { // part, dir, open, shard
		t.Fatalf("got %d cells after class excludes, want 4", len(cells))
	}

	// A typo'd class name is a spec error, not an empty match.
	s.Exclude = []Predicate{{Class: "Algo"}}
	if _, err := s.Expand(); err == nil {
		t.Error("Expand accepted unknown class name")
	}
	// The four paper class spellings all validate.
	for _, cl := range []string{"Orig", "P/A", "DS", "Alg"} {
		s.Exclude = []Predicate{{Class: cl, MinProcs: 1 << 20}}
		if _, err := s.Expand(); err != nil {
			t.Errorf("class %q rejected: %v", cl, err)
		}
	}
}

func TestOrigVersion(t *testing.T) {
	if v := OrigVersion("lu"); v != "orig" {
		t.Errorf("OrigVersion(lu) = %q", v)
	}
	if v := OrigVersion("barnes"); v != "splash" {
		t.Errorf("OrigVersion(barnes) = %q, want splash", v)
	}
	if v := OrigVersion("nope"); v != "orig" {
		t.Errorf("OrigVersion(nope) = %q, want orig fallback", v)
	}
}

func TestSweepCells(t *testing.T) {
	cells := SweepCells("lu", "4da", []string{"svm", "smp"}, []int{1, 4}, 1)
	// Per platform: baseline orig@1 + 4da@{1,4} = 3 cells, no dedup overlap.
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	// Sweeping the original version itself dedups the baseline against the
	// matrix's P=1 column.
	cells = SweepCells("lu", "orig", []string{"svm"}, []int{1, 4}, 1)
	if len(cells) != 2 {
		t.Fatalf("orig sweep: got %d cells, want 2 (baseline == P=1 cell)", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Key] {
			t.Errorf("duplicate cell %s", c.Key)
		}
		seen[c.Key] = true
	}
	// Barnes baselines must use its original version name.
	cells = SweepCells("barnes", "spatial", []string{"svm"}, []int{4}, 1)
	found := false
	for _, c := range cells {
		if c.Spec.Version == "splash" && c.Spec.NumProcs == 1 {
			found = true
		}
	}
	if !found {
		t.Error("barnes sweep lacks the splash uniprocessor baseline")
	}
}

func TestTableRendering(t *testing.T) {
	s := tinySpec()
	cells, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	entries := map[string]Entry{}
	for _, c := range cells {
		entries[c.Key] = Entry{Key: c.Key, Status: "done", FP: "x", End: uint64(1000 / c.Spec.NumProcs)}
	}
	// One failed cell renders as "error".
	failKey := harness.Spec{App: "lu", Version: "4da", Platform: "smp", NumProcs: 4, Scale: 0.25}.MemoKey()
	entries[failKey] = Entry{Key: failKey, Status: "failed", Kind: "deadlock"}

	table := s.Table(entries)
	if !strings.Contains(table, "lu/4da speedup vs uniprocessor original (scale 0.25)") {
		t.Errorf("table missing header:\n%s", table)
	}
	if !strings.Contains(table, "4.00") { // 4-proc perfect speedup at End=250 vs 1000
		t.Errorf("table missing speedup value:\n%s", table)
	}
	if !strings.Contains(table, "error") {
		t.Errorf("failed cell not rendered as error:\n%s", table)
	}
	// A missing baseline blanks the column rather than dividing by zero.
	baseKey := harness.Spec{App: "lu", Version: "orig", Platform: "svm", NumProcs: 1, Scale: 0.25}.MemoKey()
	delete(entries, baseKey)
	if table := s.Table(entries); !strings.Contains(table, "-") {
		t.Errorf("missing baseline not rendered as -:\n%s", table)
	}
}

func TestParseProcs(t *testing.T) {
	got, err := ParseProcs("1, 2,4")
	if err != nil || !reflect.DeepEqual(got, []int{1, 2, 4}) {
		t.Fatalf("ParseProcs = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "1,1", "-2"} {
		if _, err := ParseProcs(bad); err == nil {
			t.Errorf("ParseProcs(%q) accepted", bad)
		}
	}
}
