package campaign

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// Fleet executes cells against a serve fleet: cells are sharded by the
// same consistent-hash ring the fleet itself routes by (so almost every
// batch lands directly on its cells' owner and no forwarding hop is
// paid), grouped into NDJSON POST /run batches, and retried with
// exponential backoff on transient failures — an unreachable node, a 5xx,
// a shed 429, a cut stream. Deterministic outcomes (200 results and 422
// structured failures) are never retried. Batches carry the X-Campaign
// header so the fleet's /metrics export campaign progress.
type Fleet struct {
	// Addrs are the fleet members, as base URLs or host:port.
	Addrs []string
	// Campaign is the X-Campaign header value (the campaign name).
	Campaign string
	// BatchSize bounds cells per POST (default 64): small enough that a
	// lost stream re-runs little, large enough to amortize the request.
	BatchSize int
	// Workers bounds concurrent batch requests (default 2 per node).
	Workers int
	// MaxAttempts bounds tries per cell, first included (default 4).
	MaxAttempts int
	// Backoff is the first retry's delay, doubled per attempt and capped
	// at 5s (default 250ms).
	Backoff time.Duration
	// Client issues the requests (default: a keep-alive client with no
	// overall timeout — batches of cold simulations are legitimately
	// slow, and ctx bounds the campaign).
	Client *http.Client
}

func (f *Fleet) client() *http.Client {
	if f.Client != nil {
		return f.Client
	}
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	}}
}

// ringName maps a fleet address to the member name the servers hash by
// (their advertised host:port), so client-side sharding agrees with the
// fleet's own ownership ring and batches land on their owners directly.
// A mismatch is harmless — the fleet forwards — it just costs a hop.
func ringName(addr string) string {
	if i := strings.Index(addr, "://"); i >= 0 {
		addr = addr[i+3:]
	}
	return strings.TrimSuffix(addr, "/")
}

// batchJob is one POST-able chunk: cells that share an owner.
type batchJob struct {
	addr  int // index into Addrs
	cells []Cell
}

// Execute shards cells by ring ownership, posts them as batches, and
// emits every settled outcome. Transient failures rotate to the next
// fleet member (which forwards or falls back as needed) and back off
// exponentially; cells still failing after MaxAttempts are emitted as
// transient failures, which the journal deliberately does not settle.
func (f *Fleet) Execute(ctx context.Context, cells []Cell, emit func(Outcome)) {
	batchSize := f.BatchSize
	if batchSize <= 0 {
		batchSize = 64
	}
	workers := f.Workers
	if workers <= 0 {
		workers = 2 * len(f.Addrs)
	}
	maxAttempts := f.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 4
	}
	backoff := f.Backoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	client := f.client()

	names := make([]string, len(f.Addrs))
	addrOf := map[string]int{}
	for i, a := range f.Addrs {
		names[i] = ringName(a)
		addrOf[names[i]] = i
	}
	ring := cluster.NewRing(names, 0)

	// Group cells by owner, preserving manifest order within each group.
	byOwner := map[int][]Cell{}
	for _, c := range cells {
		owner := 0
		if n := ring.Owner(c.Key, nil); n != "" {
			owner = addrOf[n]
		}
		byOwner[owner] = append(byOwner[owner], c)
	}
	var jobs []batchJob
	owners := make([]int, 0, len(byOwner))
	for o := range byOwner {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	for _, o := range owners {
		group := byOwner[o]
		for len(group) > 0 {
			n := min(batchSize, len(group))
			jobs = append(jobs, batchJob{addr: o, cells: group[:n]})
			group = group[n:]
		}
	}

	if workers > len(jobs) {
		workers = len(jobs)
	}
	jobCh := make(chan batchJob)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				f.runJob(ctx, client, job, maxAttempts, backoff, emit)
			}
		}()
	}
feed:
	for _, job := range jobs {
		select {
		case jobCh <- job:
		case <-ctx.Done():
			break feed // unqueued batches stay pending for the resume
		}
	}
	close(jobCh)
	wg.Wait()
}

// runJob drives one batch to completion: POST, settle what settled,
// retry the rest against the next member after a backoff.
func (f *Fleet) runJob(ctx context.Context, client *http.Client, job batchJob, maxAttempts int, backoff time.Duration, emit func(Outcome)) {
	remaining := job.cells
	addr := job.addr
	for attempt := 1; ; attempt++ {
		settled, transient, terr := f.postBatch(ctx, client, f.Addrs[addr], remaining, attempt)
		for _, o := range settled {
			emit(o)
		}
		if len(transient) == 0 {
			return
		}
		if ctx.Err() != nil {
			return // canceled: unsettled cells stay pending for the resume
		}
		if attempt >= maxAttempts {
			msg := "transient failure after retries"
			if terr != "" {
				msg += ": " + terr
			}
			for _, c := range transient {
				emit(Outcome{Cell: c, Err: msg, Attempts: attempt})
			}
			return
		}
		delay := backoff << (attempt - 1)
		if delay > 5*time.Second {
			delay = 5 * time.Second
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return
		}
		remaining = transient
		addr = (addr + 1) % len(f.Addrs) // a dead owner's cells reach a peer, which forwards or falls back
	}
}

// postBatch sends one POST /run batch and splits the cells into settled
// outcomes and transient leftovers. terr describes the transport-level
// cause when the whole batch (or its tail) failed.
func (f *Fleet) postBatch(ctx context.Context, client *http.Client, baseAddr string, cells []Cell, attempt int) (settled []Outcome, transient []Cell, terr string) {
	req := make([]server.BatchCell, len(cells))
	for i, c := range cells {
		req[i] = server.BatchCell{
			App:      c.Spec.App,
			Version:  c.Spec.Version,
			Platform: c.Spec.Platform,
			Procs:    c.Spec.NumProcs,
			Scale:    c.Spec.Scale,
			Check:    c.Spec.Check,
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, cells, err.Error()
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, cluster.BaseURL(baseAddr)+"/run", bytes.NewReader(body))
	if err != nil {
		return nil, cells, err.Error()
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(server.CampaignHeader, f.Campaign)
	if attempt > 1 {
		httpReq.Header.Set(server.CampaignRetryHeader, strconv.Itoa(attempt-1))
	}
	resp, err := client.Do(httpReq)
	if err != nil {
		return nil, cells, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Whole-batch rejection: 429 shed, 400, 5xx. All transient from
		// the campaign's point of view — a 400 here means a server-side
		// limit (e.g. batch size), and rotating/retrying is still the
		// right move until attempts run out.
		io.Copy(io.Discard, resp.Body)
		return nil, cells, fmt.Sprintf("%s: HTTP %d", baseAddr, resp.StatusCode)
	}

	got := make([]bool, len(cells))
	r := bufio.NewReader(resp.Body)
	for {
		line, err := r.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			var res server.BatchResult
			if jerr := json.Unmarshal(line, &res); jerr == nil && res.Index >= 0 && res.Index < len(cells) && !got[res.Index] {
				c := cells[res.Index]
				switch {
				case res.Code == http.StatusOK || res.Code == http.StatusUnprocessableEntity:
					got[res.Index] = true
					settled = append(settled, Outcome{Cell: c, Code: res.Code, Body: []byte(res.Body), Attempts: attempt})
				case res.Code == http.StatusBadRequest:
					got[res.Index] = true
					settled = append(settled, Outcome{Cell: c, Code: res.Code, Err: res.Error, Attempts: attempt})
				default:
					// 429/504 for one cell inside an accepted batch:
					// leave it un-got, it lands in transient below.
				}
			}
		}
		if err != nil {
			if err != io.EOF {
				terr = err.Error()
			}
			break
		}
	}
	for i, ok := range got {
		if !ok {
			transient = append(transient, cells[i])
		}
	}
	if len(transient) > 0 && terr == "" {
		terr = baseAddr + ": incomplete batch response"
	}
	return settled, transient, terr
}
