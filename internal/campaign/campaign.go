// Package campaign drives large, long-running, interruptible experiment
// campaigns: it expands a declarative spec (apps × versions × platforms ×
// processor counts × scales, with include/exclude predicates) into a
// deterministic, memo-key-ordered cell manifest, and executes it either
// locally (a bounded worker pool over the harness memo/store tiers) or
// distributed across a serve fleet (cells sharded by consistent-hash
// ownership and shipped as batched NDJSON POST /run, with per-cell
// retry/backoff on transient failures).
//
// Progress is checkpointed in a journal (see Journal): every completed
// cell is appended with its result fingerprint, so killing a campaign at
// any point and re-invoking it resumes with zero recomputation — journaled
// cells are skipped outright, and cells that finished in the persistent
// store but missed the journal come back as store hits rather than
// simulations. A completed campaign re-run executes nothing and emits a
// byte-identical manifest summary.
//
// The cell bytes a campaign fingerprints are the canonical single-cell
// document (server.CellBody — the exact bytes `svmsim -json` prints), so
// local and fleet execution of the same spec produce identical
// fingerprints cell for cell.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/platform"
	"repro/internal/store"
)

// Spec declares a campaign: the cross product of its axes, filtered by the
// optional include/exclude predicates. The JSON form is what `campaign
// -spec FILE` reads; see campaigns/scaling128.json for the committed
// big-proc scaling study.
type Spec struct {
	// Name identifies the campaign in journals, manifests, progress
	// events, and the X-Campaign header on fleet batches.
	Name string `json:"name"`
	// Apps lists each application with the versions to run.
	Apps []AppMatrix `json:"apps"`
	// Platforms, Procs and Scales are the remaining axes; every
	// combination is a cell unless a predicate filters it.
	Platforms []string  `json:"platforms"`
	Procs     []int     `json:"procs"`
	Scales    []float64 `json:"scales"`
	// Check enables the runtime invariant checker on every cell.
	Check bool `json:"check,omitempty"`
	// Include, when non-empty, keeps only cells matching at least one
	// predicate; Exclude then drops cells matching any of its predicates.
	Include []Predicate `json:"include,omitempty"`
	Exclude []Predicate `json:"exclude,omitempty"`
}

// AppMatrix is one application axis entry: the app and its versions.
type AppMatrix struct {
	App      string   `json:"app"`
	Versions []string `json:"versions"`
}

// Predicate matches a subset of the expanded cells. Empty string fields
// and zero numeric fields match everything, so a predicate names only the
// dimensions it constrains: {"app":"ocean","min_procs":64} matches every
// ocean cell at 64+ processors.
type Predicate struct {
	App      string  `json:"app,omitempty"`
	Version  string  `json:"version,omitempty"`
	Platform string  `json:"platform,omitempty"`
	MinProcs int     `json:"min_procs,omitempty"`
	MaxProcs int     `json:"max_procs,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	// Class selects versions by their optimization class from the paper's
	// taxonomy: "Orig", "P/A", "DS", or "Alg". It matches the registry's
	// Version.Class, so a spec can say "every algorithm-redesign variant"
	// without naming each app's version spelling.
	Class string `json:"class,omitempty"`
}

// classNames are the spellings Predicate.Class accepts: the String()
// forms of the paper's four optimization classes.
var classNames = map[string]core.Class{
	core.Orig.String(): core.Orig,
	core.PA.String():   core.PA,
	core.DS.String():   core.DS,
	core.Alg.String():  core.Alg,
}

// matches reports whether the predicate selects s.
func (p Predicate) matches(s harness.Spec) bool {
	if p.App != "" && p.App != s.App {
		return false
	}
	if p.Version != "" && p.Version != s.Version {
		return false
	}
	if p.Class != "" {
		a, err := core.Lookup(s.App)
		if err != nil {
			return false
		}
		v, err := core.FindVersion(a, s.Version)
		if err != nil || v.Class.String() != p.Class {
			return false
		}
	}
	if p.Platform != "" && p.Platform != s.Platform {
		return false
	}
	if p.MinProcs > 0 && s.NumProcs < p.MinProcs {
		return false
	}
	if p.MaxProcs > 0 && s.NumProcs > p.MaxProcs {
		return false
	}
	if p.Scale > 0 && p.Scale != s.Scale {
		return false
	}
	return true
}

// Cell is one expanded experiment of a campaign: the fully-defaulted spec
// and its memo key — the name the cell goes by in the journal, the
// manifest, the persistent store, and the fleet ownership ring.
type Cell struct {
	Spec harness.Spec
	Key  string
}

// DecodeSpec parses a campaign spec document, rejecting unknown fields so
// a typo'd axis name fails loudly instead of silently shrinking the
// matrix.
func DecodeSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("campaign: parsing spec: %w", err)
	}
	// Trailing garbage after the document would mean a concatenated or
	// corrupted file; refuse it.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("campaign: trailing data after spec document")
	}
	return &s, nil
}

// validate checks the axes before expansion. App and version names are
// checked against the registry, platforms against the preset list: a
// campaign of thousands of cells should fail on the typo, not journal
// thousands of error rows.
func (s *Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("campaign: spec has no name")
	}
	if strings.ContainsAny(s.Name, " \t\r\n") {
		return fmt.Errorf("campaign: name %q contains whitespace", s.Name)
	}
	if len(s.Apps) == 0 || len(s.Platforms) == 0 || len(s.Procs) == 0 || len(s.Scales) == 0 {
		return fmt.Errorf("campaign: spec needs at least one app, platform, processor count, and scale")
	}
	for _, am := range s.Apps {
		a, err := core.Lookup(am.App)
		if err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		if len(am.Versions) == 0 {
			return fmt.Errorf("campaign: app %q lists no versions", am.App)
		}
		for _, v := range am.Versions {
			if _, err := core.FindVersion(a, v); err != nil {
				return fmt.Errorf("campaign: %w", err)
			}
		}
	}
	for _, pl := range s.Platforms {
		if !platform.Known(pl) {
			return fmt.Errorf("campaign: unknown platform %q", pl)
		}
	}
	for _, np := range s.Procs {
		if np < 1 {
			return fmt.Errorf("campaign: bad processor count %d (want a positive integer)", np)
		}
	}
	for _, sc := range s.Scales {
		if sc <= 0 {
			return fmt.Errorf("campaign: bad scale %g (want a positive number)", sc)
		}
	}
	for _, preds := range [][]Predicate{s.Include, s.Exclude} {
		for _, p := range preds {
			if p.Class == "" {
				continue
			}
			if _, ok := classNames[p.Class]; !ok {
				names := make([]string, 0, len(classNames))
				for n := range classNames {
					names = append(names, n)
				}
				sort.Strings(names)
				return fmt.Errorf("campaign: unknown optimization class %q in predicate (want one of %v)", p.Class, names)
			}
		}
	}
	return nil
}

// Expand validates the spec and enumerates its cell manifest: the full
// cross product, predicate-filtered, deduplicated, and sorted by memo
// key. The order is deterministic for a given spec regardless of how the
// axes are spelled, so journals, manifests, and fleet sharding all agree
// across runs and machines.
func (s *Spec) Expand() ([]Cell, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var cells []Cell
	for _, am := range s.Apps {
		for _, v := range am.Versions {
			for _, pl := range s.Platforms {
				for _, np := range s.Procs {
					for _, sc := range s.Scales {
						spec := harness.Spec{
							App: am.App, Version: v, Platform: pl,
							NumProcs: np, Scale: sc, Check: s.Check,
						}
						if !s.selects(spec) {
							continue
						}
						key := spec.MemoKey()
						if seen[key] {
							continue
						}
						seen[key] = true
						cells = append(cells, Cell{Spec: spec, Key: key})
					}
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("campaign: predicates filtered out every cell")
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Key < cells[j].Key })
	return cells, nil
}

// selects applies the include/exclude predicates to one cell spec.
func (s *Spec) selects(spec harness.Spec) bool {
	if len(s.Include) > 0 {
		hit := false
		for _, p := range s.Include {
			if p.matches(spec) {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	for _, p := range s.Exclude {
		if p.matches(spec) {
			return false
		}
	}
	return true
}

// Digest names a cell manifest: a journal written for one digest can only
// resume a campaign that expands to the identical cell set, so editing a
// spec mid-campaign is caught instead of silently mixing manifests.
func Digest(cells []Cell) string {
	h := sha256.New()
	io.WriteString(h, "repro-campaign-cells-v1\n")
	for _, c := range cells {
		io.WriteString(h, c.Key)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// OrigVersion returns the application's original version name (the
// paper's speedup denominator source: "orig" for most apps, "splash" for
// barnes). Unknown apps fall back to "orig", which then fails at
// execution with the registry's error, exactly as a hand-written spec
// would.
func OrigVersion(app string) string {
	a, err := core.Lookup(app)
	if err != nil {
		return "orig"
	}
	return a.Versions()[0].Name
}

// ParseProcs parses a -procs flag value: comma-separated positive
// integers with no duplicates. A dup would either waste a run or (worse)
// silently render the same column twice. Shared by cmd/sweep and
// cmd/campaign so the flag grammar cannot drift between them.
func ParseProcs(s string) ([]int, error) {
	var counts []int
	seen := map[int]bool{}
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad processor count %q (want a positive integer)", strings.TrimSpace(f))
		}
		if seen[n] {
			return nil, fmt.Errorf("duplicate processor count %d in -procs %q", n, s)
		}
		seen[n] = true
		counts = append(counts, n)
	}
	return counts, nil
}

// OpenMemo builds the experiment cache every command executes through: an
// in-memory memo over the persistent store at dir, or memo-only when dir
// is empty. Shared by figures, sweep, svmsim, and campaign so the
// store-opening boilerplate lives once.
func OpenMemo(dir string) (*harness.Memo, error) {
	if dir == "" {
		return harness.NewMemo(nil), nil
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return harness.NewMemo(st), nil
}

// SweepCells enumerates cmd/sweep's matrix for one app/version: every
// (processor count × platform) cell plus each platform's uniprocessor
// baseline of the original version, deduplicated (a 1-processor sweep of
// the original version IS its own baseline). This is the same enumeration
// a one-app campaign spec expands to; sweep is a thin rendering over it.
func SweepCells(app, version string, plats []string, procs []int, scale float64) []Cell {
	orig := OrigVersion(app)
	seen := map[string]bool{}
	var cells []Cell
	add := func(spec harness.Spec) {
		key := spec.MemoKey()
		if !seen[key] {
			seen[key] = true
			cells = append(cells, Cell{Spec: spec, Key: key})
		}
	}
	for _, pl := range plats {
		add(harness.Spec{App: app, Version: orig, Platform: pl, NumProcs: 1, Scale: scale})
		for _, np := range procs {
			add(harness.Spec{App: app, Version: version, Platform: pl, NumProcs: np, Scale: scale})
		}
	}
	return cells
}
