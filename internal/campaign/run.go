package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/harness"
	"repro/internal/server"
)

// Outcome is one executed cell attempt's final result, as reported by an
// Executor. Exactly one of Body / Err is meaningful: Body carries the
// canonical single-cell document bytes (200 results and 422 failure
// documents alike), Err a non-document failure (a cell-level 400 from the
// batch endpoint, or a transient failure that exhausted its retries).
type Outcome struct {
	Cell     Cell
	Code     int    // HTTP-style: 200, 422, 400; 0 with Err set for transient
	Body     []byte // canonical document bytes, trailing newline included
	Err      string // non-document failure message
	Attempts int    // execution attempts (>1 after fleet retries)
}

// Executor executes cells, invoking emit exactly once per cell it
// completes (from any goroutine). It returns when every cell has been
// emitted or ctx is canceled; cells not emitted before cancellation stay
// pending — the journal never sees them, so a resume picks them up.
type Executor interface {
	Execute(ctx context.Context, cells []Cell, emit func(Outcome))
}

// Local executes cells in-process through a memo: a bounded worker pool
// of single-threaded simulations, the same engine figures and sweep use.
type Local struct {
	Memo *harness.Memo
	// Workers bounds concurrent simulations (GOMAXPROCS when <= 0).
	Workers int
}

// Execute runs the cells through the memo, producing for each the exact
// bytes a serve fleet would return for it (server.CellBody), so local and
// fleet campaigns fingerprint identically.
func (l *Local) Execute(ctx context.Context, cells []Cell, emit func(Outcome)) {
	workers := l.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 0 {
		return
	}
	work := make(chan Cell)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				body, _, code := server.CellBody(l.Memo, c.Spec, false)
				emit(Outcome{Cell: c, Code: code, Body: body, Attempts: 1})
			}
		}()
	}
feed:
	for _, c := range cells {
		select {
		case work <- c:
		case <-ctx.Done():
			break feed // in-flight cells finish and are journaled; the rest stay pending
		}
	}
	close(work)
	wg.Wait()
}

// fingerprint names a cell's document bytes: first 8 bytes of SHA-256,
// hex — the value local/fleet identity is asserted on.
func fingerprint(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:8])
}

// cellDocument is the subset of the single-cell JSON document the journal
// needs: the simulated end time of a result, or the structured error of a
// 422 failure document.
type cellDocument struct {
	EndTime uint64 `json:"end_time"`
	Error   *struct {
		Kind    string `json:"kind"`
		Message string `json:"message"`
	} `json:"error"`
}

// entryFor derives the journal entry for an outcome. Everything in the
// entry comes from the document bytes (not from in-process error values),
// so local and fleet execution journal identically.
func entryFor(o Outcome) Entry {
	e := Entry{Key: o.Cell.Key, Attempts: o.Attempts}
	if o.Body == nil {
		e.Status = "failed"
		e.Msg = firstLine(o.Err)
		if o.Code == http.StatusBadRequest {
			e.Kind = "request"
		} else {
			e.Kind = KindTransient
		}
		return e
	}
	e.FP = fingerprint(o.Body)
	var doc cellDocument
	if err := json.Unmarshal(o.Body, &doc); err != nil {
		// A document that does not parse is not a cell result; treat it
		// like a transport failure so the cell is retried, never settled
		// on garbage.
		e.Status = "failed"
		e.Kind = KindTransient
		e.Msg = firstLine("undecodable cell document: " + err.Error())
		e.FP = ""
		return e
	}
	if doc.Error != nil {
		e.Status = "failed"
		e.Kind = doc.Error.Kind
		e.Msg = firstLine(doc.Error.Message)
		return e
	}
	e.Status = "done"
	e.End = doc.EndTime
	return e
}

// firstLine truncates multi-line failure text for one-line journal and
// report rows.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " ..."
	}
	return s
}

// Runner executes a campaign's pending cells through an executor,
// journaling each completion. Wire OnEntry for progress reporting.
type Runner struct {
	// Name identifies the campaign (Spec.Name for spec-driven runs).
	Name string
	// Cells is the full expanded manifest, memo-key-ordered.
	Cells []Cell
	// Journal, when non-nil, is consulted for already-complete cells and
	// appended to as cells finish. A nil journal runs everything fresh
	// and keeps results only in memory (cmd/sweep).
	Journal *Journal
	// Exec runs the pending cells (Local or Fleet).
	Exec Executor
	// OnEntry, when non-nil, is called after each cell is journaled —
	// from executor goroutines, so it must be safe for concurrent use.
	OnEntry func(Cell, Entry)
	// StopAfter, when positive, cancels the run after that many newly
	// journaled cells — the deterministic "kill it mid-flight" used by
	// the resume tests and the CI smoke.
	StopAfter int
}

// Report is the final state of one Run call.
type Report struct {
	Name   string
	Digest string
	// Cells is the full manifest; Entries holds the settled state of
	// every completed cell (journal-resumed and newly executed).
	Cells   []Cell
	Entries map[string]Entry
	// Resumed counts cells already complete in the journal; Executed
	// counts cells this run completed; Interrupted reports whether the
	// run stopped (ctx canceled or StopAfter reached) with cells still
	// pending.
	Resumed     int
	Executed    int
	Interrupted bool
}

// Failed returns the failed cells' entries, sorted by key.
func (rep *Report) Failed() []Entry {
	var out []Entry
	for _, c := range rep.Cells {
		if e, ok := rep.Entries[c.Key]; ok && e.Status == "failed" {
			out = append(out, e)
		}
	}
	return out
}

// Run expands nothing and retries nothing itself: it skips cells the
// journal already settled, hands the rest to the executor, and journals
// completions as they arrive. It returns ctx.Err when interrupted; the
// report is valid either way.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	rep := &Report{
		Name:    r.Name,
		Digest:  Digest(r.Cells),
		Cells:   r.Cells,
		Entries: map[string]Entry{},
	}
	var pending []Cell
	if r.Journal != nil {
		journaled := r.Journal.Entries()
		for _, c := range r.Cells {
			if e, ok := journaled[c.Key]; ok && e.Complete() {
				rep.Entries[c.Key] = e
				rep.Resumed++
				continue
			}
			pending = append(pending, c)
		}
	} else {
		pending = r.Cells
	}
	if len(pending) == 0 {
		return rep, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var mu sync.Mutex
	emit := func(o Outcome) {
		e := entryFor(o)
		mu.Lock()
		if r.Journal != nil {
			if err := r.Journal.Append(e); err != nil {
				// A journal write failure (full disk, removed file) costs
				// resumability, not results: the entry still counts in
				// this run's report.
				fmt.Fprintln(os.Stderr, "campaign:", err)
			}
		}
		rep.Entries[o.Cell.Key] = e
		rep.Executed++
		stop := r.StopAfter > 0 && rep.Executed >= r.StopAfter
		mu.Unlock()
		if r.OnEntry != nil {
			r.OnEntry(o.Cell, e)
		}
		if stop {
			cancel()
		}
	}
	r.Exec.Execute(ctx, pending, emit)

	mu.Lock()
	rep.Interrupted = rep.Executed < len(pending)
	mu.Unlock()
	if err := ctx.Err(); err != nil && rep.Interrupted {
		return rep, err
	}
	return rep, nil
}

// Manifest renders the campaign's deterministic summary: one line per
// manifest cell in memo-key order with its status and result fingerprint.
// Two runs of the same spec over the same simulator build — interrupted
// and resumed any number of times, locally or against a fleet — produce
// byte-identical manifests.
func (rep *Report) Manifest() string {
	var b strings.Builder
	done, failed, pendingN := 0, 0, 0
	for _, c := range rep.Cells {
		switch e, ok := rep.Entries[c.Key]; {
		case !ok:
			pendingN++
		case e.Status == "done":
			done++
		default:
			failed++
		}
	}
	fmt.Fprintf(&b, "campaign %s digest %s cells %d\n", rep.Name, rep.Digest, len(rep.Cells))
	fmt.Fprintf(&b, "done %d failed %d pending %d\n", done, failed, pendingN)
	for _, c := range rep.Cells {
		e, ok := rep.Entries[c.Key]
		switch {
		case !ok:
			fmt.Fprintf(&b, "pending - - %s\n", c.Key)
		case e.Status == "done":
			fmt.Fprintf(&b, "done %s end=%d %s\n", e.FP, e.End, c.Key)
		default:
			fp := e.FP
			if fp == "" {
				fp = "-"
			}
			fmt.Fprintf(&b, "failed %s %s %s\n", e.Kind, fp, c.Key)
		}
	}
	return b.String()
}

// Table renders the campaign's scaling tables from settled entries: for
// each (app, version, scale) of the spec, speedup over the platform's
// uniprocessor original version (the paper's convention) per processor
// count and platform. Failed cells render as "error", cells outside the
// manifest or still pending as "-"; when a platform's baseline is
// missing, its whole column is "-".
func (s *Spec) Table(entries map[string]Entry) string {
	procs := append([]int(nil), s.Procs...)
	sort.Ints(procs)
	end := func(spec harness.Spec) (uint64, bool) {
		e, ok := entries[spec.MemoKey()]
		if !ok || e.Status != "done" || e.End == 0 {
			return 0, false
		}
		return e.End, true
	}
	var b strings.Builder
	for _, am := range s.Apps {
		orig := OrigVersion(am.App)
		for _, v := range am.Versions {
			for _, sc := range s.Scales {
				fmt.Fprintf(&b, "%s/%s speedup vs uniprocessor original (scale %.2g)\n", am.App, v, sc)
				fmt.Fprintf(&b, "%6s", "P")
				for _, pl := range s.Platforms {
					fmt.Fprintf(&b, " %8s", pl)
				}
				fmt.Fprintln(&b)
				for _, np := range procs {
					fmt.Fprintf(&b, "%6d", np)
					for _, pl := range s.Platforms {
						base, okB := end(harness.Spec{App: am.App, Version: orig, Platform: pl, NumProcs: 1, Scale: sc, Check: s.Check})
						spec := harness.Spec{App: am.App, Version: v, Platform: pl, NumProcs: np, Scale: sc, Check: s.Check}
						e, okE := entries[spec.MemoKey()]
						switch {
						case okE && e.Status == "failed":
							fmt.Fprintf(&b, " %8s", "error")
						case !okB || !okE || e.End == 0:
							fmt.Fprintf(&b, " %8s", "-")
						default:
							fmt.Fprintf(&b, " %8.2f", float64(base)/float64(e.End))
						}
					}
					fmt.Fprintln(&b)
				}
				fmt.Fprintln(&b)
			}
		}
	}
	return strings.TrimSuffix(b.String(), "\n")
}
