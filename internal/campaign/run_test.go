package campaign

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	_ "repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/stats"
)

// stubMemo builds a memo whose executor is a fast deterministic fake,
// counting executions. End time is a pure function of the spec so
// fingerprints are stable across memos and processes.
func stubMemo(execs *atomic.Uint64) *harness.Memo {
	memo := harness.NewMemo(nil)
	memo.Exec = func(s harness.Spec) (*stats.Run, error) {
		execs.Add(1)
		if s.App == "radix" && s.NumProcs == 4 {
			// One deterministically failing cell for the error-row paths.
			// StoredError carries an explicit kind through RunErrorJSON.
			return nil, &harness.StoredError{Kind: "deadlock", Msg: "stub deadlock"}
		}
		r := stats.NewRun(s.App, s.NumProcs)
		r.EndTime = 1000*uint64(len(s.App))/uint64(s.NumProcs) + uint64(s.Scale*16)
		for p := range r.Procs {
			r.Procs[p].Cycles[stats.Compute] = r.EndTime
		}
		return r, nil
	}
	return memo
}

func runSpec() *Spec {
	return &Spec{
		Name:      "runtest",
		Apps:      []AppMatrix{{App: "lu", Versions: []string{"orig", "4da"}}, {App: "radix", Versions: []string{"orig"}}},
		Platforms: []string{"svm", "smp"},
		Procs:     []int{1, 4},
		Scales:    []float64{0.25},
	}
}

func runCampaign(t *testing.T, cells []Cell, j *Journal, memo *harness.Memo, stopAfter int) (*Report, error) {
	t.Helper()
	r := &Runner{
		Name:      "runtest",
		Cells:     cells,
		Journal:   j,
		Exec:      &Local{Memo: memo, Workers: 4},
		StopAfter: stopAfter,
	}
	return r.Run(context.Background())
}

// TestKillResumeZeroRecompute is the PR's core acceptance test: interrupt a
// campaign mid-flight, resume it (fresh memo, as a new process would have),
// and verify the resume executes only the cells the journal does not hold —
// zero recomputation — and that the final manifest is byte-identical to an
// uninterrupted run's.
func TestKillResumeZeroRecompute(t *testing.T) {
	cells, err := runSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	digest := Digest(cells)
	dir := t.TempDir()

	// Reference: one uninterrupted run.
	var refExecs atomic.Uint64
	jRef, err := OpenJournal(filepath.Join(dir, "ref.journal"), "runtest", digest, len(cells), false)
	if err != nil {
		t.Fatal(err)
	}
	repRef, err := runCampaign(t, cells, jRef, stubMemo(&refExecs), 0)
	jRef.Close()
	if err != nil {
		t.Fatal(err)
	}
	wantManifest := repRef.Manifest()
	if repRef.Interrupted || refExecs.Load() != uint64(len(cells)) {
		t.Fatalf("reference run: interrupted=%v execs=%d want %d", repRef.Interrupted, refExecs.Load(), len(cells))
	}

	// Interrupted run: stop after 5 journaled cells.
	const stopAfter = 5
	jpath := filepath.Join(dir, "c.journal")
	var execs1 atomic.Uint64
	j1, err := OpenJournal(jpath, "runtest", digest, len(cells), false)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := runCampaign(t, cells, j1, stubMemo(&execs1), stopAfter)
	j1.Close()
	if err == nil || !rep1.Interrupted {
		t.Fatalf("interrupted run: err=%v interrupted=%v", err, rep1.Interrupted)
	}
	settled := len(rep1.Entries)
	if settled >= len(cells) {
		t.Fatalf("interrupt settled everything (%d cells); nothing left to prove resume on", settled)
	}

	// Resume with a FRESH memo: only journal state carries over.
	var execs2 atomic.Uint64
	j2, err := OpenJournal(jpath, "runtest", digest, len(cells), true)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := runCampaign(t, cells, j2, stubMemo(&execs2), 0)
	j2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != settled {
		t.Errorf("resume skipped %d cells, journal held %d", rep2.Resumed, settled)
	}
	if got, want := execs1.Load()+execs2.Load(), uint64(len(cells)); got != want {
		t.Errorf("interrupt+resume executed %d simulations total, want exactly %d (zero recomputation)", got, want)
	}
	if got := rep2.Manifest(); got != wantManifest {
		t.Errorf("resumed manifest differs from uninterrupted run:\n--- want\n%s\n--- got\n%s", wantManifest, got)
	}

	// Fully-warm third run: the journal is complete, so zero simulations.
	var execs3 atomic.Uint64
	j3, err := OpenJournal(jpath, "runtest", digest, len(cells), true)
	if err != nil {
		t.Fatal(err)
	}
	memo3 := stubMemo(&execs3)
	rep3, err := runCampaign(t, cells, j3, memo3, 0)
	j3.Close()
	if err != nil {
		t.Fatal(err)
	}
	if execs3.Load() != 0 {
		t.Errorf("warm re-run executed %d simulations, want 0", execs3.Load())
	}
	if st := memo3.Stats(); st.Executions != 0 {
		t.Errorf("warm re-run CacheStats.Executions = %d, want 0", st.Executions)
	}
	if got := rep3.Manifest(); got != wantManifest {
		t.Errorf("warm manifest differs:\n--- want\n%s\n--- got\n%s", wantManifest, got)
	}
	if rep3.Resumed != len(cells) || rep3.Executed != 0 {
		t.Errorf("warm run resumed=%d executed=%d, want %d/0", rep3.Resumed, rep3.Executed, len(cells))
	}
}

// TestManifestShape pins the manifest line format: deterministic failures
// settle as failed rows, and the radix deadlock is one of them.
func TestManifestShape(t *testing.T) {
	cells, err := runSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Uint64
	rep, err := runCampaign(t, cells, nil, stubMemo(&execs), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Manifest()
	if !strings.HasPrefix(m, fmt.Sprintf("campaign runtest digest %s cells %d\n", Digest(cells), len(cells))) {
		t.Errorf("manifest header:\n%s", m)
	}
	// radix@4 fails deterministically on both platforms.
	if !strings.Contains(m, "failed deadlock") {
		t.Errorf("manifest lacks the deterministic failure rows:\n%s", m)
	}
	if strings.Contains(m, "pending") && !strings.Contains(m, "pending 0") {
		t.Errorf("completed campaign reports pending cells:\n%s", m)
	}
	fails := rep.Failed()
	if len(fails) != 2 {
		t.Errorf("Failed() = %d entries, want 2 (radix@4 on 2 platforms)", len(fails))
	}
	for _, e := range fails {
		if e.Kind != "deadlock" || e.FP == "" {
			t.Errorf("failure entry %+v: want kind=deadlock with a document fingerprint", e)
		}
	}
}

// TestEntryFor pins the outcome→entry derivation rules.
func TestEntryFor(t *testing.T) {
	c := Cell{Key: "k"}
	// Transient (no body, no code).
	e := entryFor(Outcome{Cell: c, Err: "node down", Attempts: 3})
	if e.Status != "failed" || e.Kind != KindTransient || e.Attempts != 3 || e.Complete() {
		t.Errorf("transient entry %+v", e)
	}
	// Cell-level 400: deterministic request failure.
	e = entryFor(Outcome{Cell: c, Code: http.StatusBadRequest, Err: "unknown version"})
	if e.Status != "failed" || e.Kind != "request" || !e.Complete() {
		t.Errorf("request entry %+v", e)
	}
	// 422 failure document settles with its kind.
	doc := []byte(`{"error":{"kind":"verify","message":"bad sum"}}` + "\n")
	e = entryFor(Outcome{Cell: c, Code: 422, Body: doc, Attempts: 1})
	if e.Status != "failed" || e.Kind != "verify" || e.Msg != "bad sum" || e.FP == "" || !e.Complete() {
		t.Errorf("document failure entry %+v", e)
	}
	// Result document settles done with the end time.
	doc = []byte(`{"end_time":42}` + "\n")
	e = entryFor(Outcome{Cell: c, Code: 200, Body: doc, Attempts: 1})
	if e.Status != "done" || e.End != 42 || e.FP != fingerprint(doc) {
		t.Errorf("done entry %+v", e)
	}
	// Garbage bytes never settle a cell.
	e = entryFor(Outcome{Cell: c, Code: 200, Body: []byte("<html>proxy error"), Attempts: 1})
	if e.Status != "failed" || e.Kind != KindTransient || e.Complete() || e.FP != "" {
		t.Errorf("garbage-body entry %+v", e)
	}
}
