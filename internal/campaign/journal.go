// The campaign journal is the checkpoint that makes a campaign killable:
// an append-only NDJSON file of completed cells, each entry fsynced before
// the cell is reported done. Resume reads it back conservatively — a
// torn, truncated, or corrupt tail is discarded (and physically truncated
// away so later appends start from a clean line boundary), which can only
// cost a cheap warm re-run of the affected cell, never skip an incomplete
// one.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// journalVersion stamps the header line; bump it if the entry layout
// changes incompatibly, so old journals are refused instead of misread.
const journalVersion = 1

// KindTransient marks a failure that exhausted the fleet path's retries
// (owner unreachable, repeated 5xx, stream cut). Unlike deterministic
// failure kinds ("panic", "deadlock", "invariant", "verify", "error",
// "request"), a transient entry does NOT settle its cell: the next resume
// retries it.
const KindTransient = "transient"

// Entry is one journaled cell completion.
type Entry struct {
	// Key is the cell's memo key.
	Key string `json:"key"`
	// Status is "done" or "failed".
	Status string `json:"status"`
	// FP fingerprints the cell's canonical document bytes (the exact
	// `svmsim -json` bytes, 422 failure documents included): the first 8
	// bytes of their SHA-256, hex. Empty only for failures with no
	// document (transient, request).
	FP string `json:"fp,omitempty"`
	// End is the simulated end time of a done cell, kept here so tables
	// and sweeps render from the journal without re-fetching bodies.
	End uint64 `json:"end,omitempty"`
	// Kind and Msg describe a failure: the JSON error kind and the first
	// line of the message.
	Kind string `json:"kind,omitempty"`
	Msg  string `json:"msg,omitempty"`
	// Attempts counts execution attempts, >1 only on the fleet path
	// after transient retries.
	Attempts int `json:"attempts,omitempty"`
}

// Complete reports whether the entry settles its cell on resume. Done
// results and deterministic failures are final (the simulator is
// deterministic — re-running them cannot change the outcome); transient
// failures are not, so a resumed campaign retries them.
func (e Entry) Complete() bool {
	return e.Status == "done" || (e.Status == "failed" && e.Kind != KindTransient)
}

// valid is the conservative admission rule for replay: anything that
// fails it — and everything after it in the file — is treated as never
// written.
func (e Entry) valid() bool {
	switch e.Status {
	case "done":
		return e.Key != "" && e.FP != ""
	case "failed":
		return e.Key != "" && e.Kind != ""
	}
	return false
}

// journalHeader is the first line of the file, binding it to one campaign
// cell manifest.
type journalHeader struct {
	V      int    `json:"v"`
	Name   string `json:"name"`
	Digest string `json:"digest"`
	Cells  int    `json:"cells"`
}

// Journal is an open campaign journal. Append is safe for concurrent use;
// entries become durable (fsynced) before Append returns.
type Journal struct {
	path string

	mu      sync.Mutex
	f       *os.File
	entries map[string]Entry
}

// OpenJournal creates the journal at path for a campaign with the given
// name, manifest digest, and cell count — or, with resume set, reopens an
// existing one, verifying the digest and replaying its entries.
//
// Without resume, an existing journal is an error: silently starting over
// would orphan a half-done campaign, and silently resuming would surprise
// a caller who expected a fresh run. The caller chooses explicitly.
func OpenJournal(path, name, digest string, cells int, resume bool) (*Journal, error) {
	j := &Journal{path: path, entries: map[string]Entry{}}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
	if err == nil {
		j.f = f
		hdr, merr := json.Marshal(journalHeader{V: journalVersion, Name: name, Digest: digest, Cells: cells})
		if merr == nil {
			_, err = f.Write(append(hdr, '\n'))
		} else {
			err = merr
		}
		if err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign: writing journal header: %w", err)
		}
		return j, nil
	}
	if !os.IsExist(err) {
		return nil, fmt.Errorf("campaign: creating journal: %w", err)
	}
	if !resume {
		return nil, fmt.Errorf("campaign: journal %s already exists; pass -resume to continue it or remove it to start over", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: reading journal: %w", err)
	}
	hdr, hdrLen, err := decodeJournalHeader(data)
	if err != nil {
		return nil, fmt.Errorf("campaign: journal %s: %w", path, err)
	}
	if hdr.Digest != digest {
		return nil, fmt.Errorf("campaign: journal %s was written for a different cell manifest (journal digest %s, spec digest %s); the spec changed since the journal was started", path, hdr.Digest, digest)
	}
	entries, validLen := decodeJournalEntries(data[hdrLen:])
	for _, e := range entries {
		j.entries[e.Key] = e
	}
	f, err = os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("campaign: reopening journal: %w", err)
	}
	// Physically discard the invalid tail so the next append starts at a
	// clean line boundary instead of concatenating onto a torn entry.
	if err := f.Truncate(int64(hdrLen + validLen)); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: seeking journal: %w", err)
	}
	j.f = f
	return j, nil
}

// decodeJournalHeader parses and checks the header line, returning how
// many bytes it consumed.
func decodeJournalHeader(data []byte) (journalHeader, int, error) {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return journalHeader{}, 0, fmt.Errorf("missing or torn header line")
	}
	var hdr journalHeader
	if err := json.Unmarshal(data[:i], &hdr); err != nil {
		return journalHeader{}, 0, fmt.Errorf("corrupt header: %w", err)
	}
	if hdr.V != journalVersion {
		return journalHeader{}, 0, fmt.Errorf("journal version %d, this build reads %d", hdr.V, journalVersion)
	}
	return hdr, i + 1, nil
}

// decodeJournalEntries replays entry lines conservatively: it stops at
// the first line that is torn (no trailing newline), fails to parse, or
// fails Entry.valid, and reports how many bytes of durable prefix it
// accepted. Duplicate keys keep the later entry (a resume may re-journal
// a transient cell). The fuzz suite pins this contract: validLen never
// exceeds len(data), the accepted prefix re-decodes to the same entries,
// and no invalid entry is ever returned.
func decodeJournalEntries(data []byte) (entries []Entry, validLen int) {
	off := 0
	for off < len(data) {
		i := bytes.IndexByte(data[off:], '\n')
		if i < 0 {
			break // torn tail: a write was cut mid-line
		}
		line := data[off : off+i]
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil || !e.valid() {
			break
		}
		entries = append(entries, e)
		off += i + 1
		validLen = off
	}
	return entries, validLen
}

// Entries returns a copy of the journal's current cell entries, keyed by
// memo key.
func (j *Journal) Entries() map[string]Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]Entry, len(j.entries))
	for k, e := range j.entries {
		out[k] = e
	}
	return out
}

// Append journals one completed cell, fsyncing before returning: once the
// caller reports the cell done, no crash can un-complete it.
func (j *Journal) Append(e Entry) error {
	if !e.valid() {
		return fmt.Errorf("campaign: refusing to journal invalid entry %+v", e)
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("campaign: appending journal entry: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("campaign: syncing journal: %w", err)
	}
	j.entries[e.Key] = e
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
