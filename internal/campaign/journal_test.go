package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "c.journal")
}

func TestJournalCreateAppendResume(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path, "c", "digest1", 3, false)
	if err != nil {
		t.Fatal(err)
	}
	entries := []Entry{
		{Key: "cell-a", Status: "done", FP: "aaaa", End: 100},
		{Key: "cell-b", Status: "failed", Kind: "deadlock", Msg: "stuck"},
		{Key: "cell-c", Status: "failed", Kind: KindTransient, Msg: "node down"},
	}
	for _, e := range entries {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Reopening without -resume is refused: the caller must choose.
	if _, err := OpenJournal(path, "c", "digest1", 3, false); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("reopen without resume: %v", err)
	}
	// A different manifest digest is refused even with resume.
	if _, err := OpenJournal(path, "c", "digest2", 3, true); err == nil || !strings.Contains(err.Error(), "different cell manifest") {
		t.Fatalf("digest mismatch: %v", err)
	}

	j2, err := OpenJournal(path, "c", "digest1", 3, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Entries()
	if len(got) != 3 {
		t.Fatalf("resumed %d entries, want 3", len(got))
	}
	if !got["cell-a"].Complete() {
		t.Error("done entry not complete")
	}
	if !got["cell-b"].Complete() {
		t.Error("deterministic failure not complete")
	}
	if got["cell-c"].Complete() {
		t.Error("transient failure counted as complete — a resume would skip retrying it")
	}

	// Appending after resume still works and lands on a clean boundary.
	if err := j2.Append(Entry{Key: "cell-c", Status: "done", FP: "cccc", End: 7}); err != nil {
		t.Fatal(err)
	}
	if e := j2.Entries()["cell-c"]; e.Status != "done" {
		t.Errorf("re-journaled transient cell = %+v", e)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path, "c", "d", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Entry{Key: "a", Status: "done", FP: "ff", End: 1})
	j.Close()

	// Simulate a crash mid-append: a torn, newline-less fragment.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	fragment := `{"key":"b","status":"done","fp":"ee`
	f.WriteString(fragment)
	f.Close()
	before, _ := os.ReadFile(path)

	j2, err := OpenJournal(path, "c", "d", 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := j2.Entries(); len(got) != 1 || got["a"].FP != "ff" {
		t.Fatalf("resumed entries = %v, want just a", got)
	}
	// The torn fragment is physically gone: the file is back to its last
	// durable line boundary.
	truncated, _ := os.ReadFile(path)
	if want := string(before[:len(before)-len(fragment)]); string(truncated) != want {
		t.Errorf("resume left the file as %q, want %q", truncated, want)
	}
	// A post-resume append forms a valid line, not a concatenation onto
	// the fragment.
	if err := j2.Append(Entry{Key: "b", Status: "done", FP: "ee", End: 2}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(path, "c", "d", 2, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := j3.Entries(); len(got) != 2 || got["b"].End != 2 {
		t.Fatalf("entries after torn-tail append = %v", got)
	}
}

func TestJournalCorruptHeaderAndEntries(t *testing.T) {
	path := journalPath(t)
	os.WriteFile(path, []byte("not json\n"), 0o666)
	if _, err := OpenJournal(path, "c", "d", 1, true); err == nil {
		t.Error("corrupt header accepted")
	}
	os.WriteFile(path, []byte(`{"v":99,"name":"c","digest":"d","cells":1}`+"\n"), 0o666)
	if _, err := OpenJournal(path, "c", "d", 1, true); err == nil {
		t.Error("future journal version accepted")
	}

	// A corrupt entry line stops replay there; later (even valid) lines are
	// conservatively discarded with it.
	j, _ := OpenJournal(journalPath(t), "c", "d", 3, false)
	j.Append(Entry{Key: "a", Status: "done", FP: "ff"})
	path = j.path
	j.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.WriteString("garbage line\n")
	f.WriteString(`{"key":"z","status":"done","fp":"dd"}` + "\n")
	f.Close()
	j2, err := OpenJournal(path, "c", "d", 3, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Entries(); len(got) != 1 {
		t.Fatalf("entries past corruption were admitted: %v", got)
	}
}

func TestJournalRefusesInvalidEntry(t *testing.T) {
	j, err := OpenJournal(journalPath(t), "c", "d", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, e := range []Entry{
		{},
		{Key: "a", Status: "done"},              // done without fingerprint
		{Key: "a", Status: "failed"},            // failure without kind
		{Status: "done", FP: "ff"},              // no key
		{Key: "a", Status: "running", FP: "ff"}, // unknown status
	} {
		if err := j.Append(e); err == nil {
			t.Errorf("journaled invalid entry %+v", e)
		}
	}
}
