package mem

// This file provides the array-layout helpers the paper's restructured
// program versions differ in. Applications keep real data in Go slices; these
// types compute the simulated address of element (i,j) under a particular
// layout, so the same computation can be run with a 2-d row-major layout (the
// "non-contiguous" SPLASH-2 versions), a padded 2-d layout (the P/A class),
// or a 4-d blocked layout (the DS class, partitions contiguous and optionally
// page-aligned).

// Array2D is a dense row-major 2-d array of fixed-size elements, optionally
// with per-row padding (pitch > cols*elem).
type Array2D struct {
	Base  uint64
	Rows  int
	Cols  int
	Elem  int    // element size in bytes
	Pitch uint64 // row stride in bytes (>= Cols*Elem)
}

// NewArray2D allocates a rows x cols array of elem-byte elements with no
// padding.
func NewArray2D(a *AddressSpace, rows, cols, elem int) *Array2D {
	pitch := uint64(cols * elem)
	base := a.Alloc(rows * int(pitch))
	return &Array2D{Base: base, Rows: rows, Cols: cols, Elem: elem, Pitch: pitch}
}

// NewArray2DPadded allocates a rows x cols array whose rows are padded and
// aligned to the given boundary (e.g. the page size). This is the paper's
// pure padding/alignment transformation.
func NewArray2DPadded(a *AddressSpace, rows, cols, elem int, align uint64) *Array2D {
	pitch := (uint64(cols*elem) + align - 1) &^ (align - 1)
	base := a.AllocAlign(rows*int(pitch), align)
	return &Array2D{Base: base, Rows: rows, Cols: cols, Elem: elem, Pitch: pitch}
}

// Addr returns the simulated address of element (i, j).
func (m *Array2D) Addr(i, j int) uint64 {
	return m.Base + uint64(i)*m.Pitch + uint64(j*m.Elem)
}

// RowAddr returns the address of the first element of row i.
func (m *Array2D) RowAddr(i int) uint64 { return m.Base + uint64(i)*m.Pitch }

// Size returns the allocated footprint in bytes.
func (m *Array2D) Size() int { return m.Rows * int(m.Pitch) }

// Array4D represents a 2-d array stored as a 4-d blocked array: the matrix is
// divided into blockRows x blockCols blocks of bRows x bCols elements, and
// each block is contiguous in the address space. With page-aligned blocks this
// is the layout of the SPLASH-2 "contiguous" LU and Ocean versions.
type Array4D struct {
	Base      uint64
	Rows, Cols int
	BRows, BCols int
	Elem      int
	blockSize uint64 // bytes per block, including any alignment padding
	blocksPerRow int
}

// NewArray4D allocates a rows x cols array blocked into bRows x bCols tiles.
// If align > 1, every block is padded and aligned to that boundary (the
// paper's final, page-aligned LU layout).
func NewArray4D(a *AddressSpace, rows, cols, bRows, bCols, elem int, align uint64) *Array4D {
	if rows%bRows != 0 || cols%bCols != 0 {
		panic("mem: Array4D dimensions must divide evenly into blocks")
	}
	raw := uint64(bRows * bCols * elem)
	bs := raw
	if align > 1 {
		bs = (raw + align - 1) &^ (align - 1)
	}
	nBlocks := (rows / bRows) * (cols / bCols)
	var base uint64
	if align > 1 {
		base = a.AllocAlign(nBlocks*int(bs), align)
	} else {
		base = a.Alloc(nBlocks * int(bs))
	}
	return &Array4D{
		Base: base, Rows: rows, Cols: cols, BRows: bRows, BCols: bCols,
		Elem: elem, blockSize: bs, blocksPerRow: cols / bCols,
	}
}

// Addr returns the simulated address of element (i, j).
func (m *Array4D) Addr(i, j int) uint64 {
	bi, bj := i/m.BRows, j/m.BCols
	oi, oj := i%m.BRows, j%m.BCols
	block := uint64(bi*m.blocksPerRow + bj)
	return m.Base + block*m.blockSize + uint64((oi*m.BCols+oj)*m.Elem)
}

// BlockAddr returns the base address of block (bi, bj).
func (m *Array4D) BlockAddr(bi, bj int) uint64 {
	return m.Base + uint64(bi*m.blocksPerRow+bj)*m.blockSize
}

// BlockBytes returns the occupied bytes per block (excluding alignment pad).
func (m *Array4D) BlockBytes() int { return m.BRows * m.BCols * m.Elem }

// BlockStride returns the allocated bytes per block (including pad).
func (m *Array4D) BlockStride() uint64 { return m.blockSize }

// Size returns the allocated footprint in bytes.
func (m *Array4D) Size() int {
	return (m.Rows / m.BRows) * (m.Cols / m.BCols) * int(m.blockSize)
}

// Layout2D is the common interface over the layouts: anything that can map
// (i, j) to a simulated address.
type Layout2D interface {
	Addr(i, j int) uint64
}

var (
	_ Layout2D = (*Array2D)(nil)
	_ Layout2D = (*Array4D)(nil)
)
