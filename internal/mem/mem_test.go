package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocAlignment(t *testing.T) {
	as := NewAddressSpace(4096, 4)
	a := as.Alloc(100)
	if a%8 != 0 {
		t.Errorf("Alloc not 8-aligned: %d", a)
	}
	b := as.AllocAlign(100, 4096)
	if b%4096 != 0 {
		t.Errorf("AllocAlign not page-aligned: %d", b)
	}
	if b <= a {
		t.Errorf("allocations overlap: %d then %d", a, b)
	}
	c := as.AllocPages(10)
	if c%4096 != 0 {
		t.Errorf("AllocPages not page-aligned: %d", c)
	}
}

func TestAddressZeroNeverAllocated(t *testing.T) {
	as := NewAddressSpace(4096, 1)
	if a := as.Alloc(8); a == 0 {
		t.Error("address 0 must never be handed out")
	}
}

func TestHomesRoundRobinDefault(t *testing.T) {
	as := NewAddressSpace(4096, 4)
	a := as.Alloc(4096 * 8)
	for i := 0; i < 8; i++ {
		addr := a + uint64(i)*4096
		want := int(as.PageOf(addr) % 4)
		if got := as.Home(addr); got != want {
			t.Errorf("default home of page %d = %d, want %d", as.PageOf(addr), got, want)
		}
	}
}

func TestSetHomeAndBlocked(t *testing.T) {
	as := NewAddressSpace(4096, 4)
	a := as.AllocPages(4096 * 8)
	as.SetHome(a, 4096*8, 2)
	for i := 0; i < 8; i++ {
		if got := as.Home(a + uint64(i)*4096); got != 2 {
			t.Errorf("page %d home = %d, want 2", i, got)
		}
	}
	b := as.AllocPages(4096 * 8)
	as.DistributeBlocked(b, 4096*8)
	if as.Home(b) != 0 || as.Home(b+7*4096) != 3 {
		t.Errorf("blocked distribution wrong: first=%d last=%d", as.Home(b), as.Home(b+7*4096))
	}
	cAddr := as.AllocPages(4096 * 8)
	as.DistributeRoundRobin(cAddr, 4096*8)
	for i := 0; i < 8; i++ {
		if got := as.Home(cAddr + uint64(i)*4096); got != i%4 {
			t.Errorf("rr page %d home = %d, want %d", i, got, i%4)
		}
	}
}

func TestArray2DAddressing(t *testing.T) {
	as := NewAddressSpace(4096, 4)
	m := NewArray2D(as, 16, 16, 8)
	if m.Addr(0, 1)-m.Addr(0, 0) != 8 {
		t.Error("column stride wrong")
	}
	if m.Addr(1, 0)-m.Addr(0, 0) != 16*8 {
		t.Error("row stride wrong")
	}
}

func TestArray2DPadded(t *testing.T) {
	as := NewAddressSpace(4096, 4)
	m := NewArray2DPadded(as, 4, 16, 8, 4096)
	if m.Base%4096 != 0 {
		t.Error("padded array base not aligned")
	}
	if m.Addr(1, 0)-m.Addr(0, 0) != 4096 {
		t.Errorf("padded row stride = %d, want 4096", m.Addr(1, 0)-m.Addr(0, 0))
	}
	// Different rows land on different pages: no false sharing.
	if as.PageOf(m.Addr(0, 15)) == as.PageOf(m.Addr(1, 0)) {
		t.Error("padded rows share a page")
	}
}

func TestArray4DBlockContiguity(t *testing.T) {
	as := NewAddressSpace(4096, 4)
	m := NewArray4D(as, 32, 32, 8, 8, 8, 1)
	// All elements of block (0,0) are within one contiguous 512-byte run.
	lo, hi := m.Addr(0, 0), m.Addr(0, 0)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			a := m.Addr(i, j)
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
	}
	if hi-lo != 8*8*8-8 {
		t.Errorf("block not contiguous: span %d", hi-lo)
	}
	// Element addresses are unique across the whole array.
	seen := map[uint64]bool{}
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			a := m.Addr(i, j)
			if seen[a] {
				t.Fatalf("duplicate address for (%d,%d)", i, j)
			}
			seen[a] = true
		}
	}
}

func TestArray4DPageAligned(t *testing.T) {
	as := NewAddressSpace(4096, 4)
	m := NewArray4D(as, 64, 64, 16, 16, 8, 4096)
	for bi := 0; bi < 4; bi++ {
		for bj := 0; bj < 4; bj++ {
			if m.BlockAddr(bi, bj)%4096 != 0 {
				t.Errorf("block (%d,%d) not page aligned", bi, bj)
			}
		}
	}
	// Distinct blocks never share a page.
	if as.PageOf(m.BlockAddr(0, 0)+uint64(m.BlockBytes())-1) == as.PageOf(m.BlockAddr(0, 1)) {
		t.Error("adjacent aligned blocks share a page")
	}
}

func TestArray4DMatches2DCoverage(t *testing.T) {
	// Property: for random in-range (i,j), Array4D.Addr is injective and
	// in-bounds.
	as := NewAddressSpace(4096, 4)
	m := NewArray4D(as, 64, 64, 16, 16, 8, 1)
	f := func(i, j uint8) bool {
		ii, jj := int(i)%64, int(j)%64
		a := m.Addr(ii, jj)
		return a >= m.Base && a < m.Base+uint64(m.Size())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageOfPageBase(t *testing.T) {
	as := NewAddressSpace(4096, 2)
	if as.PageOf(4096) != 1 || as.PageOf(4095) != 0 {
		t.Error("PageOf wrong")
	}
	if as.PageBase(5000) != 4096 {
		t.Error("PageBase wrong")
	}
}

func TestBadPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two page size")
		}
	}()
	NewAddressSpace(3000, 2)
}
