// Package mem provides the simulated shared address space used by the
// applications. Addresses are synthetic: applications keep their real data in
// ordinary Go slices and separately issue simulated addresses describing how
// that data would be laid out in a shared address space. The address space
// tracks page homes (the node that owns each page under a home-based protocol
// or a NUMA memory placement) and provides the layout helpers — 2-d arrays,
// 4-d blocked arrays, padding and alignment — that the paper's restructured
// program versions differ in.
package mem

import "fmt"

// AddressSpace is a simulated, page-granular shared address space.
type AddressSpace struct {
	pageSize uint64
	next     uint64
	homes    []int // per page number; -1 = unassigned (defaults round-robin)
	numNodes int
}

// NewAddressSpace creates an address space with the given page size (must be
// a power of two) shared by numNodes nodes. Allocation starts at one page, so
// address 0 is never valid.
func NewAddressSpace(pageSize uint64, numNodes int) *AddressSpace {
	if pageSize == 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("mem: page size %d is not a power of two", pageSize))
	}
	if numNodes <= 0 {
		panic("mem: need at least one node")
	}
	return &AddressSpace{pageSize: pageSize, next: pageSize, numNodes: numNodes}
}

// PageSize returns the page size in bytes.
func (a *AddressSpace) PageSize() uint64 { return a.pageSize }

// NumNodes returns the number of nodes sharing the address space.
func (a *AddressSpace) NumNodes() int { return a.numNodes }

// Brk returns the current top of the allocated region.
func (a *AddressSpace) Brk() uint64 { return a.next }

// PageOf returns the page number containing addr.
func (a *AddressSpace) PageOf(addr uint64) uint64 { return addr / a.pageSize }

// PageBase returns the first address of the page containing addr.
func (a *AddressSpace) PageBase(addr uint64) uint64 { return addr &^ (a.pageSize - 1) }

// NumPages returns the number of pages allocated so far.
func (a *AddressSpace) NumPages() uint64 { return (a.next + a.pageSize - 1) / a.pageSize }

// Alloc reserves n bytes, 8-byte aligned, and returns the base address.
func (a *AddressSpace) Alloc(n int) uint64 {
	return a.AllocAlign(n, 8)
}

// AllocAlign reserves n bytes at the given alignment (a power of two) and
// returns the base address.
func (a *AddressSpace) AllocAlign(n int, align uint64) uint64 {
	if n < 0 {
		panic("mem: negative allocation")
	}
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	base := (a.next + align - 1) &^ (align - 1)
	a.next = base + uint64(n)
	a.growHomes()
	return base
}

// AllocPages reserves n bytes starting on a fresh page boundary.
func (a *AddressSpace) AllocPages(n int) uint64 {
	return a.AllocAlign(n, a.pageSize)
}

func (a *AddressSpace) growHomes() {
	np := int(a.NumPages())
	for len(a.homes) < np {
		a.homes = append(a.homes, -1)
	}
}

// Home returns the home node of the page containing addr. Pages with no
// explicit assignment default to round-robin by page number, the placement
// the paper uses when nothing better is available.
func (a *AddressSpace) Home(addr uint64) int {
	p := a.PageOf(addr)
	if p < uint64(len(a.homes)) && a.homes[p] >= 0 {
		return a.homes[p]
	}
	return int(p % uint64(a.numNodes))
}

// SetHome assigns the pages overlapping [addr, addr+n) to node. This models
// explicit data distribution ("performed in all cases where it is reasonably
// allowed by the algorithms", paper §5.2).
func (a *AddressSpace) SetHome(addr uint64, n int, node int) {
	if node < 0 || node >= a.numNodes {
		panic(fmt.Sprintf("mem: node %d out of range", node))
	}
	a.growHomes()
	first := a.PageOf(addr)
	last := a.PageOf(addr + uint64(n) - 1)
	if n == 0 {
		last = first
	}
	for p := first; p <= last && p < uint64(len(a.homes)); p++ {
		a.homes[p] = node
	}
}

// DistributeBlocked splits [addr, addr+n) into numNodes contiguous chunks of
// whole pages and homes chunk i on node i.
func (a *AddressSpace) DistributeBlocked(addr uint64, n int) {
	a.growHomes()
	first := a.PageOf(addr)
	last := a.PageOf(addr + uint64(n) - 1)
	total := last - first + 1
	per := (total + uint64(a.numNodes) - 1) / uint64(a.numNodes)
	for p := first; p <= last && p < uint64(len(a.homes)); p++ {
		node := int((p - first) / per)
		if node >= a.numNodes {
			node = a.numNodes - 1
		}
		a.homes[p] = node
	}
}

// DistributeRoundRobin homes the pages of [addr, addr+n) round-robin across
// nodes, page i on node i mod numNodes.
func (a *AddressSpace) DistributeRoundRobin(addr uint64, n int) {
	a.growHomes()
	first := a.PageOf(addr)
	last := a.PageOf(addr + uint64(n) - 1)
	for p := first; p <= last && p < uint64(len(a.homes)); p++ {
		a.homes[p] = int((p - first) % uint64(a.numNodes))
	}
}
