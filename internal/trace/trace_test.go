package trace

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind(%d) has no name: %q", k, s)
		}
	}
	if got := Kind(200).String(); !strings.HasPrefix(got, "Kind(") {
		t.Errorf("out-of-range kind = %q, want Kind(200)", got)
	}
	for _, k := range []Kind{BusOccupy, NICOccupy, DirOccupy} {
		if !k.IsResource() {
			t.Errorf("%v.IsResource() = false, want true", k)
		}
	}
	for _, k := range []Kind{PageFault, LockGrant, Barrier} {
		if k.IsResource() {
			t.Errorf("%v.IsResource() = true, want false", k)
		}
	}
	if PageFetch.ArgName() != "page" || BusTxn.ArgName() != "line" ||
		LockGrant.ArgName() != "lock" || Barrier.ArgName() != "epoch" {
		t.Error("ArgName mapping wrong")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: 123, Cost: 9, Arg: 7, Proc: 2, Kind: PageFetch}
	s := e.String()
	for _, want := range []string{"123", "p2", "PageFetch", "page=7", "cost=9"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
}

func TestRingWrapsAndSnapshotsInOrder(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Time: uint64(i)})
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
	snap := r.Snapshot()
	for i, e := range snap {
		if want := uint64(6 + i); e.Time != want {
			t.Errorf("snapshot[%d].Time = %d, want %d (oldest-first)", i, e.Time, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 {
		t.Error("Reset did not clear the ring")
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{Time: 1})
	r.Emit(Event{Time: 2})
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Time != 1 || snap[1].Time != 2 {
		t.Errorf("partial snapshot = %v", snap)
	}
}

func TestCountingAggregation(t *testing.T) {
	c := NewCounting(4)
	// Page 5 fetched twice by proc 0, once by proc 1; page 9 once.
	c.Emit(Event{Kind: PageFetch, Proc: 0, Arg: 5, Cost: 100})
	c.Emit(Event{Kind: PageFetch, Proc: 0, Arg: 5, Cost: 100})
	c.Emit(Event{Kind: PageFetch, Proc: 1, Arg: 5, Cost: 100})
	c.Emit(Event{Kind: PageFetch, Proc: 2, Arg: 9, Cost: 100})
	c.Emit(Event{Kind: DiffCreate, Proc: 1, Arg: 5, Cost: 10})
	c.Emit(Event{Kind: WriteTrap, Proc: 0, Arg: 5})
	c.Emit(Event{Kind: WriteTrap, Proc: 3, Arg: 5})
	c.Emit(Event{Kind: LockGrant, Proc: 0, Arg: 7})
	c.Emit(Event{Kind: LockGrant, Proc: 1, Arg: 7})
	c.Emit(Event{Kind: LockTransfer, Proc: 1, Arg: 7})

	if got := c.Count(PageFetch); got != 4 {
		t.Errorf("Count(PageFetch) = %d, want 4", got)
	}
	if got := c.Cost(PageFetch); got != 400 {
		t.Errorf("Cost(PageFetch) = %d, want 400", got)
	}
	pages := c.PageTotals()
	if len(pages) != 2 || pages[0].Page != 5 {
		t.Fatalf("PageTotals = %+v, want page 5 first", pages)
	}
	if pages[0].Fetches != 3 || pages[0].Diffs != 1 || pages[0].Writers != 2 || pages[0].MaxProc != 2 {
		t.Errorf("page 5 totals = %+v", pages[0])
	}
	locks := c.LockTotals()
	if len(locks) != 1 || locks[0].Lock != 7 || locks[0].Acquires != 2 || locks[0].Transfers != 1 {
		t.Errorf("LockTotals = %+v", locks)
	}
}

func TestCountingSortIsDeterministic(t *testing.T) {
	// Equal fetch counts must tie-break by page id ascending.
	c := NewCounting(2)
	for _, pg := range []uint64{30, 10, 20} {
		c.Emit(Event{Kind: PageFetch, Proc: 0, Arg: pg})
	}
	pages := c.PageTotals()
	if pages[0].Page != 10 || pages[1].Page != 20 || pages[2].Page != 30 {
		t.Errorf("tie-break order = %v, want ascending page ids", pages)
	}
}

// recorder counts Emit and Sample calls.
type recorder struct {
	events  int
	samples int
}

func (r *recorder) Emit(Event)                  { r.events++ }
func (r *recorder) Sample(uint64, []stats.Proc) { r.samples++ }

func TestTee(t *testing.T) {
	if Tee() != nil {
		t.Error("Tee() should be nil")
	}
	if Tee(nil, nil) != nil {
		t.Error("Tee(nil, nil) should be nil")
	}
	a := &recorder{}
	if got := Tee(nil, a); got != Sink(a) {
		t.Error("Tee with one non-nil sink should return it unwrapped")
	}
	b := &recorder{}
	tee := Tee(a, b)
	tee.Emit(Event{})
	if a.events != 1 || b.events != 1 {
		t.Errorf("fan-out failed: a=%d b=%d", a.events, b.events)
	}
	// A tee of samplers must itself be a Sampler.
	sp, ok := tee.(Sampler)
	if !ok {
		t.Fatal("Tee of Samplers does not implement Sampler")
	}
	sp.Sample(0, nil)
	if a.samples != 1 || b.samples != 1 {
		t.Errorf("sample fan-out failed: a=%d b=%d", a.samples, b.samples)
	}
}

func TestTimelineSampling(t *testing.T) {
	tl := &Timeline{}
	procs := make([]stats.Proc, 2)
	procs[0].Cycles[stats.Compute] = 100
	tl.Sample(1000, procs)
	procs[0].Cycles[stats.Compute] = 250
	procs[1].Cycles[stats.DataWait] = 50
	tl.Sample(2000, procs)
	if len(tl.Samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(tl.Samples))
	}
	// Snapshots must be value copies, not aliases of the live array.
	if tl.Samples[0].Cycles[0][stats.Compute] != 100 {
		t.Errorf("first sample mutated: %d", tl.Samples[0].Cycles[0][stats.Compute])
	}
	if tl.Samples[1].Cycles[0][stats.Compute] != 250 || tl.Samples[1].Cycles[1][stats.DataWait] != 50 {
		t.Errorf("second sample wrong: %+v", tl.Samples[1])
	}
	if tl.Samples[0].Time != 1000 || tl.Samples[1].Time != 2000 {
		t.Error("sample times wrong")
	}
}

func TestFormatEvents(t *testing.T) {
	s := FormatEvents([]Event{
		{Time: 1, Kind: PageFault, Arg: 3},
		{Time: 2, Kind: LockGrant, Arg: 7, Proc: 1},
	})
	lines := strings.Split(strings.TrimSuffix(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[0], "PageFault") || !strings.Contains(lines[1], "LockGrant") {
		t.Errorf("formatted events wrong:\n%s", s)
	}
}
