package trace

import (
	"math/bits"
	"sort"
)

// Counting aggregates the event stream into per-kind, per-page and per-lock
// totals. It is the trace-backed successor of the svm package's original
// hot-page profiler: the svm platform installs one per run when profiling is
// enabled and renders HotPages/HotLocks from it, and any caller can install
// their own to get the same totals for any platform.
type Counting struct {
	np        int
	kindCount [NumKinds]uint64
	kindCost  [NumKinds]uint64

	pageFetch   map[uint64][]uint64 // page -> per-proc fetch counts
	pageDiff    map[uint64]uint64   // page -> diffs created against its home copy
	pageWriters map[uint64]uint64   // page -> bitmask of writer procs
	lockAcq     map[uint64]uint64   // lock -> grants
	lockXfer    map[uint64]uint64   // lock -> grants from a different holder
}

// NewCounting creates a counting sink for np processors.
func NewCounting(np int) *Counting {
	return &Counting{
		np:          np,
		pageFetch:   map[uint64][]uint64{},
		pageDiff:    map[uint64]uint64{},
		pageWriters: map[uint64]uint64{},
		lockAcq:     map[uint64]uint64{},
		lockXfer:    map[uint64]uint64{},
	}
}

// Emit implements Sink.
func (c *Counting) Emit(e Event) {
	if e.Kind >= NumKinds {
		return
	}
	c.kindCount[e.Kind]++
	c.kindCost[e.Kind] += e.Cost
	switch e.Kind {
	case PageFetch:
		v := c.pageFetch[e.Arg]
		if v == nil {
			v = make([]uint64, c.np)
			c.pageFetch[e.Arg] = v
		}
		if int(e.Proc) >= 0 && int(e.Proc) < len(v) {
			v[e.Proc]++
		}
	case DiffCreate:
		c.pageDiff[e.Arg]++
	case WriteTrap:
		if e.Proc >= 0 && e.Proc < 64 {
			c.pageWriters[e.Arg] |= 1 << uint(e.Proc)
		}
	case LockGrant:
		c.lockAcq[e.Arg]++
	case LockTransfer:
		c.lockXfer[e.Arg]++
	}
}

// Count returns how many events of kind k were emitted.
func (c *Counting) Count(k Kind) uint64 {
	if k >= NumKinds {
		return 0
	}
	return c.kindCount[k]
}

// Cost returns the total Cost cycles over all events of kind k.
func (c *Counting) Cost(k Kind) uint64 {
	if k >= NumKinds {
		return 0
	}
	return c.kindCost[k]
}

// PageTotals summarizes the traffic to one page over a run.
type PageTotals struct {
	Page    uint64
	Fetches uint64 // remote fetches of this page, all processors
	Diffs   uint64 // diffs created against its home copy
	Writers int    // distinct processors that dirtied it
	MaxProc uint64 // largest per-processor fetch count (imbalance hint)
}

// LockTotals summarizes the traffic to one lock over a run.
type LockTotals struct {
	Lock      int
	Acquires  uint64
	Transfers uint64 // acquisitions by a different processor than the releaser
}

// PageTotals returns every fetched page's totals, most-fetched first (ties
// by page number, so the order is deterministic).
func (c *Counting) PageTotals() []PageTotals {
	out := make([]PageTotals, 0, len(c.pageFetch))
	for pg, per := range c.pageFetch {
		pt := PageTotals{Page: pg, Diffs: c.pageDiff[pg], Writers: bits.OnesCount64(c.pageWriters[pg])}
		for _, n := range per {
			pt.Fetches += n
			if n > pt.MaxProc {
				pt.MaxProc = n
			}
		}
		out = append(out, pt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fetches != out[j].Fetches {
			return out[i].Fetches > out[j].Fetches
		}
		return out[i].Page < out[j].Page
	})
	return out
}

// LockTotals returns every acquired lock's totals, busiest first (ties by
// lock id, so the order is deterministic).
func (c *Counting) LockTotals() []LockTotals {
	out := make([]LockTotals, 0, len(c.lockAcq))
	for l, a := range c.lockAcq {
		out = append(out, LockTotals{Lock: int(l), Acquires: a, Transfers: c.lockXfer[l]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Acquires != out[j].Acquires {
			return out[i].Acquires > out[j].Acquires
		}
		return out[i].Lock < out[j].Lock
	})
	return out
}

var _ Sink = (*Counting)(nil)
