// Package trace is the protocol event-tracing layer of the simulator: a
// typed, low-overhead stream of the protocol events the paper's figures are
// made of — page faults and fetches, twins, diffs, write notices,
// invalidations at acquires, bus transactions, 2-/3-hop directory misses,
// lock request/grant/transfer, and barrier episodes — each stamped with the
// virtual time and processor it happened on.
//
// The simulation kernel owns a single Sink (possibly a Tee over several) and
// exposes a nil-checked Emit fast path, so with tracing off an event site
// costs one branch and zero allocations. Three sinks cover the paper's §6
// wished-for "performance debugging tool" roles:
//
//   - Counting: an aggregator of per-kind, per-page and per-lock totals (the
//     trace-backed successor of the old svm hot-page profiler);
//   - Ring: a bounded buffer of the most recent events, dumped into
//     ProcPanicError/DeadlockError so contained failures are self-diagnosing;
//   - Chrome: a Chrome trace-event JSON exporter (one track per simulated
//     processor plus bus/NIC/directory resource tracks) loadable in Perfetto.
//
// Sinks that also implement Sampler additionally receive interval snapshots
// of the per-processor execution-time breakdown, so the paper's
// per-processor category bars can be rendered over time.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Kind classifies one protocol event.
type Kind uint8

// Event kinds. Processor kinds describe work attributed to a simulated
// processor; resource kinds (see IsResource) describe occupancy episodes of
// a shared resource — the bus, a node's NIC/protocol handler, or a home
// directory controller.
const (
	// KindNone is the zero Kind; it is never emitted.
	KindNone Kind = iota

	// PageFault marks an access trapping on an invalid page (Arg: page).
	PageFault
	// PageFetch is a whole-page fetch from the home (Arg: page, Cost: wait).
	PageFetch
	// TwinCreate is a copy-on-first-write twin creation (Arg: page).
	TwinCreate
	// WriteTrap is a write-protection trap on the first write to a page in
	// an interval, at every writer including the home (Arg: page).
	WriteTrap
	// DiffCreate is a diff computed against a twin at a flush (Arg: page).
	DiffCreate
	// DiffApply is a diff applied at the home node (Arg: page).
	DiffApply
	// WriteNotice is one write notice logged at a flush (Arg: page).
	WriteNotice
	// Invalidate is one page invalidated at an acquire or barrier departure
	// (Arg: page).
	Invalidate

	// BusTxn is a snooping-bus transaction (Arg: line address).
	BusTxn
	// Miss2Hop is a directory miss satisfied by a remote home's memory
	// (Arg: line address).
	Miss2Hop
	// Miss3Hop is a directory miss forwarded to a dirty third node
	// (Arg: line address).
	Miss3Hop

	// LockRequest is the issue of a lock request (Arg: lock id).
	LockRequest
	// LockGrant is a completed lock acquisition; Cost is the full wait from
	// request to grant (Arg: lock id).
	LockGrant
	// LockTransfer marks a grant whose previous holder was a different
	// processor — a lock migration (Arg: lock id).
	LockTransfer
	// Barrier is one processor's whole barrier episode from arrival to
	// departure (Arg: barrier epoch, Cost: episode length).
	Barrier

	// BusOccupy is a bus occupancy episode (resource kind; Proc: bus id).
	BusOccupy
	// NICOccupy is a NIC/protocol-handler occupancy episode at a node
	// (resource kind; Proc: node).
	NICOccupy
	// DirOccupy is a home directory controller occupancy episode
	// (resource kind; Proc: home node).
	DirOccupy

	// NumKinds is the number of event kinds.
	NumKinds
)

var kindNames = [NumKinds]string{
	KindNone:     "None",
	PageFault:    "PageFault",
	PageFetch:    "PageFetch",
	TwinCreate:   "TwinCreate",
	WriteTrap:    "WriteTrap",
	DiffCreate:   "DiffCreate",
	DiffApply:    "DiffApply",
	WriteNotice:  "WriteNotice",
	Invalidate:   "Invalidate",
	BusTxn:       "BusTxn",
	Miss2Hop:     "Miss2Hop",
	Miss3Hop:     "Miss3Hop",
	LockRequest:  "LockRequest",
	LockGrant:    "LockGrant",
	LockTransfer: "LockTransfer",
	Barrier:      "Barrier",
	BusOccupy:    "BusOccupy",
	NICOccupy:    "NICOccupy",
	DirOccupy:    "DirOccupy",
}

// String returns the event kind's name.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsResource reports whether events of this kind describe occupancy of a
// shared resource (bus, NIC, directory controller) rather than processor
// activity; exporters render them on separate resource tracks.
func (k Kind) IsResource() bool {
	return k == BusOccupy || k == NICOccupy || k == DirOccupy
}

// ArgName names the Arg field of events of this kind ("page", "line",
// "lock", "epoch"), for rendering.
func (k Kind) ArgName() string {
	switch k {
	case BusTxn, Miss2Hop, Miss3Hop:
		return "line"
	case LockRequest, LockGrant, LockTransfer:
		return "lock"
	case Barrier:
		return "epoch"
	default:
		return "page"
	}
}

// Event is one protocol event. It is a compact value type (32 bytes) so the
// tracing-on path stays allocation-free: events are passed by value and
// sinks copy what they keep.
type Event struct {
	// Time is the virtual cycle the episode starts.
	Time uint64
	// Cost is the episode's length in cycles (0 for instantaneous marks).
	Cost uint64
	// Arg identifies the object: page, line address, lock id or barrier
	// epoch depending on Kind (see ArgName).
	Arg uint64
	// Proc is the processor the event is attributed to, or the resource
	// owner node for resource kinds.
	Proc int32
	// Kind classifies the event.
	Kind Kind
}

// String renders the event as one fixed-layout text line.
func (e Event) String() string {
	return fmt.Sprintf("%12d p%-3d %-12s %s=%d cost=%d",
		e.Time, e.Proc, e.Kind, e.Kind.ArgName(), e.Arg, e.Cost)
}

// Sink consumes the event stream. Emit is called under the kernel's
// single-active-goroutine discipline, so implementations need no locking,
// but a Sink must not be shared between concurrently running kernels.
type Sink interface {
	Emit(Event)
}

// Sampler is optionally implemented by sinks that want the kernel's interval
// time-series samples of the per-processor breakdown categories. procs is
// the kernel's live accounting slice: implementations must copy what they
// keep and must not retain the slice.
type Sampler interface {
	Sample(now uint64, procs []stats.Proc)
}

// multi fans events (and samples) out to several sinks.
type multi struct{ sinks []Sink }

func (m *multi) Emit(e Event) {
	for _, s := range m.sinks {
		s.Emit(e)
	}
}

// Sample implements Sampler, forwarding to every member that samples.
func (m *multi) Sample(now uint64, procs []stats.Proc) {
	for _, s := range m.sinks {
		if sp, ok := s.(Sampler); ok {
			sp.Sample(now, procs)
		}
	}
}

// Tee combines sinks into one, dropping nils. It returns nil when no sink
// remains (tracing off) and the sink itself when only one does, preserving
// the nil-sink fast path and the single sink's Sampler implementation.
func Tee(sinks ...Sink) Sink {
	var out []Sink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return &multi{sinks: out}
	}
}

// FormatEvents renders events one per line (oldest first), the post-mortem
// dump format used by the kernel's panic/deadlock errors.
func FormatEvents(evs []Event) string {
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
