package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/stats"
)

// chromeEvent mirrors the trace-event fields the tests inspect.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur"`
	Args map[string]any `json:"args"`
}

func exportEvents(t *testing.T, emit func(c *Chrome)) []chromeEvent {
	t.Helper()
	var buf bytes.Buffer
	c := NewChrome(&buf)
	emit(c)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var evs []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	return evs
}

func TestChromeValidJSONWithTracks(t *testing.T) {
	evs := exportEvents(t, func(c *Chrome) {
		c.Emit(Event{Time: 100, Cost: 50, Arg: 3, Proc: 0, Kind: PageFetch})
		c.Emit(Event{Time: 200, Cost: 20, Arg: 3, Proc: 1, Kind: NICOccupy})
		c.Emit(Event{Time: 300, Cost: 10, Arg: 5, Proc: 0, Kind: BusOccupy})
	})
	byPh := map[string][]chromeEvent{}
	for _, e := range evs {
		byPh[e.Ph] = append(byPh[e.Ph], e)
	}
	if len(byPh["X"]) != 3 {
		t.Errorf("got %d complete events, want 3", len(byPh["X"]))
	}
	// Processor events on pid 0, resources on pid 1 with distinct tid bases.
	var procNames, threadNames []string
	for _, e := range byPh["M"] {
		switch e.Name {
		case "process_name":
			procNames = append(procNames, e.Args["name"].(string))
		case "thread_name":
			threadNames = append(threadNames, e.Args["name"].(string))
		}
	}
	wantProcs := map[string]bool{"processors": false, "resources": false}
	for _, n := range procNames {
		wantProcs[n] = true
	}
	for n, seen := range wantProcs {
		if !seen {
			t.Errorf("missing process_name metadata for %q (got %v)", n, procNames)
		}
	}
	wantThreads := map[string]bool{"proc 0": false, "nic 1": false, "bus 0": false}
	for _, n := range threadNames {
		if _, ok := wantThreads[n]; ok {
			wantThreads[n] = true
		}
	}
	for n, seen := range wantThreads {
		if !seen {
			t.Errorf("missing thread_name metadata for %q (got %v)", n, threadNames)
		}
	}
	for _, e := range byPh["X"] {
		if e.Name == "NICOccupy" && (e.Pid != 1 || e.Tid != chromeNICBase+1) {
			t.Errorf("NICOccupy on pid=%d tid=%d, want pid=1 tid=%d", e.Pid, e.Tid, chromeNICBase+1)
		}
		if e.Name == "PageFetch" && (e.Pid != 0 || e.Tid != 0 || e.Ts != 100 || e.Dur != 50) {
			t.Errorf("PageFetch event wrong: %+v", e)
		}
	}
}

func TestChromeProcZeroTrackNamed(t *testing.T) {
	// Regression: the (pid=0, tid=0) thread key must not collide with the
	// pid-0 process key, or proc 0 loses its track name.
	evs := exportEvents(t, func(c *Chrome) {
		c.Emit(Event{Time: 1, Kind: PageFault, Proc: 0})
	})
	found := false
	for _, e := range evs {
		if e.Name == "thread_name" && e.Pid == 0 && e.Tid == 0 {
			found = true
		}
	}
	if !found {
		t.Error("no thread_name metadata for proc 0")
	}
}

func TestChromeCounterSamples(t *testing.T) {
	procs := make([]stats.Proc, 2)
	evs := exportEvents(t, func(c *Chrome) {
		procs[0].Cycles[stats.Compute] = 100
		c.Sample(1000, procs)
		procs[0].Cycles[stats.Compute] = 300
		procs[1].Cycles[stats.DataWait] = 40
		c.Sample(2000, procs)
	})
	var counters []chromeEvent
	for _, e := range evs {
		if e.Ph == "C" {
			counters = append(counters, e)
		}
	}
	if len(counters) != 4 {
		t.Fatalf("got %d counter events, want 4 (2 procs x 2 samples)", len(counters))
	}
	// Counter series are per-interval deltas, not cumulative values.
	for _, e := range counters {
		if e.Ts == 2000 && e.Tid == 0 {
			if got := e.Args["Compute"].(float64); got != 200 {
				t.Errorf("second-interval Compute delta = %v, want 200", got)
			}
		}
		if e.Ts == 2000 && e.Tid == 1 {
			if got := e.Args["DataWait"].(float64); got != 40 {
				t.Errorf("second-interval DataWait delta = %v, want 40", got)
			}
		}
	}
}
