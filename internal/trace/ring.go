package trace

import "repro/internal/stats"

// Ring keeps the most recent events in a fixed-size buffer. The kernel
// installs one (sim.Kernel.SetTraceRing) so that when a simulated run dies —
// a processor body panic or a synchronization deadlock — the error carries
// the protocol events leading up to the failure, making contained failures
// self-diagnosing.
type Ring struct {
	buf   []Event
	next  int
	total uint64
}

// NewRing creates a ring holding the last n events (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Len returns how many events the ring currently holds.
func (r *Ring) Len() int { return len(r.buf) }

// Total returns how many events were emitted over the ring's lifetime,
// including those already overwritten.
func (r *Ring) Total() uint64 { return r.total }

// Snapshot returns the buffered events oldest first.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Reset empties the ring (between runs).
func (r *Ring) Reset() {
	r.buf = r.buf[:0]
	r.next = 0
	r.total = 0
}

var _ Sink = (*Ring)(nil)

// Timeline records the kernel's interval samples of the per-processor
// breakdown categories, for programmatic over-time analysis (the Chrome sink
// renders the same samples as counter tracks).
type Timeline struct {
	Samples []TimelineSample
}

// TimelineSample is one snapshot of every processor's cumulative breakdown.
type TimelineSample struct {
	Time   uint64
	Cycles [][stats.NumCategories]uint64 // per processor, cumulative
}

// Emit implements Sink (the timeline only consumes samples).
func (t *Timeline) Emit(Event) {}

// Sample implements Sampler.
func (t *Timeline) Sample(now uint64, procs []stats.Proc) {
	s := TimelineSample{Time: now, Cycles: make([][stats.NumCategories]uint64, len(procs))}
	for i := range procs {
		s.Cycles[i] = procs[i].Cycles
	}
	t.Samples = append(t.Samples, s)
}

var (
	_ Sink    = (*Timeline)(nil)
	_ Sampler = (*Timeline)(nil)
)
