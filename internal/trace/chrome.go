package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// Chrome streams the event stream as Chrome trace-event JSON (the JSON Array
// Format), loadable in Perfetto or chrome://tracing. Processor events render
// on one track per simulated processor (process "processors"); resource
// kinds render on bus/NIC/directory tracks under a separate "resources"
// process. Timestamps are virtual cycles written into the format's
// microsecond field, so on-screen times read as cycles.
//
// Chrome also implements Sampler: interval samples of the per-processor
// breakdown categories become counter ("C") tracks, one per processor, whose
// series are the per-interval cycles of each category — the paper's
// per-processor breakdown bars rendered over time.
//
// Close must be called to terminate the JSON array; the writer is not closed.
type Chrome struct {
	bw    *bufio.Writer
	n     int
	err   error
	named map[uint64]bool               // (pid<<32 | tid) with metadata written
	last  [][stats.NumCategories]uint64 // previous sample, for per-interval deltas
}

// Resource track tid bases within the "resources" process (pid 1): the
// resource's node id is added to its kind's base.
const (
	chromeBusBase = 1000
	chromeNICBase = 2000
	chromeDirBase = 3000
)

// NewChrome creates an exporter writing to w.
func NewChrome(w io.Writer) *Chrome {
	c := &Chrome{bw: bufio.NewWriter(w), named: map[uint64]bool{}}
	_, c.err = c.bw.WriteString("[")
	return c
}

// obj writes one JSON object into the array.
func (c *Chrome) obj(format string, args ...any) {
	if c.err != nil {
		return
	}
	sep := ",\n"
	if c.n == 0 {
		sep = "\n"
	}
	c.n++
	if _, err := fmt.Fprintf(c.bw, sep+format, args...); err != nil {
		c.err = err
	}
}

// track returns the (pid, tid, track name) for an event.
func track(e Event) (pid, tid int, name string) {
	switch e.Kind {
	case BusOccupy:
		return 1, chromeBusBase + int(e.Proc), fmt.Sprintf("bus %d", e.Proc)
	case NICOccupy:
		return 1, chromeNICBase + int(e.Proc), fmt.Sprintf("nic %d", e.Proc)
	case DirOccupy:
		return 1, chromeDirBase + int(e.Proc), fmt.Sprintf("dir %d", e.Proc)
	default:
		return 0, int(e.Proc), fmt.Sprintf("proc %d", e.Proc)
	}
}

// ensureTrack writes process_name/thread_name metadata once per track.
func (c *Chrome) ensureTrack(pid, tid int, name string) {
	// Process keys live in a separate bit so (pid=0, tid=0) cannot collide
	// with pid 0's process entry.
	if pkey := uint64(1)<<63 | uint64(pid); !c.named[pkey] {
		c.named[pkey] = true
		pname := "processors"
		if pid == 1 {
			pname = "resources"
		}
		c.obj(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`, pid, pname)
	}
	key := uint64(pid)<<32 | uint64(uint32(tid))
	if !c.named[key] {
		c.named[key] = true
		c.obj(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`, pid, tid, name)
		c.obj(`{"name":"thread_sort_index","ph":"M","pid":%d,"tid":%d,"args":{"sort_index":%d}}`, pid, tid, tid)
	}
}

// Emit implements Sink: one complete ("X") event per protocol event.
func (c *Chrome) Emit(e Event) {
	pid, tid, name := track(e)
	c.ensureTrack(pid, tid, name)
	c.obj(`{"name":%q,"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"args":{%q:%d,"cost":%d}}`,
		e.Kind.String(), pid, tid, e.Time, e.Cost, e.Kind.ArgName(), e.Arg, e.Cost)
}

// Sample implements Sampler: one counter event per processor whose series
// are the cycles each breakdown category gained since the previous sample.
func (c *Chrome) Sample(now uint64, procs []stats.Proc) {
	if len(c.last) < len(procs) {
		last := make([][stats.NumCategories]uint64, len(procs))
		copy(last, c.last)
		c.last = last
	}
	for i := range procs {
		c.ensureTrack(0, i, fmt.Sprintf("proc %d", i))
		var args strings.Builder
		for cat := stats.Category(0); cat < stats.NumCategories; cat++ {
			if cat > 0 {
				args.WriteByte(',')
			}
			fmt.Fprintf(&args, "%q:%d", cat.String(), procs[i].Cycles[cat]-c.last[i][cat])
		}
		c.last[i] = procs[i].Cycles
		c.obj(`{"name":"breakdown p%d","ph":"C","pid":0,"tid":%d,"ts":%d,"args":{%s}}`,
			i, i, now, args.String())
	}
}

// Close terminates the JSON array and flushes buffered output. It returns
// the first error encountered while writing.
func (c *Chrome) Close() error {
	if c.err == nil {
		_, c.err = c.bw.WriteString("\n]\n")
	}
	if err := c.bw.Flush(); c.err == nil {
		c.err = err
	}
	return c.err
}

var (
	_ Sink    = (*Chrome)(nil)
	_ Sampler = (*Chrome)(nil)
)
