package harness

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// boomApp is a deliberately-misbehaving test-only application: on any run
// with more than one processor, the highest-numbered processor panics after
// the first barrier. Its uniprocessor run (the speedup baseline) succeeds,
// so figures show a completed baseline and an error cell — the exact
// containment scenario the parallel engine must survive.
type boomApp struct{}

func (boomApp) Name() string { return "zz-boom" }

func (boomApp) Versions() []core.Version {
	return []core.Version{{Name: "orig", Class: core.Orig, Desc: "panics on the last processor when P > 1"}}
}

func (boomApp) Build(version string, scale float64, as *mem.AddressSpace, np int) (core.Instance, error) {
	return boomInstance{}, nil
}

type boomInstance struct{}

func (boomInstance) Body(p *sim.Proc) {
	p.Compute(100)
	p.Barrier()
	if p.NP() > 1 && p.ID() == p.NP()-1 {
		panic("boom: deliberate test failure")
	}
	p.Barrier()
}

func (boomInstance) Verify() error { return nil }

func init() { core.Register(boomApp{}) }

func TestParallelMatchesSerial(t *testing.T) {
	cells := []Cell{
		{App: "radix", Version: "orig", Platform: "svm", Speedup: true},
		{App: "radix", Version: "local", Platform: "svm", Speedup: true},
		{App: "radix", Version: "orig", Platform: "smp", Speedup: true},
		{App: "radix", Version: "orig", Platform: "dsm"},
		{App: "lu", Version: "orig", Platform: "svm"},
	}
	serial := NewRunner(4, 0.125)
	serial.RunParallel(1, cells)
	par := NewRunner(4, 0.125)
	par.RunParallel(8, cells)
	for _, c := range cells {
		a, err := serial.Run(c.App, c.Version, c.Platform)
		if err != nil {
			t.Fatalf("serial %v: %v", c, err)
		}
		b, err := par.Run(c.App, c.Version, c.Platform)
		if err != nil {
			t.Fatalf("parallel %v: %v", c, err)
		}
		if a.EndTime != b.EndTime {
			t.Errorf("%s/%s@%s: serial end time %d != parallel %d", c.App, c.Version, c.Platform, a.EndTime, b.EndTime)
		}
		if c.Speedup {
			sa, _ := serial.Speedup(c.App, c.Version, c.Platform)
			sb, _ := par.Speedup(c.App, c.Version, c.Platform)
			if sa != sb {
				t.Errorf("%s/%s@%s: serial speedup %v != parallel %v", c.App, c.Version, c.Platform, sa, sb)
			}
		}
	}
}

func TestPanickingCellContained(t *testing.T) {
	before := runtime.NumGoroutine()
	r := NewRunner(4, 0.125)
	r.RunParallel(4, []Cell{
		{App: "zz-boom", Version: "orig", Platform: "svm", Speedup: true},
		{App: "radix", Version: "orig", Platform: "svm", Speedup: true},
	})

	// The bad cell is memoized as an error naming the failing processor.
	_, err := r.Run("zz-boom", "orig", "svm")
	var pe *sim.ProcPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want wrapped *sim.ProcPanicError", err)
	}
	if pe.Proc != 3 {
		t.Errorf("failing proc = %d, want 3", pe.Proc)
	}
	// Its uniprocessor baseline succeeded.
	if _, err := r.Baseline("zz-boom", "svm"); err != nil {
		t.Errorf("baseline should succeed at P=1: %v", err)
	}
	// The healthy cell completed.
	if _, err := r.Speedup("radix", "orig", "svm"); err != nil {
		t.Errorf("healthy cell failed: %v", err)
	}
	// The failure is reported once.
	fails := r.FailedCells()
	if len(fails) != 1 || !strings.Contains(fails[0], "zz-boom") {
		t.Errorf("FailedCells = %v, want exactly the zz-boom cell", fails)
	}

	// No parked processor goroutines leaked.
	deadline := time.Now().Add(2 * time.Second)
	n := runtime.NumGoroutine()
	for n > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > before {
		t.Errorf("goroutines grew from %d to %d", before, n)
	}
}

func TestErrorRowKeepsFigureAlive(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig2 matrix skipped in -short mode")
	}
	r := NewRunner(2, 0.125)
	f, err := FindFigure("fig2")
	if err != nil {
		t.Fatal(err)
	}
	r.RunParallel(8, f.Cells())
	out, err := f.Run(r)
	if err != nil {
		t.Fatalf("figure aborted instead of printing an error row: %v", err)
	}
	var boomRow string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "zz-boom") {
			boomRow = line
		}
	}
	if !strings.Contains(boomRow, "error") {
		t.Errorf("zz-boom row missing error cells:\n%s", out)
	}
	if !strings.Contains(out, "! zz-boom/orig@svm:") {
		t.Errorf("missing failure note under the table:\n%s", out)
	}
	for _, app := range []string{"lu", "radix", "ocean"} {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, app) && strings.Contains(line, "error") {
				t.Errorf("healthy app %s rendered as error:\n%s", app, line)
			}
		}
	}
}

func TestMemoKeyCoversDiagnosticFields(t *testing.T) {
	base := Spec{App: "lu", Version: "orig", Platform: "svm", NumProcs: 16, Scale: 1}
	variants := []Spec{
		{App: "lu", Version: "orig", Platform: "svm", NumProcs: 16, Scale: 1, FreeCSFaults: true},
		{App: "lu", Version: "orig", Platform: "svm", NumProcs: 16, Scale: 2},
		{App: "lu", Version: "orig", Platform: "svm", NumProcs: 16, Scale: 1, SkipVerify: true},
	}
	for _, v := range variants {
		if v.memoKey() == base.memoKey() {
			t.Errorf("memo key %q does not distinguish %+v", base.memoKey(), v)
		}
	}
	if base.memoKey() != base.memoKey() {
		t.Error("memo key not stable")
	}
}
