package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/stats"
)

// BaseScale gives each application's default problem-size scale for figure
// regeneration, chosen to track the paper's inputs while simulating in
// reasonable time: LU 512x512 (paper 1024: pass -scale 2), Ocean 514-class
// grids, Volrend/Shear-Warp 256-class images (paper's 256x225 head),
// Raytrace 128x128 (the paper's exact image), Barnes 4K bodies (paper 16K:
// pass -scale 4), Radix 512K keys (paper 4M: pass -scale 8).
var BaseScale = map[string]float64{
	"lu":        2,
	"ocean":     2,
	"volrend":   2,
	"shearwarp": 2,
	"raytrace":  1,
	"barnes":    2,
	"radix":     2,
	// Irregular extension workloads (ROADMAP item 3): sized so a 16-way
	// cell simulates in the same ballpark as the paper apps above.
	"kvstore":  2,
	"bfs":      2,
	"pipeline": 2,
}

func (r *Runner) scaleFor(app string) float64 {
	s := r.Scale
	if s == 0 {
		s = 1
	}
	if b, ok := BaseScale[app]; ok {
		return b * s
	}
	return s
}

// Figure is one regenerable experiment from the paper.
type Figure struct {
	ID    string
	Title string
	// Cells enumerates the experiments the figure needs, so they can be
	// pre-executed in parallel (Runner.RunParallel) before Run renders
	// them serially from the memo cache.
	Cells func() []Cell
	// Run renders the figure. A failing cell becomes an error row in the
	// output (with a note below the table) rather than an error return,
	// so one bad cell cannot abort a whole figures run; the error return
	// is reserved for infrastructure failures.
	Run func(r *Runner) (string, error)
}

// cellErr formats one failed cell for the notes under a figure table.
func cellErr(cell string, err error) string {
	return "  ! " + cell + ": " + firstLine(err.Error())
}

// writeFails appends the per-cell failure notes to a rendered figure.
func writeFails(b *strings.Builder, fails []string) {
	for _, f := range fails {
		fmt.Fprintln(b, f)
	}
}

type breakdownSpec struct {
	id, title, app, version string
}

var breakdowns = []breakdownSpec{
	{"fig3", "Execution time breakdown of LU contiguous version without padding/alignment", "lu", "4d"},
	{"fig4", "Execution time breakdown of Ocean contiguous version", "ocean", "4d"},
	{"fig5", "Execution time breakdown of Ocean row-wise version", "ocean", "rows"},
	{"fig6", "Execution time breakdown of Volrend for the SPLASH-2 version", "volrend", "orig"},
	{"fig7", "Execution time breakdown of Volrend with a more balanced task partition algorithm and stealing", "volrend", "balanced"},
	{"fig8", "Execution time breakdown of Volrend with a more balanced task partition algorithm and no stealing", "volrend", "nosteal"},
	{"fig9", "Execution time breakdown of original Shear-Warp", "shearwarp", "orig"},
	{"fig10", "Execution time breakdown of optimized Shear-Warp", "shearwarp", "opt"},
	{"fig11", "Execution time breakdown of Raytrace for the SPLASH-2 version", "raytrace", "orig"},
	{"fig12", "Execution time breakdown of optimized Raytrace", "raytrace", "splitq"},
	{"fig13", "Execution time breakdown of Barnes for SPLASH-2 version", "barnes", "splash2"},
	{"fig14", "Execution time breakdown of Barnes for spatial version", "barnes", "spatial"},
	{"fig15", "Execution time breakdown of Radix for SPLASH-2 version", "radix", "orig"},
}

// Figures returns every regenerable figure in paper order.
func Figures() []Figure {
	figs := []Figure{
		{ID: "fig2", Title: "Speedups for the original versions across the shared address space multiprocessors", Cells: fig2Cells, Run: fig2},
	}
	for _, b := range breakdowns {
		b := b
		figs = append(figs, Figure{
			ID:    b.id,
			Title: b.title,
			Cells: func() []Cell {
				return []Cell{{App: b.app, Version: b.version, Platform: "svm"}}
			},
			Run: func(r *Runner) (string, error) {
				run, err := r.Run(b.app, b.version, "svm")
				if err != nil {
					return fmt.Sprintf("error: %s\n", firstLine(err.Error())), nil
				}
				return run.BreakdownTable(), nil
			},
		})
	}
	figs = append(figs,
		Figure{ID: "fig16", Title: "Performance with different optimization classes across shared-address-space multiprocessors", Cells: fig16Cells, Run: fig16},
		Figure{ID: "fig17", Title: "Speedups of Volrend with the algorithmic optimization with and without stealing on SVM and CC-NUMA DSM", Cells: fig17Cells, Run: fig17},
	)
	return figs
}

// FindFigure returns the figure with the given ID.
func FindFigure(id string) (Figure, error) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("harness: unknown figure %q", id)
}

func fig2Cells() []Cell {
	var cells []Cell
	for _, app := range core.PaperApps() {
		a, _ := core.Lookup(app)
		for _, pl := range platform.Names {
			cells = append(cells, Cell{App: app, Version: a.Versions()[0].Name, Platform: pl, Speedup: true})
		}
	}
	return cells
}

func fig2(r *Runner) (string, error) {
	var b strings.Builder
	var fails []string
	fmt.Fprintf(&b, "%-10s", "app")
	for _, pl := range platform.Names {
		fmt.Fprintf(&b, " %8s", pl)
	}
	fmt.Fprintln(&b)
	for _, app := range core.PaperApps() {
		a, _ := core.Lookup(app)
		orig := a.Versions()[0].Name
		fmt.Fprintf(&b, "%-10s", app)
		for _, pl := range platform.Names {
			s, err := r.Speedup(app, orig, pl)
			if err != nil {
				fmt.Fprintf(&b, " %8s", "error")
				fails = append(fails, cellErr(app+"/"+orig+"@"+pl, err))
				continue
			}
			fmt.Fprintf(&b, " %8.2f", s)
		}
		fmt.Fprintln(&b)
	}
	writeFails(&b, fails)
	return b.String(), nil
}

func fig16Cells() []Cell {
	var cells []Cell
	for _, app := range core.PaperApps() {
		a, _ := core.Lookup(app)
		for _, v := range a.Versions() {
			for _, pl := range platform.Names {
				cells = append(cells, Cell{App: app, Version: v.Name, Platform: pl, Speedup: true})
			}
		}
	}
	return cells
}

func fig16(r *Runner) (string, error) {
	var b strings.Builder
	var fails []string
	for _, app := range core.PaperApps() {
		a, _ := core.Lookup(app)
		fmt.Fprintf(&b, "%s:\n", app)
		fmt.Fprintf(&b, "  %-12s %-5s", "version", "class")
		for _, pl := range platform.Names {
			fmt.Fprintf(&b, " %8s", pl)
		}
		fmt.Fprintln(&b)
		for _, v := range a.Versions() {
			fmt.Fprintf(&b, "  %-12s %-5s", v.Name, v.Class)
			for _, pl := range platform.Names {
				s, err := r.Speedup(app, v.Name, pl)
				if err != nil {
					fmt.Fprintf(&b, " %8s", "error")
					fails = append(fails, cellErr(app+"/"+v.Name+"@"+pl, err))
					continue
				}
				fmt.Fprintf(&b, " %8.2f", s)
			}
			fmt.Fprintln(&b)
		}
	}
	writeFails(&b, fails)
	return b.String(), nil
}

func fig17Cells() []Cell {
	var cells []Cell
	for _, v := range []string{"balanced", "nosteal"} {
		for _, pl := range []string{"svm", "dsm"} {
			cells = append(cells, Cell{App: "volrend", Version: v, Platform: pl, Speedup: true})
		}
	}
	return cells
}

func fig17(r *Runner) (string, error) {
	var b strings.Builder
	var fails []string
	fmt.Fprintf(&b, "%-10s %8s %8s\n", "version", "svm", "dsm")
	for _, v := range []string{"balanced", "nosteal"} {
		fmt.Fprintf(&b, "%-10s", v)
		for _, pl := range []string{"svm", "dsm"} {
			s, err := r.Speedup("volrend", v, pl)
			if err != nil {
				fmt.Fprintf(&b, " %8s", "error")
				fails = append(fails, cellErr("volrend/"+v+"@"+pl, err))
				continue
			}
			fmt.Fprintf(&b, " %8.2f", s)
		}
		fmt.Fprintln(&b)
	}
	writeFails(&b, fails)
	return b.String(), nil
}

// HeadlineCells enumerates the experiments HeadlineSpeedups needs, for
// parallel pre-execution.
func HeadlineCells() []Cell {
	var cells []Cell
	for _, app := range core.PaperApps() {
		a, _ := core.Lookup(app)
		for _, v := range a.Versions() {
			cells = append(cells, Cell{App: app, Version: v.Name, Platform: "svm", Speedup: true})
		}
	}
	return cells
}

// HeadlineSpeedups renders the paper's §4 per-application progression on
// SVM: every version's speedup in order, so the optimization story can be
// read off directly.
func HeadlineSpeedups(r *Runner) (string, error) {
	var b strings.Builder
	var fails []string
	apps := core.PaperApps()
	sort.Strings(apps)
	for _, app := range apps {
		a, _ := core.Lookup(app)
		fmt.Fprintf(&b, "%-10s", app)
		for _, v := range a.Versions() {
			s, err := r.Speedup(app, v.Name, "svm")
			if err != nil {
				fmt.Fprintf(&b, "  %s=error", v.Name)
				fails = append(fails, cellErr(app+"/"+v.Name+"@svm", err))
				continue
			}
			fmt.Fprintf(&b, "  %s=%.2f", v.Name, s)
		}
		fmt.Fprintln(&b)
	}
	writeFails(&b, fails)
	return b.String(), nil
}

// DominantCategory returns the breakdown category with the largest aggregate
// share in a run — used by tests asserting "lock wait dominates" style
// claims.
func DominantCategory(run *stats.Run) stats.Category {
	best := stats.Compute
	var bestV uint64
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		if v := run.TotalCycles(c); v > bestV {
			bestV = v
			best = c
		}
	}
	return best
}
