package harness

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/stats"
	"repro/internal/store"
)

// fakeRun fabricates a deterministic result for executor stubs, so cache
// tests do not pay for real simulations.
func fakeRun(s Spec) *stats.Run {
	r := stats.NewRun(s.label(), s.NumProcs)
	r.EndTime = 1000 + uint64(s.NumProcs)
	for i := range r.Procs {
		r.Procs[i].Cycles[stats.Compute] = r.EndTime
	}
	return r
}

// TestMemoKeyAppliesDefaults: the exported MemoKey (the cluster ring's
// routing key) must treat a defaulted spec and its explicit spelling as
// the same cell, or equivalent requests would route to different owners.
func TestMemoKeyAppliesDefaults(t *testing.T) {
	short := Spec{App: "radix"}
	full := Spec{App: "radix", Version: "orig", Platform: "svm", NumProcs: 16, Scale: 1}
	if short.MemoKey() != full.MemoKey() {
		t.Errorf("MemoKey(%+v) = %q, want %q", short, short.MemoKey(), full.MemoKey())
	}
	other := Spec{App: "radix", NumProcs: 8}
	if short.MemoKey() == other.MemoKey() {
		t.Error("MemoKey does not distinguish processor counts")
	}
}

// TestMemoStampede is the cache-stampede test: N concurrent requests for
// one cold cell must perform exactly one simulation, and every requester
// must see byte-identical RunJSON.
func TestMemoStampede(t *testing.T) {
	var execs atomic.Uint64
	gate := make(chan struct{})
	m := NewMemo(nil)
	m.Exec = func(s Spec) (*stats.Run, error) {
		execs.Add(1)
		<-gate // hold every early requester at the singleflight barrier
		return fakeRun(s), nil
	}
	spec := Spec{App: "radix", Version: "orig", Platform: "svm", NumProcs: 4, Scale: 0.125}

	const n = 32
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			run, err := m.Run(spec)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			b, err := RunJSON(spec, run, 0)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			bodies[i] = b
		}(i)
	}
	close(start)
	close(gate)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Errorf("cold cell executed %d times under %d concurrent requests, want exactly 1", got, n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d response differs from request 0", i)
		}
	}
	cs := m.Stats()
	if cs.Executions != 1 || cs.MemoMisses != 1 || cs.MemoHits != n-1 {
		t.Errorf("stats = %+v, want 1 execution, 1 miss, %d hits", cs, n-1)
	}
}

// TestMemoStoreCorruptionRecomputes: a truncated or garbage store entry is
// recomputed and overwritten, with no error surfaced to the caller.
func TestMemoStoreCorruptionRecomputes(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Uint64
	newMemo := func() *Memo {
		m := NewMemo(st)
		m.Exec = func(s Spec) (*stats.Run, error) {
			execs.Add(1)
			return fakeRun(s), nil
		}
		return m
	}
	spec := Spec{App: "lu", Version: "orig", Platform: "svm", NumProcs: 4, Scale: 0.5}

	// Cold: computed and persisted.
	if _, err := newMemo().Run(spec); err != nil {
		t.Fatal(err)
	}
	if execs.Load() != 1 {
		t.Fatalf("cold run executed %d times", execs.Load())
	}

	// Corrupt every entry in the store directory.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), ".json") {
			p := filepath.Join(dir, de.Name())
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, raw[:len(raw)/3], 0o666); err != nil {
				t.Fatal(err)
			}
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no persisted entry found to corrupt")
	}

	// A fresh memo (fresh process, in effect) recomputes silently...
	run, err := newMemo().Run(spec)
	if err != nil {
		t.Fatalf("corrupt entry surfaced an error: %v", err)
	}
	if run == nil || run.EndTime == 0 {
		t.Fatal("recomputed run missing")
	}
	if execs.Load() != 2 {
		t.Fatalf("after corruption executed %d times total, want 2", execs.Load())
	}

	// ...and overwrites the entry: a third memo hits the store, zero sims.
	m3 := newMemo()
	if _, err := m3.Run(spec); err != nil {
		t.Fatal(err)
	}
	if execs.Load() != 2 {
		t.Errorf("healed entry not served from store: %d executions total", execs.Load())
	}
	if cs := m3.Stats(); cs.StoreHits != 1 || cs.Executions != 0 {
		t.Errorf("third memo stats = %+v, want 1 store hit, 0 executions", cs)
	}
}

// TestMemoPersistsFailures: deterministic failures round-trip through the
// store with their JSON kind intact, so warm reruns of figures with error
// cells perform zero simulations and render identically.
func TestMemoPersistsFailures(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Uint64
	newMemo := func() *Memo {
		m := NewMemo(st)
		m.Exec = func(s Spec) (*stats.Run, error) {
			execs.Add(1)
			return nil, fmt.Errorf("%s: %w", s.label(), &VerifyError{Err: fmt.Errorf("checksum mismatch")})
		}
		return m
	}
	spec := Spec{App: "lu", Version: "orig", Platform: "svm", NumProcs: 4, Scale: 0.5}

	_, errCold := newMemo().Run(spec)
	if errCold == nil {
		t.Fatal("want error")
	}
	_, errWarm := newMemo().Run(spec)
	if errWarm == nil {
		t.Fatal("want replayed error")
	}
	if execs.Load() != 1 {
		t.Errorf("failure executed %d times, want 1 (memoized across processes)", execs.Load())
	}
	if errWarm.Error() != errCold.Error() {
		t.Errorf("replayed message %q != original %q", errWarm, errCold)
	}
	if got, want := errorKind(errWarm), errorKind(errCold); got != want {
		t.Errorf("replayed kind %q != original %q", got, want)
	}
	ja, _ := RunErrorJSON(spec, errCold)
	jb, _ := RunErrorJSON(spec, errWarm)
	if !bytes.Equal(ja, jb) {
		t.Errorf("error JSON differs warm vs cold:\n%s\n%s", ja, jb)
	}
}

// TestTraceSpecsBypassCache: observability hooks are excluded from the memo
// key, so specs carrying them must never be served from (or written to) the
// cache — a cache hit would silently emit no events.
func TestTraceSpecsBypassCache(t *testing.T) {
	var execs atomic.Uint64
	m := NewMemo(nil)
	m.Exec = func(s Spec) (*stats.Run, error) {
		execs.Add(1)
		return fakeRun(s), nil
	}
	spec := Spec{App: "radix", Version: "orig", Platform: "svm", NumProcs: 2, Scale: 0.125, TraceRing: 64}
	for i := 0; i < 3; i++ {
		if _, err := m.Run(spec); err != nil {
			t.Fatal(err)
		}
	}
	if execs.Load() != 3 {
		t.Errorf("trace-carrying spec executed %d times for 3 runs, want 3 (no caching)", execs.Load())
	}
}

// warmRerunCells picks the figure matrix for the warm-rerun test: the full
// `figures -all` cell set normally, a small figure in -short mode (the
// race-instrumented CI leg).
func warmRerunCells() []Cell {
	if testing.Short() {
		f, _ := FindFigure("fig17")
		return f.Cells()
	}
	var cells []Cell
	for _, f := range Figures() {
		cells = append(cells, f.Cells()...)
	}
	return cells
}

// TestWarmFiguresRerunZeroSimulations: after a cold `figures -all -store`
// pass, a second full pass over the same store performs zero simulations
// and renders byte-identical figures.
func TestWarmFiguresRerunZeroSimulations(t *testing.T) {
	dir := t.TempDir()
	cells := warmRerunCells()

	render := func(r *Runner) string {
		var b strings.Builder
		for _, f := range Figures() {
			if testing.Short() && f.ID != "fig17" {
				continue
			}
			out, err := f.Run(r)
			if err != nil {
				t.Fatalf("%s: %v", f.ID, err)
			}
			b.WriteString(out)
		}
		return b.String()
	}

	stCold, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewRunnerWith(4, 0.125, NewMemo(stCold))
	cold.RunParallel(0, cells)
	coldOut := render(cold)
	if cs := cold.CacheStats(); cs.Executions == 0 {
		t.Fatal("cold pass performed no simulations — test is vacuous")
	}

	stWarm, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewRunnerWith(4, 0.125, NewMemo(stWarm))
	warm.RunParallel(0, cells)
	warmOut := render(warm)

	cs := warm.CacheStats()
	if cs.Executions != 0 {
		t.Errorf("warm rerun performed %d simulations, want 0 (stats: %v)", cs.Executions, cs)
	}
	if cs.StoreHits == 0 || cs.StoreMisses != 0 {
		t.Errorf("warm rerun store traffic = %d hits / %d misses, want all hits", cs.StoreHits, cs.StoreMisses)
	}
	if warmOut != coldOut {
		t.Error("warm figures render differs from cold render")
	}
}
