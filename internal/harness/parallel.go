package harness

import (
	"runtime"
	"sync"
)

// Cell names one (application, version, platform) experiment of a figure's
// matrix at a runner's processor count. Speedup marks cells whose figure
// divides by the uniprocessor baseline, so pre-execution must compute that
// too.
type Cell struct {
	App      string
	Version  string
	Platform string
	Speedup  bool
}

// RunParallel pre-executes cells through the runner's memo cache with a
// bounded pool of at most workers concurrent simulations (GOMAXPROCS when
// workers <= 0). Each simulation is single-threaded by design, so the pool
// is what turns idle host cores into figure throughput.
//
// Duplicate cells and shared uniprocessor baselines execute exactly once
// (the runner's singleflight memoization), and failures are memoized like
// results, so rendering a figure afterwards reads pure cache: its output is
// byte-identical to a fully serial run, and per-cell errors surface as error
// rows there and in FailedCells rather than being returned here.
func (r *Runner) RunParallel(workers int, cells []Cell) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 0 {
		return
	}
	work := make(chan Cell)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				// Errors are memoized per cell; renderers and
				// FailedCells report them.
				if c.Speedup {
					_, _ = r.Speedup(c.App, c.Version, c.Platform)
				} else {
					_, _ = r.Run(c.App, c.Version, c.Platform)
				}
			}
		}()
	}
	for _, c := range cells {
		work <- c
	}
	close(work)
	wg.Wait()
}
