package harness

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/store"
)

// Memo is the spec-keyed experiment cache every execution path funnels
// through: an in-memory singleflight tier (concurrent requests for the same
// cold cell wait for exactly one execution) over an optional persistent
// store tier (results survive the process; see internal/store). Runner is a
// figure-oriented view over a Memo; the serving layer shares one Memo across
// requests and runners so all of them coalesce and cache together.
//
// The simulator is deterministic, so failures are cached like results, in
// both tiers: a bad cell is computed once, not retried on every lookup.
type Memo struct {
	// Store, when non-nil, is the persistent second tier. Set before the
	// first Run call.
	Store *store.Store
	// Exec executes one experiment; nil means Execute. Tests override it
	// to count or stub simulations.
	Exec func(Spec) (*stats.Run, error)

	mu   sync.Mutex
	runs map[string]*memoEntry

	memoHits, memoMisses     atomic.Uint64
	storeHits, storeMisses   atomic.Uint64
	executions, storeRecords atomic.Uint64
}

// NewMemo creates a Memo over an optional persistent store (nil for
// in-memory only).
func NewMemo(st *store.Store) *Memo {
	return &Memo{Store: st, runs: map[string]*memoEntry{}}
}

// CacheStats is a point-in-time snapshot of a Memo's counters. MemoHits
// counts lookups answered by the in-memory tier; StoreHits/StoreMisses
// count what the persistent tier answered of the memo misses; Executions
// counts actual simulations (a warm rerun should show zero).
type CacheStats struct {
	MemoHits, MemoMisses   uint64
	StoreHits, StoreMisses uint64
	Executions             uint64
}

func (c CacheStats) String() string {
	return fmt.Sprintf("memo %d hit / %d miss, store %d hit / %d miss, %d simulation(s)",
		c.MemoHits, c.MemoMisses, c.StoreHits, c.StoreMisses, c.Executions)
}

// Stats returns the memo's cumulative counters.
func (m *Memo) Stats() CacheStats {
	return CacheStats{
		MemoHits:    m.memoHits.Load(),
		MemoMisses:  m.memoMisses.Load(),
		StoreHits:   m.storeHits.Load(),
		StoreMisses: m.storeMisses.Load(),
		Executions:  m.executions.Load(),
	}
}

// StoredError replays a deterministic failure from the persistent store.
// The concrete error type of the original failure is gone (it lived in
// another process), but its JSON kind and full message are preserved, so
// RunErrorJSON and FailedCells render identically warm or cold.
type StoredError struct {
	Kind string // "panic", "deadlock", "invariant", "verify" or "error"
	Msg  string
}

func (e *StoredError) Error() string { return e.Msg }

// claim returns the singleflight entry for key, creating it if absent; the
// second result reports whether the caller claimed it and must fill the
// entry and close done.
func (m *Memo) claim(key string) (*memoEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.runs[key]; ok {
		return e, false
	}
	e := &memoEntry{done: make(chan struct{})}
	m.runs[key] = e
	return e, true
}

// Run returns the result for s, executing it at most once per memo (and,
// with a store attached, at most once per store lifetime across processes).
//
// Specs carrying observability hooks (TraceSink, TraceRing, SampleInterval)
// bypass both tiers and execute directly: the hooks are excluded from the
// memo key, and a cache hit would silently produce no events.
func (m *Memo) Run(s Spec) (*stats.Run, error) {
	s = s.withDefaults()
	if s.TraceSink != nil || s.TraceRing > 0 || s.SampleInterval > 0 {
		m.executions.Add(1)
		return m.exec(s)
	}
	e, mine := m.claim(s.memoKey())
	if mine {
		m.memoMisses.Add(1)
		e.run, e.err = m.load(s)
		close(e.done)
	} else {
		m.memoHits.Add(1)
	}
	<-e.done
	return e.run, e.err
}

// Record inserts an externally-executed result for s into the in-memory
// tier (not the store: the caller may have run s with observability hooks,
// whose timing-neutral guarantee we trust but whose provenance we do not
// persist).
func (m *Memo) Record(s Spec, run *stats.Run) {
	s = s.withDefaults()
	e := &memoEntry{done: make(chan struct{}), run: run}
	close(e.done)
	m.mu.Lock()
	m.runs[s.memoKey()] = e
	m.mu.Unlock()
}

func (m *Memo) exec(s Spec) (*stats.Run, error) {
	if m.Exec != nil {
		return m.Exec(s)
	}
	return Execute(s)
}

// load consults the persistent tier, then executes and writes back.
func (m *Memo) load(s Spec) (*stats.Run, error) {
	key := s.memoKey()
	if m.Store != nil {
		if res, ok := m.Store.Get(key); ok {
			m.storeHits.Add(1)
			if res.ErrKind != "" {
				return nil, &StoredError{Kind: res.ErrKind, Msg: res.ErrMsg}
			}
			return res.Run, nil
		}
		m.storeMisses.Add(1)
	}
	m.executions.Add(1)
	run, err := m.exec(s)
	if m.Store != nil {
		res := store.Result{Run: run}
		if err != nil {
			res = store.Result{ErrKind: errorKind(err), ErrMsg: err.Error()}
		}
		// A write failure (full disk, read-only dir) costs persistence,
		// not correctness: the result is still memoized and returned.
		_ = m.Store.Put(key, res)
	}
	return run, err
}

// Failed returns a sorted, one-line-per-cell description of every memoized
// execution that ended in an error.
func (m *Memo) Failed() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for key, e := range m.runs {
		select {
		case <-e.done:
			if e.err != nil {
				out = append(out, key+": "+firstLine(e.err.Error()))
			}
		default: // still executing; not a result yet
		}
	}
	sort.Strings(out)
	return out
}
