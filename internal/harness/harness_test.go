package harness

import (
	"strings"
	"testing"

	_ "repro/internal/apps"
	"repro/internal/core"
	"repro/internal/stats"
)

func TestExecuteUnknownAppAndVersion(t *testing.T) {
	if _, err := Execute(Spec{App: "nope"}); err == nil {
		t.Error("expected error for unknown app")
	}
	if _, err := Execute(Spec{App: "lu", Version: "nope"}); err == nil {
		t.Error("expected error for unknown version")
	}
	if _, err := Execute(Spec{App: "lu", Version: "orig", Platform: "vax"}); err == nil {
		t.Error("expected error for unknown platform")
	}
}

func TestExecuteDefaults(t *testing.T) {
	run, err := Execute(Spec{App: "radix", Scale: 0.25, NumProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if run.NumProcs != 4 {
		t.Errorf("procs = %d, want 4", run.NumProcs)
	}
	if run.EndTime == 0 {
		t.Error("zero end time")
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(4, 0.125)
	a, err := r.Run("radix", "orig", "svm")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("radix", "orig", "svm")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Run did not return the memoized result")
	}
}

func TestSpeedupUsesOrigBaseline(t *testing.T) {
	r := NewRunner(4, 0.125)
	s1, err := r.Speedup("radix", "orig", "svm")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Speedup("radix", "local", "svm")
	if err != nil {
		t.Fatal(err)
	}
	// Both share the same T1(orig): ratio of speedups = inverse ratio of
	// run times.
	ro, _ := r.Run("radix", "orig", "svm")
	rl, _ := r.Run("radix", "local", "svm")
	want := float64(ro.EndTime) / float64(rl.EndTime)
	if got := s2 / s1; got < want*0.999 || got > want*1.001 {
		t.Errorf("speedup ratio %.4f, want %.4f", got, want)
	}
}

func TestFiguresRegistryComplete(t *testing.T) {
	figs := Figures()
	want := []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17"}
	if len(figs) != len(want) {
		t.Fatalf("%d figures registered, want %d", len(figs), len(want))
	}
	for i, id := range want {
		if figs[i].ID != id {
			t.Errorf("figure %d = %s, want %s", i, figs[i].ID, id)
		}
	}
	if _, err := FindFigure("fig99"); err == nil {
		t.Error("expected error for unknown figure")
	}
}

func TestBreakdownFiguresCoverRegisteredVersions(t *testing.T) {
	for _, b := range breakdowns {
		a, err := core.Lookup(b.app)
		if err != nil {
			t.Fatalf("%s: %v", b.id, err)
		}
		if _, err := core.FindVersion(a, b.version); err != nil {
			t.Errorf("%s: %v", b.id, err)
		}
	}
}

func TestBreakdownFigureRuns(t *testing.T) {
	f, err := FindFigure("fig15")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(4, 0.125)
	out, err := f.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Compute") || !strings.Contains(out, "DataWait") {
		t.Errorf("breakdown table missing category headers:\n%s", out)
	}
}

func TestDominantCategory(t *testing.T) {
	run := stats.NewRun("x", 2)
	run.Procs[0].Cycles[stats.LockWait] = 100
	run.Procs[1].Cycles[stats.LockWait] = 200
	run.Procs[0].Cycles[stats.Compute] = 50
	if got := DominantCategory(run); got != stats.LockWait {
		t.Errorf("dominant = %v, want LockWait", got)
	}
}
