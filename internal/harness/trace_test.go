package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	_ "repro/internal/apps"
	"repro/internal/trace"
)

// TestExecuteWithTraceSinks runs a real application with both a counting sink
// and a Chrome exporter attached, checking the acceptance criteria end to
// end: the exporter's output is valid trace-event JSON with processor and
// resource tracks, and the counting sink's totals match the run's aggregate
// counters exactly.
func TestExecuteWithTraceSinks(t *testing.T) {
	counting := trace.NewCounting(4)
	var buf bytes.Buffer
	chrome := trace.NewChrome(&buf)
	run, err := Execute(Spec{
		App: "radix", Scale: 0.25, NumProcs: 4,
		TraceSink:      trace.Tee(counting, chrome),
		SampleInterval: 50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := chrome.Close(); err != nil {
		t.Fatal(err)
	}

	agg := run.AggregateCounters()
	if got := counting.Count(trace.PageFetch); got != agg.PageFetches {
		t.Errorf("PageFetch events = %d, counters say %d", got, agg.PageFetches)
	}
	if got := counting.Count(trace.LockGrant); got != agg.LockAcquires {
		t.Errorf("LockGrant events = %d, counters say %d", got, agg.LockAcquires)
	}
	if got := counting.Count(trace.TwinCreate); got != agg.TwinsMade {
		t.Errorf("TwinCreate events = %d, counters say %d", got, agg.TwinsMade)
	}
	if got := counting.Count(trace.DiffCreate); got != agg.DiffsCreated {
		t.Errorf("DiffCreate events = %d, counters say %d", got, agg.DiffsCreated)
	}
	if got := counting.Count(trace.Invalidate); got != agg.Invalidations {
		t.Errorf("Invalidate events = %d, counters say %d", got, agg.Invalidations)
	}

	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	var xEvents, cEvents int
	pids := map[float64]bool{}
	for _, e := range evs {
		switch e["ph"] {
		case "X":
			xEvents++
		case "C":
			cEvents++
		}
		if pid, ok := e["pid"].(float64); ok {
			pids[pid] = true
		}
	}
	if xEvents == 0 {
		t.Error("no complete events in trace")
	}
	if cEvents == 0 {
		t.Error("no breakdown counter samples in trace")
	}
	if !pids[0] || !pids[1] {
		t.Errorf("trace missing processor (pid 0) or resource (pid 1) tracks: %v", pids)
	}
}

// TestExecuteWithTraceRing checks the Spec.TraceRing plumbing: a deadlocking
// run's error must render the last protocol events.
func TestExecuteWithTraceRing(t *testing.T) {
	counting := trace.NewCounting(4)
	a, err := Execute(Spec{App: "lu", Version: "4d", Scale: 0.25, NumProcs: 4, TraceSink: counting})
	if err != nil {
		t.Fatal(err)
	}
	// Tracing must not change simulated timing: the same cell without any
	// sinks ends at the same virtual time.
	b, err := Execute(Spec{App: "lu", Version: "4d", Scale: 0.25, NumProcs: 4, TraceRing: 64, SampleInterval: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if a.EndTime != b.EndTime {
		t.Errorf("tracing changed timing: %d vs %d cycles", a.EndTime, b.EndTime)
	}
}

func TestRunJSONShape(t *testing.T) {
	spec := Spec{App: "radix", Scale: 0.25, NumProcs: 4}
	run, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunJSON(spec, run, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		App      string              `json:"app"`
		Version  string              `json:"version"`
		Platform string              `json:"platform"`
		Procs    int                 `json:"procs"`
		EndTime  uint64              `json:"end_time"`
		Cycles   map[string][]uint64 `json:"cycles"`
		Speedup  float64             `json:"speedup"`
	}
	if err := json.Unmarshal(out, &d); err != nil {
		t.Fatalf("RunJSON output is not valid JSON: %v", err)
	}
	if d.App != "radix" || d.Version != "orig" || d.Platform != "svm" || d.Procs != 4 {
		t.Errorf("identity fields wrong: %+v", d)
	}
	if d.EndTime != run.EndTime {
		t.Errorf("end_time = %d, want %d", d.EndTime, run.EndTime)
	}
	if d.Speedup != 1.5 {
		t.Errorf("speedup = %v, want 1.5", d.Speedup)
	}
	if len(d.Cycles) != 6 {
		t.Fatalf("got %d cycle categories, want 6", len(d.Cycles))
	}
	for cat, per := range d.Cycles {
		if len(per) != 4 {
			t.Errorf("category %s has %d entries, want 4", cat, len(per))
		}
	}
	// Per-proc compute must match the run record.
	for i, v := range d.Cycles["Compute"] {
		if v != run.Procs[i].Cycles[0] {
			t.Errorf("Compute[%d] = %d, want %d", i, v, run.Procs[i].Cycles[0])
		}
	}
}
