package harness

import (
	"encoding/json"
	"errors"

	"repro/internal/sim"
	"repro/internal/stats"
)

// runJSON is the machine-readable form of one experiment, produced by
// RunJSON for `svmsim -json` and scripted figure pipelines.
type runJSON struct {
	App      string  `json:"app"`
	Version  string  `json:"version"`
	Platform string  `json:"platform"`
	Procs    int     `json:"procs"`
	Scale    float64 `json:"scale"`
	EndTime  uint64  `json:"end_time"`
	// Cycles maps each breakdown category to its per-processor cycle
	// counts, index = processor id.
	Cycles map[string][]uint64 `json:"cycles"`
	// Counters is the run's aggregate event counts (sum over processors).
	Counters stats.Counters `json:"counters"`
	Speedup  float64        `json:"speedup,omitempty"`
	// Phases holds named phase durations when the application records them.
	Phases map[string]uint64 `json:"phases,omitempty"`
}

// RunJSON renders one run as indented JSON: identity fields from the spec,
// per-processor cycles for every breakdown category, aggregate counters, and
// the speedup when the caller computed one (pass 0 to omit it).
func RunJSON(s Spec, run *stats.Run, speedup float64) ([]byte, error) {
	s = s.withDefaults()
	out := runJSON{
		App:      s.App,
		Version:  s.Version,
		Platform: s.Platform,
		Procs:    s.NumProcs,
		Scale:    s.Scale,
		EndTime:  run.EndTime,
		Cycles:   map[string][]uint64{},
		Counters: run.AggregateCounters(),
		Speedup:  speedup,
	}
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		per := make([]uint64, len(run.Procs))
		for i := range run.Procs {
			per[i] = run.Procs[i].Cycles[c]
		}
		out.Cycles[c.String()] = per
	}
	if len(run.PhaseTimes) > 0 {
		out.Phases = run.PhaseTimes
	}
	return json.MarshalIndent(out, "", "  ")
}

// runErrorJSON is the machine-readable form of a FAILED experiment: the same
// identity fields as runJSON, with a structured error object in place of the
// results, so scripted pipelines can distinguish a failed cell from a
// missing one and branch on the failure kind.
type runErrorJSON struct {
	App      string    `json:"app"`
	Version  string    `json:"version"`
	Platform string    `json:"platform"`
	Procs    int       `json:"procs"`
	Scale    float64   `json:"scale"`
	Error    errorJSON `json:"error"`
}

type errorJSON struct {
	// Kind classifies the failure: "panic" (application or platform panic
	// contained by the kernel), "deadlock", "invariant" (runtime checker
	// violation), "verify" (wrong computed result), or "error".
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// RunErrorJSON renders a failed experiment as indented JSON.
func RunErrorJSON(s Spec, err error) ([]byte, error) {
	s = s.withDefaults()
	out := runErrorJSON{
		App:      s.App,
		Version:  s.Version,
		Platform: s.Platform,
		Procs:    s.NumProcs,
		Scale:    s.Scale,
		Error:    errorJSON{Kind: errorKind(err), Message: err.Error()},
	}
	return json.MarshalIndent(out, "", "  ")
}

// errorKind maps an execution error to its JSON kind string.
func errorKind(err error) string {
	var (
		pe *sim.ProcPanicError
		de *sim.DeadlockError
		ie *sim.InvariantError
		ve *VerifyError
		se *StoredError
	)
	switch {
	case errors.As(err, &se):
		// A failure replayed from the persistent store keeps its original
		// kind even though the concrete error type is gone.
		return se.Kind
	case errors.As(err, &pe):
		return "panic"
	case errors.As(err, &de):
		return "deadlock"
	case errors.As(err, &ie):
		return "invariant"
	case errors.As(err, &ve):
		return "verify"
	default:
		return "error"
	}
}
