// Package harness executes experiments: it lays out an application version
// in a fresh simulated address space, binds the chosen platform model, runs
// the SPMD body, verifies the computed result, and computes speedups with
// the paper's convention — the speedup of any optimized version is the
// simulated uniprocessor time of the ORIGINAL version divided by the
// P-processor time of the optimized version (§2.1.3).
package harness

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Spec names one simulated execution.
type Spec struct {
	App      string
	Version  string
	Platform string
	NumProcs int
	Scale    float64
	// FreeCSFaults enables the paper's critical-section diagnostic.
	FreeCSFaults bool
	// SkipVerify skips result verification (benchmarks re-running a
	// version many times).
	SkipVerify bool
	// Check enables the kernel's runtime invariant checker (scheduler
	// monotonicity, platform protocol sweeps, accounting identity); see
	// sim.Config.Check. Also forced on process-wide by REPRO_CHECK=1.
	Check bool
	// Quantum overrides the scheduler's slice length in cycles (0 keeps the
	// kernel default). Simulated results are quantum-invariant — the quantum
	// decides only how often a processor yields between synchronization
	// points, never what it charges (pinned by the quantum-edge determinism
	// test) — but it is still part of the memo key out of caution.
	Quantum uint64

	// TraceSink, when non-nil, receives every protocol event of the run
	// (see internal/trace). TraceRing, when positive, keeps the last N
	// events for post-mortem dumps in contained simulation errors.
	// SampleInterval, when positive, samples the per-processor breakdown
	// every that many virtual cycles into a Sampler sink. These are
	// observability hooks, not behavior: they never affect simulated
	// timing, and they are deliberately excluded from memoKey — Runner
	// never sets them, only direct Execute calls do.
	TraceSink      trace.Sink
	TraceRing      int
	SampleInterval uint64
}

// label is the human-readable run name shown in tables and error messages.
func (s Spec) label() string {
	return fmt.Sprintf("%s/%s on %s (P=%d)", s.App, s.Version, s.Platform, s.NumProcs)
}

// memoKey covers every behavior-affecting field, so a cached result can
// never alias a spec that would execute differently (label omits Scale and
// the diagnostic flags for readability, which made it unsafe as a cache
// key: a FreeCSFaults run would have aliased a normal one).
func (s Spec) memoKey() string {
	return fmt.Sprintf("%s/%s@%s p=%d scale=%g freecs=%v noverify=%v check=%v quantum=%d",
		s.App, s.Version, s.Platform, s.NumProcs, s.Scale, s.FreeCSFaults, s.SkipVerify, s.Check, s.Quantum)
}

// MemoKey is the cache key Memo.Run would use for s, with defaults
// applied — the string that names s's cell in the memo, the persistent
// store, and the cluster ownership ring. Two specs that execute
// identically (one spelled with defaults, one without) share a MemoKey,
// so they share an owner node.
func (s Spec) MemoKey() string { return s.withDefaults().memoKey() }

// envCheck force-enables invariant checking for the whole process (the CI
// checker leg). Read once: a value that flipped mid-process would let a
// checked result alias an unchecked memo key.
var envCheck = os.Getenv("REPRO_CHECK") != ""

func (s Spec) withDefaults() Spec {
	if s.NumProcs == 0 {
		s.NumProcs = 16
	}
	if s.Scale == 0 {
		s.Scale = 1.0
	}
	if s.Version == "" {
		s.Version = "orig"
	}
	if s.Platform == "" {
		s.Platform = "svm"
	}
	if envCheck {
		s.Check = true
	}
	return s
}

// VerifyError wraps a result-verification failure, so renderers and the
// differential harness can classify it apart from contained simulation
// errors (panics, deadlocks, invariant violations).
type VerifyError struct{ Err error }

func (e *VerifyError) Error() string { return e.Err.Error() }
func (e *VerifyError) Unwrap() error { return e.Err }

// Execute runs one experiment and returns its statistics.
func Execute(s Spec) (*stats.Run, error) {
	run, _, _, err := execute(s, false)
	return run, err
}

// ExecuteProfiled runs one experiment with the SVM hot-page/hot-lock
// profiler enabled (§6's wished-for performance tool) and returns the
// profile report alongside the statistics. On the hardware platforms the
// report is empty.
func ExecuteProfiled(s Spec) (*stats.Run, string, error) {
	run, report, _, err := execute(s, true)
	return run, report, err
}

// ExecuteFingerprint runs one experiment and additionally returns the
// result fingerprint when the application implements core.Fingerprinter
// (ok=false otherwise). The determinism harness compares fingerprints
// across repetitions, platforms and processor counts.
func ExecuteFingerprint(s Spec) (run *stats.Run, fp uint64, ok bool, err error) {
	run, _, inst, err := execute(s, false)
	if err != nil {
		return run, 0, false, err
	}
	if f, has := inst.(core.Fingerprinter); has {
		return run, f.Fingerprint(), true, nil
	}
	return run, 0, false, nil
}

// buildInstance contains panics from application Build (layout constraints
// like 4-D block dimensions that do not divide for the chosen processor
// count and scale) as errors, so a bad cell renders as an error row instead
// of crashing the whole figure run.
func buildInstance(a core.App, version string, scale float64, as *mem.AddressSpace, np int) (inst core.Instance, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("build panic: %v", r)
		}
	}()
	return a.Build(version, scale, as, np)
}

func execute(s Spec, profile bool) (*stats.Run, string, core.Instance, error) {
	s = s.withDefaults()
	a, err := core.Lookup(s.App)
	if err != nil {
		return nil, "", nil, err
	}
	if _, err := core.FindVersion(a, s.Version); err != nil {
		return nil, "", nil, err
	}
	as := mem.NewAddressSpace(platform.PageSize, s.NumProcs)
	inst, err := buildInstance(a, s.Version, s.Scale, as, s.NumProcs)
	if err != nil {
		return nil, "", nil, fmt.Errorf("%s: %w", s.label(), err)
	}
	pl, err := platform.Make(s.Platform, as, s.NumProcs)
	if err != nil {
		return nil, "", nil, err
	}
	prof, _ := pl.(interface {
		EnableProfiling()
		ProfileReport(n int) string
	})
	if profile && prof != nil {
		prof.EnableProfiling()
	}
	k := sim.New(pl, sim.Config{
		NumProcs:       s.NumProcs,
		BarrierManager: sim.AutoBarrierManager,
		FreeCSFaults:   s.FreeCSFaults,
		Check:          s.Check,
		Quantum:        s.Quantum,
	})
	if s.TraceSink != nil {
		k.SetTraceSink(s.TraceSink)
	}
	if s.TraceRing > 0 {
		k.SetTraceRing(s.TraceRing)
	}
	if s.SampleInterval > 0 {
		k.SetSampleInterval(s.SampleInterval)
	}
	run, err := k.RunErr(s.label(), inst.Body)
	if err != nil {
		// Panics, deadlocks and invariant violations inside the simulation
		// come back as structured errors; label the cell and pass them
		// through so a figure run can print an error row instead of
		// crashing.
		return nil, "", nil, fmt.Errorf("%s: %w", s.label(), err)
	}
	if !s.SkipVerify {
		if err := inst.Verify(); err != nil {
			return nil, "", nil, fmt.Errorf("%s: %w", s.label(), &VerifyError{Err: err})
		}
	}
	report := ""
	if profile && prof != nil {
		report = prof.ProfileReport(10)
	}
	return run, report, inst, nil
}

// Runner executes experiments with a cache of uniprocessor baselines. Scale
// is a multiplier applied on top of each application's BaseScale. A Runner
// is safe for concurrent use: each distinct experiment executes exactly once
// (singleflight — concurrent requests for the same cell wait for the first),
// and failures are memoized alongside results so a bad cell is not retried.
//
// All execution flows through a Memo, which can carry a persistent store
// tier (figures/sweep -store, cmd/serve) and can be shared between runners
// so they cache and coalesce together.
type Runner struct {
	NumProcs int
	Scale    float64
	// Check enables the runtime invariant checker for every cell this
	// runner executes (figures -check). Set before the first Run call:
	// it is part of the memo key.
	Check bool

	memo *Memo
}

// memoEntry is one singleflight slot: the goroutine that claims a key
// executes the experiment and closes done; every other requester waits.
type memoEntry struct {
	done chan struct{}
	run  *stats.Run
	err  error
}

// NewRunner creates a Runner for the given processor count and scale, with
// a private in-memory cache.
func NewRunner(np int, scale float64) *Runner {
	return NewRunnerWith(np, scale, NewMemo(nil))
}

// NewRunnerWith creates a Runner over an existing Memo, sharing its cache
// (and persistent store, if any) with every other user of that memo.
func NewRunnerWith(np int, scale float64, memo *Memo) *Runner {
	return &Runner{NumProcs: np, Scale: scale, memo: memo}
}

// Memo returns the cache this runner executes through.
func (r *Runner) Memo() *Memo { return r.memo }

// CacheStats returns the cumulative cache counters of this runner's memo
// (shared with other runners over the same memo).
func (r *Runner) CacheStats() CacheStats { return r.memo.Stats() }

// Run executes (and memoizes) an experiment for this runner's processor
// count and scale.
func (r *Runner) Run(app, version, plat string) (*stats.Run, error) {
	return r.memo.Run(Spec{App: app, Version: version, Platform: plat, NumProcs: r.NumProcs, Scale: r.scaleFor(app), Check: r.Check})
}

// Record inserts an externally-executed run into the memo cache (used by the
// CLI to avoid re-running the experiment it just printed).
func (r *Runner) Record(app, version, plat string, run *stats.Run) {
	r.memo.Record(Spec{App: app, Version: version, Platform: plat, NumProcs: r.NumProcs, Scale: r.scaleFor(app), Check: r.Check}, run)
}

// Baseline returns the uniprocessor execution time of the original version
// of app on plat (the paper's speedup denominator source). Baselines are
// memoized like any other spec, so a parallel figure run executes each one
// exactly once no matter how many cells divide by it.
func (r *Runner) Baseline(app, plat string) (uint64, error) {
	a, err := core.Lookup(app)
	if err != nil {
		return 0, err
	}
	origName := a.Versions()[0].Name
	run, err := r.memo.Run(Spec{App: app, Version: origName, Platform: plat, NumProcs: 1, Scale: r.scaleFor(app), Check: r.Check})
	if err != nil {
		return 0, err
	}
	return run.EndTime, nil
}

// FailedCells returns a sorted, one-line-per-cell description of every
// memoized execution that ended in an error — the experiments a figure run
// rendered as error rows (uniprocessor baselines included, as their P=1
// specs). Empty means every cell succeeded.
func (r *Runner) FailedCells() []string { return r.memo.Failed() }

// firstLine truncates multi-line error text (deadlock state dumps) to its
// first line for one-row-per-cell reports.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " ..."
	}
	return s
}

// Speedup returns T1(orig)/Tp(version) on the given platform.
func (r *Runner) Speedup(app, version, plat string) (float64, error) {
	t1, err := r.Baseline(app, plat)
	if err != nil {
		return 0, err
	}
	run, err := r.Run(app, version, plat)
	if err != nil {
		return 0, err
	}
	if run.EndTime == 0 {
		return 0, fmt.Errorf("harness: zero execution time for %s/%s on %s", app, version, plat)
	}
	return float64(t1) / float64(run.EndTime), nil
}
