// Package harness executes experiments: it lays out an application version
// in a fresh simulated address space, binds the chosen platform model, runs
// the SPMD body, verifies the computed result, and computes speedups with
// the paper's convention — the speedup of any optimized version is the
// simulated uniprocessor time of the ORIGINAL version divided by the
// P-processor time of the optimized version (§2.1.3).
package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Spec names one simulated execution.
type Spec struct {
	App      string
	Version  string
	Platform string
	NumProcs int
	Scale    float64
	// FreeCSFaults enables the paper's critical-section diagnostic.
	FreeCSFaults bool
	// SkipVerify skips result verification (benchmarks re-running a
	// version many times).
	SkipVerify bool
}

func (s Spec) label() string {
	return fmt.Sprintf("%s/%s on %s (P=%d)", s.App, s.Version, s.Platform, s.NumProcs)
}

func (s Spec) withDefaults() Spec {
	if s.NumProcs == 0 {
		s.NumProcs = 16
	}
	if s.Scale == 0 {
		s.Scale = 1.0
	}
	if s.Version == "" {
		s.Version = "orig"
	}
	if s.Platform == "" {
		s.Platform = "svm"
	}
	return s
}

// Execute runs one experiment and returns its statistics.
func Execute(s Spec) (*stats.Run, error) {
	run, _, err := execute(s, false)
	return run, err
}

// ExecuteProfiled runs one experiment with the SVM hot-page/hot-lock
// profiler enabled (§6's wished-for performance tool) and returns the
// profile report alongside the statistics. On the hardware platforms the
// report is empty.
func ExecuteProfiled(s Spec) (*stats.Run, string, error) {
	return execute(s, true)
}

func execute(s Spec, profile bool) (*stats.Run, string, error) {
	s = s.withDefaults()
	a, err := core.Lookup(s.App)
	if err != nil {
		return nil, "", err
	}
	if _, err := core.FindVersion(a, s.Version); err != nil {
		return nil, "", err
	}
	as := mem.NewAddressSpace(platform.PageSize, s.NumProcs)
	inst, err := a.Build(s.Version, s.Scale, as, s.NumProcs)
	if err != nil {
		return nil, "", err
	}
	pl, err := platform.Make(s.Platform, as, s.NumProcs)
	if err != nil {
		return nil, "", err
	}
	prof, _ := pl.(interface {
		EnableProfiling()
		ProfileReport(n int) string
	})
	if profile && prof != nil {
		prof.EnableProfiling()
	}
	k := sim.New(pl, sim.Config{NumProcs: s.NumProcs, FreeCSFaults: s.FreeCSFaults})
	run := k.Run(s.label(), inst.Body)
	if !s.SkipVerify {
		if err := inst.Verify(); err != nil {
			return nil, "", fmt.Errorf("%s: %w", s.label(), err)
		}
	}
	report := ""
	if profile && prof != nil {
		report = prof.ProfileReport(10)
	}
	return run, report, nil
}

// Runner executes experiments with a cache of uniprocessor baselines. Scale
// is a multiplier applied on top of each application's BaseScale.
type Runner struct {
	NumProcs int
	Scale    float64

	t1   map[string]uint64      // app/platform -> uniprocessor orig time
	runs map[string]*stats.Run  // full spec label -> run
}

// NewRunner creates a Runner for the given processor count and scale.
func NewRunner(np int, scale float64) *Runner {
	return &Runner{
		NumProcs: np,
		Scale:    scale,
		t1:       map[string]uint64{},
		runs:     map[string]*stats.Run{},
	}
}

// Run executes (and memoizes) an experiment for this runner's processor
// count and scale.
func (r *Runner) Run(app, version, plat string) (*stats.Run, error) {
	s := Spec{App: app, Version: version, Platform: plat, NumProcs: r.NumProcs, Scale: r.scaleFor(app)}
	key := s.label()
	if run, ok := r.runs[key]; ok {
		return run, nil
	}
	run, err := Execute(s)
	if err != nil {
		return nil, err
	}
	r.runs[key] = run
	return run, nil
}

// Record inserts an externally-executed run into the memo cache (used by the
// CLI to avoid re-running the experiment it just printed).
func (r *Runner) Record(app, version, plat string, run *stats.Run) {
	s := Spec{App: app, Version: version, Platform: plat, NumProcs: r.NumProcs, Scale: r.scaleFor(app)}
	r.runs[s.label()] = run
}

// Baseline returns the uniprocessor execution time of the original version
// of app on plat (the paper's speedup denominator source).
func (r *Runner) Baseline(app, plat string) (uint64, error) {
	key := app + "@" + plat
	if t, ok := r.t1[key]; ok {
		return t, nil
	}
	a, err := core.Lookup(app)
	if err != nil {
		return 0, err
	}
	origName := a.Versions()[0].Name
	run, err := Execute(Spec{App: app, Version: origName, Platform: plat, NumProcs: 1, Scale: r.scaleFor(app)})
	if err != nil {
		return 0, err
	}
	r.t1[key] = run.EndTime
	return run.EndTime, nil
}

// Speedup returns T1(orig)/Tp(version) on the given platform.
func (r *Runner) Speedup(app, version, plat string) (float64, error) {
	t1, err := r.Baseline(app, plat)
	if err != nil {
		return 0, err
	}
	run, err := r.Run(app, version, plat)
	if err != nil {
		return 0, err
	}
	if run.EndTime == 0 {
		return 0, fmt.Errorf("harness: zero execution time for %s/%s on %s", app, version, plat)
	}
	return float64(t1) / float64(run.EndTime), nil
}
