package harness

import (
	"bytes"
	"testing"
)

// TestOptimizedKernelByteIdentical is the regression net under the hot-path
// optimizations (flat cache tag arrays, fused hit-access, page-shift math,
// pooled release vector clocks): a representative figure cell simulated
// twice must render byte-identical JSON, and enabling the runtime invariant
// checker — which sweeps but must never mutate protocol state — must not
// change a byte either. Any optimization that reorders a mutation, skips an
// LRU update, or shares state it should copy shows up here as a diff.
func TestOptimizedKernelByteIdentical(t *testing.T) {
	if testing.Short() {
		// The cell below is a full 16-processor SVM simulation (~seconds);
		// the -short tier is covered by the claims suite exercising the
		// same kernel via memoized cells.
		t.Skip("full determinism cell skipped in -short")
	}
	spec := Spec{App: "ocean", Version: "rows", Platform: "svm", NumProcs: 16, Scale: BaseScale["ocean"] * 0.5}

	render := func(s Spec) []byte {
		t.Helper()
		run, err := Execute(s)
		if err != nil {
			t.Fatalf("%s: %v", s.label(), err)
		}
		out, err := RunJSON(s, run, 0)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	first := render(spec)
	second := render(spec)
	if !bytes.Equal(first, second) {
		t.Fatalf("two runs of %s differ:\n%s", spec.label(), firstDiff(first, second))
	}
	checked := spec
	checked.Check = true
	withCheck := render(checked)
	if !bytes.Equal(first, withCheck) {
		t.Fatalf("run of %s with Check enabled differs from unchecked run:\n%s", spec.label(), firstDiff(first, withCheck))
	}
}

// TestQuantumEdgesByteIdentical pins the event-loop scheduler's quantum
// invariance at its edge cases: Quantum 1 (a processor yields at every
// opportunity past the horizon) and an effectively infinite quantum (a
// processor only ever yields at synchronization points) must render exactly
// the same output as the default slice. Every synchronization and slow-path
// event is pinned to the virtual-time floor by a syncPoint (the kernel-level
// guarantee, pinned exhaustively by sim's TestPropertyQuantumInvariance), so
// the quantum can only move the two effects the model deliberately leaves
// "near virtual-time" (DESIGN.md §8):
//
//   - handler-debt folding: work an SVM home node performs for others is
//     folded into its clock at its next scheduling pick, and the quantum
//     sets the pick cadence — visible for apps with heavy mid-phase page
//     traffic (ocean, raytrace, barnes on svm);
//   - hardware coherence vs. the fast path: on dsm/smp a remote write
//     invalidates lines at its own virtual time, so fine-grained read-write
//     sharing (radix's permutation, barnes's tree build) can see a fast
//     read land on either side of a same-window invalidation.
//
// Cells exercising neither mechanism must be exactly invariant, and this
// test pins that subset across apps and platforms; cells where a mechanism
// is active are deliberately not pinned. Small cells keep this in the
// -race -short CI leg; a full-size cell joins outside -short.
func TestQuantumEdgesByteIdentical(t *testing.T) {
	cells := []Spec{
		{App: "lu", Version: "orig", Platform: "svm", NumProcs: 4, Scale: 0.25},
		{App: "lu", Version: "orig", Platform: "smp", NumProcs: 4, Scale: 0.25},
		{App: "lu", Version: "4d", Platform: "dsm", NumProcs: 4, Scale: 0.25},
		{App: "ocean", Version: "rows", Platform: "dsm", NumProcs: 4, Scale: 0.25},
		{App: "ocean", Version: "rows", Platform: "smp", NumProcs: 4, Scale: 0.25},
		{App: "radix", Version: "orig", Platform: "svm", NumProcs: 4, Scale: 0.25},
		{App: "shearwarp", Version: "orig", Platform: "svm", NumProcs: 4, Scale: 0.25},
	}
	if !testing.Short() {
		cells = append(cells,
			Spec{App: "lu", Version: "4d", Platform: "dsm", NumProcs: 16, Scale: 0.5},
			Spec{App: "ocean", Version: "rows", Platform: "smp", NumProcs: 16, Scale: 0.5},
			Spec{App: "shearwarp", Version: "orig", Platform: "svm", NumProcs: 16, Scale: 0.5})
	}
	render := func(s Spec) []byte {
		t.Helper()
		run, err := Execute(s)
		if err != nil {
			t.Fatalf("%s: %v", s.label(), err)
		}
		out, err := RunJSON(s, run, 0)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, base := range cells {
		def := render(base)
		for _, q := range []uint64{1, 1 << 40} {
			spec := base
			spec.Quantum = q
			got := render(spec)
			// The rendered spec echoes only behavior-relevant fields, so
			// the bytes must match exactly across quanta.
			if !bytes.Equal(def, got) {
				t.Errorf("%s: Quantum=%d output differs from default quantum:\n%s",
					base.label(), q, firstDiff(def, got))
			}
		}
	}
}

// firstDiff renders the first differing region of two byte slices for a
// readable failure message.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			hi := i + 40
			if hi > n {
				hi = n
			}
			return "first: ..." + string(a[lo:hi]) + "...\nsecond: ..." + string(b[lo:hi]) + "..."
		}
	}
	return "lengths differ"
}
