package harness

import (
	"bytes"
	"testing"
)

// TestOptimizedKernelByteIdentical is the regression net under the hot-path
// optimizations (flat cache tag arrays, fused hit-access, page-shift math,
// pooled release vector clocks): a representative figure cell simulated
// twice must render byte-identical JSON, and enabling the runtime invariant
// checker — which sweeps but must never mutate protocol state — must not
// change a byte either. Any optimization that reorders a mutation, skips an
// LRU update, or shares state it should copy shows up here as a diff.
func TestOptimizedKernelByteIdentical(t *testing.T) {
	if testing.Short() {
		// The cell below is a full 16-processor SVM simulation (~seconds);
		// the -short tier is covered by the claims suite exercising the
		// same kernel via memoized cells.
		t.Skip("full determinism cell skipped in -short")
	}
	spec := Spec{App: "ocean", Version: "rows", Platform: "svm", NumProcs: 16, Scale: BaseScale["ocean"] * 0.5}

	render := func(s Spec) []byte {
		t.Helper()
		run, err := Execute(s)
		if err != nil {
			t.Fatalf("%s: %v", s.label(), err)
		}
		out, err := RunJSON(s, run, 0)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	first := render(spec)
	second := render(spec)
	if !bytes.Equal(first, second) {
		t.Fatalf("two runs of %s differ:\n%s", spec.label(), firstDiff(first, second))
	}
	checked := spec
	checked.Check = true
	withCheck := render(checked)
	if !bytes.Equal(first, withCheck) {
		t.Fatalf("run of %s with Check enabled differs from unchecked run:\n%s", spec.label(), firstDiff(first, withCheck))
	}
}

// firstDiff renders the first differing region of two byte slices for a
// readable failure message.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			hi := i + 40
			if hi > n {
				hi = n
			}
			return "first: ..." + string(a[lo:hi]) + "...\nsecond: ..." + string(b[lo:hi]) + "..."
		}
	}
	return "lengths differ"
}
