package harness

import (
	"testing"

	_ "repro/internal/apps"
	"repro/internal/stats"
)

// These integration tests assert the paper's qualitative claims end to end:
// every test names the section of the paper whose finding it checks. They
// run at half the figure problem sizes to stay fast; the claims are about
// shapes, not absolute numbers.

func claimRunner(t *testing.T) *Runner {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-claim integration tests skipped in -short mode")
	}
	// Full figure problem sizes: the shapes under test need them (the
	// balanced-vs-original Volrend gap, for example, is a page-granularity
	// effect that only shows at the paper's image size).
	return NewRunner(16, 1)
}

func speed(t *testing.T, r *Runner, app, version, plat string) float64 {
	t.Helper()
	s, err := r.Speedup(app, version, plat)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Figure 2: the original versions run well on hardware coherence and poorly
// on SVM; Raytrace and Ocean fall below a uniprocessor on SVM.
func TestClaimFig2OriginalsGapSVM(t *testing.T) {
	r := claimRunner(t)
	for _, app := range []string{"lu", "ocean", "volrend", "raytrace", "barnes", "radix", "shearwarp"} {
		orig := versionName(app, "orig")
		svm := speed(t, r, app, orig, "svm")
		smp := speed(t, r, app, orig, "smp")
		dsm := speed(t, r, app, orig, "dsm")
		if svm >= smp || svm >= dsm {
			t.Errorf("%s: SVM speedup %.2f not below SMP %.2f / DSM %.2f", app, svm, smp, dsm)
		}
		if smp < 3 || dsm < 3 {
			t.Errorf("%s: hardware-coherent speedups too low: smp %.2f dsm %.2f", app, smp, dsm)
		}
	}
	for _, app := range []string{"ocean", "raytrace"} {
		if s := speed(t, r, app, versionName(app, "orig"), "svm"); s >= 1 {
			t.Errorf("%s original on SVM = %.2f, paper finds it below a uniprocessor", app, s)
		}
	}
}

// §4: on SVM, the final algorithmic version beats the original decisively
// for every application except Radix (where nothing really helps).
func TestClaimAlgorithmicVersionsWinOnSVM(t *testing.T) {
	r := claimRunner(t)
	finals := map[string]string{
		"lu": "4da", "ocean": "rows", "volrend": "balanced",
		"shearwarp": "opt", "raytrace": "nolock", "barnes": "spatial",
	}
	for app, final := range finals {
		so := speed(t, r, app, versionName(app, "orig"), "svm")
		sf := speed(t, r, app, final, "svm")
		if sf <= so*1.2 {
			t.Errorf("%s: final version %.2f not well above orig %.2f on SVM", app, sf, so)
		}
	}
}

func versionName(app, v string) string {
	if app == "barnes" && v == "orig" {
		return "splash"
	}
	return v
}

// §6: "Simple padding and alignment of data structures to page granularity
// is not the answer" — P/A alone never delivers a large SVM win.
func TestClaimPaddingAloneIsNotTheAnswer(t *testing.T) {
	r := claimRunner(t)
	for _, app := range []string{"lu", "ocean", "volrend", "radix"} {
		so := speed(t, r, app, versionName(app, "orig"), "svm")
		sp := speed(t, r, app, "pad", "svm")
		if sp > so*1.5 {
			t.Errorf("%s: padding alone gives %.2f vs orig %.2f — too good, contradicts the paper", app, sp, so)
		}
	}
}

// §5: the SVM optimizations are performance-portable — on the hardware
// platforms they do not hurt much (and usually help a little).
func TestClaimPortability(t *testing.T) {
	r := claimRunner(t)
	finals := map[string]string{
		"lu": "4da", "ocean": "rows", "shearwarp": "opt",
		"raytrace": "nolock",
	}
	for app, final := range finals {
		for _, plat := range []string{"smp", "dsm"} {
			so := speed(t, r, app, versionName(app, "orig"), plat)
			sf := speed(t, r, app, final, plat)
			if sf < so*0.8 {
				t.Errorf("%s on %s: optimized %.2f badly hurts vs orig %.2f — not portable", app, plat, sf, so)
			}
		}
	}
	// The paper's caveat (§5): optimizations that compromise load balance
	// to improve communication/synchronization CAN hurt on hardware
	// coherence. Barnes-Spatial (equal subspaces, imbalanced builds) is
	// that case — it must stay within a moderate band of the original,
	// not collapse, and it must still win big on SVM.
	for _, plat := range []string{"smp", "dsm"} {
		so := speed(t, r, "barnes", "splash", plat)
		sf := speed(t, r, "barnes", "spatial", plat)
		if sf < so*0.5 {
			t.Errorf("barnes on %s: spatial %.2f collapsed vs orig %.2f", plat, sf, so)
		}
	}
}

// Figure 17: turning stealing off helps (slightly) on SVM but hurts on the
// hardware-coherent DSM, where stealing is cheap and load balance wins.
func TestClaimFig17StealingCrossover(t *testing.T) {
	r := claimRunner(t)
	svmSteal := speed(t, r, "volrend", "balanced", "svm")
	svmNo := speed(t, r, "volrend", "nosteal", "svm")
	dsmSteal := speed(t, r, "volrend", "balanced", "dsm")
	dsmNo := speed(t, r, "volrend", "nosteal", "dsm")
	if svmNo < svmSteal*0.95 {
		t.Errorf("SVM: nosteal %.2f well below stealing %.2f; paper finds nosteal at least as good", svmNo, svmSteal)
	}
	if dsmSteal < dsmNo {
		t.Errorf("DSM: stealing %.2f below nosteal %.2f; stealing is cheap and effective on hardware", dsmSteal, dsmNo)
	}
}

// Figure 11: lock wait dominates the original Raytrace on SVM.
func TestClaimRaytraceLockWaitDominates(t *testing.T) {
	r := claimRunner(t)
	run, err := r.Run("raytrace", "orig", "svm")
	if err != nil {
		t.Fatal(err)
	}
	if got := DominantCategory(run); got != stats.LockWait {
		t.Errorf("dominant category = %v, want LockWait (paper Fig. 11)", got)
	}
}

// Figure 15: Radix on SVM is dominated by communication (data wait,
// handlers, barriers), not compute.
func TestClaimRadixCommunicationBound(t *testing.T) {
	r := claimRunner(t)
	run, err := r.Run("radix", "orig", "svm")
	if err != nil {
		t.Fatal(err)
	}
	comm := run.TotalCycles(stats.DataWait) + run.TotalCycles(stats.BarrierWait) + run.TotalCycles(stats.Handler)
	if comp := run.TotalCycles(stats.Compute); comm < 3*comp {
		t.Errorf("communication %d not well above compute %d (paper Fig. 15)", comm, comp)
	}
}

// §4.2.4: tree building, ~2%% of sequential time, balloons under SVM with
// the shared-tree algorithm, and the spatial redesign shrinks it again.
func TestClaimBarnesTreeBuildBalloons(t *testing.T) {
	r := claimRunner(t)
	shared, err := r.Run("barnes", "splash2", "svm")
	if err != nil {
		t.Fatal(err)
	}
	spatial, err := r.Run("barnes", "spatial", "svm")
	if err != nil {
		t.Fatal(err)
	}
	fs := float64(shared.PhaseTimes["treebuild"]) / float64(shared.EndTime*uint64(shared.NumProcs))
	fo := float64(spatial.PhaseTimes["treebuild"]) / float64(spatial.EndTime*uint64(spatial.NumProcs))
	if fs < 0.10 {
		t.Errorf("shared-tree build share %.2f too small; paper reports 43%%", fs)
	}
	if fo >= fs {
		t.Errorf("spatial build share %.2f not below shared %.2f", fo, fs)
	}
}

// §4.2.1/§4.2.3: the FreeCSFaults diagnostic — making page faults inside
// critical sections free recovers most of the lost performance for the
// lock-bound applications.
func TestClaimFreeCSFaultsDiagnostic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	normal, err := Execute(Spec{App: "raytrace", Version: "orig", Platform: "svm", NumProcs: 16, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	free, err := Execute(Spec{App: "raytrace", Version: "orig", Platform: "svm", NumProcs: 16, Scale: 1, FreeCSFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if float64(free.EndTime) > 0.5*float64(normal.EndTime) {
		t.Errorf("free-CS-faults run %d not far below normal %d; dilation effect missing", free.EndTime, normal.EndTime)
	}
}
