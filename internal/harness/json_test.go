package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/sim"

	_ "repro/internal/apps"
)

func TestRunJSONSuccessShape(t *testing.T) {
	spec := Spec{App: "lu", Version: "orig", Platform: "svm", NumProcs: 2, Scale: 0.25}
	run, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunJSON(spec, run, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		App      string              `json:"app"`
		Version  string              `json:"version"`
		Platform string              `json:"platform"`
		Procs    int                 `json:"procs"`
		EndTime  uint64              `json:"end_time"`
		Cycles   map[string][]uint64 `json:"cycles"`
		Speedup  float64             `json:"speedup"`
		Error    *json.RawMessage    `json:"error"`
	}
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	if got.App != "lu" || got.Version != "orig" || got.Platform != "svm" || got.Procs != 2 {
		t.Errorf("identity fields wrong: %+v", got)
	}
	if got.EndTime == 0 || got.Speedup != 1.5 {
		t.Errorf("end_time=%d speedup=%v, want nonzero and 1.5", got.EndTime, got.Speedup)
	}
	if got.Error != nil {
		t.Error("success shape carries an error object")
	}
	for cat, per := range got.Cycles {
		if len(per) != 2 {
			t.Errorf("category %s has %d per-proc entries, want 2", cat, len(per))
		}
	}
}

func TestRunErrorJSONShapeAndKinds(t *testing.T) {
	spec := Spec{App: "lu", Version: "orig", Platform: "svm", NumProcs: 2, Scale: 0.25}
	cases := []struct {
		err  error
		kind string
	}{
		{fmt.Errorf("cell: %w", &sim.ProcPanicError{Proc: 1, Value: "boom"}), "panic"},
		{fmt.Errorf("cell: %w", &sim.DeadlockError{Dump: "stuck"}), "deadlock"},
		{fmt.Errorf("cell: %w", &sim.InvariantError{Where: "platform", Detail: "bad"}), "invariant"},
		{fmt.Errorf("cell: %w", &VerifyError{Err: errors.New("wrong result")}), "verify"},
		{errors.New("no such app"), "error"},
	}
	for _, c := range cases {
		out, err := RunErrorJSON(spec, c.err)
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			App   string `json:"app"`
			Procs int    `json:"procs"`
			Error struct {
				Kind    string `json:"kind"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(out, &got); err != nil {
			t.Fatal(err)
		}
		if got.App != "lu" || got.Procs != 2 {
			t.Errorf("identity fields wrong: %+v", got)
		}
		if got.Error.Kind != c.kind {
			t.Errorf("kind = %q for %v, want %q", got.Error.Kind, c.err, c.kind)
		}
		if got.Error.Message == "" {
			t.Error("empty error message")
		}
	}
}

// A build that fails (indivisible 4-D block dimensions) must come back as an
// error a figure run can render, not a process crash.
func TestBuildFailureIsContained(t *testing.T) {
	_, err := Execute(Spec{App: "volrend", Version: "ds4d", Platform: "svm", NumProcs: 5, Scale: 0.25})
	if err == nil {
		t.Fatal("indivisible ds4d build succeeded, want contained error")
	}
	if out, jerr := RunErrorJSON(Spec{App: "volrend", Version: "ds4d", Platform: "svm", NumProcs: 5, Scale: 0.25}, err); jerr != nil {
		t.Fatalf("error not renderable as JSON: %v", jerr)
	} else if len(out) == 0 {
		t.Fatal("empty JSON error")
	}
}
