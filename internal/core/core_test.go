package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

type fakeApp struct{ name string }

func (f fakeApp) Name() string { return f.name }
func (f fakeApp) Versions() []Version {
	return []Version{{Name: "orig", Class: Orig, Desc: "x"}}
}
func (f fakeApp) Build(v string, s float64, as *mem.AddressSpace, np int) (Instance, error) {
	return nil, nil
}

func TestRegisterLookup(t *testing.T) {
	Register(fakeApp{name: "zz-test-app"})
	a, err := Lookup("zz-test-app")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "zz-test-app" {
		t.Errorf("lookup returned %q", a.Name())
	}
	if _, err := Lookup("zz-missing"); err == nil {
		t.Error("expected error for unknown app")
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate registration")
		}
	}()
	Register(fakeApp{name: "zz-dup"})
	Register(fakeApp{name: "zz-dup"})
}

func TestAppsSorted(t *testing.T) {
	names := Apps()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Apps() not sorted: %v", names)
		}
	}
}

func TestFindVersion(t *testing.T) {
	a := fakeApp{name: "zz-fv"}
	v, err := FindVersion(a, "orig")
	if err != nil || v.Class != Orig {
		t.Errorf("FindVersion = %+v, %v", v, err)
	}
	if _, err := FindVersion(a, "nope"); err == nil {
		t.Error("expected error for missing version")
	}
}

func TestClassStrings(t *testing.T) {
	cases := map[Class]string{Orig: "Orig", PA: "P/A", DS: "DS", Alg: "Alg"}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

// Compile-time interface sanity for the sim types used in App signatures.
var _ = func(p *sim.Proc) {}
