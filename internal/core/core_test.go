package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

type fakeApp struct{ name string }

func (f fakeApp) Name() string { return f.name }
func (f fakeApp) Versions() []Version {
	return []Version{{Name: "orig", Class: Orig, Desc: "x"}}
}
func (f fakeApp) Build(v string, s float64, as *mem.AddressSpace, np int) (Instance, error) {
	return nil, nil
}

func TestRegisterLookup(t *testing.T) {
	Register(fakeApp{name: "zz-test-app"})
	a, err := Lookup("zz-test-app")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "zz-test-app" {
		t.Errorf("lookup returned %q", a.Name())
	}
	if _, err := Lookup("zz-missing"); err == nil {
		t.Error("expected error for unknown app")
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate registration")
		}
	}()
	Register(fakeApp{name: "zz-dup"})
	Register(fakeApp{name: "zz-dup"})
}

func TestAppsSorted(t *testing.T) {
	names := Apps()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Apps() not sorted: %v", names)
		}
	}
}

func TestFindVersion(t *testing.T) {
	a := fakeApp{name: "zz-fv"}
	v, err := FindVersion(a, "orig")
	if err != nil || v.Class != Orig {
		t.Errorf("FindVersion = %+v, %v", v, err)
	}
	if _, err := FindVersion(a, "nope"); err == nil {
		t.Error("expected error for missing version")
	}
}

// The unknown-version error must name the available versions: campaign spec
// validation surfaces it verbatim, and for a multi-variant app the fix
// should be in the message.
func TestFindVersionErrorListsVersions(t *testing.T) {
	a := fakeApp{name: "zz-fv-list"}
	_, err := FindVersion(a, "nope")
	if err == nil {
		t.Fatal("expected error")
	}
	want := `core: app zz-fv-list has no version "nope" (have [orig])`
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err.Error(), want)
	}
}

func TestRegisterExtensionExcludedFromPaperApps(t *testing.T) {
	Register(fakeApp{name: "zz-paper"})
	RegisterExtension(fakeApp{name: "zz-ext"})
	if !IsExtension("zz-ext") || IsExtension("zz-paper") {
		t.Errorf("IsExtension: ext=%v paper=%v", IsExtension("zz-ext"), IsExtension("zz-paper"))
	}
	inAll := func(name string, names []string) bool {
		for _, n := range names {
			if n == name {
				return true
			}
		}
		return false
	}
	if !inAll("zz-ext", Apps()) {
		t.Error("extension app missing from Apps()")
	}
	if inAll("zz-ext", PaperApps()) {
		t.Error("extension app leaked into PaperApps()")
	}
	if !inAll("zz-paper", PaperApps()) {
		t.Error("paper app missing from PaperApps()")
	}
	if _, err := Lookup("zz-ext"); err != nil {
		t.Errorf("extension app not Lookup-able: %v", err)
	}
}

func TestClassStrings(t *testing.T) {
	cases := map[Class]string{Orig: "Orig", PA: "P/A", DS: "DS", Alg: "Alg"}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

// Compile-time interface sanity for the sim types used in App signatures.
var _ = func(p *sim.Proc) {}
