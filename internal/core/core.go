// Package core defines the paper's central abstraction: applications that
// exist in several restructured versions, each belonging to one of the
// structured optimization classes of §3 — padding & alignment (P/A),
// reorganization of major data structures (DS), and algorithmic change
// (Alg) — and that can be executed unchanged on any of the shared address
// space platform models to study performance portability.
package core

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Class is an optimization class from the paper's methodology (§3).
type Class int

const (
	// Orig is the original algorithm we began with (well-tuned for
	// hardware cache coherence, per SPLASH-2).
	Orig Class = iota
	// PA is padding and alignment of data structures to the granularity
	// of communication/coherence.
	PA
	// DS is reorganization of major data structures (e.g. 2-d to 4-d
	// arrays, organizing records by field).
	DS
	// Alg is algorithm redesign: different synchronization, partitioning,
	// or sequential algorithm for phases of the computation.
	Alg
)

// String returns the paper's abbreviation for the class.
func (c Class) String() string {
	switch c {
	case Orig:
		return "Orig"
	case PA:
		return "P/A"
	case DS:
		return "DS"
	case Alg:
		return "Alg"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Version describes one restructured variant of an application.
type Version struct {
	// Name is the variant's short identifier, e.g. "orig", "pad", "4d",
	// "rows", "spatial".
	Name string
	// Class is the optimization class the variant belongs to.
	Class Class
	// Desc is a one-line description of the restructuring.
	Desc string
}

// Instance is one ready-to-run configuration of an application version: its
// data laid out in a simulated address space for a particular processor
// count and problem scale.
type Instance interface {
	// Body is the SPMD process body, run once per simulated processor.
	Body(p *sim.Proc)
	// Verify checks the computed result against a sequential reference
	// after the run completes.
	Verify() error
}

// Fingerprinter is optionally implemented by instances that can reduce their
// computed result to one canonical 64-bit hash. The determinism harness
// compares fingerprints across repeated runs, platforms, restructured
// versions and processor counts, so an instance must only implement it when
// its result is bit-identical across those dimensions — in particular, every
// floating-point reduction must fold in a fixed order independent of the
// simulated interleaving. Fingerprint is called after the run, alongside
// Verify.
type Fingerprinter interface {
	Fingerprint() uint64
}

// App is an application with several restructured versions.
type App interface {
	// Name is the application's identifier ("lu", "ocean", ...).
	Name() string
	// Versions lists the available variants, original first.
	Versions() []Version
	// Build lays out the version's data structures in as and returns a
	// runnable instance. scale >= 0.25 scales the problem size (1.0 is
	// the package default, chosen to simulate in seconds; the paper's
	// full sizes correspond to larger scales).
	Build(version string, scale float64, as *mem.AddressSpace, np int) (Instance, error)
}

var (
	registry  = map[string]App{}
	extension = map[string]bool{}
)

// Register adds an application to the global registry; called from app
// package init functions.
func Register(a App) {
	if _, dup := registry[a.Name()]; dup {
		panic("core: duplicate app " + a.Name())
	}
	registry[a.Name()] = a
}

// RegisterExtension adds a post-paper application — the irregular modern
// workloads of ROADMAP item 3 (key-value service, graph BFS,
// producer-consumer pipeline). Extension apps are available to Lookup,
// sweeps, and campaigns exactly like the paper's seven, but PaperApps
// excludes them, so the paper-figure enumerations (Figure 2, Figure 16,
// the §4 headline progressions, the claims suite) keep reproducing the
// paper's own application set.
func RegisterExtension(a App) {
	Register(a)
	extension[a.Name()] = true
}

// IsExtension reports whether name was registered with RegisterExtension.
func IsExtension(name string) bool { return extension[name] }

// PaperApps returns the registered paper applications (extensions
// excluded), sorted.
func PaperApps() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		if !extension[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Lookup returns the registered application with the given name.
func Lookup(name string) (App, error) {
	a, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown app %q (have %v)", name, Apps())
	}
	return a, nil
}

// Apps returns the registered application names, sorted.
func Apps() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FindVersion returns the Version metadata for an app variant. The error
// for an unknown variant lists the app's available versions, so a typo'd
// multi-variant campaign spec names the fix instead of just the failure.
func FindVersion(a App, name string) (Version, error) {
	vs := a.Versions()
	for _, v := range vs {
		if v.Name == name {
			return v, nil
		}
	}
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	return Version{}, fmt.Errorf("core: app %s has no version %q (have %v)", a.Name(), name, names)
}
