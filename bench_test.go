// Benchmarks regenerating every table and figure in the paper's evaluation,
// plus microbenchmarks of the platform primitives and ablation benches for
// the design choices called out in DESIGN.md. Speedups are attached to the
// benchmark results as custom metrics, so `go test -bench .` prints the
// numbers that correspond to the paper's bars.
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/harness"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
)

// benchScale keeps the full-figure benchmarks tractable; pass -benchtime and
// larger problem sizes through cmd/figures for paper-scale runs.
const benchScale = 0.5

// runSpeedup executes version vs. the uniprocessor original and reports the
// speedup as a benchmark metric. The Runner (and its memo) must be fresh on
// every iteration: a runner hoisted out of the loop serves iterations 2..N
// from its cache, so the benchmark would measure a map lookup instead of the
// simulator. TestBenchmarkIterationsExecute pins this.
func runSpeedup(b *testing.B, app, version, plat string) {
	b.Helper()
	sp, err := speedupIter(app, version, plat)
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i < b.N; i++ {
		if sp, err = speedupIter(app, version, plat); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sp, "speedup")
}

// speedupIter is one cold benchmark iteration: a fresh private memo, so the
// baseline and the cell are both actually simulated. It reports an error if
// the memo claims nothing was executed.
func speedupIter(app, version, plat string) (float64, error) {
	r := harness.NewRunner(16, benchScale)
	sp, err := r.Speedup(app, version, plat)
	if err != nil {
		return 0, err
	}
	if n := r.CacheStats().Executions; n == 0 {
		return 0, fmt.Errorf("benchmark iteration executed no simulations (%s/%s/%s served entirely from cache)", app, version, plat)
	}
	return sp, nil
}

// runBreakdown executes one SVM breakdown figure and reports the dominant
// category's share.
func runBreakdown(b *testing.B, app, version string) {
	b.Helper()
	var run *stats.Run
	for i := 0; i < b.N; i++ {
		var err error
		run, err = harness.Execute(harness.Spec{
			App: app, Version: version, Platform: "svm",
			NumProcs: 16, Scale: harness.BaseScale[app] * benchScale,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(run.EndTime), "cycles")
	b.ReportMetric(run.Share(stats.DataWait), "datawait-share")
	b.ReportMetric(run.Share(stats.LockWait)+run.Share(stats.BarrierWait), "sync-share")
}

// --- Figure 2: original versions across the three platforms ---

func BenchmarkFig2(b *testing.B) {
	for _, app := range Apps() {
		vs, _ := Versions(app)
		for _, plat := range Platforms() {
			b.Run(fmt.Sprintf("%s/%s", app, plat), func(b *testing.B) {
				runSpeedup(b, app, vs[0].Name, plat)
			})
		}
	}
}

// --- Figures 3..15: SVM execution-time breakdowns ---

func BenchmarkFig3_LUContiguous(b *testing.B)    { runBreakdown(b, "lu", "4d") }
func BenchmarkFig4_OceanContiguous(b *testing.B) { runBreakdown(b, "ocean", "4d") }
func BenchmarkFig5_OceanRows(b *testing.B)       { runBreakdown(b, "ocean", "rows") }
func BenchmarkFig6_VolrendOrig(b *testing.B)     { runBreakdown(b, "volrend", "orig") }
func BenchmarkFig7_VolrendBalanced(b *testing.B) { runBreakdown(b, "volrend", "balanced") }
func BenchmarkFig8_VolrendNoSteal(b *testing.B)  { runBreakdown(b, "volrend", "nosteal") }
func BenchmarkFig9_ShearWarpOrig(b *testing.B)   { runBreakdown(b, "shearwarp", "orig") }
func BenchmarkFig10_ShearWarpOpt(b *testing.B)   { runBreakdown(b, "shearwarp", "opt") }
func BenchmarkFig11_RaytraceOrig(b *testing.B)   { runBreakdown(b, "raytrace", "orig") }
func BenchmarkFig12_RaytraceSplitQ(b *testing.B) { runBreakdown(b, "raytrace", "splitq") }
func BenchmarkFig13_BarnesSplash2(b *testing.B)  { runBreakdown(b, "barnes", "splash2") }
func BenchmarkFig14_BarnesSpatial(b *testing.B)  { runBreakdown(b, "barnes", "spatial") }
func BenchmarkFig15_RadixOrig(b *testing.B)      { runBreakdown(b, "radix", "orig") }

// --- Figure 16: optimization classes across platforms ---

func BenchmarkFig16(b *testing.B) {
	for _, app := range Apps() {
		vs, _ := Versions(app)
		for _, v := range vs {
			for _, plat := range Platforms() {
				b.Run(fmt.Sprintf("%s/%s/%s", app, v.Name, plat), func(b *testing.B) {
					runSpeedup(b, app, v.Name, plat)
				})
			}
		}
	}
}

// --- Parallel experiment engine ---

// BenchmarkParallelMatrix measures the parallel experiment engine on a
// Figure 2-style matrix (every app's original version on every platform,
// with shared uniprocessor baselines) at reduced scale, comparing a serial
// pool against one worker per host core. The speedup between the two
// sub-benchmarks is the engine's win on this host.
func BenchmarkParallelMatrix(b *testing.B) {
	var cells []harness.Cell
	for _, app := range Apps() {
		vs, _ := Versions(app)
		for _, plat := range Platforms() {
			cells = append(cells, harness.Cell{App: app, Version: vs[0].Name, Platform: plat, Speedup: true})
		}
	}
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := harness.NewRunner(8, benchScale/2)
				r.RunParallel(w, cells)
				if fails := r.FailedCells(); len(fails) > 0 {
					b.Fatalf("cells failed: %v", fails)
				}
			}
		})
	}
}

// --- Figure 17: Volrend stealing on SVM vs DSM ---

func BenchmarkFig17(b *testing.B) {
	for _, v := range []string{"balanced", "nosteal"} {
		for _, plat := range []string{"svm", "dsm"} {
			b.Run(fmt.Sprintf("%s/%s", v, plat), func(b *testing.B) {
				runSpeedup(b, "volrend", v, plat)
			})
		}
	}
}

// --- Platform primitive microbenchmarks ---

func microKernel(plat string, np int) (*sim.Kernel, *mem.AddressSpace) {
	as := mem.NewAddressSpace(platform.PageSize, np)
	pl, err := platform.Make(plat, as, np)
	if err != nil {
		panic(err)
	}
	return sim.New(pl, sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager}), as
}

// BenchmarkPageFetch measures the simulated unloaded SVM page fetch (the
// paper's fundamental cost unit); the metric is virtual cycles per fetch.
func BenchmarkPageFetch(b *testing.B) {
	k, as := microKernel("svm", 2)
	a := as.AllocPages(platform.PageSize * 64)
	as.SetHome(a, platform.PageSize*64, 0)
	var per float64
	for i := 0; i < b.N; i++ {
		run := k.Run("fetch", func(p *sim.Proc) {
			if p.ID() == 1 {
				for pg := 0; pg < 64; pg++ {
					p.Read(a + uint64(pg)*platform.PageSize)
				}
			}
			p.Barrier()
		})
		per = float64(run.Procs[1].Cycles[stats.DataWait]) / 64
	}
	b.ReportMetric(per, "cycles/fetch")
}

// BenchmarkLockHandoff measures the uncontended lock cost on each platform —
// the asymmetry behind the paper's synchronization guidelines.
func BenchmarkLockHandoff(b *testing.B) {
	for _, plat := range Platforms() {
		b.Run(plat, func(b *testing.B) {
			k, _ := microKernel(plat, 2)
			var per float64
			for i := 0; i < b.N; i++ {
				run := k.Run("locks", func(p *sim.Proc) {
					for j := 0; j < 100; j++ {
						p.Lock(1)
						p.Compute(10)
						p.Unlock(1)
						p.Compute(1000)
					}
					p.Barrier()
				})
				per = float64(run.TotalCycles(stats.LockWait)) / 200
			}
			b.ReportMetric(per, "cycles/lock")
		})
	}
}

// BenchmarkBarrier measures the 16-processor barrier cost per platform.
func BenchmarkBarrier(b *testing.B) {
	for _, plat := range Platforms() {
		b.Run(plat, func(b *testing.B) {
			k, _ := microKernel(plat, 16)
			var per float64
			for i := 0; i < b.N; i++ {
				run := k.Run("barriers", func(p *sim.Proc) {
					for j := 0; j < 20; j++ {
						p.Barrier()
					}
				})
				per = float64(run.TotalCycles(stats.BarrierWait)) / (20 * 16)
			}
			b.ReportMetric(per, "cycles/arrival")
		})
	}
}

// BenchmarkKernelThroughput measures raw host-side simulation speed:
// simulated accesses per host second on the fast path.
func BenchmarkKernelThroughput(b *testing.B) {
	k, as := microKernel("svm", 1)
	a := as.AllocPages(1 << 20)
	as.SetHome(a, 1<<20, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Run("stream", func(p *sim.Proc) {
			for off := uint64(0); off < 1<<20; off += 32 {
				p.Read(a + off)
			}
		})
	}
	b.SetBytes(1 << 20)
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationFreeCSFaults reproduces the paper's diagnostic: Volrend's
// original version with page faults inside critical sections made free.
func BenchmarkAblationFreeCSFaults(b *testing.B) {
	for _, free := range []bool{false, true} {
		b.Run(fmt.Sprintf("freeCS=%v", free), func(b *testing.B) {
			var run *stats.Run
			for i := 0; i < b.N; i++ {
				var err error
				run, err = harness.Execute(harness.Spec{
					App: "volrend", Version: "orig", Platform: "svm",
					NumProcs: 16, Scale: benchScale, FreeCSFaults: free,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(run.EndTime), "cycles")
		})
	}
}

// BenchmarkAblationBarrierManager moves the SVM barrier manager across
// processors (the paper's LU processor-10 analysis).
func BenchmarkAblationBarrierManager(b *testing.B) {
	for _, mgr := range []int{10, 15} {
		b.Run(fmt.Sprintf("manager=%d", mgr), func(b *testing.B) {
			var handler uint64
			for i := 0; i < b.N; i++ {
				as := mem.NewAddressSpace(platform.PageSize, 16)
				pl, _ := platform.Make("svm", as, 16)
				k := sim.New(pl, sim.Config{NumProcs: 16, BarrierManager: mgr})
				run := k.Run("mgr", func(p *sim.Proc) {
					for j := 0; j < 10; j++ {
						p.Compute(uint64(100 * (p.ID() + 1)))
						p.Barrier()
					}
				})
				handler = run.Procs[mgr].Cycles[stats.Handler]
			}
			b.ReportMetric(float64(handler), "mgr-handler-cycles")
		})
	}
}

// BenchmarkExtensionTwoLevel runs applications on the paper's §7 future-work
// hierarchy — SMP nodes of four processors connected by SVM — against plain
// SVM, comparing absolute simulated completion times (speedups must not be
// compared across platforms, §2.1.3). The metric is the plain-SVM time
// divided by the two-level time: > 1 means the hierarchy pays off.
func BenchmarkExtensionTwoLevel(b *testing.B) {
	for _, app := range []string{"ocean", "lu", "radix"} {
		b.Run(app, func(b *testing.B) {
			version := map[string]string{"ocean": "rows", "lu": "4da", "radix": "orig"}[app]
			var ratio float64
			for i := 0; i < b.N; i++ {
				svmRun, err := harness.Execute(harness.Spec{
					App: app, Version: version, Platform: "svm",
					NumProcs: 16, Scale: harness.BaseScale[app] * benchScale,
				})
				if err != nil {
					b.Fatal(err)
				}
				twoRun, err := harness.Execute(harness.Spec{
					App: app, Version: version, Platform: "svmsmp",
					NumProcs: 16, Scale: harness.BaseScale[app] * benchScale,
				})
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(svmRun.EndTime) / float64(twoRun.EndTime)
			}
			b.ReportMetric(ratio, "svm/svmsmp-time")
		})
	}
}

// BenchmarkAblationRadixScale sweeps the Radix key count: the paper notes
// that only much larger key counts can dilute page-grained false sharing.
func BenchmarkAblationRadixScale(b *testing.B) {
	for _, scale := range []float64{0.5, 1, 2} {
		b.Run(fmt.Sprintf("scale=%.1f", scale), func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				r := harness.NewRunner(16, scale/harness.BaseScale["radix"])
				var err error
				sp, err = r.Speedup("radix", "orig", "svm")
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}
