// Golden tests encoding the paper's headline claims as tolerance-banded
// predicates over the simulated speedups at benchScale (the shape scoreboard
// of EXPERIMENTS.md). They run in -short mode and are part of tier-1: any
// cost-model or protocol change that bends a figure's SHAPE — not just its
// exact numbers — fails here with a message naming the claim.
//
// Bands are deliberately loose (the paper's claims are qualitative orderings,
// not point values) but tight enough to be falsifiable:
// TestClaimsSuiteDetectsPerturbation demonstrates that zeroing the SVM
// protocol costs flips the headline claim.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/svm"
)

var (
	claimsOnce   sync.Once
	claimsRunner *harness.Runner
)

// claimsR returns the shared memoized runner for claim cells: 16 processors
// at benchScale, like the benchmarks. Sharing one runner means each cell and
// each uniprocessor baseline is simulated once across the whole suite.
func claimsR() *harness.Runner {
	claimsOnce.Do(func() { claimsRunner = harness.NewRunner(16, benchScale) })
	return claimsRunner
}

// sp fetches (memoized) the speedup of app/version on plat at the claims
// scale, failing the test on simulation errors.
func sp(t *testing.T, app, version, plat string) float64 {
	t.Helper()
	v, err := claimsR().Speedup(app, version, plat)
	if err != nil {
		t.Fatalf("%s/%s on %s: %v", app, version, plat, err)
	}
	return v
}

// farBehind is the headline predicate: an SVM speedup "far behind" a
// hardware-coherent speedup, with a 40% band (the paper's gaps are 2.5-25x,
// so 0.6 leaves generous room for cost-model drift without letting the
// claim silently invert).
func farBehind(svmSp, hwSp float64) bool { return svmSp < 0.6*hwSp }

// TestClaimsOriginalsTrailHardware is Figure 2's headline: every original
// SPLASH-2-style version is far slower on SVM than on both hardware-coherent
// platforms.
func TestClaimsOriginalsTrailHardware(t *testing.T) {
	for _, app := range PaperApps() {
		vs, err := Versions(app)
		if err != nil {
			t.Fatal(err)
		}
		orig := vs[0].Name
		svmSp := sp(t, app, orig, "svm")
		for _, hw := range []string{"smp", "dsm"} {
			if hwSp := sp(t, app, orig, hw); !farBehind(svmSp, hwSp) {
				t.Errorf("%s/%s: svm speedup %.2f is not far behind %s %.2f (want < 0.6x)",
					app, orig, svmSp, hw, hwSp)
			}
		}
	}
}

// TestClaimsOceanRaytraceBelowUniprocessor: the paper's starkest Figure 2
// observation — Ocean's and Raytrace's originals run SLOWER than the
// uniprocessor on SVM at 16 processors.
func TestClaimsOceanRaytraceBelowUniprocessor(t *testing.T) {
	for _, app := range []string{"ocean", "raytrace"} {
		if v := sp(t, app, "orig", "svm"); v >= 0.9 {
			t.Errorf("%s/orig on svm: speedup %.2f; claim wants below uniprocessor (< 0.9)", app, v)
		}
	}
}

// TestClaimsPaddingAloneNeverRescues: §4's first rung — padding/alignment
// alone never brings an application close to hardware-coherent performance
// on SVM (for several apps it even hurts, by enlarging the data set).
func TestClaimsPaddingAloneNeverRescues(t *testing.T) {
	for _, app := range PaperApps() {
		vs, err := Versions(app)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vs {
			if v.Class != core.PA {
				continue
			}
			padSVM := sp(t, app, v.Name, "svm")
			padSMP := sp(t, app, v.Name, "smp")
			if !farBehind(padSVM, padSMP) {
				t.Errorf("%s/%s: P/A alone reaches %.2f on svm vs %.2f on smp — claim says it never rescues",
					app, v.Name, padSVM, padSMP)
			}
			if orig := sp(t, app, vs[0].Name, "svm"); padSVM > 2*orig {
				t.Errorf("%s/%s: P/A alone tripled svm speedup (%.2f from %.2f) — more than the paper allows it",
					app, v.Name, padSVM, orig)
			}
		}
	}
}

// TestClaimsDataStructuresTransformLU: §4.2's LU story — the 4-D
// contiguous-block reorganization is what makes LU viable on SVM (orig 1.3x
// to 4.5x here), and the algorithmic barrier reduction on top does not give
// it back away.
func TestClaimsDataStructuresTransformLU(t *testing.T) {
	orig := sp(t, "lu", "orig", "svm")
	ds := sp(t, "lu", "4d", "svm")
	if ds < 2.5*orig {
		t.Errorf("lu/4d on svm: %.2f is not a transformation of orig %.2f (want >= 2.5x)", ds, orig)
	}
	if alg := sp(t, "lu", "4da", "svm"); alg < 0.95*ds {
		t.Errorf("lu/4da on svm: %.2f regressed below the 4d version %.2f", alg, ds)
	}
}

// TestClaimsAlgorithmicChangesDecisive: §4.3 — for Ocean, Volrend,
// Shear-Warp, Raytrace and Barnes, algorithmic restructuring is what finally
// moves SVM performance; the best Alg version beats the original by an
// app-specific factor (huge for Raytrace's lock elimination, moderate where
// the original was already viable).
func TestClaimsAlgorithmicChangesDecisive(t *testing.T) {
	minGain := map[string]float64{
		"ocean":     2.5,  // rows vs below-uniprocessor orig (~4.7x here)
		"volrend":   1.25, // nosteal vs orig (~1.5x; balanced alone does NOT win)
		"shearwarp": 1.3,  // opt vs orig (~1.6x)
		"raytrace":  5,    // nolock vs a below-uniprocessor orig (~20x)
		"barnes":    1.5,  // spatial vs splash (~2.4x)
	}
	for app, want := range minGain {
		vs, err := Versions(app)
		if err != nil {
			t.Fatal(err)
		}
		orig := sp(t, app, vs[0].Name, "svm")
		best := 0.0
		bestName := ""
		for _, v := range vs {
			if v.Class != core.Alg {
				continue
			}
			if s := sp(t, app, v.Name, "svm"); s > best {
				best, bestName = s, v.Name
			}
		}
		if bestName == "" {
			t.Fatalf("%s: no Alg-class version registered", app)
		}
		if best < want*orig {
			t.Errorf("%s: best Alg version %s reaches %.2f on svm, orig %.2f — claim wants >= %.2gx",
				app, bestName, best, orig, want)
		}
	}
}

// TestClaimsRadixStaysTerrible: §4.4 — no restructuring in the paper's
// arsenal saves Radix on SVM; every version stays below uniprocessor speed
// (only much larger keys-per-processor counts would help).
func TestClaimsRadixStaysTerrible(t *testing.T) {
	vs, err := Versions("radix")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if s := sp(t, "radix", v.Name, "svm"); s >= 0.9 {
			t.Errorf("radix/%s on svm: speedup %.2f; the claim is that Radix stays below uniprocessor", v.Name, s)
		}
	}
}

// TestClaimsBarnesSpatialBestTreeBuild: §4.3's Barnes progression — the
// spatial (merging-based) tree build beats every other Barnes version on
// SVM, including the intermediate update/partree attempts.
func TestClaimsBarnesSpatialBestTreeBuild(t *testing.T) {
	vs, err := Versions("barnes")
	if err != nil {
		t.Fatal(err)
	}
	spatial := sp(t, "barnes", "spatial", "svm")
	for _, v := range vs {
		if v.Name == "spatial" {
			continue
		}
		if other := sp(t, "barnes", v.Name, "svm"); spatial < 1.1*other {
			t.Errorf("barnes/spatial %.2f on svm does not clearly beat %s %.2f (want >= 1.1x)",
				spatial, v.Name, other)
		}
	}
}

// perturbedSVMRun executes app/version on an SVM platform with a DOCTORED
// cost model, bypassing the harness (whose memo must never see non-default
// parameters).
func perturbedSVMRun(t *testing.T, app, version string, np int, p svm.Params) *stats.Run {
	t.Helper()
	a, err := core.Lookup(app)
	if err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddressSpace(platform.PageSize, np)
	inst, err := a.Build(version, harness.BaseScale[app]*benchScale, as, np)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.New(svm.New(as, p, np), sim.Config{NumProcs: np, BarrierManager: sim.AutoBarrierManager})
	run, err := k.RunErr(fmt.Sprintf("perturbed %s/%s", app, version), inst.Body)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestClaimsSuiteDetectsPerturbation proves the claims above are falsifiable:
// with the SVM software-protocol costs deliberately zeroed (free faults,
// twins, diffs, messages), LU's original version no longer trails the SMP —
// the exact predicate TestClaimsOriginalsTrailHardware asserts. If this test
// ever finds the claim still holding under the perturbation, the suite has
// gone vacuous and is no longer guarding the cost model.
func TestClaimsSuiteDetectsPerturbation(t *testing.T) {
	free := svm.DefaultParams()
	free.FaultOverhead = 0
	free.WriteTrap = 0
	free.TwinCost = 0
	free.DiffCreate = 0
	free.DiffApply = 0
	free.NoticeCost = 0
	free.InvalCost = 0
	free.MsgSend = 0
	free.MsgRecv = 0
	free.NetLatency = 0
	free.PageXfer = 0
	free.DiffXfer = 0
	free.HomeService = 0
	free.LockMgrService = 0
	free.BarrierPerProc = 0
	free.BarrierBcast = 0

	t1 := perturbedSVMRun(t, "lu", "orig", 1, free).EndTime
	tp := perturbedSVMRun(t, "lu", "orig", 16, free).EndTime
	perturbed := float64(t1) / float64(tp)

	honest := sp(t, "lu", "orig", "svm")
	smp := sp(t, "lu", "orig", "smp")
	if !farBehind(honest, smp) {
		t.Fatalf("precondition: honest lu/orig svm %.2f should trail smp %.2f", honest, smp)
	}
	if farBehind(perturbed, smp) {
		t.Errorf("free-protocol svm speedup %.2f still 'trails' smp %.2f: the claim predicate is not sensitive to the cost model", perturbed, smp)
	}
}
