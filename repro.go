// Package repro reproduces Jiang, Shan & Singh, "Application Restructuring
// and Performance Portability on Shared Virtual Memory and Hardware-Coherent
// Multiprocessors" (PPoPP 1997).
//
// It provides execution-driven simulators for the paper's three shared
// address space platforms — page-grained shared virtual memory running a
// home-based lazy release consistency protocol ("svm"), a bus-based snooping
// hardware cache-coherent SMP ("smp"), and a directory-based CC-NUMA machine
// ("dsm") — together with from-scratch reimplementations of the seven
// applications in every restructured version the paper studies (padding &
// alignment, data-structure reorganization, and algorithmic change).
//
// This package is the public facade: it re-exports the experiment runner so
// examples and downstream users can run any (application, version, platform)
// combination, read the paper's execution-time breakdowns, and regenerate
// every figure. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for paper-vs-measured results.
package repro

import (
	_ "repro/internal/apps" // register all seven applications
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/stats"
)

// Spec names one simulated execution: an application version on a platform.
type Spec = harness.Spec

// Run is the result of a simulated execution: per-processor execution time
// breakdowns (Compute, Data Wait, Lock Wait, Barrier Wait, Handler Compute,
// CPU-Cache Stall), counters, and the completion time.
type Run = stats.Run

// Runner executes experiments with memoized uniprocessor baselines, so
// speedups follow the paper's convention (T1 of the original version over Tp
// of the optimized version). A Runner is safe for concurrent use: distinct
// experiments execute once (singleflight) and whole matrices can be
// pre-executed by a bounded worker pool with RunParallel, with per-cell
// failures contained as memoized errors instead of process crashes.
type Runner = harness.Runner

// Cell names one (application, version, platform) experiment of a matrix
// for Runner.RunParallel.
type Cell = harness.Cell

// Figure is one regenerable figure/table from the paper.
type Figure = harness.Figure

// Execute runs one experiment and verifies the computed result against the
// application's sequential reference.
func Execute(s Spec) (*Run, error) { return harness.Execute(s) }

// NewRunner creates a Runner for np processors; scale multiplies each
// application's base problem size.
func NewRunner(np int, scale float64) *Runner { return harness.NewRunner(np, scale) }

// Figures lists every regenerable figure in paper order.
func Figures() []Figure { return harness.Figures() }

// Apps lists the registered applications, the paper's seven plus the
// irregular extension workloads (kvstore, bfs, pipeline).
func Apps() []string { return core.Apps() }

// PaperApps lists only the paper's applications — the set the figures and
// the paper-claims suite reproduce. Extension workloads registered via
// core.RegisterExtension are excluded.
func PaperApps() []string { return core.PaperApps() }

// Versions lists the restructured versions of an application, original
// first, with their optimization classes.
func Versions(app string) ([]core.Version, error) {
	a, err := core.Lookup(app)
	if err != nil {
		return nil, err
	}
	return a.Versions(), nil
}

// Platforms lists the machine models.
func Platforms() []string { return []string{"svm", "smp", "dsm"} }
