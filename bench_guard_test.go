// Guards for the benchmark harness itself: benchmark iterations must
// actually simulate, not replay the memo. runSpeedup once hoisted a single
// harness.Runner out of the b.N loop, so iterations 2..N measured a cache
// lookup — the kernel could have regressed 10x without the benchmark
// noticing. These tests pin the fixed behaviour.
package repro

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/stats"
)

// TestRunnerMemoServesRepeats documents the hazard: a reused Runner answers
// a repeated Speedup call entirely from its memo, executing zero
// simulations. (This is the desired behaviour for figures — and exactly why
// a benchmark loop must not share a Runner across iterations.)
func TestRunnerMemoServesRepeats(t *testing.T) {
	execs := 0
	memo := harness.NewMemo(nil)
	memo.Exec = func(harness.Spec) (*stats.Run, error) {
		execs++
		return &stats.Run{EndTime: 1000}, nil
	}
	r := harness.NewRunnerWith(16, benchScale, memo)
	if _, err := r.Speedup("lu", "orig", "svm"); err != nil {
		t.Fatal(err)
	}
	cold := execs
	if cold == 0 {
		t.Fatal("cold Speedup executed nothing")
	}
	if _, err := r.Speedup("lu", "orig", "svm"); err != nil {
		t.Fatal(err)
	}
	if execs != cold {
		t.Fatalf("warm Speedup on a shared Runner executed %d extra simulations; memo should have served it", execs-cold)
	}
}

// TestBenchmarkIterationsExecute pins the fix: every speedupIter call uses a
// fresh Runner, so back-to-back iterations each perform real simulations
// (speedupIter itself fails if its memo reports zero executions).
func TestBenchmarkIterationsExecute(t *testing.T) {
	for i := 0; i < 2; i++ {
		s, err := speedupIter("lu", "orig", "svm")
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if s <= 0 {
			t.Fatalf("iteration %d: speedup %v", i, s)
		}
	}
}
